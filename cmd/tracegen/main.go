// Command tracegen synthesizes a network-wide traffic trace as a classic
// libpcap capture file (readable by tcpdump/wireshark): gravity-model
// endpoints on a chosen topology, template-based protocol sessions
// expanded to full TCP/UDP packet exchanges with valid checksums.
//
//	tracegen -o trace.pcap [-topology internet2] [-sessions 1000] [-seed 1] [-spread 5s]
//
// The same generator feeds the paper-reproduction experiments; this tool
// exists so external tooling can consume identical workloads.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nwdeploy/internal/packet"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	out := flag.String("o", "", "output pcap path (required)")
	topoName := flag.String("topology", "internet2", "internet2 | geant | as1221 | as1239 | as3257 | isp50")
	sessions := flag.Int("sessions", 1000, "number of sessions")
	seed := flag.Int64("seed", 1, "generator seed")
	spread := flag.Duration("spread", 5*time.Second, "session start-time spread")
	flag.Parse()
	if *out == "" {
		log.Fatal("-o is required")
	}

	var topo *topology.Topology
	switch *topoName {
	case "internet2":
		topo = topology.Internet2()
	case "geant":
		topo = topology.Geant()
	case "as1221":
		topo = topology.RocketfuelLike(topology.AS1221)
	case "as1239":
		topo = topology.RocketfuelLike(topology.AS1239)
	case "as3257":
		topo = topology.RocketfuelLike(topology.AS3257)
	case "isp50":
		topo = topology.FiftyNode()
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}

	tm := traffic.Gravity(topo)
	trace := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: *sessions, Seed: *seed})

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	n, err := packet.WriteSessionsPcap(packet.NewWriter(bw), trace, time.Now(), *spread, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d packets from %d sessions on %s to %s (%d bytes)\n",
		n, *sessions, topo.Name, *out, st.Size())
}
