// Command controller runs the operations center as a long-lived daemon:
// it solves the NIDS placement for a topology, serves sampling manifests
// to node agents over TCP, and re-optimizes on a fixed cadence with fresh
// traffic reports — the deployment loop the paper describes ("a
// centralized operations center periodically configures the NIDS
// responsibilities of the different nodes ... we envision needing to
// reconfigure NIDS with roughly the same frequency" as NetFlow reports).
//
//	controller -listen 127.0.0.1:7117 [-topology internet2] [-sessions 20000]
//	           [-interval 5m] [-hashkey 1234] [-once]
//	           [-metrics run.json] [-pprof 127.0.0.1:6060]
//
// Agents (internal/control.Agent) poll the epoch and refetch manifests
// when it changes. With -once the daemon solves a single plan and serves
// it until killed.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/obs/obshttp"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("controller: ")
	listen := flag.String("listen", "127.0.0.1:7117", "address to serve manifests on")
	topoName := flag.String("topology", "internet2", "internet2 | geant | as1221 | as1239 | as3257 | isp50")
	sessions := flag.Int("sessions", 20000, "sessions per traffic report")
	interval := flag.Duration("interval", 5*time.Minute, "re-optimization cadence")
	hashKey := flag.Uint("hashkey", 0x5eed, "private sampling hash key")
	once := flag.Bool("once", false, "solve once and serve; no re-optimization loop")
	history := flag.Int("history", 0, "retained generations for delta serving (0 = default, <0 disables deltas)")
	cpuCap := flag.Float64("cpucap", 1e7, "per-node CPU capacity")
	memCap := flag.Float64("memcap", 1e9, "per-node memory capacity")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file on shutdown")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /metrics on this address")
	flag.Parse()

	metrics := obs.New()
	metrics.Publish("nwdeploy")
	if *pprofAddr != "" {
		go func() {
			if err := obshttp.Serve(*pprofAddr, metrics, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if *metricsPath != "" {
		defer func() {
			if err := metrics.WriteFile(*metricsPath); err != nil {
				log.Printf("writing metrics: %v", err)
			}
		}()
	}

	var topo *topology.Topology
	switch *topoName {
	case "internet2":
		topo = topology.Internet2()
	case "geant":
		topo = topology.Geant()
	case "as1221":
		topo = topology.RocketfuelLike(topology.AS1221)
	case "as1239":
		topo = topology.RocketfuelLike(topology.AS1239)
	case "as3257":
		topo = topology.RocketfuelLike(topology.AS3257)
	case "isp50":
		topo = topology.FiftyNode()
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}
	classes := bro.Classes(bro.StandardModules()[1:])
	caps := core.UniformCaps(topo.N(), *cpuCap, *memCap)
	tm := traffic.Gravity(topo)

	solve := func(seed int64) (*core.Plan, error) {
		// Each cycle consumes a fresh traffic report; the seed stands in
		// for the NetFlow feed's sampling noise.
		report := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: *sessions, Seed: seed})
		inst, err := core.BuildInstance(topo, classes, report, caps)
		if err != nil {
			return nil, err
		}
		return core.SolveOpts(inst, core.SolveOptions{Redundancy: 1, Metrics: metrics})
	}

	ctrl, err := control.NewControllerOpts(*listen, control.ControllerOptions{
		HashKey:      uint32(*hashKey),
		Metrics:      metrics,
		DeltaHistory: *history,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()

	start := time.Now()
	plan, err := solve(start.UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	ctrl.UpdatePlan(plan)
	log.Printf("serving %s manifests on %s (epoch %d, objective %.4f, solved in %s)",
		topo.Name, ctrl.Addr(), ctrl.Epoch(), plan.Objective, time.Since(start).Round(time.Millisecond))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	if *once {
		<-sigs
		log.Print("shutting down")
		return
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-sigs:
			log.Print("shutting down")
			return
		case now := <-ticker.C:
			plan, err := solve(now.UnixNano())
			if err != nil {
				log.Printf("re-optimization failed (serving previous plan): %v", err)
				continue
			}
			ctrl.UpdatePlan(plan)
			log.Printf("re-optimized: epoch %d, objective %.4f", ctrl.Epoch(), plan.Objective)
		}
	}
}
