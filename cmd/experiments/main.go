// Command experiments regenerates every table and figure of the paper's
// evaluation as tab-separated series on stdout.
//
// Usage:
//
//	experiments [-quick] [-workers n] [-only fig5,fig6,fig7,fig8,fig10,fig11,opttime,redundancy,ablations,adversaries,chaos,overload,scenarios]
//	            [-metrics run.json] [-trace run.trace.jsonl] [-pprof 127.0.0.1:6060]
//	            [-scenarios-json BENCH_scenarios.json] [-scenarios-assert]
//
// With -quick the reduced workload sizes are used (seconds per experiment);
// without it the full evaluation sizes run (several minutes on one core —
// the LP solver is pure Go). -workers sizes the worker pool (0 = GOMAXPROCS,
// 1 = serial); the output is byte-identical for every value. Each block is
// prefixed by a "# figure" header naming the paper artifact it reproduces
// and the workload parameters, so the output can be diffed across runs and
// fed straight to a plotter. -metrics dumps the suite's accumulated solver
// and emulation counters as JSON on exit; -trace records the chaos and
// overload runners' flight recorder and writes its JSONL dump on exit
// (forcing the experiment blocks serial, since a shared tracer across
// concurrent blocks would interleave component sequences); -pprof serves
// live profiling, /metrics, and /trace while the suite runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"nwdeploy/internal/experiments"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/obs/obshttp"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/trace"
)

// runner is one experiment block: it renders its whole output (header plus
// rows) into a string so the blocks can execute on a worker pool and still
// print in canonical order.
type runner struct {
	name string
	fn   func(experiments.Config) (string, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	tracePath := flag.String("trace", "", "record the chaos/overload flight recorder and write its JSONL dump to this file (forces serial experiment blocks)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, /metrics, and /trace on this address")
	scenariosJSON := flag.String("scenarios-json", "", "write the scenario-grid rows as JSON to this file (implies running the scenarios block)")
	scenariosAssert := flag.Bool("scenarios-assert", false, "fail unless every scenario row meets its acceptance bar (floor held, no SLO violations, flood visible, sublinear regret)")
	flag.Parse()

	metrics := obs.New()
	metrics.Publish("nwdeploy")
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Options{Seed: 29})
	}
	if *pprofAddr != "" {
		go func() {
			if err := obshttp.Serve(*pprofAddr, metrics, tracer); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	all := []runner{
		{"fig5", fig5},
		{"fig6", fig6},
		{"fig7", fig7},
		{"fig8", fig8},
		{"opttime", optTimes},
		{"fig10", fig10},
		{"fig11", fig11},
		{"fig10robustness", fig10robustness},
		{"redundancy", redundancy},
		{"ablations", ablations},
		{"adversaries", adversaries},
		{"provisioning", provisioning},
		{"chaos", chaosResilience},
		{"overload", overloadResilience},
		{"scenarios", scenariosRunner(*scenariosJSON, *scenariosAssert)},
	}
	if *scenariosJSON != "" && *only != "" && !want["scenarios"] {
		want["scenarios"] = true
	}
	var selected []runner
	for _, r := range all {
		if len(want) == 0 || want[r.name] {
			selected = append(selected, r)
		}
	}

	// Independent experiment blocks fan out across the pool; when several
	// run at once, each keeps its inner sweeps serial so the pool is not
	// oversubscribed. A lone block gets the whole pool for its sweeps.
	runnerWorkers := parallel.Resolve(*workers, len(selected))
	if tracer != nil {
		// One tracer shared by concurrent blocks would interleave component
		// event sequences nondeterministically; serial blocks keep the dump
		// a pure function of the flags.
		runnerWorkers = 1
	}
	cfg := experiments.Config{Quick: *quick, Workers: *workers, Metrics: metrics, Trace: tracer}
	if runnerWorkers > 1 {
		cfg.Workers = 1
	}
	outputs, err := parallel.MapErr(runnerWorkers, len(selected), func(i int) (string, error) {
		out, err := selected[i].fn(cfg)
		if err != nil {
			return "", fmt.Errorf("%s: %w", selected[i].name, err)
		}
		return out, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, out := range outputs {
		os.Stdout.WriteString(out)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("creating trace file: %v", err)
		}
		if err := tracer.Dump(f, "run_end"); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing trace file: %v", err)
		}
	}
	if *metricsPath != "" {
		if err := metrics.WriteFile(*metricsPath); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
	}
}

func header(b *strings.Builder, figure, detail string) {
	fmt.Fprintf(b, "\n# %s — %s\n", figure, detail)
}

func fig5(cfg experiments.Config) (string, error) {
	var b strings.Builder
	header(&b, "Figure 5", "per-module CPU and memory overhead of the coordination checks (policy-stage vs event-stage)")
	fmt.Fprintln(&b, "module\tcpu_policy\tcpu_event\tmem_policy\tmem_event")
	for _, r := range experiments.Fig5(cfg) {
		fmt.Fprintf(&b, "%s\t%.4f\t%.4f\t%.4f\t%.4f\n", r.Module, r.PolicyCPU, r.EventCPU, r.PolicyMem, r.EventMem)
	}
	return b.String(), nil
}

func fig6(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig6(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 6", "max per-node footprint vs number of NIDS modules (Internet2)")
	fmt.Fprintln(&b, "modules\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Modules, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
	return b.String(), nil
}

func fig7(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig7(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 7", "max per-node footprint vs total traffic volume (21 modules)")
	fmt.Fprintln(&b, "sessions\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Sessions, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
	return b.String(), nil
}

func fig8(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig8(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 8", "per-node footprint, edge vs coordinated (100k sessions, 21 modules)")
	fmt.Fprintln(&b, "node\tcity\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%s\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Node, r.City, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
	return b.String(), nil
}

func optTimes(cfg experiments.Config) (string, error) {
	var b strings.Builder
	header(&b, "Optimization time", "LP/MILP-approx solve times on a 50-node topology (paper: 0.42s NIDS with CPLEX, ~220s NIPS)")
	fmt.Fprintln(&b, "problem\tnodes\tseconds\tpaper_seconds")
	nids, err := experiments.NIDSOptTime(cfg)
	if err != nil {
		return "", fmt.Errorf("nids: %w", err)
	}
	fmt.Fprintf(&b, "%s\t%d\t%.3f\t%.2f\n", nids.Problem, nids.Nodes, nids.Seconds, nids.PaperSeconds)
	np, err := experiments.NIPSOptTime(cfg)
	if err != nil {
		return "", fmt.Errorf("nips: %w", err)
	}
	fmt.Fprintf(&b, "%s\t%d\t%.3f\t%.2f\n", np.Problem, np.Nodes, np.Seconds, np.PaperSeconds)
	return b.String(), nil
}

func fig10(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig10(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 10", "rounding algorithms as a fraction of the LP upper bound vs rule capacity constraint")
	fmt.Fprintln(&b, "topology\tcap_frac\tvariant\tmean\tmin\tmax")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.2f\t%s\t%.4f\t%.4f\t%.4f\n", r.Topology, r.CapFrac, r.Variant, r.Mean, r.Min, r.Max)
	}
	return b.String(), nil
}

func fig11(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig11(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 11", "normalized regret of the FPL online adaptation over epochs")
	fmt.Fprintln(&b, "run\tepoch\tnormalized_regret")
	for _, run := range rows {
		for _, pt := range run.Series {
			fmt.Fprintf(&b, "%d\t%d\t%.4f\n", run.Run, pt.Epoch, pt.Normalized)
		}
	}
	return b.String(), nil
}

func redundancy(cfg experiments.Config) (string, error) {
	rows, err := experiments.Redundancy(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Section 2.5", "minimized max load vs redundancy level r")
	fmt.Fprintln(&b, "r\tmax_load")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%.4f\n", r.R, r.MaxLoad)
	}
	return b.String(), nil
}

func ablations(cfg experiments.Config) (string, error) {
	rows, err := experiments.Ablations(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Ablations", "design-choice comparisons (LP vs greedy, fine-grained coordination, keyed hash)")
	fmt.Fprintln(&b, "name\tmetric\tbaseline\tvariant")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%.4g\t%.4g\n", r.Name, r.Metric, r.Baseline, r.Variant)
	}
	return b.String(), nil
}

func adversaries(cfg experiments.Config) (string, error) {
	rows, err := experiments.Adversaries(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Adversaries", "FPL online deployer vs oblivious, drifting, and adaptive adversaries (Section 3.5 future work)")
	fmt.Fprintln(&b, "adversary\tfinal_normalized_regret\tfpl_total_objective")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.4f\t%.5g\n", r.Adversary, r.FinalRegret, r.FPLTotal)
	}
	return b.String(), nil
}

func fig10robustness(cfg experiments.Config) (string, error) {
	rows, err := experiments.Fig10Robustness(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Figure 10 robustness", "rounding variants under other match-rate distributions (paper: 'results hold', shown for brevity)")
	fmt.Fprintln(&b, "distribution\tvariant\tmean_frac_of_optlp")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%.4f\n", r.Dist, r.Variant, r.Mean)
	}
	return b.String(), nil
}

func chaosResilience(cfg experiments.Config) (string, error) {
	rows, err := experiments.Chaos(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Chaos resilience", "cluster runtime under seeded fault injection: coverage achieved vs the Section 2.5 prediction, per epoch")
	fmt.Fprintln(&b, "scenario\tr\tepoch\tctrl_down\tdown_nodes\tsynced\tstale\tdark\tfetch_attempts\tfetch_failures\talerts\tworst_cov\tavg_cov\tpredicted_worst")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\n",
			r.Scenario, r.Redundancy, r.Epoch, r.ControllerDown, r.DownNodes,
			r.Synced, r.Stale, r.Dark, r.FetchAttempts, r.FetchFailures, r.Alerts,
			r.WorstCoverage, r.AvgCoverage, r.PredictedWorst)
	}
	return b.String(), nil
}

func overloadResilience(cfg experiments.Config) (string, error) {
	rows, err := experiments.Overload(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Overload resilience", "burst amplitude x governor x replan mode: budget overruns, shed width, coverage, and replan cost")
	fmt.Fprintln(&b, "scenario\tburst\tgovernor\treplan\twarm\tover_budget\tfloor_limited\tshed_width_max\tworst_cov\tavg_cov\treplans\tmissed\treplan_iters")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.1f\t%v\t%v\t%v\t%d\t%d\t%.4f\t%.4f\t%.4f\t%d\t%d\t%d\n",
			r.Scenario, r.BurstFactor, r.Governor, r.Replan, r.WarmReplan,
			r.OverBudget, r.FloorLimited, r.ShedWidthMax,
			r.WorstCoverage, r.AvgCoverage, r.Replans, r.MissedReplans, r.ReplanIters)
	}
	return b.String(), nil
}

// scenariosRunner builds the composable-scenario grid block. Beyond the
// usual table it optionally writes the rows as JSON (the BENCH artifact)
// and, with assert on, fails the whole suite unless every row meets its
// acceptance bar — the CI smoke contract for the scenario engine.
func scenariosRunner(jsonPath string, assert bool) func(experiments.Config) (string, error) {
	return func(cfg experiments.Config) (string, error) {
		rows, err := experiments.Scenarios(cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		header(&b, "Scenario grid", "composable traffic/fault/adversary drivers against the cluster runtime: coverage floor, shed, evasion, regret")
		fmt.Fprintln(&b, "scenario\tr\tgovernor\treplan\tworst_cov\tavg_cov\tfloor_held\tbreaches\tshed_frac\tfloor_limited\treplans\tmissed\talerts\tinjected\tevaded\tevasion\tregret_final\tregret_slope\tslo_violations")
		for _, r := range rows {
			fmt.Fprintf(&b, "%s\t%d\t%v\t%v\t%.4f\t%.4f\t%v\t%d\t%.4f\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\t%d\n",
				r.Scenario, r.Redundancy, r.Governor, r.Replan,
				r.WorstCoverage, r.AvgCoverage, r.FloorHeld, r.Breaches,
				r.ShedFraction, r.FloorLimited, r.Replans, r.MissedReplans,
				r.Alerts, r.Injected, r.Evaded, r.EvasionRate,
				r.RegretFinal, r.RegretSlope, r.SLOViolations)
		}
		if jsonPath != "" {
			data, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return "", fmt.Errorf("scenarios: encoding rows: %w", err)
			}
			if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("scenarios: %w", err)
			}
			fmt.Fprintf(&b, "# scenarios: %d rows -> %s\n", len(rows), jsonPath)
		}
		if assert {
			if err := assertScenarios(rows); err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "# scenarios: acceptance bar held for all %d rows\n", len(rows))
		}
		return b.String(), nil
	}
}

// assertScenarios is the machine-checked acceptance bar behind
// -scenarios-assert: every cell holds its coverage floor under its SLO
// thresholds, the flood is visible to the data plane, the crafted
// adversary traffic flows and meets an analyst, and FPL's cumulative
// regret grows sublinearly.
func assertScenarios(rows []experiments.ScenarioRow) error {
	var bad []string
	for _, r := range rows {
		if !r.FloorHeld {
			bad = append(bad, fmt.Sprintf("%s: coverage floor breached (%d breaches)", r.Scenario, r.Breaches))
		}
		if r.SLOViolations != 0 {
			bad = append(bad, fmt.Sprintf("%s: %d SLO violations", r.Scenario, r.SLOViolations))
		}
		switch r.Scenario {
		case "synflood":
			if r.Alerts == 0 || r.Injected == 0 {
				bad = append(bad, fmt.Sprintf("synflood: alerts %d injected %d, flood invisible to the data plane", r.Alerts, r.Injected))
			}
		case "adversary":
			if r.Injected == 0 {
				bad = append(bad, "adversary: no crafted sessions reached the runtime")
			}
			if r.RegretSlope >= 1 {
				bad = append(bad, fmt.Sprintf("adversary: cumulative regret slope %.4f, want sublinear (<1)", r.RegretSlope))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("scenarios: acceptance bar failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

func provisioning(cfg experiments.Config) (string, error) {
	rows, err := experiments.Provisioning(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, "Section 5 provisioning", "mean vs 95th-percentile planning under bursty epochs")
	fmt.Fprintln(&b, "strategy\tplanned_max_load\tworst_epoch_load\tmean_epoch_load\tviolation_fraction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.4f\t%.4f\t%.4f\t%.2f\n", r.Strategy, r.PlannedMaxLoad, r.WorstEpochLoad, r.MeanEpochLoad, r.ViolationFraction)
	}
	return b.String(), nil
}
