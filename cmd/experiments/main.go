// Command experiments regenerates every table and figure of the paper's
// evaluation as tab-separated series on stdout.
//
// Usage:
//
//	experiments [-quick] [-only fig5,fig6,fig7,fig8,fig10,fig11,opttime,redundancy,ablations,adversaries]
//
// With -quick the reduced workload sizes are used (seconds per experiment);
// without it the full evaluation sizes run (several minutes on one core —
// the LP solver is pure Go). Each block is prefixed by a "# figure" header
// naming the paper artifact it reproduces and the workload parameters, so
// the output can be diffed across runs and fed straight to a plotter.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nwdeploy/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	if run("fig5") {
		fig5(cfg)
	}
	if run("fig6") {
		fig6(cfg)
	}
	if run("fig7") {
		fig7(cfg)
	}
	if run("fig8") {
		fig8(cfg)
	}
	if run("opttime") {
		optTimes(cfg)
	}
	if run("fig10") {
		fig10(cfg)
	}
	if run("fig11") {
		fig11(cfg)
	}
	if run("fig10robustness") {
		fig10robustness(cfg)
	}
	if run("redundancy") {
		redundancy(cfg)
	}
	if run("ablations") {
		ablations(cfg)
	}
	if run("adversaries") {
		adversaries(cfg)
	}
	if run("provisioning") {
		provisioning(cfg)
	}
}

func header(figure, detail string) {
	fmt.Printf("\n# %s — %s\n", figure, detail)
}

func fig5(cfg experiments.Config) {
	header("Figure 5", "per-module CPU and memory overhead of the coordination checks (policy-stage vs event-stage)")
	fmt.Println("module\tcpu_policy\tcpu_event\tmem_policy\tmem_event")
	for _, r := range experiments.Fig5(cfg) {
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\t%.4f\n", r.Module, r.PolicyCPU, r.EventCPU, r.PolicyMem, r.EventMem)
	}
}

func fig6(cfg experiments.Config) {
	rows, err := experiments.Fig6(cfg)
	if err != nil {
		log.Fatalf("fig6: %v", err)
	}
	header("Figure 6", "max per-node footprint vs number of NIDS modules (Internet2)")
	fmt.Println("modules\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Printf("%d\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Modules, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
}

func fig7(cfg experiments.Config) {
	rows, err := experiments.Fig7(cfg)
	if err != nil {
		log.Fatalf("fig7: %v", err)
	}
	header("Figure 7", "max per-node footprint vs total traffic volume (21 modules)")
	fmt.Println("sessions\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Printf("%d\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Sessions, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
}

func fig8(cfg experiments.Config) {
	rows, err := experiments.Fig8(cfg)
	if err != nil {
		log.Fatalf("fig8: %v", err)
	}
	header("Figure 8", "per-node footprint, edge vs coordinated (100k sessions, 21 modules)")
	fmt.Println("node\tcity\tedge_mem\tcoord_mem\tedge_cpu\tcoord_cpu")
	for _, r := range rows {
		fmt.Printf("%d\t%s\t%.4g\t%.4g\t%.4g\t%.4g\n", r.Node, r.City, r.EdgeMem, r.CoordMem, r.EdgeCPU, r.CoordCPU)
	}
}

func optTimes(cfg experiments.Config) {
	header("Optimization time", "LP/MILP-approx solve times on a 50-node topology (paper: 0.42s NIDS with CPLEX, ~220s NIPS)")
	fmt.Println("problem\tnodes\tseconds\tpaper_seconds")
	nids, err := experiments.NIDSOptTime(cfg)
	if err != nil {
		log.Fatalf("opttime nids: %v", err)
	}
	fmt.Printf("%s\t%d\t%.3f\t%.2f\n", nids.Problem, nids.Nodes, nids.Seconds, nids.PaperSeconds)
	np, err := experiments.NIPSOptTime(cfg)
	if err != nil {
		log.Fatalf("opttime nips: %v", err)
	}
	fmt.Printf("%s\t%d\t%.3f\t%.2f\n", np.Problem, np.Nodes, np.Seconds, np.PaperSeconds)
}

func fig10(cfg experiments.Config) {
	rows, err := experiments.Fig10(cfg)
	if err != nil {
		log.Fatalf("fig10: %v", err)
	}
	header("Figure 10", "rounding algorithms as a fraction of the LP upper bound vs rule capacity constraint")
	fmt.Println("topology\tcap_frac\tvariant\tmean\tmin\tmax")
	for _, r := range rows {
		fmt.Printf("%s\t%.2f\t%s\t%.4f\t%.4f\t%.4f\n", r.Topology, r.CapFrac, r.Variant, r.Mean, r.Min, r.Max)
	}
}

func fig11(cfg experiments.Config) {
	rows, err := experiments.Fig11(cfg)
	if err != nil {
		log.Fatalf("fig11: %v", err)
	}
	header("Figure 11", "normalized regret of the FPL online adaptation over epochs")
	fmt.Println("run\tepoch\tnormalized_regret")
	for _, run := range rows {
		for _, pt := range run.Series {
			fmt.Printf("%d\t%d\t%.4f\n", run.Run, pt.Epoch, pt.Normalized)
		}
	}
}

func redundancy(cfg experiments.Config) {
	rows, err := experiments.Redundancy(cfg)
	if err != nil {
		log.Fatalf("redundancy: %v", err)
	}
	header("Section 2.5", "minimized max load vs redundancy level r")
	fmt.Println("r\tmax_load")
	for _, r := range rows {
		fmt.Printf("%d\t%.4f\n", r.R, r.MaxLoad)
	}
}

func ablations(cfg experiments.Config) {
	rows, err := experiments.Ablations(cfg)
	if err != nil {
		log.Fatalf("ablations: %v", err)
	}
	header("Ablations", "design-choice comparisons (LP vs greedy, fine-grained coordination, keyed hash)")
	fmt.Println("name\tmetric\tbaseline\tvariant")
	for _, r := range rows {
		fmt.Printf("%s\t%s\t%.4g\t%.4g\n", r.Name, r.Metric, r.Baseline, r.Variant)
	}
}

func adversaries(cfg experiments.Config) {
	rows, err := experiments.Adversaries(cfg)
	if err != nil {
		log.Fatalf("adversaries: %v", err)
	}
	header("Adversaries", "FPL online deployer vs oblivious, drifting, and adaptive adversaries (Section 3.5 future work)")
	fmt.Println("adversary\tfinal_normalized_regret\tfpl_total_objective")
	for _, r := range rows {
		fmt.Printf("%s\t%.4f\t%.5g\n", r.Adversary, r.FinalRegret, r.FPLTotal)
	}
}

func fig10robustness(cfg experiments.Config) {
	rows, err := experiments.Fig10Robustness(cfg)
	if err != nil {
		log.Fatalf("fig10robustness: %v", err)
	}
	header("Figure 10 robustness", "rounding variants under other match-rate distributions (paper: 'results hold', shown for brevity)")
	fmt.Println("distribution\tvariant\tmean_frac_of_optlp")
	for _, r := range rows {
		fmt.Printf("%s\t%s\t%.4f\n", r.Dist, r.Variant, r.Mean)
	}
}

func provisioning(cfg experiments.Config) {
	rows, err := experiments.Provisioning(cfg)
	if err != nil {
		log.Fatalf("provisioning: %v", err)
	}
	header("Section 5 provisioning", "mean vs 95th-percentile planning under bursty epochs")
	fmt.Println("strategy\tplanned_max_load\tworst_epoch_load\tmean_epoch_load\tviolation_fraction")
	for _, r := range rows {
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\t%.2f\n", r.Strategy, r.PlannedMaxLoad, r.WorstEpochLoad, r.MeanEpochLoad, r.ViolationFraction)
	}
}
