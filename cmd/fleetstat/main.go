// Command fleetstat renders and checks the fleet telemetry plane.
//
// Usage:
//
//	fleetstat [-addr 127.0.0.1:6060] [-history]
//	fleetstat -selftest
//	fleetstat -bench [-o BENCH_telemetry.json]
//
// The default mode scrapes a live debug endpoint (any command serving
// obshttp with a fleet attached: controller -pprof, nwdeploy -pprof, ...)
// and renders /fleet — the controller's latest per-node health rollup —
// as a table; -history additionally renders the per-epoch rollup series
// from /fleet/history.
//
// -selftest runs the full acceptance loop in-process: a scenario cluster
// with a mid-run crash and a planned drain, the fleet plane attached, and
// a real HTTP server on a loopback port. It then scrapes /fleet,
// /fleet/history, and /metrics.prom over the wire and checks the paper's
// operational story: the crashed node classifies dark and the draining
// node classifies stale within one epoch, and the Prometheus exposition
// validates structurally.
//
// -bench measures the plane's cost on the standard chaos scenario: one
// run without telemetry, one with, reports compare DeepEqual (the
// write-only contract), and the wall-clock overhead must stay under the
// 5% gate. The JSON report (BENCH_telemetry.json) is the CI artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"reflect"
	"strings"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/obs/obshttp"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetstat: ")
	addr := flag.String("addr", "127.0.0.1:6060", "debug endpoint to scrape (/fleet, /fleet/history)")
	history := flag.Bool("history", false, "also render the per-epoch health series from /fleet/history")
	selftest := flag.Bool("selftest", false, "run the in-process acceptance loop instead of scraping")
	bench := flag.Bool("bench", false, "measure telemetry overhead on the standard chaos scenario")
	benchOut := flag.String("o", "", "bench: write the JSON report here instead of stdout")
	flag.Parse()

	switch {
	case *bench:
		runBench(*benchOut)
	case *selftest:
		runSelftest()
	default:
		scrape(*addr, *history)
	}
}

// scrape renders a live endpoint's fleet view.
func scrape(addr string, withHistory bool) {
	var snap *telemetry.FleetSnapshot
	if err := getJSON("http://"+addr+"/fleet", &snap); err != nil {
		log.Fatalf("scraping /fleet: %v", err)
	}
	if snap == nil {
		fmt.Println("no fleet snapshot yet (no epoch has closed, or no fleet is attached)")
		return
	}
	printSnapshot(snap)
	if !withHistory {
		return
	}
	var snaps []telemetry.FleetSnapshot
	if err := getJSON("http://"+addr+"/fleet/history", &snaps); err != nil {
		log.Fatalf("scraping /fleet/history: %v", err)
	}
	fmt.Println()
	printHistory(snaps)
}

func getJSON(url string, v any) error {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// printSnapshot renders one rollup: the fleet totals, the per-region
// rollups when present, and one row per node.
func printSnapshot(s *telemetry.FleetSnapshot) {
	fmt.Printf("# fleet @ run epoch %d (controller generation %d): %d healthy, %d stale, %d shedding, %d dark\n",
		s.RunEpoch, s.CtrlEpoch, s.Healthy, s.Stale, s.Shedding, s.Dark)
	for _, r := range s.Regions {
		fmt.Printf("# region %d (%d nodes): %d healthy, %d stale, %d shedding, %d dark\n",
			r.Region, len(r.Nodes), r.Healthy, r.Stale, r.Shedding, r.Dark)
	}
	fmt.Println("node\thealth\tepoch\tlag\tsilent\tstale_ep\tfetch_err\ttimeouts\tretries\tshed_width\tfloor\tsessions\talerts\tconns\tdraining")
	for _, v := range s.Nodes {
		fmt.Printf("%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%v\t%d\t%d\t%d\t%v\n",
			v.Node, v.Health, v.Epoch, v.Lag, v.Silent, v.StaleEpochs,
			v.FetchErrors, v.FetchTimeouts, v.FetchRetries,
			v.ShedWidth, v.FloorLimited, v.Sessions, v.Alerts, v.Conns, v.Draining)
	}
}

func printHistory(snaps []telemetry.FleetSnapshot) {
	fmt.Println("epoch\tctrl_epoch\thealthy\tstale\tshedding\tdark")
	for _, s := range snaps {
		fmt.Printf("%d\t%d\t%d\t%d\t%d\t%d\n",
			s.RunEpoch, s.CtrlEpoch, s.Healthy, s.Stale, s.Shedding, s.Dark)
	}
}

// maintDriver is the selftest's scripted scenario: a crash in epoch 2 and
// a planned drain in epoch 3, on an otherwise clean network.
type maintDriver struct {
	crash, drain int
}

func (d *maintDriver) Name() string { return "fleetstat-selftest" }

func (d *maintDriver) Step(env *cluster.ScenarioEnv) cluster.Stimulus {
	switch env.Epoch {
	case 2:
		return cluster.Stimulus{Faults: chaos.EpochFaults{DownNodes: []int{d.crash}}}
	case 3:
		return cluster.Stimulus{Drains: []int{d.drain}}
	}
	return cluster.Stimulus{}
}

func runSelftest() {
	const crashed, drained = 3, 2
	topo := topology.Internet2()
	metrics := obs.New()
	fleet := telemetry.NewFleet(topo.N(), telemetry.FleetOptions{})
	hist := telemetry.NewHistory(16)

	if _, err := cluster.RunScenario(cluster.ScenarioConfig{
		Driver: &maintDriver{crash: crashed, drain: drained},
		Topo:   topo, Sessions: 400, TrafficSeed: 5, Seed: 9,
		Epochs: 5, Redundancy: 2, StaleGrace: 2, Probes: 200,
		Metrics: metrics, Fleet: fleet, FleetHistory: hist,
	}); err != nil {
		log.Fatalf("selftest scenario: %v", err)
	}

	// Serve the real HTTP surface on an ephemeral loopback port and scrape
	// it over the wire — the same path an operator's curl takes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: obshttp.NewMux(obshttp.Options{
		Registry: metrics, Fleet: fleet, History: hist,
	})}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()

	var snap *telemetry.FleetSnapshot
	if err := getJSON("http://"+addr+"/fleet", &snap); err != nil {
		log.Fatalf("selftest /fleet: %v", err)
	}
	if snap == nil || snap.RunEpoch != 5 {
		log.Fatalf("selftest /fleet: got %+v, want the epoch-5 snapshot", snap)
	}
	var snaps []telemetry.FleetSnapshot
	if err := getJSON("http://"+addr+"/fleet/history", &snaps); err != nil {
		log.Fatalf("selftest /fleet/history: %v", err)
	}
	if len(snaps) != 5 {
		log.Fatalf("selftest history: %d snapshots, want 5", len(snaps))
	}

	// The acceptance classifications, within one epoch of each event.
	if h := snaps[1].Nodes[crashed].Health; h != telemetry.Dark {
		log.Fatalf("selftest: crashed node classified %v in its crash epoch, want dark", h)
	}
	v := snaps[2].Nodes[drained]
	if v.Health != telemetry.Stale || !v.Draining {
		log.Fatalf("selftest: draining node classified %v (draining=%v), want stale via farewell", v.Health, v.Draining)
	}
	if h := snaps[4].Nodes[crashed].Health; h != telemetry.Healthy {
		log.Fatalf("selftest: crashed node classified %v after resync, want healthy", h)
	}

	// The Prometheus exposition must validate structurally and carry both
	// registry and fleet families.
	resp, err := http.Get("http://" + addr + "/metrics.prom")
	if err != nil {
		log.Fatalf("selftest /metrics.prom: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := telemetry.ValidateProm(strings.NewReader(string(body))); err != nil {
		log.Fatalf("selftest: /metrics.prom exposition invalid: %v", err)
	}
	for _, want := range []string{"fleet_run_epoch 5", "fleet_nodes{state=", "fleet_node_health{node="} {
		if !strings.Contains(string(body), want) {
			log.Fatalf("selftest: /metrics.prom missing %q", want)
		}
	}

	printSnapshot(snap)
	fmt.Println()
	printHistory(snaps)
	fmt.Println("selftest ok: crash->dark and drain->stale within one epoch, prom exposition valid")
}

// benchReport is the BENCH_telemetry.json schema.
type benchReport struct {
	Scenario        string  `json:"scenario"`
	Epochs          int     `json:"epochs"`
	NonInterference bool    `json:"non_interference"` // fleet-on report DeepEqual fleet-off
	Snapshots       int     `json:"snapshots"`
	NodesTracked    int     `json:"nodes_tracked"`
	EpochNSOff      float64 `json:"epoch_ns_off"`
	EpochNSOn       float64 `json:"epoch_ns_on"`
	OverheadFrac    float64 `json:"overhead_frac"` // (on - off) / off wall clock
	OverheadGate    float64 `json:"overhead_gate"`
}

func runBench(outPath string) {
	const benchSeed = 21
	n := topology.Internet2().N()
	mkcfg := func(fleet *telemetry.Fleet, hist *telemetry.History) cluster.ChaosConfig {
		return cluster.ChaosConfig{
			Sessions: 1200, Epochs: 6, Seed: benchSeed,
			Faults:       chaos.NetworkFaults{DropProb: 0.2, BlackholeProb: 0.05},
			NodeFailProb: 0.15, ControllerOutageProb: 0.1,
			Probes: 1000, Fleet: fleet, FleetHistory: hist,
		}
	}
	// Warm-up run (JIT-free Go, but page cache, socket state, and the
	// scheduler all settle); its report doubles as the baseline.
	off, err := cluster.CoverageUnderChaos(mkcfg(nil, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Best-of-2 timings on each side: the chaos epoch loop sleeps on real
	// socket timeouts, so min is the stable estimator for the tiny delta
	// the telemetry plane adds.
	timeRun := func(withFleet bool) (float64, *cluster.ChaosReport, *telemetry.History) {
		best := 0.0
		var rep *cluster.ChaosReport
		var hist *telemetry.History
		for i := 0; i < 2; i++ {
			var fleet *telemetry.Fleet
			var h *telemetry.History
			if withFleet {
				fleet = telemetry.NewFleet(n, telemetry.FleetOptions{})
				h = telemetry.NewHistory(16)
			}
			start := time.Now()
			r, err := cluster.CoverageUnderChaos(mkcfg(fleet, h))
			if err != nil {
				log.Fatal(err)
			}
			ns := float64(time.Since(start).Nanoseconds())
			if best == 0 || ns < best {
				best, rep, hist = ns, r, h
			}
		}
		return best, rep, hist
	}
	offNS, offRep, _ := timeRun(false)
	onNS, onRep, hist := timeRun(true)
	if !reflect.DeepEqual(off, offRep) {
		log.Fatal("bench FAILED: same-seed baseline runs diverged")
	}

	epochs := len(off.Epochs)
	frac := (onNS - offNS) / offNS
	if frac < 0 {
		frac = 0
	}
	rep := benchReport{
		Scenario:        "chaos/internet2",
		Epochs:          epochs,
		NonInterference: reflect.DeepEqual(off, onRep),
		Snapshots:       hist.Len(),
		NodesTracked:    n,
		EpochNSOff:      offNS / float64(epochs),
		EpochNSOn:       onNS / float64(epochs),
		OverheadFrac:    frac,
		OverheadGate:    0.05,
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	out = append(out, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}
	if !rep.NonInterference {
		log.Fatal("bench FAILED: fleet-on report diverged from fleet-off")
	}
	if rep.Snapshots != epochs {
		log.Fatalf("bench FAILED: %d snapshots for %d epochs", rep.Snapshots, epochs)
	}
	if rep.OverheadFrac > rep.OverheadGate {
		log.Fatalf("bench FAILED: telemetry overhead %.2f%% of epoch time exceeds the %.0f%% gate",
			100*rep.OverheadFrac, 100*rep.OverheadGate)
	}
	fmt.Fprintf(os.Stderr, "fleetstat: bench ok — overhead %.3f%% (%.1fms/epoch off, %.1fms/epoch on)\n",
		100*rep.OverheadFrac, rep.EpochNSOff/1e6, rep.EpochNSOn/1e6)
}
