// Command auditcheck is the offline verifier for the tamper-evident audit
// ledger written by cmd/cluster -ledger (internal/ledger). It never trusts
// the producer: every guarantee is recomputed from the on-disk bytes.
//
// Modes:
//
//	auditcheck -dir DIR [-seed N]
//	    Replay DIR/chain.jsonl and validate the full history: strict
//	    record schema, dense sequence numbers, non-decreasing epochs,
//	    every hash-chain link, every Merkle root, and every off-chain
//	    blob in DIR/objects re-hashed against its on-chain reference —
//	    all anchored to the pinned head digest in DIR/HEAD. With -seed,
//	    the genesis link is checked against the run seed too.
//
//	auditcheck -dir DIR -prove -node J -epoch E [-class C -k0 A -k1 B -lo X -hi Y]
//	    Answer "what was node J's manifest at controller epoch E?" with
//	    evidence: the latest publish/shed record at epoch <= E, the
//	    node's canonical manifest blob, and a Merkle inclusion proof
//	    from the blob's item leaf to the record's root (itself covered
//	    by the chain head). With a class/unit/range query, additionally
//	    check that the manifest assigns [lo, hi) of that unit to the
//	    node — proving range responsibility, not just manifest bytes.
//
//	auditcheck -dir DIR -tamper N [-tamperseed S]
//	    Adversarial self-test: N seeded single-byte corruptions spread
//	    across the chain file and every referenced blob, each of which
//	    must fail verification against the pinned head. Exits non-zero
//	    if any mutation goes undetected.
//
//	auditcheck -bench [-o BENCH_ledger.json]
//	    Run the seeded chaos scenario with the ledger off and on,
//	    require DeepEqual reports (non-interference), and emit commit
//	    overhead per epoch (gated at 5%), proof size, and offline
//	    verification throughput as JSON.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/control"
	"nwdeploy/internal/ledger"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("auditcheck: ")
	dir := flag.String("dir", "", "ledger directory (chain.jsonl, HEAD, objects/)")
	seed := flag.Int64("seed", 0, "run seed; when non-zero the genesis link is verified against it")
	prove := flag.Bool("prove", false, "prove a node's manifest (and optionally a range assignment) at an epoch")
	node := flag.Int("node", -1, "prove: node id")
	epoch := flag.Uint64("epoch", 0, "prove: controller epoch the assignment must have been in force at")
	class := flag.Int("class", -1, "prove: class id of the queried unit (-1 skips the range check)")
	k0 := flag.Int("k0", 0, "prove: first unit key component")
	k1 := flag.Int("k1", 0, "prove: second unit key component (-1 for ingress/egress-scoped units)")
	lo := flag.Float64("lo", 0, "prove: queried range low bound")
	hi := flag.Float64("hi", 0, "prove: queried range high bound")
	tamper := flag.Int("tamper", 0, "flip this many seeded single bytes across chain+blobs; each must be detected")
	tamperSeed := flag.Int64("tamperseed", 1, "seed for tamper byte selection")
	bench := flag.Bool("bench", false, "run the ledger overhead/throughput benchmark instead of verifying a directory")
	benchOut := flag.String("o", "", "bench: write the JSON benchmark report to this file (default stdout)")
	quiet := flag.Bool("q", false, "suppress ok-summaries")
	flag.Parse()

	if *bench {
		runBench(*benchOut)
		return
	}
	if *dir == "" {
		log.Fatal("usage: auditcheck -dir DIR [-seed N] [-prove ... | -tamper N] (or -bench)")
	}

	chain, err := os.ReadFile(filepath.Join(*dir, "chain.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	headRaw, err := os.ReadFile(filepath.Join(*dir, "HEAD"))
	if err != nil {
		log.Fatalf("reading pinned head (run with -ledger to produce one): %v", err)
	}
	head := string(bytes.TrimSpace(headRaw))
	store, err := ledger.NewDirStore(filepath.Join(*dir, "objects"))
	if err != nil {
		log.Fatal(err)
	}
	opts := ledger.VerifyOptions{Head: head, Store: store}
	if *seed != 0 {
		opts.GenesisPrev = ledger.GenesisHex(*seed)
	}

	sum, err := ledger.VerifyChain(chain, opts)
	if err != nil {
		log.Fatalf("verification FAILED: %v", err)
	}
	if !*quiet {
		fmt.Printf("%s: ok — %d records, %d items, %d blob refs (%d chain + %d blob bytes), head %s\n",
			*dir, sum.Records, sum.Items, sum.Blobs, sum.ChainBytes, sum.BlobBytes, sum.Head)
		for _, k := range []string{ledger.RecPublish, ledger.RecShed, ledger.RecEpoch, ledger.RecRegions, ledger.RecTrace} {
			if n := sum.Kinds[k]; n > 0 {
				fmt.Printf("  %-8s %d\n", k, n)
			}
		}
	}

	switch {
	case *prove:
		runProve(chain, store, *node, *epoch, *class, [2]int{*k0, *k1}, *lo, *hi)
	case *tamper > 0:
		runTamper(chain, store, opts, *tamper, *tamperSeed, *quiet)
	}
}

// parseRecords decodes a verified chain's lines. The chain has already
// passed VerifyChain, so failures here are programming errors.
func parseRecords(chain []byte) []ledger.Record {
	var recs []ledger.Record
	for _, line := range bytes.Split(chain, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec ledger.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			log.Fatalf("re-parsing verified chain: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// runProve locates the manifest record in force for (node, epoch), checks
// the optional range-assignment query against the decoded canonical
// manifest, and prints the Merkle inclusion proof tying the blob to the
// record root the verified chain head covers.
func runProve(chain []byte, store ledger.Store, node int, epoch uint64, class int, unit [2]int, lo, hi float64) {
	if node < 0 || epoch == 0 {
		log.Fatal("prove: need -node and -epoch")
	}
	// The manifest in force at epoch e is the latest publish/shed commit
	// with epoch <= e: later shed records supersede earlier publishes.
	var rec ledger.Record
	found := false
	for _, r := range parseRecords(chain) {
		if (r.Kind == ledger.RecPublish || r.Kind == ledger.RecShed) && r.Epoch <= epoch {
			rec, found = r, true
		}
	}
	if !found {
		log.Fatalf("prove: no publish/shed record at epoch <= %d", epoch)
	}
	key := fmt.Sprintf("node/%d", node)
	item := -1
	for i, it := range rec.Items {
		if it.Kind == ledger.ItemManifest && it.Key == key {
			item = i
		}
	}
	if item < 0 {
		log.Fatalf("prove: record seq %d has no manifest for node %d", rec.Seq, node)
	}
	blob, err := store.Get(rec.Items[item].Ref)
	if err != nil {
		log.Fatal(err)
	}
	m, err := control.DecodeCanonicalManifest(blob)
	if err != nil {
		log.Fatal(err)
	}

	if class >= 0 {
		if !covers(m.Assignments, class, unit, lo, hi) {
			log.Fatalf("DISPROVED: node %d's manifest at epoch %d (record seq %d) does not assign [%g, %g) of class %d unit %v",
				node, epoch, rec.Seq, lo, hi, class, unit)
		}
		fmt.Printf("proved: node %d was assigned [%g, %g) of class %d unit %v at epoch %d\n",
			node, lo, hi, class, unit, epoch)
	}

	p, err := ledger.RecordProof(rec, item)
	if err != nil {
		log.Fatal(err)
	}
	if !ledger.VerifyItem(rec, item, p) {
		log.Fatalf("prove: inclusion proof for %s does not verify against record root", key)
	}
	pj, _ := json.Marshal(p)
	fmt.Printf("manifest: record seq %d (kind %s, epoch %d, run %d), blob %s (%d bytes)\n",
		rec.Seq, rec.Kind, rec.Epoch, rec.Run, rec.Items[item].Ref, len(blob))
	fmt.Printf("inclusion proof (leaf %d of %d, root %s):\n%s\n", p.Index, p.Leaves, rec.Root, pj)
}

// covers reports whether the assignment set gives (class, unit) the whole
// interval [lo, hi). Canonical assignments hold coalesced, sorted ranges,
// so containment within a single range is the correct test.
func covers(as []control.WireAssignment, class int, unit [2]int, lo, hi float64) bool {
	for _, a := range as {
		if a.Class != class || a.Unit != unit {
			continue
		}
		for _, r := range a.Ranges {
			if r.Lo <= lo && hi <= r.Hi {
				return true
			}
		}
	}
	return false
}

// tamperStore serves one overridden blob over an inner store.
type tamperStore struct {
	inner ledger.Store
	ref   string
	data  []byte
}

func (s tamperStore) Put(data []byte) (string, error) { return s.inner.Put(data) }
func (s tamperStore) Get(ref string) ([]byte, error) {
	if ref == s.ref {
		return append([]byte(nil), s.data...), nil
	}
	return s.inner.Get(ref)
}

// runTamper flips n seeded single bytes — anywhere in the chain file or
// any referenced blob — and requires every mutation to fail verification
// against the pinned head.
func runTamper(chain []byte, store ledger.Store, opts ledger.VerifyOptions, n int, seed int64, quiet bool) {
	var refs []string
	seen := map[string]bool{}
	for _, rec := range parseRecords(chain) {
		for _, it := range rec.Items {
			if it.Ref != "" && !seen[it.Ref] {
				seen[it.Ref] = true
				refs = append(refs, it.Ref)
			}
		}
	}
	blobs := make([][]byte, len(refs))
	total := len(chain)
	for i, ref := range refs {
		b, err := store.Get(ref)
		if err != nil {
			log.Fatal(err)
		}
		blobs[i] = b
		total += len(b)
	}

	rng := rand.New(rand.NewSource(seed))
	undetected := 0
	for trial := 0; trial < n; trial++ {
		off := rng.Intn(total)
		flip := byte(1 + rng.Intn(255)) // never zero: the byte must change
		var err error
		if off < len(chain) {
			mut := append([]byte(nil), chain...)
			mut[off] ^= flip
			_, err = ledger.VerifyChain(mut, opts)
		} else {
			off -= len(chain)
			bi := 0
			for off >= len(blobs[bi]) {
				off -= len(blobs[bi])
				bi++
			}
			mut := append([]byte(nil), blobs[bi]...)
			mut[off] ^= flip
			mutOpts := opts
			mutOpts.Store = tamperStore{inner: store, ref: refs[bi], data: mut}
			_, err = ledger.VerifyChain(chain, mutOpts)
		}
		if err == nil {
			undetected++
			log.Printf("UNDETECTED tamper: trial %d", trial)
		}
	}
	if undetected > 0 {
		log.Fatalf("tamper test FAILED: %d of %d mutations went undetected", undetected, n)
	}
	if !quiet {
		fmt.Printf("tamper: all %d seeded single-byte mutations detected (%d chain + blob bytes in scope)\n", n, total)
	}
}

// benchReport is the BENCH_ledger.json schema.
type benchReport struct {
	Scenario         string  `json:"scenario"`
	Epochs           int     `json:"epochs"`
	NonInterference  bool    `json:"non_interference"` // ledger-on report DeepEqual ledger-off
	Records          int     `json:"records"`
	ChainBytes       int64   `json:"chain_bytes"`
	BlobBytes        int64   `json:"blob_bytes"`
	CommitNSPerEpoch float64 `json:"commit_ns_per_epoch"`
	EpochNS          float64 `json:"epoch_ns"`
	OverheadFrac     float64 `json:"overhead_frac"` // commit time / run time
	OverheadGate     float64 `json:"overhead_gate"`
	ProofBytes       int     `json:"proof_bytes"` // JSON size of a manifest inclusion proof
	VerifyRecsPerSec float64 `json:"verify_records_per_sec"`
	VerifyMBPerSec   float64 `json:"verify_mb_per_sec"`
}

func runBench(outPath string) {
	const benchSeed = 21
	mkcfg := func(led *ledger.Ledger) cluster.ChaosConfig {
		return cluster.ChaosConfig{
			Sessions: 1200, Epochs: 6, Seed: benchSeed,
			Faults:       chaos.NetworkFaults{DropProb: 0.2, BlackholeProb: 0.05},
			NodeFailProb: 0.15, ControllerOutageProb: 0.1,
			Probes: 1000, Ledger: led,
		}
	}
	off, err := cluster.CoverageUnderChaos(mkcfg(nil))
	if err != nil {
		log.Fatal(err)
	}
	store := ledger.NewMemStore()
	led := ledger.New(ledger.Options{Seed: benchSeed, Store: store})
	runStart := time.Now()
	on, err := cluster.CoverageUnderChaos(mkcfg(led))
	if err != nil {
		log.Fatal(err)
	}
	runNS := float64(time.Since(runStart).Nanoseconds())
	if err := led.Err(); err != nil {
		log.Fatal(err)
	}

	commits, commitNS, _ := led.Stats()
	chain := led.Chain()
	opts := ledger.VerifyOptions{
		Head: led.HeadHex(), GenesisPrev: ledger.GenesisHex(benchSeed), Store: store,
	}
	sum, err := ledger.VerifyChain(chain, opts)
	if err != nil {
		log.Fatalf("bench chain does not verify: %v", err)
	}

	// Offline verification throughput: re-verify for at least 100ms.
	iters, verifyNS := 0, int64(0)
	for verifyNS < int64(100*time.Millisecond) {
		start := time.Now()
		if _, err := ledger.VerifyChain(chain, opts); err != nil {
			log.Fatal(err)
		}
		verifyNS += time.Since(start).Nanoseconds()
		iters++
	}
	verifySec := float64(verifyNS) / float64(time.Second)

	// Proof size: a manifest inclusion proof from the widest record.
	proofBytes := 0
	for _, rec := range parseRecords(chain) {
		for i, it := range rec.Items {
			if it.Kind != ledger.ItemManifest {
				continue
			}
			p, err := ledger.RecordProof(rec, i)
			if err != nil {
				log.Fatal(err)
			}
			if j, _ := json.Marshal(p); len(j) > proofBytes {
				proofBytes = len(j)
			}
		}
	}

	epochs := len(on.Epochs)
	rep := benchReport{
		Scenario:         "chaos/internet2",
		Epochs:           epochs,
		NonInterference:  reflect.DeepEqual(off, on),
		Records:          sum.Records,
		ChainBytes:       sum.ChainBytes,
		BlobBytes:        sum.BlobBytes,
		CommitNSPerEpoch: float64(commitNS) / float64(epochs),
		EpochNS:          runNS / float64(epochs),
		OverheadFrac:     float64(commitNS) / runNS,
		OverheadGate:     0.05,
		ProofBytes:       proofBytes,
		VerifyRecsPerSec: float64(sum.Records*iters) / verifySec,
		VerifyMBPerSec:   float64((sum.ChainBytes+sum.BlobBytes)*int64(iters)) / (1e6 * verifySec),
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	out = append(out, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}
	if !rep.NonInterference {
		log.Fatal("bench FAILED: ledger-on report diverged from ledger-off")
	}
	if rep.OverheadFrac > rep.OverheadGate {
		log.Fatalf("bench FAILED: commit overhead %.2f%% of epoch time exceeds the %.0f%% gate (%d commits, %d ns)",
			100*rep.OverheadFrac, 100*rep.OverheadGate, commits, commitNS)
	}
	fmt.Fprintf(os.Stderr, "auditcheck: bench ok — overhead %.3f%%, proof %d bytes, verify %.0f recs/s\n",
		100*rep.OverheadFrac, rep.ProofBytes, rep.VerifyRecsPerSec)
}
