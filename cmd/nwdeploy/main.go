// Command nwdeploy plans network-wide NIDS or NIPS deployments from a JSON
// scenario specification and prints the resulting assignment.
//
// Usage:
//
//	nwdeploy -mode nids  [-spec scenario.json] [-redundancy r]
//	nwdeploy -mode nips  [-spec scenario.json] [-variant greedy|lp|basic] [-iters n]
//	nwdeploy -mode manifest [-spec scenario.json] [-node j]
//	nwdeploy -mode whatif [-spec scenario.json] [-factor 2.0]
//
// All modes additionally accept -metrics <file> to dump a JSON snapshot of
// the run's solver counters and timing histograms on exit, and
// -pprof <addr> to serve /debug/pprof, /debug/vars, and /metrics while the
// command runs.
//
// Without -spec a built-in Internet2 demonstration scenario is used. The
// spec format is documented on the Spec type; `nwdeploy -print-spec` emits
// the default spec as a starting point.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/lp"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/obs/obshttp"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// Spec is the JSON scenario format.
type Spec struct {
	// Topology selects a built-in topology: "internet2", "geant",
	// "as1221", "as1239", "as3257", or "isp50". Alternatively Nodes/Links
	// define a custom one.
	Topology string     `json:"topology,omitempty"`
	Nodes    []SpecNode `json:"nodes,omitempty"`
	Links    []SpecLink `json:"links,omitempty"`

	// Sessions and Seed parameterize the synthetic workload used to derive
	// coordination-unit volumes for NIDS planning.
	Sessions int   `json:"sessions"`
	Seed     int64 `json:"seed"`

	// CPUCap/MemCap are uniform per-node capacities for NIDS planning.
	CPUCap float64 `json:"cpu_cap"`
	MemCap float64 `json:"mem_cap"`

	// NIPS parameters.
	Rules                int     `json:"rules"`
	MaxPaths             int     `json:"max_paths"`
	RuleCapacityFraction float64 `json:"rule_capacity_fraction"`

	// Workers sizes the worker pool for the NIPS rounding sweep: 0 uses
	// GOMAXPROCS, 1 forces the serial path. Results are identical for any
	// value; overridden by the -workers flag when set.
	Workers int `json:"workers,omitempty"`
}

// SpecNode is a custom topology node.
type SpecNode struct {
	Name       string  `json:"name"`
	City       string  `json:"city"`
	Population float64 `json:"population"`
	Lat        float64 `json:"lat"`
	Lon        float64 `json:"lon"`
}

// SpecLink is a custom topology link; Dist 0 derives the distance from
// coordinates.
type SpecLink struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Dist float64 `json:"dist,omitempty"`
}

func defaultSpec() Spec {
	return Spec{
		Topology: "internet2",
		Sessions: 10000,
		Seed:     1,
		CPUCap:   1e7,
		MemCap:   1e9,
		Rules:    20,
		MaxPaths: 15,

		RuleCapacityFraction: 0.15,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nwdeploy: ")
	mode := flag.String("mode", "nids", "nids | nips | manifest | whatif | dot")
	specPath := flag.String("spec", "", "path to a JSON scenario spec")
	redundancy := flag.Int("redundancy", 1, "NIDS coverage level r")
	variant := flag.String("variant", "greedy", "NIPS variant: basic | lp | greedy")
	iters := flag.Int("iters", 5, "NIPS rounding iterations")
	node := flag.Int("node", 0, "node whose manifest to print (mode manifest)")
	factor := flag.Float64("factor", 2.0, "capacity multiplier for what-if upgrades (mode whatif)")
	workers := flag.Int("workers", 0, "worker pool size for the NIPS rounding sweep (0 = GOMAXPROCS, 1 = serial)")
	printSpec := flag.Bool("print-spec", false, "emit the default spec as JSON and exit")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /metrics on this address")
	flag.Parse()

	metrics := obs.New()
	metrics.Publish("nwdeploy")
	if *pprofAddr != "" {
		go func() {
			if err := obshttp.Serve(*pprofAddr, metrics, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if *metricsPath != "" {
		defer func() {
			if err := metrics.WriteFile(*metricsPath); err != nil {
				log.Printf("writing metrics: %v", err)
			}
		}()
	}

	spec := defaultSpec()
	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			log.Fatalf("parsing %s: %v", *specPath, err)
		}
	}
	if *workers != 0 {
		spec.Workers = *workers
	}

	topo, err := buildTopology(spec)
	if err != nil {
		log.Fatal(err)
	}

	switch *mode {
	case "nids":
		runNIDS(topo, spec, *redundancy, false, 0, metrics)
	case "manifest":
		runNIDS(topo, spec, *redundancy, true, *node, metrics)
	case "nips":
		runNIPS(topo, spec, *variant, *iters, metrics)
	case "whatif":
		runWhatIf(topo, spec, *redundancy, *factor, metrics)
	case "dot":
		if err := topo.WriteDOT(os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func buildTopology(spec Spec) (*topology.Topology, error) {
	if len(spec.Nodes) > 0 {
		nodes := make([]topology.Node, len(spec.Nodes))
		byName := map[string]int{}
		for i, n := range spec.Nodes {
			nodes[i] = topology.Node{
				ID: i, Name: n.Name, City: n.City,
				Population: n.Population, Lat: n.Lat, Lon: n.Lon,
			}
			byName[n.Name] = i
		}
		t := topology.New("custom", nodes)
		for _, l := range spec.Links {
			a, okA := byName[l.A]
			b, okB := byName[l.B]
			if !okA || !okB {
				return nil, fmt.Errorf("link %s-%s references unknown node", l.A, l.B)
			}
			if l.Dist > 0 {
				t.AddLink(a, b, l.Dist)
			} else {
				t.AddLinkAuto(a, b)
			}
		}
		if !t.Connected() {
			return nil, fmt.Errorf("custom topology is disconnected")
		}
		return t, nil
	}
	switch spec.Topology {
	case "", "internet2":
		return topology.Internet2(), nil
	case "geant":
		return topology.Geant(), nil
	case "as1221":
		return topology.RocketfuelLike(topology.AS1221), nil
	case "as1239":
		return topology.RocketfuelLike(topology.AS1239), nil
	case "as3257":
		return topology.RocketfuelLike(topology.AS3257), nil
	case "isp50":
		return topology.FiftyNode(), nil
	}
	return nil, fmt.Errorf("unknown topology %q", spec.Topology)
}

func runNIDS(topo *topology.Topology, spec Spec, r int, manifestOnly bool, node int, metrics *obs.Registry) {
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: spec.Sessions, Seed: spec.Seed})
	classes := bro.Classes(bro.StandardModules()[1:])
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), spec.CPUCap, spec.MemCap))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.SolveOpts(inst, core.SolveOptions{Redundancy: r, Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}

	if manifestOnly {
		printManifest(inst, plan, node)
		return
	}

	fmt.Printf("topology=%s nodes=%d classes=%d units=%d sessions=%d redundancy=%d\n",
		topo.Name, topo.N(), len(classes), len(inst.Units), spec.Sessions, r)
	fmt.Printf("objective (min max load fraction) = %.4f  cpu=%.4f mem=%.4f  simplex iters=%d\n",
		plan.Objective, plan.MaxCPULoad, plan.MaxMemLoad, plan.SolverIters)
	cpu, mem := core.PerNodeLoads(inst, plan)
	edge := core.EdgePlan(inst)
	eCPU, eMem := core.PerNodeLoads(inst, edge)
	fmt.Println("\nnode\tcity\tcoord_cpu\tcoord_mem\tedge_cpu\tedge_mem")
	for j := 0; j < topo.N(); j++ {
		fmt.Printf("%d\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
			j, topo.Nodes[j].City, cpu[j], mem[j], eCPU[j], eMem[j])
	}
	fmt.Printf("\nmax load: coordinated cpu=%.4f mem=%.4f | edge-only cpu=%.4f mem=%.4f\n",
		plan.MaxCPULoad, plan.MaxMemLoad, maxOf(eCPU), maxOf(eMem))
}

func printManifest(inst *core.Instance, plan *core.Plan, node int) {
	if node < 0 || node >= len(plan.Manifests) {
		log.Fatalf("node %d out of range", node)
	}
	m := plan.Manifests[node]
	fmt.Printf("sampling manifest for node %d (%s): %d range assignments\n",
		node, inst.Topo.Nodes[node].City, len(m.Ranges))
	type row struct {
		class  string
		key    [2]int
		ranges hashing.RangeSet
	}
	var rows []row
	for ui, rs := range m.Ranges {
		u := inst.Units[ui]
		rows = append(rows, row{inst.Classes[u.Class].Name, u.Key, rs})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].class != rows[j].class {
			return rows[i].class < rows[j].class
		}
		if rows[i].key[0] != rows[j].key[0] {
			return rows[i].key[0] < rows[j].key[0]
		}
		return rows[i].key[1] < rows[j].key[1]
	})
	for _, r := range rows {
		fmt.Printf("  class=%-12s unit=%v ranges=%v (width %.4f)\n", r.class, r.key, r.ranges, r.ranges.Width())
	}
}

func runNIPS(topo *topology.Topology, spec Spec, variantName string, iters int, metrics *obs.Registry) {
	var variant nips.Variant
	switch variantName {
	case "basic":
		variant = nips.VariantBasic
	case "lp":
		variant = nips.VariantRoundLP
	case "greedy":
		variant = nips.VariantRoundGreedyLP
	default:
		log.Fatalf("unknown variant %q", variantName)
	}
	inst := nips.NewInstance(topo, nips.UnitRules(spec.Rules), nips.Config{
		MaxPaths:             spec.MaxPaths,
		RuleCapacityFraction: spec.RuleCapacityFraction,
		MatchSeed:            spec.Seed,
	})
	dep, rel, err := nips.Solve(inst, nips.SolveOptions{
		Variant: variant, Iters: iters, Seed: spec.Seed, Workers: spec.Workers,
		Metrics: metrics,
	})
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			log.Fatalf("scenario has no feasible deployment — raise capacities or rule-capacity fraction: %v", err)
		}
		log.Fatal(err)
	}
	if err := dep.Verify(inst); err != nil {
		log.Fatalf("internal error: infeasible deployment: %v", err)
	}
	fmt.Printf("topology=%s nodes=%d rules=%d paths=%d cam/node=%.1f variant=%s iters=%d\n",
		topo.Name, topo.N(), spec.Rules, len(inst.Paths), inst.CamCap[0], variant, iters)
	fmt.Printf("objective=%.4g  OptLP=%.4g  fraction=%.4f\n",
		dep.Objective, rel.Objective, dep.Objective/rel.Objective)
	fmt.Println("\nnode\tenabled_rules")
	for j := 0; j < topo.N(); j++ {
		var enabled []string
		for i := range dep.E {
			if dep.E[i][j] {
				enabled = append(enabled, inst.Rules[i].Name)
			}
		}
		if len(enabled) > 0 {
			fmt.Printf("%d\t%v\n", j, enabled)
		}
	}
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// runWhatIf answers the Section 5 provisioning question: where does added
// capacity reduce the bottleneck most?
func runWhatIf(topo *topology.Topology, spec Spec, r int, factor float64, metrics *obs.Registry) {
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: spec.Sessions, Seed: spec.Seed})
	classes := bro.Classes(bro.StandardModules()[1:])
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), spec.CPUCap, spec.MemCap))
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.SolveOpts(inst, core.SolveOptions{Redundancy: r, Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}
	ups, err := core.WhatIfUpgrades(inst, r, factor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline min-max load = %.4f; upgrades at %gx capacity, best first:\n\n", base.Objective, factor)
	fmt.Println("node\tcity\tresource\tnew_objective\tgain")
	printed := 0
	for _, u := range ups {
		if u.Gain == 0 && printed >= 5 {
			continue // the long zero tail is uninformative
		}
		fmt.Printf("%d\t%s\t%s\t%.4f\t%.4f\n", u.Node, topo.Nodes[u.Node].City, u.Resource, u.Objective, u.Gain)
		printed++
	}
}
