package main

import "math/rand"

// newRand isolates the one math/rand dependency so planning runs stay
// reproducible for a given spec seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
