// Command dataplane benchmarks the per-packet decision path end to end and
// writes the results as JSON (BENCH_dataplane.json in the bench tier).
//
//	dataplane [-o BENCH_dataplane.json] [-sessions 60000] [-node 10] [-reps 9]
//
// Two decision loops run over the same node-local trace and must produce
// identical verdicts:
//
//   - legacy: the pre-index serial engine's per-session loop — a fresh
//     []bool row allocated per session, per-class map-backed range lookups
//     (control.BaselineDecider), hash recomputed per class via the generic
//     Bob block loop.
//   - batched: the engine's current ingestion primitive — one
//     control.Decider.DecideMask call per session returning the verdict
//     bitmask for all classes at once, backed by the scope-grouped unit
//     index and the flattened interval arena; no per-session row at all.
//
// The report also includes full-engine session/packet throughput (serial
// and sharded) and the allocation count of the batched decision path,
// which must be zero.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"testing"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

type result struct {
	Sessions            int     `json:"sessions"`
	Classes             int     `json:"classes"`
	Decisions           int     `json:"decisions"`
	LegacyNsPerSession  float64 `json:"legacy_ns_per_session"`
	BatchedNsPerSession float64 `json:"batched_ns_per_session"`
	LegacyDecisionsSec  float64 `json:"legacy_decisions_per_sec"`
	DecisionsSec        float64 `json:"decisions_per_sec"`
	Speedup             float64 `json:"speedup"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	EngineSessionsSec   float64 `json:"engine_sessions_per_sec"`
	EnginePacketsSec    float64 `json:"engine_packets_per_sec"`
	ShardedSessionsSec  float64 `json:"engine_sessions_per_sec_sharded"`
	ShardedPacketsSec   float64 `json:"engine_packets_per_sec_sharded"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dataplane: ")
	out := flag.String("o", "BENCH_dataplane.json", "output JSON path")
	nSessions := flag.Int("sessions", 60000, "trace size before node filtering")
	node := flag.Int("node", 10, "node whose manifest is benchmarked")
	reps := flag.Int("reps", 9, "timing repetitions (fastest wins)")
	nModules := flag.Int("modules", 21, "module count (Figure 6 sweep top end)")
	flag.Parse()

	topo := topology.Internet2()
	// The paper's scaling experiment duplicates existing modules up to 21
	// "to emulate the effect of adding NIDS functionality"; benchmark the
	// top of that sweep. The baseline module (index 0) analyzes nothing.
	modules := bro.WithDuplicates(*nModules)[1:]
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: *nSessions, Seed: 23,
	})
	inst, err := core.BuildInstance(topo, bro.Classes(modules), sessions,
		core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		log.Fatal(err)
	}
	manifest, err := control.ManifestFromPlan(plan, *node, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	local := nodeTrace(topo, sessions, *node)
	if len(local) == 0 {
		log.Fatalf("node %d observes no sessions", *node)
	}

	legacy := control.NewBaselineDecider(manifest)
	dec := control.NewDecider(manifest)
	L := len(modules)

	// Both loops replicate the engine's actual call shape of their era: the
	// pre-index engine resolved every module's verdict through its
	// cfg.Decider interface (one dynamic dispatch per module per session);
	// the current engine makes one MaskDecider dispatch per session.
	var legacyDec bro.ManifestDecider = legacy
	var maskDec bro.MaskDecider = dec

	// Both loops fill a verdict row per session; they must agree exactly.
	legacyLoop := func(rows [][]bool) {
		for si, s := range local {
			row := make([]bool, L) // the pre-index engine allocated per session
			for mi := range modules {
				if modules[mi].MatchesSession(s) && legacyDec.ShouldAnalyze(mi, s) {
					row[mi] = true
				}
			}
			if rows != nil {
				rows[si] = row
			}
		}
	}
	// The decider's internal class filter equals ModuleSpec.MatchesSession
	// (Classes copies Ports and Transport through to the wire manifest), so
	// the batched loop needs no per-module re-check; the verdict comparison
	// below enforces that equality. The loop measures the engine's actual
	// ingestion primitive — one DecideMask word per session, scattered into
	// the bit-packed pass set without a []bool row.
	var maskSink uint64
	batchedLoop := func(rows [][]bool) {
		for si := range local {
			em, ok := maskDec.DecideMask(&local[si])
			if !ok {
				log.Fatal("manifest exceeds 64 classes; mask path unavailable")
			}
			maskSink ^= em
			if rows != nil {
				row := make([]bool, L)
				for mi := range row {
					row[mi] = em&(uint64(1)<<uint(mi)) != 0
				}
				rows[si] = row
			}
		}
	}
	rowsA := make([][]bool, len(local))
	rowsB := make([][]bool, len(local))
	legacyLoop(rowsA)
	batchedLoop(rowsB)
	for si := range rowsA {
		for mi := range rowsA[si] {
			if rowsA[si][mi] != rowsB[si][mi] {
				log.Fatalf("verdict mismatch at session %d module %d", si, mi)
			}
		}
	}

	// The two loops are timed in alternation, not phase by phase: on a
	// shared machine, background load that drifts over the run would
	// otherwise land on one loop's phase and skew the ratio. Alternating
	// reps expose both loops to the same conditions; fastest-of-reps then
	// rejects the contended repetitions for each independently.
	legacyNsTotal, batchedNsTotal := timePair(*reps,
		func() { legacyLoop(nil) }, func() { batchedLoop(nil) })
	legacyNs := legacyNsTotal / float64(len(local))
	batchedNs := batchedNsTotal / float64(len(local))

	allocs := testing.AllocsPerRun(2000, func() {
		em, _ := maskDec.DecideMask(&local[0])
		maskSink ^= em
	})
	if maskSink == 0x5ca1ab1e {
		log.Print("sink") // defeat dead-code elimination of the timed loops
	}

	engCfg := bro.Config{
		Mode: bro.ModeCoordEvent, Modules: modules, Decider: dec, Node: *node,
		Hasher: hashing.Hasher{Key: 1}, Workers: 1,
	}
	var pkts float64
	for _, s := range local {
		pkts += float64(s.Packets)
	}
	engNs := timeLoop(*reps, func() { bro.Run(engCfg, local) })
	shCfg := engCfg
	shCfg.Workers = 0 // GOMAXPROCS
	shNs := timeLoop(*reps, func() { bro.Run(shCfg, local) })

	r := result{
		Sessions:            len(local),
		Classes:             L,
		Decisions:           len(local) * L,
		LegacyNsPerSession:  legacyNs,
		BatchedNsPerSession: batchedNs,
		LegacyDecisionsSec:  1e9 / legacyNs * float64(L),
		DecisionsSec:        1e9 / batchedNs * float64(L),
		Speedup:             legacyNs / batchedNs,
		AllocsPerOp:         allocs,
		EngineSessionsSec:   1e9 * float64(len(local)) / engNs,
		EnginePacketsSec:    1e9 * pkts / engNs,
		ShardedSessionsSec:  1e9 * float64(len(local)) / shNs,
		ShardedPacketsSec:   1e9 * pkts / shNs,
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("sessions=%d legacy=%.1fns/session batched=%.1fns/session speedup=%.2fx allocs=%v",
		r.Sessions, r.LegacyNsPerSession, r.BatchedNsPerSession, r.Speedup, r.AllocsPerOp)
}

// timeLoop runs fn reps times and returns the fastest wall time in ns.
func timeLoop(reps int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// timePair times two loops in alternation and returns each one's fastest
// wall time in ns.
func timePair(reps int, fnA, fnB func()) (float64, float64) {
	bestA := time.Duration(1<<63 - 1)
	bestB := bestA
	for i := 0; i < reps; i++ {
		start := time.Now()
		fnA()
		if d := time.Since(start); d < bestA {
			bestA = d
		}
		start = time.Now()
		fnB()
		if d := time.Since(start); d < bestB {
			bestB = d
		}
	}
	return float64(bestA.Nanoseconds()), float64(bestB.Nanoseconds())
}

// nodeTrace filters the sessions node j observes (origin, terminus, or
// transit), mirroring the emulation's per-node traces.
func nodeTrace(topo *topology.Topology, sessions []traffic.Session, j int) []traffic.Session {
	paths := topo.PathMatrix()
	var out []traffic.Session
	for _, s := range sessions {
		for _, n := range paths[s.Src][s.Dst] {
			if n == j {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
