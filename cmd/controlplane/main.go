// Command controlplane benchmarks the hierarchical delta-manifest control
// plane at scale and writes the results as JSON (BENCH_controlplane.json
// in the bench tier).
//
//	controlplane [-o BENCH_controlplane.json] [-nodes 1000] [-regions 16]
//	             [-epochs 8] [-churn 0.05] [-encoding bin]
//
// The LP solver tops out around 50-node instances, so the deployment plan
// is synthesized directly: one PerIngress coordination unit per node, with
// each node's manifest carrying hash ranges for a window of nearby units —
// the assignment shape ManifestFromPlan produces from real solves, at a
// node count no dense simplex tableau can reach. A two-tier Hierarchy
// (region controllers under a global coordinator) serves the plan to one
// in-process agent per node.
//
// The run measures three things the redesigned subscription API promises:
//
//   - formation: every agent full-fetches its first manifest — this round's
//     wire bytes are the full-manifest baseline;
//   - steady state: each epoch perturbs a -churn fraction of the units and
//     republishes; agents advance via region deltas, and the per-epoch
//     delta bytes must stay at or below 10% of the full baseline;
//   - convergence: every publish must converge the whole cluster in one
//     bounded sync sweep, at a reported agents/sec sync rate.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"nwdeploy/internal/cluster"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
)

type result struct {
	Nodes              int     `json:"nodes"`
	Regions            int     `json:"regions"`
	UnitsPerManifest   int     `json:"units_per_manifest"`
	Epochs             int     `json:"epochs"`
	ChurnFrac          float64 `json:"churn_frac"`
	Encoding           string  `json:"encoding"`
	FullBytes          int     `json:"full_bytes"`            // formation round, all agents
	DeltaBytesPerEpoch float64 `json:"delta_bytes_per_epoch"` // steady-state mean
	DeltaBytesMaxEpoch int     `json:"delta_bytes_max_epoch"`
	DeltaFullRatio     float64 `json:"delta_full_ratio"` // mean delta / full baseline
	DeltaSyncs         int     `json:"delta_syncs"`
	FullSyncs          int     `json:"full_syncs"` // beyond formation; must be 0
	ConvergenceSweeps  int     `json:"convergence_sweeps_max"`
	AgentsPerSec       float64 `json:"agents_per_sec"`
	FormationMs        float64 `json:"formation_ms"`
	SteadyEpochMs      float64 `json:"steady_epoch_ms"`
}

// synthPlan builds a deployment plan for n nodes without the LP: one
// PerIngress unit per node, and each node's manifest holding ranges for
// window units centered on itself (mirroring how path-sharing spreads a
// unit's analysts across neighborhoods in solved plans).
func synthPlan(topo *topology.Topology, window int) *core.Plan {
	n := topo.N()
	inst := &core.Instance{
		Topo: topo,
		Classes: []core.Class{
			{Name: "signature", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 1, MemPerItem: 400},
		},
		Caps: core.UniformCaps(n, 1e9, 1e12),
	}
	for j := 0; j < n; j++ {
		inst.Units = append(inst.Units, core.CoordUnit{
			Class: 0, Key: [2]int{j, -1}, Nodes: []int{j}, Pkts: 1e5, Items: 1e4,
		})
	}
	plan := &core.Plan{Inst: inst, Redundancy: 1}
	for j := 0; j < n; j++ {
		m := core.NodeManifest{Node: j, Ranges: make(map[int]hashing.RangeSet, window)}
		for w := 0; w < window; w++ {
			u := (j + w) % n
			// Each unit's hash space is split across the window nodes that
			// carry it; node j owns slice w of unit (j+w)%n.
			lo := float64(w) / float64(window)
			hi := float64(w+1) / float64(window)
			m.Ranges[u] = hashing.RangeSet{{Lo: lo, Hi: hi}}
		}
		plan.Manifests = append(plan.Manifests, m)
	}
	return plan
}

// churn perturbs the plan in place: for a deterministic frac-sized subset
// of units (rotating with the epoch), every carrying node's range for that
// unit shifts by a small offset — the shape of a drift-triggered replan
// that moves a few boundaries and leaves the rest untouched.
func churn(plan *core.Plan, window int, epoch int, frac float64) {
	n := len(plan.Manifests)
	stride := int(1 / frac)
	if stride < 1 {
		stride = 1
	}
	shift := 0.01 * float64(epoch%7+1)
	for u := epoch % stride; u < n; u += stride {
		for w := 0; w < window; w++ {
			j := (u - w + n*window) % n // node holding slice w of unit u
			rs := plan.Manifests[j].Ranges[u]
			for i := range rs {
				width := rs[i].Hi - rs[i].Lo
				lo := rs[i].Lo + shift
				if lo+width > 1 {
					lo -= 1 - width
				}
				rs[i] = hashing.Range{Lo: lo, Hi: lo + width}
			}
			plan.Manifests[j].Ranges[u] = rs
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("controlplane: ")
	out := flag.String("o", "BENCH_controlplane.json", "output JSON path")
	nodes := flag.Int("nodes", 1000, "cluster size (agents)")
	regions := flag.Int("regions", 16, "region controllers")
	window := flag.Int("window", 8, "units per node manifest")
	epochs := flag.Int("epochs", 8, "steady-state publish epochs")
	churnFrac := flag.Float64("churn", 0.05, "fraction of units perturbed per epoch")
	encName := flag.String("encoding", "bin", "delta response encoding: json|bin")
	maxSweeps := flag.Int("max-sweeps", 4, "sync sweeps allowed per epoch before declaring divergence")
	flag.Parse()

	var enc control.Encoding
	switch *encName {
	case "json":
		enc = control.EncodingJSON
	case "bin":
		enc = control.EncodingBinary
	default:
		log.Fatalf("unknown encoding %q", *encName)
	}

	cores := *nodes / 40
	if cores < 3 {
		cores = 3
	}
	topo := topology.RocketfuelLike(topology.RocketfuelSpec{
		ASN: 64512, Name: "Synth", PoPs: *nodes, Cores: cores, Seed: 424242,
	})
	plan := synthPlan(topo, *window)

	h, err := cluster.NewHierarchy(cluster.HierarchyOptions{
		Topo: topo, Plan: plan, Regions: *regions, HashKey: 7,
		Deltas: true, Encoding: enc,
		Agent: control.AgentOptions{DialTimeout: 2 * time.Second, RPCTimeout: 5 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	// Formation: every agent's first sync is a full manifest fetch.
	start := time.Now()
	rep := h.SyncAll()
	formation := time.Since(start)
	if rep.Failed != 0 || rep.Fulls != *nodes || !h.Converged() {
		log.Fatalf("formation round did not converge: %+v", rep)
	}
	res := result{
		Nodes: *nodes, Regions: *regions, UnitsPerManifest: *window,
		Epochs: *epochs, ChurnFrac: *churnFrac, Encoding: *encName,
		FullBytes:   rep.Bytes,
		FormationMs: float64(formation.Microseconds()) / 1e3,
	}

	// Steady state: churn, publish, sweep until converged.
	var totalBytes, synced int
	var steadyTime time.Duration
	for e := 1; e <= *epochs; e++ {
		churn(plan, *window, e, *churnFrac)
		h.Publish(plan)
		epochBytes, sweeps := 0, 0
		t0 := time.Now()
		for !h.Converged() {
			if sweeps++; sweeps > *maxSweeps {
				log.Fatalf("epoch %d did not converge in %d sweeps", e, *maxSweeps)
			}
			r := h.SyncAll()
			if r.Failed != 0 {
				log.Fatalf("epoch %d sweep %d failed agents: %+v", e, sweeps, r)
			}
			epochBytes += r.Bytes
			res.DeltaSyncs += r.Deltas
			res.FullSyncs += r.Fulls
			synced += *nodes
		}
		steadyTime += time.Since(t0)
		totalBytes += epochBytes
		if epochBytes > res.DeltaBytesMaxEpoch {
			res.DeltaBytesMaxEpoch = epochBytes
		}
		if sweeps > res.ConvergenceSweeps {
			res.ConvergenceSweeps = sweeps
		}
	}
	res.DeltaBytesPerEpoch = float64(totalBytes) / float64(*epochs)
	res.DeltaFullRatio = res.DeltaBytesPerEpoch / float64(res.FullBytes)
	res.SteadyEpochMs = float64(steadyTime.Microseconds()) / 1e3 / float64(*epochs)
	res.AgentsPerSec = float64(synced) / steadyTime.Seconds()

	if res.FullSyncs != 0 {
		log.Fatalf("steady state took %d full fetches; every advance should be a delta", res.FullSyncs)
	}
	if res.DeltaFullRatio > 0.10 {
		log.Fatalf("steady-state delta bytes are %.1f%% of the full baseline (limit 10%%)",
			100*res.DeltaFullRatio)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	encJSON := json.NewEncoder(f)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(res); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d agents, %d regions: full=%dB delta/epoch=%.0fB (%.2f%%), %.0f agents/sec, wrote %s",
		*nodes, *regions, res.FullBytes, res.DeltaBytesPerEpoch,
		100*res.DeltaFullRatio, res.AgentsPerSec, *out)
}
