// Command tracecheck validates a flight-recorder JSONL dump produced by
// -trace (cmd/cluster, cmd/experiments) or the obshttp /trace endpoint
// against the internal/trace wire schema:
//
//   - every line is a JSON object decoding into trace.Event with no
//     unknown fields;
//   - the first line is the synthetic "dump" header naming the reason,
//     and no other line is;
//   - every event type is in trace.KnownTypes();
//   - trace/span/parent IDs are 16 lowercase hex digits;
//   - per component, Seq is strictly increasing (gaps are legal — they
//     are ring evictions — and are reported, not rejected);
//   - the header's components/events attrs match the body.
//
// Usage:
//
//	tracecheck [-q] file.jsonl...
//
// It prints one summary line per file (suppressed by -q) and exits
// non-zero on the first invalid file, so it slots into the Makefile's
// trace smoke tier.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nwdeploy/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	quiet := flag.Bool("q", false, "suppress per-file summaries")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: tracecheck [-q] file.jsonl...")
	}
	for _, path := range flag.Args() {
		sum, err := checkFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if !*quiet {
			fmt.Printf("%s: ok — reason %q, %d components, %d events, %d evicted\n",
				path, sum.reason, sum.components, sum.events, sum.evicted)
		}
	}
}

type summary struct {
	reason     string
	components int
	events     int
	evicted    int
}

func checkFile(path string) (*summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	known := map[string]bool{}
	for _, t := range trace.KnownTypes() {
		known[t] = true
	}

	var (
		sum      summary
		line     int
		events   int
		lastSeq  = map[string]int{}
		comps    = map[string]bool{}
		declared struct{ components, events int }
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("line %d: empty line", line)
		}
		var ev trace.Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if !known[ev.Type] {
			return nil, fmt.Errorf("line %d: unknown event type %q", line, ev.Type)
		}
		if err := checkID("trace", ev.Trace, false); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if err := checkID("span", ev.Span, false); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if err := checkID("parent", ev.Parent, true); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if ev.Comp == "" {
			return nil, fmt.Errorf("line %d: missing comp", line)
		}
		if line == 1 {
			if ev.Type != trace.EvDump {
				return nil, fmt.Errorf("line 1: first line must be the %q header, got %q", trace.EvDump, ev.Type)
			}
			attrs := attrMap(ev.Attrs)
			sum.reason = attrs["reason"]
			if sum.reason == "" {
				return nil, fmt.Errorf("line 1: dump header has no reason attr")
			}
			if _, err := fmt.Sscan(attrs["components"], &declared.components); err != nil {
				return nil, fmt.Errorf("line 1: bad components attr %q", attrs["components"])
			}
			if _, err := fmt.Sscan(attrs["events"], &declared.events); err != nil {
				return nil, fmt.Errorf("line 1: bad events attr %q", attrs["events"])
			}
			continue
		}
		if ev.Type == trace.EvDump {
			return nil, fmt.Errorf("line %d: duplicate %q header", line, trace.EvDump)
		}
		events++
		key := fmt.Sprintf("%s/%d", ev.Comp, ev.Node)
		if last, seen := lastSeq[key]; seen {
			if ev.Seq <= last {
				return nil, fmt.Errorf("line %d: component %s seq %d not after %d", line, key, ev.Seq, last)
			}
			sum.evicted += ev.Seq - last - 1
		} else {
			// The first retained seq > 0 means earlier events were evicted.
			sum.evicted += ev.Seq
		}
		lastSeq[key] = ev.Seq
		comps[key] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("empty file: no dump header")
	}
	if events != declared.events {
		return nil, fmt.Errorf("header declares %d events, body holds %d", declared.events, events)
	}
	if len(comps) != declared.components {
		return nil, fmt.Errorf("header declares %d components, body holds %d", declared.components, len(comps))
	}
	sum.components = len(comps)
	sum.events = events
	return &sum, nil
}

// checkID validates a 16-lowercase-hex-digit span/trace ID. Parent may be
// empty (epoch roots and the dump header carry none).
func checkID(field, v string, optional bool) error {
	if v == "" {
		if optional {
			return nil
		}
		return fmt.Errorf("missing %s id", field)
	}
	if len(v) != 16 {
		return fmt.Errorf("%s id %q is not 16 hex digits", field, v)
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%s id %q is not lowercase hex", field, v)
		}
	}
	return nil
}

func attrMap(attrs []trace.Attr) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}
