// Command cluster runs the resilient deployment demo: an in-process
// controller plus one agent per monitoring node, exchanging manifests over
// real loopback TCP while a seeded fault injector crashes nodes, takes the
// controller offline, and drops or black-holes control connections. Each
// epoch prints the control plane's convergence and the achieved analysis
// coverage against the plan's Section 2.5 static prediction, ending with a
// verdict on whether the provisioned redundancy held at runtime.
//
// Usage:
//
//	cluster [-topology internet2] [-sessions 4000] [-epochs 8] [-redundancy 1]
//	        [-seed 1] [-lossprob 0.2] [-blackholeprob 0.05]
//	        [-nodefailprob 0.15] [-outageprob 0.1] [-maxdown 0]
//	        [-stalegrace 2] [-reoptevery 3] [-workers 0] [-probes 2000]
//	        [-metrics run.json] [-trace run.trace.jsonl] [-ringsize 512]
//	        [-slo-worst-cov 0] [-slo-avg-cov 0] [-slo-max-shed -1]
//	        [-slo-max-replan-iters -1] [-slo-max-fetch-fail -1]
//	        [-slo-max-dark -1] [-slo-deadline-miss] [-ledger auditdir]
//	        [-fleet] [-pprof 127.0.0.1:6060]
//	cluster -overload [-burstfactor 4] [-burstprob 0.15] [-governor]
//	        [-replan] [-warmreplan] [-replanthreshold 0.2] [-replanmaxiters 0]
//	        [common flags as above]
//	cluster -scenario diurnal|flashcrowd|synflood|maintenance|adversary
//	        [-dataplane] [-governor] [-replan] [-warmreplan] [common flags]
//
// The whole run is a pure function of its flags: same flags, same output,
// byte for byte, despite the real sockets underneath (see internal/chaos
// for the determinism contract). With -redundancy 2 the path-scoped module
// subset is deployed (ingress/egress-scoped units admit only one copy) and
// -maxdown defaults to r-1, putting the coverage guarantee on trial.
//
// With -trace the run records its flight recorder (internal/trace): every
// control-plane decision lands in per-component rings, and the JSONL dump
// — written at the first guarantee violation, or at run end when the run
// finishes clean — reconstructs the causal chain (burst → overrun → shed →
// replan). The dump is byte-identical across -workers values. The -slo-*
// flags arm the per-epoch SLO watchdog; breaches show in the table's slo
// column and trigger the post-mortem.
//
// With -scenario the run is driven by a named composable scenario from the
// experiments catalog (join several with +, e.g. maintenance+flashcrowd):
// the driver mutates traffic, injects crafted sessions, and schedules
// drains or crashes each epoch, and the run audits achieved wire coverage
// against what the published manifests promised, plus whether any injected
// session evaded analysis. -dataplane additionally runs each agent's
// engine over its share of the (scaled + injected) traffic.
//
// With -overload the fault injector is replaced by a bursty traffic series:
// per-node load governors (-governor) shed hash ranges deterministically when
// an epoch's projected load overruns the plan's budget — lowest drop-value
// classes first, never below the r=1 coverage floor — and an EWMA drift
// detector (-replan) triggers re-solves, warm-started from the previous
// basis with -warmreplan, bounded by -replanmaxiters simplex iterations
// (a miss falls back to the governors' shed state).
//
// With -fleet the run additionally collects the fleet telemetry plane
// (internal/telemetry): each node's compact stats report rides its
// existing control-plane exchanges, the controller folds reports into a
// per-epoch health rollup (healthy / stale / shedding / dark), and the
// rollup prints as a second table after the run. The plane is write-only:
// the report tables above are byte-identical with or without it. While the
// run executes, -pprof serves the debug HTTP surface (obshttp.NewMux),
// including /fleet and /fleet/history for live scraping with cmd/fleetstat.
//
// With -ledger DIR the run additionally writes its tamper-evident audit
// ledger (internal/ledger): chain.jsonl (the hash-chained record log),
// objects/ (content-addressed manifest and trace blobs), and HEAD (the
// pinned chain head digest). Verify offline with:
//
//	auditcheck -dir DIR -seed SEED
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/cluster"
	"nwdeploy/internal/control"
	"nwdeploy/internal/experiments"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/obs/obshttp"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster: ")
	topoName := flag.String("topology", "internet2", "internet2 | geant | as1221 | as1239 | as3257 | isp50")
	sessions := flag.Int("sessions", 4000, "sessions in the generated workload")
	epochs := flag.Int("epochs", 8, "chaos epochs to run")
	redundancy := flag.Int("redundancy", 1, "provisioned coverage level r (2 deploys the path-scoped module subset)")
	seed := flag.Int64("seed", 1, "chaos seed; same seed, same report")
	lossProb := flag.Float64("lossprob", 0.2, "per-dial probability of an injected connection error")
	blackholeProb := flag.Float64("blackholeprob", 0.05, "per-dial probability of a black-holed connection (RPC timeout)")
	nodeFailProb := flag.Float64("nodefailprob", 0.15, "per-(node, epoch) crash probability")
	outageProb := flag.Float64("outageprob", 0.1, "per-epoch controller outage probability")
	maxDown := flag.Int("maxdown", 0, "cap on concurrently crashed nodes (0: uncapped, or r-1 when redundancy > 1)")
	staleGrace := flag.Int("stalegrace", 2, "epochs an agent may serve a stale manifest before going dark (-1 for none)")
	reoptEvery := flag.Int("reoptevery", 3, "re-stamp the plan every k epochs (-1 disables)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); output is identical for every value")
	probes := flag.Int("probes", 2000, "coverage probe points per coordination unit")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	tracePath := flag.String("trace", "", "record the flight recorder and write its JSONL dump to this file")
	ledgerDir := flag.String("ledger", "", "record the tamper-evident audit ledger under this directory (chain.jsonl, HEAD, objects/); verify offline with auditcheck")
	ringSize := flag.Int("ringsize", 512, "flight-recorder ring capacity per component (events)")
	sloWorst := flag.Float64("slo-worst-cov", 0, "SLO: minimum per-epoch worst-node coverage (0 disables)")
	sloAvg := flag.Float64("slo-avg-cov", 0, "SLO: minimum per-epoch average coverage (0 disables)")
	sloShed := flag.Float64("slo-max-shed", -1, "SLO: maximum total shed width per epoch (negative disables)")
	sloIters := flag.Int("slo-max-replan-iters", -1, "SLO: maximum replan simplex iterations per epoch (negative disables)")
	sloFetchFail := flag.Int("slo-max-fetch-fail", -1, "SLO: maximum fetch failures per epoch (negative disables)")
	sloDark := flag.Int("slo-max-dark", -1, "SLO: maximum dark agents per epoch (negative disables)")
	sloDeadline := flag.Bool("slo-deadline-miss", false, "SLO: treat a missed replan deadline as a violation")
	deltas := flag.Bool("deltas", false, "agents sync via v2 delta subscriptions (one exchange per sync) instead of the legacy probe+fetch pair")
	encoding := flag.String("encoding", "json", "delta-subscription response encoding: json | bin")
	overload := flag.Bool("overload", false, "run the overload scenario (bursty traffic + governor/replanning) instead of fault injection")
	burstFactor := flag.Float64("burstfactor", 4, "overload: volume multiplier on a bursting pair")
	burstProb := flag.Float64("burstprob", 0.15, "overload: per-(epoch, pair) burst probability")
	baseJitter := flag.Float64("basejitter", 0.1, "overload: multiplicative noise around the mean traffic volume")
	governorOn := flag.Bool("governor", false, "overload: enable the per-node load governor (shed over budget)")
	replan := flag.Bool("replan", false, "overload: enable drift-triggered replanning")
	warmReplan := flag.Bool("warmreplan", false, "overload: warm-start replans from the previous basis")
	replanThreshold := flag.Float64("replanthreshold", 0.2, "overload: EWMA relative-error drift threshold")
	replanMaxIters := flag.Int("replanmaxiters", 0, "overload: simplex-iteration deadline per replan (0 = none; a miss falls back to shed state)")
	scenario := flag.String("scenario", "", "run a named composable scenario (diurnal, flashcrowd, synflood, maintenance, adversary, or a + composition) instead of fault injection")
	dataPlane := flag.Bool("dataplane", false, "scenario: run each agent's analysis engine over its traffic share every epoch")
	fleetOn := flag.Bool("fleet", false, "collect fleet telemetry (per-node stats piggybacked on the control wire) and print the per-epoch health rollup")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, /metrics, /trace, /fleet, and /fleet/history on this address while the run executes")
	flag.Parse()

	var topo *topology.Topology
	switch *topoName {
	case "internet2":
		topo = topology.Internet2()
	case "geant":
		topo = topology.Geant()
	case "as1221":
		topo = topology.RocketfuelLike(topology.AS1221)
	case "as1239":
		topo = topology.RocketfuelLike(topology.AS1239)
	case "as3257":
		topo = topology.RocketfuelLike(topology.AS3257)
	case "isp50":
		topo = topology.FiftyNode()
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}

	metrics := obs.New()
	var fleet *telemetry.Fleet
	var fleetHist *telemetry.History
	if *fleetOn {
		fleet = telemetry.NewFleet(topo.N(), telemetry.FleetOptions{})
		fleetHist = telemetry.NewHistory(*epochs)
	}
	// printFleet renders the controller's per-epoch health rollup — its
	// wire truth, which deliberately lags node-local state by the delivery
	// epoch (see internal/cluster/fleet.go).
	printFleet := func() {
		if fleetHist == nil {
			return
		}
		fmt.Println("# fleet health (controller wire truth)")
		fmt.Println("epoch\tctrl_epoch\thealthy\tstale\tshedding\tdark\tdark_nodes")
		for _, s := range fleetHist.Snapshots() {
			var darkNodes []int
			for _, v := range s.Nodes {
				if v.Health == telemetry.Dark {
					darkNodes = append(darkNodes, v.Node)
				}
			}
			fmt.Printf("%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				s.RunEpoch, s.CtrlEpoch, s.Healthy, s.Stale, s.Shedding, s.Dark,
				nodeList(darkNodes))
		}
	}
	var tracer *trace.Tracer
	var traceFile *os.File
	var traceBuf bytes.Buffer // retained copy of the dump for the ledger's trace record
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("creating trace file: %v", err)
		}
		traceFile = f
		tracer = trace.New(trace.Options{Seed: *seed, RingSize: *ringSize})
		tracer.SetSink(io.MultiWriter(f, &traceBuf))
	}

	if *pprofAddr != "" {
		go func() {
			err := obshttp.ServeOpts(*pprofAddr, obshttp.Options{
				Registry: metrics, Tracer: tracer, Fleet: fleet, History: fleetHist,
			})
			if err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var led *ledger.Ledger
	var chainFile *os.File
	if *ledgerDir != "" {
		store, err := ledger.NewDirStore(filepath.Join(*ledgerDir, "objects"))
		if err != nil {
			log.Fatalf("creating ledger store: %v", err)
		}
		f, err := os.Create(filepath.Join(*ledgerDir, "chain.jsonl"))
		if err != nil {
			log.Fatalf("creating ledger chain: %v", err)
		}
		chainFile = f
		led = ledger.New(ledger.Options{Seed: *seed, Store: store, Sink: f})
		// The trace dump header pins the chain head at dump time, binding
		// the flight recording to the ledger prefix it was recorded against.
		tracer.SetChainHead(led.HeadHex)
	}
	slo := trace.Disabled()
	slo.MinWorstCoverage = *sloWorst
	slo.MinAvgCoverage = *sloAvg
	slo.MaxShedWidth = *sloShed
	slo.MaxReplanIters = *sloIters
	slo.MaxFetchFailures = *sloFetchFail
	slo.MaxDarkAgents = *sloDark
	slo.DeadlineMissIsViolation = *sloDeadline
	watchdog := trace.NewWatchdog(slo)
	// finishTrace flushes the post-mortem if no violation already did, so a
	// -trace run always leaves a dump behind, then reports recorder totals
	// (also exported through -metrics as trace.events / trace.dropped).
	finishTrace := func() {
		if tracer == nil {
			return
		}
		tracer.DumpOnce("run_end")
		emitted, dropped := tracer.Stats()
		metrics.Set("trace.events", float64(emitted))
		metrics.Set("trace.dropped", float64(dropped))
		if err := traceFile.Close(); err != nil {
			log.Fatalf("closing trace file: %v", err)
		}
		fmt.Printf("# trace: %d events recorded (%d evicted from rings) -> %s\n",
			emitted, dropped, *tracePath)
	}
	// finishLedger runs after finishTrace: it commits the flight-recorder
	// dump (when one was recorded) as the chain's final trace record, then
	// pins the head digest in the HEAD file — the run's single trust
	// anchor, which auditcheck verifies the whole history against.
	finishLedger := func() {
		if led == nil {
			return
		}
		if traceBuf.Len() > 0 {
			ep := uint64(0)
			if recs := led.Records(); len(recs) > 0 {
				ep = recs[len(recs)-1].Epoch
			}
			b := led.Begin(ledger.RecTrace, ep)
			b.Blob(ledger.ItemTrace, "dump", traceBuf.Bytes(), nil)
			if _, err := b.Commit(); err != nil {
				log.Fatalf("committing trace record: %v", err)
			}
		}
		if err := led.Err(); err != nil {
			log.Fatalf("ledger: %v", err)
		}
		if err := chainFile.Close(); err != nil {
			log.Fatalf("closing ledger chain: %v", err)
		}
		head := led.HeadHex()
		if err := os.WriteFile(filepath.Join(*ledgerDir, "HEAD"), []byte(head+"\n"), 0o644); err != nil {
			log.Fatalf("writing ledger HEAD: %v", err)
		}
		commits, _, blobBytes := led.Stats()
		fmt.Printf("# ledger: %d records committed (%d blob bytes), head %s -> %s\n",
			commits, blobBytes, head, *ledgerDir)
	}

	if *scenario != "" {
		driver, err := experiments.NewScenario(*scenario, *seed, *epochs)
		if err != nil {
			log.Fatal(err)
		}
		scfg := cluster.ScenarioConfig{
			Driver: driver,
			Topo:   topo, Sessions: *sessions, Epochs: *epochs,
			Redundancy: *redundancy, Seed: *seed,
			Governor: *governorOn,
			Replan:   *replan, WarmReplan: *warmReplan,
			ReplanThreshold: *replanThreshold, ReplanMaxIters: *replanMaxIters,
			StaleGrace: *staleGrace, DataPlane: *dataPlane,
			Workers: *workers, Probes: *probes, Metrics: metrics,
			Trace: tracer, Watchdog: watchdog, Ledger: led,
			Fleet: fleet, FleetHistory: fleetHist,
		}
		if strings.Contains(*scenario, "synflood") && *redundancy == 1 {
			// The flood targets the egress-scoped SYNFlood module, which
			// the PerPath default set leaves out (its units admit a single
			// copy, so it only deploys at r=1); swap in the flood subset so
			// the injected flood is visible to the data plane.
			for _, m := range bro.StandardModules() {
				switch m.Name {
				case "http", "signature", "synflood":
					scfg.Modules = append(scfg.Modules, m)
				}
			}
		}
		rep, err := cluster.RunScenario(scfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# scenario %s on %s: %d nodes, %d sessions, redundancy %d, seed %d, governor %v, replan %v, objective %.4f\n",
			rep.Scenario, rep.Topology, rep.Nodes, rep.Sessions, rep.Redundancy,
			rep.Seed, rep.Governor, rep.Replan, rep.Objective)
		fmt.Println("epoch\tdown\tdrained\tctrl_down\tinjected\tcaught\tevaded\tmax_rel_err\treplanned\tover_budget\tfloor_limited\tshed_width\tsynced\tstale\tdark\talerts\tworst_cov\tavg_cov\texpected_worst\tbreach\tslo")
		for _, e := range rep.Epochs {
			fmt.Printf("%d\t%s\t%s\t%v\t%d\t%d\t%d\t%.4f\t%v\t%d\t%d\t%.4f\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\t%v\t%s\n",
				e.Epoch, nodeList(e.DownNodes), nodeList(e.Drained), e.CtrlDown,
				e.Injected, e.InjectedCaught, e.InjectedEvaded,
				e.MaxRelErr, e.Replanned, e.OverBudget, e.Unsatisfied, e.ShedWidth,
				e.SyncedAgents, e.StaleAgents, e.DarkAgents, e.Alerts,
				e.WorstCoverage, e.AvgCoverage, e.ExpectedWorst, e.Breach,
				sloCell(e.SLOViolations))
		}
		fmt.Printf("# summary: worst coverage %.4f, avg %.4f, shed fraction %.4f, injected %d (evaded %d, rate %.4f), replans %d (missed %d), alerts %d\n",
			rep.WorstCoverage, rep.AvgCoverage, rep.ShedFraction(),
			rep.TotalInjected, rep.TotalEvaded, rep.EvasionRate(),
			rep.Replans, rep.MissedReplans, rep.TotalAlerts)
		if rep.FloorHeld {
			fmt.Printf("# verdict: published coverage floor held on every epoch\n")
		} else {
			fmt.Printf("# verdict: coverage floor BREACHED on %d epochs (post-mortem in the trace dump)\n", rep.Breaches)
		}
		printFleet()
		finishTrace()
		finishLedger()
		if *metricsPath != "" {
			if err := metrics.WriteFile(*metricsPath); err != nil {
				log.Fatalf("writing metrics: %v", err)
			}
		}
		return
	}

	if *overload {
		ocfg := cluster.OverloadConfig{
			Topo: topo, Sessions: *sessions, Epochs: *epochs,
			Redundancy: *redundancy, Seed: *seed,
			BurstFactor: *burstFactor, BurstProb: *burstProb, BaseJitter: *baseJitter,
			Governor: *governorOn,
			Replan:   *replan, WarmReplan: *warmReplan,
			ReplanThreshold: *replanThreshold, ReplanMaxIters: *replanMaxIters,
			Workers: *workers, Probes: *probes, Metrics: metrics,
			Trace: tracer, Watchdog: watchdog, Ledger: led,
			Fleet: fleet, FleetHistory: fleetHist,
		}
		rep, err := cluster.RunOverload(ocfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# %s: %d nodes, %d sessions, redundancy %d, seed %d, governor %v, replan %v (warm %v), objective %.4f\n",
			rep.Topology, rep.Nodes, rep.Sessions, rep.Redundancy, rep.Seed,
			rep.Governor, rep.Replan, rep.WarmReplan, rep.Objective)
		fmt.Println("epoch\tmax_rel_err\tdrifted\treplanned\twarm\treplan_iters\tmissed\tover_budget\tfloor_limited\tshed_width\tworst_cov\tavg_cov\tshed_floor_worst\tsynced\tslo")
		for _, e := range rep.Epochs {
			fmt.Printf("%d\t%.4f\t%v\t%v\t%v\t%d\t%v\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%s\n",
				e.Epoch, e.MaxRelErr, e.Drifted, e.Replanned, e.ReplanWarm,
				e.ReplanIters, e.ReplanMissed, e.OverBudget, e.Unsatisfied, e.ShedWidth,
				e.WorstCoverage, e.AvgCoverage, e.ShedFloorWorst, e.SyncedAgents,
				sloCell(e.SLOViolations))
		}
		fmt.Printf("# summary: worst coverage %.4f, avg %.4f, max over-budget nodes %d, replans %d (missed %d, %d iters)\n",
			rep.WorstCoverage, rep.AvgCoverage, rep.MaxOverBudget,
			rep.Replans, rep.MissedReplans, rep.TotalReplanIters)
		printFleet()
		finishTrace()
		finishLedger()
		if *metricsPath != "" {
			if err := metrics.WriteFile(*metricsPath); err != nil {
				log.Fatalf("writing metrics: %v", err)
			}
		}
		return
	}

	var enc control.Encoding
	switch *encoding {
	case "json":
		enc = control.EncodingJSON
	case "bin":
		enc = control.EncodingBinary
	default:
		log.Fatalf("unknown encoding %q (want json or bin)", *encoding)
	}
	cfg := cluster.ChaosConfig{
		Topo: topo, Sessions: *sessions, Epochs: *epochs,
		Redundancy: *redundancy, Seed: *seed,
		Faults:       chaos.NetworkFaults{DropProb: *lossProb, BlackholeProb: *blackholeProb},
		NodeFailProb: *nodeFailProb, ControllerOutageProb: *outageProb, MaxDown: *maxDown,
		StaleGrace: *staleGrace, ReoptEvery: *reoptEvery,
		Deltas: *deltas, Encoding: enc,
		Workers: *workers, Probes: *probes,
	}
	if *redundancy > 1 {
		var mods []bro.ModuleSpec
		for _, m := range bro.StandardModules() {
			switch m.Name {
			case "signature", "http":
				mods = append(mods, m)
			}
		}
		cfg.Modules = mods
		if *maxDown == 0 {
			cfg.MaxDown = *redundancy - 1
		}
	}
	cfg.Metrics = metrics
	cfg.Trace = tracer
	cfg.Watchdog = watchdog
	cfg.Ledger = led
	cfg.Fleet = fleet
	cfg.FleetHistory = fleetHist

	rep, err := cluster.CoverageUnderChaos(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# %s: %d nodes, %d sessions, redundancy %d, seed %d, objective %.4f\n",
		rep.Topology, rep.Nodes, rep.Sessions, rep.Redundancy, rep.Seed, rep.Objective)
	fmt.Println("epoch\tctrl_epoch\tctrl_down\tdown_nodes\tsynced\tstale\tdark\tfetch_att\tfetch_fail\ttimeouts\talerts\tworst_cov\tavg_cov\tpredicted_worst\tslo")
	holds := true
	for _, e := range rep.Epochs {
		fmt.Printf("%d\t%d\t%v\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\t%s\n",
			e.Epoch, e.ControllerEpoch, e.ControllerDown, nodeList(e.DownNodes),
			e.SyncedAgents, e.StaleAgents, e.DarkAgents,
			e.FetchAttempts, e.FetchFailures, e.FetchTimeouts, e.Alerts,
			e.WorstCoverage, e.AvgCoverage, e.PredictedWorst,
			sloCell(e.SLOViolations))
		if len(e.DownNodes) <= rep.Redundancy-1 && e.DarkAgents == 0 && e.WorstCoverage < 1 {
			holds = false
		}
	}
	if holds {
		fmt.Printf("# verdict: coverage guarantee held (failures within r-1 never cost coverage)\n")
	} else {
		fmt.Printf("# verdict: coverage guarantee VIOLATED on at least one epoch\n")
	}

	printFleet()
	finishTrace()
	finishLedger()
	if *metricsPath != "" {
		if err := metrics.WriteFile(*metricsPath); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
	}
	_ = os.Stdout.Sync()
}

// sloCell renders an epoch's watchdog verdicts for the table: "ok" when
// clean, else the breached rules joined with commas.
func sloCell(violations []string) string {
	if len(violations) == 0 {
		return "ok"
	}
	return strings.Join(violations, ",")
}

// nodeList renders a node set for the table: "-" when empty.
func nodeList(nodes []int) string {
	if len(nodes) == 0 {
		return "-"
	}
	parts := make([]string, len(nodes))
	for i, j := range nodes {
		parts[i] = fmt.Sprint(j)
	}
	return strings.Join(parts, ",")
}
