// Package nwdeploy is the public API of a network-wide NIDS/NIPS
// deployment planner, reproducing "Network-Wide Deployment of Intrusion
// Detection and Prevention Systems" (Sekar, Krishnaswamy, Gupta, Reiter —
// ACM CoNEXT 2010).
//
// Instead of scaling intrusion detection at a single chokepoint, the system
// exploits the fact that every packet is observed by every node on its
// forwarding path:
//
//   - For NIDS (detection), PlanNIDS solves a linear program that splits
//     each analysis class's traffic across the nodes able to observe it, so
//     that coverage stays complete while the maximum per-node CPU/memory
//     load is minimized. The fractional solution becomes per-node hash-range
//     sampling manifests; a node analyzes a packet for a class exactly when
//     the packet's class-specific hash falls in the node's range.
//
//   - For NIPS (prevention), PlanNIPS places filtering rules into
//     TCAM-constrained nodes to maximally reduce the network footprint of
//     unwanted traffic. Integral rule placement is NP-hard, so the planner
//     solves the LP relaxation and applies randomized rounding with greedy
//     and LP-resolve improvements, achieving >= 92% of the LP upper bound in
//     the paper's regime.
//
//   - For adaptive adversaries, NewAdaptiveNIPS wraps the
//     follow-the-perturbed-leader strategy of Kalai and Vempala so the
//     deployment retains low regret against traffic mixes revealed only
//     after each epoch's decision.
//
// The heavy lifting lives in internal packages (internal/lp is a
// from-scratch bounded-variable simplex solver; internal/bro a Bro-like
// NIDS pipeline simulator; internal/topology and internal/traffic the
// evaluation substrates); this package re-exports the stable surface.
//
// # Observability
//
// The planners accept an optional *Metrics registry (NewMetrics) in their
// options structs. The registry is strictly write-only instrumentation:
// a nil registry is the fully functional no-op default — every handle it
// returns is nil-safe, no clock is read, and planner outputs are
// byte-identical with or without one. Pass a registry only when you want
// solver counters (simplex pivots, rounding trials, TCAM repairs) and
// wall-time histograms; snapshot it with Metrics.WriteFile or publish it
// through expvar with Metrics.Publish.
package nwdeploy

import (
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/nips"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/online"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// Metrics is an optional, allocation-light metrics registry (counters,
// gauges, log-scale histograms, span timers). The zero value for a
// *Metrics — nil — is the no-op registry: it accepts every operation and
// records nothing, so instrumented code needs no guards. See the package
// comment's Observability section for the non-interference contract.
type Metrics = obs.Registry

// NewMetrics returns an empty live registry to pass in an options struct.
func NewMetrics() *Metrics { return obs.New() }

// Re-exported model types. See the internal packages for full
// documentation of each.
type (
	// Topology is an undirected weighted network with shortest-path routing.
	Topology = topology.Topology
	// Node is one PoP-level router location.
	Node = topology.Node

	// Session is one synthetic end-to-end traffic session.
	Session = traffic.Session
	// TrafficMatrix is an ordered-pair traffic share matrix.
	TrafficMatrix = traffic.Matrix

	// Class describes one NIDS analysis type and its resource footprint.
	Class = core.Class
	// NodeResources is a node's CPU and memory capacity.
	NodeResources = core.NodeResources
	// NIDSInstance is a fully specified NIDS placement problem.
	NIDSInstance = core.Instance
	// NIDSPlan is a solved network-wide NIDS deployment with manifests.
	NIDSPlan = core.Plan

	// Rule is one NIPS filtering rule with TCAM/CPU/memory requirements.
	Rule = nips.Rule
	// NIPSInstance is a fully specified NIPS deployment problem.
	NIPSInstance = nips.Instance
	// NIPSDeployment is an integral rule placement with sampling fractions.
	NIPSDeployment = nips.Deployment

	// Hasher maps flow keys to the unit hash space, optionally keyed.
	Hasher = hashing.Hasher
	// FiveTuple identifies a unidirectional flow.
	FiveTuple = hashing.FiveTuple
)

// Scope and Aggregation mirror the NIDS class semantics.
type (
	// Scope determines how a class's traffic partitions into units.
	Scope = core.Scope
	// Aggregation is a class's unit of analysis state.
	Aggregation = core.Aggregation
)

// Class scopes.
const (
	// PerPath units are end-to-end routing paths.
	PerPath = core.PerPath
	// PerIngress units pin analysis to the traffic source's ingress.
	PerIngress = core.PerIngress
	// PerEgress units pin analysis to the traffic destination's egress.
	PerEgress = core.PerEgress
)

// Aggregation kinds.
const (
	// BySession aggregates per bidirectional connection.
	BySession = core.BySession
	// ByFlow aggregates per unidirectional 5-tuple.
	ByFlow = core.ByFlow
	// BySource aggregates per source address.
	BySource = core.BySource
	// ByDestination aggregates per destination address.
	ByDestination = core.ByDestination
)

// Topology constructors.
var (
	// Internet2 is the 11-node Abilene/Internet2 backbone.
	Internet2 = topology.Internet2
	// Geant is a 22-node European research backbone.
	Geant = topology.Geant
)

// GravityMatrix builds a population-product traffic matrix for a topology.
func GravityMatrix(t *Topology) TrafficMatrix { return traffic.Gravity(t) }

// GenerateSessions synthesizes a session workload from a topology and
// traffic matrix with the default mixed protocol profile. Generation is
// deterministic: the same topology, matrix, count, and seed always yield
// the same sessions, independent of GOMAXPROCS or any Workers setting
// elsewhere in the API.
func GenerateSessions(t *Topology, m TrafficMatrix, n int, seed int64) []Session {
	return traffic.Generate(t, m, traffic.GenConfig{Sessions: n, Seed: seed})
}

// UniformCaps gives every node the same CPU and memory capacity. It is a
// pure constructor — the returned slice depends only on its arguments.
func UniformCaps(n int, cpu, mem float64) []NodeResources {
	return core.UniformCaps(n, cpu, mem)
}

// BuildNIDSInstance derives LP inputs (coordination units and their
// volumes) from a topology, class list, and session workload.
func BuildNIDSInstance(t *Topology, classes []Class, sessions []Session, caps []NodeResources) (*NIDSInstance, error) {
	return core.BuildInstance(t, classes, sessions, caps)
}

// NIDSOptions parameterizes PlanNIDS. The zero value solves the paper's
// base formulation: coverage level 1, no aggregation budget, no metrics.
type NIDSOptions struct {
	// Redundancy is the coverage level r: each analysis is replicated at
	// r distinct nodes for fault tolerance (Section 2.5). Values below 1
	// select the base formulation's r = 1.
	Redundancy int
	// Aggregation, when non-nil, adds the Section 5 communication-budget
	// constraint for shipping per-item digests to a collector node.
	Aggregation *AggregationConfig
	// Workers is reserved for future parallel solves; the placement LP is
	// a single simplex run today, so it is currently unused.
	Workers int
	// Metrics, when non-nil, receives solver counters and wall-time
	// spans. The returned plan is byte-identical with or without it.
	Metrics *Metrics
}

// PlanNIDS solves the placement LP and returns the plan with per-node
// sampling manifests. The plan's Stats field carries deterministic solver
// counters (simplex pivots per phase, presolve eliminations).
func PlanNIDS(inst *NIDSInstance, opts NIDSOptions) (*NIDSPlan, error) {
	return core.SolveOpts(inst, core.SolveOptions{
		Redundancy:  opts.Redundancy,
		Aggregation: opts.Aggregation,
		Workers:     opts.Workers,
		Metrics:     opts.Metrics,
	})
}

// PlanNIDSWithRedundancy solves the placement LP at coverage level r.
//
// Deprecated: use PlanNIDS with NIDSOptions{Redundancy: r}. This wrapper
// remains for callers of the original positional signature.
func PlanNIDSWithRedundancy(inst *NIDSInstance, r int) (*NIDSPlan, error) {
	return PlanNIDS(inst, NIDSOptions{Redundancy: r})
}

// NIPSVariant selects the approximation algorithm for PlanNIPS.
type NIPSVariant = nips.Variant

// NIPS algorithm variants, in increasing solution quality.
const (
	// NIPSRounding is the basic Figure 9 randomized rounding.
	NIPSRounding = nips.VariantBasic
	// NIPSRoundingLP re-solves the sampling LP after rounding.
	NIPSRoundingLP = nips.VariantRoundLP
	// NIPSRoundingGreedyLP adds greedy rule packing before the re-solve.
	NIPSRoundingGreedyLP = nips.VariantRoundGreedyLP
)

// UnitRules builds n NIPS rules with unit resource requirements.
func UnitRules(n int) []Rule { return nips.UnitRules(n) }

// NIPSConfig parameterizes BuildNIPSInstance.
type NIPSConfig = nips.Config

// BuildNIPSInstance assembles a NIPS problem from a topology using
// gravity-model volumes and hop-count distances.
func BuildNIPSInstance(t *Topology, rules []Rule, cfg NIPSConfig) *NIPSInstance {
	return nips.NewInstance(t, rules, cfg)
}

// NIPSStats carries the deterministic counters of one PlanNIPS run:
// rounding iterations and trials, TCAM repairs, LP re-solves, and the
// best-objective trajectory across iterations.
type NIPSStats = nips.SolveStats

// NIPSOptions parameterizes PlanNIPS. The zero value runs one iteration
// of the basic Figure 9 rounding with seed 0 on a GOMAXPROCS pool.
type NIPSOptions struct {
	// Variant selects the approximation algorithm (NIPSRounding,
	// NIPSRoundingLP, or NIPSRoundingGreedyLP).
	Variant NIPSVariant
	// Iters is the number of independent rounding iterations; the best
	// deployment wins. Values below 1 select 1.
	Iters int
	// Seed drives the rounding randomness. The same seed yields the same
	// deployment for every Workers setting.
	Seed int64
	// Workers sizes the worker pool the rounding sweep fans out on: 0
	// selects GOMAXPROCS, 1 the serial path.
	Workers int
	// Metrics, when non-nil, receives solver counters and wall-time
	// spans. The result is byte-identical with or without it.
	Metrics *Metrics
}

// NIPSResult is a solved NIPS deployment with its quality measures.
type NIPSResult struct {
	// Deployment is the best integral rule placement found.
	Deployment *NIPSDeployment
	// LPBound is the LP relaxation's objective — the upper bound the
	// paper measures approximation quality against.
	LPBound float64
	// Gap is the relative shortfall (LPBound - Objective) / LPBound, in
	// [0, 1]; the paper's regime achieves Gap <= 0.08. Zero when the
	// bound is zero.
	Gap float64
	// Stats holds the run's deterministic solver counters.
	Stats NIPSStats
}

// PlanNIPS runs the selected approximation variant and returns the best
// deployment together with the LP upper bound it is measured against. The
// rounding sweep runs on the configured worker pool; the result is
// identical to a serial sweep for the same seed.
func PlanNIPS(inst *NIPSInstance, opts NIPSOptions) (*NIPSResult, error) {
	res, err := nips.SolveDetailed(inst, nips.SolveOptions{
		Variant: opts.Variant,
		Iters:   opts.Iters,
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Metrics: opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	out := &NIPSResult{
		Deployment: res.Deployment,
		LPBound:    res.Relaxation.Objective,
		Stats:      res.Stats,
	}
	if out.LPBound > 0 {
		out.Gap = (out.LPBound - res.Deployment.Objective) / out.LPBound
	}
	return out, nil
}

// PlanNIPSWithVariant runs the selected approximation variant with the
// given number of rounding iterations and returns the best deployment and
// the LP upper bound.
//
// Deprecated: use PlanNIPS with NIPSOptions; it additionally reports the
// approximation gap and solve statistics. This wrapper remains for
// callers of the original positional signature.
func PlanNIPSWithVariant(inst *NIPSInstance, variant NIPSVariant, iters int, seed int64) (*NIPSDeployment, float64, error) {
	res, err := PlanNIPS(inst, NIPSOptions{Variant: variant, Iters: iters, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	return res.Deployment, res.LPBound, nil
}

// AdaptiveNIPS is the online (follow-the-perturbed-leader) NIPS deployer.
type AdaptiveNIPS = online.Adapter

// AdaptiveOptions parameterizes NewAdaptiveNIPS. Horizon is the intended
// number of epochs and MaxDrop a conservative bound on the droppable
// traffic fraction; together they set the perturbation scale per
// Theorem 3.1 (zero values select a one-epoch horizon and 1%).
type AdaptiveOptions struct {
	Horizon int
	MaxDrop float64
	// Seed drives the per-epoch perturbation draws.
	Seed int64
	// Workers is reserved; the exact per-epoch optimizer is a single LP
	// solve today.
	Workers int
	// Metrics, when non-nil, receives per-decision solver counters and
	// timing. The decision sequence is identical with or without it.
	Metrics *Metrics
}

// NewAdaptiveNIPS builds an FPL adapter for an instance (TCAM constraints
// are ignored, per the paper's Section 3.5 setting).
func NewAdaptiveNIPS(inst *NIPSInstance, opts AdaptiveOptions) *AdaptiveNIPS {
	return online.NewAdapterOpts(inst, online.AdapterOptions{
		Horizon: opts.Horizon,
		MaxDrop: opts.MaxDrop,
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Metrics: opts.Metrics,
	})
}

// NewAdaptiveNIPSWithHorizon builds an FPL adapter with positional
// Theorem 3.1 parameters.
//
// Deprecated: use NewAdaptiveNIPS with AdaptiveOptions. This wrapper
// remains for callers of the original positional signature.
func NewAdaptiveNIPSWithHorizon(inst *NIPSInstance, gamma int, maxdrop float64, seed int64) *AdaptiveNIPS {
	return NewAdaptiveNIPS(inst, AdaptiveOptions{Horizon: gamma, MaxDrop: maxdrop, Seed: seed})
}

// Operational extensions (the paper's Section 5 discussion points).
type (
	// Upgrade is one what-if provisioning option with its load reduction.
	Upgrade = core.Upgrade
	// Transition is a routing-change handover: retained old assignments
	// plus the state transfers needed for correctness.
	Transition = core.Transition
	// AggregationConfig budgets network-wide aggregated analysis.
	AggregationConfig = core.AggregationConfig
)

// WhatIfUpgrades evaluates single-node capacity upgrades by the given
// factor, sorted by decreasing reduction of the min-max load: "where
// should an administrator add more resources".
func WhatIfUpgrades(inst *NIDSInstance, r int, factor float64) ([]Upgrade, error) {
	return core.WhatIfUpgrades(inst, r, factor)
}

// PlanTransition computes the drain-window retentions and live-state
// transfers for moving between two plans after a routing or traffic
// change.
func PlanTransition(oldPlan, newPlan *NIDSPlan) (*Transition, error) {
	return core.PlanTransition(oldPlan, newPlan)
}

// PlanNIDSWithAggregation solves the placement LP with a communication
// budget for shipping per-item digests to a collector node (Section 5's
// aggregated-analysis extension). It is equivalent to PlanNIDS with
// NIDSOptions{Redundancy: r, Aggregation: &agg}.
func PlanNIDSWithAggregation(inst *NIDSInstance, r int, agg AggregationConfig) (*NIDSPlan, error) {
	return PlanNIDS(inst, NIDSOptions{Redundancy: r, Aggregation: &agg})
}

// GreedyNIDSPlan is the non-optimizing baseline: each coordination unit
// assigned wholly to the least-loaded eligible node. Useful for ablation
// against PlanNIDS.
func GreedyNIDSPlan(inst *NIDSInstance) *NIDSPlan { return core.GreedyPlan(inst) }

// CoverageUnderFailure reports the worst-case and average fraction of the
// hash space still analyzed when the given nodes fail — the robustness the
// redundancy level r buys (a plan solved at redundancy r survives any r-1
// failures with full coverage).
func CoverageUnderFailure(p *NIDSPlan, failed []int) (worst, avg float64) {
	return core.CoverageUnderFailure(p, failed)
}

// SolveNIPSExact computes the true MILP optimum by branch-and-bound; it
// refuses instances with more than a couple dozen binary variables (the
// problem is NP-hard) and exists to validate the approximations.
func SolveNIPSExact(inst *NIPSInstance) (*NIPSDeployment, error) {
	return nips.SolveExact(inst)
}
