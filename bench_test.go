// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artifact (run with `go test -bench=. -benchmem`).
// Each benchmark wraps the corresponding internal/experiments runner at
// quick scale and reports a figure-shaped custom metric alongside the
// timing, so the benchmark output doubles as a compact reproduction table:
//
//	Figure 5  -> coordination-check overheads (max policy-stage CPU ratio)
//	Figure 6  -> max-load reduction as modules grow
//	Figure 7  -> max-load reduction as volume grows
//	Figure 8  -> per-node load spread
//	Figure 10 -> rounding variants as a fraction of the LP bound
//	Figure 11 -> final normalized regret
//	Tables    -> NIDS / NIPS optimization times
//
// cmd/experiments regenerates the full series (use -quick there for the
// same sizes as these benchmarks).
package nwdeploy

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"nwdeploy/internal/experiments"
	"nwdeploy/internal/nips"
)

var benchCfg = experiments.Config{Quick: true}

// BenchmarkNIDSOptimizationTime reproduces the paper's "0.42 seconds to
// compute the optimal solution for a 50-node topology" measurement with
// the pure-Go simplex.
func BenchmarkNIDSOptimizationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NIDSOptTime(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Seconds, "lp-sec/op")
	}
}

// BenchmarkNIPSOptimizationTime reproduces the paper's ~220 s NIPS
// optimization-time measurement (relaxation + rounding + greedy + re-solve).
func BenchmarkNIPSOptimizationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NIPSOptTime(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Seconds, "pipeline-sec/op")
	}
}

// BenchmarkFig5CoordinationOverhead regenerates Figure 5's standalone
// microbenchmark and reports the worst policy-stage CPU overhead ratio.
func BenchmarkFig5CoordinationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchCfg)
		worst := 0.0
		for _, r := range rows {
			worst = math.Max(worst, r.PolicyCPU)
		}
		b.ReportMetric(worst, "max-policy-cpu-overhead")
	}
}

// BenchmarkFig6ModuleScaling regenerates Figure 6 and reports the CPU
// reduction the coordinated deployment achieves at the largest module
// count.
func BenchmarkFig6ModuleScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(1-last.CoordCPU/last.EdgeCPU, "cpu-reduction@21mods")
	}
}

// BenchmarkFig7VolumeScaling regenerates Figure 7 and reports the CPU and
// memory reductions at the largest traffic volume (paper: ~50% and ~20%).
func BenchmarkFig7VolumeScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(1-last.CoordCPU/last.EdgeCPU, "cpu-reduction")
		b.ReportMetric(1-last.CoordMem/last.EdgeMem, "mem-reduction")
	}
}

// BenchmarkFig8PerNodeLoads regenerates Figure 8 and reports the edge
// deployment's hotspot-to-median CPU ratio (the imbalance coordination
// removes).
func BenchmarkFig8PerNodeLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		maxEdge, maxCoord := 0.0, 0.0
		for _, r := range rows {
			maxEdge = math.Max(maxEdge, r.EdgeCPU)
			maxCoord = math.Max(maxCoord, r.CoordCPU)
		}
		b.ReportMetric(maxEdge/maxCoord, "edge-vs-coord-hotspot")
	}
}

// BenchmarkFig10RoundingGap regenerates Figure 10 and reports the mean
// fraction of the LP upper bound achieved by each variant (paper: >= 0.7
// for rounding+LP, >= 0.92 for rounding+greedy+LP).
func BenchmarkFig10RoundingGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var lpSum, greedySum float64
		var lpN, greedyN int
		for _, r := range rows {
			switch r.Variant {
			case nips.VariantRoundLP:
				lpSum += r.Mean
				lpN++
			case nips.VariantRoundGreedyLP:
				greedySum += r.Mean
				greedyN++
			}
		}
		b.ReportMetric(lpSum/float64(lpN), "roundlp-frac-of-optlp")
		b.ReportMetric(greedySum/float64(greedyN), "greedy-frac-of-optlp")
	}
}

// BenchmarkFig11OnlineRegret regenerates Figure 11 and reports the mean
// final normalized regret across runs (paper: at most ~15%, trending to 0).
func BenchmarkFig11OnlineRegret(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, run := range rows {
			sum += math.Abs(run.Series[len(run.Series)-1].Normalized)
		}
		b.ReportMetric(sum/float64(len(rows)), "final-abs-regret")
	}
}

// BenchmarkRedundancyExtension regenerates the Section 2.5 redundancy
// sweep and reports the load multiplier of r=2 over r=1.
func BenchmarkRedundancyExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Redundancy(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].MaxLoad/rows[0].MaxLoad, "r2-load-multiplier")
	}
}

// BenchmarkManifestCheck measures the per-packet Figure 3 decision — the
// hot path every node executes for every packet and class.
func BenchmarkManifestCheck(b *testing.B) {
	topo := Internet2()
	tm := GravityMatrix(topo)
	sessions := GenerateSessions(topo, tm, 2000, 9)
	classes := []Class{
		{Name: "signature", CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
	}
	inst, err := BuildNIDSInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := PlanNIDS(inst, NIDSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	h := Hasher{Key: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sessions[i%len(sessions)]
		plan.ShouldAnalyze(i%topo.N(), 0, s, h)
	}
}

// BenchmarkAblations regenerates the design-choice comparisons and reports
// the fine-grained extension's memory saving (Section 2.5's proposed
// improvement over the prototype).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "fine-grained-mem" {
				b.ReportMetric(1-r.Variant/r.Baseline, "finegrained-mem-saving")
			}
		}
	}
}

// BenchmarkAdversaries plays the FPL deployer against the three adversary
// models and reports the adaptive (evasive) adversary's final regret.
func BenchmarkAdversaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Adversaries(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Adversary == "evasive" {
				b.ReportMetric(r.FinalRegret, "evasive-final-regret")
			}
		}
	}
}

// BenchmarkProvisioning regenerates the Section 5 bursty-provisioning
// comparison and reports how often a mean-volume plan's promise is overrun
// versus the 95th-percentile plan's.
func BenchmarkProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Provisioning(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Strategy {
			case "mean":
				b.ReportMetric(r.ViolationFraction, "mean-plan-violation-frac")
			case "p95-conservative":
				b.ReportMetric(r.ViolationFraction, "p95-plan-violation-frac")
			}
		}
	}
}

// BenchmarkParallelEmulation runs the Figure 6/7 network-wide emulation
// (both deployments, full module set) with the worker pool off and sized to
// the machine, isolating the tentpole parallel layer's speedup on the
// emulation hot path. On multi-core hosts the workers=max sub-benchmark
// should approach a GOMAXPROCS-fold reduction; results are byte-identical
// either way (asserted by the determinism tests).
func BenchmarkParallelEmulation(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Config{Quick: true, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead reruns the Figure 7 emulation with a live metrics
// registry attached, against the metrics=off sub-benchmark as baseline.
// The instrumentation contract is that the two stay within measurement
// noise of each other (the per-session loop is untouched; aggregates are
// recorded only at run boundaries), so a visible gap here means a counter
// crept into a hot path.
func BenchmarkObsOverhead(b *testing.B) {
	for _, withMetrics := range []bool{false, true} {
		name := "metrics=off"
		if withMetrics {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.Config{Quick: true, Workers: 1}
			if withMetrics {
				cfg.Metrics = NewMetrics()
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig7(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFig10 sweeps the Figure 10 (topology x capacity x
// scenario) solver grid serially and on the full worker pool — the second
// tentpole hot path (LP relaxations plus rounding iterations per cell).
func BenchmarkParallelFig10(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Config{Quick: true, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig10(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
