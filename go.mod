module nwdeploy

go 1.22
