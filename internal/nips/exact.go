package nips

import (
	"fmt"
	"math"
)

// SolveExact computes the true optimum of the NIPS MILP (Eqs. 7-14) by
// branch-and-bound over the binary enablement variables, solving the d-LP
// at each leaf (and using the full LP relaxation value as a global upper
// bound for pruning). The problem is NP-hard, so this is only feasible for
// small instances — it exists to validate the approximation algorithms
// against the genuine integer optimum rather than just the LP bound, and
// it refuses instances beyond maxExactVars binary variables.
func SolveExact(inst *Instance) (*Deployment, error) {
	const maxExactVars = 24

	// Only (rule, node) pairs on some path matter.
	onPath := make([]bool, inst.Topo.N())
	nOn := 0
	for _, path := range inst.Paths {
		for _, j := range path {
			if !onPath[j] {
				onPath[j] = true
				nOn++
			}
		}
	}
	nBin := len(inst.Rules) * nOn
	if nBin > maxExactVars {
		return nil, fmt.Errorf("nips: exact solver limited to %d binaries, instance has %d", maxExactVars, nBin)
	}
	var slots []([2]int) // (rule, node) in branch order
	for i := range inst.Rules {
		for j, on := range onPath {
			if on {
				slots = append(slots, [2]int{i, j})
			}
		}
	}

	rel, err := SolveRelaxation(inst)
	if err != nil {
		return nil, err
	}

	newDep := func() *Deployment {
		dep := &Deployment{
			E: make([][]bool, len(inst.Rules)),
			D: make([][][]float64, len(inst.Rules)),
		}
		for i := range dep.E {
			dep.E[i] = make([]bool, inst.Topo.N())
			dep.D[i] = make([][]float64, len(inst.Paths))
			for k := range inst.Paths {
				dep.D[i][k] = make([]float64, len(inst.Paths[k]))
			}
		}
		return dep
	}

	cur := newDep()
	camUsed := make([]float64, inst.Topo.N())
	var best *Deployment
	bestObj := -1.0

	var walk func(pos int) error
	walk = func(pos int) error {
		if pos == len(slots) {
			leaf := newDep()
			for i := range cur.E {
				copy(leaf.E[i], cur.E[i])
			}
			if err := ResolveLP(inst, leaf); err != nil {
				return err
			}
			if leaf.Objective > bestObj {
				bestObj = leaf.Objective
				best = leaf
			}
			return nil
		}
		// The LP relaxation bounds every completion; prune when even it
		// cannot beat the incumbent. (A coarse but sound bound: the global
		// relaxation optimum.)
		if bestObj >= rel.Objective-1e-9 {
			return nil
		}
		i, j := slots[pos][0], slots[pos][1]
		// Branch enabled first (greedier incumbents prune more).
		if camUsed[j]+inst.Rules[i].CamReq <= inst.CamCap[j]+1e-9 {
			cur.E[i][j] = true
			camUsed[j] += inst.Rules[i].CamReq
			if err := walk(pos + 1); err != nil {
				return err
			}
			camUsed[j] -= inst.Rules[i].CamReq
			cur.E[i][j] = false
		}
		return walk(pos + 1)
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	if best == nil {
		best = newDep()
		best.Objective = 0
	}
	return best, nil
}

// ApproximationGap runs the exact solver and a rounding variant on the
// same instance and returns approx/exact (1 means the approximation found
// a true optimum). Intended for tests and small-scale validation.
func ApproximationGap(inst *Instance, variant Variant, iters int, seed int64) (gap float64, exact, approx *Deployment, err error) {
	exact, err = SolveExact(inst)
	if err != nil {
		return 0, nil, nil, err
	}
	approx, _, err = Solve(inst, SolveOptions{Variant: variant, Iters: iters, Seed: seed, Workers: 1})
	if err != nil {
		return 0, nil, nil, err
	}
	if exact.Objective == 0 {
		if approx.Objective == 0 {
			return 1, exact, approx, nil
		}
		return math.Inf(1), exact, approx, nil
	}
	return approx.Objective / exact.Objective, exact, approx, nil
}
