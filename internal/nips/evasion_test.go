package nips

import (
	"math/rand"
	"testing"
)

func evasionDeployment(t *testing.T) (*Instance, *Deployment) {
	t.Helper()
	inst := smallInstance(t, 6, 10, 0.3)
	dep, _, err := Solve(inst, SolveOptions{Variant: VariantRoundGreedyLP, Iters: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return inst, dep
}

func TestEvasionWithKnownKeySucceeds(t *testing.T) {
	inst, dep := evasionDeployment(t)
	// Adversary knows the defender's key: crafted flows land in the
	// unsampled tail and almost nothing is dropped.
	res := SimulateEvasion(inst, dep, 1234, 1234, 30, 64, rand.New(rand.NewSource(1)))
	if res.Flows == 0 || res.EvadableFlows == 0 {
		t.Fatalf("no evadable flows crafted: %+v", res)
	}
	// Cells sampled at full coverage cannot be evaded regardless of the
	// key; success is measured over the evadable cells.
	if res.DroppedEvadable > 0.15 {
		t.Fatalf("known-key evasion dropped %.2f of evadable flows; evasion should mostly succeed", res.DroppedEvadable)
	}
}

func TestPrivateKeyDefeatsEvasion(t *testing.T) {
	inst, dep := evasionDeployment(t)
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(1))
	informed := SimulateEvasion(inst, dep, 1234, 1234, 30, 64, rngA)
	blind := SimulateEvasion(inst, dep, 1234, 99999, 30, 64, rngB)
	// With a private defender key the crafted tuples hash afresh: the drop
	// rate must rebound far above the informed-adversary rate.
	if blind.DroppedFraction < 3*informed.DroppedFraction && blind.DroppedFraction < 0.2 {
		t.Fatalf("private key did not restore drops: informed %.3f, blind %.3f",
			informed.DroppedFraction, blind.DroppedFraction)
	}
	// And the blind rate should be in the ballpark of the mean assigned
	// coverage across crafted cells.
	var coverSum float64
	cells := 0
	for i := range dep.D {
		for k := range inst.Paths {
			total := 0.0
			for pos := range dep.D[i][k] {
				total += dep.D[i][k][pos]
			}
			if total > 1e-12 {
				coverSum += total
				cells++
			}
		}
	}
	meanCover := coverSum / float64(cells)
	if blind.DroppedFraction < meanCover-0.15 || blind.DroppedFraction > meanCover+0.15 {
		t.Fatalf("blind drop rate %.3f far from mean coverage %.3f", blind.DroppedFraction, meanCover)
	}
}

func TestEvasionParameterDefaults(t *testing.T) {
	inst, dep := evasionDeployment(t)
	res := SimulateEvasion(inst, dep, 1, 2, 0, 0, rand.New(rand.NewSource(3)))
	if res.Flows == 0 || res.Candidates < res.Flows {
		t.Fatalf("defaults produced implausible result: %+v", res)
	}
}
