package nips

import (
	"errors"
	"testing"

	"nwdeploy/internal/lp"
)

// TestRelaxationInfeasibleMatchesSentinel pins the error contract: when the
// relaxation LP has no feasible point, callers can detect it structurally
// with errors.Is through the nips wrapping layer instead of parsing the
// message.
func TestRelaxationInfeasibleMatchesSentinel(t *testing.T) {
	inst := smallInstance(t, 8, 15, 0.15)
	// Every NIPS row is an upper bound over nonnegative terms, so the
	// all-zero deployment satisfies any nonnegative capacity; a negative
	// capacity is the minimal perturbation with no feasible point.
	for j := range inst.CPUCap {
		inst.CPUCap[j] = -1
	}
	_, err := SolveRelaxation(inst)
	if err == nil {
		t.Fatal("zero-capacity relaxation solved")
	}
	if !errors.Is(err, lp.ErrInfeasible) {
		t.Fatalf("error %v does not match lp.ErrInfeasible", err)
	}
}
