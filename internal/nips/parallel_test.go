package nips

import (
	"reflect"
	"testing"
)

// TestSolveWorkersDeterminism: the rounding sweep derives one RNG per
// iteration from the root seed and picks the winner in iteration order, so
// serial and parallel sweeps must return byte-identical deployments.
func TestSolveWorkersDeterminism(t *testing.T) {
	inst := smallInstance(t, 8, 12, 0.15)
	for _, v := range []Variant{VariantBasic, VariantRoundLP, VariantRoundGreedyLP} {
		serial, _, err := Solve(inst, SolveOptions{Variant: v, Iters: 6, Seed: 99, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		fanned, _, err := Solve(inst, SolveOptions{Variant: v, Iters: 6, Seed: 99, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, fanned) {
			t.Errorf("%v: deployment depends on worker count (serial obj %v, fanned obj %v)",
				v, serial.Objective, fanned.Objective)
		}
		if serial.Objective <= 0 {
			t.Errorf("%v: zero objective makes the comparison weak", v)
		}
	}
}

// TestSolveDefaultsAndSeedSensitivity: Iters 0 selects one iteration, and
// different seeds genuinely change the rounding draws (guarding against a
// derivation bug that collapses every stream onto one sequence).
func TestSolveDefaultsAndSeedSensitivity(t *testing.T) {
	inst := smallInstance(t, 8, 12, 0.15)
	one, _, err := Solve(inst, SolveOptions{Variant: VariantBasic, Iters: 0, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one == nil || one.Objective < 0 {
		t.Fatalf("Iters=0 solve returned %+v", one)
	}
	differ := false
	base, _, err := Solve(inst, SolveOptions{Variant: VariantBasic, Iters: 1, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 12 && !differ; seed++ {
		dep, _, err := Solve(inst, SolveOptions{Variant: VariantBasic, Iters: 1, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		differ = !reflect.DeepEqual(base.D, dep.D)
	}
	if !differ {
		t.Fatal("ten distinct seeds produced identical roundings; seed derivation inert")
	}
}
