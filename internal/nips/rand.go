package nips

import "math/rand"

// newSeededRand centralizes RNG construction for reproducible runs.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
