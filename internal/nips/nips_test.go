package nips

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nwdeploy/internal/topology"
)

// smallInstance builds a quick Internet2 instance suitable for unit tests.
func smallInstance(t *testing.T, rules, paths int, camFrac float64) *Instance {
	t.Helper()
	return NewInstance(topology.Internet2(), UnitRules(rules), Config{
		MaxPaths:             paths,
		RuleCapacityFraction: camFrac,
		MatchSeed:            7,
	})
}

func TestNewInstanceShape(t *testing.T) {
	inst := smallInstance(t, 10, 20, 0.2)
	if len(inst.Paths) != 20 {
		t.Fatalf("paths = %d, want 20", len(inst.Paths))
	}
	if len(inst.M) != 10 || len(inst.M[0]) != 20 {
		t.Fatalf("match-rate matrix is %dx%d", len(inst.M), len(inst.M[0]))
	}
	for k, path := range inst.Paths {
		if len(inst.Dist[k]) != len(path) {
			t.Fatalf("path %d: %d dist entries for %d nodes", k, len(inst.Dist[k]), len(path))
		}
		// Hop distances decrease toward the egress, ending at 1.
		for pos := range path {
			want := float64(len(path) - pos)
			if inst.Dist[k][pos] != want {
				t.Fatalf("path %d pos %d: dist %v, want %v", k, pos, inst.Dist[k][pos], want)
			}
		}
		if inst.Items[k] <= 0 || inst.Pkts[k] <= 0 {
			t.Fatalf("path %d has nonpositive volume", k)
		}
	}
	for j := range inst.CamCap {
		if inst.CamCap[j] != 0.2*10 {
			t.Fatalf("CamCap[%d] = %v, want 2", j, inst.CamCap[j])
		}
		if inst.MemCap[j] != DefaultMemCap || inst.CPUCap[j] != DefaultCPUCap {
			t.Fatalf("default caps wrong at node %d", j)
		}
	}
}

func TestRelaxationRespectsConstraints(t *testing.T) {
	inst := smallInstance(t, 8, 15, 0.15)
	rel, err := SolveRelaxation(inst)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Objective <= 0 {
		t.Fatalf("OptLP = %v, want > 0", rel.Objective)
	}
	// Coupling: d <= e everywhere; coverage <= 1; fractional TCAM within cap.
	n := inst.Topo.N()
	cam := make([]float64, n)
	for i := range rel.D {
		for j := 0; j < n; j++ {
			cam[j] += rel.E[i][j] * inst.Rules[i].CamReq
		}
		for k, path := range inst.Paths {
			cover := 0.0
			for pos, j := range path {
				d := rel.D[i][k][pos]
				if d > rel.E[i][j]+1e-6 {
					t.Fatalf("coupling violated: d=%v > e=%v (rule %d node %d)", d, rel.E[i][j], i, j)
				}
				cover += d
			}
			if cover > 1+1e-6 {
				t.Fatalf("coverage %v > 1 on rule %d path %d", cover, i, k)
			}
		}
	}
	for j := 0; j < n; j++ {
		if cam[j] > inst.CamCap[j]+1e-6 {
			t.Fatalf("fractional TCAM %v > cap %v at node %d", cam[j], inst.CamCap[j], j)
		}
	}
}

func TestRoundingFeasibleAndPositive(t *testing.T) {
	inst := smallInstance(t, 8, 15, 0.15)
	rel, err := SolveRelaxation(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		dep, err := Round(inst, rel, RoundConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Verify(inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dep.Objective <= 0 {
			t.Fatalf("trial %d: objective %v, want > 0", trial, dep.Objective)
		}
		if dep.Objective > rel.Objective+1e-6 {
			t.Fatalf("trial %d: rounded objective %v exceeds OptLP %v", trial, dep.Objective, rel.Objective)
		}
	}
}

func TestVariantsImproveMonotonically(t *testing.T) {
	inst := smallInstance(t, 10, 15, 0.1)
	rel, err := SolveRelaxation(inst)
	if err != nil {
		t.Fatal(err)
	}
	get := func(v Variant) float64 {
		// Identical Seed across variants means identical rounding draws.
		dep, err := SolveFromRelaxation(inst, rel, SolveOptions{Variant: v, Iters: 3, Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Verify(inst); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		return dep.Objective
	}
	basic := get(VariantBasic)
	roundLP := get(VariantRoundLP)
	greedy := get(VariantRoundGreedyLP)
	if roundLP < basic-1e-9 {
		t.Fatalf("rounding+lp (%v) worse than basic (%v)", roundLP, basic)
	}
	if greedy < roundLP-1e-9 {
		t.Fatalf("rounding+greedy+lp (%v) worse than rounding+lp (%v)", greedy, roundLP)
	}
	if greedy < 0.9*rel.Objective {
		t.Fatalf("greedy variant at %.3f of OptLP, want >= 0.9 (paper: >= 0.92)", greedy/rel.Objective)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	inst := smallInstance(t, 6, 10, 0.2)
	dep, rel, err := Solve(inst, SolveOptions{Variant: VariantRoundGreedyLP, Iters: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Objective <= 0 || dep.Objective > rel.Objective+1e-6 {
		t.Fatalf("objective %v vs OptLP %v", dep.Objective, rel.Objective)
	}
}

func TestGreedyFillRespectsTCAM(t *testing.T) {
	inst := smallInstance(t, 10, 12, 0.1) // cap = 1 rule per node
	dep := &Deployment{
		E: make([][]bool, len(inst.Rules)),
		D: make([][][]float64, len(inst.Rules)),
	}
	for i := range dep.E {
		dep.E[i] = make([]bool, inst.Topo.N())
		dep.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			dep.D[i][k] = make([]float64, len(inst.Paths[k]))
		}
	}
	GreedyFill(inst, dep)
	for j := 0; j < inst.Topo.N(); j++ {
		used := 0.0
		for i := range dep.E {
			if dep.E[i][j] {
				used += inst.Rules[i].CamReq
			}
		}
		if used > inst.CamCap[j]+1e-9 {
			t.Fatalf("node %d TCAM %v > cap %v after greedy", j, used, inst.CamCap[j])
		}
	}
	// With positive caps the greedy must have enabled something.
	any := false
	for i := range dep.E {
		for j := range dep.E[i] {
			any = any || dep.E[i][j]
		}
	}
	if !any {
		t.Fatal("greedy enabled nothing despite free TCAM")
	}
}

func TestResolveLPOnEmptyEnablement(t *testing.T) {
	inst := smallInstance(t, 4, 6, 0.25)
	dep := &Deployment{
		E: make([][]bool, len(inst.Rules)),
		D: make([][][]float64, len(inst.Rules)),
	}
	for i := range dep.E {
		dep.E[i] = make([]bool, inst.Topo.N())
		dep.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			dep.D[i][k] = make([]float64, len(inst.Paths[k]))
		}
	}
	if err := ResolveLP(inst, dep); err != nil {
		t.Fatal(err)
	}
	if dep.Objective != 0 {
		t.Fatalf("objective %v with nothing enabled, want 0", dep.Objective)
	}
}

func TestDataPlaneAgreesWithObjective(t *testing.T) {
	inst := smallInstance(t, 6, 10, 0.2)
	dep, _, err := Solve(inst, SolveOptions{Variant: VariantRoundGreedyLP, Iters: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sim := SimulateDrops(inst, dep, 20, rand.New(rand.NewSource(9)))
	if sim.Flows == 0 {
		t.Fatal("simulated no flows")
	}
	if sim.Measured <= 0 {
		t.Fatal("data plane dropped nothing")
	}
	diff := math.Abs(sim.Measured-sim.Predicted) / sim.Predicted
	if diff > 0.05 {
		t.Fatalf("data-plane reduction %v differs from objective %v by %.1f%%",
			sim.Measured, sim.Predicted, diff*100)
	}
	if sim.Measured > sim.TotalFootprint {
		t.Fatalf("measured reduction %v exceeds total footprint %v", sim.Measured, sim.TotalFootprint)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	inst := smallInstance(t, 3, 5, 0.4)
	dep := &Deployment{
		E: make([][]bool, len(inst.Rules)),
		D: make([][][]float64, len(inst.Rules)),
	}
	for i := range dep.E {
		dep.E[i] = make([]bool, inst.Topo.N())
		dep.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			dep.D[i][k] = make([]float64, len(inst.Paths[k]))
		}
	}
	// Sampling without enablement violates Eq. (12).
	dep.D[0][0][0] = 0.5
	if err := dep.Verify(inst); err == nil {
		t.Fatal("Verify accepted sampling without enablement")
	}
	// Enable it; now oversample the path.
	j := inst.Paths[0][0]
	dep.E[0][j] = true
	dep.D[0][0][0] = 0.7
	j2 := inst.Paths[0][1]
	dep.E[0][j2] = true
	dep.D[0][0][1] = 0.7
	if err := dep.Verify(inst); err == nil {
		t.Fatal("Verify accepted coverage > 1")
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantBasic.String() != "rounding" ||
		VariantRoundLP.String() != "rounding+lp" ||
		VariantRoundGreedyLP.String() != "rounding+greedy+lp" ||
		Variant(9).String() != "Variant(9)" {
		t.Fatal("variant names wrong")
	}
}

func TestUnitRules(t *testing.T) {
	rules := UnitRules(5)
	if len(rules) != 5 {
		t.Fatalf("got %d rules", len(rules))
	}
	for _, r := range rules {
		if r.CamReq != 1 || r.CPUPerPkt != 1 || r.MemPerItem != 1 {
			t.Fatalf("non-unit rule: %+v", r)
		}
	}
}

// TestQuickRoundingAlwaysFeasible: across random tiny instances, seeds,
// and capacity fractions, every variant's output satisfies all MILP
// constraints and never exceeds the LP bound.
func TestQuickRoundingAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frac := 0.1 + rng.Float64()*0.4
		rules := 3 + rng.Intn(5)
		inst := NewInstance(topology.Internet2(), UnitRules(rules), Config{
			MaxPaths:             4 + rng.Intn(8),
			RuleCapacityFraction: frac,
			MatchSeed:            seed,
		})
		rel, err := SolveRelaxation(inst)
		if err != nil {
			return false
		}
		for _, v := range []Variant{VariantBasic, VariantRoundLP, VariantRoundGreedyLP} {
			dep, err := SolveFromRelaxation(inst, rel, SolveOptions{Variant: v, Iters: 2, Seed: rng.Int63()})
			if err != nil {
				return false
			}
			if dep.Verify(inst) != nil {
				return false
			}
			if dep.Objective > rel.Objective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
