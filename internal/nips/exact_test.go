package nips

import (
	"testing"

	"nwdeploy/internal/topology"
)

// tinyTopology: 4 nodes in a line, so path structure is simple and the
// binary space stays enumerable.
func tinyTopology() *topology.Topology {
	nodes := []topology.Node{
		{ID: 0, Name: "A", Population: 2e6, Lat: 30, Lon: -100},
		{ID: 1, Name: "B", Population: 1e6, Lat: 32, Lon: -96},
		{ID: 2, Name: "C", Population: 1e6, Lat: 34, Lon: -92},
		{ID: 3, Name: "D", Population: 2e6, Lat: 36, Lon: -88},
	}
	t := topology.New("tiny", nodes)
	t.AddLink(0, 1, 10)
	t.AddLink(1, 2, 10)
	t.AddLink(2, 3, 10)
	return t
}

func tinyInstance(seed int64, camFrac float64, rules int) *Instance {
	return NewInstance(tinyTopology(), UnitRules(rules), Config{
		MaxPaths:             6,
		RuleCapacityFraction: camFrac,
		MatchSeed:            seed,
	})
}

func TestExactRespectsConstraintsAndBeatsRounding(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		inst := tinyInstance(seed, 0.5, 4) // 4 rules x 4 nodes = 16 binaries
		exact, err := SolveExact(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := exact.Verify(inst); err != nil {
			t.Fatalf("seed %d: exact solution infeasible: %v", seed, err)
		}
		rel, err := SolveRelaxation(inst)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Objective > rel.Objective+1e-6 {
			t.Fatalf("seed %d: exact %v above LP bound %v", seed, exact.Objective, rel.Objective)
		}
		// Every approximation variant is bounded by the exact optimum.
		for _, v := range []Variant{VariantBasic, VariantRoundLP, VariantRoundGreedyLP} {
			dep, err := SolveFromRelaxation(inst, rel, SolveOptions{Variant: v, Iters: 3, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if dep.Objective > exact.Objective+1e-6 {
				t.Fatalf("seed %d: %v objective %v exceeds exact optimum %v",
					seed, v, dep.Objective, exact.Objective)
			}
		}
	}
}

func TestGreedyVariantNearExactOptimum(t *testing.T) {
	// The headline claim, validated against the *true* optimum rather than
	// the LP bound: rounding+greedy+LP lands within a few percent.
	worst := 1.0
	for _, seed := range []int64{10, 20, 30, 40} {
		inst := tinyInstance(seed, 0.5, 4)
		gap, exact, approx, err := ApproximationGap(inst, VariantRoundGreedyLP, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Objective <= 0 {
			t.Fatalf("seed %d: exact optimum is zero; instance degenerate", seed)
		}
		if gap < worst {
			worst = gap
		}
		if gap > 1+1e-6 {
			t.Fatalf("seed %d: approximation %v beat the 'exact' optimum %v", seed, approx.Objective, exact.Objective)
		}
	}
	if worst < 0.9 {
		t.Fatalf("greedy variant at %.3f of the exact optimum, want >= 0.9", worst)
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	inst := tinyInstance(1, 0.5, 10) // 40 binaries
	if _, err := SolveExact(inst); err == nil {
		t.Fatal("expected size refusal")
	}
}

func TestExactZeroCapacity(t *testing.T) {
	inst := tinyInstance(1, 0, 4) // no TCAM anywhere
	exact, err := SolveExact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Objective != 0 {
		t.Fatalf("objective %v with zero TCAM, want 0", exact.Objective)
	}
}
