// Package nips implements the paper's Section 3: network-wide deployment
// of intrusion prevention rules under TCAM, memory, and CPU budgets.
//
// The objective (Eq. 7) maximizes the drop-weighted reduction in the
// network footprint of unwanted traffic: dropping a matching flow at node
// R_j on path P_ik removes Dist_ikj remaining downstream hops of footprint.
// Rule enablement e_ij is binary because TCAM slots are per rule (Eq. 8),
// which makes the problem NP-hard (the paper proves hardness by reduction
// from MAX-CUT in its technical report); the solver here follows the
// paper's approximation route: LP relaxation + randomized rounding
// (Figure 9), optionally improved by re-solving the LP with the rounded
// enablement fixed and by greedily packing additional rules.
package nips

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// Rule is one NIPS filtering rule C_i with its resource requirements:
// CamReq_i is per rule (a TCAM slot), CPUPerPkt and MemPerItem are
// per-packet and per-flow costs as in the NIDS model.
type Rule struct {
	Name       string
	CamReq     float64
	CPUPerPkt  float64
	MemPerItem float64
}

// UnitRules builds n rules with unit TCAM/CPU/memory requirements, the
// paper's evaluation setting ("for all i, CamReq_i = CpuReq_i =
// MemReq_i = 1").
func UnitRules(n int) []Rule {
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = Rule{Name: fmt.Sprintf("rule%03d", i), CamReq: 1, CPUPerPkt: 1, MemPerItem: 1}
	}
	return rules
}

// Instance is a fully specified NIPS deployment problem.
type Instance struct {
	Topo  *topology.Topology
	Rules []Rule

	// Paths holds the coordination units: end-to-end routing paths, node
	// sequences in forwarding order.
	Paths [][]int
	// Items and Pkts are T_ik^items and T_ik^pkts per path.
	Items, Pkts []float64
	// M[i][k] is the fraction of path k's traffic matching rule i.
	M [][]float64

	// Per-node capacities.
	CamCap, CPUCap, MemCap []float64

	// Dist[k][pos] is Dist_ikj for the node at position pos of path k:
	// the downstream distance remaining, in router hops by default
	// (Dist of the first node of a 3-node path is 3, the last is 1).
	Dist [][]float64
}

// DefaultMemCap and DefaultCPUCap are the paper's per-node, per-5-minute
// capacities: 400,000 flows of memory and 2 million packets of processing.
const (
	DefaultMemCap = 400000
	DefaultCPUCap = 2e6
)

// Config assembles an Instance.
type Config struct {
	// MaxPaths caps the path set to the heaviest gravity pairs (0 = all).
	MaxPaths int
	// RuleCapacityFraction is the paper's "rule capacity constraint": each
	// node's CamCap is this fraction of the total number of rules.
	RuleCapacityFraction float64
	// MatchSeed seeds the M_ik draw (uniform on [0, MatchHigh)).
	MatchSeed int64
	// MatchHigh is the upper bound of the match-rate distribution
	// (0 selects the paper's 0.01).
	MatchHigh float64
	// MatchDist selects the match-rate distribution shape; the zero value
	// is the paper's uniform draw.
	MatchDist traffic.MatchDist
}

// NewInstance builds an instance from a topology using gravity-model path
// volumes, hop-count distances, and the paper's capacity defaults.
func NewInstance(topo *topology.Topology, rules []Rule, cfg Config) *Instance {
	tm := traffic.Gravity(topo)
	pv := traffic.Volumes(topo, tm, cfg.MaxPaths)
	paths := topo.PathMatrix()

	inst := &Instance{Topo: topo, Rules: rules}
	for pi, pair := range pv.Pairs {
		path := paths[pair[0]][pair[1]]
		if len(path) == 0 {
			continue
		}
		inst.Paths = append(inst.Paths, path)
		inst.Items = append(inst.Items, pv.Items[pi])
		inst.Pkts = append(inst.Pkts, pv.Pkts[pi])
		dist := make([]float64, len(path))
		for pos := range path {
			dist[pos] = float64(len(path) - pos)
		}
		inst.Dist = append(inst.Dist, dist)
	}
	high := cfg.MatchHigh
	if high == 0 {
		high = 0.01
	}
	inst.M = traffic.MatchRatesDist(cfg.MatchDist, len(rules), len(inst.Paths), high, cfg.MatchSeed)

	n := topo.N()
	camPerNode := cfg.RuleCapacityFraction * float64(len(rules))
	inst.CamCap = make([]float64, n)
	inst.CPUCap = make([]float64, n)
	inst.MemCap = make([]float64, n)
	for j := 0; j < n; j++ {
		inst.CamCap[j] = camPerNode
		inst.CPUCap[j] = DefaultCPUCap
		inst.MemCap[j] = DefaultMemCap
	}
	return inst
}

// objCoef returns the Eq. (7) objective coefficient of d_ikj: the unwanted
// items on path k for rule i, weighted by the downstream distance saved.
func (inst *Instance) objCoef(i, k, pos int) float64 {
	return inst.Items[k] * inst.M[i][k] * inst.Dist[k][pos]
}

// Relaxation is the solution of the LP relaxation (e_ij in [0,1]).
type Relaxation struct {
	// E[i][j] is the fractional enablement of rule i on node j.
	E [][]float64
	// D[i][k][pos] is the sampled fraction d_ikj for the node at position
	// pos of path k.
	D [][][]float64
	// Objective is OptLP, the upper bound the rounding variants are
	// measured against ("fraction of LP upperbound").
	Objective float64
	// Iters counts simplex iterations across the solve.
	Iters int
}

// SolveRelaxation solves Eqs. (7)–(13) with Eq. (14) relaxed to
// 0 <= e_ij <= 1.
func SolveRelaxation(inst *Instance) (*Relaxation, error) {
	return solveRelaxation(inst, nil)
}

// solveRelaxation is SolveRelaxation with an optional metrics registry
// threaded into the LP solve (nil is the no-op registry).
func solveRelaxation(inst *Instance, metrics *obs.Registry) (*Relaxation, error) {
	n := inst.Topo.N()
	L := len(inst.Rules)
	p := lp.New(lp.Maximize)

	// e variables for nodes that appear on at least one path.
	onPath := make([]bool, n)
	for _, path := range inst.Paths {
		for _, j := range path {
			onPath[j] = true
		}
	}
	eVars := make([][]lp.Var, L)
	for i := 0; i < L; i++ {
		eVars[i] = make([]lp.Var, n)
		for j := 0; j < n; j++ {
			if onPath[j] {
				eVars[i][j] = p.AddVar(fmt.Sprintf("e[%d,%d]", i, j), 0, 0, 1)
			} else {
				eVars[i][j] = -1
			}
		}
	}

	dVars := make([][][]lp.Var, L)
	camTerms := make([][]lp.Term, n)
	memTerms := make([][]lp.Term, n)
	cpuTerms := make([][]lp.Term, n)
	for i := 0; i < L; i++ {
		dVars[i] = make([][]lp.Var, len(inst.Paths))
		for j := 0; j < n; j++ {
			if onPath[j] {
				camTerms[j] = append(camTerms[j], lp.Term{Var: eVars[i][j], Coef: inst.Rules[i].CamReq})
			}
		}
		for k, path := range inst.Paths {
			dVars[i][k] = make([]lp.Var, len(path))
			cover := make([]lp.Term, 0, len(path))
			for pos, j := range path {
				v := p.AddVar(fmt.Sprintf("d[%d,%d,%d]", i, k, j), inst.objCoef(i, k, pos), 0, 1)
				dVars[i][k][pos] = v
				cover = append(cover, lp.Term{Var: v, Coef: 1})
				memTerms[j] = append(memTerms[j], lp.Term{Var: v, Coef: inst.Items[k] * inst.Rules[i].MemPerItem})
				cpuTerms[j] = append(cpuTerms[j], lp.Term{Var: v, Coef: inst.Pkts[k] * inst.Rules[i].CPUPerPkt})
				// Eq (12): d_ikj <= e_ij.
				p.AddConstraint("couple", []lp.Term{{Var: v, Coef: 1}, {Var: eVars[i][j], Coef: -1}}, lp.LE, 0)
			}
			// Eq (11): total sampled fraction per path-rule <= 1.
			p.AddConstraint("cover", cover, lp.LE, 1)
		}
	}
	for j := 0; j < n; j++ {
		if len(camTerms[j]) > 0 {
			p.AddConstraint("cam", camTerms[j], lp.LE, inst.CamCap[j]) // Eq (8)
		}
		if len(memTerms[j]) > 0 {
			p.AddConstraint("mem", memTerms[j], lp.LE, inst.MemCap[j]) // Eq (9)
		}
		if len(cpuTerms[j]) > 0 {
			p.AddConstraint("cpu", cpuTerms[j], lp.LE, inst.CPUCap[j]) // Eq (10)
		}
	}

	sol, err := p.SolveOpts(lp.Options{Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("nips: relaxation: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("nips: relaxation: %w", sol.Status.Err())
	}

	rel := &Relaxation{Objective: sol.Objective, Iters: sol.Iters}
	rel.E = make([][]float64, L)
	rel.D = make([][][]float64, L)
	for i := 0; i < L; i++ {
		rel.E[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if onPath[j] {
				rel.E[i][j] = clamp01(sol.Value(eVars[i][j]))
			}
		}
		rel.D[i] = make([][]float64, len(inst.Paths))
		for k := range inst.Paths {
			rel.D[i][k] = make([]float64, len(inst.Paths[k]))
			for pos := range inst.Paths[k] {
				rel.D[i][k][pos] = clamp01(sol.Value(dVars[i][k][pos]))
			}
		}
	}
	return rel, nil
}

// clamp01 confines a solver value to [0, 1]. NaN maps to 0: both x < 0 and
// x > 1 are false for NaN, so without the explicit check a degenerate solver
// tolerance would smuggle NaN into the relaxation values.
func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Deployment is an integral rule placement with its sampling fractions.
type Deployment struct {
	// E[i][j] reports whether rule i is enabled on node j.
	E [][]bool
	// D[i][k][pos] is the sampling fraction at position pos of path k.
	D [][][]float64
	// Objective is the Eq. (7) value of the deployment.
	Objective float64
}

// ErrRoundingFailed is returned when no rounding trial satisfied the
// concentration check within the configured budget.
var ErrRoundingFailed = errors.New("nips: randomized rounding failed every trial")

// RoundConfig tunes the Figure 9 algorithm.
type RoundConfig struct {
	// Alpha deflates the rounding probability (line 5 of Figure 9);
	// zero selects 1.2.
	Alpha float64
	// Beta scales the allowed violation factor beta*log(N) (line 7);
	// zero selects 1.
	Beta float64
	// MaxTrials bounds the repeat loop; zero selects 50.
	MaxTrials int
}

func (c *RoundConfig) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 50
	}
}

// Round implements the basic randomized-rounding algorithm of Figure 9:
// round each e*_ij to 1 with probability e*_ij/alpha, set d = epsilon*e,
// retry while any of Eqs. (9)–(11) is violated by more than beta*log N,
// repair Eq. (8) by zeroing rules, then rescale the d values to restore
// feasibility (the implementation scales by the actual violation factor,
// which is never larger than beta*log N — a practical tightening the
// paper's analysis permits).
func Round(inst *Instance, rel *Relaxation, cfg RoundConfig, rng *rand.Rand) (*Deployment, error) {
	dep, _, err := round(inst, rel, cfg, rng)
	return dep, err
}

// roundStats counts the work one Round call performed: trials includes
// every restart forced by the concentration check, repairs counts the
// individual rule disables applied to satisfy Eq. (8). Both are
// deterministic functions of (instance, relaxation, config, rng stream).
type roundStats struct {
	trials  int
	repairs int
}

// round is Round with work counters.
func round(inst *Instance, rel *Relaxation, cfg RoundConfig, rng *rand.Rand) (*Deployment, roundStats, error) {
	cfg.defaults()
	n := inst.Topo.N()
	L := len(inst.Rules)
	nBig := math.Max(float64(n), float64(L))
	allowed := cfg.Beta * math.Log(math.Max(math.E, nBig))

	var rs roundStats
	for trial := 0; trial < cfg.MaxTrials; trial++ {
		rs.trials++
		dep := &Deployment{}
		dep.E = make([][]bool, L)
		for i := 0; i < L; i++ {
			dep.E[i] = make([]bool, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < rel.E[i][j]/cfg.Alpha {
					dep.E[i][j] = true
				}
			}
		}
		// d-hat = epsilon * e-hat, with epsilon = d*/e*.
		dep.D = make([][][]float64, L)
		for i := 0; i < L; i++ {
			dep.D[i] = make([][]float64, len(inst.Paths))
			for k, path := range inst.Paths {
				dep.D[i][k] = make([]float64, len(path))
				for pos, j := range path {
					if !dep.E[i][j] || rel.E[i][j] <= 1e-12 {
						continue
					}
					dep.D[i][k][pos] = rel.D[i][k][pos] / rel.E[i][j]
				}
			}
		}
		viol := maxSoftViolation(inst, dep)
		if viol > allowed {
			continue // failure: retry the trial
		}
		// Repair Eq. (8): zero rules until TCAM fits (arbitrary order, as
		// in line 10).
		rs.repairs += repairTCAM(inst, dep)
		// Rescale d to restore Eqs. (9)–(11) feasibility.
		if scale := maxSoftViolation(inst, dep); scale > 1 {
			for i := range dep.D {
				for k := range dep.D[i] {
					for pos := range dep.D[i][k] {
						dep.D[i][k][pos] /= scale
					}
				}
			}
		}
		dep.Objective = Objective(inst, dep)
		return dep, rs, nil
	}
	return nil, rs, ErrRoundingFailed
}

// maxSoftViolation returns the largest factor by which the deployment's d
// values violate Eqs. (9)–(11); 1 or less means feasible.
func maxSoftViolation(inst *Instance, dep *Deployment) float64 {
	n := inst.Topo.N()
	mem := make([]float64, n)
	cpu := make([]float64, n)
	worst := 1.0
	for i := range dep.D {
		for k, path := range inst.Paths {
			cover := 0.0
			for pos, j := range path {
				d := dep.D[i][k][pos]
				if d == 0 {
					continue
				}
				cover += d
				mem[j] += inst.Items[k] * inst.Rules[i].MemPerItem * d
				cpu[j] += inst.Pkts[k] * inst.Rules[i].CPUPerPkt * d
			}
			if cover > worst {
				worst = cover // Eq (11) rhs is 1
			}
		}
	}
	for j := 0; j < n; j++ {
		if inst.MemCap[j] > 0 {
			worst = math.Max(worst, mem[j]/inst.MemCap[j])
		}
		if inst.CPUCap[j] > 0 {
			worst = math.Max(worst, cpu[j]/inst.CPUCap[j])
		}
	}
	return worst
}

// repairTCAM zeroes enabled rules (and their d values) on nodes whose TCAM
// constraint is violated, dropping the lowest-value rules first. It
// returns the number of rule disables applied.
func repairTCAM(inst *Instance, dep *Deployment) int {
	repairs := 0
	n := inst.Topo.N()
	for j := 0; j < n; j++ {
		for {
			used := 0.0
			for i := range dep.E {
				if dep.E[i][j] {
					used += inst.Rules[i].CamReq
				}
			}
			if used <= inst.CamCap[j]+1e-9 {
				break
			}
			// Drop the enabled rule contributing least to the objective at
			// this node.
			worstRule, worstGain := -1, math.Inf(1)
			for i := range dep.E {
				if !dep.E[i][j] {
					continue
				}
				if g := ruleNodeGain(inst, dep, i, j); g < worstGain {
					worstRule, worstGain = i, g
				}
			}
			if worstRule < 0 {
				break
			}
			disableRule(inst, dep, worstRule, j)
			repairs++
		}
	}
	return repairs
}

// ruleNodeGain sums the objective contribution of rule i's sampling at node j.
func ruleNodeGain(inst *Instance, dep *Deployment, i, j int) float64 {
	var g float64
	for k, path := range inst.Paths {
		for pos, node := range path {
			if node == j {
				g += dep.D[i][k][pos] * inst.objCoef(i, k, pos)
			}
		}
	}
	return g
}

// disableRule clears e_ij and all its d values.
func disableRule(inst *Instance, dep *Deployment, i, j int) {
	dep.E[i][j] = false
	for k, path := range inst.Paths {
		for pos, node := range path {
			if node == j {
				dep.D[i][k][pos] = 0
			}
		}
	}
}

// Objective evaluates Eq. (7) for a deployment.
func Objective(inst *Instance, dep *Deployment) float64 {
	var total float64
	for i := range dep.D {
		for k := range dep.D[i] {
			for pos := range dep.D[i][k] {
				total += dep.D[i][k][pos] * inst.objCoef(i, k, pos)
			}
		}
	}
	return total
}

// Verify checks every constraint of Eqs. (8)–(13) on the deployment and
// returns a descriptive error on the first violation.
func (dep *Deployment) Verify(inst *Instance) error {
	n := inst.Topo.N()
	const tol = 1e-6
	cam := make([]float64, n)
	mem := make([]float64, n)
	cpu := make([]float64, n)
	for i := range dep.E {
		for j := 0; j < n; j++ {
			if dep.E[i][j] {
				cam[j] += inst.Rules[i].CamReq
			}
		}
	}
	for i := range dep.D {
		for k, path := range inst.Paths {
			cover := 0.0
			for pos, j := range path {
				d := dep.D[i][k][pos]
				if d < -tol || d > 1+tol {
					return fmt.Errorf("nips: d[%d][%d] at node %d = %v out of [0,1]", i, k, j, d)
				}
				if d > tol && !dep.E[i][j] {
					return fmt.Errorf("nips: rule %d samples at node %d without being enabled (Eq. 12)", i, j)
				}
				cover += d
				mem[j] += inst.Items[k] * inst.Rules[i].MemPerItem * d
				cpu[j] += inst.Pkts[k] * inst.Rules[i].CPUPerPkt * d
			}
			if cover > 1+tol {
				return fmt.Errorf("nips: rule %d path %d oversampled: %v (Eq. 11)", i, k, cover)
			}
		}
	}
	for j := 0; j < n; j++ {
		if cam[j] > inst.CamCap[j]+tol {
			return fmt.Errorf("nips: node %d TCAM %v > cap %v (Eq. 8)", j, cam[j], inst.CamCap[j])
		}
		if mem[j] > inst.MemCap[j]*(1+tol) {
			return fmt.Errorf("nips: node %d memory %v > cap %v (Eq. 9)", j, mem[j], inst.MemCap[j])
		}
		if cpu[j] > inst.CPUCap[j]*(1+tol) {
			return fmt.Errorf("nips: node %d CPU %v > cap %v (Eq. 10)", j, cpu[j], inst.CPUCap[j])
		}
	}
	return nil
}
