package nips

import (
	"fmt"
	"math/rand"
	"sort"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
)

// ResolveLP replaces a deployment's d values by the optimal ones for its
// fixed integral enablement: "a practical alternative is to solve the LP
// represented by Eqs (9)–(14) after setting the values for e_ij obtained in
// line 5 to be constants". With e fixed, the coupling rows disappear (a
// disabled e forces d = 0; an enabled one leaves d in [0,1]), so this LP is
// small and fast.
func ResolveLP(inst *Instance, dep *Deployment) error {
	return resolveLP(inst, dep, nil)
}

// resolveLP is ResolveLP with an optional metrics registry threaded into
// the LP solve (nil is the no-op registry).
func resolveLP(inst *Instance, dep *Deployment, metrics *obs.Registry) error {
	p := lp.New(lp.Maximize)
	n := inst.Topo.N()

	type dref struct{ i, k, pos int }
	var refs []dref
	var vars []lp.Var
	memTerms := make([][]lp.Term, n)
	cpuTerms := make([][]lp.Term, n)
	for i := range dep.E {
		for k, path := range inst.Paths {
			cover := make([]lp.Term, 0, len(path))
			for pos, j := range path {
				if !dep.E[i][j] {
					continue
				}
				v := p.AddVar("d", inst.objCoef(i, k, pos), 0, 1)
				refs = append(refs, dref{i, k, pos})
				vars = append(vars, v)
				cover = append(cover, lp.Term{Var: v, Coef: 1})
				memTerms[j] = append(memTerms[j], lp.Term{Var: v, Coef: inst.Items[k] * inst.Rules[i].MemPerItem})
				cpuTerms[j] = append(cpuTerms[j], lp.Term{Var: v, Coef: inst.Pkts[k] * inst.Rules[i].CPUPerPkt})
			}
			if len(cover) > 1 {
				p.AddConstraint("cover", cover, lp.LE, 1)
			}
		}
	}
	if len(vars) == 0 {
		// Nothing enabled anywhere: the deployment drops nothing.
		for i := range dep.D {
			for k := range dep.D[i] {
				for pos := range dep.D[i][k] {
					dep.D[i][k][pos] = 0
				}
			}
		}
		dep.Objective = 0
		return nil
	}
	for j := 0; j < n; j++ {
		if len(memTerms[j]) > 0 {
			p.AddConstraint("mem", memTerms[j], lp.LE, inst.MemCap[j])
		}
		if len(cpuTerms[j]) > 0 {
			p.AddConstraint("cpu", cpuTerms[j], lp.LE, inst.CPUCap[j])
		}
	}
	sol, err := p.SolveOpts(lp.Options{Metrics: metrics})
	if err != nil {
		return fmt.Errorf("nips: resolve LP: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return fmt.Errorf("nips: resolve LP: %w", sol.Status.Err())
	}
	for i := range dep.D {
		for k := range dep.D[i] {
			for pos := range dep.D[i][k] {
				dep.D[i][k][pos] = 0
			}
		}
	}
	for x, ref := range refs {
		dep.D[ref.i][ref.k][ref.pos] = clamp01(sol.Value(vars[x]))
	}
	dep.Objective = Objective(inst, dep)
	return nil
}

// GreedyFill sets additional e_ij to 1 while no TCAM constraint is
// violated, in descending order of each (rule, node) pair's potential
// objective gain: "we can greedily try to set e_ij s to 1 until no more can
// be set to 1 without violating Eq (8)". Call ResolveLP afterwards to pick
// the optimal d for the expanded enablement.
func GreedyFill(inst *Instance, dep *Deployment) {
	n := inst.Topo.N()
	used := make([]float64, n)
	for i := range dep.E {
		for j := 0; j < n; j++ {
			if dep.E[i][j] {
				used[j] += inst.Rules[i].CamReq
			}
		}
	}
	// Potential gain of enabling rule i at node j: the unclaimed objective
	// weight of paths through j (upper bound, ignoring capacity).
	type cand struct {
		i, j int
		gain float64
	}
	var cands []cand
	for i := range dep.E {
		for j := 0; j < n; j++ {
			if dep.E[i][j] {
				continue
			}
			var g float64
			for k, path := range inst.Paths {
				for pos, node := range path {
					if node == j {
						g += inst.objCoef(i, k, pos)
					}
				}
			}
			if g > 0 {
				cands = append(cands, cand{i, j, g})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	for _, c := range cands {
		if used[c.j]+inst.Rules[c.i].CamReq <= inst.CamCap[c.j]+1e-9 {
			dep.E[c.i][c.j] = true
			used[c.j] += inst.Rules[c.i].CamReq
		}
	}
}

// Variant names one of the algorithm variants of the paper's Figure 10.
type Variant int

const (
	// VariantBasic is the plain Figure 9 rounding with conservative
	// rescaling.
	VariantBasic Variant = iota
	// VariantRoundLP is rounding followed by an LP re-solve of the d
	// values (Figure 10(a)).
	VariantRoundLP
	// VariantRoundGreedyLP adds the greedy enablement fill before the LP
	// re-solve (Figure 10(b)).
	VariantRoundGreedyLP
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantBasic:
		return "rounding"
	case VariantRoundLP:
		return "rounding+lp"
	case VariantRoundGreedyLP:
		return "rounding+greedy+lp"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// SolveOptions parameterizes Solve and SolveFromRelaxation.
type SolveOptions struct {
	// Variant selects the rounding/improvement pipeline.
	Variant Variant
	// Iters is the number of independent rounding iterations; the best
	// deployment across them is returned (0 selects 1).
	Iters int
	// Seed is the root of the per-iteration RNG derivation: iteration it
	// draws from rand.New(rand.NewSource(parallel.SplitSeed(Seed, it))),
	// never from a shared *rand.Rand. The result is therefore a pure
	// function of (instance, relaxation, options) regardless of Workers.
	Seed int64
	// Workers fans the iterations out across a worker pool: 0 selects
	// GOMAXPROCS, 1 is the serial path. Serial and parallel runs produce
	// byte-identical deployments for the same Seed.
	Workers int
	// Metrics, when non-nil, receives rounding-sweep observability:
	// iteration/trial/repair counts, LP re-solve counts, the best
	// objective, and solve wall time, plus the underlying lp solver's
	// counters. The registry is write-only, so deployments are identical
	// with or without it (nil is the no-op default; see internal/obs).
	Metrics *obs.Registry
}

// SolveStats itemizes the deterministic work of a rounding sweep. Every
// field is a pure function of (instance, relaxation, options): wall-clock
// readings go only to the Metrics registry, never here, so two runs with
// the same inputs — serial or parallel, instrumented or not — report
// identical stats.
type SolveStats struct {
	// Iterations is the number of independent rounding iterations run.
	Iterations int
	// Trials counts rounding trials across all iterations, including
	// restarts forced by the Figure 9 concentration check.
	Trials int
	// Repairs counts individual rule disables applied by the Eq. (8)
	// TCAM repair step.
	Repairs int
	// LPResolves counts the Figure 10 LP re-solves of the d values.
	LPResolves int
	// RelaxationIters is the simplex iteration count of the LP
	// relaxation (zero when the caller supplied the relaxation).
	RelaxationIters int
	// BestIteration is the index of the winning iteration.
	BestIteration int
	// BestTrajectory[i] is the best objective seen after iteration i —
	// the paper's "best solution across these 10 runs" curve.
	BestTrajectory []float64
}

// Result bundles a rounding sweep's outcome: the best deployment, the LP
// relaxation it was rounded from (whose Objective is the OptLP upper
// bound), and the work stats.
type Result struct {
	Deployment *Deployment
	Relaxation *Relaxation
	Stats      SolveStats
}

// Solve runs the requested variant: it solves the relaxation once, performs
// opts.Iters independent rounding trials, improves each per the variant, and
// returns the best deployment together with the LP upper bound. This is the
// paper's evaluation procedure ("we run 10 iterations of the
// rounding-based algorithms and take the best solution across these 10
// runs").
func Solve(inst *Instance, opts SolveOptions) (*Deployment, *Relaxation, error) {
	res, err := SolveDetailed(inst, opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Deployment, res.Relaxation, nil
}

// SolveDetailed is Solve returning the full Result, including the work
// stats the bare Solve discards.
func SolveDetailed(inst *Instance, opts SolveOptions) (*Result, error) {
	sp := opts.Metrics.StartSpan("nips.solve_ns")
	defer sp.End()
	rel, err := solveRelaxation(inst, opts.Metrics)
	if err != nil {
		return nil, err
	}
	dep, stats, err := solveFromRelaxation(inst, rel, opts)
	if err != nil {
		return nil, err
	}
	stats.RelaxationIters = rel.Iters
	return &Result{Deployment: dep, Relaxation: rel, Stats: stats}, nil
}

// SolveFromRelaxation is Solve for callers that already hold the
// relaxation (the evaluation reuses one relaxation across variants).
//
// Each iteration is independent — its RNG is derived from opts.Seed and the
// iteration index — so the iterations run on the worker pool and the best
// deployment is selected in iteration order (strict improvement), making
// the winner identical whether the sweep ran on one worker or many.
func SolveFromRelaxation(inst *Instance, rel *Relaxation, opts SolveOptions) (*Deployment, error) {
	dep, _, err := solveFromRelaxation(inst, rel, opts)
	return dep, err
}

// solveFromRelaxation runs the rounding sweep and aggregates the
// per-iteration work counters in iteration order, so the stats (like the
// winning deployment) are identical for any Workers value.
func solveFromRelaxation(inst *Instance, rel *Relaxation, opts SolveOptions) (*Deployment, SolveStats, error) {
	iters := opts.Iters
	if iters <= 0 {
		iters = 1
	}
	results, err := parallel.MapErr(opts.Workers, iters, func(it int) (iterResult, error) {
		return solveOneIteration(inst, rel, opts.Variant, newSeededRand(parallel.SplitSeed(opts.Seed, int64(it))), opts.Metrics)
	})
	if err != nil {
		return nil, SolveStats{}, err
	}
	stats := SolveStats{Iterations: iters, BestTrajectory: make([]float64, 0, iters)}
	var best *Deployment
	for it, r := range results {
		stats.Trials += r.trials
		stats.Repairs += r.repairs
		stats.LPResolves += r.lpResolves
		if best == nil || r.dep.Objective > best.Objective {
			best = r.dep
			stats.BestIteration = it
		}
		stats.BestTrajectory = append(stats.BestTrajectory, best.Objective)
	}
	if m := opts.Metrics; m != nil {
		m.Add("nips.iterations", int64(stats.Iterations))
		m.Add("nips.round_trials", int64(stats.Trials))
		m.Add("nips.tcam_repairs", int64(stats.Repairs))
		m.Add("nips.lp_resolves", int64(stats.LPResolves))
		m.Gauge("nips.best_objective").Max(best.Objective)
		for _, r := range results {
			m.Observe("nips.iter_objective", int64(r.dep.Objective))
		}
	}
	return best, stats, nil
}

// iterResult is one iteration's deployment plus its work counters.
type iterResult struct {
	dep        *Deployment
	trials     int
	repairs    int
	lpResolves int
}

// solveOneIteration performs one rounding trial plus the variant's
// improvement steps. Only Round consumes randomness; GreedyFill and
// ResolveLP are deterministic. The metrics registry is forwarded to the
// inner LP solves only — per-iteration counts flow back through
// iterResult so they aggregate in iteration order.
func solveOneIteration(inst *Instance, rel *Relaxation, variant Variant, rng *rand.Rand, metrics *obs.Registry) (iterResult, error) {
	dep, rs, err := round(inst, rel, RoundConfig{}, rng)
	if err != nil {
		return iterResult{}, err
	}
	res := iterResult{dep: dep, trials: rs.trials, repairs: rs.repairs}
	switch variant {
	case VariantRoundLP:
		if err := resolveLP(inst, dep, metrics); err != nil {
			return iterResult{}, err
		}
		res.lpResolves = 1
	case VariantRoundGreedyLP:
		GreedyFill(inst, dep)
		if err := resolveLP(inst, dep, metrics); err != nil {
			return iterResult{}, err
		}
		res.lpResolves = 1
	}
	return res, nil
}
