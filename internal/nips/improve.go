package nips

import (
	"fmt"
	"math/rand"
	"sort"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/parallel"
)

// ResolveLP replaces a deployment's d values by the optimal ones for its
// fixed integral enablement: "a practical alternative is to solve the LP
// represented by Eqs (9)–(14) after setting the values for e_ij obtained in
// line 5 to be constants". With e fixed, the coupling rows disappear (a
// disabled e forces d = 0; an enabled one leaves d in [0,1]), so this LP is
// small and fast.
func ResolveLP(inst *Instance, dep *Deployment) error {
	p := lp.New(lp.Maximize)
	n := inst.Topo.N()

	type dref struct{ i, k, pos int }
	var refs []dref
	var vars []lp.Var
	memTerms := make([][]lp.Term, n)
	cpuTerms := make([][]lp.Term, n)
	for i := range dep.E {
		for k, path := range inst.Paths {
			cover := make([]lp.Term, 0, len(path))
			for pos, j := range path {
				if !dep.E[i][j] {
					continue
				}
				v := p.AddVar("d", inst.objCoef(i, k, pos), 0, 1)
				refs = append(refs, dref{i, k, pos})
				vars = append(vars, v)
				cover = append(cover, lp.Term{Var: v, Coef: 1})
				memTerms[j] = append(memTerms[j], lp.Term{Var: v, Coef: inst.Items[k] * inst.Rules[i].MemPerItem})
				cpuTerms[j] = append(cpuTerms[j], lp.Term{Var: v, Coef: inst.Pkts[k] * inst.Rules[i].CPUPerPkt})
			}
			if len(cover) > 1 {
				p.AddConstraint("cover", cover, lp.LE, 1)
			}
		}
	}
	if len(vars) == 0 {
		// Nothing enabled anywhere: the deployment drops nothing.
		for i := range dep.D {
			for k := range dep.D[i] {
				for pos := range dep.D[i][k] {
					dep.D[i][k][pos] = 0
				}
			}
		}
		dep.Objective = 0
		return nil
	}
	for j := 0; j < n; j++ {
		if len(memTerms[j]) > 0 {
			p.AddConstraint("mem", memTerms[j], lp.LE, inst.MemCap[j])
		}
		if len(cpuTerms[j]) > 0 {
			p.AddConstraint("cpu", cpuTerms[j], lp.LE, inst.CPUCap[j])
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return fmt.Errorf("nips: resolve LP: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return fmt.Errorf("nips: resolve LP %v", sol.Status)
	}
	for i := range dep.D {
		for k := range dep.D[i] {
			for pos := range dep.D[i][k] {
				dep.D[i][k][pos] = 0
			}
		}
	}
	for x, ref := range refs {
		dep.D[ref.i][ref.k][ref.pos] = clamp01(sol.Value(vars[x]))
	}
	dep.Objective = Objective(inst, dep)
	return nil
}

// GreedyFill sets additional e_ij to 1 while no TCAM constraint is
// violated, in descending order of each (rule, node) pair's potential
// objective gain: "we can greedily try to set e_ij s to 1 until no more can
// be set to 1 without violating Eq (8)". Call ResolveLP afterwards to pick
// the optimal d for the expanded enablement.
func GreedyFill(inst *Instance, dep *Deployment) {
	n := inst.Topo.N()
	used := make([]float64, n)
	for i := range dep.E {
		for j := 0; j < n; j++ {
			if dep.E[i][j] {
				used[j] += inst.Rules[i].CamReq
			}
		}
	}
	// Potential gain of enabling rule i at node j: the unclaimed objective
	// weight of paths through j (upper bound, ignoring capacity).
	type cand struct {
		i, j int
		gain float64
	}
	var cands []cand
	for i := range dep.E {
		for j := 0; j < n; j++ {
			if dep.E[i][j] {
				continue
			}
			var g float64
			for k, path := range inst.Paths {
				for pos, node := range path {
					if node == j {
						g += inst.objCoef(i, k, pos)
					}
				}
			}
			if g > 0 {
				cands = append(cands, cand{i, j, g})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	for _, c := range cands {
		if used[c.j]+inst.Rules[c.i].CamReq <= inst.CamCap[c.j]+1e-9 {
			dep.E[c.i][c.j] = true
			used[c.j] += inst.Rules[c.i].CamReq
		}
	}
}

// Variant names one of the algorithm variants of the paper's Figure 10.
type Variant int

const (
	// VariantBasic is the plain Figure 9 rounding with conservative
	// rescaling.
	VariantBasic Variant = iota
	// VariantRoundLP is rounding followed by an LP re-solve of the d
	// values (Figure 10(a)).
	VariantRoundLP
	// VariantRoundGreedyLP adds the greedy enablement fill before the LP
	// re-solve (Figure 10(b)).
	VariantRoundGreedyLP
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantBasic:
		return "rounding"
	case VariantRoundLP:
		return "rounding+lp"
	case VariantRoundGreedyLP:
		return "rounding+greedy+lp"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// SolveOptions parameterizes Solve and SolveFromRelaxation.
type SolveOptions struct {
	// Variant selects the rounding/improvement pipeline.
	Variant Variant
	// Iters is the number of independent rounding iterations; the best
	// deployment across them is returned (0 selects 1).
	Iters int
	// Seed is the root of the per-iteration RNG derivation: iteration it
	// draws from rand.New(rand.NewSource(parallel.SplitSeed(Seed, it))),
	// never from a shared *rand.Rand. The result is therefore a pure
	// function of (instance, relaxation, options) regardless of Workers.
	Seed int64
	// Workers fans the iterations out across a worker pool: 0 selects
	// GOMAXPROCS, 1 is the serial path. Serial and parallel runs produce
	// byte-identical deployments for the same Seed.
	Workers int
}

// Solve runs the requested variant: it solves the relaxation once, performs
// opts.Iters independent rounding trials, improves each per the variant, and
// returns the best deployment together with the LP upper bound. This is the
// paper's evaluation procedure ("we run 10 iterations of the
// rounding-based algorithms and take the best solution across these 10
// runs").
func Solve(inst *Instance, opts SolveOptions) (*Deployment, *Relaxation, error) {
	rel, err := SolveRelaxation(inst)
	if err != nil {
		return nil, nil, err
	}
	dep, err := SolveFromRelaxation(inst, rel, opts)
	return dep, rel, err
}

// SolveFromRelaxation is Solve for callers that already hold the
// relaxation (the evaluation reuses one relaxation across variants).
//
// Each iteration is independent — its RNG is derived from opts.Seed and the
// iteration index — so the iterations run on the worker pool and the best
// deployment is selected in iteration order (strict improvement), making
// the winner identical whether the sweep ran on one worker or many.
func SolveFromRelaxation(inst *Instance, rel *Relaxation, opts SolveOptions) (*Deployment, error) {
	iters := opts.Iters
	if iters <= 0 {
		iters = 1
	}
	deps, err := parallel.MapErr(opts.Workers, iters, func(it int) (*Deployment, error) {
		return solveOneIteration(inst, rel, opts.Variant, newSeededRand(parallel.SplitSeed(opts.Seed, int64(it))))
	})
	if err != nil {
		return nil, err
	}
	var best *Deployment
	for _, dep := range deps {
		if best == nil || dep.Objective > best.Objective {
			best = dep
		}
	}
	return best, nil
}

// solveOneIteration performs one rounding trial plus the variant's
// improvement steps. Only Round consumes randomness; GreedyFill and
// ResolveLP are deterministic.
func solveOneIteration(inst *Instance, rel *Relaxation, variant Variant, rng *rand.Rand) (*Deployment, error) {
	dep, err := Round(inst, rel, RoundConfig{}, rng)
	if err != nil {
		return nil, err
	}
	switch variant {
	case VariantRoundLP:
		if err := ResolveLP(inst, dep); err != nil {
			return nil, err
		}
	case VariantRoundGreedyLP:
		GreedyFill(inst, dep)
		if err := ResolveLP(inst, dep); err != nil {
			return nil, err
		}
	}
	return dep, nil
}
