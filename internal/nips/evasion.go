package nips

import (
	"math/rand"

	"nwdeploy/internal/hashing"
)

// Section 3.2's first modeling assumption is that "attackers cannot craft
// traffic that can avoid the sampling checks ... administrators can use
// private keyed hash functions to prevent adversaries from evading the
// hash checks". SimulateEvasion makes that concrete: an adversary who
// knows (or guesses) the sampling key crafts flow tuples whose hash lands
// outside every node's assigned range; the simulation measures how much
// unwanted traffic survives with and without the defender's key being
// private.

// EvasionResult reports the adversary's success against a deployment.
type EvasionResult struct {
	// Flows is the number of crafted unwanted flows.
	Flows int
	// DroppedFraction is the fraction of all crafted flows the deployment
	// still dropped.
	DroppedFraction float64
	// EvadableFlows counts flows crafted for cells whose total sampling is
	// below 1 — the only cells an adversary can evade at all; a cell
	// sampled at coverage 1 drops everything no matter what the adversary
	// hashes to.
	EvadableFlows int
	// DroppedEvadable is the drop fraction over EvadableFlows only: the
	// honest measure of evasion success.
	DroppedEvadable float64
	// Candidates is the total tuples the adversary tried while crafting.
	Candidates int
}

// SimulateEvasion crafts unwanted flows for every (rule, path) cell with
// positive sampling and measures the deployment's drop rate when the
// defender samples with defenderKey while the adversary optimizes against
// attackerKey. With attackerKey == defenderKey the adversary evades almost
// everything; with a private (different) defender key the crafted flows
// are hashed afresh and the drop rate returns to the assigned coverage.
//
// tries bounds the adversary's per-flow search effort; flowsPerCell flows
// are crafted per (rule, path) cell that has positive total sampling.
func SimulateEvasion(inst *Instance, dep *Deployment, attackerKey, defenderKey uint32, flowsPerCell, tries int, rng *rand.Rand) EvasionResult {
	if flowsPerCell <= 0 {
		flowsPerCell = 20
	}
	if tries <= 0 {
		tries = 32
	}
	attacker := hashing.Hasher{Key: attackerKey}
	defender := hashing.Hasher{Key: defenderKey}

	var res EvasionResult
	var dropped, droppedEvadable float64
	for i := range dep.D {
		for k, path := range inst.Paths {
			// Cumulative per-node bounds: node at position pos owns
			// [bounds[pos], bounds[pos+1]).
			total := 0.0
			bounds := make([]float64, len(path)+1)
			for pos := range path {
				total += dep.D[i][k][pos]
				bounds[pos+1] = total
			}
			if total <= 1e-12 {
				continue // nothing sampled: trivially evadable, skip
			}
			evadable := total < 1-1e-9
			for f := 0; f < flowsPerCell; f++ {
				// The adversary varies the ephemeral source port (and, if
				// needed, a low source-address bit it controls) hunting
				// for a tuple whose hash under ITS key falls in the
				// unsampled tail [total, 1).
				var ft hashing.FiveTuple
				found := false
				for attempt := 0; attempt < tries; attempt++ {
					res.Candidates++
					ft = hashing.FiveTuple{
						SrcIP:   0x0a000000 | uint32(rng.Intn(1<<16)),
						DstIP:   0x0b000000 | uint32(rng.Intn(1<<16)),
						SrcPort: uint16(1024 + rng.Intn(64000)),
						DstPort: 80,
						Proto:   6,
					}
					if attacker.Flow(ft) >= total {
						found = true
						break
					}
				}
				_ = found // even without a winning tuple the last one is sent
				res.Flows++
				if evadable {
					res.EvadableFlows++
				}
				h := defender.Flow(ft)
				for pos := range path {
					if h >= bounds[pos] && h < bounds[pos+1] {
						dropped++
						if evadable {
							droppedEvadable++
						}
						break
					}
				}
			}
		}
	}
	if res.Flows > 0 {
		res.DroppedFraction = dropped / float64(res.Flows)
	}
	if res.EvadableFlows > 0 {
		res.DroppedEvadable = droppedEvadable / float64(res.EvadableFlows)
	}
	return res
}
