package nips

import (
	"math/rand"
)

// SimResult compares a deployment's predicted objective against a
// flow-level data-plane simulation of hash-based sampling and dropping.
type SimResult struct {
	// Predicted is the Eq. (7) objective of the deployment, rescaled to
	// the simulated flow population.
	Predicted float64
	// Measured is the footprint reduction the simulated data plane
	// actually achieved.
	Measured float64
	// TotalFootprint is the footprint all simulated unwanted flows would
	// have consumed with no NIPS at all.
	TotalFootprint float64
	// Flows is the number of simulated unwanted flows.
	Flows int
}

// SimulateDrops exercises a deployment in a flow-level data plane: for each
// path and rule, unwanted flows are drawn in proportion to T_ik * M_ik,
// each flow is hashed to a point in [0, 1), and the nodes along the path
// apply their assigned non-overlapping hash ranges (the same Figure 2
// translation the NIDS uses); a flow is dropped by the first node whose
// range contains it, and the measured benefit is the downstream distance it
// no longer travels. The result validates that the optimizer's objective is
// exactly what the data plane realizes.
//
// flowScale controls fidelity: one simulated flow represents flowScale real
// flows (smaller = more flows = tighter agreement).
func SimulateDrops(inst *Instance, dep *Deployment, flowScale float64, rng *rand.Rand) SimResult {
	if flowScale <= 0 {
		flowScale = 1000
	}
	var res SimResult
	for i := range dep.D {
		for k, path := range inst.Paths {
			unwanted := inst.Items[k] * inst.M[i][k] / flowScale
			nFlows := int(unwanted)
			if rng.Float64() < unwanted-float64(nFlows) {
				nFlows++
			}
			if nFlows == 0 {
				continue
			}
			// Per-node half-open ranges, cumulative along the path: node at
			// position pos owns [cum, cum+d).
			bounds := make([]float64, len(path)+1)
			for pos := range path {
				bounds[pos+1] = bounds[pos] + dep.D[i][k][pos]
			}
			res.Flows += nFlows
			res.TotalFootprint += float64(nFlows) * flowScale * inst.Dist[k][0]
			for f := 0; f < nFlows; f++ {
				u := rng.Float64()
				for pos := range path {
					if u >= bounds[pos] && u < bounds[pos+1] {
						res.Measured += flowScale * inst.Dist[k][pos]
						break
					}
				}
			}
		}
	}
	res.Predicted = Objective(inst, dep)
	return res
}
