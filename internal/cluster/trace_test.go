package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"nwdeploy/internal/trace"
)

// tracedChaos runs the fault-heavy determinism scenario with a live
// tracer and returns the run's canonical event sequence plus a full dump.
func tracedChaos(t *testing.T, seed int64, workers int) ([]trace.Event, []byte) {
	t.Helper()
	tr := trace.New(trace.Options{Seed: seed})
	cfg := smallChaosConfig(seed, workers)
	cfg.Trace = tr
	if _, err := CoverageUnderChaos(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	return tr.Events(), buf.Bytes()
}

// The tentpole determinism guarantee for traces: same seed, Workers 1 vs
// 4 → DeepEqual per-component event sequences and byte-identical dumps,
// even though agents fetch concurrently over real sockets under injected
// faults. Events() already normalizes order per component (and components
// sort by (kind, id)), so DeepEqual over it is the per-node comparison.
func TestClusterTraceDeterministicAcrossWorkers(t *testing.T) {
	ev1, dump1 := tracedChaos(t, 21, 1)
	ev4, dump4 := tracedChaos(t, 21, 4)
	if !reflect.DeepEqual(ev1, ev4) {
		for i := range ev1 {
			if i >= len(ev4) || !reflect.DeepEqual(ev1[i], ev4[i]) {
				t.Fatalf("event %d diverges across workers:\n w1: %+v\n w4: %+v", i, ev1[i], ev4[i])
			}
		}
		t.Fatalf("event counts diverge: %d vs %d", len(ev1), len(ev4))
	}
	if !bytes.Equal(dump1, dump4) {
		t.Fatal("dumps not byte-identical across worker counts")
	}
	if len(ev1) == 0 {
		t.Fatal("traced chaos run recorded no events")
	}
	// The chaos path drives the data plane, so engine_run events must be
	// present (the overload path audits coverage without running engines).
	var engineRuns int
	for _, ev := range ev1 {
		if ev.Type == trace.EvEngineRun {
			engineRuns++
		}
	}
	if engineRuns == 0 {
		t.Fatal("traced chaos run recorded no engine_run events")
	}

	ev22, _ := tracedChaos(t, 22, 1)
	if reflect.DeepEqual(ev1, ev22) {
		t.Fatal("different seeds produced identical traces")
	}
}

// A traced overload run must record the causal chain the flight recorder
// exists to reconstruct: overrun → shed_planned → shed_publish →
// fetch_ok (carrying the publish span), all on one run's trace.
func TestOverloadTraceRecordsCausalChain(t *testing.T) {
	tr := trace.New(trace.Options{Seed: 5})
	cfg := smallOverloadConfig(5, 1)
	cfg.Trace = tr
	rep, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shedHappened := false
	for _, e := range rep.Epochs {
		if e.ShedWidth > 0 {
			shedHappened = true
		}
	}
	if !shedHappened {
		t.Fatal("scenario no longer sheds; causal-chain assertion is vacuous")
	}

	// Two passes: Events() orders components canonically ((kind, id), so
	// agents precede the controller), not causally — collect the publish
	// spans first, then check the agents' fetches stitch to them.
	seen := map[string]int{}
	pubSpans := map[string]bool{}
	for _, ev := range tr.Events() {
		seen[ev.Type]++
		if ev.Type == trace.EvShedPublish || ev.Type == trace.EvPublish {
			pubSpans[ev.Span] = true
		}
	}
	var stitched bool
	for _, ev := range tr.Events() {
		if ev.Type == trace.EvFetchOK {
			for _, a := range ev.Attrs {
				if a.K == "pub_span" && pubSpans[a.V] {
					stitched = true
				}
			}
		}
	}
	for _, typ := range []string{
		trace.EvEpochStart, trace.EvDrift, trace.EvOverrun,
		trace.EvShedPlanned, trace.EvShedPublish, trace.EvFetchOK,
		trace.EvCoverage,
	} {
		if seen[typ] == 0 {
			t.Errorf("causal chain missing %q events (saw %v)", typ, seen)
		}
	}
	if !stitched {
		t.Fatal("no fetch_ok carried a publish span recorded by the controller: wire stitch broken")
	}
}

// The SLO watchdog's verdicts land in the epoch reports and are
// tracer-independent: the same impossible SLO yields the same violations
// with and without a live tracer.
func TestWatchdogViolationsInReports(t *testing.T) {
	slo := trace.Disabled()
	slo.MinWorstCoverage = 1.01 // unsatisfiable: every epoch violates
	run := func(tr *trace.Tracer) *OverloadReport {
		cfg := smallOverloadConfig(9, 1)
		cfg.Watchdog = trace.NewWatchdog(slo)
		cfg.Trace = tr
		rep, err := RunOverload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	tr := trace.New(trace.Options{Seed: 9})
	withTrace := run(tr)
	withoutTrace := run(nil)
	if !reflect.DeepEqual(withTrace, withoutTrace) {
		t.Fatal("watchdog verdicts differ with vs without a live tracer")
	}
	for _, e := range withTrace.Epochs {
		if len(e.SLOViolations) == 0 {
			t.Fatalf("epoch %d: unsatisfiable SLO produced no violations", e.Epoch)
		}
	}
	var sloEvents int
	for _, ev := range tr.Events() {
		if ev.Type == trace.EvSLOViolation {
			sloEvents++
		}
	}
	if sloEvents == 0 {
		t.Fatal("no slo_violation events recorded")
	}
}

// DumpOnce fires at the first violation and the sink holds exactly one
// post-mortem even when every epoch violates.
func TestPostMortemDumpsOnce(t *testing.T) {
	tr := trace.New(trace.Options{Seed: 9})
	var sink bytes.Buffer
	tr.SetSink(&sink)
	slo := trace.Disabled()
	slo.MinWorstCoverage = 1.01
	cfg := smallOverloadConfig(9, 1)
	cfg.Trace = tr
	cfg.Watchdog = trace.NewWatchdog(slo)
	if _, err := RunOverload(cfg); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("violating run produced no post-mortem")
	}
	if n := bytes.Count(sink.Bytes(), []byte(`"type":"dump"`)); n != 1 {
		t.Fatalf("sink holds %d dump headers, want exactly 1", n)
	}
}
