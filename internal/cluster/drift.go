package cluster

// Drift detection: the paper's Section 5 "Traffic changes" discussion has
// the operations center re-run the optimization every few minutes against
// fresh traffic reports. A fixed cadence either replans too often (wasted
// solves, manifest churn) or too rarely (nodes run hot between rounds).
// The detector instead smooths the observed per-unit volumes with an EWMA
// and triggers a replan only when the smoothed volumes have moved past a
// relative-error threshold from the volumes the current plan was solved
// against — so one-epoch blips are absorbed (the governor's job) while
// sustained shifts reprovision promptly.

// DriftDetector tracks EWMA-smoothed observed volumes against the current
// plan's reference volumes. It is deterministic: state is a pure function
// of the Observe call sequence.
type DriftDetector struct {
	alpha     float64
	threshold float64
	base      []float64
	ewma      []float64
	warmed    bool
	maxErr    float64
}

// NewDriftDetector builds a detector referenced to the given plan volumes.
// alpha is the EWMA weight of each new observation (0 selects 0.5);
// threshold is the max relative error that counts as drift (0 selects 0.2).
func NewDriftDetector(base []float64, alpha, threshold float64) *DriftDetector {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	if threshold <= 0 {
		threshold = 0.2
	}
	return &DriftDetector{
		alpha: alpha, threshold: threshold,
		base: append([]float64(nil), base...),
	}
}

// Rebase re-anchors the detector to a new plan's volumes (after a replan)
// without discarding the smoothed observation state.
func (d *DriftDetector) Rebase(base []float64) {
	d.base = append(d.base[:0], base...)
	d.maxErr = d.relErr()
}

// Observe folds one epoch's observed per-unit volumes into the EWMA and
// returns the updated maximum relative error versus the reference.
func (d *DriftDetector) Observe(obs []float64) float64 {
	if !d.warmed {
		d.ewma = append(d.ewma[:0], obs...)
		d.warmed = true
	} else {
		for i, v := range obs {
			d.ewma[i] += d.alpha * (v - d.ewma[i])
		}
	}
	d.maxErr = d.relErr()
	return d.maxErr
}

func (d *DriftDetector) relErr() float64 {
	if !d.warmed {
		return 0
	}
	var max float64
	for i, b := range d.base {
		if b < 1 && d.ewma[i] < 1 {
			// Both reference and smoothed volume are sub-packet: the unit is
			// effectively idle on both sides, and the residual is float noise,
			// not drift. Without this guard an all-zero rebase (e.g. a total
			// outage epoch) would report every later sub-packet trickle as
			// absolute error and could pin the detector above threshold.
			continue
		}
		diff := d.ewma[i] - b
		if diff < 0 {
			diff = -diff
		}
		ref := b
		if ref < 1 {
			ref = 1 // empty-unit guard: absolute error on near-zero volumes
		}
		if e := diff / ref; e > max {
			max = e
		}
	}
	return max
}

// MaxRelErr returns the current maximum relative error across units.
func (d *DriftDetector) MaxRelErr() float64 { return d.maxErr }

// Drifted reports whether the smoothed volumes have moved past the replan
// threshold.
func (d *DriftDetector) Drifted() bool { return d.warmed && d.maxErr > d.threshold }

// Smoothed returns a copy of the EWMA volumes — the replan input.
func (d *DriftDetector) Smoothed() []float64 {
	return append([]float64(nil), d.ewma...)
}
