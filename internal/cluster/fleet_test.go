package cluster

import (
	"reflect"
	"testing"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
)

// zeroWallMs strips the snapshots' only wall-clock field so runs can be
// compared DeepEqual.
func zeroWallMs(snaps []telemetry.FleetSnapshot) []telemetry.FleetSnapshot {
	for i := range snaps {
		snaps[i].WallMs = 0
	}
	return snaps
}

// Attaching the fleet plane must not perturb a chaos run: same-seed
// reports with and without it compare DeepEqual, and the fleet history
// itself (wall clock aside) is identical across worker counts — stats
// ride only exchanges the agents were already making.
func TestChaosFleetNonInterference(t *testing.T) {
	base, err := CoverageUnderChaos(smallChaosConfig(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	n := topology.Internet2().N()

	var histories [][]telemetry.FleetSnapshot
	for _, workers := range []int{1, 4} {
		cfg := smallChaosConfig(21, workers)
		cfg.Fleet = telemetry.NewFleet(n, telemetry.FleetOptions{})
		cfg.FleetHistory = telemetry.NewHistory(16)
		rep, err := CoverageUnderChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("fleet-on report (workers=%d) diverges from fleet-off", workers)
		}
		snaps := cfg.FleetHistory.Snapshots()
		if len(snaps) != len(base.Epochs) {
			t.Fatalf("history has %d snapshots, want one per epoch (%d)", len(snaps), len(base.Epochs))
		}
		for _, s := range snaps {
			if s.WallMs == 0 {
				t.Fatalf("epoch %d snapshot missing wall-clock stamp", s.RunEpoch)
			}
			if got := s.Healthy + s.Stale + s.Shedding + s.Dark; got != n {
				t.Fatalf("epoch %d states sum to %d, want %d", s.RunEpoch, got, n)
			}
			if len(s.Nodes) != n {
				t.Fatalf("epoch %d has %d node views, want %d", s.RunEpoch, len(s.Nodes), n)
			}
		}
		histories = append(histories, zeroWallMs(snaps))
	}
	if !reflect.DeepEqual(histories[0], histories[1]) {
		t.Fatal("same-seed fleet histories differ across worker counts")
	}

	// This scenario crashes nodes and takes the controller down, so the
	// fleet view must register trouble somewhere or it is vacuous.
	trouble := 0
	for _, s := range histories[0] {
		trouble += s.Stale + s.Dark
	}
	if trouble == 0 {
		t.Fatal("fault-heavy run never produced a stale or dark node")
	}
}

// Overload runs carry the governor's shed state into the fleet view, and
// the plane stays write-only there too.
func TestOverloadFleetNonInterference(t *testing.T) {
	base, err := RunOverload(smallOverloadConfig(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	n := topology.Internet2().N()

	cfg := smallOverloadConfig(5, 0)
	cfg.Fleet = telemetry.NewFleet(n, telemetry.FleetOptions{})
	cfg.FleetHistory = telemetry.NewHistory(16)
	rep, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, rep) {
		t.Fatal("fleet-on overload report diverges from fleet-off")
	}
	snaps := cfg.FleetHistory.Snapshots()
	if len(snaps) != len(base.Epochs) {
		t.Fatalf("history has %d snapshots, want %d", len(snaps), len(base.Epochs))
	}
	// The scenario sheds (the governor test proves it); a node's shed state
	// is collected at epoch end and delivered on its next exchange, so some
	// later snapshot must classify a node as shedding.
	shedding := 0
	for _, s := range snaps {
		shedding += s.Shedding
	}
	if shedding == 0 {
		t.Fatal("governed overload run never showed a shedding node in the fleet view")
	}
}

// The live classification acceptance story: a crashed node goes dark in
// the epoch it crashes; a drained node's farewell keeps its silence
// classified stale; both recover to healthy after rejoining and syncing.
func TestScenarioFleetCrashDarkDrainStale(t *testing.T) {
	topo := topology.Internet2()
	n := topo.N()
	const crashed, drained = 3, 2
	driver := func() ScenarioDriver {
		return &scriptDriver{name: "fleet-maint", step: func(env *ScenarioEnv) Stimulus {
			switch env.Epoch {
			case 2:
				return Stimulus{Faults: chaos.EpochFaults{DownNodes: []int{crashed}}}
			case 3:
				return Stimulus{Drains: []int{drained}}
			}
			return Stimulus{}
		}}
	}
	run := func(fleet *telemetry.Fleet, hist *telemetry.History) *ScenarioReport {
		rep, err := RunScenario(ScenarioConfig{
			Driver: driver(),
			Topo:   topo, Sessions: 400, TrafficSeed: 5, Seed: 9,
			Epochs: 5, Redundancy: 2,
			Retry:      RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1},
			StaleGrace: 2,
			Probes:     200,
			Fleet:      fleet, FleetHistory: hist,
		})
		if err != nil {
			t.Fatalf("RunScenario: %v", err)
		}
		return rep
	}

	base := run(nil, nil)
	fleet := telemetry.NewFleet(n, telemetry.FleetOptions{})
	hist := telemetry.NewHistory(16)
	rep := run(fleet, hist)
	if !reflect.DeepEqual(base, rep) {
		t.Fatal("fleet-on scenario report diverges from fleet-off")
	}

	snaps := hist.Snapshots()
	if len(snaps) != 5 {
		t.Fatalf("history has %d snapshots, want 5", len(snaps))
	}
	// Epoch 1: clean network, everyone reported (bootstrap stats), healthy.
	if s := snaps[0]; s.Healthy != n {
		t.Fatalf("epoch 1: %d healthy of %d: %+v", s.Healthy, n, s.Counts())
	}
	// Epoch 2: the crash happens mid-run with no farewell — dark within
	// the same epoch.
	if h := snaps[1].Nodes[crashed].Health; h != telemetry.Dark {
		t.Fatalf("epoch 2: crashed node classified %v, want dark", h)
	}
	// Epoch 3: the drain transition filed a Draining farewell, so the
	// node's silence is stale (planned), not dark, in the drain epoch.
	v := snaps[2].Nodes[drained]
	if v.Health != telemetry.Stale || !v.Draining {
		t.Fatalf("epoch 3: drained node = %+v, want stale+draining", v)
	}
	if snaps[2].Dark == 0 {
		// The crashed node rebuilt its control client empty; it syncs in
		// epoch 3 but carries no stats until the end-of-epoch collection,
		// so it stays dark one extra epoch.
		t.Fatalf("epoch 3: crashed node should still be dark: %+v", snaps[2].Counts())
	}
	// Epoch 5: both nodes are back, synced, and reporting again.
	last := snaps[4]
	for _, j := range []int{crashed, drained} {
		if h := last.Nodes[j].Health; h != telemetry.Healthy {
			t.Fatalf("epoch 5: node %d classified %v, want healthy", j, h)
		}
	}

	latest := fleet.Latest()
	if latest == nil || latest.RunEpoch != 5 {
		t.Fatalf("Latest = %+v, want the epoch-5 snapshot", latest)
	}
}

// A hierarchy-attached fleet sees reports through whichever controller
// tier served each agent and rolls node health up per region.
func TestHierarchyFleetRegions(t *testing.T) {
	topo := topology.Internet2()
	n := topo.N()
	plan, _ := hierPlan(t, topo, 1)
	fleet := telemetry.NewFleet(n, telemetry.FleetOptions{})
	h, err := NewHierarchy(HierarchyOptions{
		Topo: topo, Plan: plan, Regions: 3, HashKey: 7,
		Deltas: true,
		Fleet:  fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for j, a := range h.Agents() {
		a.SetStats(&telemetry.NodeStats{Node: j, Epoch: 1, Sessions: 10 * (j + 1)})
	}
	if rep := h.SyncAll(); rep.Failed != 0 {
		t.Fatalf("formation round failed syncs: %+v", rep)
	}
	snap := fleet.EndEpoch(1, h.global.Epoch())
	if snap.Healthy != n {
		t.Fatalf("all-synced hierarchy: %d healthy of %d: %+v", snap.Healthy, n, snap.Counts())
	}
	if len(snap.Regions) != 3 {
		t.Fatalf("snapshot has %d regions, want 3", len(snap.Regions))
	}
	covered := 0
	for _, rh := range snap.Regions {
		if rh.Healthy != len(rh.Nodes) {
			t.Fatalf("region %d: %d healthy of %d members", rh.Region, rh.Healthy, len(rh.Nodes))
		}
		covered += len(rh.Nodes)
	}
	if covered != n {
		t.Fatalf("regions cover %d nodes, want %d", covered, n)
	}
	for j, v := range snap.Nodes {
		if v.Sessions != 10*(j+1) {
			t.Fatalf("node %d sessions = %d, want %d — report did not survive the wire", j, v.Sessions, 10*(j+1))
		}
	}
}
