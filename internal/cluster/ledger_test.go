package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/governor"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/topology"
)

func newTestLedger(seed int64) (*ledger.Ledger, *ledger.MemStore) {
	store := ledger.NewMemStore()
	return ledger.New(ledger.Options{Seed: seed, Store: store}), store
}

// verifyTestChain checks a run's chain end to end against its pinned head
// and genesis and returns the summary.
func verifyTestChain(t *testing.T, led *ledger.Ledger, store ledger.Store, seed int64) *ledger.ChainSummary {
	t.Helper()
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}
	sum, err := ledger.VerifyChain(led.Chain(), ledger.VerifyOptions{
		Head: led.HeadHex(), GenesisPrev: ledger.GenesisHex(seed), Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// Attaching a ledger must not perturb the run: same-seed chaos reports
// with and without it compare DeepEqual, the chain verifies against its
// pinned head, and the chain bytes are identical across worker counts —
// commits happen only on the serial epoch loop.
func TestChaosLedgerNonInterference(t *testing.T) {
	base, err := CoverageUnderChaos(smallChaosConfig(21, 0))
	if err != nil {
		t.Fatal(err)
	}

	chains := make([][]byte, 0, 2)
	for _, workers := range []int{1, 4} {
		cfg := smallChaosConfig(21, workers)
		led, store := newTestLedger(21)
		cfg.Ledger = led
		rep, err := CoverageUnderChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("ledger-on report (workers=%d) diverges from ledger-off", workers)
		}
		sum := verifyTestChain(t, led, store, 21)
		if sum.Kinds[ledger.RecEpoch] != len(base.Epochs) {
			t.Fatalf("chain has %d epoch records, want %d", sum.Kinds[ledger.RecEpoch], len(base.Epochs))
		}
		if sum.Kinds[ledger.RecPublish] == 0 {
			t.Fatal("chain has no publish record")
		}
		chains = append(chains, led.Chain())
	}
	if !bytes.Equal(chains[0], chains[1]) {
		t.Fatal("same-seed chains differ across worker counts")
	}
}

// The delta-path equivalence contract on the live wire: a fault-free run
// commits byte-identical chains whether agents sync by legacy full
// fetches, JSON deltas, or binary deltas, at any worker count — six runs,
// one chain. The committed manifests are canonical, so the sync path a
// node took to reconstruct its manifest cannot leak into the audit record.
func TestChaosLedgerDeltaPathEquivalence(t *testing.T) {
	paths := []struct {
		name   string
		deltas bool
		enc    control.Encoding
	}{
		{"legacy-full", false, control.EncodingJSON},
		{"delta-json", true, control.EncodingJSON},
		{"delta-binary", true, control.EncodingBinary},
	}
	var ref []byte
	for _, p := range paths {
		for _, workers := range []int{1, 4} {
			cfg := ChaosConfig{
				Sessions: 600, Epochs: 4, Seed: 33,
				Schedule: &chaos.Schedule{}, // fault-free: every agent syncs every epoch
				ReoptEvery: 2,               // exercise a mid-run publish record
				Deltas:     p.deltas, Encoding: p.enc,
				Probes: 300, Workers: workers,
				Retry: fastRetry, Agent: fastAgent,
			}
			led, store := newTestLedger(33)
			cfg.Ledger = led
			if _, err := CoverageUnderChaos(cfg); err != nil {
				t.Fatal(err)
			}
			verifyTestChain(t, led, store, 33)
			if ref == nil {
				ref = led.Chain()
				continue
			}
			if !bytes.Equal(ref, led.Chain()) {
				t.Fatalf("%s workers=%d: chain differs from reference", p.name, workers)
			}
		}
	}
}

// The other half of the wire contract: the manifest an agent actually
// installed through delta reconstruction canonicalizes to the exact blob
// the controller committed for that node — prove-able, since every item
// carries a Merkle inclusion proof into its record's root.
func TestClusterLedgerMatchesAgentManifests(t *testing.T) {
	led, store := newTestLedger(9)
	c := newTestCluster(t, Options{Seed: 9, Deltas: true, Encoding: control.EncodingBinary, Ledger: led})
	c.RunEpoch(chaos.EpochFaults{})
	c.BumpEpoch()
	c.RunEpoch(chaos.EpochFaults{})
	verifyTestChain(t, led, store, 9)

	var pub ledger.Record
	for _, r := range led.Records() {
		if r.Kind == ledger.RecPublish {
			pub = r // keep the last publish
		}
	}
	if pub.Kind == "" {
		t.Fatal("no publish record committed")
	}
	for j, a := range c.Agents() {
		m := a.agent.Manifest()
		if m == nil {
			t.Fatalf("agent %d holds no manifest", j)
		}
		want, err := control.CanonicalManifest(m)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for i, it := range pub.Items {
			if it.Key != fmt.Sprintf("node/%d", j) {
				continue
			}
			found = true
			blob, err := store.Get(it.Ref)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("node %d: committed blob differs from the agent's installed manifest", j)
			}
			p, err := ledger.RecordProof(pub, i)
			if err != nil {
				t.Fatal(err)
			}
			if !ledger.VerifyItem(pub, i, p) {
				t.Fatalf("node %d: inclusion proof does not verify", j)
			}
		}
		if !found {
			t.Fatalf("publish record has no item for node %d", j)
		}
	}
}

// Overload runs commit an epoch record per epoch whose prediction is the
// governors' shed floor, plus one floor attestation per node — and the
// ledger must not perturb the run.
func TestOverloadLedgerAttestations(t *testing.T) {
	base, err := RunOverload(smallOverloadConfig(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallOverloadConfig(5, 2)
	led, store := newTestLedger(5)
	cfg.Ledger = led
	rep, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, rep) {
		t.Fatal("ledger-on overload report diverges from ledger-off")
	}
	verifyTestChain(t, led, store, 5)

	n := topology.Internet2().N()
	epochRecs := 0
	shedAttested := false
	for _, r := range led.Records() {
		if r.Kind != ledger.RecEpoch {
			continue
		}
		epochRecs++
		if len(r.Items) != n+1 {
			t.Fatalf("epoch record has %d items, want verdict + %d attestations", len(r.Items), n)
		}
		ep := rep.Epochs[epochRecs-1]
		for _, it := range r.Items {
			switch it.Kind {
			case ledger.ItemVerdict:
				v, err := DecodeCoverageVerdict(it.Data)
				if err != nil {
					t.Fatal(err)
				}
				if v.PredictedWorst != ep.ShedFloorWorst || v.Worst != ep.WorstCoverage {
					t.Fatalf("epoch %d verdict %+v disagrees with report", ep.Epoch, v)
				}
			case ledger.ItemAttest:
				a, err := governor.DecodeAttestation(it.Data)
				if err != nil {
					t.Fatal(err)
				}
				if !a.FloorIntact {
					t.Fatalf("epoch %d node %d attested a floor breach", ep.Epoch, a.Node)
				}
				if a.ShedWidth > 0 {
					shedAttested = true
				}
			default:
				t.Fatalf("unexpected item kind %s in epoch record", it.Kind)
			}
		}
	}
	if epochRecs != len(rep.Epochs) {
		t.Fatalf("chain has %d epoch records, want %d", epochRecs, len(rep.Epochs))
	}
	if !shedAttested {
		t.Fatal("no attestation recorded any shedding — scenario too tame to test anything")
	}
}

// Every hierarchy publish seals the region partition, so an auditor can
// prove which controller owned which nodes at any epoch.
func TestHierarchyLedgerRegionsRecord(t *testing.T) {
	topo := topology.Internet2()
	plan, _ := hierPlan(t, topo, 1)
	plan2, _ := hierPlan(t, topo, 2)
	led, store := newTestLedger(13)
	h, err := NewHierarchy(HierarchyOptions{
		Topo: topo, Plan: plan, Regions: 3, HashKey: 7, Ledger: led,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	h.Publish(plan2)
	verifyTestChain(t, led, store, 13)

	var regionRecs []ledger.Record
	for _, r := range led.Records() {
		if r.Kind == ledger.RecRegions {
			regionRecs = append(regionRecs, r)
		}
	}
	if len(regionRecs) != 2 {
		t.Fatalf("got %d regions records, want one per publish", len(regionRecs))
	}
	for gen, rec := range regionRecs {
		if rec.Epoch != uint64(gen+1) {
			t.Fatalf("regions record %d at epoch %d, want %d", gen, rec.Epoch, gen+1)
		}
		if len(rec.Items) != len(h.Regions()) {
			t.Fatalf("regions record has %d items, want %d", len(rec.Items), len(h.Regions()))
		}
		for i, it := range rec.Items {
			d := ledger.NewDec(it.Data)
			members := d.Ints()
			if err := d.Done(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(members, h.Regions()[i]) {
				t.Fatalf("region %d members %v, want %v", i, members, h.Regions()[i])
			}
			p, err := ledger.RecordProof(rec, i)
			if err != nil {
				t.Fatal(err)
			}
			if !ledger.VerifyItem(rec, i, p) {
				t.Fatalf("region %d proof does not verify", i)
			}
		}
	}
}
