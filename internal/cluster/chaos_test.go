package cluster

import (
	"reflect"
	"testing"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
)

// smallChaosConfig is a fast but fault-heavy scenario for determinism
// tests: real sockets, drops, black holes, crashes, and outages.
func smallChaosConfig(seed int64, workers int) ChaosConfig {
	return ChaosConfig{
		Sessions: 600, Epochs: 4, Seed: seed,
		Faults:       chaos.NetworkFaults{DropProb: 0.25, BlackholeProb: 0.1},
		NodeFailProb: 0.2, ControllerOutageProb: 0.25, MaxDown: 2,
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, JitterFrac: 0.3},
		Agent:  control.AgentOptions{DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond},
		Probes: 500, Workers: workers,
	}
}

// The headline determinism guarantee: two chaos runs with the same seed
// produce DeepEqual reports, even though each run opens real TCP sockets,
// races goroutines, and spends different wall time; and the report is
// independent of worker-pool sizing. A metrics registry must not perturb
// it either.
func TestCoverageUnderChaosDeterministic(t *testing.T) {
	r1, err := CoverageUnderChaos(smallChaosConfig(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallChaosConfig(21, 1)
	cfg2.Metrics = obs.New()
	r2, err := CoverageUnderChaos(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed chaos runs diverge:\nrun1: %+v\nrun2: %+v", r1, r2)
	}

	r3, err := CoverageUnderChaos(smallChaosConfig(22, 0))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Epochs, r3.Epochs) {
		t.Fatal("different seeds produced identical epoch reports")
	}

	// The run must actually have exercised faults, or the determinism
	// claim is vacuous.
	sawFailure, sawFault := false, false
	for _, e := range r1.Epochs {
		if e.FetchFailures > 0 {
			sawFailure = true
		}
		if e.ControllerDown || len(e.DownNodes) > 0 {
			sawFault = true
		}
	}
	if !sawFailure || !sawFault {
		t.Fatalf("chaos run exercised no faults (failures=%v epochFaults=%v)", sawFailure, sawFault)
	}
}

// perPathModules returns modules whose classes are all PerPath-scoped —
// the only classes for which redundancy r=2 is feasible (PerIngress and
// PerEgress units have a single eligible node, so no second copy exists).
func perPathModules(t *testing.T) []bro.ModuleSpec {
	t.Helper()
	var out []bro.ModuleSpec
	for _, name := range []string{"signature", "http"} {
		for _, m := range bro.StandardModules() {
			if m.Name == name {
				out = append(out, m)
			}
		}
	}
	if len(out) != 2 {
		t.Fatalf("expected signature+http modules, got %d", len(out))
	}
	return out
}

// The Section 2.5 acceptance criterion, measured at runtime: a deployment
// provisioned with one redundant copy (r=2) holds 100% coverage through
// every single-node-failure epoch, degrades only when concurrent failures
// exceed the provisioned redundancy, and the achieved coverage matches
// the static core.CoverageUnderFailure audit exactly in every epoch.
func TestRedundancyHoldsUnderSingleFailures(t *testing.T) {
	topo := topology.Internet2()
	modules := perPathModules(t)
	c := newTestCluster(t, Options{
		Topo: topo, Modules: modules,
		Sessions:   testSessions(t, topo, 2500),
		Redundancy: 2,
		Seed:       31,
		Probes:     10000, // match CoverageUnderFailure's grid exactly
	})

	// A doomed pair: both eligible nodes of some two-node unit. Killing
	// them exceeds r-1=1 and must open a coverage hole no redundancy can
	// absorb.
	var doomed []int
	for _, u := range c.inst.Units {
		if len(u.Nodes) == 2 {
			doomed = append([]int(nil), u.Nodes...)
			break
		}
	}
	if doomed == nil {
		t.Fatal("no two-node unit in the instance; pick a different workload")
	}

	epochs := []chaos.EpochFaults{
		{},                    // healthy
		{DownNodes: []int{0}}, // single failure: guarantee holds
		{DownNodes: []int{5}}, // another single failure
		{DownNodes: doomed},   // beyond provisioned redundancy
		{},                    // recovery
	}
	for i, f := range epochs {
		rep := c.RunEpoch(f)
		wantWorst, wantAvg := core.CoverageUnderFailure(c.Plan(), f.DownNodes)
		if rep.WorstCoverage != wantWorst || rep.AvgCoverage != wantAvg {
			t.Fatalf("epoch %d: achieved (%v, %v) != static audit (%v, %v)",
				i+1, rep.WorstCoverage, rep.AvgCoverage, wantWorst, wantAvg)
		}
		if rep.WorstCoverage != rep.PredictedWorst || rep.AvgCoverage != rep.PredictedAvg {
			t.Fatalf("epoch %d: achieved (%v, %v) != predicted (%v, %v)",
				i+1, rep.WorstCoverage, rep.AvgCoverage, rep.PredictedWorst, rep.PredictedAvg)
		}
		if len(f.DownNodes) <= c.plan.Redundancy-1 {
			if rep.WorstCoverage != 1 {
				t.Fatalf("epoch %d: %d failures within redundancy %d, but worst coverage %v",
					i+1, len(f.DownNodes), c.plan.Redundancy, rep.WorstCoverage)
			}
		}
	}

	// The doomed-pair epoch must actually have degraded, or the test
	// proves nothing about the guarantee's boundary.
	degraded := c.RunEpoch(chaos.EpochFaults{DownNodes: doomed})
	if degraded.WorstCoverage >= 1 {
		t.Fatalf("killing both copies of a unit left worst coverage %v", degraded.WorstCoverage)
	}
}
