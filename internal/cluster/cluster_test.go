package cluster

import (
	"testing"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// fastRetry keeps test fetch loops snappy without changing their logic.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

// fastAgent keeps injected black holes from stalling tests.
var fastAgent = control.AgentOptions{DialTimeout: 200 * time.Millisecond, RPCTimeout: 150 * time.Millisecond}

func testSessions(t *testing.T, topo *topology.Topology, n int) []traffic.Session {
	t.Helper()
	return traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: n, Seed: 7})
}

func newTestCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Topo == nil {
		opts.Topo = topology.Internet2()
	}
	if opts.Modules == nil {
		opts.Modules = bro.StandardModules()[1:]
	}
	if opts.Sessions == nil {
		opts.Sessions = testSessions(t, opts.Topo, 800)
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = fastRetry
	}
	if opts.Agent.RPCTimeout == 0 {
		opts.Agent = fastAgent
	}
	if opts.Probes == 0 {
		opts.Probes = 500
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// On a clean network every agent converges to the controller's epoch and
// the achieved coverage equals the plan's full-coverage prediction.
func TestClusterConvergesOnCleanNetwork(t *testing.T) {
	c := newTestCluster(t, Options{Seed: 11})
	n := len(c.Agents())
	rep := c.RunEpoch(chaos.EpochFaults{})
	if rep.SyncedAgents != n || rep.StaleAgents != 0 || rep.DarkAgents != 0 {
		t.Fatalf("synced/stale/dark = %d/%d/%d, want %d/0/0",
			rep.SyncedAgents, rep.StaleAgents, rep.DarkAgents, n)
	}
	if rep.ControllerEpoch != 1 {
		t.Fatalf("controller epoch %d, want 1", rep.ControllerEpoch)
	}
	for j, e := range rep.AgentEpochs {
		if e != 1 {
			t.Fatalf("agent %d epoch %d, want 1", j, e)
		}
	}
	if rep.WorstCoverage != 1 || rep.PredictedWorst != 1 {
		t.Fatalf("coverage worst %v predicted %v, want 1/1", rep.WorstCoverage, rep.PredictedWorst)
	}
	if rep.WorstCoverage != rep.PredictedWorst || rep.AvgCoverage != rep.PredictedAvg {
		t.Fatal("achieved coverage diverges from prediction on a healthy epoch")
	}
	if rep.FetchAttempts != n {
		t.Fatalf("fetch attempts %d, want %d (one per agent, no retries)", rep.FetchAttempts, n)
	}
}

// The cluster's data plane — engines driven purely by fetched wire
// manifests — must reproduce the emulation's plan-driven coordinated
// deployment: same alerts, same busiest-node CPU.
func TestClusterDataPlaneMatchesEmulation(t *testing.T) {
	topo := topology.Internet2()
	modules := bro.StandardModules()[1:]
	sessions := testSessions(t, topo, 1500)

	c := newTestCluster(t, Options{Topo: topo, Modules: modules, Sessions: sessions, Seed: 3})
	rep := c.RunEpoch(chaos.EpochFaults{})

	em, err := bro.NewEmulation(topo, modules, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	res := em.Run(bro.DeployCoordinated)
	wantAlerts, wantMaxCPU := 0, 0.0
	for _, r := range res.Reports {
		wantAlerts += r.Alerts
		if r.CPUUnits > wantMaxCPU {
			wantMaxCPU = r.CPUUnits
		}
	}
	if rep.Alerts != wantAlerts {
		t.Fatalf("cluster alerts %d, emulation alerts %d", rep.Alerts, wantAlerts)
	}
	if rep.MaxCPU != wantMaxCPU {
		t.Fatalf("cluster max CPU %v, emulation max CPU %v", rep.MaxCPU, wantMaxCPU)
	}
}

// Under a lossy control network the agents retry and still converge; the
// retry accounting must show the extra attempts.
func TestClusterRetriesThroughLossyNetwork(t *testing.T) {
	c := newTestCluster(t, Options{
		Seed:   5,
		Faults: chaos.NetworkFaults{DropProb: 0.4, BlackholeProb: 0.1},
		Retry:  RetryPolicy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, JitterFrac: 0.5},
		Agent:  control.AgentOptions{DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond},
	})
	n := len(c.Agents())
	rep := c.RunEpoch(chaos.EpochFaults{})
	if rep.SyncedAgents != n {
		t.Fatalf("synced %d/%d despite a 12-attempt budget under 50%% faults", rep.SyncedAgents, n)
	}
	if rep.FetchAttempts <= n {
		t.Fatalf("fetch attempts %d implies no retries under 50%% faults", rep.FetchAttempts)
	}
	if rep.FetchFailures == 0 {
		t.Fatal("no fetch failures recorded under 50% faults")
	}
	if rep.FetchTimeouts == 0 {
		t.Fatal("no timeouts recorded despite black-hole faults")
	}
	if rep.WorstCoverage != 1 {
		t.Fatalf("coverage %v after full convergence", rep.WorstCoverage)
	}
}

// A controller outage walks agents through the staleness ladder: synced ->
// stale (serving the last manifest, coverage intact) -> dark past the
// grace window (coverage gone) -> synced again after recovery.
func TestControllerOutageStaleThenDark(t *testing.T) {
	c := newTestCluster(t, Options{Seed: 9, StaleGrace: 1})
	n := len(c.Agents())

	if rep := c.RunEpoch(chaos.EpochFaults{}); rep.SyncedAgents != n {
		t.Fatalf("epoch 1: synced %d/%d", rep.SyncedAgents, n)
	}

	// The controller re-optimizes and immediately becomes unreachable:
	// agents keep enforcing the previous generation within grace.
	c.BumpEpoch()
	rep := c.RunEpoch(chaos.EpochFaults{ControllerDown: true})
	if rep.StaleAgents != n || rep.SyncedAgents != 0 {
		t.Fatalf("epoch 2: stale %d synced %d, want %d/0", rep.StaleAgents, rep.SyncedAgents, n)
	}
	if rep.ControllerEpoch != 2 {
		t.Fatalf("epoch 2: controller epoch %d, want 2", rep.ControllerEpoch)
	}
	for j, e := range rep.AgentEpochs {
		if e != 1 {
			t.Fatalf("epoch 2: agent %d enforces epoch %d, want stale epoch 1", j, e)
		}
	}
	if rep.WorstCoverage != 1 {
		t.Fatalf("epoch 2: stale manifests should still cover fully, got %v", rep.WorstCoverage)
	}

	// Outage persists past the grace window: agents go dark.
	rep = c.RunEpoch(chaos.EpochFaults{ControllerDown: true})
	if rep.DarkAgents != n || rep.StaleAgents != 0 {
		t.Fatalf("epoch 3: dark %d stale %d, want %d/0", rep.DarkAgents, rep.StaleAgents, n)
	}
	if rep.WorstCoverage != 0 {
		t.Fatalf("epoch 3: dark cluster still reports coverage %v", rep.WorstCoverage)
	}

	// Recovery: one epoch restores full coverage.
	rep = c.RunEpoch(chaos.EpochFaults{})
	if rep.SyncedAgents != n || rep.WorstCoverage != 1 {
		t.Fatalf("epoch 4: synced %d coverage %v after recovery", rep.SyncedAgents, rep.WorstCoverage)
	}
}

// A crash loses the node's in-memory manifest: after restart it must
// re-fetch before analyzing, and until the controller is reachable it is
// dark while never-crashed agents are merely stale.
func TestCrashLosesManifestUntilResync(t *testing.T) {
	c := newTestCluster(t, Options{Seed: 13, StaleGrace: 3})
	n := len(c.Agents())
	const victim = 4

	if rep := c.RunEpoch(chaos.EpochFaults{}); rep.SyncedAgents != n {
		t.Fatalf("epoch 1: synced %d/%d", rep.SyncedAgents, n)
	}
	rep := c.RunEpoch(chaos.EpochFaults{DownNodes: []int{victim}})
	if rep.AgentEpochs[victim] != 0 {
		t.Fatalf("epoch 2: crashed agent reports epoch %d", rep.AgentEpochs[victim])
	}
	if rep.PredictedWorst != rep.WorstCoverage {
		t.Fatalf("epoch 2: achieved %v != predicted %v for the same down set",
			rep.WorstCoverage, rep.PredictedWorst)
	}

	// Victim restarts into a controller outage: no manifest to fall back
	// on, so it is dark while everyone else serves stale manifests.
	rep = c.RunEpoch(chaos.EpochFaults{ControllerDown: true})
	if rep.DarkAgents != 1 || rep.StaleAgents != n-1 {
		t.Fatalf("epoch 3: dark %d stale %d, want 1/%d", rep.DarkAgents, rep.StaleAgents, n-1)
	}
	if rep.AgentEpochs[victim] != 0 {
		t.Fatalf("epoch 3: restarted agent kept epoch %d across a crash", rep.AgentEpochs[victim])
	}

	rep = c.RunEpoch(chaos.EpochFaults{})
	if rep.SyncedAgents != n || rep.WorstCoverage != 1 {
		t.Fatalf("epoch 4: synced %d coverage %v after resync", rep.SyncedAgents, rep.WorstCoverage)
	}
}

// Converge is the benchmark's unit of work; it must report full
// convergence on a clean network.
func TestConverge(t *testing.T) {
	c := newTestCluster(t, Options{Seed: 17})
	if got, want := c.Converge(), len(c.Agents()); got != want {
		t.Fatalf("Converge() = %d, want %d", got, want)
	}
}
