package cluster

import (
	"reflect"
	"testing"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// scriptDriver adapts a closure into a ScenarioDriver for tests.
type scriptDriver struct {
	name string
	step func(env *ScenarioEnv) Stimulus
}

func (d *scriptDriver) Name() string                   { return d.name }
func (d *scriptDriver) Step(env *ScenarioEnv) Stimulus { return d.step(env) }

// injectBurst builds n deterministic oversized telnet sessions src->dst
// whose tuples vary with (epoch, i) — enough entropy to spread across hash
// space, and big enough (login alerts above 4000 packets) that any node
// analyzing one raises an alert.
func injectBurst(epoch, n, src, dst int) []traffic.Session {
	out := make([]traffic.Session, 0, n)
	for i := 0; i < n; i++ {
		h := uint32(epoch*131071 + i*8191)
		out = append(out, traffic.Session{
			Tuple: hashing.FiveTuple{
				SrcIP:   uint32(10<<24|src<<16) | (h & 0xffff),
				DstIP:   uint32(10<<24 | dst<<16 | 7),
				SrcPort: uint16(1024 + i),
				DstPort: 23,
				Proto:   6,
			},
			Src: src, Dst: dst,
			ID:      1<<20 + epoch*4096 + i,
			Proto:   traffic.Telnet,
			Packets: 4500,
			Bytes:   4500 * 40,
		})
	}
	return out
}

// The full scenario runtime — pair modulation, injection, a crash, a drain
// with a controller outage, governor shed, warm replan, and the data plane
// — must produce bit-identical reports at any worker count.
func TestRunScenarioWorkersDeterminism(t *testing.T) {
	// Injections only have a coordination unit to land in when the modeled
	// workload put matching traffic on their pair, so pick pairs that carry
	// telnet in the exact workload RunScenario will generate.
	topo := topology.Internet2()
	var telnetPairs [][2]int
	seen := map[[2]int]bool{}
	for _, s := range traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 600, Seed: 11}) {
		if s.Tuple.DstPort == 23 && !seen[[2]int{s.Src, s.Dst}] {
			seen[[2]int{s.Src, s.Dst}] = true
			telnetPairs = append(telnetPairs, [2]int{s.Src, s.Dst})
		}
	}
	if len(telnetPairs) < 2 {
		t.Fatalf("workload has %d telnet pairs, need 2", len(telnetPairs))
	}
	p1, p2 := telnetPairs[0], telnetPairs[1]
	driver := func() ScenarioDriver {
		return &scriptDriver{name: "scripted", step: func(env *ScenarioEnv) Stimulus {
			var st Stimulus
			switch env.Epoch {
			case 2:
				st.PairScale = make([]float64, len(env.Pairs))
				for k, p := range env.Pairs {
					st.PairScale[k] = 1
					if p[0] == 0 || p[1] == 0 {
						st.PairScale[k] = 4
					}
				}
				st.Inject = injectBurst(env.Epoch, 40, p1[0], p1[1])
			case 3:
				st.Faults = chaos.EpochFaults{DownNodes: []int{1}}
				st.Inject = injectBurst(env.Epoch, 25, p2[0], p2[1])
			case 4:
				st.Drains = []int{2}
				st.Faults = chaos.EpochFaults{ControllerDown: true}
			}
			return st
		}}
	}
	run := func(workers int) *ScenarioReport {
		rep, err := RunScenario(ScenarioConfig{
			Driver:   driver(),
			Topo:     topo,
			Sessions: 600, TrafficSeed: 11, Seed: 42,
			Epochs: 5, Redundancy: 2,
			Governor: true, Replan: true, WarmReplan: true,
			ReplanThreshold: 0.15, ReplanMaxIters: 4000,
			Retry:      RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1},
			StaleGrace: 2,
			DataPlane:  true,
			Probes:     400,
			Workers:    workers,
		})
		if err != nil {
			t.Fatalf("RunScenario(workers=%d): %v", workers, err)
		}
		return rep
	}
	r1 := run(1)
	r4 := run(4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("scenario reports differ across worker counts:\n  w1: %+v\n  w4: %+v", r1, r4)
	}
	if r1.TotalInjected != 65 {
		t.Fatalf("TotalInjected = %d, want 65", r1.TotalInjected)
	}
	if got := len(r1.Epochs); got != 5 {
		t.Fatalf("epochs recorded = %d, want 5", got)
	}
	if ep := r1.Epochs[2]; len(ep.DownNodes) != 1 || ep.DownNodes[0] != 1 {
		t.Fatalf("epoch 3 DownNodes = %v, want [1]", ep.DownNodes)
	}
	if ep := r1.Epochs[3]; len(ep.Drained) != 1 || ep.Drained[0] != 2 || !ep.CtrlDown {
		t.Fatalf("epoch 4 drained/ctrl = %v/%v, want [2]/true", ep.Drained, ep.CtrlDown)
	}
	if r1.Epochs[1].Alerts == 0 {
		t.Fatal("data plane saw no alerts in the injection epoch")
	}
}

// Drain vs crash semantics: a drained node keeps its manifest across the
// maintenance window and rejoins usable even if the controller is
// unreachable, while a crashed node loses its manifest and stays dark
// until it can re-fetch.
func TestRunScenarioDrainKeepsManifestCrashLosesIt(t *testing.T) {
	topo := topology.Internet2()
	n := topo.N()
	driver := &scriptDriver{name: "maint-vs-crash", step: func(env *ScenarioEnv) Stimulus {
		switch env.Epoch {
		case 2:
			return Stimulus{
				Faults: chaos.EpochFaults{DownNodes: []int{3}},
				Drains: []int{2},
			}
		case 3:
			// Both nodes come back, but the controller is down: only state
			// retained in memory can serve this epoch.
			return Stimulus{Faults: chaos.EpochFaults{ControllerDown: true}}
		}
		return Stimulus{}
	}}
	rep, err := RunScenario(ScenarioConfig{
		Driver: driver,
		Topo:   topo, Sessions: 400, TrafficSeed: 5, Seed: 9,
		Epochs: 4, Redundancy: 2,
		Retry:      RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1},
		StaleGrace: 2,
		Probes:     200,
	})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	ep1 := rep.Epochs[0]
	if ep1.SyncedAgents != n || ep1.DarkAgents != 0 {
		t.Fatalf("epoch 1: synced %d dark %d, want %d/0", ep1.SyncedAgents, ep1.DarkAgents, n)
	}
	ep2 := rep.Epochs[1]
	if !reflect.DeepEqual(ep2.DownNodes, []int{3}) || !reflect.DeepEqual(ep2.Drained, []int{2}) {
		t.Fatalf("epoch 2: down %v drained %v, want [3]/[2]", ep2.DownNodes, ep2.Drained)
	}
	// Epoch 3: nobody can fetch. The drained node still has last week's
	// manifest (stale but usable); the crashed node restarted empty and
	// goes dark; every other node is merely stale.
	ep3 := rep.Epochs[2]
	if ep3.DarkAgents != 1 {
		t.Fatalf("epoch 3: dark %d, want exactly the crashed node", ep3.DarkAgents)
	}
	if ep3.StaleAgents != n-1 {
		t.Fatalf("epoch 3: stale %d, want %d (all up nodes incl. the drained one)", ep3.StaleAgents, n-1)
	}
	if ep3.SyncedAgents != 0 {
		t.Fatalf("epoch 3: synced %d with the controller down", ep3.SyncedAgents)
	}
	// Epoch 4: the controller is back; everyone re-syncs, including the
	// crashed node.
	ep4 := rep.Epochs[3]
	if ep4.SyncedAgents != n || ep4.DarkAgents != 0 {
		t.Fatalf("epoch 4: synced %d dark %d, want %d/0", ep4.SyncedAgents, ep4.DarkAgents, n)
	}
}

// WeakRanges must reflect published state: full manifests at depth r
// everywhere before any shed, and segments sorted least-covered first.
func TestScenarioEnvWeakRanges(t *testing.T) {
	var got [][]WeakRange
	driver := &scriptDriver{name: "observer", step: func(env *ScenarioEnv) Stimulus {
		got = append(got, env.WeakRanges(0))
		return Stimulus{}
	}}
	rep, err := RunScenario(ScenarioConfig{
		Driver: driver,
		Topo:   topology.Internet2(), Sessions: 300, TrafficSeed: 3, Seed: 1,
		Epochs: 2, Redundancy: 2, Probes: 200,
	})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if rep.WorstCoverage < 1 {
		t.Fatalf("quiet run worst coverage %v, want 1", rep.WorstCoverage)
	}
	for e, wrs := range got {
		if len(wrs) == 0 {
			t.Fatalf("epoch %d: no weak ranges reported", e+1)
		}
		prev := -1
		for _, wr := range wrs {
			if wr.Depth < 2 {
				t.Fatalf("epoch %d: segment %+v below redundancy 2 with no shed and no faults", e+1, wr)
			}
			if wr.Depth < prev {
				t.Fatalf("epoch %d: weak ranges not sorted by depth", e+1)
			}
			prev = wr.Depth
			if wr.Range.Hi <= wr.Range.Lo {
				t.Fatalf("epoch %d: empty segment %+v", e+1, wr)
			}
		}
	}
}
