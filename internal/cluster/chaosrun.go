package cluster

import (
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// ChaosConfig parameterizes CoverageUnderChaos. The zero value selects a
// complete default scenario (Internet2, the standard modules, a gravity
// workload) so every knob is optional.
type ChaosConfig struct {
	// Topo is the monitored network (nil selects Internet2).
	Topo *topology.Topology
	// Modules are the deployed analysis modules (nil selects the standard
	// set minus the baseline pseudo-module).
	Modules []bro.ModuleSpec
	// Sessions sizes the generated workload (0 selects 4000);
	// TrafficSeed makes it reproducible (0 selects 7).
	Sessions    int
	TrafficSeed int64
	// Seed drives every chaos decision — connection faults, jitter, and
	// the generated fault schedule. Same seed, same report.
	Seed int64
	// Epochs is the run length (0 selects 8).
	Epochs int
	// Redundancy is the provisioned coverage level r (0 selects 1).
	Redundancy int
	// Faults is the per-connection fault mix on every agent's dials.
	Faults chaos.NetworkFaults
	// Schedule overrides the generated epoch fault schedule; when nil one
	// is drawn from NodeFailProb (0 selects 0.15), ControllerOutageProb
	// (0 selects 0.1), and MaxDown (0 = uncapped).
	Schedule             *chaos.Schedule
	NodeFailProb         float64
	ControllerOutageProb float64
	MaxDown              int
	// ReoptEvery re-stamps the plan as a new configuration generation
	// every k epochs, modeling the operations center's periodic
	// re-optimization (0 selects 3; negative disables).
	ReoptEvery int
	// StaleGrace is the agents' stale-manifest grace window in epochs
	// (0 selects 2; negative selects 0).
	StaleGrace int
	// Retry shapes the agents' fetch loops (zero value: 4 attempts,
	// 10ms..500ms backoff).
	Retry RetryPolicy
	// Agent sets agent timeouts (zero: 200ms dial, 300ms RPC — loopback
	// exchanges finish in microseconds, so these only bound injected
	// black holes).
	Agent control.AgentOptions
	// Deltas switches agent syncs to v2 delta subscriptions; Encoding
	// selects their response encoding. See Options for why both default
	// off: a delta sync draws one fault per attempt, the legacy pair two,
	// so the knobs select between distinct (but each deterministic)
	// seeded fault alignments.
	Deltas   bool
	Encoding control.Encoding
	// Probes is the coverage probe count per unit (0 selects 2000; use
	// 10000 to match core.CoverageUnderFailure bit for bit).
	Probes int
	// Workers sizes the worker pools (0 = GOMAXPROCS). Reports are
	// identical for any value.
	Workers int
	// Metrics, when non-nil, receives the full runtime metric surface.
	Metrics *obs.Registry
	// Trace, when non-nil, records the run's causal event log (see
	// Options.Trace); Watchdog, when non-nil, checks every epoch against
	// its SLO (see Options.Watchdog). Both are write-only.
	Trace    *trace.Tracer
	Watchdog *trace.Watchdog
	// Ledger, when non-nil, receives the run's tamper-evident audit chain
	// (see Options.Ledger). Write-only.
	Ledger *ledger.Ledger
	// Fleet/FleetHistory turn on the fleet telemetry plane (see
	// Options.Fleet). Write-only: reports are DeepEqual with or without.
	Fleet        *telemetry.Fleet
	FleetHistory *telemetry.History
}

// ChaosReport is a full chaos run: the solved deployment's parameters and
// one EpochReport per epoch. It contains only logical quantities, so runs
// with equal seeds compare DeepEqual.
type ChaosReport struct {
	Topology   string
	Nodes      int
	Sessions   int
	Redundancy int
	Seed       int64
	// Objective is the placement LP's optimum for the deployment.
	Objective float64
	Epochs    []EpochReport
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.Topo == nil {
		cfg.Topo = topology.Internet2()
	}
	if cfg.Modules == nil {
		cfg.Modules = bro.StandardModules()[1:]
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4000
	}
	if cfg.TrafficSeed == 0 {
		cfg.TrafficSeed = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 1
	}
	if cfg.NodeFailProb == 0 {
		cfg.NodeFailProb = 0.15
	}
	if cfg.ControllerOutageProb == 0 {
		cfg.ControllerOutageProb = 0.1
	}
	if cfg.ReoptEvery == 0 {
		cfg.ReoptEvery = 3
	}
	switch {
	case cfg.StaleGrace == 0:
		cfg.StaleGrace = 2
	case cfg.StaleGrace < 0:
		cfg.StaleGrace = 0
	}
	if cfg.Agent.DialTimeout <= 0 {
		cfg.Agent.DialTimeout = 200 * time.Millisecond
	}
	if cfg.Agent.RPCTimeout <= 0 {
		cfg.Agent.RPCTimeout = 300 * time.Millisecond
	}
	return cfg
}

// CoverageUnderChaos runs the full runtime-resilience experiment: solve
// the deployment, start the cluster, replay the fault schedule epoch by
// epoch, and report achieved coverage against the plan's static
// prediction throughout. This is the dynamic counterpart of the paper's
// Section 2.5 robustness argument — instead of evaluating residual
// coverage of a manifest set on paper, it measures what a live (if
// emulated) deployment delivers while nodes crash, the controller
// disappears, and the control network drops and black-holes connections.
func CoverageUnderChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	sessions := traffic.Generate(cfg.Topo, traffic.Gravity(cfg.Topo), traffic.GenConfig{
		Sessions: cfg.Sessions, Seed: cfg.TrafficSeed,
	})
	c, err := New(Options{
		Topo: cfg.Topo, Modules: cfg.Modules, Sessions: sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed, Faults: cfg.Faults,
		Retry: cfg.Retry, Agent: cfg.Agent, StaleGrace: cfg.StaleGrace,
		Deltas: cfg.Deltas, Encoding: cfg.Encoding,
		Workers: cfg.Workers, Probes: cfg.Probes, Metrics: cfg.Metrics,
		Trace: cfg.Trace, Watchdog: cfg.Watchdog, Ledger: cfg.Ledger,
		Fleet: cfg.Fleet, FleetHistory: cfg.FleetHistory,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	sched := cfg.Schedule
	if sched == nil {
		sched = chaos.BuildSchedule(chaos.ScheduleConfig{
			Epochs: cfg.Epochs, Nodes: cfg.Topo.N(),
			Seed:         parallel.SplitSeed(cfg.Seed, 2),
			NodeFailProb: cfg.NodeFailProb, MaxDown: cfg.MaxDown,
			ControllerOutageProb: cfg.ControllerOutageProb,
		})
	}

	rep := &ChaosReport{
		Topology: cfg.Topo.Name, Nodes: cfg.Topo.N(), Sessions: cfg.Sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed, Objective: c.Objective(),
	}
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.ReoptEvery > 0 && e > 0 && e%cfg.ReoptEvery == 0 {
			c.BumpEpoch()
		}
		var f chaos.EpochFaults
		if e < len(sched.Epochs) {
			f = sched.Epochs[e]
		}
		rep.Epochs = append(rep.Epochs, c.RunEpoch(f))
	}
	return rep, nil
}
