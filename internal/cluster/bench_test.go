package cluster

import (
	"testing"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// BenchmarkClusterConverge measures one full control-plane convergence
// round — a plan re-stamp followed by every agent re-fetching its
// manifest through a lossy network with retries — the recurring cost of
// the paper's periodic re-optimization cadence.
func BenchmarkClusterConverge(b *testing.B) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 800, Seed: 7})
	c, err := New(Options{
		Topo: topo, Modules: bro.StandardModules()[1:], Sessions: sessions,
		Seed:   41,
		Faults: chaos.NetworkFaults{DropProb: 0.2},
		Retry:  RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Agent:  control.AgentOptions{DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BumpEpoch()
		if synced := c.Converge(); synced != topo.N() {
			b.Fatalf("converged %d/%d agents", synced, topo.N())
		}
	}
}

// BenchmarkTraceOverhead measures a full fault-free epoch — publish,
// fetch phase, data phase, coverage audit — with the tracer off and on.
// The acceptance bar is <= 5% slowdown with tracing enabled; compare the
// off/on sub-benchmark lines.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tr *trace.Tracer) {
		topo := topology.Internet2()
		sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 800, Seed: 7})
		c, err := New(Options{
			Topo: topo, Modules: bro.StandardModules()[1:], Sessions: sessions,
			Seed: 41, Probes: 500, Trace: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.BumpEpoch()
			rep := c.RunEpoch(chaos.EpochFaults{})
			if rep.SyncedAgents != topo.N() {
				b.Fatalf("synced %d/%d agents", rep.SyncedAgents, topo.N())
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, trace.New(trace.Options{Seed: 41})) })
}
