package cluster

import (
	"testing"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// BenchmarkClusterConverge measures one full control-plane convergence
// round — a plan re-stamp followed by every agent re-fetching its
// manifest through a lossy network with retries — the recurring cost of
// the paper's periodic re-optimization cadence.
func BenchmarkClusterConverge(b *testing.B) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 800, Seed: 7})
	c, err := New(Options{
		Topo: topo, Modules: bro.StandardModules()[1:], Sessions: sessions,
		Seed:   41,
		Faults: chaos.NetworkFaults{DropProb: 0.2},
		Retry:  RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Agent:  control.AgentOptions{DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BumpEpoch()
		if synced := c.Converge(); synced != topo.N() {
			b.Fatalf("converged %d/%d agents", synced, topo.N())
		}
	}
}
