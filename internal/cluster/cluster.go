// Package cluster is an in-process multi-node runtime for the paper's
// deployment architecture: one control.Controller serving sampling
// manifests over real TCP, and one agent per monitoring node that fetches
// its manifest through a (possibly fault-injected) network and drives the
// bro emulation engine over the node's share of the traffic. Layered on
// top, CoverageUnderChaos replays a seeded fault schedule — node crashes,
// controller outages, lossy links — and audits the coverage the paper's
// Section 2.5 redundancy extension actually delivers at runtime, epoch by
// epoch, against the LP's static guarantee.
//
// Reports contain only logical quantities (epochs, counts, coverage
// fractions), never wall-clock measurements, and every nondeterministic
// input is derived from one seed (see internal/chaos), so two runs with
// the same seed produce DeepEqual reports even though real sockets,
// timeouts, and goroutine scheduling are involved.
package cluster

import (
	"fmt"
	"net"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// Options configures a Cluster. Topo, Modules, and Sessions are required;
// zero values elsewhere select the documented defaults.
type Options struct {
	Topo     *topology.Topology
	Modules  []bro.ModuleSpec
	Sessions []traffic.Session
	// Caps are per-node capacities (nil selects uniform 1e9/1e12, the
	// unconstrained setting the emulation uses).
	Caps []core.NodeResources
	// Redundancy is the Section 2.5 coverage level r (0 selects 1). A
	// plan solved with redundancy r keeps full coverage under any r-1
	// concurrent node failures.
	Redundancy int
	// HashKey keys the deployment's packet-selection hash (0 selects 7).
	HashKey uint32
	// Seed drives every chaos decision: per-agent connection faults and
	// backoff jitter all derive from it via seed splitting.
	Seed int64
	// Faults is the per-connection fault mix injected into every agent's
	// dials (zero = clean network).
	Faults chaos.NetworkFaults
	// Retry shapes the agents' fetch loops.
	Retry RetryPolicy
	// Agent sets the agents' timeouts/metrics; its Dial, if any, becomes
	// the real dial behind the fault injector.
	Agent control.AgentOptions
	// Deltas switches agent syncs to protocol-v2 delta subscriptions (one
	// exchange per sync instead of the legacy epoch-probe-then-fetch
	// pair); Encoding selects the response encoding for them. Both default
	// off/JSON: a delta sync consumes one fault-stream draw per attempt
	// where the legacy pair consumes two, so flipping the knob changes
	// which faults a seeded chaos schedule lands on (reports remain
	// deterministic for a given knob setting — see the cross-encoding
	// determinism tests).
	Deltas   bool
	Encoding control.Encoding
	// StaleGrace is how many consecutive failed-sync epochs an agent may
	// keep enforcing its last manifest before going dark.
	StaleGrace int
	// Workers sizes the runtime's worker pools (0 = GOMAXPROCS, 1 =
	// serial). Reports are identical for any value.
	Workers int
	// Probes is the per-unit probe count for coverage audits (0 selects
	// 2000; use 10000 to match core.CoverageUnderFailure exactly).
	Probes int
	// CaptureBasis asks the initial placement solve to export its simplex
	// basis (core.Plan.Basis), so later replans can warm-start from it —
	// required by the overload runtime's drift-triggered replanning.
	CaptureBasis bool
	// Metrics, when non-nil, receives runtime observability (fetch
	// attempt/retry/failure/timeout counters, staleness and coverage
	// gauges, per-agent assigned width) in addition to the controller,
	// agent, and engine metrics of the wrapped layers. Write-only:
	// reports are identical with or without it.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the causal event log: epoch spans,
	// per-agent fetch/crash/staleness events, engine runs, governor
	// decisions, and coverage audits, with trace context propagated over
	// the controller wire. Write-only like Metrics: reports are identical
	// with or without it, and byte-identical across Workers values.
	Trace *trace.Tracer
	// Watchdog, when non-nil, evaluates every epoch against its SLO and
	// records the breached rules in the epoch report (and, when Trace is
	// live, as slo_violation events). Nil disables SLO checking.
	Watchdog *trace.Watchdog
	// Ledger, when non-nil, receives the tamper-evident audit chain: the
	// controller commits every publish (full canonical manifest set plus
	// shed state) and the runtime commits a coverage verdict per epoch.
	// Write-only like Metrics and Trace: reports are DeepEqual with or
	// without it, and same-seed chains are byte-identical across Workers
	// values and across processes.
	Ledger *ledger.Ledger
	// Fleet, when non-nil, turns on the fleet telemetry plane: each
	// agent's end-of-epoch NodeStats ride its next wire exchange into the
	// controller, and the runtime closes one FleetSnapshot per epoch.
	// Stats piggyback on exchanges the agents were already making, so the
	// chaos fault streams see an identical dial sequence — reports are
	// DeepEqual with the plane on or off, and snapshots (wall-clock field
	// aside) are identical across Workers values. FleetHistory, when also
	// non-nil, retains the per-epoch snapshots in a fixed-capacity ring.
	Fleet        *telemetry.Fleet
	FleetHistory *telemetry.History
}

// EpochReport is one epoch's outcome: the control-plane weather, what the
// agents managed to fetch, what the engines analyzed, and the achieved
// coverage versus the plan's static prediction. All fields are logical,
// so same-seed runs agree exactly.
type EpochReport struct {
	// Epoch counts chaos epochs from 1; ControllerEpoch is the
	// configuration generation the controller served during it.
	Epoch           int
	ControllerEpoch uint64
	// ControllerDown and DownNodes echo the epoch's injected faults.
	ControllerDown bool
	DownNodes      []int
	// AgentEpochs[j] is the manifest generation agent j enforced (0 =
	// none: crashed, never synced, or dark past grace).
	AgentEpochs []uint64
	// SyncedAgents confirmed their manifest against the controller this
	// epoch; StaleAgents are enforcing an unconfirmed one within grace;
	// DarkAgents are up but analyzing nothing (no manifest, or stale
	// beyond grace).
	SyncedAgents, StaleAgents, DarkAgents int
	// Fetch-loop totals across agents.
	FetchAttempts, FetchFailures, FetchTimeouts int
	// Data-plane outcome: alert total and the busiest engine's CPU cost.
	Alerts int
	MaxCPU float64
	// Achieved coverage over the usable agents' wire manifests, and the
	// plan's static prediction for the same failure set (both from
	// core.ProbeCoverage at the same probe count, so when every
	// surviving agent holds a current manifest the two match exactly).
	WorstCoverage, AvgCoverage   float64
	PredictedWorst, PredictedAvg float64
	// SLOViolations are the watchdog rules this epoch breached, rendered
	// "rule=value (bound b)" in fixed rule order; empty without a
	// configured watchdog. Watchdog verdicts are a pure function of the
	// report's other fields, so they too are seed-deterministic.
	SLOViolations []string
}

// Cluster is a running deployment: controller, gate, and agents.
type Cluster struct {
	opts   Options
	inst   *core.Instance
	plan   *core.Plan
	ctrl   *control.Controller
	gate   *chaos.Gate
	agents []*NodeAgent
	epoch  int
	// epochSpan is the current epoch's root trace span (zero when
	// untraced); agents derive their per-epoch child spans from it.
	epochSpan trace.Span

	fetchAttemptC, fetchRetryC, fetchFailureC, fetchTimeoutC, epochC *obs.Counter
	staleG, darkG, covWorstG, covAvgG                                *obs.Gauge
}

// New solves the placement for the given scenario, starts a controller on
// a loopback port behind a chaos gate, installs the plan (epoch 1), and
// builds one fault-injected agent per node with its coordinated-deployment
// traffic share. Call Close when done.
func New(opts Options) (*Cluster, error) {
	for _, m := range opts.Modules {
		if m.Name == "baseline" {
			return nil, fmt.Errorf("cluster: baseline pseudo-module cannot be deployed")
		}
	}
	if opts.Redundancy <= 0 {
		opts.Redundancy = 1
	}
	if opts.HashKey == 0 {
		opts.HashKey = 7
	}
	if opts.Probes <= 0 {
		opts.Probes = 2000
	}
	n := opts.Topo.N()
	caps := opts.Caps
	if caps == nil {
		caps = core.UniformCaps(n, 1e9, 1e12)
	}
	inst, err := core.BuildInstance(opts.Topo, bro.Classes(opts.Modules), opts.Sessions, caps)
	if err != nil {
		return nil, err
	}
	plan, err := core.SolveOpts(inst, core.SolveOptions{
		Redundancy: opts.Redundancy, Metrics: opts.Metrics, CaptureBasis: opts.CaptureBasis,
	})
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	gate := chaos.NewGate(ln)
	ctrl, err := control.NewControllerOpts("", control.ControllerOptions{
		HashKey: opts.HashKey, Metrics: opts.Metrics, Listener: gate,
		Ledger: opts.Ledger, Fleet: opts.Fleet,
	})
	if err != nil {
		return nil, err
	}
	// The initial publish runs under the setup trace (epoch 0), so the
	// first manifests agents fetch already carry wire context.
	publishTraced(opts.Trace, opts.Ledger, ctrl, 0, plan)

	c := &Cluster{
		opts: opts, inst: inst, plan: plan, ctrl: ctrl, gate: gate,

		fetchAttemptC: opts.Metrics.Counter("cluster.fetch_attempts"),
		fetchRetryC:   opts.Metrics.Counter("cluster.fetch_retries"),
		fetchFailureC: opts.Metrics.Counter("cluster.fetch_failures"),
		fetchTimeoutC: opts.Metrics.Counter("cluster.fetch_timeouts"),
		epochC:        opts.Metrics.Counter("cluster.epochs"),
		staleG:        opts.Metrics.Gauge("cluster.stale_agents"),
		darkG:         opts.Metrics.Gauge("cluster.dark_agents"),
		covWorstG:     opts.Metrics.Gauge("cluster.coverage_worst"),
		covAvgG:       opts.Metrics.Gauge("cluster.coverage_avg"),
	}

	// Per-agent fault streams and jitter seeds split off the one run seed;
	// stream ids are node ids, so an agent's fault history is independent
	// of every other agent's activity.
	injector := chaos.NewInjector(parallel.SplitSeed(opts.Seed, 1), opts.Faults)
	paths := opts.Topo.PathMatrix()
	for j := 0; j < n; j++ {
		agentOpts := opts.Agent
		agentOpts.Metrics = opts.Metrics
		dialer := &chaos.Dialer{Stream: injector.Stream(j), Next: chaos.DialFunc(opts.Agent.Dial)}
		agentOpts.Dial = dialer.Dial
		c.agents = append(c.agents, newNodeAgent(
			j, ctrl.Addr(), agentOpts,
			control.SubscribeOptions{Deltas: opts.Deltas, Encoding: opts.Encoding},
			opts.Retry, opts.StaleGrace,
			parallel.SplitSeed(opts.Seed, int64(1000+j)), nodeTrace(paths, opts.Sessions, j),
		))
	}
	if opts.Fleet != nil {
		// Bootstrap reports: each agent announces itself on its first
		// exchange, before any end-of-epoch collection has run, so the
		// first snapshot classifies synced nodes healthy rather than dark.
		for _, a := range c.agents {
			a.lastStats = telemetry.NodeStats{Node: a.node}
			s := a.lastStats
			a.agent.SetStats(&s)
		}
	}
	return c, nil
}

// nodeTrace extracts node j's coordinated-deployment traffic share:
// sessions originating, terminating, or transiting at j (mirroring
// bro.Emulation's per-node traces).
func nodeTrace(paths [][][]int, sessions []traffic.Session, j int) []traffic.Session {
	var out []traffic.Session
	for _, s := range sessions {
		for _, n := range paths[s.Src][s.Dst] {
			if n == j {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// publishTraced installs a plan as a new configuration generation,
// recording a publish event on the controller component of the given
// epoch's trace and stamping the publish span on served manifests — the
// wire half of the epoch stitch. With a nil tracer it degrades to a plain
// UpdatePlan. The ledger (nil-safe) is stamped with the runtime epoch
// first, so the publish record the controller commits carries it.
func publishTraced(t *trace.Tracer, l *ledger.Ledger, ctrl *control.Controller, epoch int, plan *core.Plan) {
	l.SetRun(epoch)
	pub := t.Epoch(epoch).Child("controller", -1)
	if pub.Live() {
		pub.Event(trace.EvPublish, trace.F64("objective", plan.Objective),
			trace.Uint64("ctrl_epoch", ctrl.Epoch()+1))
		ctrl.SetTrace(&control.WireTrace{Trace: pub.TraceHex(), Span: pub.SpanHex()})
	}
	ctrl.UpdatePlan(plan)
}

// Close shuts the controller (and its gate/listener) down.
func (c *Cluster) Close() error { return c.ctrl.Close() }

// Plan returns the solved deployment plan.
func (c *Cluster) Plan() *core.Plan { return c.plan }

// Objective returns the LP optimum for the deployment.
func (c *Cluster) Objective() float64 { return c.plan.Objective }

// Agents returns the cluster's node agents, indexed by node id.
func (c *Cluster) Agents() []*NodeAgent { return c.agents }

// BumpEpoch re-stamps the current plan as a new configuration generation —
// the operations center's periodic re-optimization round (the workload is
// unchanged here, so the plan content is too, but agents must re-fetch).
// The publish is recorded under the trace of the epoch about to run, so
// the fetches it triggers stitch to it.
func (c *Cluster) BumpEpoch() {
	publishTraced(c.opts.Trace, c.opts.Ledger, c.ctrl, c.epoch+1, c.plan)
}

// Converge runs one fault-free fetch phase (all agents up, gate forced
// open) and reports how many agents hold a current manifest afterwards —
// the cluster-formation step, and the benchmark's unit of work.
func (c *Cluster) Converge() int {
	c.gate.SetOpen(true)
	c.fetchPhase()
	synced := 0
	for _, a := range c.agents {
		if a.tally.synced {
			synced++
		}
	}
	return synced
}

// fetchPhase runs every up agent's retry loop concurrently. Each agent
// mutates only its own state and draws only its own fault stream, so the
// phase's outcome is schedule-independent.
func (c *Cluster) fetchPhase() {
	n := len(c.agents)
	parallel.ForEach(parallel.Resolve(c.opts.Workers, n), n, func(j int) {
		a := c.agents[j]
		a.tally = epochTally{}
		// The agent's per-epoch span is a pure function of the epoch root
		// and the node id, so deriving it inside the worker is
		// deterministic; each agent emits only into its own component.
		a.span = c.epochSpan.Child("agent", j)
		if a.down {
			return
		}
		a.syncWithRetry()
	})
}

// RunEpoch advances the cluster one chaos epoch: applies the epoch's
// faults (crashing agents lose their manifests; a down controller drops
// every exchange), runs the fetch phase, drives each usable agent's
// engine over its traffic share, and audits achieved coverage against the
// plan's static prediction for the same failure set.
func (c *Cluster) RunEpoch(f chaos.EpochFaults) EpochReport {
	c.epoch++
	c.opts.Ledger.SetRun(c.epoch)
	c.epochC.Add(1)
	c.epochSpan = c.opts.Trace.Epoch(c.epoch)
	c.epochSpan.Event(trace.EvEpochStart,
		trace.Int("ctrl_down", boolToInt(f.ControllerDown)), trace.Int("down", len(f.DownNodes)))
	c.gate.SetOpen(!f.ControllerDown)
	for j, a := range c.agents {
		wasDown := a.down
		a.down = f.Down(j)
		if a.down && !wasDown {
			// Crash: the process dies with its in-memory manifest.
			a.restart()
			a.staleEpochs = 0
			c.epochSpan.Child("agent", j).Event(trace.EvCrashRestart)
		}
	}

	rep := EpochReport{
		Epoch:           c.epoch,
		ControllerEpoch: c.ctrl.Epoch(),
		ControllerDown:  f.ControllerDown,
		DownNodes:       append([]int(nil), f.DownNodes...),
		AgentEpochs:     make([]uint64, len(c.agents)),
	}

	c.fetchPhase()
	for j, a := range c.agents {
		rep.FetchAttempts += a.tally.attempts
		if a.tally.attempts > 1 {
			c.fetchRetryC.Add(int64(a.tally.attempts - 1))
		}
		rep.FetchFailures += a.tally.failures
		rep.FetchTimeouts += a.tally.timeouts
		if a.down {
			continue
		}
		switch {
		case a.tally.synced:
			rep.SyncedAgents++
		case a.Usable():
			rep.StaleAgents++
			a.span.Event(trace.EvStaleGrace, trace.Int("stale", a.staleEpochs))
		default:
			rep.DarkAgents++
			a.span.Event(trace.EvWentDark, trace.Int("stale", a.staleEpochs))
		}
		if a.Usable() {
			d := a.Decider()
			rep.AgentEpochs[j] = d.Epoch()
			c.opts.Metrics.Set(fmt.Sprintf("cluster.agent_width.%d", j), d.AssignedWidth())
		} else {
			c.opts.Metrics.Set(fmt.Sprintf("cluster.agent_width.%d", j), 0)
		}
	}
	c.fetchAttemptC.Add(int64(rep.FetchAttempts))
	c.fetchFailureC.Add(int64(rep.FetchFailures))
	c.fetchTimeoutC.Add(int64(rep.FetchTimeouts))
	c.staleG.Set(float64(rep.StaleAgents))
	c.darkG.Set(float64(rep.DarkAgents))

	c.dataPhase(&rep)
	c.audit(&rep, f)
	c.checkSLO(&rep, trace.EpochStats{
		WorstCoverage: rep.WorstCoverage, AvgCoverage: rep.AvgCoverage,
		FetchFailures: rep.FetchFailures, DarkAgents: rep.DarkAgents,
	})
	c.commitEpochLedger(&rep)
	c.sampleFleet()
	return rep
}

// checkSLO runs the configured watchdog over one epoch's stats, records
// the breached rules in the report, and triggers the post-mortem dump on
// the first breach.
func (c *Cluster) checkSLO(rep *EpochReport, s trace.EpochStats) {
	for _, v := range c.opts.Watchdog.Check(c.epochSpan, s) {
		rep.SLOViolations = append(rep.SLOViolations, v.String())
	}
	if len(rep.SLOViolations) > 0 {
		c.opts.Trace.DumpOnce("slo_violation")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// dataPhase runs each usable agent's engine over its trace, exactly as a
// deployed node enforces its fetched wire manifest: the engine sees only
// the control.Decider, never the planner's objects.
func (c *Cluster) dataPhase(rep *EpochReport) {
	n := len(c.agents)
	nodeWorkers := parallel.Resolve(c.opts.Workers, n)
	engineWorkers := 1
	if nodeWorkers == 1 {
		engineWorkers = c.opts.Workers
	}
	reports := parallel.Map(nodeWorkers, n, func(j int) bro.Report {
		a := c.agents[j]
		if !a.Usable() {
			return bro.Report{Node: j}
		}
		return bro.Run(bro.Config{
			Mode:    bro.ModeCoordEvent,
			Modules: c.opts.Modules,
			Decider: a.Decider(),
			Node:    j,
			Hasher:  hashing.Hasher{Key: c.opts.HashKey},
			Workers: engineWorkers,
			Metrics: c.opts.Metrics,
			Trace:   a.span,
		}, a.trace)
	})
	for j, r := range reports {
		c.agents[j].lastEngine = r
		rep.Alerts += r.Alerts
		if r.CPUUnits > rep.MaxCPU {
			rep.MaxCPU = r.CPUUnits
		}
	}
}

// audit measures the epoch's achieved coverage (what the usable agents'
// wire manifests actually cover) and the plan's static prediction for the
// same down set (core.CoverageUnderFailure's predicate), using the same
// probe grid for both so the comparison is exact, not approximate.
func (c *Cluster) audit(rep *EpochReport, f chaos.EpochFaults) {
	units := c.inst.Units
	rep.WorstCoverage, rep.AvgCoverage = core.ProbeCoverage(len(units), c.opts.Probes, func(ui int, x float64) bool {
		u := units[ui]
		for _, node := range u.Nodes {
			a := c.agents[node]
			if !a.Usable() {
				continue
			}
			if a.Decider().CoversUnit(u.Class, u.Key, x) {
				return true
			}
		}
		return false
	})
	rep.PredictedWorst, rep.PredictedAvg = core.ProbeCoverage(len(units), c.opts.Probes, func(ui int, x float64) bool {
		for _, node := range units[ui].Nodes {
			if f.Down(node) {
				continue
			}
			if c.plan.Manifests[node].Ranges[ui].Contains(x) {
				return true
			}
		}
		return false
	})
	c.covWorstG.Set(rep.WorstCoverage)
	c.covAvgG.Set(rep.AvgCoverage)
	c.epochSpan.Event(trace.EvCoverage,
		trace.F64("worst", rep.WorstCoverage), trace.F64("avg", rep.AvgCoverage),
		trace.F64("pred_worst", rep.PredictedWorst))
	if rep.WorstCoverage < rep.PredictedWorst-1e-9 {
		// Achieved coverage fell below the static prediction for the same
		// failure set — the chaos-audit violation the flight recorder
		// exists for.
		c.epochSpan.Event(trace.EvCoverageViolation,
			trace.F64("worst", rep.WorstCoverage), trace.F64("pred_worst", rep.PredictedWorst))
		c.opts.Trace.DumpOnce("coverage_violation")
	}
}
