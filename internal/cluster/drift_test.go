package cluster

import (
	"math"
	"testing"
)

func TestDriftDetectorWarmupAndThreshold(t *testing.T) {
	d := NewDriftDetector([]float64{100, 200}, 1, 0.2)
	if d.Drifted() {
		t.Fatal("detector drifted before any observation")
	}
	if e := d.Observe([]float64{110, 200}); e > 0.1+1e-12 {
		t.Fatalf("10%% shift reported rel err %v", e)
	}
	if d.Drifted() {
		t.Fatal("drifted below threshold")
	}
	if e := d.Observe([]float64{150, 200}); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("50%% shift with alpha=1 reported rel err %v", e)
	}
	if !d.Drifted() {
		t.Fatal("50% shift past a 20% threshold did not drift")
	}
}

// A low alpha absorbs a one-epoch blip that raw comparison would flag —
// the debounce that keeps blips the governor's job, not the solver's.
func TestDriftDetectorSmoothsBlips(t *testing.T) {
	d := NewDriftDetector([]float64{100}, 0.2, 0.2)
	d.Observe([]float64{100})
	if e := d.Observe([]float64{150}); e > 0.2 {
		t.Fatalf("single 50%% blip drifted through alpha=0.2 EWMA (err %v)", e)
	}
	// Sustained shift eventually crosses.
	for i := 0; i < 10; i++ {
		d.Observe([]float64{150})
	}
	if !d.Drifted() {
		t.Fatalf("sustained 50%% shift never drifted (err %v)", d.MaxRelErr())
	}
}

func TestDriftDetectorRebase(t *testing.T) {
	d := NewDriftDetector([]float64{100}, 1, 0.2)
	d.Observe([]float64{160})
	if !d.Drifted() {
		t.Fatal("60% shift did not drift")
	}
	d.Rebase(d.Smoothed())
	if d.Drifted() {
		t.Fatalf("rebased detector still drifted (err %v)", d.MaxRelErr())
	}
	if got := d.Smoothed(); got[0] != 160 {
		t.Fatalf("Smoothed lost state across Rebase: %v", got)
	}
}

// Near-zero reference volumes use absolute error, so an empty unit
// gaining a trickle of traffic does not divide-by-zero into a replan.
func TestDriftDetectorEmptyUnitGuard(t *testing.T) {
	d := NewDriftDetector([]float64{0, 100}, 1, 0.2)
	if e := d.Observe([]float64{0.1, 100}); e > 0.1+1e-12 {
		t.Fatalf("trickle on an empty unit reported rel err %v", e)
	}
	if d.Drifted() {
		t.Fatal("trickle on empty unit triggered a replan")
	}
}

// Regression: rebasing onto an all-zero volume epoch (e.g. a total outage)
// must not leave the detector perpetually drifted on sub-packet EWMA noise.
// Before the both-sides-idle guard in relErr, Rebase([0,...]) followed by
// near-zero observations reported the full residual as absolute error.
func TestDriftDetectorRebaseAllZeroEpoch(t *testing.T) {
	d := NewDriftDetector([]float64{100, 200}, 0.5, 0.2)
	d.Observe([]float64{100, 200})
	// Outage: nothing observed for long enough that the smoothed volumes
	// decay below one packet; the operator replans against the dead matrix
	// and rebases onto all-zero volumes.
	for i := 0; i < 10; i++ {
		d.Observe([]float64{0, 0})
	}
	d.Rebase([]float64{0, 0})
	// Sub-packet trickles against a zero base are noise, not drift. (Before
	// the guard, 0.6 smoothed pkts vs base 0 reported 0.6 absolute error —
	// triple the 0.2 threshold — and replanned every epoch of the outage.)
	for i := 0; i < 5; i++ {
		d.Observe([]float64{0.4, 0.6})
	}
	if d.Drifted() {
		t.Fatalf("sub-packet noise on an all-zero base drifted (err %v)", d.MaxRelErr())
	}
	if e := d.MaxRelErr(); e != 0 {
		t.Fatalf("idle-on-both-sides units should contribute 0 rel err, got %v", e)
	}
	// Real traffic returning (>= 1 pkt smoothed) against the zero base must
	// still register as drift — the guard is only for sub-packet residue.
	for i := 0; i < 8; i++ {
		d.Observe([]float64{50, 80})
	}
	if !d.Drifted() {
		t.Fatalf("traffic returning after an all-zero rebase never drifted (err %v)", d.MaxRelErr())
	}
}

// Rebase itself recomputes maxErr: rebasing onto the smoothed all-zero state
// must clear a previously-drifted verdict immediately, not one epoch later.
func TestDriftDetectorRebaseClearsImmediately(t *testing.T) {
	d := NewDriftDetector([]float64{100}, 1, 0.2)
	d.Observe([]float64{0})
	if !d.Drifted() {
		t.Fatal("total volume collapse did not drift")
	}
	d.Rebase(d.Smoothed())
	if d.Drifted() || d.MaxRelErr() != 0 {
		t.Fatalf("rebase onto smoothed zeros left err %v", d.MaxRelErr())
	}
}
