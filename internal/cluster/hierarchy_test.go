package cluster

import (
	"reflect"
	"testing"
	"time"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// hierPlan solves a small deployment plan for hierarchy tests.
func hierPlan(t *testing.T, topo *topology.Topology, seed int64) (*core.Plan, []traffic.Session) {
	t.Helper()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 1200, Seed: seed})
	classes := []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "scan", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
	}
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan, sessions
}

func newTestHierarchy(t *testing.T, plan *core.Plan, topo *topology.Topology, enc control.Encoding) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyOptions{
		Topo: topo, Plan: plan, Regions: 3, HashKey: 7,
		Deltas: true, Encoding: enc,
		Agent: control.AgentOptions{DialTimeout: 2 * time.Second, RPCTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestHierarchyConvergesViaDeltas: first round full-fetches everywhere,
// steady-state rounds sync via deltas, and each node's hierarchical view
// agrees verdict-for-verdict with a direct full fetch from the global
// coordinator.
func TestHierarchyConvergesViaDeltas(t *testing.T) {
	topo := topology.Internet2()
	plan, sessions := hierPlan(t, topo, 1)
	plan2, _ := hierPlan(t, topo, 2)
	h := newTestHierarchy(t, plan, topo, control.EncodingBinary)
	n := topo.N()

	rep := h.SyncAll()
	if rep.Failed != 0 || rep.Changed != n || rep.Fulls != n {
		t.Fatalf("formation round: %+v, want %d full installs", rep, n)
	}
	if !h.Converged() {
		t.Fatal("cluster did not converge after formation")
	}
	fullBytes := rep.Bytes

	// Plan change: every agent advances via a region delta.
	h.Publish(plan2)
	rep = h.SyncAll()
	if rep.Failed != 0 || rep.Changed != n || rep.Deltas != n || rep.Fallbacks != 0 {
		t.Fatalf("delta round: %+v, want %d delta installs", rep, n)
	}
	if !h.Converged() {
		t.Fatal("cluster did not converge after delta round")
	}
	if rep.Bytes >= fullBytes {
		t.Fatalf("delta round cost %d bytes, full formation cost %d — deltas must be cheaper",
			rep.Bytes, fullBytes)
	}

	// Steady-state re-stamp (identical plan content): the delta exchange
	// degenerates to near-probe cost, ≤ 10% of full-manifest bytes.
	h.Publish(plan2)
	rep = h.SyncAll()
	if rep.Failed != 0 || rep.Changed != n || rep.Deltas != n {
		t.Fatalf("steady-state round: %+v", rep)
	}
	if rep.Bytes*10 > fullBytes {
		t.Fatalf("steady-state delta bytes %d exceed 10%% of full bytes %d", rep.Bytes, fullBytes)
	}

	// Verdict equality against a direct global full fetch, per node.
	for j := 0; j < n; j++ {
		ref := control.NewAgent(h.global.Addr(), j)
		if _, err := ref.Subscribe(control.SubscribeOptions{Mode: control.ModeOnce}); err != nil {
			t.Fatal(err)
		}
		hd, rd := h.Agents()[j].Decider(), ref.Decider()
		for i := range sessions[:200] {
			hm, hok := hd.DecideMask(&sessions[i])
			rm, rok := rd.DecideMask(&sessions[i])
			if hm != rm || hok != rok {
				t.Fatalf("node %d session %d: hierarchy %#x/%v vs full fetch %#x/%v",
					j, i, hm, hok, rm, rok)
			}
		}
	}
}

// TestHierarchyRegionFailover: with a region controller down, its members
// fall back to global full fetches and still converge; when the region
// returns, they resume delta syncs against it.
func TestHierarchyRegionFailover(t *testing.T) {
	topo := topology.Internet2()
	plan, _ := hierPlan(t, topo, 1)
	h, err := NewHierarchy(HierarchyOptions{
		Topo: topo, Plan: plan, Regions: 3, HashKey: 7, Deltas: true,
		// Fast timeouts: the dead region's dials must fail quickly.
		Agent: control.AgentOptions{DialTimeout: 200 * time.Millisecond, RPCTimeout: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	n := topo.N()

	if rep := h.SyncAll(); rep.Failed != 0 || rep.Changed != n {
		t.Fatalf("formation round: %+v", rep)
	}

	down := 0
	members := len(h.Regions()[down])
	h.SetRegionDown(down, true)
	h.Publish(plan)
	rep := h.SyncAll()
	if rep.Failed != 0 {
		t.Fatalf("failover round failed agents: %+v", rep)
	}
	if rep.Fallbacks != members {
		t.Fatalf("failover round: %d fallbacks, want %d (region %d members)", rep.Fallbacks, members, down)
	}
	if rep.Changed != n {
		t.Fatalf("failover round: %d changed, want %d", rep.Changed, n)
	}
	if !h.Converged() {
		t.Fatal("cluster did not converge through region failover")
	}

	// Region restored: everyone back on the delta path.
	h.SetRegionDown(down, false)
	h.Publish(plan)
	rep = h.SyncAll()
	if rep.Failed != 0 || rep.Fallbacks != 0 || rep.Changed != n {
		t.Fatalf("recovery round: %+v", rep)
	}
	if !h.Converged() {
		t.Fatal("cluster did not converge after region recovery")
	}
}

// TestHierarchySyncDeterministic: the logical outcome of a scripted
// publish/failover schedule is identical across runs, worker counts, and
// wire encodings — bytes may differ between encodings (that is the
// point), but every logical field must match.
func TestHierarchySyncDeterministic(t *testing.T) {
	topo := topology.Internet2()
	plan, _ := hierPlan(t, topo, 1)
	plan2, _ := hierPlan(t, topo, 2)

	type logical struct {
		Changed, Deltas, Fulls, Fallbacks, Failed int
	}
	run := func(enc control.Encoding, workers int) ([]logical, []int) {
		h, err := NewHierarchy(HierarchyOptions{
			Topo: topo, Plan: plan, Regions: 3, HashKey: 7,
			Deltas: true, Encoding: enc, Workers: workers,
			Agent: control.AgentOptions{DialTimeout: 200 * time.Millisecond, RPCTimeout: 300 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		var log []logical
		var bytes []int
		step := func() {
			rep := h.SyncAll()
			log = append(log, logical{rep.Changed, rep.Deltas, rep.Fulls, rep.Fallbacks, rep.Failed})
			bytes = append(bytes, rep.Bytes)
		}
		step()
		h.Publish(plan2)
		step()
		h.SetRegionDown(1, true)
		h.Publish(plan)
		step()
		h.SetRegionDown(1, false)
		h.Publish(plan2)
		step()
		return log, bytes
	}

	jsonLog, jsonBytes := run(control.EncodingJSON, 0)
	jsonLog2, jsonBytes2 := run(control.EncodingJSON, 1)
	binLog, _ := run(control.EncodingBinary, 0)

	if !reflect.DeepEqual(jsonLog, jsonLog2) {
		t.Fatalf("same-encoding runs diverge logically:\n%v\n%v", jsonLog, jsonLog2)
	}
	if !reflect.DeepEqual(jsonBytes, jsonBytes2) {
		t.Fatalf("same-encoding runs diverge in wire bytes:\n%v\n%v", jsonBytes, jsonBytes2)
	}
	if !reflect.DeepEqual(jsonLog, binLog) {
		t.Fatalf("encodings diverge logically:\njson: %v\nbin:  %v", jsonLog, binLog)
	}
}

// TestChaosDeterministicWithDeltas extends the headline same-seed
// determinism guarantee to the delta protocol: with agents syncing via
// v2 delta subscriptions — in both encodings — two same-seed chaos runs
// still produce DeepEqual reports.
func TestChaosDeterministicWithDeltas(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  control.Encoding
	}{
		{"json", control.EncodingJSON},
		{"bin", control.EncodingBinary},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(workers int) ChaosConfig {
				cfg := ChaosConfig{
					Sessions: 400, Epochs: 3, Seed: 31,
					Faults:       chaos.NetworkFaults{DropProb: 0.25, BlackholeProb: 0.1},
					NodeFailProb: 0.2, ControllerOutageProb: 0.25, MaxDown: 2,
					Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, JitterFrac: 0.3},
					Agent:  control.AgentOptions{DialTimeout: 100 * time.Millisecond, RPCTimeout: 100 * time.Millisecond},
					Probes: 300, Workers: workers,
					Deltas: true, Encoding: tc.enc,
				}
				return cfg
			}
			r1, err := CoverageUnderChaos(mk(0))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := CoverageUnderChaos(mk(1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("same-seed delta chaos runs diverge:\nrun1: %+v\nrun2: %+v", r1, r2)
			}
			sawFault := false
			for _, e := range r1.Epochs {
				if e.ControllerDown || len(e.DownNodes) > 0 || e.FetchFailures > 0 {
					sawFault = true
				}
			}
			if !sawFault {
				t.Fatal("chaos run exercised no faults; determinism claim is vacuous")
			}
		})
	}
}
