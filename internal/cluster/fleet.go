package cluster

// The fleet telemetry wiring: how per-node NodeStats get collected, ride
// the wire, and become per-epoch FleetSnapshots.
//
// Timing: stats are collected at the END of epoch e — after the fetch,
// data, and governor phases — so they describe settled post-sync state (a
// node that synced reports lag 0, because every publish precedes the
// fetch phase and the controller epoch is stable through the epoch end).
// The collected report is installed on the agent (control.Agent.SetStats)
// and DELIVERED during epoch e+1's first wire exchange; the bootstrap
// report set by New covers epoch 1. The controller ingests a report
// before writing its response, so by the time fetchPhase joins, every
// successful exchange's report is in the Fleet — EndEpoch then closes the
// round deterministically.
//
// Non-interference: stats ride only exchanges the agent was already
// making (chaos faults are drawn per dial, so the dial sequence — and
// with it every report field — is identical with the plane on or off),
// and nothing ever reads fleet state to make a decision. A node that
// cannot reach the controller delivers no report and goes dark at the
// controller: the fleet view is deliberately the controller's wire truth.

import "nwdeploy/internal/telemetry"

// collectStats builds one node's end-of-epoch self-report from the epoch
// loop's settled state.
func (c *Cluster) collectStats(a *NodeAgent) telemetry.NodeStats {
	s := telemetry.NodeStats{
		Node:          a.node,
		StaleEpochs:   a.staleEpochs,
		FetchErrors:   a.tally.failures,
		FetchTimeouts: a.tally.timeouts,
		FloorLimited:  a.lastFloor,
		Sessions:      a.lastEngine.Observed,
		Alerts:        a.lastEngine.Alerts,
		Conns:         a.lastEngine.Conns,
	}
	if a.tally.attempts > 1 {
		s.FetchRetries = a.tally.attempts - 1
	}
	if a.Usable() {
		d := a.Decider()
		s.Epoch = d.Epoch()
		s.ShedWidth = d.ShedWidth()
		if ce := c.ctrl.Epoch(); ce > s.Epoch {
			s.Lag = ce - s.Epoch
		}
	}
	return s
}

// sampleFleet closes the epoch's telemetry round: collect every up
// agent's stats, install them for the next epoch's piggyback, fold the
// snapshot, and retain it in the history ring. Called at the end of
// RunEpoch, each RunOverload epoch, and each RunScenario epoch; a no-op
// without a configured Fleet.
func (c *Cluster) sampleFleet() {
	if c.opts.Fleet == nil {
		return
	}
	for _, a := range c.agents {
		if a.down {
			// A crashed agent's control client was rebuilt by restart()
			// with no stats attached; a drained one keeps its pre-drain
			// report. Either way there is nothing fresh to collect — the
			// node was not running this epoch.
			continue
		}
		s := c.collectStats(a)
		a.lastStats = s
		a.agent.SetStats(&s)
	}
	snap := c.opts.Fleet.EndEpoch(c.epoch, c.ctrl.Epoch())
	c.opts.FleetHistory.Add(snap)
}

// fleetDrainFarewell is the maintenance workflow's graceful goodbye: at
// the moment a node enters a planned drain, the runtime reports its last
// collected stats with the Draining flag set, directly into the Fleet
// (the node itself goes silent on the wire for the drain window). The
// flag is what lets the health state machine classify the silence as
// stale — planned — rather than dark. Crashes send no farewell.
func (c *Cluster) fleetDrainFarewell(a *NodeAgent) {
	if c.opts.Fleet == nil {
		return
	}
	s := a.lastStats
	s.Draining = true
	c.opts.Fleet.Report(s)
}
