package cluster

import (
	"testing"
	"time"
)

// Boundary behavior of the backoff growth loop: the delay grows by
// Multiplier per retry until it reaches MaxDelay, then pins there.
func TestRetryBackoffCapReached(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Multiplier:  2,
	}
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1: base
		20 * time.Millisecond,  // attempt 2
		40 * time.Millisecond,  // attempt 3
		80 * time.Millisecond,  // attempt 4
		160 * time.Millisecond, // attempt 5
		320 * time.Millisecond, // attempt 6
		500 * time.Millisecond, // attempt 7: 640 clamps to the cap
		500 * time.Millisecond, // attempt 8: pinned
	}
	for i, w := range want {
		if got := p.Backoff(i+1, 7, 0); got != w {
			t.Fatalf("Backoff(attempt=%d) = %v, want %v", i+1, got, w)
		}
	}
	// Far past the cap the delay must stay exactly pinned, not overflow.
	if got := p.Backoff(1000, 7, 0); got != p.MaxDelay {
		t.Fatalf("Backoff(1000) = %v, want pinned %v", got, p.MaxDelay)
	}
}

// A base delay already above the cap clamps on the very first retry —
// the post-loop clamp, not just the in-loop one.
func TestRetryBackoffBaseAboveCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: 100 * time.Millisecond, Multiplier: 2, MaxAttempts: 4}
	if got := p.Backoff(1, 1, 0); got != 100*time.Millisecond {
		t.Fatalf("base above cap: Backoff(1) = %v, want 100ms", got)
	}
}

// Attempt 0 (and negative attempts) never enter the growth loop: the
// delay is the base delay, same as the first retry. The fetch loop is
// 1-based, but the zero-attempt edge must stay well-defined for callers
// that compute "wait before first try".
func TestRetryBackoffZeroAttempt(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Multiplier: 2, MaxAttempts: 4}
	if got := p.Backoff(0, 3, 0); got != p.BaseDelay {
		t.Fatalf("Backoff(0) = %v, want base %v", got, p.BaseDelay)
	}
	if got, want := p.Backoff(-5, 3, 0), p.Backoff(1, 3, 0); got != want {
		t.Fatalf("Backoff(-5) = %v, want Backoff(1) = %v", got, want)
	}
}

// The jitter stream is a pure function of (seed, draw): identical inputs
// replay identical delays; advancing the draw counter or changing the
// seed decorrelates without ever pushing the delay below the unjittered
// value or past (1 + JitterFrac) of it.
func TestRetryBackoffJitterDeterministic(t *testing.T) {
	p := RetryPolicy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   500 * time.Millisecond,
		Multiplier: 2,
		JitterFrac: 0.5,
	}
	base := RetryPolicy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay, Multiplier: p.Multiplier}
	for attempt := 1; attempt <= 8; attempt++ {
		raw := base.Backoff(attempt, 0, 0)
		for draw := int64(0); draw < 4; draw++ {
			a := p.Backoff(attempt, 42, draw)
			b := p.Backoff(attempt, 42, draw)
			if a != b {
				t.Fatalf("same (seed,draw) replayed different delays: %v vs %v", a, b)
			}
			if a < raw || float64(a) > float64(raw)*(1+p.JitterFrac)+1 {
				t.Fatalf("jittered delay %v outside [%v, %v*1.5]", a, raw, raw)
			}
		}
	}
	// Distinct draws from one seed must not all collide (a frozen stream
	// would re-correlate agents that failed together).
	distinct := map[time.Duration]bool{}
	for draw := int64(1); draw <= 8; draw++ {
		distinct[p.Backoff(3, 42, draw)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 jitter draws produced %d distinct delays", len(distinct))
	}
	// Distinct seeds decorrelate the same draw index across agents.
	if p.Backoff(3, 1, 5) == p.Backoff(3, 2, 5) && p.Backoff(4, 1, 5) == p.Backoff(4, 2, 5) {
		t.Fatal("two seeds produced identical jitter streams")
	}
}

// The zero value selects documented defaults; explicit fields survive.
func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 4 || p.BaseDelay != 10*time.Millisecond ||
		p.MaxDelay != 500*time.Millisecond || p.Multiplier != 2 || p.JitterFrac != 0 {
		t.Fatalf("zero-value defaults wrong: %+v", p)
	}
	q := RetryPolicy{MaxAttempts: 9, BaseDelay: time.Millisecond, MaxDelay: time.Second, Multiplier: 3, JitterFrac: 0.1}.withDefaults()
	if q.MaxAttempts != 9 || q.BaseDelay != time.Millisecond || q.MaxDelay != time.Second || q.Multiplier != 3 {
		t.Fatalf("explicit fields overwritten: %+v", q)
	}
}
