package cluster

import (
	"errors"
	"fmt"
	"sort"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/governor"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// The scenario runtime: a generalization of RunOverload where an external,
// seeded driver decides each epoch's environment — traffic modulation,
// injected sessions, crashes, planned drains, controller outages — instead
// of one hardwired burst series. Drivers see the published control-plane
// state of the previous epoch (manifests minus shed), which is exactly the
// information the paper's Section 3.5 adaptive adversary is granted: the
// defender's decisions are public once published, never before.

// Stimulus is one epoch's environment, produced by a ScenarioDriver before
// the epoch runs. The zero value is a quiet epoch: plan-mean traffic,
// nothing injected, everything up.
type Stimulus struct {
	// PairScale multiplies each traffic pair's volume this epoch (indexed
	// like ScenarioEnv.Pairs; nil means 1 everywhere).
	PairScale []float64
	// Inject adds sessions on top of the modeled workload: attack traffic
	// the planner never saw. Injected sessions contribute to the observed
	// per-unit volumes (drift detection, governor projections), are routed
	// to every node on their Src->Dst path for the data plane, and are
	// audited for evasion — but never mutate the planning instance.
	Inject []traffic.Session
	// Faults carries the epoch's crashes and controller outage, with
	// RunEpoch's crash semantics: a crashed node loses its manifest.
	Faults chaos.EpochFaults
	// Drains lists nodes under planned maintenance, ascending. A drained
	// node is down for the epoch but keeps its in-memory manifest, so it
	// rejoins without a re-fetch when the window ends. A node both crashed
	// and drained counts as crashed.
	Drains []int
}

// WeakRange is one segment of a unit's hash space together with its
// published coverage depth (how many live-manifest copies cover it after
// shed subtraction). Depth 0 segments are uncovered; the lowest-depth
// segments are where an adaptive adversary steers unwanted traffic.
type WeakRange struct {
	Unit  int
	Class int
	Key   [2]int
	Depth int
	Range hashing.Range
}

// ScenarioEnv is the driver-visible state at the top of an epoch. Traffic
// shape fields are static per run; the manifest view tracks the previous
// epoch's publishes.
type ScenarioEnv struct {
	// Epoch is 1-based; Epochs is the run length; Nodes the fleet size.
	Epoch, Epochs, Nodes int
	// Pairs and PairMeans describe the modeled traffic matrix: PairScale
	// in a Stimulus is indexed like Pairs, and PairMeans are the gravity
	// mean volumes (items) the factors multiply.
	Pairs     [][2]int
	PairMeans []float64

	inst   *core.Instance
	plan   *core.Plan
	hasher hashing.Hasher
	shed   []map[int]hashing.RangeSet // per node, as published last epoch
}

// Hash returns the hash point the deployment's packet-selection hash
// assigns the tuple under the class — the same value every node computes,
// which is what lets an adversary place traffic inside a chosen range.
func (env *ScenarioEnv) Hash(class int, t hashing.FiveTuple) float64 {
	return env.inst.Classes[class].HashOf(env.hasher, t)
}

// Units exposes the instance's coordination units (read-only by
// convention): the key map an adversary needs to turn a weak range into
// concrete sessions.
func (env *ScenarioEnv) Units() []core.CoordUnit { return env.inst.Units }

// WeakRanges computes the adversary's target list: every unit's hash space
// segmented at published-manifest boundaries, each segment annotated with
// its coverage depth after subtracting published shed, sorted
// least-covered first (then unit, then position) and truncated to max.
// This is a pure function of published state — it never looks at which
// nodes are down, because the paper's adversary reads manifests, not
// liveness.
func (env *ScenarioEnv) WeakRanges(max int) []WeakRange {
	var out []WeakRange
	for ui, u := range env.inst.Units {
		// Effective (manifest minus shed) ranges per assigned node.
		var eff []hashing.RangeSet
		for _, node := range u.Nodes {
			rs := env.plan.Manifests[node].Ranges[ui]
			if node < len(env.shed) && env.shed[node] != nil {
				if cut, ok := env.shed[node][ui]; ok {
					rs = append(hashing.RangeSet(nil), rs...).Subtract(cut)
				}
			}
			eff = append(eff, rs)
		}
		// Segment [0,1) at every boundary and depth-count each midpoint.
		cuts := []float64{0, 1}
		for _, rs := range eff {
			for _, r := range rs {
				cuts = append(cuts, r.Lo, r.Hi)
			}
		}
		sort.Float64s(cuts)
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if hi-lo <= 1e-12 || lo >= 1 || hi <= 0 {
				continue
			}
			mid := lo + (hi-lo)/2
			depth := 0
			for _, rs := range eff {
				if rs.Contains(mid) {
					depth++
				}
			}
			out = append(out, WeakRange{
				Unit: ui, Class: u.Class, Key: u.Key, Depth: depth,
				Range: hashing.Range{Lo: lo, Hi: hi},
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Depth != out[b].Depth {
			return out[a].Depth < out[b].Depth
		}
		if out[a].Unit != out[b].Unit {
			return out[a].Unit < out[b].Unit
		}
		return out[a].Range.Lo < out[b].Range.Lo
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// ScenarioDriver produces each epoch's stimulus. Drivers must be pure
// functions of (their own seeded state, the env): same seed, same stimuli,
// at any worker count — the scenario half of the determinism contract.
type ScenarioDriver interface {
	Name() string
	Step(env *ScenarioEnv) Stimulus
}

// ScenarioConfig parameterizes RunScenario: the overload runtime's knobs
// plus the driver and the chaos-style network/agent options the fault
// scenarios need.
type ScenarioConfig struct {
	// Driver decides each epoch's environment. Required.
	Driver ScenarioDriver
	// Topo is the monitored network (nil selects Internet2).
	Topo *topology.Topology
	// Modules are the deployed analysis modules (nil selects the
	// PerPath-scoped standard modules, as in OverloadConfig).
	Modules []bro.ModuleSpec
	// Sessions sizes the generated workload (0 selects 4000); TrafficSeed
	// makes it reproducible (0 selects 7).
	Sessions    int
	TrafficSeed int64
	// Seed drives every runtime random decision (agent jitter, fault
	// streams); drivers carry their own seeds.
	Seed int64
	// Epochs is the run length (0 selects 8).
	Epochs int
	// Redundancy is the provisioned coverage level r (0 selects 2).
	Redundancy int
	// Governor enables per-node load governing; GovernorCfg tunes it.
	Governor    bool
	GovernorCfg governor.Config
	// Replan/WarmReplan/ReplanThreshold/EWMAAlpha/ReplanMaxIters: the
	// drift-triggered replan loop, as in OverloadConfig.
	Replan          bool
	WarmReplan      bool
	ReplanThreshold float64
	EWMAAlpha       float64
	ReplanMaxIters  int
	// Faults is the per-connection fault mix on agent dials (zero = clean
	// network); Retry/Agent/StaleGrace shape the fetch loops as in
	// Options.
	Faults     chaos.NetworkFaults
	Retry      RetryPolicy
	Agent      control.AgentOptions
	StaleGrace int
	// DataPlane runs each usable agent's engine over its traffic share
	// (base share plus routed injections) every epoch. Off by default:
	// the control-plane audit does not need it, and flood scenarios are
	// the ones that want conntrack/SYNFlood exercised for real.
	DataPlane bool
	// Probes is the coverage probe count per unit (0 selects 2000).
	Probes int
	// Workers sizes the worker pools (0 = GOMAXPROCS). Reports are
	// identical for any value.
	Workers int
	// Metrics/Trace/Watchdog/Ledger: write-only observability, as in
	// OverloadConfig.
	Metrics  *obs.Registry
	Trace    *trace.Tracer
	Watchdog *trace.Watchdog
	Ledger   *ledger.Ledger
	// Fleet/FleetHistory turn on the fleet telemetry plane (see
	// Options.Fleet). The scenario runtime additionally reports a drain
	// farewell at each drain transition, so a draining node classifies
	// stale — not dark — through its maintenance window. Write-only.
	Fleet        *telemetry.Fleet
	FleetHistory *telemetry.History
}

func (cfg ScenarioConfig) withDefaults() ScenarioConfig {
	if cfg.Topo == nil {
		cfg.Topo = topology.Internet2()
	}
	if cfg.Modules == nil {
		for _, m := range bro.StandardModules()[1:] {
			if m.Scope == core.PerPath {
				cfg.Modules = append(cfg.Modules, m)
			}
		}
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4000
	}
	if cfg.TrafficSeed == 0 {
		cfg.TrafficSeed = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 2
	}
	if cfg.ReplanThreshold == 0 {
		cfg.ReplanThreshold = 0.2
	}
	return cfg
}

// ScenarioEpoch is one epoch's outcome under a scenario.
type ScenarioEpoch struct {
	Epoch int
	// Environment echo: which nodes were crashed/drained, controller
	// state, how many sessions the driver injected.
	DownNodes []int
	Drained   []int
	CtrlDown  bool
	Injected  int
	// Drift/replan outcome, as in OverloadEpoch.
	MaxRelErr    float64
	Drifted      bool
	Replanned    bool
	ReplanWarm   bool
	ReplanIters  int
	ReplanMissed bool
	// Governor outcome.
	OverBudget  int
	Unsatisfied int
	ShedWidth   float64
	// Control-plane weather.
	SyncedAgents, StaleAgents, DarkAgents int
	// Data-plane outcome (zero when DataPlane is off).
	Alerts int
	MaxCPU float64
	// Evasion audit over the injected sessions: Caught had at least one
	// usable analyst covering their hash point for some matching class;
	// Evaded slipped through every published defense.
	InjectedCaught, InjectedEvaded int
	// Achieved wire coverage vs the published expectation (manifests of
	// live nodes minus their shed). Worst below expected is a breach.
	WorstCoverage, AvgCoverage float64
	ExpectedWorst              float64
	Breach                     bool
	// SLOViolations are the watchdog rules this epoch breached.
	SLOViolations []string
}

// ScenarioReport is a full scenario run.
type ScenarioReport struct {
	Scenario   string
	Topology   string
	Nodes      int
	Sessions   int
	Redundancy int
	Seed       int64
	Governor   bool
	Replan     bool
	Objective  float64
	Epochs     []ScenarioEpoch
	// Aggregates across epochs.
	WorstCoverage    float64 // min of epoch worsts
	AvgCoverage      float64 // mean of epoch averages
	FloorHeld        bool    // no epoch's wire coverage fell below expected
	Breaches         int
	Replans          int
	MissedReplans    int
	TotalReplanIters int
	MaxOverBudget    int
	TotalShedWidth   float64
	// AssignedWidth is the plan's total manifest width (the shed
	// denominator: TotalShedWidth / (AssignedWidth * epochs) is the run's
	// shed fraction).
	AssignedWidth float64
	TotalInjected int
	TotalEvaded   int
	TotalAlerts   int
	SLOViolations int
}

// ShedFraction is the run-average fraction of assigned hash width shed.
func (r *ScenarioReport) ShedFraction() float64 {
	if r.AssignedWidth <= 0 || len(r.Epochs) == 0 {
		return 0
	}
	return r.TotalShedWidth / (r.AssignedWidth * float64(len(r.Epochs)))
}

// EvasionRate is the fraction of injected sessions that evaded analysis.
func (r *ScenarioReport) EvasionRate() float64 {
	if r.TotalInjected == 0 {
		return 0
	}
	return float64(r.TotalEvaded) / float64(r.TotalInjected)
}

// RunScenario drives a live cluster through the driver's epochs: apply the
// stimulus (faults, drains, gate), fold modulated and injected volumes
// into the drift detector and the governors, replan on sustained drift,
// push manifests and shed through the normal epoch protocol, optionally
// run the data plane over base-plus-injected traffic, and audit both the
// wire coverage against the published expectation and the injected
// sessions for evasion. Same config, same report, at any worker count.
func RunScenario(cfg ScenarioConfig) (*ScenarioReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Driver == nil {
		return nil, fmt.Errorf("cluster: scenario: nil driver")
	}
	sessions := traffic.Generate(cfg.Topo, traffic.Gravity(cfg.Topo), traffic.GenConfig{
		Sessions: cfg.Sessions, Seed: cfg.TrafficSeed,
	})
	c, err := New(Options{
		Topo: cfg.Topo, Modules: cfg.Modules, Sessions: sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed,
		Faults: cfg.Faults, Retry: cfg.Retry, Agent: cfg.Agent, StaleGrace: cfg.StaleGrace,
		Workers: cfg.Workers, Probes: cfg.Probes, Metrics: cfg.Metrics,
		Trace: cfg.Trace, Watchdog: cfg.Watchdog, Ledger: cfg.Ledger,
		Fleet: cfg.Fleet, FleetHistory: cfg.FleetHistory,
		CaptureBasis: cfg.Replan && cfg.WarmReplan,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	probes := c.opts.Probes
	hasher := hashing.Hasher{Key: c.opts.HashKey}
	paths := cfg.Topo.PathMatrix()
	pv := traffic.Volumes(cfg.Topo, traffic.Gravity(cfg.Topo), 0)
	scaler := newUnitScales(c.inst, pv, nil)

	orig := c.inst
	origPkts := make([]float64, len(orig.Units))
	origItems := make([]float64, len(orig.Units))
	for ui, u := range orig.Units {
		origPkts[ui] = u.Pkts
		origItems[ui] = u.Items
	}
	detector := NewDriftDetector(origPkts, cfg.EWMAAlpha, cfg.ReplanThreshold)

	gcfg := cfg.GovernorCfg
	if gcfg.Metrics == nil {
		gcfg.Metrics = cfg.Metrics
	}
	govs := make([]*governor.Governor, cfg.Topo.N())
	buildGovernors := func() error {
		for j := range govs {
			g, err := governor.New(c.plan, j, hasher, gcfg)
			if err != nil {
				return err
			}
			govs[j] = g
		}
		return nil
	}
	if err := buildGovernors(); err != nil {
		return nil, err
	}
	lastBasis := c.plan.Basis
	tol := cfg.GovernorCfg.Tolerance
	if tol == 0 {
		tol = 0.1
	}

	rep := &ScenarioReport{
		Scenario: cfg.Driver.Name(),
		Topology: cfg.Topo.Name, Nodes: cfg.Topo.N(), Sessions: cfg.Sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed,
		Governor: cfg.Governor, Replan: cfg.Replan,
		Objective: c.plan.Objective, WorstCoverage: 1, FloorHeld: true,
	}
	assignedWidth := func() float64 {
		// Ranges is a map; walk units in index order so the float sum is
		// reproducible.
		var w float64
		for _, m := range c.plan.Manifests {
			for ui := range c.inst.Units {
				w += m.Ranges[ui].Width()
			}
		}
		return w
	}
	rep.AssignedWidth = assignedWidth()

	// lastShed is the published shed state drivers (and the expectation
	// audit) see: what the governors pushed at the end of the previous
	// epoch. Empty before the first governor phase.
	lastShed := make([]map[int]hashing.RangeSet, cfg.Topo.N())

	for e := 0; e < cfg.Epochs; e++ {
		ep := ScenarioEpoch{Epoch: e + 1}
		c.epoch = e + 1
		cfg.Ledger.SetRun(c.epoch)
		c.epochSpan = cfg.Trace.Epoch(ep.Epoch)
		ctrlSpan := c.epochSpan.Child("controller", -1)

		// The driver observes last epoch's published state and commits to
		// this epoch's environment before any of it runs — the Section 3.5
		// information order.
		env := &ScenarioEnv{
			Epoch: ep.Epoch, Epochs: cfg.Epochs, Nodes: cfg.Topo.N(),
			Pairs: pv.Pairs, PairMeans: pv.Items,
			inst: c.inst, plan: c.plan, hasher: hasher, shed: lastShed,
		}
		st := cfg.Driver.Step(env)
		if st.PairScale != nil && len(st.PairScale) != len(pv.Pairs) {
			return nil, fmt.Errorf("cluster: scenario %q: %d pair scales for %d pairs",
				cfg.Driver.Name(), len(st.PairScale), len(pv.Pairs))
		}
		ep.CtrlDown = st.Faults.ControllerDown
		ep.Injected = len(st.Inject)
		c.epochSpan.Event(trace.EvEpochStart,
			trace.Int("ctrl_down", boolToInt(ep.CtrlDown)),
			trace.Int("down", len(st.Faults.DownNodes)), trace.Int("drains", len(st.Drains)))
		if ep.Injected > 0 {
			c.epochSpan.Event(trace.EvInject, trace.Int("count", ep.Injected))
		}

		// Apply the epoch's faults. Crashes lose the manifest; drains keep
		// it. A node both crashed and drained counts as crashed.
		c.gate.SetOpen(!st.Faults.ControllerDown)
		for j, a := range c.agents {
			wasDown := a.down
			crashed := st.Faults.Down(j)
			drained := !crashed && containsInt(st.Drains, j)
			a.down = crashed || drained
			if crashed {
				ep.DownNodes = append(ep.DownNodes, j)
				if !wasDown {
					a.restart()
					a.staleEpochs = 0
					c.epochSpan.Child("agent", j).Event(trace.EvCrashRestart)
				}
			} else if drained {
				ep.Drained = append(ep.Drained, j)
				if !wasDown {
					c.epochSpan.Child("agent", j).Event(trace.EvDrain)
					c.fleetDrainFarewell(a)
				}
			}
		}

		// Offered volumes: pair modulation over the original workload, plus
		// the injected sessions' contributions to every matching class.
		sc := scaler.factors(st.PairScale)
		obsPkts := make([]float64, len(origPkts))
		obsItems := make([]float64, len(origItems))
		for ui := range obsPkts {
			obsPkts[ui] = origPkts[ui] * sc[ui]
			obsItems[ui] = origItems[ui] * sc[ui]
		}
		for _, s := range st.Inject {
			for ci := range c.inst.Classes {
				if !c.inst.Classes[ci].Matches(s) {
					continue
				}
				if ui, ok := c.inst.UnitFor(ci, s); ok {
					obsPkts[ui] += float64(s.Packets)
				}
			}
		}

		// Drift detection and (optionally) the deadline-bounded replan,
		// identical to the overload runtime.
		ep.MaxRelErr = detector.Observe(obsPkts)
		ep.Drifted = detector.Drifted()
		c.epochSpan.Event(trace.EvDrift,
			trace.F64("rel_err", ep.MaxRelErr), trace.Int("drifted", boolToInt(ep.Drifted)))
		if cfg.Replan && ep.Drifted {
			smPkts := detector.Smoothed()
			smItems := make([]float64, len(smPkts))
			for ui := range smItems {
				if origPkts[ui] > 0 {
					smItems[ui] = origItems[ui] * smPkts[ui] / origPkts[ui]
				} else {
					smItems[ui] = origItems[ui]
				}
			}
			inst2, err := c.inst.WithVolumes(smPkts, smItems)
			if err != nil {
				return nil, err
			}
			sopts := core.SolveOptions{
				Redundancy: cfg.Redundancy, MaxIters: cfg.ReplanMaxIters,
				Metrics: cfg.Metrics, CaptureBasis: true,
			}
			if cfg.WarmReplan && lastBasis != nil {
				sopts.WarmBasis = lastBasis
			}
			plan2, err := core.SolveOpts(inst2, sopts)
			switch {
			case err == nil:
				c.plan, c.inst = plan2, inst2
				publishTraced(cfg.Trace, cfg.Ledger, c.ctrl, ep.Epoch, plan2)
				lastBasis = plan2.Basis
				detector.Rebase(smPkts)
				if err := buildGovernors(); err != nil {
					return nil, err
				}
				rep.AssignedWidth = assignedWidth()
				ep.Replanned = true
				ep.ReplanWarm = sopts.WarmBasis != nil
				ep.ReplanIters = plan2.SolverIters
				rep.Replans++
				rep.TotalReplanIters += plan2.SolverIters
				cfg.Metrics.Add("scenario.replans", 1)
				if ep.ReplanWarm {
					c.epochSpan.Event(trace.EvReplanWarm, trace.Int("iters", ep.ReplanIters))
				} else {
					c.epochSpan.Event(trace.EvReplanCold, trace.Int("iters", ep.ReplanIters))
				}
			case errors.Is(err, lp.ErrIterLimit):
				ep.ReplanMissed = true
				rep.MissedReplans++
				cfg.Metrics.Add("scenario.replan_misses", 1)
				c.epochSpan.Event(trace.EvDeadlineMiss, trace.Int("max_iters", cfg.ReplanMaxIters))
				cfg.Trace.DumpOnce("deadline_miss")
			default:
				return nil, fmt.Errorf("cluster: scenario replan: %w", err)
			}
		}

		// Governor phase against the current plan's volumes.
		scVsPlan := make([]float64, len(obsPkts))
		for ui := range scVsPlan {
			if p := c.inst.Units[ui].Pkts; p > 0 {
				scVsPlan[ui] = obsPkts[ui] / p
			} else {
				scVsPlan[ui] = 1
			}
		}
		if ctrlSpan.Live() {
			c.ctrl.SetTrace(&control.WireTrace{Trace: ctrlSpan.TraceHex(), Span: ctrlSpan.SpanHex()})
		}
		var attests []governor.Attestation
		for j, g := range govs {
			g.AttachSpan(c.epochSpan.Child("governor", j))
			grep, err := g.PlanEpoch(scVsPlan)
			if err != nil {
				return nil, err
			}
			c.agents[j].lastFloor = cfg.Governor && !grep.Satisfied
			if cfg.Governor {
				if cfg.Ledger != nil {
					attests = append(attests, g.Attest(grep))
				}
				ep.ShedWidth += grep.ShedWidth
				if !grep.Satisfied {
					ep.Unsatisfied++
					cfg.Trace.DumpOnce("floor_breach")
				}
				wa := control.ShedFromRanges(c.plan, g.ShedRanges())
				if len(wa) > 0 {
					ctrlSpan.Event(trace.EvShedPublish,
						trace.Int("node", j), trace.F64("width", grep.ShedWidth))
				}
				c.ctrl.PublishShed(j, wa)
				lastShed[j] = g.ShedRanges()
				if grep.CPUAfter > grep.BudgetCPU*(1+tol)+1e-9 {
					ep.OverBudget++
				}
			} else {
				lastShed[j] = nil
				if grep.ProjectedCPU > grep.BudgetCPU*(1+tol)+1e-9 {
					ep.OverBudget++
				}
			}
		}
		if ep.OverBudget > rep.MaxOverBudget {
			rep.MaxOverBudget = ep.OverBudget
		}
		rep.TotalShedWidth += ep.ShedWidth
		cfg.Metrics.Set("scenario.shed_width", ep.ShedWidth)

		// Fetch phase through the (possibly gated, possibly faulty) wire.
		c.fetchPhase()
		for _, a := range c.agents {
			if a.down {
				continue
			}
			switch {
			case a.tally.synced:
				ep.SyncedAgents++
			case a.Usable():
				ep.StaleAgents++
				a.span.Event(trace.EvStaleGrace, trace.Int("stale", a.staleEpochs))
			default:
				ep.DarkAgents++
				a.span.Event(trace.EvWentDark, trace.Int("stale", a.staleEpochs))
			}
		}

		// Optional data plane over base share plus routed injections.
		if cfg.DataPlane {
			c.scenarioDataPhase(&ep, st.Inject, paths)
		}

		// Evasion audit: each injected session is caught when some usable
		// agent's wire manifest covers its hash point for a matching class
		// and the covering node has not shed it.
		for _, s := range st.Inject {
			caught := false
			for ci := range c.inst.Classes {
				if !c.inst.Classes[ci].Matches(s) {
					continue
				}
				ui, ok := c.inst.UnitFor(ci, s)
				if !ok {
					continue
				}
				x := c.inst.Classes[ci].HashOf(hasher, s.Tuple)
				u := c.inst.Units[ui]
				for _, node := range u.Nodes {
					a := c.agents[node]
					if !a.Usable() || !a.Decider().CoversUnit(u.Class, u.Key, x) {
						continue
					}
					if cfg.Governor && govs[node] != nil && govs[node].Covers(ui, x) {
						continue
					}
					caught = true
					break
				}
				if caught {
					break
				}
			}
			if caught {
				ep.InjectedCaught++
			} else {
				ep.InjectedEvaded++
			}
		}
		rep.TotalInjected += ep.Injected
		rep.TotalEvaded += ep.InjectedEvaded

		// Coverage audit: what the wire delivers vs what the published
		// state promises for the epoch's up set. The expectation subtracts
		// both downed nodes and their published shed; anything below it
		// means manifests and reality disagree — the breach the flight
		// recorder exists for.
		units := c.inst.Units
		ep.WorstCoverage, ep.AvgCoverage = core.ProbeCoverage(len(units), probes, func(ui int, x float64) bool {
			u := units[ui]
			for _, node := range u.Nodes {
				a := c.agents[node]
				if !a.Usable() || !a.Decider().CoversUnit(u.Class, u.Key, x) {
					continue
				}
				if cfg.Governor && govs[node] != nil && govs[node].Covers(ui, x) {
					continue
				}
				return true
			}
			return false
		})
		ep.ExpectedWorst, _ = core.ProbeCoverage(len(units), probes, func(ui int, x float64) bool {
			for _, node := range units[ui].Nodes {
				if c.agents[node].down {
					continue
				}
				if !c.plan.Manifests[node].Ranges[ui].Contains(x) {
					continue
				}
				if cfg.Governor && govs[node] != nil && govs[node].Covers(ui, x) {
					continue
				}
				return true
			}
			return false
		})
		c.epochSpan.Event(trace.EvCoverage,
			trace.F64("worst", ep.WorstCoverage), trace.F64("avg", ep.AvgCoverage),
			trace.F64("expected_worst", ep.ExpectedWorst))
		if ep.WorstCoverage < ep.ExpectedWorst-1e-9 {
			ep.Breach = true
			rep.Breaches++
			rep.FloorHeld = false
			c.epochSpan.Event(trace.EvCoverageViolation,
				trace.F64("worst", ep.WorstCoverage), trace.F64("expected", ep.ExpectedWorst))
			cfg.Trace.DumpOnce("coverage_violation")
		}

		for _, v := range cfg.Watchdog.Check(c.epochSpan, trace.EpochStats{
			WorstCoverage: ep.WorstCoverage, AvgCoverage: ep.AvgCoverage,
			ShedWidth: ep.ShedWidth, ReplanIters: ep.ReplanIters,
			DarkAgents: ep.DarkAgents, DeadlineMiss: ep.ReplanMissed,
		}) {
			ep.SLOViolations = append(ep.SLOViolations, v.String())
		}
		if len(ep.SLOViolations) > 0 {
			rep.SLOViolations += len(ep.SLOViolations)
			cfg.Trace.DumpOnce("slo_violation")
		}
		commitScenarioLedger(cfg.Ledger, c, &ep, attests)
		c.sampleFleet()

		if ep.WorstCoverage < rep.WorstCoverage {
			rep.WorstCoverage = ep.WorstCoverage
		}
		rep.AvgCoverage += ep.AvgCoverage
		rep.TotalAlerts += ep.Alerts
		rep.Epochs = append(rep.Epochs, ep)
	}
	rep.AvgCoverage /= float64(len(rep.Epochs))
	return rep, nil
}

// scenarioDataPhase drives each usable agent's engine over its base trace
// plus the epoch's injected sessions routed along their Src->Dst paths.
// Injection order is preserved per node, so the combined trace — and with
// it the engine report — is a pure function of the stimulus.
func (c *Cluster) scenarioDataPhase(ep *ScenarioEpoch, inject []traffic.Session, paths [][][]int) {
	n := len(c.agents)
	routed := make([][]traffic.Session, n)
	for _, s := range inject {
		for _, node := range paths[s.Src][s.Dst] {
			routed[node] = append(routed[node], s)
		}
	}
	nodeWorkers := parallel.Resolve(c.opts.Workers, n)
	engineWorkers := 1
	if nodeWorkers == 1 {
		engineWorkers = c.opts.Workers
	}
	reports := parallel.Map(nodeWorkers, n, func(j int) bro.Report {
		a := c.agents[j]
		if !a.Usable() {
			return bro.Report{Node: j}
		}
		tr := a.trace
		if len(routed[j]) > 0 {
			tr = make([]traffic.Session, 0, len(a.trace)+len(routed[j]))
			tr = append(tr, a.trace...)
			tr = append(tr, routed[j]...)
		}
		return bro.Run(bro.Config{
			Mode:    bro.ModeCoordEvent,
			Modules: c.opts.Modules,
			Decider: a.Decider(),
			Node:    j,
			Hasher:  hashing.Hasher{Key: c.opts.HashKey},
			Workers: engineWorkers,
			Metrics: c.opts.Metrics,
			Trace:   a.span,
		}, tr)
	})
	for j, r := range reports {
		c.agents[j].lastEngine = r
		ep.Alerts += r.Alerts
		if r.CPUUnits > ep.MaxCPU {
			ep.MaxCPU = r.CPUUnits
		}
	}
}

// commitScenarioLedger seals one scenario epoch into the attached ledger:
// a coverage verdict whose prediction is the published expectation, plus
// the governed nodes' floor attestations. Free when no ledger is
// configured.
func commitScenarioLedger(l *ledger.Ledger, c *Cluster, ep *ScenarioEpoch, attests []governor.Attestation) {
	if l == nil {
		return
	}
	v := CoverageVerdict{
		RunEpoch:       ep.Epoch,
		CtrlEpoch:      c.ctrl.Epoch(),
		AgentEpochs:    make([]uint64, len(c.agents)),
		Synced:         ep.SyncedAgents,
		Stale:          ep.StaleAgents,
		Dark:           ep.DarkAgents,
		Worst:          ep.WorstCoverage,
		Avg:            ep.AvgCoverage,
		PredictedWorst: ep.ExpectedWorst,
		PredictedAvg:   ep.AvgCoverage,
		MaxCPU:         ep.MaxCPU,
		SLOViolations:  ep.SLOViolations,
	}
	for j, a := range c.agents {
		if a.Usable() {
			v.AgentEpochs[j] = a.Decider().Epoch()
		}
	}
	b := l.Begin(ledger.RecEpoch, c.ctrl.Epoch())
	data, err := v.Encode()
	b.Item(ledger.ItemVerdict, "coverage", data, err)
	for _, a := range attests {
		data, err := a.Encode()
		b.Item(ledger.ItemAttest, fmt.Sprintf("node/%d", a.Node), data, err)
	}
	b.Commit()
}

func containsInt(xs []int, j int) bool {
	for _, x := range xs {
		if x == j {
			return true
		}
	}
	return false
}
