package cluster

import (
	"errors"
	"net"
	"time"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// RetryPolicy shapes an agent's manifest-fetch retry loop: exponential
// backoff with deterministic jitter, bounded attempts per epoch. The zero
// value selects the defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts bounds fetch attempts per epoch (0 selects 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (0 selects 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 selects 500ms).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (0 selects 2).
	Multiplier float64
	// JitterFrac adds up to this fraction of the delay as seeded jitter,
	// decorrelating agents that fail in the same epoch. Jitter affects
	// wall time only, never which attempts happen, so it cannot perturb
	// a chaos run's report.
	JitterFrac float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	return p
}

// Backoff returns the delay before retry `attempt` (1-based: the wait
// after the attempt-th failure), with deterministic jitter drawn from
// (seed, draw).
func (p RetryPolicy) Backoff(attempt int, seed, draw int64) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 {
		d += d * p.JitterFrac * chaos.Uniform(seed, draw)
	}
	return time.Duration(d)
}

// epochTally is one agent's fetch accounting for the current epoch.
type epochTally struct {
	attempts, failures, timeouts int
	synced                       bool
}

// NodeAgent is one monitoring node of the in-process cluster: a resilient
// control-plane client (retrying manifest fetches through a possibly
// faulty network) plus the node's share of the traffic to analyze. All
// mutable state is touched only by the cluster's epoch loop — within an
// epoch, exactly one goroutine owns each agent.
type NodeAgent struct {
	node      int
	addr      string
	agentOpts control.AgentOptions
	sync      control.SubscribeOptions // per-sync mode/delta/encoding knobs
	retry     RetryPolicy
	grace     int
	jitter    int64 // seed for backoff jitter
	jitterN   int64 // jitter draw counter

	agent *control.Agent
	trace []traffic.Session

	down        bool
	staleEpochs int
	tally       epochTally
	// span is the agent's trace context for the current epoch (zero when
	// untraced), set by the cluster at the top of each fetch phase.
	span trace.Span

	// Telemetry inputs, written by the epoch loop regardless of whether a
	// fleet is attached (plain struct stores, read only by sampleFleet):
	// lastEngine is the node's most recent data-plane report, lastFloor
	// the governor's floor-limited verdict, lastStats the stats collected
	// at the last sampleFleet while the node was up — the drain farewell's
	// source.
	lastEngine bro.Report
	lastFloor  bool
	lastStats  telemetry.NodeStats
}

func newNodeAgent(node int, addr string, opts control.AgentOptions, sync control.SubscribeOptions, retry RetryPolicy, grace int, jitterSeed int64, trace []traffic.Session) *NodeAgent {
	sync.Mode = control.ModeIfStale
	a := &NodeAgent{
		node: node, addr: addr, agentOpts: opts, sync: sync,
		retry: retry.withDefaults(), grace: grace,
		jitter: jitterSeed, trace: trace,
	}
	a.restart()
	return a
}

// Node returns the agent's node id.
func (a *NodeAgent) Node() int { return a.node }

// Down reports whether the agent is crashed this epoch.
func (a *NodeAgent) Down() bool { return a.down }

// Decider returns the agent's installed wire decider (nil before the
// first successful fetch, and after a crash until re-sync).
func (a *NodeAgent) Decider() *control.Decider { return a.agent.Decider() }

// StaleEpochs reports how many consecutive epochs the agent has failed to
// confirm its manifest against the controller.
func (a *NodeAgent) StaleEpochs() int { return a.staleEpochs }

// restart models a process (re)start: the control client is rebuilt, so
// any in-memory manifest state is lost and must be re-fetched. The fault
// stream behind agentOpts.Dial is deliberately preserved — faults belong
// to the node's network path, not to the process lifetime.
func (a *NodeAgent) restart() {
	a.agent = control.NewAgentOpts(a.addr, a.node, a.agentOpts)
}

// Usable reports whether the agent can analyze traffic this epoch: alive,
// holding a manifest, and not stale beyond the grace window. The grace
// window is the paper's operational reality that a node keeps enforcing
// its last manifest between re-optimization rounds; beyond it the node
// goes dark rather than enforce an arbitrarily old assignment.
func (a *NodeAgent) Usable() bool {
	return !a.down && a.agent.Decider() != nil && a.staleEpochs <= a.grace
}

// syncWithRetry runs one epoch's fetch loop: up to MaxAttempts tries of
// an if-stale subscription sync with exponential, jittered backoff
// between them. It updates the epoch tally and the staleness counter.
// Every dial consumes exactly the agent's own fault stream, so the loop's
// outcome is a pure function of (chaos seed, node id, prior history)
// regardless of scheduling — which is also why the delta and encoding
// knobs default off: the legacy probe-then-fetch exchange dials twice
// per attempt where a delta sync dials once, and changing the per-attempt
// draw count would shift every later fault in a seeded stream.
func (a *NodeAgent) syncWithRetry() {
	if a.span.Live() {
		// Attach the epoch's fetch context to the wire so the controller
		// can count traced requests; the manifest that comes back carries
		// the publish span this fetch stitches to.
		a.agent.SetTrace(&control.WireTrace{Trace: a.span.TraceHex(), Span: a.span.SpanHex()})
	}
	for attempt := 1; attempt <= a.retry.MaxAttempts; attempt++ {
		a.tally.attempts++
		_, err := a.agent.Subscribe(a.sync)
		if err == nil {
			a.tally.synced = true
			a.staleEpochs = 0
			attrs := []trace.Attr{trace.Int("attempt", attempt)}
			if d := a.agent.Decider(); d != nil {
				attrs = append(attrs, trace.Uint64("ctrl_epoch", d.Epoch()))
				if wt := d.TraceContext(); wt != nil {
					attrs = append(attrs, trace.Str("pub_span", wt.Span))
				}
			}
			a.span.Event(trace.EvFetchOK, attrs...)
			return
		}
		a.tally.failures++
		timeout := false
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			a.tally.timeouts++
			timeout = true
		}
		// Events classify the failure rather than carry err.Error(): error
		// strings embed the controller's ephemeral port, which would break
		// byte-identical dumps across runs.
		if attempt < a.retry.MaxAttempts {
			a.span.Event(trace.EvFetchRetry,
				trace.Int("attempt", attempt), trace.Str("err", errClass(timeout)))
			a.jitterN++
			time.Sleep(a.retry.Backoff(attempt, a.jitter, a.jitterN))
		} else {
			a.span.Event(trace.EvFetchFail,
				trace.Int("attempts", attempt), trace.Str("err", errClass(timeout)))
		}
	}
	a.staleEpochs++
}

// errClass names a fetch failure for trace attributes in a
// run-independent way.
func errClass(timeout bool) string {
	if timeout {
		return "timeout"
	}
	return "error"
}
