package cluster

import (
	"fmt"
	"net"

	"nwdeploy/internal/chaos"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
)

// HierarchyOptions configures a hierarchical control plane: one global
// coordinator controller plus per-region controllers, with the planner's
// output sharded along internal/topology region boundaries.
type HierarchyOptions struct {
	// Topo is the deployment substrate; its Regions partition decides
	// which controller owns which nodes.
	Topo *topology.Topology
	// Plan is the solved (or synthesized) deployment plan the hierarchy
	// publishes. Later generations arrive via Publish.
	Plan *core.Plan
	// Regions is the number of region controllers (values below 1 select
	// 1; values above the node count are clamped by the partitioner).
	Regions int
	// HashKey keys the deployment's packet-selection hash (0 selects 7).
	HashKey uint32
	// DeltaHistory is each controller's retained-generation window for
	// delta serving (0 selects the control package's default).
	DeltaHistory int
	// Deltas and Encoding shape the region subscriptions: delta syncs and
	// the negotiated wire encoding. The global fallback path always uses
	// plain full-manifest JSON fetches — the lowest-common-denominator
	// exchange any controller can serve.
	Deltas   bool
	Encoding control.Encoding
	// Agent sets per-agent timeouts/dialer/metrics.
	Agent control.AgentOptions
	// Metrics, when non-nil, receives controller and agent observability.
	Metrics *obs.Registry
	// Workers sizes SyncAll's worker pool (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Ledger, when non-nil, receives the hierarchy's audit chain: the
	// global coordinator commits a publish record per lockstep generation
	// (region manifests are byte-identical member views of the same plan,
	// so one tier's commitment covers all) and every Publish additionally
	// seals the region partition as a regions record. Write-only.
	Ledger *ledger.Ledger
	// Fleet, when non-nil, receives piggybacked NodeStats from every tier
	// (agents report to whichever controller serves them), and the
	// hierarchy installs its region partition on it, so FleetSnapshots
	// carry per-region health rollups. Write-only.
	Fleet *telemetry.Fleet
}

// Hierarchy is a running two-tier control plane: region controllers under
// a global coordinator, publishing in lockstep epochs, with one HierAgent
// per node subscribed to its region and falling back to the global tier
// when the region is unreachable.
type Hierarchy struct {
	opts     HierarchyOptions
	regions  [][]int // region -> ascending member node IDs
	regionOf []int   // node -> region index

	global      *control.Controller
	globalGate  *chaos.Gate
	regional    []*control.Controller
	regionGates []*chaos.Gate

	agents []*HierAgent
	plan   *core.Plan
}

// shardPlan narrows a plan to one region: foreign nodes keep an empty
// manifest, so a region controller physically holds only its members'
// assignments (ServeNodes additionally refuses to serve the rest). The
// instance, class table, and member manifests are shared, not copied —
// the shard is a view, and region manifests are byte-identical to the
// global tier's for every member node.
func shardPlan(p *core.Plan, members map[int]bool) *core.Plan {
	out := *p
	out.Manifests = make([]core.NodeManifest, len(p.Manifests))
	for j, m := range p.Manifests {
		out.Manifests[j] = core.NodeManifest{Node: m.Node}
		if members[j] {
			out.Manifests[j] = m
		}
	}
	return &out
}

// NewHierarchy partitions the topology, starts the global and region
// controllers (each behind a chaos gate, so tests and chaos schedules can
// fail a tier deterministically), publishes the initial plan as epoch 1
// everywhere, and builds one HierAgent per node. Call Close when done.
func NewHierarchy(opts HierarchyOptions) (*Hierarchy, error) {
	if opts.Topo == nil || opts.Plan == nil {
		return nil, fmt.Errorf("cluster: hierarchy needs Topo and Plan")
	}
	if opts.Regions < 1 {
		opts.Regions = 1
	}
	if opts.HashKey == 0 {
		opts.HashKey = 7
	}
	n := opts.Topo.N()
	h := &Hierarchy{opts: opts, plan: opts.Plan}
	h.regions = opts.Topo.Regions(opts.Regions)
	h.regionOf = make([]int, n)
	for r, members := range h.regions {
		for _, j := range members {
			h.regionOf[j] = r
		}
	}
	// The partition is the fleet's region rollup: snapshots taken while
	// this hierarchy runs aggregate per-node health by region.
	opts.Fleet.SetRegions(h.regions)

	newCtrl := func(copts control.ControllerOptions) (*control.Controller, *chaos.Gate, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: listen: %w", err)
		}
		gate := chaos.NewGate(ln)
		copts.HashKey = opts.HashKey
		copts.Metrics = opts.Metrics
		copts.DeltaHistory = opts.DeltaHistory
		copts.Listener = gate
		copts.Fleet = opts.Fleet
		c, err := control.NewControllerOpts("", copts)
		if err != nil {
			return nil, nil, err
		}
		return c, gate, nil
	}

	var err error
	// The ledger hangs off the global tier only: region manifests are
	// member views of the same plan, so the global publish record already
	// commits every byte a region controller can serve.
	h.global, h.globalGate, err = newCtrl(control.ControllerOptions{Ledger: opts.Ledger})
	if err != nil {
		return nil, err
	}
	for _, members := range h.regions {
		// Region controllers serve their members only; the sharded plan is
		// installed by the Publish below.
		ctrl, gate, err := newCtrl(control.ControllerOptions{ServeNodes: members})
		if err != nil {
			h.Close()
			return nil, err
		}
		h.regional = append(h.regional, ctrl)
		h.regionGates = append(h.regionGates, gate)
	}
	h.Publish(opts.Plan)

	for j := 0; j < n; j++ {
		ra := control.NewAgentOpts(h.regional[h.regionOf[j]].Addr(), j, opts.Agent)
		ga := control.NewAgentOpts(h.global.Addr(), j, opts.Agent)
		h.agents = append(h.agents, &HierAgent{
			node: j, region: ra, global: ga,
			deltas: opts.Deltas, enc: opts.Encoding,
		})
	}
	return h, nil
}

// Publish installs a new plan generation on the global tier and every
// region shard. All controllers bump in lockstep, so a node's region and
// global views always agree on the epoch numbering — the property that
// lets an agent fail over between tiers without epoch aliasing.
func (h *Hierarchy) Publish(plan *core.Plan) {
	h.plan = plan
	h.global.UpdatePlan(plan)
	for r, members := range h.regions {
		set := make(map[int]bool, len(members))
		for _, j := range members {
			set[j] = true
		}
		h.regional[r].UpdatePlan(shardPlan(plan, set))
	}
	h.commitRegions()
}

// commitRegions seals the region partition — which controller owns which
// nodes at this generation — into the attached ledger, one canonical
// member-list item per region. The record is what lets the offline
// verifier prove "node j was assigned to region r at epoch e".
func (h *Hierarchy) commitRegions() {
	l := h.opts.Ledger
	if l == nil {
		return
	}
	b := l.Begin(ledger.RecRegions, h.global.Epoch())
	for r, members := range h.regions {
		var e ledger.Enc
		e.Ints(members)
		data, err := e.Finish()
		b.Item(ledger.ItemRegion, fmt.Sprintf("region/%d", r), data, err)
	}
	b.Commit()
}

// PublishShed records a node's governor shed state on every tier.
// Broadcasting (rather than routing to the owning region only) keeps the
// epoch counters lockstep across all controllers; foreign regions store a
// shed entry they will never serve, which costs a few hundred bytes.
func (h *Hierarchy) PublishShed(node int, shed []control.WireAssignment) {
	h.global.PublishShed(node, shed)
	for r := range h.regional {
		h.regional[r].PublishShed(node, shed)
	}
}

// Epoch returns the current lockstep configuration epoch.
func (h *Hierarchy) Epoch() uint64 { return h.global.Epoch() }

// Regions returns the region partition (ascending node IDs per region).
func (h *Hierarchy) Regions() [][]int { return h.regions }

// RegionOf returns the region index owning a node.
func (h *Hierarchy) RegionOf(node int) int { return h.regionOf[node] }

// SetRegionDown fails (or restores) one region controller's listener
// gate: its members' region subscriptions start failing and the agents
// fall back to global full fetches.
func (h *Hierarchy) SetRegionDown(r int, down bool) {
	h.regionGates[r].SetOpen(!down)
}

// SetGlobalDown fails (or restores) the global coordinator's gate.
func (h *Hierarchy) SetGlobalDown(down bool) {
	h.globalGate.SetOpen(!down)
}

// Agents returns the per-node hierarchical agents, indexed by node.
func (h *Hierarchy) Agents() []*HierAgent { return h.agents }

// SyncAll runs one sync round across every agent concurrently and
// reports the outcome. Each agent touches only its own state, so the
// round's logical outcome is schedule-independent.
func (h *Hierarchy) SyncAll() HierSyncReport {
	n := len(h.agents)
	outs := parallel.Map(parallel.Resolve(h.opts.Workers, n), n, func(j int) HierSyncOutcome {
		return h.agents[j].Sync()
	})
	var rep HierSyncReport
	for _, o := range outs {
		rep.Bytes += o.Bytes
		if o.Err != nil {
			rep.Failed++
			continue
		}
		if o.Fallback {
			rep.Fallbacks++
		}
		if o.Update.Changed {
			rep.Changed++
			if o.Update.Full {
				rep.Fulls++
			} else {
				rep.Deltas++
			}
		}
	}
	return rep
}

// Converged reports whether every agent holds the current epoch.
func (h *Hierarchy) Converged() bool {
	epoch := h.Epoch()
	for _, a := range h.agents {
		d := a.Decider()
		if d == nil || d.Epoch() != epoch {
			return false
		}
	}
	return true
}

// Close shuts every controller down (gates close with their listeners).
func (h *Hierarchy) Close() error {
	err := h.global.Close()
	for _, c := range h.regional {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// HierSyncOutcome is one agent's result for one sync round.
type HierSyncOutcome struct {
	Update   control.Update
	Bytes    int
	Fallback bool // region tier unreachable; served by the global tier
	Err      error
}

// HierSyncReport aggregates one SyncAll round.
type HierSyncReport struct {
	Changed   int // agents that installed a new generation
	Deltas    int // ... via a delta
	Fulls     int // ... via a full manifest
	Fallbacks int // agents served by the global tier this round
	Failed    int // agents that reached no tier
	Bytes     int // total response payload bytes across all agents
}

// HierAgent is one node's client to the hierarchical control plane: a
// delta subscription to its region controller, with a global full-fetch
// fallback when the region tier is unreachable. The two tiers publish in
// lockstep, so whichever answered last holds the node's newest manifest.
type HierAgent struct {
	node   int
	region *control.Agent
	global *control.Agent
	deltas bool
	enc    control.Encoding
}

// Node returns the agent's node id.
func (a *HierAgent) Node() int { return a.node }

// SetStats installs the telemetry report piggybacked on the agent's
// subsequent exchanges, on both tiers — whichever controller serves the
// next sync ingests it (both feed the same Fleet when one is configured).
func (a *HierAgent) SetStats(s *telemetry.NodeStats) {
	a.region.SetStats(s)
	a.global.SetStats(s)
}

// Sync performs one refresh: a region delta exchange first, then —
// only if the region tier is unreachable — a global full fetch.
func (a *HierAgent) Sync() HierSyncOutcome {
	sub, err := a.region.Subscribe(control.SubscribeOptions{
		Mode:     control.ModeIfStale,
		Deltas:   a.deltas,
		Encoding: a.enc,
	})
	u := sub.Last()
	if err == nil {
		return HierSyncOutcome{Update: u, Bytes: u.WireBytes}
	}
	bytes := u.WireBytes
	gsub, gerr := a.global.Subscribe(control.SubscribeOptions{Mode: control.ModeIfStale})
	gu := gsub.Last()
	return HierSyncOutcome{Update: gu, Bytes: bytes + gu.WireBytes, Fallback: true, Err: gerr}
}

// Decider returns the newest installed decider across both tiers (nil
// before the first successful sync). Epochs are lockstep, so the higher
// epoch is strictly newer; on a tie the region view wins (it is the
// primary, and for member nodes the two tiers' manifests are identical).
func (a *HierAgent) Decider() *control.Decider {
	rd, gd := a.region.Decider(), a.global.Decider()
	switch {
	case rd == nil:
		return gd
	case gd == nil:
		return rd
	case gd.Epoch() > rd.Epoch():
		return gd
	default:
		return rd
	}
}
