package cluster

import (
	"fmt"

	"nwdeploy/internal/ledger"
)

// CoverageVerdict is the ledger-committed summary of one runtime epoch's
// audit: what coverage the wire actually delivered versus the
// prediction, which agents enforced which manifest generation, and the
// SLO verdicts. One is committed per chaos epoch (prediction = the
// plan's static residual-coverage model) and per overload epoch
// (prediction = the governors' shed floor). All fields are logical
// quantities, so the encoding is seed-deterministic.
type CoverageVerdict struct {
	RunEpoch       int
	CtrlEpoch      uint64
	ControllerDown bool
	DownNodes      []int
	AgentEpochs    []uint64
	Synced         int
	Stale          int
	Dark           int
	Alerts         int
	MaxCPU         float64
	Worst          float64
	Avg            float64
	PredictedWorst float64
	PredictedAvg   float64
	SLOViolations  []string
}

// Encode renders the verdict in the ledger's canonical binary form.
func (v CoverageVerdict) Encode() ([]byte, error) {
	var e ledger.Enc
	e.I64(int64(v.RunEpoch))
	e.U64(v.CtrlEpoch)
	e.Bool(v.ControllerDown)
	e.Ints(v.DownNodes)
	e.U64s(v.AgentEpochs)
	e.I64(int64(v.Synced))
	e.I64(int64(v.Stale))
	e.I64(int64(v.Dark))
	e.I64(int64(v.Alerts))
	e.F64(v.MaxCPU)
	e.F64(v.Worst)
	e.F64(v.Avg)
	e.F64(v.PredictedWorst)
	e.F64(v.PredictedAvg)
	e.Strs(v.SLOViolations)
	b, err := e.Finish()
	if err != nil {
		return nil, fmt.Errorf("cluster: verdict epoch %d: %w", v.RunEpoch, err)
	}
	return b, nil
}

// DecodeCoverageVerdict parses a canonical verdict — the offline
// verifier's read path.
func DecodeCoverageVerdict(b []byte) (CoverageVerdict, error) {
	d := ledger.NewDec(b)
	v := CoverageVerdict{
		RunEpoch:       int(d.I64()),
		CtrlEpoch:      d.U64(),
		ControllerDown: d.Bool(),
		DownNodes:      d.Ints(),
		AgentEpochs:    d.U64s(),
		Synced:         int(d.I64()),
		Stale:          int(d.I64()),
		Dark:           int(d.I64()),
		Alerts:         int(d.I64()),
	}
	v.MaxCPU = d.F64()
	v.Worst = d.F64()
	v.Avg = d.F64()
	v.PredictedWorst = d.F64()
	v.PredictedAvg = d.F64()
	v.SLOViolations = d.Strs()
	if err := d.Done(); err != nil {
		return CoverageVerdict{}, fmt.Errorf("cluster: verdict: %w", err)
	}
	return v, nil
}

// commitEpochLedger seals a chaos epoch's verdict into the attached
// ledger; free when no ledger is configured.
func (c *Cluster) commitEpochLedger(rep *EpochReport) {
	l := c.opts.Ledger
	if l == nil {
		return
	}
	b := l.Begin(ledger.RecEpoch, c.ctrl.Epoch())
	v := CoverageVerdict{
		RunEpoch:       rep.Epoch,
		CtrlEpoch:      rep.ControllerEpoch,
		ControllerDown: rep.ControllerDown,
		DownNodes:      rep.DownNodes,
		AgentEpochs:    rep.AgentEpochs,
		Synced:         rep.SyncedAgents,
		Stale:          rep.StaleAgents,
		Dark:           rep.DarkAgents,
		Alerts:         rep.Alerts,
		MaxCPU:         rep.MaxCPU,
		Worst:          rep.WorstCoverage,
		Avg:            rep.AvgCoverage,
		PredictedWorst: rep.PredictedWorst,
		PredictedAvg:   rep.PredictedAvg,
		SLOViolations:  rep.SLOViolations,
	}
	data, err := v.Encode()
	b.Item(ledger.ItemVerdict, "coverage", data, err)
	b.Commit()
}
