package cluster

import "testing"

// Direct agent-level staleness test: the grace window boundary is exact.
// An agent that has failed to confirm its manifest for exactly `grace`
// consecutive epochs still serves it; one more failed epoch and it goes
// dark. (TestControllerOutageStaleThenDark exercises this through the
// full epoch loop; this pins the boundary arithmetic itself.)
func TestAgentStaleGraceBoundary(t *testing.T) {
	const grace = 2
	c := newTestCluster(t, Options{Seed: 21, StaleGrace: grace})
	if got, want := c.Converge(), len(c.Agents()); got != want {
		t.Fatalf("converged %d/%d", got, want)
	}
	a := c.agents[0]
	if !a.Usable() || a.StaleEpochs() != 0 {
		t.Fatalf("freshly synced agent: usable=%v stale=%d", a.Usable(), a.StaleEpochs())
	}

	// Controller unreachable: each failed epoch climbs the staleness
	// ladder, and the agent keeps serving right up to the grace boundary.
	c.gate.SetOpen(false)
	for e := 1; e <= grace; e++ {
		a.syncWithRetry()
		if a.StaleEpochs() != e {
			t.Fatalf("after %d failed epochs: stale=%d", e, a.StaleEpochs())
		}
		if !a.Usable() {
			t.Fatalf("agent dark at stale=%d, inside grace window %d", e, grace)
		}
	}
	a.syncWithRetry()
	if a.StaleEpochs() != grace+1 {
		t.Fatalf("after %d failed epochs: stale=%d", grace+1, a.StaleEpochs())
	}
	if a.Usable() {
		t.Fatalf("agent still usable at stale=%d, past grace window %d", a.StaleEpochs(), grace)
	}
	if a.Decider() == nil {
		t.Fatal("going dark must not discard the manifest — recovery re-confirms, not re-fetches")
	}

	// Recovery: one successful sync resets the ladder entirely.
	c.gate.SetOpen(true)
	a.syncWithRetry()
	if !a.Usable() || a.StaleEpochs() != 0 {
		t.Fatalf("after recovery: usable=%v stale=%d", a.Usable(), a.StaleEpochs())
	}
}

// Direct agent-level crash test: restart rebuilds the control client, so
// the in-memory manifest is gone and the agent is unusable until it
// re-fetches — which must happen even though the controller's epoch never
// moved, because the fresh client starts from epoch zero.
func TestAgentRestartRefetchesSameEpoch(t *testing.T) {
	c := newTestCluster(t, Options{Seed: 23})
	if got, want := c.Converge(), len(c.Agents()); got != want {
		t.Fatalf("converged %d/%d", got, want)
	}
	epoch := c.ctrl.Epoch()
	a := c.agents[3]
	if a.Decider() == nil {
		t.Fatal("synced agent has no decider")
	}

	a.restart()
	if a.Decider() != nil {
		t.Fatal("restart kept the in-memory manifest")
	}
	if a.Usable() {
		t.Fatal("manifest-less agent claims to be usable")
	}
	if c.ctrl.Epoch() != epoch {
		t.Fatalf("controller epoch moved to %d during restart", c.ctrl.Epoch())
	}

	a.tally = epochTally{}
	a.syncWithRetry()
	if a.tally.attempts != 1 || !a.tally.synced {
		t.Fatalf("restart re-sync: attempts=%d synced=%v", a.tally.attempts, a.tally.synced)
	}
	if a.Decider() == nil || !a.Usable() {
		t.Fatal("agent did not re-fetch the unchanged epoch after restart")
	}
}
