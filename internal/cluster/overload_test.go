package cluster

import (
	"reflect"
	"testing"

	"nwdeploy/internal/obs"
)

// smallOverloadConfig is a fast overload scenario: frequent moderate
// bursts a redundancy-2 deployment can absorb by shedding to its floor.
func smallOverloadConfig(seed int64, workers int) OverloadConfig {
	return OverloadConfig{
		Sessions: 1500, Epochs: 5, Seed: seed,
		BurstFactor: 1.8, BurstProb: 0.5, BaseJitter: 0.05,
		Governor: true,
		Probes:   500, Workers: workers,
	}
}

// The acceptance scenario: with the governor on, every node's post-shed
// load fits its tolerated budget every epoch — except nodes whose whole
// load is copy-0 slices, where the r=1 coverage floor outranks the budget
// and the governor correctly refuses to shed — and coverage never drops
// below the audited shed floor (full, since copy 0 is never shed). With
// the governor off, the same traffic pushes strictly more nodes over.
func TestOverloadGovernorBoundsLoad(t *testing.T) {
	rep, err := RunOverload(smallOverloadConfig(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	shedSomewhere := false
	overOn := 0
	for _, ep := range rep.Epochs {
		over := 0
		for j, load := range ep.NodeLoads {
			if lim := ep.NodeBudgets[j] * 1.1; load > lim+1e-9 {
				over++
			}
		}
		if over != ep.OverBudget {
			t.Fatalf("epoch %d: OverBudget %d but %d loads exceed their limit", ep.Epoch, ep.OverBudget, over)
		}
		if ep.OverBudget > ep.Unsatisfied {
			t.Fatalf("epoch %d: %d nodes over budget but only %d floor-limited — governor left sheddable width on an over node",
				ep.Epoch, ep.OverBudget, ep.Unsatisfied)
		}
		overOn += ep.OverBudget
		if ep.ShedFloorWorst < 1-1e-9 {
			t.Fatalf("epoch %d: shed floor %v — copy 0 was shed", ep.Epoch, ep.ShedFloorWorst)
		}
		if ep.WorstCoverage < ep.ShedFloorWorst-1e-9 {
			t.Fatalf("epoch %d: wire coverage %v below audited shed floor %v",
				ep.Epoch, ep.WorstCoverage, ep.ShedFloorWorst)
		}
		if ep.SyncedAgents != rep.Nodes {
			t.Fatalf("epoch %d: only %d/%d agents synced on a clean network",
				ep.Epoch, ep.SyncedAgents, rep.Nodes)
		}
		if ep.ShedWidth > 0 {
			shedSomewhere = true
		}
	}
	if !shedSomewhere {
		t.Fatal("scenario never shed — bursts too weak to prove anything")
	}

	// Same scenario, governor off: the raw projection must exceed the
	// tolerated budget somewhere, and on strictly more node-epochs than
	// the governed run, or the governed run proved nothing.
	off := smallOverloadConfig(5, 0)
	off.Governor = false
	repOff, err := RunOverload(off)
	if err != nil {
		t.Fatal(err)
	}
	if repOff.MaxOverBudget == 0 {
		t.Fatal("governor-off run never exceeded budget — scenario is vacuous")
	}
	overOff := 0
	for _, ep := range repOff.Epochs {
		overOff += ep.OverBudget
	}
	if overOff <= overOn {
		t.Fatalf("governor did not reduce over-budget node-epochs: %d governed vs %d raw", overOn, overOff)
	}
}

// Same-seed overload runs are DeepEqual across worker counts, and a
// metrics registry must not perturb the report.
func TestOverloadDeterministicAcrossWorkers(t *testing.T) {
	r1, err := RunOverload(smallOverloadConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallOverloadConfig(5, 4)
	cfg.Metrics = obs.New()
	r4, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("same-seed overload runs diverge across workers:\n%+v\n%+v", r1, r4)
	}

	other, err := RunOverload(smallOverloadConfig(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Epochs, other.Epochs) {
		t.Fatal("different seeds produced identical epoch reports")
	}
}

// replanConfig drifts hard enough to trip the detector every few epochs.
func replanConfig(warm bool) OverloadConfig {
	return OverloadConfig{
		Sessions: 1500, Epochs: 6, Seed: 11,
		BurstFactor: 2.5, BurstProb: 0.6, BaseJitter: 0.1,
		Governor: true,
		Replan:   true, WarmReplan: warm,
		ReplanThreshold: 0.08, EWMAAlpha: 0.6,
		Probes: 400,
	}
}

// Warm-started replans must land the same plans in fewer total simplex
// iterations than cold replans of the identical drift sequence — the
// bounded-replan-deadline story depends on it.
func TestOverloadWarmReplanFewerIters(t *testing.T) {
	warm, err := RunOverload(replanConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunOverload(replanConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Replans == 0 || cold.Replans == 0 {
		t.Fatalf("drift never triggered a replan (warm %d, cold %d)", warm.Replans, cold.Replans)
	}
	if warm.Replans != cold.Replans {
		t.Fatalf("warm and cold runs replanned different epochs: %d vs %d", warm.Replans, cold.Replans)
	}
	if warm.TotalReplanIters >= cold.TotalReplanIters {
		t.Fatalf("warm replans took %d iters, cold %d — warm start bought nothing",
			warm.TotalReplanIters, cold.TotalReplanIters)
	}
	for i, ep := range warm.Epochs {
		if ep.Replanned && !ep.ReplanWarm && i > 0 {
			t.Fatalf("epoch %d replanned cold in the warm run", ep.Epoch)
		}
	}
}

// A replan deadline too tight for any solve must fall back to the
// governors' shed state: no replan lands, every miss is counted, and the
// governed loads stay bounded anyway.
func TestOverloadReplanDeadlineFallsBack(t *testing.T) {
	cfg := replanConfig(false)
	cfg.ReplanMaxIters = 1
	rep, err := RunOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replans != 0 {
		t.Fatalf("%d replans landed under a 1-iteration deadline", rep.Replans)
	}
	if rep.MissedReplans == 0 {
		t.Fatal("no missed replans recorded — drift never triggered")
	}
	for _, ep := range rep.Epochs {
		if ep.OverBudget > ep.Unsatisfied {
			t.Fatalf("epoch %d: %d nodes over budget but only %d floor-limited despite governor fallback",
				ep.Epoch, ep.OverBudget, ep.Unsatisfied)
		}
	}
}
