package cluster

import (
	"errors"
	"fmt"

	"nwdeploy/internal/bro"
	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/governor"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// OverloadConfig parameterizes RunOverload: a live cluster driven through
// a bursty traffic series, with per-node load governors shedding under
// overrun and an EWMA drift detector triggering warm-started replans. The
// zero value selects a complete default scenario.
type OverloadConfig struct {
	// Topo is the monitored network (nil selects Internet2).
	Topo *topology.Topology
	// Modules are the deployed analysis modules (nil selects the
	// PerPath-scoped standard modules — the classes for which the default
	// redundancy 2, and hence sheddable copy >= 1 slices, are feasible;
	// PerIngress/PerEgress units have a single eligible node).
	Modules []bro.ModuleSpec
	// Sessions sizes the generated workload (0 selects 4000);
	// TrafficSeed makes it reproducible (0 selects 7).
	Sessions    int
	TrafficSeed int64
	// Seed drives the bursty volume series. Same seed, same report.
	Seed int64
	// Epochs is the run length (0 selects 8).
	Epochs int
	// Redundancy is the provisioned coverage level r (0 selects 2 — the
	// governor needs copy >= 1 slices to shed).
	Redundancy int
	// Burst shape: BurstFactor multiplies a bursting pair's volume
	// (0 selects 4), BurstProb is the per-(epoch, pair) burst probability
	// (0 selects 0.15), BaseJitter the everyday noise (0 selects 0.1).
	BurstFactor float64
	BurstProb   float64
	BaseJitter  float64
	// Governor enables per-node load governing; GovernorCfg tunes it.
	// With Governor false the run still reports projected loads (the
	// exceeds-budget baseline) but nothing sheds.
	Governor    bool
	GovernorCfg governor.Config
	// Replan enables drift-triggered replanning; WarmReplan warm-starts
	// each re-solve from the previous plan's basis (cold otherwise).
	Replan     bool
	WarmReplan bool
	// ReplanThreshold is the EWMA relative-error drift trigger (0 selects
	// 0.2); EWMAAlpha the smoothing weight (0 selects 0.5).
	ReplanThreshold float64
	EWMAAlpha       float64
	// ReplanMaxIters bounds each re-solve's simplex iterations — the
	// replan deadline. A solve that exceeds it is abandoned and the epoch
	// falls back to the governors' shed state (0 = no deadline).
	ReplanMaxIters int
	// Probes is the coverage probe count per unit (0 selects 2000).
	Probes int
	// Workers sizes the worker pools (0 = GOMAXPROCS). Reports are
	// identical for any value.
	Workers int
	// Metrics, when non-nil, receives the full runtime metric surface.
	Metrics *obs.Registry
	// Trace, when non-nil, records the run's causal event log — the
	// burst → overrun → shed → replan chain, epoch by epoch (see
	// Options.Trace); Watchdog, when non-nil, checks every epoch against
	// its SLO (see Options.Watchdog). Both are write-only.
	Trace    *trace.Tracer
	Watchdog *trace.Watchdog
	// Ledger, when non-nil, receives the run's tamper-evident audit chain:
	// publish/shed records from the controller plus one epoch record per
	// overload epoch carrying the coverage verdict (prediction = the
	// governors' shed floor) and a per-node floor attestation. Write-only.
	Ledger *ledger.Ledger
	// Fleet/FleetHistory turn on the fleet telemetry plane (see
	// Options.Fleet). Write-only: reports are DeepEqual with or without.
	Fleet        *telemetry.Fleet
	FleetHistory *telemetry.History
}

// OverloadEpoch is one epoch's outcome under overload.
type OverloadEpoch struct {
	Epoch int
	// MaxRelErr is the drift detector's error after this epoch's
	// observation; Drifted reports whether it crossed the threshold.
	MaxRelErr float64
	Drifted   bool
	// Replanned: a re-solve succeeded and fresh manifests were pushed.
	// ReplanWarm says it warm-started; ReplanIters is its simplex
	// iteration count (the replan latency in deterministic units);
	// ReplanMissed: the solve hit the deadline and the epoch fell back to
	// the governors' shed state.
	Replanned    bool
	ReplanWarm   bool
	ReplanIters  int
	ReplanMissed bool
	// NodeLoads[j] is node j's CPU load fraction after governing (with
	// the governor off: the raw projection); NodeBudgets[j] the plan's
	// prediction. OverBudget counts nodes above budget*(1+tolerance);
	// Unsatisfied counts the nodes the governor could not fit because
	// their remaining load is entirely copy-0 slices — the r=1 coverage
	// floor outranks the budget, so those nodes run hot by design. Under
	// the governor every over-budget node is unsatisfied (OverBudget <=
	// Unsatisfied; the gap is nodes over only on memory, which NodeLoads,
	// a CPU measure, does not show).
	NodeLoads   []float64
	NodeBudgets []float64
	OverBudget  int
	Unsatisfied int
	// ShedWidth is the total hash width shed across nodes this epoch.
	ShedWidth float64
	// WorstCoverage/AvgCoverage audit the agents' wire manifests (with
	// shed subtracted); ShedFloorWorst/ShedFloorAvg are the governor-side
	// audit of the same degradation (equal when every agent synced).
	WorstCoverage, AvgCoverage   float64
	ShedFloorWorst, ShedFloorAvg float64
	SyncedAgents                 int
	// SLOViolations are the watchdog rules this epoch breached (see
	// EpochReport.SLOViolations).
	SLOViolations []string
}

// OverloadReport is a full overload run.
type OverloadReport struct {
	Topology   string
	Nodes      int
	Sessions   int
	Redundancy int
	Seed       int64
	Governor   bool
	Replan     bool
	WarmReplan bool
	Objective  float64
	Epochs     []OverloadEpoch
	// Aggregates across epochs.
	WorstCoverage    float64 // min of epoch worsts
	AvgCoverage      float64 // mean of epoch averages
	MaxOverBudget    int     // max nodes over tolerated budget in any epoch
	Replans          int
	MissedReplans    int
	TotalReplanIters int
}

func (cfg OverloadConfig) withDefaults() OverloadConfig {
	if cfg.Topo == nil {
		cfg.Topo = topology.Internet2()
	}
	if cfg.Modules == nil {
		for _, m := range bro.StandardModules()[1:] {
			if m.Scope == core.PerPath {
				cfg.Modules = append(cfg.Modules, m)
			}
		}
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4000
	}
	if cfg.TrafficSeed == 0 {
		cfg.TrafficSeed = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.Redundancy <= 0 {
		cfg.Redundancy = 2
	}
	if cfg.BurstFactor == 0 {
		cfg.BurstFactor = 4
	}
	if cfg.BurstProb == 0 {
		cfg.BurstProb = 0.15
	}
	if cfg.BaseJitter == 0 {
		cfg.BaseJitter = 0.1
	}
	if cfg.ReplanThreshold == 0 {
		cfg.ReplanThreshold = 0.2
	}
	return cfg
}

// unitScales maps the pair-keyed bursty series onto per-unit volume scale
// factors: a PerPath unit follows its pair's burst, a PerIngress unit the
// volume-weighted aggregate of pairs entering at its ingress. Units whose
// traffic the series does not model keep scale 1.
type unitScales struct {
	members [][]int // per unit: indices into the series' pair list
	means   []float64
	series  *traffic.EpochSeries
}

func newUnitScales(inst *core.Instance, pv traffic.PathVolumes, series *traffic.EpochSeries) *unitScales {
	us := &unitScales{series: series, means: pv.Items}
	byPair := map[[2]int][]int{}
	bySrc := map[int][]int{}
	byDst := map[int][]int{}
	for k, p := range pv.Pairs {
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		byPair[[2]int{a, b}] = append(byPair[[2]int{a, b}], k)
		bySrc[p[0]] = append(bySrc[p[0]], k)
		byDst[p[1]] = append(byDst[p[1]], k)
	}
	us.members = make([][]int, len(inst.Units))
	for ui, u := range inst.Units {
		switch {
		case u.Key[1] != -1:
			us.members[ui] = byPair[u.Key]
		case inst.Classes[u.Class].Scope == core.PerEgress:
			// An egress unit's key is its destination: aggregate the pairs
			// terminating there, not the ones (if any) originating there.
			us.members[ui] = byDst[u.Key[0]]
		default:
			us.members[ui] = bySrc[u.Key[0]]
		}
	}
	return us
}

// factors maps per-pair multiplicative factors (nil means 1 everywhere)
// onto per-unit volume scales, weighting each member pair by its mean
// volume. Units with no modeled traffic keep scale 1.
func (us *unitScales) factors(f []float64) []float64 {
	out := make([]float64, len(us.members))
	for ui, ks := range us.members {
		var v, m float64
		for _, k := range ks {
			fk := 1.0
			if f != nil {
				fk = f[k]
			}
			v += us.means[k] * fk
			m += us.means[k]
		}
		if m <= 0 {
			out[ui] = 1
			continue
		}
		out[ui] = v / m
	}
	return out
}

// scale returns the per-unit volume scale factors for epoch e.
func (us *unitScales) scale(e int) []float64 {
	vols := us.series.Volumes[e]
	out := make([]float64, len(us.members))
	for ui, ks := range us.members {
		var v, m float64
		for _, k := range ks {
			v += vols[k]
			m += us.means[k]
		}
		if m <= 0 {
			out[ui] = 1
			continue
		}
		out[ui] = v / m
	}
	return out
}

// RunOverload runs the overload-resilience experiment: a clean-network
// cluster whose traffic drifts and bursts epoch by epoch. Each epoch, the
// per-node governors project their load against the plan's budget and shed
// deterministically when over; the drift detector watches the smoothed
// volumes and, past the threshold, triggers a re-solve (warm-started from
// the previous basis when configured) whose manifests are pushed through
// the normal epoch protocol. A re-solve that misses the ReplanMaxIters
// deadline is abandoned — the published shed state already bounds every
// node's load, which is exactly the fallback the governor exists for.
func RunOverload(cfg OverloadConfig) (*OverloadReport, error) {
	cfg = cfg.withDefaults()
	sessions := traffic.Generate(cfg.Topo, traffic.Gravity(cfg.Topo), traffic.GenConfig{
		Sessions: cfg.Sessions, Seed: cfg.TrafficSeed,
	})
	c, err := New(Options{
		Topo: cfg.Topo, Modules: cfg.Modules, Sessions: sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed,
		Workers: cfg.Workers, Probes: cfg.Probes, Metrics: cfg.Metrics,
		Trace: cfg.Trace, Watchdog: cfg.Watchdog, Ledger: cfg.Ledger,
		Fleet: cfg.Fleet, FleetHistory: cfg.FleetHistory,
		CaptureBasis: cfg.Replan && cfg.WarmReplan,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	probes := c.opts.Probes
	hasher := hashing.Hasher{Key: c.opts.HashKey}
	pv := traffic.Volumes(cfg.Topo, traffic.Gravity(cfg.Topo), 0)
	series := traffic.BurstySeries(pv, traffic.BurstConfig{
		Epochs: cfg.Epochs, BaseJitter: cfg.BaseJitter,
		BurstProb: cfg.BurstProb, BurstFactor: cfg.BurstFactor,
		Seed: parallel.SplitSeed(cfg.Seed, 3),
	})
	scales := newUnitScales(c.inst, pv, series)

	// Reference volumes: what the current plan was solved against. The
	// burst series scales the *original* workload; the detector and the
	// governors compare against the *current* plan's volumes, which move
	// when a replan lands.
	orig := c.inst
	origPkts := make([]float64, len(orig.Units))
	origItems := make([]float64, len(orig.Units))
	for ui, u := range orig.Units {
		origPkts[ui] = u.Pkts
		origItems[ui] = u.Items
	}
	detector := NewDriftDetector(origPkts, cfg.EWMAAlpha, cfg.ReplanThreshold)

	gcfg := cfg.GovernorCfg
	if gcfg.Metrics == nil {
		gcfg.Metrics = cfg.Metrics
	}
	govs := make([]*governor.Governor, cfg.Topo.N())
	buildGovernors := func() error {
		for j := range govs {
			g, err := governor.New(c.plan, j, hasher, gcfg)
			if err != nil {
				return err
			}
			govs[j] = g
		}
		return nil
	}
	if err := buildGovernors(); err != nil {
		return nil, err
	}
	lastBasis := c.plan.Basis
	tol := cfg.GovernorCfg.Tolerance
	if tol == 0 {
		tol = 0.1
	}

	rep := &OverloadReport{
		Topology: cfg.Topo.Name, Nodes: cfg.Topo.N(), Sessions: cfg.Sessions,
		Redundancy: cfg.Redundancy, Seed: cfg.Seed,
		Governor: cfg.Governor, Replan: cfg.Replan, WarmReplan: cfg.WarmReplan,
		Objective: c.plan.Objective, WorstCoverage: 1,
	}

	for e := 0; e < cfg.Epochs; e++ {
		ep := OverloadEpoch{Epoch: e + 1}
		c.epoch = e + 1
		cfg.Ledger.SetRun(c.epoch)
		c.epochSpan = cfg.Trace.Epoch(ep.Epoch)
		c.epochSpan.Event(trace.EvEpochStart)
		ctrlSpan := c.epochSpan.Child("controller", -1)

		// Offered volumes this epoch, scaled off the original workload.
		sc := scales.scale(e)
		obsPkts := make([]float64, len(origPkts))
		obsItems := make([]float64, len(origItems))
		for ui := range obsPkts {
			obsPkts[ui] = origPkts[ui] * sc[ui]
			obsItems[ui] = origItems[ui] * sc[ui]
		}

		// Drift detection over the smoothed observations.
		ep.MaxRelErr = detector.Observe(obsPkts)
		ep.Drifted = detector.Drifted()
		c.epochSpan.Event(trace.EvDrift,
			trace.F64("rel_err", ep.MaxRelErr), trace.Int("drifted", boolToInt(ep.Drifted)))

		// Replan on sustained drift: re-solve on the smoothed volumes with
		// the deadline; push fresh manifests on success, fall back to the
		// governors' shed state on a miss.
		if cfg.Replan && ep.Drifted {
			smPkts := detector.Smoothed()
			smItems := make([]float64, len(smPkts))
			for ui := range smItems {
				if origPkts[ui] > 0 {
					smItems[ui] = origItems[ui] * smPkts[ui] / origPkts[ui]
				} else {
					smItems[ui] = origItems[ui]
				}
			}
			inst2, err := c.inst.WithVolumes(smPkts, smItems)
			if err != nil {
				return nil, err
			}
			sopts := core.SolveOptions{
				Redundancy: cfg.Redundancy, MaxIters: cfg.ReplanMaxIters,
				Metrics: cfg.Metrics, CaptureBasis: true,
			}
			if cfg.WarmReplan && lastBasis != nil {
				sopts.WarmBasis = lastBasis
			}
			plan2, err := core.SolveOpts(inst2, sopts)
			switch {
			case err == nil:
				c.plan, c.inst = plan2, inst2
				// clears published shed, bumps epoch, stamps this epoch's
				// publish span on served manifests
				publishTraced(cfg.Trace, cfg.Ledger, c.ctrl, ep.Epoch, plan2)
				lastBasis = plan2.Basis
				detector.Rebase(smPkts)
				if err := buildGovernors(); err != nil {
					return nil, err
				}
				ep.Replanned = true
				ep.ReplanWarm = sopts.WarmBasis != nil
				ep.ReplanIters = plan2.SolverIters
				rep.Replans++
				rep.TotalReplanIters += plan2.SolverIters
				cfg.Metrics.Add("overload.replans", 1)
				if ep.ReplanWarm {
					cfg.Metrics.Add("overload.replan_iters_warm", int64(plan2.SolverIters))
					c.epochSpan.Event(trace.EvReplanWarm, trace.Int("iters", ep.ReplanIters))
				} else {
					cfg.Metrics.Add("overload.replan_iters_cold", int64(plan2.SolverIters))
					c.epochSpan.Event(trace.EvReplanCold, trace.Int("iters", ep.ReplanIters))
				}
			case errors.Is(err, lp.ErrIterLimit):
				ep.ReplanMissed = true
				rep.MissedReplans++
				cfg.Metrics.Add("overload.replan_misses", 1)
				c.epochSpan.Event(trace.EvDeadlineMiss, trace.Int("max_iters", cfg.ReplanMaxIters))
				cfg.Trace.DumpOnce("deadline_miss")
			default:
				return nil, fmt.Errorf("cluster: replan: %w", err)
			}
		}

		// Governor phase: project each node's load at the offered volumes
		// relative to the *current* plan, shed when over, publish.
		ep.NodeLoads = make([]float64, len(govs))
		ep.NodeBudgets = make([]float64, len(govs))
		scVsPlan := make([]float64, len(obsPkts))
		for ui := range scVsPlan {
			if p := c.inst.Units[ui].Pkts; p > 0 {
				scVsPlan[ui] = obsPkts[ui] / p
			} else {
				scVsPlan[ui] = 1
			}
		}
		if ctrlSpan.Live() {
			// Shed publishes below serve manifests under this epoch's
			// controller span, so re-fetching agents stitch to it.
			c.ctrl.SetTrace(&control.WireTrace{Trace: ctrlSpan.TraceHex(), Span: ctrlSpan.SpanHex()})
		}
		var attests []governor.Attestation
		for j, g := range govs {
			g.AttachSpan(c.epochSpan.Child("governor", j))
			grep, err := g.PlanEpoch(scVsPlan)
			if err != nil {
				return nil, err
			}
			ep.NodeBudgets[j] = grep.BudgetCPU
			c.agents[j].lastFloor = cfg.Governor && !grep.Satisfied
			if cfg.Governor {
				if cfg.Ledger != nil {
					attests = append(attests, g.Attest(grep))
				}
				ep.NodeLoads[j] = grep.CPUAfter
				ep.ShedWidth += grep.ShedWidth
				if !grep.Satisfied {
					ep.Unsatisfied++
					// Floor breach: the r=1 coverage floor is all that is
					// left and the node still projects hot.
					cfg.Trace.DumpOnce("floor_breach")
				}
				wa := control.ShedFromRanges(c.plan, g.ShedRanges())
				if len(wa) > 0 {
					ctrlSpan.Event(trace.EvShedPublish,
						trace.Int("node", j), trace.F64("width", grep.ShedWidth))
				}
				c.ctrl.PublishShed(j, wa)
			} else {
				// Ungoverned baseline: the node runs hot at the raw
				// projection; nothing is shed or published.
				ep.NodeLoads[j] = grep.ProjectedCPU
			}
			if ep.NodeLoads[j] > grep.BudgetCPU*(1+tol)+1e-9 {
				ep.OverBudget++
			}
		}
		if ep.OverBudget > rep.MaxOverBudget {
			rep.MaxOverBudget = ep.OverBudget
		}
		cfg.Metrics.Set("overload.shed_width", ep.ShedWidth)

		// Push manifests through the normal epoch protocol and audit what
		// the wire actually delivers.
		c.fetchPhase()
		darkAgents := 0
		for _, a := range c.agents {
			if a.tally.synced {
				ep.SyncedAgents++
			}
			if !a.Usable() {
				darkAgents++
			}
		}
		units := c.inst.Units
		ep.WorstCoverage, ep.AvgCoverage = core.ProbeCoverage(len(units), probes, func(ui int, x float64) bool {
			u := units[ui]
			for _, node := range u.Nodes {
				a := c.agents[node]
				if a.Usable() && a.Decider().CoversUnit(u.Class, u.Key, x) {
					return true
				}
			}
			return false
		})
		if cfg.Governor {
			ep.ShedFloorWorst, ep.ShedFloorAvg = governor.Coverage(c.plan, govs, probes)
		} else {
			ep.ShedFloorWorst, ep.ShedFloorAvg = 1, 1
		}
		c.epochSpan.Event(trace.EvCoverage,
			trace.F64("worst", ep.WorstCoverage), trace.F64("avg", ep.AvgCoverage),
			trace.F64("shed_floor_worst", ep.ShedFloorWorst))
		if ep.WorstCoverage < ep.ShedFloorWorst-1e-9 {
			// The wire delivered less than the governors' own degradation
			// floor predicts — manifests and shed state disagree.
			c.epochSpan.Event(trace.EvCoverageViolation,
				trace.F64("worst", ep.WorstCoverage), trace.F64("floor", ep.ShedFloorWorst))
			cfg.Trace.DumpOnce("coverage_violation")
		}
		for _, v := range cfg.Watchdog.Check(c.epochSpan, trace.EpochStats{
			WorstCoverage: ep.WorstCoverage, AvgCoverage: ep.AvgCoverage,
			ShedWidth: ep.ShedWidth, ReplanIters: ep.ReplanIters,
			DarkAgents: darkAgents, DeadlineMiss: ep.ReplanMissed,
		}) {
			ep.SLOViolations = append(ep.SLOViolations, v.String())
		}
		if len(ep.SLOViolations) > 0 {
			cfg.Trace.DumpOnce("slo_violation")
		}
		commitOverloadLedger(cfg.Ledger, c, &ep, darkAgents, attests)
		c.sampleFleet()

		if ep.WorstCoverage < rep.WorstCoverage {
			rep.WorstCoverage = ep.WorstCoverage
		}
		rep.AvgCoverage += ep.AvgCoverage
		rep.Epochs = append(rep.Epochs, ep)
	}
	rep.AvgCoverage /= float64(len(rep.Epochs))
	return rep, nil
}

// commitOverloadLedger seals one overload epoch into the attached ledger:
// a coverage verdict whose prediction is the governors' shed floor, plus
// one floor attestation per governed node. Free when no ledger is
// configured.
func commitOverloadLedger(l *ledger.Ledger, c *Cluster, ep *OverloadEpoch, dark int, attests []governor.Attestation) {
	if l == nil {
		return
	}
	v := CoverageVerdict{
		RunEpoch:       ep.Epoch,
		CtrlEpoch:      c.ctrl.Epoch(),
		AgentEpochs:    make([]uint64, len(c.agents)),
		Synced:         ep.SyncedAgents,
		Stale:          len(c.agents) - ep.SyncedAgents - dark,
		Dark:           dark,
		Worst:          ep.WorstCoverage,
		Avg:            ep.AvgCoverage,
		PredictedWorst: ep.ShedFloorWorst,
		PredictedAvg:   ep.ShedFloorAvg,
		SLOViolations:  ep.SLOViolations,
	}
	for j, a := range c.agents {
		if a.Usable() {
			v.AgentEpochs[j] = a.Decider().Epoch()
		}
	}
	for _, load := range ep.NodeLoads {
		if load > v.MaxCPU {
			v.MaxCPU = load
		}
	}
	b := l.Begin(ledger.RecEpoch, c.ctrl.Epoch())
	data, err := v.Encode()
	b.Item(ledger.ItemVerdict, "coverage", data, err)
	for _, a := range attests {
		data, err := a.Encode()
		b.Item(ledger.ItemAttest, fmt.Sprintf("node/%d", a.Node), data, err)
	}
	b.Commit()
}
