package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestDualsKnownLP checks shadow prices on the classic production LP
// against the textbook values: max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 has
// duals (0, 3/2, 1).
func TestDualsKnownLP(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 3, 0, Inf())
	y := p.AddVar("y", 5, 0, Inf())
	c1 := p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	c2 := p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	c3 := p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	want := map[int]float64{c1: 0, c2: 1.5, c3: 1}
	for row, w := range want {
		if math.Abs(sol.Dual(row)-w) > 1e-7 {
			t.Errorf("dual[%d] = %v, want %v", row, sol.Dual(row), w)
		}
	}
}

// TestStrongDuality: for LPs whose variables have no finite upper bounds,
// the optimal objective equals y·b exactly (variable bound duals vanish).
func TestStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		p := New(Minimize)
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = p.AddVar("x", 0.5+rng.Float64()*3, 0, Inf())
		}
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{vars[j], 0.25 + rng.Float64()*2})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{vars[rng.Intn(n)], 1})
			}
			b[i] = 1 + rng.Float64()*4
			p.AddConstraint("cover", terms, GE, b[i])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			continue
		}
		yb := 0.0
		for i := 0; i < m; i++ {
			yb += sol.Dual(i) * b[i]
		}
		if math.Abs(yb-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: y.b = %v, objective = %v", trial, yb, sol.Objective)
		}
		// Dual feasibility sign: for a covering min-LP (GE rows), shadow
		// prices are nonnegative.
		for i := 0; i < m; i++ {
			if sol.Dual(i) < -1e-7 {
				t.Fatalf("trial %d: negative dual %v on a GE row of a min problem", trial, sol.Dual(i))
			}
		}
	}
}

// TestDualsPredictObjectiveChange: perturbing a binding constraint's rhs by
// a small delta changes the optimum by dual*delta (no basis change for
// small enough delta).
func TestDualsPredictObjectiveChange(t *testing.T) {
	build := func(cap float64) (*Problem, int) {
		p := New(Maximize)
		x := p.AddVar("x", 3, 0, Inf())
		y := p.AddVar("y", 5, 0, Inf())
		p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
		p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
		row := p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, cap)
		return p, row
	}
	base, row := build(18)
	solBase := solveOrFatal(t, base)
	requireOptimal(t, solBase)
	dual := solBase.Dual(row)

	const delta = 0.25
	pert, _ := build(18 + delta)
	solPert := solveOrFatal(t, pert)
	requireOptimal(t, solPert)
	predicted := solBase.Objective + dual*delta
	if math.Abs(solPert.Objective-predicted) > 1e-7 {
		t.Fatalf("perturbed objective %v, dual-predicted %v", solPert.Objective, predicted)
	}
}

// TestDualsSignOnNegatedRows exercises the rhs-normalization path: a
// constraint entered with negative rhs must still report the shadow price
// in its original orientation.
func TestDualsSignOnNegatedRows(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5): dual of the row as written is
	// dObj/dRhs: raising rhs from -5 to -4 relaxes to x >= 4, objective
	// drops by 1 => dual = -1... in the original orientation -x <= rhs,
	// dObj/dRhs = -(-1)? Verify numerically instead of by convention.
	build := func(rhs float64) *Problem {
		p := New(Minimize)
		x := p.AddVar("x", 1, 0, Inf())
		p.AddConstraint("c", []Term{{x, -1}}, LE, rhs)
		return p
	}
	sol := solveOrFatal(t, build(-5))
	requireOptimal(t, sol)
	const delta = 0.5
	sol2 := solveOrFatal(t, build(-5+delta))
	requireOptimal(t, sol2)
	predicted := sol.Objective + sol.Dual(0)*delta
	if math.Abs(sol2.Objective-predicted) > 1e-8 {
		t.Fatalf("numeric slope %v, dual-predicted %v (dual=%v)",
			sol2.Objective-sol.Objective, sol.Dual(0)*delta, sol.Dual(0))
	}
}

// TestDualsEqualityRow: equality constraints carry duals too.
func TestDualsEqualityRow(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 2, 0, Inf())
	y := p.AddVar("y", 3, 0, Inf())
	row := p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	// All mass goes to the cheaper variable; marginal unit costs 2.
	if math.Abs(sol.Dual(row)-2) > 1e-7 {
		t.Fatalf("dual = %v, want 2", sol.Dual(row))
	}
}
