// Package lp implements a self-contained linear-programming solver.
//
// The paper this repository reproduces ("Network-Wide Deployment of
// Intrusion Detection and Prevention Systems", CoNEXT 2010) relies on CPLEX
// to solve its NIDS load-balancing LP (Section 2.2) and the LP relaxation of
// its NIPS mixed-integer program (Section 3.2). Go has no mainstream LP
// ecosystem, so this package provides the substrate: a two-phase primal
// simplex method over a dense tableau with native support for
// bounded variables (0 <= x <= u, u possibly +Inf, after an internal shift
// of general finite lower bounds).
//
// The solver is exact up to floating-point tolerances and is designed for
// the moderate problem sizes produced by the deployment planners (hundreds
// to a few thousand rows). It detects infeasibility and unboundedness, uses
// Dantzig pricing with an automatic switch to Bland's rule under prolonged
// degeneracy to guarantee termination, and applies a Harris-style tie-break
// in the ratio test that prefers numerically large pivots.
package lp

import (
	"errors"
	"fmt"
	"math"

	"nwdeploy/internal/obs"
)

// Sense selects the optimization direction of a Problem.
type Sense int

const (
	// Minimize selects minimization of the objective.
	Minimize Sense = iota
	// Maximize selects maximization of the objective.
	Maximize
)

// Op is the relational operator of a linear constraint.
type Op int

const (
	// LE constrains the linear form to be <= the right-hand side.
	LE Op = iota
	// GE constrains the linear form to be >= the right-hand side.
	GE
	// EQ constrains the linear form to equal the right-hand side.
	EQ
)

// String returns the conventional symbol for the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Var identifies a decision variable within a Problem. The zero value is a
// valid variable (the first one added).
type Var int

// Term is a single coefficient/variable product in a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Status describes the outcome of a Solve call.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraint system has no feasible point.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded over the feasible
	// region in the direction of optimization.
	StatusUnbounded
	// StatusIterLimit means the iteration budget was exhausted before the
	// solver could prove optimality.
	StatusIterLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotSolved is returned by accessors that require a prior successful
// Solve.
var ErrNotSolved = errors.New("lp: problem has not been solved to optimality")

// Typed sentinel errors. SolveOpts returns ErrNoVariables directly for a
// structurally empty problem; the model-outcome statuses map to the other
// sentinels via Status.Err, so callers that treat a non-optimal status as
// a failure can wrap the sentinel with %w and let their own callers match
// it with errors.Is instead of parsing status strings.
var (
	// ErrNoVariables reports a Problem with no decision variables.
	ErrNoVariables = errors.New("lp: problem has no variables")
	// ErrInfeasible reports a constraint system with no feasible point.
	ErrInfeasible = errors.New("lp: problem is infeasible")
	// ErrUnbounded reports an objective unbounded over the feasible region.
	ErrUnbounded = errors.New("lp: problem is unbounded")
	// ErrIterLimit reports an exhausted iteration budget.
	ErrIterLimit = errors.New("lp: iteration limit reached")
)

// Err maps the status to its sentinel error: nil for StatusOptimal,
// ErrInfeasible/ErrUnbounded/ErrIterLimit otherwise.
func (s Status) Err() error {
	switch s {
	case StatusOptimal:
		return nil
	case StatusInfeasible:
		return ErrInfeasible
	case StatusUnbounded:
		return ErrUnbounded
	case StatusIterLimit:
		return ErrIterLimit
	}
	return fmt.Errorf("lp: unknown status %d", int(s))
}

// Inf is a convenience for an unbounded-above variable limit.
func Inf() float64 { return math.Inf(1) }

type variable struct {
	name string
	cost float64
	lb   float64 // finite
	ub   float64 // may be +Inf; ub >= lb
}

type constraint struct {
	name  string
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. Build it with AddVar and
// AddConstraint, then call Solve. A Problem is not safe for concurrent use.
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
}

// New returns an empty problem with the given optimization sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar adds a decision variable with the given objective cost and bounds
// lb <= x <= ub. lb must be finite; ub may be +Inf. It returns the variable
// handle used in constraint terms.
func (p *Problem) AddVar(name string, cost, lb, ub float64) Var {
	if math.IsInf(lb, 0) || math.IsNaN(lb) {
		panic(fmt.Sprintf("lp: variable %q lower bound must be finite, got %v", name, lb))
	}
	if math.IsNaN(ub) || ub < lb {
		panic(fmt.Sprintf("lp: variable %q has invalid bounds [%v, %v]", name, lb, ub))
	}
	p.vars = append(p.vars, variable{name: name, cost: cost, lb: lb, ub: ub})
	return Var(len(p.vars) - 1)
}

// AddConstraint adds the linear constraint sum(terms) op rhs and returns its
// row index. Terms referring to the same variable are summed. Terms with
// out-of-range variables panic: they indicate a programming error in the
// model builder, not a data condition.
func (p *Problem) AddConstraint(name string, terms []Term, op Op, rhs float64) int {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	c := constraint{name: name, terms: append([]Term(nil), terms...), op: op, rhs: rhs}
	p.cons = append(p.cons, c)
	return len(p.cons) - 1
}

// Options tunes the solver. The zero value selects reasonable defaults.
type Options struct {
	// MaxIters bounds the total number of simplex iterations across both
	// phases. Zero selects a default proportional to problem size.
	MaxIters int
	// Tol is the feasibility/optimality tolerance. Zero selects 1e-9 for
	// feasibility checks and 1e-7 for reduced-cost optimality.
	Tol float64
	// Presolve enables fixed-variable substitution, singleton-row bound
	// tightening, and empty-row elimination before the simplex. Solutions
	// found under presolve carry no Duals (and no Basis: the reduced
	// model's columns do not map to the full column space).
	Presolve bool
	// WarmBasis, when non-nil, starts the solve from a previously captured
	// optimal basis (Solution.Basis) instead of the all-slack/artificial
	// initial basis. The basis must come from a problem of identical shape
	// — same variable count, same constraints with the same operators — as
	// arises when only the numeric data (volumes, capacities) changed; a
	// basis that no longer fits or is primal-infeasible for the new data is
	// silently discarded and the solve falls back to a cold start.
	// WarmBasis takes precedence over Presolve.
	WarmBasis *Basis
	// Metrics, when non-nil, receives solver observability: per-phase
	// pivot counts, Bland-rule activations, presolve eliminations, and
	// solve wall time. The registry is write-only — it never influences
	// pivoting — so solutions are identical with or without it (the nil
	// registry is the no-op default; see internal/obs).
	Metrics *obs.Registry
}

// Solution is the result of a Solve call.
type Solution struct {
	Status    Status
	Objective float64   // objective value in the problem's original sense
	X         []float64 // one value per variable, in AddVar order
	// Duals holds one shadow price per constraint (AddConstraint order):
	// the rate of change of the optimal objective per unit increase of
	// that constraint's right-hand side, in the problem's original sense.
	// Populated only at StatusOptimal. For a binding capacity constraint
	// in a maximization this is the marginal value of extra capacity —
	// the quantity the what-if provisioning analysis of the paper's
	// Section 5 needs.
	Duals []float64
	Iters int // simplex iterations used (both phases)
	// Basis is the optimal basis in the solver's column space, captured at
	// StatusOptimal on non-presolved solves (nil otherwise). Feed it to
	// Options.WarmBasis to re-solve a same-shaped problem with perturbed
	// data pivoting from this optimum instead of from scratch.
	Basis *Basis
	// Stats carries deterministic solve counters. They are derived from
	// the computation itself (never from the clock), so two solves of the
	// same problem report identical Stats regardless of Options.Metrics.
	Stats SolveStats
}

// SolveStats itemizes the work a Solve performed. All fields are
// deterministic functions of the problem and options.
type SolveStats struct {
	Phase1Iters int // simplex pivots spent reaching feasibility
	Phase2Iters int // simplex pivots spent optimizing
	// BlandActivations counts how many times prolonged degeneracy forced
	// the pricing rule from Dantzig to Bland (each activation lasts until
	// the next improving step).
	BlandActivations int
	// PresolveFixedVars and PresolveDroppedRows count the variables fixed
	// and rows retired by presolve (zero unless Options.Presolve).
	PresolveFixedVars   int
	PresolveDroppedRows int
}

// Dual returns the shadow price of constraint row (as returned by
// AddConstraint).
func (s *Solution) Dual(row int) float64 { return s.Duals[row] }

// Value returns the optimal value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// Solve optimizes the problem with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveOpts(Options{}) }

// SolveOpts optimizes the problem. An error is returned only for structural
// problems (no variables); infeasibility and unboundedness are reported via
// Solution.Status with a nil error so callers can distinguish model outcomes
// from programming errors.
func (p *Problem) SolveOpts(opts Options) (*Solution, error) {
	if len(p.vars) == 0 {
		return nil, ErrNoVariables
	}
	sp := opts.Metrics.StartSpan("lp.solve_ns")
	var sol *Solution
	var err error
	warmTried, warmUsed := false, false
	if opts.Presolve && opts.WarmBasis == nil {
		sol, err = solveWithPresolve(p, opts)
	} else {
		s := newSimplex(p, opts)
		if opts.WarmBasis != nil {
			warmTried = true
			warmUsed = s.installBasis(opts.WarmBasis)
			if !warmUsed {
				// The basis no longer fits (shape change, singularity, or
				// primal infeasibility at the new data); restart cold on a
				// fresh tableau.
				s = newSimplex(p, opts)
			}
		}
		sol, err = s.solve()
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	if m := opts.Metrics; m != nil {
		m.Add("lp.solves", 1)
		m.Add("lp.pivots_phase1", int64(sol.Stats.Phase1Iters))
		m.Add("lp.pivots_phase2", int64(sol.Stats.Phase2Iters))
		m.Add("lp.bland_activations", int64(sol.Stats.BlandActivations))
		m.Add("lp.presolve_fixed_vars", int64(sol.Stats.PresolveFixedVars))
		m.Add("lp.presolve_dropped_rows", int64(sol.Stats.PresolveDroppedRows))
		if warmTried {
			if warmUsed {
				m.Add("lp.warm_starts", 1)
			} else {
				m.Add("lp.warm_rejects", 1)
			}
		}
		if sol.Status != StatusOptimal {
			m.Add("lp.solves_"+sol.Status.String(), 1)
		}
	}
	return sol, nil
}
