package lp

import (
	"errors"
	"fmt"
	"testing"
)

func TestStatusErrSentinels(t *testing.T) {
	cases := []struct {
		status Status
		want   error
	}{
		{StatusOptimal, nil},
		{StatusInfeasible, ErrInfeasible},
		{StatusUnbounded, ErrUnbounded},
		{StatusIterLimit, ErrIterLimit},
	}
	for _, c := range cases {
		if got := c.status.Err(); !errors.Is(got, c.want) {
			t.Errorf("Status(%v).Err() = %v, want %v", c.status, got, c.want)
		}
	}
	if err := Status(99).Err(); err == nil {
		t.Error("unknown status must map to a non-nil error")
	}
}

func TestErrNoVariablesIsMatchable(t *testing.T) {
	p := New(Minimize)
	_, err := p.Solve()
	if !errors.Is(err, ErrNoVariables) {
		t.Fatalf("empty problem returned %v, want ErrNoVariables", err)
	}
}

func TestSentinelsSurviveWrapping(t *testing.T) {
	// The nips/core callers wrap Status.Err with %w; the chain must stay
	// matchable through arbitrary annotation layers.
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, Inf())
	_ = x
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
	wrapped := fmt.Errorf("planner: relaxation: %w", sol.Status.Err())
	wrapped = fmt.Errorf("outer: %w", wrapped)
	if !errors.Is(wrapped, ErrUnbounded) {
		t.Fatalf("%v does not match ErrUnbounded", wrapped)
	}
	if errors.Is(wrapped, ErrInfeasible) {
		t.Fatal("wrapped unbounded error matched ErrInfeasible")
	}
}

func TestInfeasibleStatusErr(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, 1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sol.Status.Err(), ErrInfeasible) {
		t.Fatalf("status %v Err() = %v, want ErrInfeasible", sol.Status, sol.Status.Err())
	}
}

func TestIterLimitStatusErr(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 3, 0, Inf())
	y := p.AddVar("y", 5, 0, Inf())
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := p.SolveOpts(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sol.Status.Err(), ErrIterLimit) {
		t.Fatalf("status %v Err() = %v, want ErrIterLimit", sol.Status, sol.Status.Err())
	}
}
