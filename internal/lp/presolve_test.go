package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveBoth(t *testing.T, p *Problem) (*Solution, *Solution) {
	t.Helper()
	plain, err := p.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := p.SolveOpts(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	return plain, pre
}

func TestPresolveMatchesPlainOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		p := New(Maximize)
		vars := make([]Var, n)
		for j := range vars {
			lo := 0.0
			hi := 1 + rng.Float64()*5
			if rng.Intn(5) == 0 {
				hi = lo // fixed variable, presolve fodder
			}
			vars[j] = p.AddVar("x", rng.Float64()*4-1, lo, hi)
		}
		m := 1 + rng.Intn(5)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(n)
			perm := rng.Perm(n)[:nt]
			var terms []Term
			for _, j := range perm {
				terms = append(terms, Term{vars[j], rng.Float64()*4 - 1})
			}
			op := []Op{LE, GE, EQ}[rng.Intn(3)]
			rhs := rng.Float64()*6 - 1
			if op == EQ {
				// Keep equalities satisfiable more often.
				rhs = math.Abs(rhs) / 2
			}
			p.AddConstraint("c", terms, op, rhs)
		}
		plain, pre := solveBoth(t, p)
		if plain.Status != pre.Status {
			t.Fatalf("trial %d: status %v (plain) vs %v (presolve)", trial, plain.Status, pre.Status)
		}
		if plain.Status != StatusOptimal {
			continue
		}
		if math.Abs(plain.Objective-pre.Objective) > 1e-6*(1+math.Abs(plain.Objective)) {
			t.Fatalf("trial %d: objective %v (plain) vs %v (presolve)", trial, plain.Objective, pre.Objective)
		}
	}
}

func TestPresolveFixedVariableSubstitution(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 3, 3) // fixed at 3
	y := p.AddVar("y", 2, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 10)
	_, pre := solveBoth(t, p)
	if pre.Status != StatusOptimal {
		t.Fatalf("status %v", pre.Status)
	}
	if pre.Value(x) != 3 || math.Abs(pre.Value(y)-7) > 1e-9 {
		t.Fatalf("x=%v y=%v, want 3, 7", pre.Value(x), pre.Value(y))
	}
	if math.Abs(pre.Objective-17) > 1e-9 {
		t.Fatalf("objective %v, want 17", pre.Objective)
	}
}

func TestPresolveSingletonRowsBecomeBounds(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, Inf())
	p.AddConstraint("lo", []Term{{x, 2}}, GE, 6) // x >= 3
	p.AddConstraint("hi", []Term{{x, -1}}, GE, -8)
	plain, pre := solveBoth(t, p)
	if plain.Status != StatusOptimal || pre.Status != StatusOptimal {
		t.Fatalf("statuses %v / %v", plain.Status, pre.Status)
	}
	if math.Abs(pre.Objective-3) > 1e-9 {
		t.Fatalf("objective %v, want 3", pre.Objective)
	}
}

func TestPresolveDetectsInfeasibleBounds(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, 2)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	_, pre := solveBoth(t, p)
	if pre.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", pre.Status)
	}
}

func TestPresolveDetectsInfeasibleEmptyRow(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 2, 2) // fixed
	p.AddConstraint("eq", []Term{{x, 1}}, EQ, 5)
	_, pre := solveBoth(t, p)
	if pre.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", pre.Status)
	}
}

func TestPresolveAllFixed(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 2, 1, 1)
	y := p.AddVar("y", 3, 2, 2)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 5)
	sol, err := p.SolveOpts(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.Objective != 8 {
		t.Fatalf("got %v obj=%v, want optimal 8", sol.Status, sol.Objective)
	}
}

func TestPresolveOmitsDuals(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}}, LE, 4)
	sol, err := p.SolveOpts(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Duals != nil {
		t.Fatal("presolved solution must not claim duals")
	}
}

func TestPresolveOnDeploymentShapedLP(t *testing.T) {
	// Shape: pinned ingress units (singleton equalities) mixed with free
	// path units — the case presolve targets.
	p := New(Minimize)
	lambda := p.AddVar("lambda", 1, 0, Inf())
	var loadTerms []Term
	for u := 0; u < 20; u++ {
		v := p.AddVar("pinned", 0, 0, 1)
		p.AddConstraint("cover", []Term{{v, 1}}, EQ, 1) // singleton
		loadTerms = append(loadTerms, Term{v, 0.01})
	}
	a := p.AddVar("a", 0, 0, 1)
	b := p.AddVar("b", 0, 0, 1)
	p.AddConstraint("coverAB", []Term{{a, 1}, {b, 1}}, EQ, 1)
	p.AddConstraint("load", append(append([]Term{}, loadTerms...), Term{a, 0.5}, Term{lambda, -1}), LE, 0)
	p.AddConstraint("load2", []Term{{b, 0.5}, {lambda, -1}}, LE, 0)
	plain, pre := solveBoth(t, p)
	if math.Abs(plain.Objective-pre.Objective) > 1e-8 {
		t.Fatalf("objectives differ: %v vs %v", plain.Objective, pre.Objective)
	}
	if pre.Iters >= plain.Iters && plain.Iters > 4 {
		t.Logf("note: presolve used %d iters vs %d plain (no strict guarantee)", pre.Iters, plain.Iters)
	}
}
