package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildDeploymentLP synthesizes a min-max load-balancing LP of the shape
// the NIDS planner emits: units x nodes coverage equalities plus per-node
// load rows.
func buildDeploymentLP(nodes, units int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := New(Minimize)
	lambda := p.AddVar("lambda", 1, 0, Inf())
	loadTerms := make([][]Term, nodes)
	for k := 0; k < units; k++ {
		sz := 2 + rng.Intn(3)
		perm := rng.Perm(nodes)[:sz]
		load := 0.5 + rng.Float64()*2
		cov := make([]Term, 0, sz)
		for _, nd := range perm {
			v := p.AddVar("d", 0, 0, 1)
			cov = append(cov, Term{v, 1})
			loadTerms[nd] = append(loadTerms[nd], Term{v, load})
		}
		p.AddConstraint("cover", cov, EQ, 1)
	}
	for nd := 0; nd < nodes; nd++ {
		p.AddConstraint("load", append([]Term{{lambda, -1}}, loadTerms[nd]...), LE, 0)
	}
	return p
}

// buildPackingLP synthesizes a NIPS-relaxation-shaped packing LP: coverage
// and coupling inequalities with capacity rows.
func buildPackingLP(nodes, rules, paths int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := New(Maximize)
	eVars := make([][]Var, rules)
	camTerms := make([][]Term, nodes)
	for i := 0; i < rules; i++ {
		eVars[i] = make([]Var, nodes)
		for j := 0; j < nodes; j++ {
			eVars[i][j] = p.AddVar("e", 0, 0, 1)
			camTerms[j] = append(camTerms[j], Term{eVars[i][j], 1})
		}
	}
	capTerms := make([][]Term, nodes)
	for i := 0; i < rules; i++ {
		for k := 0; k < paths; k++ {
			plen := 2 + rng.Intn(3)
			perm := rng.Perm(nodes)[:plen]
			cov := make([]Term, 0, plen)
			for pos, j := range perm {
				v := p.AddVar("d", rng.Float64()*float64(plen-pos), 0, 1)
				cov = append(cov, Term{v, 1})
				capTerms[j] = append(capTerms[j], Term{v, 1 + rng.Float64()})
				p.AddConstraint("couple", []Term{{v, 1}, {eVars[i][j], -1}}, LE, 0)
			}
			p.AddConstraint("cover", cov, LE, 1)
		}
	}
	for j := 0; j < nodes; j++ {
		p.AddConstraint("cam", camTerms[j], LE, float64(rules)/5)
		if len(capTerms[j]) > 0 {
			p.AddConstraint("cap", capTerms[j], LE, float64(paths)*0.8)
		}
	}
	return p
}

func BenchmarkSimplexDeploymentShaped(b *testing.B) {
	for _, size := range []struct{ nodes, units int }{
		{11, 100}, {22, 300}, {50, 600},
	} {
		b.Run(fmt.Sprintf("n%d_u%d", size.nodes, size.units), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := buildDeploymentLP(size.nodes, size.units, 7)
				sol, err := p.Solve()
				if err != nil || sol.Status != StatusOptimal {
					b.Fatalf("status %v err %v", sol.Status, err)
				}
				b.ReportMetric(float64(sol.Iters), "simplex-iters")
			}
		})
	}
}

func BenchmarkSimplexPackingShaped(b *testing.B) {
	for _, size := range []struct{ nodes, rules, paths int }{
		{11, 10, 10}, {22, 15, 12},
	} {
		b.Run(fmt.Sprintf("n%d_r%d_p%d", size.nodes, size.rules, size.paths), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := buildPackingLP(size.nodes, size.rules, size.paths, 3)
				sol, err := p.Solve()
				if err != nil || sol.Status != StatusOptimal {
					b.Fatalf("status %v err %v", sol.Status, err)
				}
				b.ReportMetric(float64(sol.Iters), "simplex-iters")
			}
		})
	}
}

func BenchmarkPresolveSpeedup(b *testing.B) {
	// A model with many pinned singletons: presolve should shrink it.
	build := func() *Problem {
		p := buildDeploymentLP(20, 150, 9)
		for i := 0; i < 100; i++ {
			v := p.AddVar("pinned", 0, 0, 1)
			p.AddConstraint("pin", []Term{{v, 1}}, EQ, 1)
		}
		return p
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := build().SolveOpts(Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("presolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := build().SolveOpts(Options{Presolve: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
