package lp

import (
	"fmt"
	"math"
)

// Presolve reductions: fixed-variable substitution, singleton-row bound
// tightening, and empty-row elimination, iterated to a fixpoint. The
// deployment LPs this repository builds contain many structural
// singletons (fully pinned ingress units, zero-capacity rules), and
// removing them before the simplex both shrinks the tableau and improves
// conditioning.
//
// Presolve is opt-in (Options.Presolve) because a reduced model cannot
// report duals for eliminated rows; Solutions produced under presolve have
// a nil Duals slice.

// presolveResult carries the reduced problem and the recovery mapping.
type presolveResult struct {
	reduced *Problem
	// varMap[i] is the reduced-problem index of original variable i, or -1
	// if the variable was fixed; fixedVal holds its value then.
	varMap   []int
	fixedVal []float64
	// status is StatusOptimal when reduction succeeded, StatusInfeasible
	// when presolve proved infeasibility outright.
	status Status
	// allFixed reports that no free variables remain: the reduced problem
	// is empty and the fixed values are the (unique) candidate solution.
	allFixed bool
	// fixedVars and droppedRows count the eliminations performed, for the
	// solve report (Solution.Stats) and the obs registry.
	fixedVars   int
	droppedRows int
}

const presolveTol = 1e-9

// presolve applies the reductions. It never loosens the model: every
// transformation preserves the feasible set exactly.
func presolve(p *Problem) *presolveResult {
	n := len(p.vars)
	lb := make([]float64, n)
	ub := make([]float64, n)
	for i, v := range p.vars {
		lb[i], ub[i] = v.lb, v.ub
	}

	type row struct {
		terms []Term
		op    Op
		rhs   float64
		live  bool
	}
	rows := make([]row, len(p.cons))
	for r, c := range p.cons {
		// Merge duplicate terms up front, keeping first-occurrence order:
		// term order decides downstream summation order, so iterating the
		// map here would make the optimum's last ULP vary run to run.
		sum := map[Var]float64{}
		order := make([]Var, 0, len(c.terms))
		for _, t := range c.terms {
			if _, seen := sum[t.Var]; !seen {
				order = append(order, t.Var)
			}
			sum[t.Var] += t.Coef
		}
		var terms []Term
		for _, v := range order {
			if coef := sum[v]; coef != 0 {
				terms = append(terms, Term{v, coef})
			}
		}
		rows[r] = row{terms: terms, op: c.op, rhs: c.rhs, live: true}
	}

	res := &presolveResult{status: StatusOptimal}
	changed := true
	for changed {
		changed = false
		// Bound sanity.
		for i := 0; i < n; i++ {
			if lb[i] > ub[i]+presolveTol {
				res.status = StatusInfeasible
				return res
			}
		}
		for r := range rows {
			if !rows[r].live {
				continue
			}
			// Drop terms of variables already fixed (lb == ub): fold them
			// into the rhs.
			kept := rows[r].terms[:0]
			for _, t := range rows[r].terms {
				if ub[t.Var]-lb[t.Var] <= presolveTol {
					rows[r].rhs -= t.Coef * lb[t.Var]
					changed = true
					continue
				}
				kept = append(kept, t)
			}
			rows[r].terms = kept

			switch len(rows[r].terms) {
			case 0:
				// Empty row: either trivially satisfied or infeasible.
				ok := false
				switch rows[r].op {
				case LE:
					ok = 0 <= rows[r].rhs+presolveTol
				case GE:
					ok = 0 >= rows[r].rhs-presolveTol
				case EQ:
					ok = math.Abs(rows[r].rhs) <= presolveTol
				}
				if !ok {
					res.status = StatusInfeasible
					return res
				}
				rows[r].live = false
				changed = true
			case 1:
				// Singleton row: translate into a bound and retire the row.
				t := rows[r].terms[0]
				bound := rows[r].rhs / t.Coef
				op := rows[r].op
				if t.Coef < 0 {
					switch op {
					case LE:
						op = GE
					case GE:
						op = LE
					}
				}
				switch op {
				case LE:
					if bound < ub[t.Var] {
						ub[t.Var] = bound
					}
				case GE:
					if bound > lb[t.Var] {
						lb[t.Var] = bound
					}
				case EQ:
					if bound < lb[t.Var]-presolveTol || bound > ub[t.Var]+presolveTol {
						res.status = StatusInfeasible
						return res
					}
					lb[t.Var], ub[t.Var] = bound, bound
				}
				rows[r].live = false
				changed = true
			}
		}
	}

	// Build the reduced problem.
	res.varMap = make([]int, n)
	res.fixedVal = make([]float64, n)
	reduced := New(p.sense)
	for i, v := range p.vars {
		if ub[i]-lb[i] <= presolveTol {
			res.varMap[i] = -1
			res.fixedVal[i] = lb[i]
			res.fixedVars++
			continue
		}
		res.varMap[i] = reduced.NumVars()
		reduced.AddVar(v.name, v.cost, lb[i], ub[i])
	}
	for r := range rows {
		if !rows[r].live {
			res.droppedRows++
			continue
		}
		terms := make([]Term, 0, len(rows[r].terms))
		for _, t := range rows[r].terms {
			terms = append(terms, Term{Var(res.varMap[t.Var]), t.Coef})
		}
		reduced.AddConstraint(p.cons[r].name, terms, rows[r].op, rows[r].rhs)
	}
	res.reduced = reduced
	res.allFixed = reduced.NumVars() == 0
	return res
}

// solveWithPresolve reduces, solves, and maps the solution back to the
// original variable space.
func solveWithPresolve(p *Problem, opts Options) (*Solution, error) {
	res := presolve(p)
	if res.status == StatusInfeasible {
		return &Solution{Status: StatusInfeasible}, nil
	}

	objective := func(x []float64) float64 {
		var obj float64
		for i, v := range p.vars {
			obj += v.cost * x[i]
		}
		return obj
	}

	presolveStats := SolveStats{
		PresolveFixedVars:   res.fixedVars,
		PresolveDroppedRows: res.droppedRows,
	}

	if res.allFixed {
		// Everything pinned: validate the unique candidate against the
		// original constraints (presolve retired them all, so they hold by
		// construction, but verify defensively).
		x := append([]float64(nil), res.fixedVal...)
		return &Solution{Status: StatusOptimal, Objective: objective(x), X: x, Stats: presolveStats}, nil
	}

	// Metrics intentionally absent from the inner options: the outer
	// SolveOpts records the combined stats exactly once.
	inner := Options{MaxIters: opts.MaxIters, Tol: opts.Tol}
	sol, err := res.reduced.SolveOpts(inner)
	if err != nil {
		return nil, fmt.Errorf("lp: presolved model: %w", err)
	}
	stats := sol.Stats
	stats.PresolveFixedVars = res.fixedVars
	stats.PresolveDroppedRows = res.droppedRows
	if sol.Status != StatusOptimal {
		return &Solution{Status: sol.Status, Iters: sol.Iters, Stats: stats}, nil
	}
	x := make([]float64, len(p.vars))
	for i := range x {
		if res.varMap[i] < 0 {
			x[i] = res.fixedVal[i]
		} else {
			x[i] = sol.X[res.varMap[i]]
		}
	}
	return &Solution{
		Status:    StatusOptimal,
		Objective: objective(x),
		X:         x,
		Iters:     sol.Iters,
		Stats:     stats,
		// Duals intentionally omitted: rows eliminated by presolve have no
		// representative in the reduced basis.
	}, nil
}
