package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceLP exhaustively enumerates candidate vertices of a small LP in
// inequality form (A x <= b, 0 <= x <= u) by solving every n x n subsystem
// drawn from the active-set candidates {rows of A} ∪ {x_j = 0} ∪ {x_j = u_j}
// and keeping the best feasible point. Exponential — only for tiny n, m.
func bruteForceLP(c []float64, a [][]float64, b []float64, u []float64, maximize bool) (float64, bool) {
	n := len(c)
	// Candidate hyperplanes: each row of A (= b), each bound.
	type plane struct {
		coef []float64
		rhs  float64
	}
	var planes []plane
	for i := range a {
		planes = append(planes, plane{a[i], b[i]})
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		planes = append(planes, plane{lo, 0})
		if !math.IsInf(u[j], 1) {
			hi := make([]float64, n)
			hi[j] = 1
			planes = append(planes, plane{hi, u[j]})
		}
	}
	feasible := func(x []float64) bool {
		for j := 0; j < n; j++ {
			if x[j] < -1e-7 || x[j] > u[j]+1e-7 {
				return false
			}
		}
		for i := range a {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if s > b[i]+1e-7 {
				return false
			}
		}
		return true
	}
	best := math.Inf(-1)
	if !maximize {
		best = math.Inf(1)
	}
	found := false
	// Enumerate all n-subsets of planes (n <= 3 in practice).
	var idx []int
	var recurse func(start int)
	solve := func() {
		// Gaussian elimination on the n x n system.
		mat := make([][]float64, n)
		for r := 0; r < n; r++ {
			mat[r] = append(append([]float64{}, planes[idx[r]].coef...), planes[idx[r]].rhs)
		}
		for col := 0; col < n; col++ {
			piv := -1
			for r := col; r < n; r++ {
				if math.Abs(mat[r][col]) > 1e-9 && (piv < 0 || math.Abs(mat[r][col]) > math.Abs(mat[piv][col])) {
					piv = r
				}
			}
			if piv < 0 {
				return // singular
			}
			mat[col], mat[piv] = mat[piv], mat[col]
			f := mat[col][col]
			for k := col; k <= n; k++ {
				mat[col][k] /= f
			}
			for r := 0; r < n; r++ {
				if r == col {
					continue
				}
				g := mat[r][col]
				if g == 0 {
					continue
				}
				for k := col; k <= n; k++ {
					mat[r][k] -= g * mat[col][k]
				}
			}
		}
		x := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = mat[r][n]
		}
		if !feasible(x) {
			return
		}
		found = true
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += c[j] * x[j]
		}
		if maximize && obj > best {
			best = obj
		}
		if !maximize && obj < best {
			best = obj
		}
	}
	recurse = func(start int) {
		if len(idx) == n {
			solve()
			return
		}
		for i := start; i < len(planes); i++ {
			idx = append(idx, i)
			recurse(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	recurse(0)
	// Also check the origin (all at lower bound) in case n planes never
	// intersect feasibly but the box corner is feasible (it is one of the
	// enumerated vertices when bounds are planes, so this is redundant but
	// cheap insurance).
	if x0 := make([]float64, n); feasible(x0) {
		found = true
		if maximize {
			best = math.Max(best, 0)
		} else {
			best = math.Min(best, 0)
		}
	}
	return best, found
}

// TestRandomLPsAgainstBruteForce generates random small LPs with bounded
// feasible regions and verifies the simplex optimum matches exhaustive
// vertex enumeration.
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(2) // 2 or 3 variables
		m := 1 + rng.Intn(4) // 1..4 constraints
		c := make([]float64, n)
		u := make([]float64, n)
		for j := range c {
			c[j] = math.Round((rng.Float64()*10-5)*4) / 4
			u[j] = math.Round(rng.Float64()*8*4)/4 + 0.25 // finite => bounded region
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = math.Round((rng.Float64()*6-2)*4) / 4
			}
			b[i] = math.Round((rng.Float64()*10-1)*4) / 4
		}
		maximize := rng.Intn(2) == 0

		sense := Minimize
		if maximize {
			sense = Maximize
		}
		p := New(sense)
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddVar("x", c[j], 0, u[j])
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if a[i][j] != 0 {
					terms = append(terms, Term{vars[j], a[i][j]})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint("c", terms, LE, b[i])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceLP(c, a, b, u, maximize)
		if !feasible {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: brute force says infeasible, solver says %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, brute force found optimum %v", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: objective %v, brute force %v (n=%d m=%d max=%v c=%v a=%v b=%v u=%v)",
				trial, sol.Objective, want, n, m, maximize, c, a, b, u)
		}
		// The returned point must itself be feasible.
		for i := 0; i < m; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * sol.X[j]
			}
			if s > b[i]+1e-6 {
				t.Fatalf("trial %d: solution violates constraint %d by %v", trial, i, s-b[i])
			}
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-6 || sol.X[j] > u[j]+1e-6 {
				t.Fatalf("trial %d: solution violates bounds on var %d: %v not in [0,%v]", trial, j, sol.X[j], u[j])
			}
		}
	}
}

// TestQuickFeasibilityInvariant: for random feasible covering problems the
// solver always returns a point satisfying every constraint.
func TestQuickFeasibilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := New(Minimize)
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddVar("x", 1+rng.Float64()*3, 0, Inf())
		}
		m := 1 + rng.Intn(4)
		type row struct {
			coef []float64
			rhs  float64
		}
		rows := make([]row, m)
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			nonzero := false
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					coef[j] = 0.5 + rng.Float64()*2
					nonzero = true
				}
			}
			if !nonzero {
				coef[rng.Intn(n)] = 1
			}
			rows[i] = row{coef, 1 + rng.Float64()*5}
			terms := make([]Term, 0, n)
			for j, cf := range coef {
				if cf != 0 {
					terms = append(terms, Term{vars[j], cf})
				}
			}
			p.AddConstraint("cover", terms, GE, rows[i].rhs)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			return false // covering with nonneg coefs and rhs>0 is always feasible
		}
		for _, r := range rows {
			s := 0.0
			for j := 0; j < n; j++ {
				s += r.coef[j] * sol.X[j]
			}
			if s < r.rhs-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEqualitySplitInvariant mirrors the paper's coverage equality
// Eq. (1): random "coordination units" must be split exactly across eligible
// nodes, and the reported objective must equal the recomputed max load.
func TestQuickEqualitySplitInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		nodes := 2 + rng.Intn(4)
		units := 1 + rng.Intn(6)
		p := New(Minimize)
		lambda := p.AddVar("lambda", 1, 0, Inf())
		type unitVar struct {
			v    Var
			node int
			load float64
		}
		var all [][]unitVar
		loadTerms := make([][]Term, nodes)
		for k := 0; k < units; k++ {
			sz := 1 + rng.Intn(nodes)
			perm := rng.Perm(nodes)[:sz]
			load := 0.5 + rng.Float64()*3
			var uvs []unitVar
			var cov []Term
			for _, nd := range perm {
				v := p.AddVar("d", 0, 0, 1)
				uvs = append(uvs, unitVar{v, nd, load})
				cov = append(cov, Term{v, 1})
				loadTerms[nd] = append(loadTerms[nd], Term{v, load})
			}
			p.AddConstraint("cov", cov, EQ, 1)
			all = append(all, uvs)
		}
		for nd := 0; nd < nodes; nd++ {
			terms := append([]Term{{lambda, -1}}, loadTerms[nd]...)
			p.AddConstraint("load", terms, LE, 0)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		// Coverage sums to 1 per unit.
		nodeLoad := make([]float64, nodes)
		for _, uvs := range all {
			sum := 0.0
			for _, uv := range uvs {
				val := sol.Value(uv.v)
				if val < -1e-7 || val > 1+1e-7 {
					return false
				}
				sum += val
				nodeLoad[uv.node] += val * uv.load
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		maxLoad := 0.0
		for _, l := range nodeLoad {
			maxLoad = math.Max(maxLoad, l)
		}
		return math.Abs(maxLoad-sol.Objective) < 1e-5*(1+maxLoad)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestLargeSparseLPPerformanceSmoke checks the solver handles a mid-size
// structured instance (a few hundred rows) in reasonable time and returns a
// feasible optimum.
func TestLargeSparseLPPerformanceSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes, units := 12, 120
	p := New(Minimize)
	lambda := p.AddVar("lambda", 1, 0, Inf())
	loadTerms := make([][]Term, nodes)
	for k := 0; k < units; k++ {
		sz := 2 + rng.Intn(3)
		perm := rng.Perm(nodes)[:sz]
		load := 0.5 + rng.Float64()*2
		var cov []Term
		for _, nd := range perm {
			v := p.AddVar("d", 0, 0, 1)
			cov = append(cov, Term{v, 1})
			loadTerms[nd] = append(loadTerms[nd], Term{v, load})
		}
		p.AddConstraint("cov", cov, EQ, 1)
	}
	for nd := 0; nd < nodes; nd++ {
		terms := append([]Term{{lambda, -1}}, loadTerms[nd]...)
		p.AddConstraint("load", terms, LE, 0)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective <= 0 {
		t.Fatalf("objective = %v, want > 0", sol.Objective)
	}
}
