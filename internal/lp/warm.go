package lp

import "math"

// Warm starting: the deployment planner re-solves its placement LP every
// few minutes against slightly perturbed traffic volumes (the paper's
// Section 5 "Traffic changes" cadence). The optimal basis of the previous
// solve is almost always primal-feasible — and near-optimal — for the new
// data, because the column space is a pure function of the problem's
// *shape* (variables, rows, operators), not of its numbers. Re-solving
// from that basis skips phase 1 entirely and typically needs a handful of
// phase-2 pivots instead of hundreds.

// Basis is a simplex basis snapshot in the solver's total column space:
// structural variables first (AddVar order), then one slack/surplus column
// per inequality row, then one artificial per GE/EQ row. A Basis captured
// from one solve (Solution.Basis) can warm-start any problem with the same
// shape via Options.WarmBasis.
type Basis struct {
	// Cols and Rows pin the column space the basis lives in; a solve
	// rejects a basis whose dimensions do not match its own tableau.
	Cols, Rows int
	// Basic holds the column basic in each row, in row order.
	Basic []int
	// AtUpper lists the nonbasic columns resting at a finite upper bound;
	// all other nonbasic columns rest at their (shifted) lower bound.
	AtUpper []int
}

// Clone returns a deep copy, detaching the snapshot from any later reuse.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		Cols:    b.Cols,
		Rows:    b.Rows,
		Basic:   append([]int(nil), b.Basic...),
		AtUpper: append([]int(nil), b.AtUpper...),
	}
}

// captureBasis snapshots the current basis and bound states.
func (s *simplex) captureBasis() *Basis {
	b := &Basis{Cols: s.nTotal, Rows: s.m, Basic: append([]int(nil), s.basis...)}
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == atUpper {
			b.AtUpper = append(b.AtUpper, j)
		}
	}
	return b
}

// installBasis pivots the construction-time tableau onto the given basis
// and validates primal feasibility of the resulting point. On success the
// solver is flagged warm — phase 1 is skipped and artificials stay frozen
// at zero. On failure (dimension mismatch, singular basis, infeasible
// point) it returns false with the tableau left mid-transformation: the
// caller must rebuild the simplex for a cold start.
func (s *simplex) installBasis(b *Basis) bool {
	if b == nil || b.Cols != s.nTotal || b.Rows != s.m || len(b.Basic) != s.m {
		return false
	}
	want := make([]bool, s.nTotal)
	for _, j := range b.Basic {
		if j < 0 || j >= s.nTotal || want[j] {
			return false
		}
		want[j] = true
	}
	upper := make([]bool, s.nTotal)
	for _, j := range b.AtUpper {
		if j < 0 || j >= s.nTotal || want[j] {
			return false
		}
		upper[j] = true
	}

	// Pivot each wanted column into a row currently held by an unwanted
	// basic, choosing the largest available pivot. Passes repeat because a
	// wanted column can gain usable magnitude in a row only after earlier
	// pivots; each pass either finishes the basis or strictly shrinks the
	// missing set, so termination is bounded by the row count.
	const pivTol = 1e-7
	for {
		progress, missing := false, false
		for _, j := range b.Basic {
			if s.state[j] == basic {
				continue
			}
			best, bestA := -1, pivTol
			for r := 0; r < s.m; r++ {
				if want[s.basis[r]] {
					continue // row already owned by a wanted column
				}
				if a := math.Abs(s.tab[r*s.stride+j]); a > bestA {
					best, bestA = r, a
				}
			}
			if best < 0 {
				missing = true
				continue
			}
			old := s.basis[best]
			s.pivot(best, j)
			s.basis[best] = j
			s.state[j] = basic
			s.state[old] = atLower
			progress = true
		}
		if !missing {
			break
		}
		if !progress {
			return false // singular: a wanted column admits no pivot
		}
	}

	// Freeze artificials exactly as a completed phase 1 would: a basic
	// artificial (redundant row) may stay, pinned to zero. This must happen
	// before bound-state restoration — the donor solve records zero-width
	// artificials it bound-flipped as AtUpper, and restoring them against
	// the construction-time infinite bound would demote them to atLower and
	// replay every one of those degenerate flips.
	for j := s.firstArt; j < s.nTotal; j++ {
		s.ub[j] = 0
	}
	// Nonbasic bound states per the snapshot. A recorded atUpper column
	// whose bound is infinite here (shape drift the dimension check cannot
	// see) falls back to atLower; the feasibility check below arbitrates.
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] == basic {
			continue
		}
		if upper[j] && !math.IsInf(s.ub[j], 1) {
			s.state[j] = atUpper
		} else {
			s.state[j] = atLower
		}
	}

	if !s.repairBounds(math.Max(1e-7, s.tol*100)) {
		return false
	}
	s.warm = true
	return true
}

// repairBounds restores primal feasibility after a basis install. When the
// replanned problem's constraint coefficients (not just its rhs) moved, the
// old basis maps to a slightly different primal point, and basic variables
// that rested exactly on a bound drift just outside it. Each repair demotes
// such a variable to the violated bound and pivots the row's numerically
// best nonbasic column into the basis in its place — the bounded-variable
// analogue of a crash repair. Passes are capped; the final exact check is
// the arbiter, so a repair that fails to converge simply rejects the warm
// start and the caller solves cold.
func (s *simplex) repairBounds(feasTol float64) bool {
	const pivTol = 1e-7
	for pass := 0; pass < 4; pass++ {
		s.refreshBeta()
		clean := true
		for r := 0; r < s.m; r++ {
			v := s.beta[r]
			b := s.basis[r]
			var demote varState
			if v < -feasTol {
				demote = atLower
			} else if u := s.ub[b]; !math.IsInf(u, 1) && v > u+feasTol {
				demote = atUpper
			} else {
				continue
			}
			clean = false
			best, bestA := -1, pivTol
			for j := 0; j < s.nTotal; j++ {
				if s.state[j] == basic || s.ub[j] == 0 {
					continue // fixed columns (frozen artificials) cannot absorb
				}
				if a := math.Abs(s.tab[r*s.stride+j]); a > bestA {
					best, bestA = j, a
				}
			}
			if best < 0 {
				return false
			}
			s.pivot(r, best)
			s.basis[r] = best
			s.state[best] = basic
			s.state[b] = demote
		}
		if clean {
			return true
		}
	}
	s.refreshBeta()
	for r := 0; r < s.m; r++ {
		v := s.beta[r]
		if v < -feasTol {
			return false
		}
		if u := s.ub[s.basis[r]]; !math.IsInf(u, 1) && v > u+feasTol {
			return false
		}
	}
	return true
}
