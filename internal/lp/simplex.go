package lp

import (
	"math"
)

// varState tracks where a variable currently sits.
type varState int8

const (
	atLower varState = iota // nonbasic at its (shifted) lower bound 0
	atUpper                 // nonbasic at its finite upper bound
	basic                   // basic; value held in beta for its row
)

// simplex is a dense-tableau, bounded-variable, two-phase primal simplex.
//
// Internal form: all variables are shifted so lower bounds are 0; every
// constraint row is an equality after adding a slack (LE) or surplus (GE)
// column; rows are normalized to nonnegative right-hand sides; artificial
// variables complete the initial basis for rows whose slack cannot serve.
//
// The tableau T holds B^-1*A (including slack/artificial columns) plus the
// transformed right-hand side B^-1*b in the final column. The vector beta
// holds the *current values* of the basic variables, which differ from the
// rhs column whenever some nonbasic variable rests at a finite upper bound;
// beta is updated incrementally each step and refreshed exactly from the
// rhs column at intervals to stop floating-point drift.
type simplex struct {
	nStruct int // structural variables
	nTotal  int // structural + slack/surplus + artificial
	m       int // rows
	stride  int // nTotal + 1 (rhs column)

	tab  []float64 // m * stride dense tableau
	cost []float64 // nTotal reduced costs for the current phase
	ub   []float64 // nTotal upper bounds (shifted space)

	objCost []float64 // nTotal phase-2 costs (internal minimize space)

	basis []int      // m: variable index basic in each row
	state []varState // nTotal
	beta  []float64  // m: current basic values

	firstArt int // index of first artificial column; nTotal if none

	// Original-problem bookkeeping for solution extraction.
	lbShift  []float64 // per structural var
	objConst float64   // constant added to objective by the shift
	negate   bool      // problem was a maximization
	rowFlip  []bool    // row was negated during rhs normalization
	rowUnit  []int     // +1 unit column per row (slack or artificial)

	tol      float64
	maxIters int
	iters    int

	degenStreak int // consecutive (near-)zero-step iterations
	blandCount  int // times the degeneracy streak forced Bland's rule on

	// warm records that installBasis succeeded: the current basis is
	// primal-feasible with artificials frozen at zero, so solve skips
	// phase 1 outright.
	warm bool
}

const degenSwitch = 400 // switch to Bland's rule after this many degenerate steps

func newSimplex(p *Problem, opts Options) *simplex {
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}

	n := len(p.vars)
	m := len(p.cons)

	s := &simplex{
		nStruct: n,
		m:       m,
		tol:     tol,
		negate:  p.sense == Maximize,
	}

	// Shift variables to zero lower bounds; record per-row rhs adjustments.
	s.lbShift = make([]float64, n)
	ub := make([]float64, 0, n+2*m)
	cost := make([]float64, 0, n+2*m)
	for i, v := range p.vars {
		s.lbShift[i] = v.lb
		ub = append(ub, v.ub-v.lb)
		c := v.cost
		if s.negate {
			c = -c
		}
		cost = append(cost, c)
		s.objConst += v.cost * v.lb
	}

	// Dense row data with rhs adjusted for the shift and summed duplicate
	// terms, then normalized to rhs >= 0.
	type rowSpec struct {
		coef []float64 // length n (structural only)
		op   Op
		rhs  float64
	}
	rows := make([]rowSpec, m)
	s.rowFlip = make([]bool, m)
	for r, c := range p.cons {
		coef := make([]float64, n)
		rhs := c.rhs
		for _, t := range c.terms {
			coef[t.Var] += t.Coef
			rhs -= t.Coef * s.lbShift[t.Var]
		}
		op := c.op
		if rhs < 0 {
			s.rowFlipSet(r)
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[r] = rowSpec{coef: coef, op: op, rhs: rhs}
	}

	// Assign slack/surplus columns, then artificial columns.
	slackCol := make([]int, m)  // -1 if none
	slackSign := make([]int, m) // +1 slack, -1 surplus
	next := n
	for r := range rows {
		switch rows[r].op {
		case LE:
			slackCol[r], slackSign[r] = next, +1
			next++
		case GE:
			slackCol[r], slackSign[r] = next, -1
			next++
		default:
			slackCol[r] = -1
		}
	}
	s.firstArt = next
	artCol := make([]int, m) // -1 if the slack can start basic
	for r := range rows {
		if rows[r].op == LE {
			artCol[r] = -1 // slack starts basic at rhs >= 0
		} else {
			artCol[r] = next
			next++
		}
	}
	s.nTotal = next
	s.stride = next + 1

	// Record the +1 unit column of each row for dual recovery: the
	// artificial where present, else the (+1) slack of an LE row.
	s.rowUnit = make([]int, m)
	for r := range rows {
		if artCol[r] >= 0 {
			s.rowUnit[r] = artCol[r]
		} else {
			s.rowUnit[r] = slackCol[r]
		}
	}

	// Extend bounds/costs to slack+artificial columns.
	for len(ub) < s.nTotal {
		ub = append(ub, math.Inf(1))
		cost = append(cost, 0)
	}
	s.ub = ub
	s.objCost = cost

	// Build the tableau.
	s.tab = make([]float64, m*s.stride)
	for r := range rows {
		row := s.tab[r*s.stride : (r+1)*s.stride]
		copy(row, rows[r].coef)
		if slackCol[r] >= 0 {
			row[slackCol[r]] = float64(slackSign[r])
		}
		if artCol[r] >= 0 {
			row[artCol[r]] = 1
		}
		row[s.nTotal] = rows[r].rhs
	}

	// Initial basis and states.
	s.basis = make([]int, m)
	s.state = make([]varState, s.nTotal)
	s.beta = make([]float64, m)
	for r := range rows {
		b := artCol[r]
		if b < 0 {
			b = slackCol[r]
		}
		s.basis[r] = b
		s.state[b] = basic
		s.beta[r] = rows[r].rhs
	}

	s.maxIters = opts.MaxIters
	if s.maxIters == 0 {
		s.maxIters = 200*(m+s.nTotal) + 20000
	}
	return s
}

// phase1Costs loads the phase-1 objective (sum of artificials) as reduced
// costs relative to the initial basis.
func (s *simplex) phase1Costs() {
	s.cost = make([]float64, s.nTotal)
	// c_j - sum_i c_B(i) T[i][j], with c = 1 on artificials, 0 elsewhere.
	// Initially T = A and the only basic artificials are in their own rows,
	// so the reduced cost of column j is -sum over artificial rows of A[r][j]
	// (and 0 for the artificial columns themselves).
	for r := 0; r < s.m; r++ {
		if s.basis[r] < s.firstArt {
			continue
		}
		row := s.tab[r*s.stride : r*s.stride+s.nTotal]
		for j, a := range row {
			if a != 0 {
				s.cost[j] -= a
			}
		}
	}
	for j := s.firstArt; j < s.nTotal; j++ {
		s.cost[j]++ // own cost 1; cancels the -1 picked up above when basic
	}
	// Basic columns must have zero reduced cost exactly.
	for _, b := range s.basis {
		s.cost[b] = 0
	}
}

// phase2Costs recomputes reduced costs for the real objective against the
// current basis: rc_j = c_j - sum_i c_B(i) * T[i][j].
func (s *simplex) phase2Costs() {
	s.cost = make([]float64, s.nTotal)
	copy(s.cost, s.objCost)
	for r := 0; r < s.m; r++ {
		cb := s.objCost[s.basis[r]]
		if cb == 0 {
			continue
		}
		row := s.tab[r*s.stride : r*s.stride+s.nTotal]
		for j, a := range row {
			if a != 0 {
				s.cost[j] -= cb * a
			}
		}
	}
	for _, b := range s.basis {
		s.cost[b] = 0
	}
}

// refreshBeta recomputes current basic values exactly from the transformed
// rhs column and the set of nonbasic-at-upper variables.
func (s *simplex) refreshBeta() {
	for r := 0; r < s.m; r++ {
		s.beta[r] = s.tab[r*s.stride+s.nTotal]
	}
	for j := 0; j < s.nTotal; j++ {
		if s.state[j] != atUpper {
			continue
		}
		u := s.ub[j]
		for r := 0; r < s.m; r++ {
			if a := s.tab[r*s.stride+j]; a != 0 {
				s.beta[r] -= a * u
			}
		}
	}
}

// price selects an entering variable. dir=+1 means the variable will
// increase from its lower bound; dir=-1 means it will decrease from its
// upper bound. Returns j=-1 at optimality.
func (s *simplex) price(bland bool) (j, dir int) {
	j, dir = -1, 0
	rcTol := math.Max(s.tol, 1e-7)
	if bland {
		for k := 0; k < s.nTotal; k++ {
			switch s.state[k] {
			case atLower:
				if s.cost[k] < -rcTol {
					return k, +1
				}
			case atUpper:
				if s.cost[k] > rcTol {
					return k, -1
				}
			}
		}
		return -1, 0
	}
	best := rcTol
	for k := 0; k < s.nTotal; k++ {
		switch s.state[k] {
		case atLower:
			if rc := -s.cost[k]; rc > best {
				best, j, dir = rc, k, +1
			}
		case atUpper:
			if rc := s.cost[k]; rc > best {
				best, j, dir = rc, k, -1
			}
		}
	}
	return j, dir
}

// ratio runs the bounded-variable ratio test for entering column j moving
// with direction dir. It returns the step length t, the limiting row (or -1
// for a bound flip on the entering variable), and whether the leaving basic
// variable exits at its upper bound.
func (s *simplex) ratio(j, dir int) (t float64, limRow int, leaveUpper bool, unbounded bool) {
	const pivTol = 1e-8
	t = s.ub[j] // bound-flip distance; may be +Inf
	limRow = -1
	d := float64(dir)
	bestPiv := 0.0
	for r := 0; r < s.m; r++ {
		a := d * s.tab[r*s.stride+j]
		if a > pivTol {
			// Basic variable decreases toward 0.
			tr := s.beta[r] / a
			if tr < 0 {
				tr = 0
			}
			if tr < t-1e-9 || (tr < t+1e-9 && math.Abs(a) > bestPiv && limRow >= 0) {
				t, limRow, leaveUpper, bestPiv = tr, r, false, math.Abs(a)
			}
		} else if a < -pivTol {
			ubB := s.ub[s.basis[r]]
			if math.IsInf(ubB, 1) {
				continue
			}
			// Basic variable increases toward its upper bound.
			tr := (ubB - s.beta[r]) / (-a)
			if tr < 0 {
				tr = 0
			}
			if tr < t-1e-9 || (tr < t+1e-9 && math.Abs(a) > bestPiv && limRow >= 0) {
				t, limRow, leaveUpper, bestPiv = tr, r, true, math.Abs(a)
			}
		}
	}
	if math.IsInf(t, 1) {
		return 0, -1, false, true
	}
	return t, limRow, leaveUpper, false
}

// pivot performs the elimination step making column j basic in row r.
func (s *simplex) pivot(r, j int) {
	stride := s.stride
	prow := s.tab[r*stride : (r+1)*stride]
	piv := prow[j]
	inv := 1 / piv
	for k := range prow {
		prow[k] *= inv
	}
	prow[j] = 1 // exact
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		row := s.tab[i*stride : (i+1)*stride]
		f := row[j]
		if f == 0 {
			continue
		}
		for k := range row {
			row[k] -= f * prow[k]
		}
		row[j] = 0 // exact
	}
	// Cost row (absent during installBasis, before a phase loads one).
	if s.cost == nil {
		return
	}
	if f := s.cost[j]; f != 0 {
		for k := 0; k < s.nTotal; k++ {
			s.cost[k] -= f * prow[k]
		}
		s.cost[j] = 0
	}
}

// iterate runs simplex iterations on the current phase objective until
// optimality, unboundedness, or the iteration limit.
func (s *simplex) iterate() Status {
	sinceRefresh := 0
	for {
		if s.iters >= s.maxIters {
			return StatusIterLimit
		}
		s.iters++
		sinceRefresh++
		if sinceRefresh >= 128 {
			s.refreshBeta()
			sinceRefresh = 0
		}

		j, dir := s.price(s.degenStreak > degenSwitch)
		if j < 0 {
			return StatusOptimal
		}
		t, limRow, leaveUpper, unbounded := s.ratio(j, dir)
		if unbounded {
			return StatusUnbounded
		}
		if t <= 1e-12 {
			s.degenStreak++
			if s.degenStreak == degenSwitch+1 {
				s.blandCount++ // the next price call switches to Bland
			}
		} else {
			s.degenStreak = 0
		}

		// Step: move entering by t in direction dir; basics absorb.
		d := float64(dir)
		if t != 0 {
			for r := 0; r < s.m; r++ {
				if a := s.tab[r*s.stride+j]; a != 0 {
					s.beta[r] -= d * t * a
				}
			}
		}

		if limRow < 0 {
			// Bound flip: entering traverses to its other bound.
			if s.state[j] == atLower {
				s.state[j] = atUpper
			} else {
				s.state[j] = atLower
			}
			continue
		}

		leave := s.basis[limRow]
		var enterVal float64
		if s.state[j] == atLower {
			enterVal = t
		} else {
			enterVal = s.ub[j] - t
		}
		s.pivot(limRow, j)
		s.basis[limRow] = j
		s.state[j] = basic
		if leaveUpper {
			s.state[leave] = atUpper
		} else {
			s.state[leave] = atLower
		}
		// Clamp tiny negative drift.
		if enterVal < 0 && enterVal > -1e-9 {
			enterVal = 0
		}
		s.beta[limRow] = enterVal
	}
}

// phase1Objective sums the current values of the artificial variables.
func (s *simplex) phase1Objective() float64 {
	sum := 0.0
	for r := 0; r < s.m; r++ {
		if s.basis[r] >= s.firstArt {
			sum += s.beta[r]
		}
	}
	for j := s.firstArt; j < s.nTotal; j++ {
		if s.state[j] == atUpper {
			sum += s.ub[j] // unreachable in practice: artificial ub is +Inf
		}
	}
	return sum
}

// solve runs both phases and extracts the solution.
func (s *simplex) solve() (*Solution, error) {
	feasTol := math.Max(1e-7, s.tol*100)

	phase1Iters := 0
	if s.firstArt < s.nTotal && !s.warm {
		s.phase1Costs()
		st := s.iterate()
		phase1Iters = s.iters
		if st == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iters: s.iters, Stats: s.stats(phase1Iters)}, nil
		}
		s.refreshBeta()
		if s.phase1Objective() > feasTol {
			return &Solution{Status: StatusInfeasible, Iters: s.iters, Stats: s.stats(phase1Iters)}, nil
		}
		// Freeze artificials at zero so phase 2 cannot reactivate them.
		for j := s.firstArt; j < s.nTotal; j++ {
			s.ub[j] = 0
		}
		s.driveOutArtificials()
	}

	s.phase2Costs()
	s.degenStreak = 0
	st := s.iterate()
	s.refreshBeta()

	sol := &Solution{Status: st, Iters: s.iters, Stats: s.stats(phase1Iters)}
	if st == StatusOptimal {
		sol.Duals = s.extractDuals()
		sol.Basis = s.captureBasis()
	}
	if st == StatusOptimal || st == StatusIterLimit {
		sol.X = s.extractX()
		obj := s.objConst
		for i := 0; i < s.nStruct; i++ {
			// objConst already includes cost*lb; add cost*(shifted value).
			c := s.objCost[i]
			if s.negate {
				c = -c
			}
			obj += c * (sol.X[i] - s.lbShift[i])
		}
		sol.Objective = obj
	}
	return sol, nil
}

// stats assembles the deterministic solve counters given the number of
// iterations the first phase consumed.
func (s *simplex) stats(phase1Iters int) SolveStats {
	return SolveStats{
		Phase1Iters:      phase1Iters,
		Phase2Iters:      s.iters - phase1Iters,
		BlandActivations: s.blandCount,
	}
}

// driveOutArtificials pivots basic artificial variables (all at value zero
// after a successful phase 1) onto non-artificial columns where possible.
// Rows where no eligible pivot exists are redundant; their artificial stays
// basic at zero with an upper bound of zero, which is harmless.
func (s *simplex) driveOutArtificials() {
	for r := 0; r < s.m; r++ {
		if s.basis[r] < s.firstArt {
			continue
		}
		row := s.tab[r*s.stride : r*s.stride+s.nTotal]
		pick, best := -1, 1e-7
		for j := 0; j < s.firstArt; j++ {
			if s.state[j] == basic {
				continue
			}
			if a := math.Abs(row[j]); a > best {
				pick, best = j, a
			}
		}
		if pick < 0 {
			continue
		}
		old := s.basis[r]
		// The incoming variable enters at value beta[r] (== 0): a degenerate
		// pivot that preserves feasibility for any bound state of pick.
		prevState := s.state[pick]
		s.pivot(r, pick)
		s.basis[r] = pick
		s.state[pick] = basic
		s.state[old] = atLower
		if prevState == atUpper {
			// Its value was ub[pick]; as basic it keeps that value.
			s.beta[r] = s.ub[pick]
		} else {
			s.beta[r] = 0
		}
		s.refreshBeta()
	}
}

// rowFlipSet marks row r as sign-normalized; split out so the row-building
// loop reads cleanly.
func (s *simplex) rowFlipSet(r int) { s.rowFlip[r] = true }

// extractDuals recovers the dual value (shadow price d objective / d rhs,
// in the problem's original sense and row orientation) of every
// constraint. For the internal minimization, the dual of row i is
// y_i = c_B B^-1 e_i, and since every row carries a zero-cost +1 unit
// column u with current reduced cost rc_u = 0 - y_i, we read y_i = -rc_u.
func (s *simplex) extractDuals() []float64 {
	duals := make([]float64, s.m)
	for r := 0; r < s.m; r++ {
		y := -s.cost[s.rowUnit[r]]
		if s.rowFlip[r] {
			y = -y
		}
		if s.negate {
			y = -y
		}
		duals[r] = y
	}
	return duals
}

// extractX reads variable values in original (unshifted) space.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		switch s.state[j] {
		case atLower:
			x[j] = 0
		case atUpper:
			x[j] = s.ub[j]
		}
	}
	for r := 0; r < s.m; r++ {
		if b := s.basis[r]; b < s.nStruct {
			x[b] = s.beta[r]
		}
	}
	for j := 0; j < s.nStruct; j++ {
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
		x[j] += s.lbShift[j]
	}
	return x
}
