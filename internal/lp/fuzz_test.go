package lp

import (
	"math"
	"testing"
)

// FuzzSolve cross-checks the simplex against brute-force vertex
// enumeration on small random LPs decoded from the fuzz input. Every
// variable gets finite bounds, so the feasible region is a polytope: when
// nonempty it has a vertex, every vertex is the solution of n linearly
// independent active conditions, and the optimum sits at one of them —
// which makes exhaustive enumeration of n-subsets of {rows as equalities,
// bounds} a complete oracle for both feasibility and the optimal value.
// The same decoded problem is also solved under presolve and re-solved
// warm from its own basis; all paths must agree.
func FuzzSolve(f *testing.F) {
	// Seed corpus: the degenerate structures from lp_test.go's hand-written
	// cases, re-expressed in the decoder's byte encoding.
	//
	// Layout per problem: [sense, nv, nc, var bytes (cost, ub) x nv,
	// row bytes (op, rhs, coef x nv) x nc].
	f.Add([]byte{0, 3, 3, // minimize, 3 vars, 3 rows
		// Beale-style setup: negative and positive costs, tight bounds.
		10, 8, 200, 4, 30, 8,
		// Two zero-rhs LE rows — the ratio-test ties at zero step that
		// drive Beale's cycling example — plus one bounding row.
		0, 128, 130, 100, 180, 0, 128, 160, 90, 140, 0, 140, 132, 132, 132})
	f.Add([]byte{0, 2, 2, // degenerate corner: two rows active at one point
		100, 10, 100, 10,
		0, 148, 132, 132, 0, 148, 136, 130})
	f.Add([]byte{1, 2, 3, // maximize with an EQ row and a GE row
		180, 12, 60, 6,
		2, 140, 134, 130, 1, 132, 128, 134, 0, 150, 134, 134})
	f.Add([]byte{0, 1, 1, 128, 0, 2, 128, 132})              // zero-width bound, EQ row
	f.Add([]byte{1, 3, 0, 200, 20, 10, 5, 128, 0})           // no rows: pure box
	f.Add([]byte{0, 2, 1, 120, 6, 140, 6, 1, 200, 130, 130}) // infeasible GE

	f.Fuzz(func(t *testing.T, data []byte) {
		d := decodeLP(data)
		if d == nil {
			return
		}
		p := d.problem()
		sol, err := p.SolveOpts(Options{})
		if err != nil {
			t.Fatalf("solve: %v (lp=%+v)", err, d)
		}
		feasible, best := d.bruteForce()

		const tol = 1e-6
		switch sol.Status {
		case StatusOptimal:
			if !feasible {
				t.Fatalf("solver optimal (obj=%v) but vertex enumeration finds no feasible point (lp=%+v)", sol.Objective, d)
			}
			if math.Abs(sol.Objective-best) > tol*(1+math.Abs(best)) {
				t.Fatalf("solver objective %v, brute force %v (lp=%+v)", sol.Objective, best, d)
			}
			if !d.pointFeasible(sol.X, tol) {
				t.Fatalf("solver point %v violates constraints (lp=%+v)", sol.X, d)
			}
		case StatusInfeasible:
			if feasible {
				t.Fatalf("solver infeasible but brute force found obj=%v (lp=%+v)", best, d)
			}
		default:
			// All bounds are finite, so unbounded is impossible; the default
			// iteration budget dwarfs these sizes.
			t.Fatalf("unexpected status %v (lp=%+v)", sol.Status, d)
		}

		// Presolve must agree with the plain solve.
		psol, err := d.problem().SolveOpts(Options{Presolve: true})
		if err != nil {
			t.Fatalf("presolve solve: %v (lp=%+v)", err, d)
		}
		if psol.Status != sol.Status {
			t.Fatalf("presolve status %v != plain %v (lp=%+v)", psol.Status, sol.Status, d)
		}
		if sol.Status == StatusOptimal && math.Abs(psol.Objective-sol.Objective) > tol*(1+math.Abs(sol.Objective)) {
			t.Fatalf("presolve objective %v != plain %v (lp=%+v)", psol.Objective, sol.Objective, d)
		}

		// Warm restart from the solve's own basis must reproduce it.
		if sol.Status == StatusOptimal {
			wsol, err := d.problem().SolveOpts(Options{WarmBasis: sol.Basis})
			if err != nil {
				t.Fatalf("warm solve: %v (lp=%+v)", err, d)
			}
			if wsol.Status != StatusOptimal || math.Abs(wsol.Objective-sol.Objective) > tol*(1+math.Abs(sol.Objective)) {
				t.Fatalf("warm restart status %v obj %v != optimal %v (lp=%+v)", wsol.Status, wsol.Objective, sol.Objective, d)
			}
		}
	})
}

// denseLP is the decoded fuzz problem: minimize/maximize c·x subject to
// rows and box bounds 0 <= x <= ub (ub finite).
type denseLP struct {
	Max  bool
	Cost []float64
	UB   []float64
	Rows [][]float64
	Ops  []Op
	RHS  []float64
}

// decodeLP maps fuzz bytes onto a small LP with all values snapped to a
// dyadic grid (quarters), so both the solver and the enumeration oracle
// compute near-exactly and tolerance flakes cannot arise at boundaries.
func decodeLP(data []byte) *denseLP {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	sense, ok := next()
	if !ok {
		return nil
	}
	nvb, ok := next()
	if !ok {
		return nil
	}
	ncb, ok := next()
	if !ok {
		return nil
	}
	nv := 1 + int(nvb)%3 // 1..3 variables
	nc := int(ncb) % 4   // 0..3 rows

	d := &denseLP{Max: sense&1 == 1}
	for i := 0; i < nv; i++ {
		cb, ok := next()
		if !ok {
			return nil
		}
		ub, ok := next()
		if !ok {
			return nil
		}
		// Costs in [-16, 15.75] step 0.25; bounds in [0, 7.75] step 0.25
		// (a zero-width box pins the variable — a degenerate case worth
		// keeping).
		d.Cost = append(d.Cost, (float64(cb)-128)/8)
		d.UB = append(d.UB, float64(ub%32)/4)
	}
	for r := 0; r < nc; r++ {
		opb, ok := next()
		if !ok {
			return nil
		}
		rb, ok := next()
		if !ok {
			return nil
		}
		row := make([]float64, nv)
		zero := true
		for i := 0; i < nv; i++ {
			cb, ok := next()
			if !ok {
				return nil
			}
			// Coefficients in [-16, 15.75] step 0.25.
			row[i] = (float64(cb) - 128) / 4
			if row[i] != 0 {
				zero = false
			}
		}
		if zero {
			continue // empty rows are presolve's job, not the oracle's
		}
		d.Rows = append(d.Rows, row)
		d.Ops = append(d.Ops, Op(opb%3))
		d.RHS = append(d.RHS, (float64(rb)-128)/4)
	}
	return d
}

// problem builds the lp.Problem form.
func (d *denseLP) problem() *Problem {
	sense := Minimize
	if d.Max {
		sense = Maximize
	}
	p := New(sense)
	vars := make([]Var, len(d.Cost))
	for i := range d.Cost {
		vars[i] = p.AddVar("x", d.Cost[i], 0, d.UB[i])
	}
	for r := range d.Rows {
		var terms []Term
		for i, c := range d.Rows[r] {
			if c != 0 {
				terms = append(terms, Term{vars[i], c})
			}
		}
		p.AddConstraint("r", terms, d.Ops[r], d.RHS[r])
	}
	return p
}

// pointFeasible checks x against rows and bounds.
func (d *denseLP) pointFeasible(x []float64, tol float64) bool {
	for i := range x {
		if x[i] < -tol || x[i] > d.UB[i]+tol {
			return false
		}
	}
	for r := range d.Rows {
		v := 0.0
		for i, c := range d.Rows[r] {
			v += c * x[i]
		}
		switch d.Ops[r] {
		case LE:
			if v > d.RHS[r]+tol {
				return false
			}
		case GE:
			if v < d.RHS[r]-tol {
				return false
			}
		case EQ:
			if math.Abs(v-d.RHS[r]) > tol {
				return false
			}
		}
	}
	return true
}

// bruteForce enumerates every candidate vertex: each n-subset of the
// active-condition pool (rows as equalities, x_i = 0, x_i = ub_i), solved
// as an n x n linear system. The region is a bounded polytope, so it is
// nonempty iff some candidate is feasible, and the optimum is attained at
// one of them.
func (d *denseLP) bruteForce() (feasible bool, best float64) {
	n := len(d.Cost)
	var pool []vertexCond
	for r := range d.Rows {
		pool = append(pool, vertexCond{d.Rows[r], d.RHS[r]})
	}
	for i := 0; i < n; i++ {
		unit := make([]float64, n)
		unit[i] = 1
		pool = append(pool, vertexCond{unit, 0})
		pool = append(pool, vertexCond{unit, d.UB[i]})
	}

	best = math.Inf(1)
	if d.Max {
		best = math.Inf(-1)
	}
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(pool, idx, n)
			if !ok || !d.pointFeasible(x, 1e-7) {
				return
			}
			obj := 0.0
			for i := range x {
				obj += d.Cost[i] * x[i]
			}
			feasible = true
			if d.Max {
				best = math.Max(best, obj)
			} else {
				best = math.Min(best, obj)
			}
			return
		}
		for i := start; i <= len(pool)-(n-k); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return feasible, best
}

// vertexCond is one active condition of the enumeration: coef·x = rhs.
type vertexCond struct {
	coef []float64
	rhs  float64
}

// solveSquare solves the n x n system formed by the chosen conditions via
// Gaussian elimination with partial pivoting; ok is false for (near-)
// singular systems, which simply aren't vertices.
func solveSquare(pool []vertexCond, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for k := 0; k < n; k++ {
		a[k] = append([]float64(nil), pool[idx[k]].coef...)
		b[k] = pool[idx[k]].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] * inv
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}
