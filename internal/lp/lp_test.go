package lp

import (
	"math"
	"testing"
)

const eps = 1e-6

func near(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func requireOptimal(t *testing.T, sol *Solution) {
	t.Helper()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
}

func TestTrivialSingleVariable(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 3, 0, 5)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 15) || !near(sol.Value(x), 5) {
		t.Fatalf("got obj=%v x=%v, want 15, 5", sol.Objective, sol.Value(x))
	}
}

func TestTrivialMinimizeAtLowerBound(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 3, 2, 5)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 6) || !near(sol.Value(x), 2) {
		t.Fatalf("got obj=%v x=%v, want 6, 2", sol.Objective, sol.Value(x))
	}
}

// Classic 2-variable production LP:
// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Opt = 36 at (2, 6).
func TestClassicProductionLP(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 3, 0, Inf())
	y := p.AddVar("y", 5, 0, Inf())
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 36) {
		t.Fatalf("objective = %v, want 36", sol.Objective)
	}
	if !near(sol.Value(x), 2) || !near(sol.Value(y), 6) {
		t.Fatalf("solution = (%v, %v), want (2, 6)", sol.Value(x), sol.Value(y))
	}
}

// Minimization with GE constraints (diet problem flavor):
// min 0.6x + y s.t. 10x + 4y >= 20, 5x + 5y >= 20, 2x + 6y >= 12, x,y >= 0.
// Optimum at intersection of first two: x=2/3... verify via known value.
func TestDietStyleGE(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 0.6, 0, Inf())
	y := p.AddVar("y", 1, 0, Inf())
	p.AddConstraint("a", []Term{{x, 10}, {y, 4}}, GE, 20)
	p.AddConstraint("b", []Term{{x, 5}, {y, 5}}, GE, 20)
	p.AddConstraint("c", []Term{{x, 2}, {y, 6}}, GE, 12)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	// Check feasibility of the returned point and optimality against the
	// three candidate vertices.
	xv, yv := sol.Value(x), sol.Value(y)
	if 10*xv+4*yv < 20-eps || 5*xv+5*yv < 20-eps || 2*xv+6*yv < 12-eps {
		t.Fatalf("infeasible point (%v, %v)", xv, yv)
	}
	best := math.Inf(1)
	for _, v := range [][2]float64{{0, 5}, {2.0 / 3.0, 10.0 / 3.0}, {3, 1}, {6, 0}} {
		if 10*v[0]+4*v[1] >= 20-eps && 5*v[0]+5*v[1] >= 20-eps && 2*v[0]+6*v[1] >= 12-eps {
			if o := 0.6*v[0] + v[1]; o < best {
				best = o
			}
		}
	}
	if !near(sol.Objective, best) {
		t.Fatalf("objective = %v, want %v", sol.Objective, best)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x <= 4. Opt: x=4, y=6, obj=16.
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, 4)
	y := p.AddVar("y", 2, 0, Inf())
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 16) || !near(sol.Value(x), 4) || !near(sol.Value(y), 6) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, Inf())
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 5)
	p.AddConstraint("hi", []Term{{x, 1}}, LE, 3)
	sol := solveOrFatal(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, 1)
	y := p.AddVar("y", 1, 0, 1)
	p.AddConstraint("eq", []Term{{x, 1}, {y, 1}}, EQ, 3)
	sol := solveOrFatal(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, Inf())
	y := p.AddVar("y", 0, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 1)
	sol := solveOrFatal(t, p)
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoundedAboveNotUnbounded(t *testing.T) {
	// Same shape as TestUnbounded but x has a finite upper bound.
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, 7)
	y := p.AddVar("y", 0, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 1)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 7) {
		t.Fatalf("objective = %v, want 7", sol.Objective)
	}
}

func TestNegativeLowerBoundShift(t *testing.T) {
	// min x s.t. x >= -3 via bounds; unconstrained otherwise.
	p := New(Minimize)
	x := p.AddVar("x", 1, -3, 10)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Value(x), -3) || !near(sol.Objective, -3) {
		t.Fatalf("got x=%v obj=%v, want -3", sol.Value(x), sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -4 is x + y >= 4. min x + 2y -> x=4, y=0.
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, Inf())
	y := p.AddVar("y", 2, 0, Inf())
	p.AddConstraint("c", []Term{{x, -1}, {y, -1}}, LE, -4)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 4) {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}, {x, 1}}, LE, 10) // 2x <= 10
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Value(x), 5) {
		t.Fatalf("x = %v, want 5", sol.Value(x))
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Two identical equalities: phase 1 leaves one artificial basic at 0 in
	// a redundant row; the solver must still finish.
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, Inf())
	y := p.AddVar("y", 1, 0, Inf())
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8)
	p.AddConstraint("cap", []Term{{x, 1}}, LE, 1)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, 4) {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

// A min-max load-balancing LP shaped exactly like the paper's NIDS program:
// two units must each be fully assigned across their eligible nodes, loads
// are per-node sums, and we minimize the max load.
func TestMinMaxLoadBalancing(t *testing.T) {
	p := New(Minimize)
	lambda := p.AddVar("lambda", 1, 0, Inf())
	// Unit A can go to nodes 1,2; unit B to nodes 2,3. Unit loads: A=2, B=2.
	a1 := p.AddVar("a1", 0, 0, 1)
	a2 := p.AddVar("a2", 0, 0, 1)
	b2 := p.AddVar("b2", 0, 0, 1)
	b3 := p.AddVar("b3", 0, 0, 1)
	p.AddConstraint("covA", []Term{{a1, 1}, {a2, 1}}, EQ, 1)
	p.AddConstraint("covB", []Term{{b2, 1}, {b3, 1}}, EQ, 1)
	p.AddConstraint("load1", []Term{{a1, 2}, {lambda, -1}}, LE, 0)
	p.AddConstraint("load2", []Term{{a2, 2}, {b2, 2}, {lambda, -1}}, LE, 0)
	p.AddConstraint("load3", []Term{{b3, 2}, {lambda, -1}}, LE, 0)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	// Perfect balance: total load 4 over 3 nodes => lambda = 4/3.
	if !near(sol.Objective, 4.0/3.0) {
		t.Fatalf("objective = %v, want 4/3", sol.Objective)
	}
}

// A small packing LP shaped like the paper's NIPS relaxation: coverage <= 1
// per path-rule, coupling d <= e, capacity on e.
func TestNIPSShapedPackingLP(t *testing.T) {
	p := New(Maximize)
	// One rule, two paths over nodes {1,2} and {2,3}; Dist weights 2,1 on
	// path 1 and 2,1 on path 2. TCAM: node 2 can hold the rule (cap 1),
	// nodes 1,3 cannot (cap 0).
	e1 := p.AddVar("e1", 0, 0, 1)
	e2 := p.AddVar("e2", 0, 0, 1)
	e3 := p.AddVar("e3", 0, 0, 1)
	d11 := p.AddVar("d11", 2, 0, 1) // path1 node1, weight 2
	d12 := p.AddVar("d12", 1, 0, 1) // path1 node2, weight 1
	d22 := p.AddVar("d22", 2, 0, 1) // path2 node2, weight 2
	d23 := p.AddVar("d23", 1, 0, 1) // path2 node3, weight 1
	p.AddConstraint("cov1", []Term{{d11, 1}, {d12, 1}}, LE, 1)
	p.AddConstraint("cov2", []Term{{d22, 1}, {d23, 1}}, LE, 1)
	for _, c := range []struct {
		d, e Var
	}{{d11, e1}, {d12, e2}, {d22, e2}, {d23, e3}} {
		p.AddConstraint("couple", []Term{{c.d, 1}, {c.e, -1}}, LE, 0)
	}
	p.AddConstraint("cam1", []Term{{e1, 1}}, LE, 0)
	p.AddConstraint("cam2", []Term{{e2, 1}}, LE, 1)
	p.AddConstraint("cam3", []Term{{e3, 1}}, LE, 0)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	// Only node 2 can filter: d12 = 1 (weight 1) + d22 = 1 (weight 2) => 3.
	if !near(sol.Objective, 3) {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestEmptyProblemErrors(t *testing.T) {
	p := New(Minimize)
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for problem with no variables")
	}
}

func TestFixedVariableViaEqualBounds(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 5, 2, 2) // fixed at 2
	y := p.AddVar("y", 1, 0, Inf())
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 10)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Value(x), 2) || !near(sol.Value(y), 8) {
		t.Fatalf("got x=%v y=%v, want 2, 8", sol.Value(x), sol.Value(y))
	}
	if !near(sol.Objective, 18) {
		t.Fatalf("objective = %v, want 18", sol.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Beale's cycling example (classic); Bland fallback must terminate.
	p := New(Minimize)
	x1 := p.AddVar("x1", -0.75, 0, Inf())
	x2 := p.AddVar("x2", 150, 0, Inf())
	x3 := p.AddVar("x3", -0.02, 0, Inf())
	x4 := p.AddVar("x4", 6, 0, Inf())
	p.AddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -1.0 / 25.0}, {x4, 9}}, LE, 0)
	p.AddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -1.0 / 50.0}, {x4, 3}}, LE, 0)
	p.AddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	if !near(sol.Objective, -0.05) {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestMaxIterLimit(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 3, 0, Inf())
	y := p.AddVar("y", 5, 0, Inf())
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := p.SolveOpts(Options{MaxIters: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestSolutionValueAccessor(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1, 0, 3)
	sol := solveOrFatal(t, p)
	if sol.Value(x) != sol.X[0] {
		t.Fatal("Value accessor disagrees with X slice")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
		Status(42):       "Status(42)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
	opCases := map[Op]string{LE: "<=", GE: ">=", EQ: "=", Op(9): "Op(9)"}
	for op, want := range opCases {
		if op.String() != want {
			t.Errorf("Op.String() = %q, want %q", op.String(), want)
		}
	}
}

func TestPanicsOnBadVariable(t *testing.T) {
	p := New(Minimize)
	p.AddVar("x", 1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown variable in constraint")
		}
	}()
	p.AddConstraint("bad", []Term{{Var(7), 1}}, LE, 1)
}

func TestPanicsOnBadBounds(t *testing.T) {
	p := New(Minimize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	p.AddVar("x", 1, 5, 2)
}

func TestCountsAccessors(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, 1)
	p.AddConstraint("c", []Term{{x, 1}}, LE, 1)
	if p.NumVars() != 1 || p.NumConstraints() != 1 {
		t.Fatalf("counts = (%d, %d), want (1, 1)", p.NumVars(), p.NumConstraints())
	}
}

// Transportation problem: 2 supplies (10, 20), 3 demands (5, 10, 15),
// costs known; optimum computable by hand = 2*5 + 3*5 + 1*10 + 2*10 = ...
// Validate feasibility + optimality against exhaustive vertex search is in
// quick_test.go; here check a hand-computed instance.
func TestTransportation(t *testing.T) {
	p := New(Minimize)
	costs := [2][3]float64{{2, 3, 1}, {5, 4, 8}}
	supply := [2]float64{10, 20}
	demand := [3]float64{5, 10, 15}
	var x [2][3]Var
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			x[i][j] = p.AddVar("x", costs[i][j], 0, Inf())
		}
	}
	for i := 0; i < 2; i++ {
		p.AddConstraint("supply", []Term{{x[i][0], 1}, {x[i][1], 1}, {x[i][2], 1}}, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		p.AddConstraint("demand", []Term{{x[0][j], 1}, {x[1][j], 1}}, EQ, demand[j])
	}
	sol := solveOrFatal(t, p)
	requireOptimal(t, sol)
	// Optimal: route 1 -> {5 to d1? ...}. Known optimum: supply1 covers d3
	// (cost 1) with 10, supply2 covers d1 (5@5) + d2 (10@4) + d3 (5@8) =
	// 25+40+40+10=115? Check alternatives: supply1 to d1 (5@2=10) + d3
	// (5@1=5), supply2 to d2 (10@4=40) + d3 (10@8=80) = 135. Best known:
	// s1: d3 x10 (10), s2: d1 x5 (25) d2 x10 (40) d3 x5 (40) = 115.
	if !near(sol.Objective, 115) {
		t.Fatalf("objective = %v, want 115", sol.Objective)
	}
}
