package lp

import (
	"math"
	"math/rand"
	"testing"
)

// placementLike builds an LP with the shape of the deployment planner's
// NIDS formulation: a min-max load objective over fractional unit
// assignments with per-unit coverage equalities and per-node capacity
// rows. vols perturbs the per-unit volumes, which changes only the
// numeric data, never the shape — the warm-start contract's domain.
func placementLike(units, nodes int, vols []float64) *Problem {
	p := New(Minimize)
	lambda := p.AddVar("lambda", 1, 0, Inf())
	rng := rand.New(rand.NewSource(5)) // structure only; identical across calls
	loads := make([][]Term, nodes)
	for u := 0; u < units; u++ {
		cover := make([]Term, 0, 3)
		for k := 0; k < 3; k++ {
			node := (u + k*2) % nodes
			v := p.AddVar("d", 0, 0, 1)
			cover = append(cover, Term{Var: v, Coef: 1})
			w := vols[u] * (0.5 + rng.Float64())
			loads[node] = append(loads[node], Term{Var: v, Coef: w})
		}
		p.AddConstraint("cover", cover, EQ, 1)
	}
	for j := 0; j < nodes; j++ {
		if len(loads[j]) == 0 {
			continue
		}
		terms := append([]Term{{Var: lambda, Coef: -1}}, loads[j]...)
		p.AddConstraint("cap", terms, LE, 0)
	}
	return p
}

func testVols(units int, scale func(int) float64) []float64 {
	vols := make([]float64, units)
	for u := range vols {
		vols[u] = (1 + float64(u%7)) * scale(u)
	}
	return vols
}

func TestWarmStartSameProblemNeedsNoPhase1(t *testing.T) {
	vols := testVols(40, func(int) float64 { return 1 })
	cold, err := placementLike(40, 8, vols).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, cold)
	if cold.Basis == nil {
		t.Fatal("optimal non-presolved solve carries no Basis")
	}

	warm, err := placementLike(40, 8, vols).SolveOpts(Options{WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, warm)
	if !near(warm.Objective, cold.Objective) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Stats.Phase1Iters != 0 {
		t.Fatalf("warm solve spent %d phase-1 iterations, want 0", warm.Stats.Phase1Iters)
	}
	// Restarting at the optimum should need at most a re-verification pass.
	if warm.Iters > 2 {
		t.Fatalf("warm solve of the identical problem took %d iterations", warm.Iters)
	}
}

func TestWarmStartPerturbedMatchesColdWithFewerIters(t *testing.T) {
	base := testVols(60, func(int) float64 { return 1 })
	first, err := placementLike(60, 10, base).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, first)

	// Small multiplicative drift, as between two traffic-report epochs.
	drifted := testVols(60, func(u int) float64 { return 1 + 0.05*math.Sin(float64(u)) })
	cold, err := placementLike(60, 10, drifted).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, cold)
	warm, err := placementLike(60, 10, drifted).SolveOpts(Options{WarmBasis: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, warm)

	if !near(warm.Objective, cold.Objective) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Stats.Phase1Iters != 0 {
		t.Fatalf("warm solve spent %d phase-1 iterations, want 0", warm.Stats.Phase1Iters)
	}
	if warm.Iters >= cold.Iters {
		t.Fatalf("warm solve took %d iterations, cold %d — warm start bought nothing", warm.Iters, cold.Iters)
	}
	// The placement LP is degenerate, so warm and cold may stop at different
	// optimal bases carrying different — equally valid — dual vectors; dual
	// values are not comparable elementwise here. Duals must still be
	// extracted, one per row.
	if len(warm.Duals) != len(cold.Duals) {
		t.Fatalf("warm duals %d rows, cold %d", len(warm.Duals), len(cold.Duals))
	}
}

func TestWarmStartShapeMismatchFallsBackCold(t *testing.T) {
	vols := testVols(20, func(int) float64 { return 1 })
	donor, err := placementLike(20, 6, vols).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, donor)

	// A differently shaped problem must reject the basis and still solve.
	other := placementLike(25, 6, testVols(25, func(int) float64 { return 2 }))
	coldRef, err := placementLike(25, 6, testVols(25, func(int) float64 { return 2 })).Solve()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := other.SolveOpts(Options{WarmBasis: donor.Basis})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, sol)
	if !near(sol.Objective, coldRef.Objective) {
		t.Fatalf("fallback objective %v != cold %v", sol.Objective, coldRef.Objective)
	}
}

func TestWarmStartInfeasibleBasisFallsBackCold(t *testing.T) {
	// The donor optimum sits at x=4 (binding c1). Tightening c1's rhs to 1
	// makes that basis primal-infeasible for the new data; the solve must
	// fall back cold and still find the new optimum.
	build := func(rhs float64) *Problem {
		p := New(Maximize)
		x := p.AddVar("x", 3, 0, Inf())
		y := p.AddVar("y", 5, 0, Inf())
		p.AddConstraint("c1", []Term{{x, 1}}, LE, rhs)
		p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
		p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, GE, 6)
		return p
	}
	donor, err := build(4).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, donor)

	cold, err := build(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, cold)
	warm, err := build(1).SolveOpts(Options{WarmBasis: donor.Basis})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, warm)
	if !near(warm.Objective, cold.Objective) {
		t.Fatalf("objective %v != cold %v", warm.Objective, cold.Objective)
	}
}

func TestWarmStartWithBoundedVariablesAtUpper(t *testing.T) {
	// Optimum rests several variables at their upper bounds, exercising the
	// AtUpper restoration path.
	build := func(cap float64) *Problem {
		p := New(Maximize)
		var terms []Term
		for i := 0; i < 6; i++ {
			v := p.AddVar("x", float64(i+1), 0, 2)
			terms = append(terms, Term{Var: v, Coef: 1})
		}
		p.AddConstraint("cap", terms, LE, cap)
		return p
	}
	donor, err := build(7).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, donor)
	if len(donor.Basis.AtUpper) == 0 {
		t.Fatal("test premise broken: no variables at upper bound")
	}
	cold, err := build(8).Solve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := build(8).SolveOpts(Options{WarmBasis: donor.Basis})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, warm)
	if !near(warm.Objective, cold.Objective) {
		t.Fatalf("objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Stats.Phase1Iters != 0 {
		t.Fatalf("warm solve spent %d phase-1 iterations", warm.Stats.Phase1Iters)
	}
}

func TestPresolvedSolutionCarriesNoBasis(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1, 0, 10)
	y := p.AddVar("y", 2, 0, 10)
	p.AddConstraint("fix", []Term{{x, 1}}, EQ, 3)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 5)
	sol, err := p.SolveOpts(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	requireOptimal(t, sol)
	if sol.Basis != nil {
		t.Fatal("presolved solve exported a Basis in the wrong column space")
	}
}

func TestBasisClone(t *testing.T) {
	b := &Basis{Cols: 5, Rows: 2, Basic: []int{0, 3}, AtUpper: []int{1}}
	c := b.Clone()
	c.Basic[0] = 9
	c.AtUpper[0] = 9
	if b.Basic[0] != 0 || b.AtUpper[0] != 1 {
		t.Fatal("Clone shares backing arrays with the original")
	}
	if (*Basis)(nil).Clone() != nil {
		t.Fatal("nil Clone must stay nil")
	}
}

// BenchmarkWarmVsColdReplan measures the replan speedup the cluster's
// drift loop relies on: solve a placement-shaped LP, perturb its volumes,
// and re-solve warm vs cold.
func BenchmarkWarmVsColdReplan(b *testing.B) {
	base := testVols(80, func(int) float64 { return 1 })
	first, err := placementLike(80, 12, base).Solve()
	if err != nil {
		b.Fatal(err)
	}
	drifted := testVols(80, func(u int) float64 { return 1 + 0.08*math.Cos(float64(u)) })

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, err := placementLike(80, 12, drifted).Solve()
			if err != nil || sol.Status != StatusOptimal {
				b.Fatalf("status %v err %v", sol.Status, err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, err := placementLike(80, 12, drifted).SolveOpts(Options{WarmBasis: first.Basis})
			if err != nil || sol.Status != StatusOptimal {
				b.Fatalf("status %v err %v", sol.Status, err)
			}
		}
	})
}
