package bro

import (
	"fmt"
	"io"
	"time"

	"nwdeploy/internal/packet"
)

// RunPcap drives the engine from a libpcap capture instead of a session
// list: frames are decoded, reassembled into sessions (completed TCP
// sessions at teardown, the remainder at end of trace), and processed
// exactly as Run processes generated sessions. This is the ingestion path
// a deployment outside the simulator would use — the trace can come from
// tcpdump. idle is the reassembly timeout.
func RunPcap(cfg Config, r io.Reader, idle time.Duration) (Report, error) {
	sessions, asm, err := packet.ReadSessions(packet.NewReader(r), idle, cfg.Hasher.Key)
	if err != nil {
		return Report{}, fmt.Errorf("bro: reading pcap: %w", err)
	}
	if asm.Malformed > 0 {
		return Report{}, fmt.Errorf("bro: %d malformed frames in trace", asm.Malformed)
	}
	return Run(cfg, sessions), nil
}
