package bro

import (
	"reflect"
	"testing"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// TestShardedRunMatchesSerial: the module-lane decomposition is exact, not
// approximate — a sharded run must reproduce the serial report bit for bit
// (including the per-module CPU map and the policy-table memory accounting)
// across every mode and the fine-grained extension.
func TestShardedRunMatchesSerial(t *testing.T) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: 4000, Seed: 5, HostsPerNode: 8,
	})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Mode: ModePlain, Modules: StandardModules(), Hasher: hashing.Hasher{Key: 3}}},
		{"coord-policy-standalone", Config{Mode: ModeCoordPolicy, Modules: mods, Hasher: hashing.Hasher{Key: 3}}},
		{"coord-event-planned", Config{Mode: ModeCoordEvent, Modules: mods, Plan: em.Plan, Node: 10, Hasher: em.Hasher}},
		{"coord-event-fine-grained", Config{Mode: ModeCoordEvent, Modules: mods, Plan: em.Plan, Node: 10, Hasher: em.Hasher, FineGrained: true}},
	}
	for _, tc := range cases {
		serial, sharded := tc.cfg, tc.cfg
		serial.Workers = 1
		sharded.Workers = 4
		a := Run(serial, sessions)
		b := Run(sharded, sessions)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: sharded report diverges from serial:\nserial:  %+v\nsharded: %+v", tc.name, a, b)
		}
		if a.CPUUnits <= 0 || len(a.PerModuleCPU) == 0 {
			t.Errorf("%s: implausible report %+v", tc.name, a)
		}
	}
}

// TestEmulationWorkersDeterminism: node runs are independent, so the
// network-wide emulation result is byte-identical for every worker count.
func TestEmulationWorkersDeterminism(t *testing.T) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{
		Sessions: 3000, Seed: 23, HostsPerNode: 8,
	})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Deployment{DeployEdge, DeployCoordinated} {
		em.Workers = 1
		serial := em.Run(d)
		em.Workers = 4
		parallel4 := em.Run(d)
		if !reflect.DeepEqual(serial, parallel4) {
			t.Errorf("%v: emulation result depends on worker count", d)
		}
		if serial.TotalAlerts() == 0 && d == DeployCoordinated {
			t.Errorf("%v: no alerts; comparison is weak", d)
		}
	}
}
