package bro

import (
	"fmt"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// Deployment selects the network-wide deployment strategy being emulated.
type Deployment int

const (
	// DeployEdge is the paper's single-vantage-point baseline: "each
	// location independently runs a Bro instance on the traffic it sees",
	// namely traffic originating or terminating at that location, with no
	// coordination.
	DeployEdge Deployment = iota
	// DeployCoordinated is the network-wide coordinated deployment: each
	// node additionally observes transit traffic and analyzes exactly the
	// manifest-assigned share of each coordination unit.
	DeployCoordinated
)

// String names the deployment.
func (d Deployment) String() string {
	if d == DeployEdge {
		return "edge"
	}
	return "coordinated"
}

// EmulationResult aggregates per-node reports of one network-wide run.
type EmulationResult struct {
	Deployment Deployment
	Reports    []Report // indexed by node ID
}

// MaxCPU returns the maximum per-node CPU footprint, the paper's headline
// metric for Figures 6(b), 7(b).
func (r *EmulationResult) MaxCPU() float64 {
	var m float64
	for _, rep := range r.Reports {
		if rep.CPUUnits > m {
			m = rep.CPUUnits
		}
	}
	return m
}

// MaxMem returns the maximum per-node memory footprint (Figures 6(a), 7(a)).
func (r *EmulationResult) MaxMem() float64 {
	var m float64
	for _, rep := range r.Reports {
		if rep.MemBytes > m {
			m = rep.MemBytes
		}
	}
	return m
}

// TotalAlerts sums alerts across nodes: the functional output used to
// verify the deployments are behaviorally equivalent in aggregate.
func (r *EmulationResult) TotalAlerts() int {
	var n int
	for _, rep := range r.Reports {
		n += rep.Alerts
	}
	return n
}

// Emulation is a prepared network-wide scenario: topology, traffic,
// modules, and (for the coordinated deployment) the solved plan.
type Emulation struct {
	Topo     *topology.Topology
	Modules  []ModuleSpec
	Sessions []traffic.Session
	Plan     *core.Plan
	Hasher   hashing.Hasher
	// Workers fans the per-node engine runs out across a worker pool: 0
	// selects GOMAXPROCS, 1 the serial legacy path. Node runs are fully
	// independent (each node sees its own trace and keeps its own engine
	// state), so the result is byte-identical for every worker count.
	Workers int
	// Metrics, when non-nil, is forwarded to every per-node engine run
	// and additionally times the whole emulation. Results are
	// byte-identical with or without it (nil is the no-op default).
	Metrics *obs.Registry

	paths [][][]int
}

// NewEmulation builds the scenario and solves the placement LP for the
// coordinated deployment. Modules must not include the baseline
// pseudo-module (connection processing is inherent to the engine).
func NewEmulation(topo *topology.Topology, modules []ModuleSpec, sessions []traffic.Session, caps []core.NodeResources) (*Emulation, error) {
	for _, m := range modules {
		if m.Name == "baseline" {
			return nil, fmt.Errorf("bro: baseline pseudo-module cannot be deployed network-wide")
		}
	}
	inst, err := core.BuildInstance(topo, Classes(modules), sessions, caps)
	if err != nil {
		return nil, err
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		return nil, err
	}
	return &Emulation{
		Topo:     topo,
		Modules:  modules,
		Sessions: sessions,
		Plan:     plan,
		Hasher:   hashing.Hasher{Key: 7},
		paths:    topo.PathMatrix(),
	}, nil
}

// nodeTrace extracts the sessions node j observes under a deployment:
// origin/terminating traffic for the edge deployment, plus transit traffic
// for the coordinated one ("for the coordinated case, this includes both
// traffic originating/terminating at a node and transit traffic").
func (e *Emulation) nodeTrace(j int, d Deployment) []traffic.Session {
	var out []traffic.Session
	for _, s := range e.Sessions {
		switch d {
		case DeployEdge:
			if s.Src == j || s.Dst == j {
				out = append(out, s)
			}
		case DeployCoordinated:
			for _, n := range e.paths[s.Src][s.Dst] {
				if n == j {
					out = append(out, s)
					break
				}
			}
		}
	}
	return out
}

// Run emulates the deployment: per node, the node's trace is fed through an
// engine configured for that deployment, exactly as the paper generates
// per-node traces from a network-wide trace and runs Bro on each in
// pseudo-realtime mode.
func (e *Emulation) Run(d Deployment) *EmulationResult {
	return e.RunFineGrained(d, false)
}

// RunFineGrained is Run with the Section 2.5 fine-grained coordination
// extension toggled: first-packet-only modules are served from first-packet
// events, eliminating duplicated connection tracking on nodes that analyze
// nothing else for a session. Only meaningful for the coordinated
// deployment.
func (e *Emulation) RunFineGrained(d Deployment, fineGrained bool) *EmulationResult {
	sp := e.Metrics.StartSpan("bro.emulation_ns")
	defer sp.End()
	res := &EmulationResult{Deployment: d}
	n := e.Topo.N()
	nodeWorkers := parallel.Resolve(e.Workers, n)
	// When the node level already saturates the pool, keep each node's
	// engine serial; a lone worker instead lets the engine shard its module
	// lanes internally.
	engineWorkers := 1
	if nodeWorkers == 1 {
		engineWorkers = e.Workers
	}
	res.Reports = parallel.Map(nodeWorkers, n, func(j int) Report {
		trace := e.nodeTrace(j, d)
		var cfg Config
		switch d {
		case DeployEdge:
			cfg = Config{Mode: ModePlain, Modules: e.Modules, Hasher: e.Hasher}
		case DeployCoordinated:
			cfg = Config{
				Mode: ModeCoordEvent, Modules: e.Modules, Plan: e.Plan,
				Hasher: e.Hasher, FineGrained: fineGrained,
			}
		}
		cfg.Node = j
		cfg.Workers = engineWorkers
		cfg.Metrics = e.Metrics
		return Run(cfg, trace)
	})
	return res
}
