package bro

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// Cost-model constants, in abstract CPU units and bytes. They are
// calibrated so that the standalone microbenchmarks reproduce the relative
// overheads of the paper's Figure 5 (see DESIGN.md): per-packet event
// engine work dominates; the policy interpreter costs an order of magnitude
// more per operation; computing and storing the connection-record hashes
// adds a small per-connection cost and ~6% memory.
const (
	// pktCaptureCost is libpcap capture plus event dispatch per packet;
	// paid for every packet a node observes, analyzed or not.
	pktCaptureCost = 10
	// connPktCost is per-packet connection processing (reassembly, state
	// updates) once a connection record exists.
	connPktCost = 20
	// connSetupCost is connection-record creation.
	connSetupCost = 100
	// hashPerConnCost is computing the hash combinations (session, flow,
	// source, destination) once per connection and storing them in the
	// record — the prototype's extension to the connection record.
	hashPerConnCost = 18
	// eventCheckCost is one compiled in-event-engine manifest range check.
	eventCheckCost = 2
	// policyOpCost is one interpreted policy-script operation.
	policyOpCost = 10
	// connRecordBytes is the baseline connection-record size.
	connRecordBytes = 400
	// hashFieldBytes is the record growth from carrying the hash fields.
	hashFieldBytes = 24
	// tableEntryBytes is one policy-table entry (set member or counter).
	tableEntryBytes = 40
)

// ManifestDecider resolves whether the node analyzes a session for a
// class. internal/control.Decider implements it; the indirection lets a
// cluster node drive the engine from a fetched wire manifest without
// importing the planner.
type ManifestDecider interface {
	ShouldAnalyze(class int, s traffic.Session) bool
}

// BatchDecider is a ManifestDecider that can resolve every class of a
// session in one call (internal/control.Decider implements it). The engine
// uses it when available: the session's unit keys and selection hashes are
// computed once and shared across classes instead of once per module. The
// batch results must equal per-class ShouldAnalyze calls bit for bit.
type BatchDecider interface {
	ManifestDecider
	DecideAll(s traffic.Session, out []bool)
}

// MaskDecider is a BatchDecider that can return the verdict row as a bit
// mask (bit c = class c analyzes the session; ok false when the manifest
// has more than 64 classes). The pass precomputation scatters the word
// straight into its bit-packed set — no []bool row, no per-module
// MatchesSession re-check (the decider's class filter is that check).
type MaskDecider interface {
	BatchDecider
	DecideMask(s *traffic.Session) (mask uint64, ok bool)
}

// ShedFilter vetoes analysis for sessions the node's load governor has
// dropped responsibility for this epoch. internal/governor.Governor
// implements it. The filter must be a pure function of the session for
// the duration of a Run — the engine precomputes manifest decisions once
// per (session, module) pair and shares them across worker lanes, so a
// filter that mutated mid-run would desynchronize the shards.
type ShedFilter interface {
	Sheds(class int, s traffic.Session) bool
}

// Mode selects the engine variant being benchmarked.
type Mode int

const (
	// ModePlain is unmodified Bro: no coordination machinery at all.
	ModePlain Mode = iota
	// ModeCoordPolicy is the prototype with every coordination check
	// delayed to the policy engine (the paper's implementation
	// alternative 1).
	ModeCoordPolicy
	// ModeCoordEvent is the prototype with checks placed as early as each
	// module permits (alternative 2, the configuration the paper adopts).
	ModeCoordEvent
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeCoordPolicy:
		return "coord-policy"
	case ModeCoordEvent:
		return "coord-event"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config configures one engine instance (one Bro process on one node).
type Config struct {
	Mode    Mode
	Modules []ModuleSpec
	// Plan and Node bind the instance to a network-wide deployment; a nil
	// Plan means a standalone instance whose manifest covers all traffic
	// (the Figure 5 microbenchmark setup: "the sampling manifests ... are
	// configured to specify that this standalone node needs to process all
	// the traffic").
	Plan *core.Plan
	Node int
	// Decider, when non-nil, supplies the Figure 3 manifest decision in
	// place of Plan — the data path a distributed node runs from a wire
	// manifest alone (see internal/control.Decider), with no access to
	// the planner's objects. Class indices must align with Modules.
	Decider ManifestDecider
	// Shed, when non-nil, is consulted after the manifest decision: a
	// session the filter sheds is not analyzed even though the manifest
	// selects it — the node gave up that range under overload. It stacks
	// on either decision path (Plan or Decider) and on standalone
	// instances.
	Shed ShedFilter
	// Hasher supplies the (optionally keyed) packet-selection hash.
	Hasher hashing.Hasher
	// FineGrained enables the Section 2.5 extension: modules marked
	// FirstPacketOnly subscribe to a first-packet event instead of full
	// connection records, so a node whose manifests select only such
	// modules for a session skips connection tracking for it entirely —
	// removing the duplicated baseline processing the paper identifies as
	// the remaining overhead of the coordinated deployment.
	FineGrained bool
	// Workers shards the run's analysis work across a worker pool: 0
	// selects GOMAXPROCS, 1 the serial legacy path. The shard unit is the
	// module lane (each worker owns whole modules, including their policy
	// tables), plus one lane for session-level connection processing, so
	// the sharded run is bit-identical to the serial one — see DESIGN.md
	// for why connection-keyed sharding cannot make that guarantee.
	Workers int
	// Metrics, when non-nil, receives engine observability: per-module
	// analyzed packets and bytes, policy-table sizes, session/connection/
	// alert totals, and run plus per-lane wall times. Aggregates are
	// recorded when a run (or lane) finishes, never inside the per-session
	// loop, and the registry is write-only, so reports are bit-identical
	// with or without it (nil is the no-op default; see internal/obs).
	Metrics *obs.Registry
	// Trace, when live, receives one engine_run event per completed run
	// with the report's aggregates. The event is emitted after lanes merge,
	// at the top-level call only, so traced sharded runs stay bit-identical
	// to serial ones (the zero Span is the no-op default; see
	// internal/trace).
	Trace trace.Span
}

// Report is the resource accounting of one engine run: the analogue of the
// paper's atop-derived CPU (utilization x time) and maximum-resident-memory
// measurements, in deterministic cost units.
type Report struct {
	Node         int
	CPUUnits     float64
	MemBytes     float64
	Conns        int // connections with created state
	Observed     int // sessions seen on the wire
	Alerts       int
	PerModuleCPU map[string]float64
}

// engine is the mutable state of one run (or of one lane of a sharded run).
type engine struct {
	cfg       Config
	rep       Report
	vm        vm
	tables    []*moduleTables
	onAnalyze func(mi int, s traffic.Session)

	// Sharding state. A serial engine owns everything: sessionOwner true
	// and owned nil. A lane engine owns either the session-level costs
	// (capture, connection records) or a subset of module lanes, so that
	// summing the lane reports reproduces the serial report exactly.
	sessionOwner bool
	owned        []bool // nil = all modules
	// pass, when non-nil, holds the precomputed manifest decisions for
	// every (session, module) pair, bit-packed. The decisions are
	// stateless, so one shared read-only copy serves every lane.
	pass *passSet
	// scratch is the per-session decision row, allocated once per engine so
	// the per-session loop never allocates (the legacy path made a fresh
	// []bool for every session).
	scratch []bool
	// batch and decScratch serve the serial decision path: when the
	// configured Decider supports batch resolution, one DecideAll call per
	// session replaces per-module ShouldAnalyze calls.
	batch      BatchDecider
	decScratch []bool
	// ctxBuf is the reused VM invocation context; contextFor fills it in
	// place so analyzed sessions don't heap-allocate one per module event.
	ctxBuf vmContext

	// modPkts/modBytes accumulate analyzed packets and bytes per owned
	// module, allocated only when cfg.Metrics is live so the
	// uninstrumented hot path is untouched.
	modPkts  []float64
	modBytes []float64
}

// Run processes the session trace through one engine instance and returns
// its resource report. Sessions are processed in pseudo-realtime order as
// in the paper's emulation; the cost model is deterministic so repeated
// runs agree exactly, and sharded runs (cfg.Workers != 1) reproduce the
// serial report bit for bit.
func Run(cfg Config, sessions []traffic.Session) Report {
	return runInternal(cfg, sessions, nil)
}

// runInternal is Run with an optional callback invoked for every (module,
// session) analysis performed; RunWithLog uses it to build conn logs.
// Callback runs stay serial so the log order matches the trace order.
func runInternal(cfg Config, sessions []traffic.Session, onAnalyze func(int, traffic.Session)) Report {
	sp := cfg.Metrics.StartSpan("bro.run_ns")
	defer sp.End()
	var rep Report
	if w := parallel.Resolve(cfg.Workers, len(cfg.Modules)+1); w > 1 && onAnalyze == nil && len(cfg.Modules) > 0 {
		rep = runSharded(cfg, sessions, w)
	} else {
		e := newEngine(cfg, onAnalyze)
		for si, s := range sessions {
			e.processSession(si, s)
		}
		rep = e.finish()
	}
	if cfg.Metrics != nil {
		// Float aggregates are rounded once, from the merged report, so the
		// serial and sharded runs publish identical counters. Per-lane
		// truncation (the previous behavior) lost up to one unit per lane:
		// int64(x) per lane truncates toward zero, and the sum of
		// truncations is not the truncation of the sum.
		cfg.Metrics.Add("bro.cpu_units", int64(math.Round(rep.CPUUnits)))
		cfg.Metrics.Add("bro.mem_bytes", int64(math.Round(rep.MemBytes)))
	}
	cfg.Trace.Event(trace.EvEngineRun,
		trace.Int("alerts", rep.Alerts), trace.Int("conns", rep.Conns),
		trace.F64("cpu", rep.CPUUnits))
	return rep
}

// newEngine builds a serial engine (owns every lane).
func newEngine(cfg Config, onAnalyze func(int, traffic.Session)) *engine {
	e := &engine{cfg: cfg, onAnalyze: onAnalyze, sessionOwner: true}
	e.rep.Node = cfg.Node
	e.rep.PerModuleCPU = make(map[string]float64, len(cfg.Modules))
	e.vm.cost = &e.rep.CPUUnits
	e.vm.alerts = &e.rep.Alerts
	e.tables = make([]*moduleTables, len(cfg.Modules))
	for i := range e.tables {
		e.tables[i] = newModuleTables()
	}
	e.scratch = make([]bool, len(cfg.Modules))
	if bd, ok := cfg.Decider.(BatchDecider); ok {
		e.batch = bd
		e.decScratch = make([]bool, len(cfg.Modules))
	}
	if cfg.Metrics != nil {
		e.modPkts = make([]float64, len(cfg.Modules))
		e.modBytes = make([]float64, len(cfg.Modules))
	}
	return e
}

// finish folds the policy-table footprints of the owned modules into the
// report, records the run's aggregates to the metrics registry, and
// returns the report.
func (e *engine) finish() Report {
	for mi, t := range e.tables {
		if e.owns(mi) {
			e.rep.MemBytes += t.memBytes()
		}
	}
	e.recordMetrics()
	return e.rep
}

// recordMetrics publishes the finished run's (or lane's) aggregates.
// Counters are atomic and every lane owns disjoint work, so summing lane
// contributions reproduces exactly the serial run's totals regardless of
// scheduling order.
func (e *engine) recordMetrics() {
	m := e.cfg.Metrics
	if m == nil {
		return
	}
	if e.sessionOwner {
		m.Add("bro.sessions_observed", int64(e.rep.Observed))
		m.Add("bro.conns", int64(e.rep.Conns))
	}
	m.Add("bro.alerts", int64(e.rep.Alerts))
	// bro.cpu_units and bro.mem_bytes are recorded once at the top level of
	// runInternal from the merged report, never per lane: per-lane
	// truncation made the sharded totals drift from the serial ones.
	for mi, spec := range e.cfg.Modules {
		if !e.owns(mi) {
			continue
		}
		m.Add("bro.module_pkts."+spec.Name, int64(e.modPkts[mi]))
		m.Add("bro.module_bytes."+spec.Name, int64(e.modBytes[mi]))
		if tb := e.tables[mi].memBytes(); tb > 0 {
			m.Add("bro.module_table_bytes."+spec.Name, int64(tb))
			m.Observe("bro.table_bytes", int64(tb))
		}
	}
}

// owns reports whether this engine owns module lane mi.
func (e *engine) owns(mi int) bool { return e.owned == nil || e.owned[mi] }

// runSharded is the parallel form of runInternal. The decomposition is
// exact, not approximate: per-module policy state (the only cross-session
// state in the engine) is confined to its module lane, every lane walks the
// trace in order, all cost increments are integer-valued (so float sums are
// associative at these magnitudes), and lane reports are merged in lane
// order. A connection-keyed partition would instead split per-source and
// per-destination policy tables across workers and change alert and memory
// accounting relative to the serial run.
func runSharded(cfg Config, sessions []traffic.Session, workers int) Report {
	L := len(cfg.Modules)
	// Phase 1: the (session, module) manifest decisions are stateless, so
	// compute them once, in parallel blocks, shared read-only by all lanes.
	pass := precomputePasses(cfg, sessions, workers)
	// Phase 2: lane 0 owns session-level connection processing; lane mi+1
	// owns module mi's analysis work and tables.
	coordinated := cfg.Mode != ModePlain
	hasManifest := cfg.Plan != nil || cfg.Decider != nil || cfg.Shed != nil
	reports := parallel.Map(workers, L+1, func(lane int) Report {
		lsp := cfg.Metrics.StartSpan("bro.lane_ns")
		defer lsp.End()
		e := newEngine(cfg, nil)
		e.pass = pass
		e.owned = make([]bool, L)
		if lane == 0 {
			e.sessionOwner = true
		} else {
			e.sessionOwner = false
			e.owned[lane-1] = true
		}
		if lane > 0 && coordinated && hasManifest {
			// Module lanes only ever touch sessions some module passes:
			// processSession returns before the module loop otherwise, and
			// everything above that return is sessionOwner-gated. Walking
			// the bit-packed any row lets the lane skip 64 dropped sessions
			// per zero word instead of probing each.
			pass.forEachAny(len(sessions), func(si int) {
				e.processSession(si, sessions[si])
			})
		} else {
			for si, s := range sessions {
				e.processSession(si, s)
			}
		}
		return e.finish()
	})
	merged := Report{Node: cfg.Node, PerModuleCPU: make(map[string]float64, L)}
	names := make([]string, 0, L)
	for _, r := range reports {
		merged.CPUUnits += r.CPUUnits
		merged.MemBytes += r.MemBytes
		merged.Conns += r.Conns
		merged.Observed += r.Observed
		merged.Alerts += r.Alerts
		// Merge per-module CPU in lane order then sorted-name order. Map
		// iteration order is randomized; when two modules share a name
		// (each lane contributes a partial sum to the same key) a random
		// merge order perturbs the float sum's last ULP between runs.
		names = names[:0]
		for name := range r.PerModuleCPU {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			merged.PerModuleCPU[name] += r.PerModuleCPU[name]
		}
	}
	return merged
}

// precomputePasses evaluates the Figure 3 manifest decision for every
// (session, module) pair. The decision depends only on the plan and the
// session tuple, never on engine state, which is what makes it safe to
// hoist out of the per-lane walks.
func precomputePasses(cfg Config, sessions []traffic.Session, workers int) *passSet {
	L := len(cfg.Modules)
	pass := newPassSet(len(sessions), L)
	probe := &engine{cfg: cfg}
	coordinated := cfg.Mode != ModePlain
	batch, _ := cfg.Decider.(BatchDecider)
	maskDec, _ := cfg.Decider.(MaskDecider)
	nBlocks := (len(sessions) + passBlock - 1) / passBlock
	parallel.ForEach(workers, nBlocks, func(b int) {
		lo := b * passBlock
		hi := lo + passBlock
		if hi > len(sessions) {
			hi = len(sessions)
		}
		// Block-local decision scratch for the batch path: one allocation
		// per 1024 sessions, not per session.
		var dec []bool
		if batch != nil && coordinated {
			dec = make([]bool, L)
		}
		for si := lo; si < hi; si++ {
			s := sessions[si]
			if maskDec != nil && coordinated {
				// Mask fast path: the decider's class filter is exactly
				// ModuleSpec.MatchesSession (the wire manifest copies Ports
				// and Transport through), so each set bit is a pass, modulo
				// the governor veto.
				if em, ok := maskDec.DecideMask(&s); ok {
					if L < 64 {
						em &= uint64(1)<<uint(L) - 1
					}
					for ; em != 0; em &= em - 1 {
						mi := bits.TrailingZeros64(em)
						if cfg.Shed != nil && cfg.Shed.Sheds(mi, s) {
							continue
						}
						pass.set(si, mi)
					}
					continue
				}
			}
			if dec != nil {
				batch.DecideAll(s, dec)
			}
			for mi, m := range cfg.Modules {
				if !m.MatchesSession(s) {
					continue
				}
				if !coordinated || probeAnalyzes(probe, dec, mi, s) {
					pass.set(si, mi)
				}
			}
		}
	})
	return pass
}

// probeAnalyzes is analyzes with an optional batch-resolved decision row:
// the governor's shed veto still runs first, then the precomputed manifest
// verdict replaces the per-class Decider call.
func probeAnalyzes(e *engine, dec []bool, mi int, s traffic.Session) bool {
	if dec == nil {
		return e.analyzes(mi, s)
	}
	if e.cfg.Shed != nil && e.cfg.Shed.Sheds(mi, s) {
		return false
	}
	if mi >= len(dec) {
		return false
	}
	return dec[mi]
}

// analyzes resolves the Figure 3 manifest decision for one module, after
// the governor's shed veto.
func (e *engine) analyzes(mi int, s traffic.Session) bool {
	if e.cfg.Shed != nil && e.cfg.Shed.Sheds(mi, s) {
		return false
	}
	if e.cfg.Decider != nil {
		return e.cfg.Decider.ShouldAnalyze(mi, s)
	}
	if e.cfg.Plan == nil {
		return true // standalone: manifest covers everything
	}
	return e.cfg.Plan.ShouldAnalyze(e.cfg.Node, mi, s, e.cfg.Hasher)
}

// analyzesWith is analyzes using the session's batch-resolved decision row
// when one is available (filled by processSession just before the module
// loop). The shed veto still runs per module; only the manifest lookup is
// replaced.
func (e *engine) analyzesWith(mi int, s traffic.Session) bool {
	if e.batch == nil {
		return e.analyzes(mi, s)
	}
	if e.cfg.Shed != nil && e.cfg.Shed.Sheds(mi, s) {
		return false
	}
	return e.decScratch[mi]
}

// hasManifest reports whether the instance enforces a real (partial)
// manifest — via the planner's Plan, a wire Decider, or a governor shed
// filter — as opposed to the standalone all-traffic default.
func (e *engine) hasManifest() bool {
	return e.cfg.Plan != nil || e.cfg.Decider != nil || e.cfg.Shed != nil
}

// checkStage returns where module mi's coordination check executes under
// the configured mode.
func (e *engine) checkStage(mi int) Stage {
	if e.cfg.Mode == ModeCoordPolicy {
		return StagePolicy
	}
	return e.cfg.Modules[mi].EarliestCheck
}

func (e *engine) processSession(si int, s traffic.Session) {
	pkts := float64(s.Packets)
	coordinated := e.cfg.Mode != ModePlain

	if e.sessionOwner {
		e.rep.Observed++
		// Every observed packet pays capture cost regardless of analysis: a
		// node on the path cannot avoid seeing the traffic (Section 2.5's
		// duplicated baseline tracking).
		e.rep.CPUUnits += pkts * pktCaptureCost
		if coordinated {
			// The prototype computes the hash combinations once per
			// connection and carries them in the connection record.
			e.rep.CPUUnits += hashPerConnCost
		}
	}

	// Which modules would analyze this session here (manifest decision)?
	// The decision row lives in the engine's scratch slice — the per-session
	// loop must not allocate.
	passes := e.scratch
	anyPass := false
	if e.pass != nil {
		anyPass = e.pass.any(si)
		for mi := range passes {
			passes[mi] = e.pass.get(si, mi)
		}
	} else {
		if e.batch != nil && coordinated {
			e.batch.DecideAll(s, e.decScratch)
		}
		for mi, m := range e.cfg.Modules {
			passes[mi] = false
			if !m.MatchesSession(s) {
				continue
			}
			if !coordinated || e.analyzesWith(mi, s) {
				passes[mi] = true
				anyPass = true
			}
		}
	}

	// The prototype's basic-processing optimization: skip creating session
	// state for traffic entirely outside this instance's manifests ("we
	// add a check in the basic connection processing step to avoid
	// creating session state for traffic that falls outside the sampling
	// manifest for this Bro instance"). Unmodified Bro has no such check
	// and always creates connection state.
	// Unmodified Bro has no such check and always creates connection
	// state; a standalone coordinated instance's manifest covers all
	// traffic, so nothing is droppable there either.
	if coordinated && e.hasManifest() && !anyPass {
		return
	}

	// Fine-grained coordination (Section 2.5): when every module this node
	// analyzes the session for needs only its first packet, serve them
	// from a first-packet event and skip connection tracking entirely.
	if e.cfg.FineGrained && coordinated && e.hasManifest() && e.fineGrainedOnly(passes) {
		if e.sessionOwner {
			e.rep.CPUUnits += connPktCost // classify the first packet once
		}
		for mi, m := range e.cfg.Modules {
			if !passes[mi] || !m.FirstPacketOnly || !e.owns(mi) {
				continue
			}
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			if e.modPkts != nil {
				e.modPkts[mi]++ // first-packet event: one packet served
				e.modBytes[mi] += float64(s.Bytes)
			}
			before := e.rep.CPUUnits
			// The manifest check runs once, on the first-packet event.
			ctx := e.contextFor(mi, s, true)
			e.vm.run(checkScript, ctx, e.tables[mi])
			if len(m.PolicyScript) > 0 {
				e.vm.run(m.PolicyScript, ctx, e.tables[mi])
			}
			e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
		}
		return
	}

	// Connection-record creation and per-packet connection processing.
	if e.sessionOwner {
		e.rep.CPUUnits += connSetupCost + pkts*connPktCost
		e.rep.MemBytes += connRecordBytes
		if coordinated {
			e.rep.MemBytes += hashFieldBytes
		}
		e.rep.Conns++
	}

	for mi, m := range e.cfg.Modules {
		if !e.owns(mi) || !m.SubscribedTo(s) {
			continue
		}
		before := e.rep.CPUUnits

		analyzed := passes[mi] && m.MatchesSession(s)
		// A module with no analysis work (the baseline pseudo-module)
		// has nothing to gate, so it carries no coordination check.
		hasWork := m.EventOpsPerPkt > 0 || len(m.PolicyScript) > 0
		if coordinated && hasWork {
			switch e.checkStage(mi) {
			case StageEvent:
				// One compiled check at module initialization.
				e.rep.CPUUnits += eventCheckCost
			case StagePolicy:
				// The interpreted check runs in every policy event handler
				// invocation the module receives for this connection.
				ctx := e.contextFor(mi, s, passes[mi])
				n := m.PolicyEventsPerConn
				if n < 1 {
					n = 1
				}
				for k := 0.0; k < n; k++ {
					e.vm.run(checkScript, ctx, e.tables[mi])
				}
			}
		}

		if analyzed {
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			if e.modPkts != nil {
				e.modPkts[mi] += pkts
				e.modBytes[mi] += float64(s.Bytes)
			}
			// Event-engine protocol work per packet.
			e.rep.CPUUnits += m.EventOpsPerPkt * pkts
			// Policy handlers.
			if len(m.PolicyScript) > 0 {
				ctx := e.contextFor(mi, s, true)
				for k := 0.0; k < m.PolicyEventsPerConn; k++ {
					e.vm.run(m.PolicyScript, ctx, e.tables[mi])
				}
			}
			// Per-item analysis state: session/flow-scoped modules allocate
			// per connection; source/destination-scoped state lives in the
			// policy tables (accounted via memBytes) plus a fixed record.
			switch m.Agg {
			case core.BySource, core.ByDestination:
				// counted through moduleTables
			default:
				e.rep.MemBytes += m.StateBytes
			}
		}
		e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
	}
}

// fineGrainedOnly reports whether every passing module for this session is
// first-packet-only (given at least one passes).
func (e *engine) fineGrainedOnly(passes []bool) bool {
	for mi, ok := range passes {
		if ok && !e.cfg.Modules[mi].FirstPacketOnly {
			return false
		}
	}
	return true
}

// contextFor fills and returns the engine's reused VM context for one
// module invocation. The returned pointer aliases e.ctxBuf: each call
// overwrites the previous context, which is safe because the VM consumes
// the context synchronously and never retains it.
func (e *engine) contextFor(mi int, s traffic.Session, inRange bool) *vmContext {
	m := e.cfg.Modules[mi]
	h := e.cfg.Hasher
	var hv float64
	switch m.Agg {
	case core.ByFlow:
		hv = h.Flow(s.Tuple)
	case core.BySource:
		hv = h.Source(s.Tuple)
	case core.ByDestination:
		hv = h.Destination(s.Tuple)
	default:
		hv = h.Session(s.Tuple)
	}
	e.ctxBuf = vmContext{
		srcKey:  float64(s.Tuple.SrcIP),
		dstKey:  float64(s.Tuple.DstIP),
		port:    float64(s.Tuple.DstPort),
		pkts:    float64(s.Packets),
		hash:    hv,
		inRange: inRange,
	}
	return &e.ctxBuf
}

// Overhead compares a coordinated run against a plain run on the same
// trace: the Figure 5 metrics.
type Overhead struct {
	Module    string
	CPUPlain  float64
	CPUCoord  float64
	MemPlain  float64
	MemCoord  float64
	CPURatio  float64 // (coord - plain) / plain
	MemRatio  float64
	CheckMode Mode
}

// MeasureOverhead runs one module in isolation (plus baseline connection
// processing) on the trace in plain and coordinated form and reports the
// overhead ratios — the paper's standalone microbenchmark. The baseline
// "module" measures pure connection processing.
func MeasureOverhead(spec ModuleSpec, mode Mode, sessions []traffic.Session) Overhead {
	mods := []ModuleSpec{spec}
	plain := Run(Config{Mode: ModePlain, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	coord := Run(Config{Mode: mode, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	o := Overhead{
		Module:    spec.Name,
		CPUPlain:  plain.CPUUnits,
		CPUCoord:  coord.CPUUnits,
		MemPlain:  plain.MemBytes,
		MemCoord:  coord.MemBytes,
		CheckMode: mode,
	}
	if plain.CPUUnits > 0 {
		o.CPURatio = (coord.CPUUnits - plain.CPUUnits) / plain.CPUUnits
	}
	if plain.MemBytes > 0 {
		o.MemRatio = (coord.MemBytes - plain.MemBytes) / plain.MemBytes
	}
	return o
}
