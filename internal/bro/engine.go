package bro

import (
	"fmt"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// Cost-model constants, in abstract CPU units and bytes. They are
// calibrated so that the standalone microbenchmarks reproduce the relative
// overheads of the paper's Figure 5 (see DESIGN.md): per-packet event
// engine work dominates; the policy interpreter costs an order of magnitude
// more per operation; computing and storing the connection-record hashes
// adds a small per-connection cost and ~6% memory.
const (
	// pktCaptureCost is libpcap capture plus event dispatch per packet;
	// paid for every packet a node observes, analyzed or not.
	pktCaptureCost = 10
	// connPktCost is per-packet connection processing (reassembly, state
	// updates) once a connection record exists.
	connPktCost = 20
	// connSetupCost is connection-record creation.
	connSetupCost = 100
	// hashPerConnCost is computing the hash combinations (session, flow,
	// source, destination) once per connection and storing them in the
	// record — the prototype's extension to the connection record.
	hashPerConnCost = 18
	// eventCheckCost is one compiled in-event-engine manifest range check.
	eventCheckCost = 2
	// policyOpCost is one interpreted policy-script operation.
	policyOpCost = 10
	// connRecordBytes is the baseline connection-record size.
	connRecordBytes = 400
	// hashFieldBytes is the record growth from carrying the hash fields.
	hashFieldBytes = 24
	// tableEntryBytes is one policy-table entry (set member or counter).
	tableEntryBytes = 40
)

// Mode selects the engine variant being benchmarked.
type Mode int

const (
	// ModePlain is unmodified Bro: no coordination machinery at all.
	ModePlain Mode = iota
	// ModeCoordPolicy is the prototype with every coordination check
	// delayed to the policy engine (the paper's implementation
	// alternative 1).
	ModeCoordPolicy
	// ModeCoordEvent is the prototype with checks placed as early as each
	// module permits (alternative 2, the configuration the paper adopts).
	ModeCoordEvent
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeCoordPolicy:
		return "coord-policy"
	case ModeCoordEvent:
		return "coord-event"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config configures one engine instance (one Bro process on one node).
type Config struct {
	Mode    Mode
	Modules []ModuleSpec
	// Plan and Node bind the instance to a network-wide deployment; a nil
	// Plan means a standalone instance whose manifest covers all traffic
	// (the Figure 5 microbenchmark setup: "the sampling manifests ... are
	// configured to specify that this standalone node needs to process all
	// the traffic").
	Plan *core.Plan
	Node int
	// Hasher supplies the (optionally keyed) packet-selection hash.
	Hasher hashing.Hasher
	// FineGrained enables the Section 2.5 extension: modules marked
	// FirstPacketOnly subscribe to a first-packet event instead of full
	// connection records, so a node whose manifests select only such
	// modules for a session skips connection tracking for it entirely —
	// removing the duplicated baseline processing the paper identifies as
	// the remaining overhead of the coordinated deployment.
	FineGrained bool
}

// Report is the resource accounting of one engine run: the analogue of the
// paper's atop-derived CPU (utilization x time) and maximum-resident-memory
// measurements, in deterministic cost units.
type Report struct {
	Node         int
	CPUUnits     float64
	MemBytes     float64
	Conns        int // connections with created state
	Observed     int // sessions seen on the wire
	Alerts       int
	PerModuleCPU map[string]float64
}

// engine is the mutable state of one run.
type engine struct {
	cfg       Config
	rep       Report
	vm        vm
	tables    []*moduleTables
	classes   []core.Class
	onAnalyze func(mi int, s traffic.Session)
}

// Run processes the session trace through one engine instance and returns
// its resource report. Sessions are processed in pseudo-realtime order as
// in the paper's emulation; the cost model is deterministic so repeated
// runs agree exactly.
func Run(cfg Config, sessions []traffic.Session) Report {
	return runInternal(cfg, sessions, nil)
}

// runInternal is Run with an optional callback invoked for every (module,
// session) analysis performed; RunWithLog uses it to build conn logs.
func runInternal(cfg Config, sessions []traffic.Session, onAnalyze func(int, traffic.Session)) Report {
	e := &engine{cfg: cfg, onAnalyze: onAnalyze}
	e.rep.Node = cfg.Node
	e.rep.PerModuleCPU = make(map[string]float64, len(cfg.Modules))
	e.vm.cost = &e.rep.CPUUnits
	e.vm.alerts = &e.rep.Alerts
	e.tables = make([]*moduleTables, len(cfg.Modules))
	for i := range e.tables {
		e.tables[i] = newModuleTables()
	}
	e.classes = Classes(cfg.Modules)

	for _, s := range sessions {
		e.processSession(s)
	}
	for _, t := range e.tables {
		e.rep.MemBytes += t.memBytes()
	}
	return e.rep
}

// analyzes resolves the Figure 3 manifest decision for one module.
func (e *engine) analyzes(mi int, s traffic.Session) bool {
	if e.cfg.Plan == nil {
		return true // standalone: manifest covers everything
	}
	return e.cfg.Plan.ShouldAnalyze(e.cfg.Node, mi, s, e.cfg.Hasher)
}

// checkStage returns where module mi's coordination check executes under
// the configured mode.
func (e *engine) checkStage(mi int) Stage {
	if e.cfg.Mode == ModeCoordPolicy {
		return StagePolicy
	}
	return e.cfg.Modules[mi].EarliestCheck
}

func (e *engine) processSession(s traffic.Session) {
	e.rep.Observed++
	pkts := float64(s.Packets)

	// Every observed packet pays capture cost regardless of analysis: a
	// node on the path cannot avoid seeing the traffic (Section 2.5's
	// duplicated baseline tracking).
	e.rep.CPUUnits += pkts * pktCaptureCost

	coordinated := e.cfg.Mode != ModePlain
	if coordinated {
		// The prototype computes the hash combinations once per connection
		// and carries them in the connection record.
		e.rep.CPUUnits += hashPerConnCost
	}

	// Which modules would analyze this session here (manifest decision)?
	passes := make([]bool, len(e.cfg.Modules))
	anyPass := false
	for mi, m := range e.cfg.Modules {
		if !m.MatchesSession(s) {
			continue
		}
		if !coordinated || e.analyzes(mi, s) {
			passes[mi] = true
			anyPass = true
		}
	}

	// The prototype's basic-processing optimization: skip creating session
	// state for traffic entirely outside this instance's manifests ("we
	// add a check in the basic connection processing step to avoid
	// creating session state for traffic that falls outside the sampling
	// manifest for this Bro instance"). Unmodified Bro has no such check
	// and always creates connection state.
	// Unmodified Bro has no such check and always creates connection
	// state; a standalone coordinated instance's manifest covers all
	// traffic, so nothing is droppable there either.
	if coordinated && e.cfg.Plan != nil && !anyPass {
		return
	}

	// Fine-grained coordination (Section 2.5): when every module this node
	// analyzes the session for needs only its first packet, serve them
	// from a first-packet event and skip connection tracking entirely.
	if e.cfg.FineGrained && coordinated && e.cfg.Plan != nil && e.fineGrainedOnly(passes) {
		e.rep.CPUUnits += connPktCost // classify the first packet once
		for mi, m := range e.cfg.Modules {
			if !passes[mi] || !m.FirstPacketOnly {
				continue
			}
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			before := e.rep.CPUUnits
			// The manifest check runs once, on the first-packet event.
			ctx := e.contextFor(mi, s, true)
			e.vm.run(checkScript, ctx, e.tables[mi])
			if len(m.PolicyScript) > 0 {
				e.vm.run(m.PolicyScript, ctx, e.tables[mi])
			}
			e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
		}
		return
	}

	// Connection-record creation and per-packet connection processing.
	e.rep.CPUUnits += connSetupCost + pkts*connPktCost
	e.rep.MemBytes += connRecordBytes
	if coordinated {
		e.rep.MemBytes += hashFieldBytes
	}
	e.rep.Conns++

	for mi, m := range e.cfg.Modules {
		if !m.SubscribedTo(s) {
			continue
		}
		before := e.rep.CPUUnits

		analyzed := passes[mi] && m.MatchesSession(s)
		// A module with no analysis work (the baseline pseudo-module)
		// has nothing to gate, so it carries no coordination check.
		hasWork := m.EventOpsPerPkt > 0 || len(m.PolicyScript) > 0
		if coordinated && hasWork {
			switch e.checkStage(mi) {
			case StageEvent:
				// One compiled check at module initialization.
				e.rep.CPUUnits += eventCheckCost
			case StagePolicy:
				// The interpreted check runs in every policy event handler
				// invocation the module receives for this connection.
				ctx := e.contextFor(mi, s, passes[mi])
				n := m.PolicyEventsPerConn
				if n < 1 {
					n = 1
				}
				for k := 0.0; k < n; k++ {
					e.vm.run(checkScript, ctx, e.tables[mi])
				}
			}
		}

		if analyzed {
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			// Event-engine protocol work per packet.
			e.rep.CPUUnits += m.EventOpsPerPkt * pkts
			// Policy handlers.
			if len(m.PolicyScript) > 0 {
				ctx := e.contextFor(mi, s, true)
				for k := 0.0; k < m.PolicyEventsPerConn; k++ {
					e.vm.run(m.PolicyScript, ctx, e.tables[mi])
				}
			}
			// Per-item analysis state: session/flow-scoped modules allocate
			// per connection; source/destination-scoped state lives in the
			// policy tables (accounted via memBytes) plus a fixed record.
			switch m.Agg {
			case core.BySource, core.ByDestination:
				// counted through moduleTables
			default:
				e.rep.MemBytes += m.StateBytes
			}
		}
		e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
	}
}

// fineGrainedOnly reports whether every passing module for this session is
// first-packet-only (given at least one passes).
func (e *engine) fineGrainedOnly(passes []bool) bool {
	for mi, ok := range passes {
		if ok && !e.cfg.Modules[mi].FirstPacketOnly {
			return false
		}
	}
	return true
}

// contextFor builds the VM context for one module invocation.
func (e *engine) contextFor(mi int, s traffic.Session, inRange bool) *vmContext {
	m := e.cfg.Modules[mi]
	h := e.cfg.Hasher
	var hv float64
	switch m.Agg {
	case core.ByFlow:
		hv = h.Flow(s.Tuple)
	case core.BySource:
		hv = h.Source(s.Tuple)
	case core.ByDestination:
		hv = h.Destination(s.Tuple)
	default:
		hv = h.Session(s.Tuple)
	}
	return &vmContext{
		srcKey:  float64(s.Tuple.SrcIP),
		dstKey:  float64(s.Tuple.DstIP),
		port:    float64(s.Tuple.DstPort),
		pkts:    float64(s.Packets),
		hash:    hv,
		inRange: inRange,
	}
}

// Overhead compares a coordinated run against a plain run on the same
// trace: the Figure 5 metrics.
type Overhead struct {
	Module    string
	CPUPlain  float64
	CPUCoord  float64
	MemPlain  float64
	MemCoord  float64
	CPURatio  float64 // (coord - plain) / plain
	MemRatio  float64
	CheckMode Mode
}

// MeasureOverhead runs one module in isolation (plus baseline connection
// processing) on the trace in plain and coordinated form and reports the
// overhead ratios — the paper's standalone microbenchmark. The baseline
// "module" measures pure connection processing.
func MeasureOverhead(spec ModuleSpec, mode Mode, sessions []traffic.Session) Overhead {
	mods := []ModuleSpec{spec}
	plain := Run(Config{Mode: ModePlain, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	coord := Run(Config{Mode: mode, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	o := Overhead{
		Module:    spec.Name,
		CPUPlain:  plain.CPUUnits,
		CPUCoord:  coord.CPUUnits,
		MemPlain:  plain.MemBytes,
		MemCoord:  coord.MemBytes,
		CheckMode: mode,
	}
	if plain.CPUUnits > 0 {
		o.CPURatio = (coord.CPUUnits - plain.CPUUnits) / plain.CPUUnits
	}
	if plain.MemBytes > 0 {
		o.MemRatio = (coord.MemBytes - plain.MemBytes) / plain.MemBytes
	}
	return o
}
