package bro

import (
	"fmt"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/parallel"
	"nwdeploy/internal/trace"
	"nwdeploy/internal/traffic"
)

// Cost-model constants, in abstract CPU units and bytes. They are
// calibrated so that the standalone microbenchmarks reproduce the relative
// overheads of the paper's Figure 5 (see DESIGN.md): per-packet event
// engine work dominates; the policy interpreter costs an order of magnitude
// more per operation; computing and storing the connection-record hashes
// adds a small per-connection cost and ~6% memory.
const (
	// pktCaptureCost is libpcap capture plus event dispatch per packet;
	// paid for every packet a node observes, analyzed or not.
	pktCaptureCost = 10
	// connPktCost is per-packet connection processing (reassembly, state
	// updates) once a connection record exists.
	connPktCost = 20
	// connSetupCost is connection-record creation.
	connSetupCost = 100
	// hashPerConnCost is computing the hash combinations (session, flow,
	// source, destination) once per connection and storing them in the
	// record — the prototype's extension to the connection record.
	hashPerConnCost = 18
	// eventCheckCost is one compiled in-event-engine manifest range check.
	eventCheckCost = 2
	// policyOpCost is one interpreted policy-script operation.
	policyOpCost = 10
	// connRecordBytes is the baseline connection-record size.
	connRecordBytes = 400
	// hashFieldBytes is the record growth from carrying the hash fields.
	hashFieldBytes = 24
	// tableEntryBytes is one policy-table entry (set member or counter).
	tableEntryBytes = 40
)

// ManifestDecider resolves whether the node analyzes a session for a
// class. internal/control.Decider implements it; the indirection lets a
// cluster node drive the engine from a fetched wire manifest without
// importing the planner.
type ManifestDecider interface {
	ShouldAnalyze(class int, s traffic.Session) bool
}

// ShedFilter vetoes analysis for sessions the node's load governor has
// dropped responsibility for this epoch. internal/governor.Governor
// implements it. The filter must be a pure function of the session for
// the duration of a Run — the engine precomputes manifest decisions once
// per (session, module) pair and shares them across worker lanes, so a
// filter that mutated mid-run would desynchronize the shards.
type ShedFilter interface {
	Sheds(class int, s traffic.Session) bool
}

// Mode selects the engine variant being benchmarked.
type Mode int

const (
	// ModePlain is unmodified Bro: no coordination machinery at all.
	ModePlain Mode = iota
	// ModeCoordPolicy is the prototype with every coordination check
	// delayed to the policy engine (the paper's implementation
	// alternative 1).
	ModeCoordPolicy
	// ModeCoordEvent is the prototype with checks placed as early as each
	// module permits (alternative 2, the configuration the paper adopts).
	ModeCoordEvent
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeCoordPolicy:
		return "coord-policy"
	case ModeCoordEvent:
		return "coord-event"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config configures one engine instance (one Bro process on one node).
type Config struct {
	Mode    Mode
	Modules []ModuleSpec
	// Plan and Node bind the instance to a network-wide deployment; a nil
	// Plan means a standalone instance whose manifest covers all traffic
	// (the Figure 5 microbenchmark setup: "the sampling manifests ... are
	// configured to specify that this standalone node needs to process all
	// the traffic").
	Plan *core.Plan
	Node int
	// Decider, when non-nil, supplies the Figure 3 manifest decision in
	// place of Plan — the data path a distributed node runs from a wire
	// manifest alone (see internal/control.Decider), with no access to
	// the planner's objects. Class indices must align with Modules.
	Decider ManifestDecider
	// Shed, when non-nil, is consulted after the manifest decision: a
	// session the filter sheds is not analyzed even though the manifest
	// selects it — the node gave up that range under overload. It stacks
	// on either decision path (Plan or Decider) and on standalone
	// instances.
	Shed ShedFilter
	// Hasher supplies the (optionally keyed) packet-selection hash.
	Hasher hashing.Hasher
	// FineGrained enables the Section 2.5 extension: modules marked
	// FirstPacketOnly subscribe to a first-packet event instead of full
	// connection records, so a node whose manifests select only such
	// modules for a session skips connection tracking for it entirely —
	// removing the duplicated baseline processing the paper identifies as
	// the remaining overhead of the coordinated deployment.
	FineGrained bool
	// Workers shards the run's analysis work across a worker pool: 0
	// selects GOMAXPROCS, 1 the serial legacy path. The shard unit is the
	// module lane (each worker owns whole modules, including their policy
	// tables), plus one lane for session-level connection processing, so
	// the sharded run is bit-identical to the serial one — see DESIGN.md
	// for why connection-keyed sharding cannot make that guarantee.
	Workers int
	// Metrics, when non-nil, receives engine observability: per-module
	// analyzed packets and bytes, policy-table sizes, session/connection/
	// alert totals, and run plus per-lane wall times. Aggregates are
	// recorded when a run (or lane) finishes, never inside the per-session
	// loop, and the registry is write-only, so reports are bit-identical
	// with or without it (nil is the no-op default; see internal/obs).
	Metrics *obs.Registry
	// Trace, when live, receives one engine_run event per completed run
	// with the report's aggregates. The event is emitted after lanes merge,
	// at the top-level call only, so traced sharded runs stay bit-identical
	// to serial ones (the zero Span is the no-op default; see
	// internal/trace).
	Trace trace.Span
}

// Report is the resource accounting of one engine run: the analogue of the
// paper's atop-derived CPU (utilization x time) and maximum-resident-memory
// measurements, in deterministic cost units.
type Report struct {
	Node         int
	CPUUnits     float64
	MemBytes     float64
	Conns        int // connections with created state
	Observed     int // sessions seen on the wire
	Alerts       int
	PerModuleCPU map[string]float64
}

// engine is the mutable state of one run (or of one lane of a sharded run).
type engine struct {
	cfg       Config
	rep       Report
	vm        vm
	tables    []*moduleTables
	onAnalyze func(mi int, s traffic.Session)

	// Sharding state. A serial engine owns everything: sessionOwner true
	// and owned nil. A lane engine owns either the session-level costs
	// (capture, connection records) or a subset of module lanes, so that
	// summing the lane reports reproduces the serial report exactly.
	sessionOwner bool
	owned        []bool // nil = all modules
	// pass, when non-nil, holds the precomputed manifest decisions for
	// every (session, module) pair, flattened session-major. The decisions
	// are stateless, so one shared read-only copy serves every lane.
	pass []bool

	// modPkts/modBytes accumulate analyzed packets and bytes per owned
	// module, allocated only when cfg.Metrics is live so the
	// uninstrumented hot path is untouched.
	modPkts  []float64
	modBytes []float64
}

// Run processes the session trace through one engine instance and returns
// its resource report. Sessions are processed in pseudo-realtime order as
// in the paper's emulation; the cost model is deterministic so repeated
// runs agree exactly, and sharded runs (cfg.Workers != 1) reproduce the
// serial report bit for bit.
func Run(cfg Config, sessions []traffic.Session) Report {
	return runInternal(cfg, sessions, nil)
}

// runInternal is Run with an optional callback invoked for every (module,
// session) analysis performed; RunWithLog uses it to build conn logs.
// Callback runs stay serial so the log order matches the trace order.
func runInternal(cfg Config, sessions []traffic.Session, onAnalyze func(int, traffic.Session)) Report {
	sp := cfg.Metrics.StartSpan("bro.run_ns")
	defer sp.End()
	var rep Report
	if w := parallel.Resolve(cfg.Workers, len(cfg.Modules)+1); w > 1 && onAnalyze == nil && len(cfg.Modules) > 0 {
		rep = runSharded(cfg, sessions, w)
	} else {
		e := newEngine(cfg, onAnalyze)
		for si, s := range sessions {
			e.processSession(si, s)
		}
		rep = e.finish()
	}
	cfg.Trace.Event(trace.EvEngineRun,
		trace.Int("alerts", rep.Alerts), trace.Int("conns", rep.Conns),
		trace.F64("cpu", rep.CPUUnits))
	return rep
}

// newEngine builds a serial engine (owns every lane).
func newEngine(cfg Config, onAnalyze func(int, traffic.Session)) *engine {
	e := &engine{cfg: cfg, onAnalyze: onAnalyze, sessionOwner: true}
	e.rep.Node = cfg.Node
	e.rep.PerModuleCPU = make(map[string]float64, len(cfg.Modules))
	e.vm.cost = &e.rep.CPUUnits
	e.vm.alerts = &e.rep.Alerts
	e.tables = make([]*moduleTables, len(cfg.Modules))
	for i := range e.tables {
		e.tables[i] = newModuleTables()
	}
	if cfg.Metrics != nil {
		e.modPkts = make([]float64, len(cfg.Modules))
		e.modBytes = make([]float64, len(cfg.Modules))
	}
	return e
}

// finish folds the policy-table footprints of the owned modules into the
// report, records the run's aggregates to the metrics registry, and
// returns the report.
func (e *engine) finish() Report {
	for mi, t := range e.tables {
		if e.owns(mi) {
			e.rep.MemBytes += t.memBytes()
		}
	}
	e.recordMetrics()
	return e.rep
}

// recordMetrics publishes the finished run's (or lane's) aggregates.
// Counters are atomic and every lane owns disjoint work, so summing lane
// contributions reproduces exactly the serial run's totals regardless of
// scheduling order.
func (e *engine) recordMetrics() {
	m := e.cfg.Metrics
	if m == nil {
		return
	}
	if e.sessionOwner {
		m.Add("bro.sessions_observed", int64(e.rep.Observed))
		m.Add("bro.conns", int64(e.rep.Conns))
	}
	m.Add("bro.alerts", int64(e.rep.Alerts))
	m.Add("bro.cpu_units", int64(e.rep.CPUUnits))
	m.Add("bro.mem_bytes", int64(e.rep.MemBytes))
	for mi, spec := range e.cfg.Modules {
		if !e.owns(mi) {
			continue
		}
		m.Add("bro.module_pkts."+spec.Name, int64(e.modPkts[mi]))
		m.Add("bro.module_bytes."+spec.Name, int64(e.modBytes[mi]))
		if tb := e.tables[mi].memBytes(); tb > 0 {
			m.Add("bro.module_table_bytes."+spec.Name, int64(tb))
			m.Observe("bro.table_bytes", int64(tb))
		}
	}
}

// owns reports whether this engine owns module lane mi.
func (e *engine) owns(mi int) bool { return e.owned == nil || e.owned[mi] }

// runSharded is the parallel form of runInternal. The decomposition is
// exact, not approximate: per-module policy state (the only cross-session
// state in the engine) is confined to its module lane, every lane walks the
// trace in order, all cost increments are integer-valued (so float sums are
// associative at these magnitudes), and lane reports are merged in lane
// order. A connection-keyed partition would instead split per-source and
// per-destination policy tables across workers and change alert and memory
// accounting relative to the serial run.
func runSharded(cfg Config, sessions []traffic.Session, workers int) Report {
	L := len(cfg.Modules)
	// Phase 1: the (session, module) manifest decisions are stateless, so
	// compute them once, in parallel blocks, shared read-only by all lanes.
	pass := precomputePasses(cfg, sessions, workers)
	// Phase 2: lane 0 owns session-level connection processing; lane mi+1
	// owns module mi's analysis work and tables.
	reports := parallel.Map(workers, L+1, func(lane int) Report {
		lsp := cfg.Metrics.StartSpan("bro.lane_ns")
		defer lsp.End()
		e := newEngine(cfg, nil)
		e.pass = pass
		e.owned = make([]bool, L)
		if lane == 0 {
			e.sessionOwner = true
		} else {
			e.sessionOwner = false
			e.owned[lane-1] = true
		}
		for si, s := range sessions {
			e.processSession(si, s)
		}
		return e.finish()
	})
	merged := Report{Node: cfg.Node, PerModuleCPU: make(map[string]float64, L)}
	for _, r := range reports {
		merged.CPUUnits += r.CPUUnits
		merged.MemBytes += r.MemBytes
		merged.Conns += r.Conns
		merged.Observed += r.Observed
		merged.Alerts += r.Alerts
		for name, c := range r.PerModuleCPU {
			merged.PerModuleCPU[name] += c
		}
	}
	return merged
}

// precomputePasses evaluates the Figure 3 manifest decision for every
// (session, module) pair. The decision depends only on the plan and the
// session tuple, never on engine state, which is what makes it safe to
// hoist out of the per-lane walks.
func precomputePasses(cfg Config, sessions []traffic.Session, workers int) []bool {
	L := len(cfg.Modules)
	pass := make([]bool, len(sessions)*L)
	probe := &engine{cfg: cfg}
	coordinated := cfg.Mode != ModePlain
	const block = 1024
	nBlocks := (len(sessions) + block - 1) / block
	parallel.ForEach(workers, nBlocks, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > len(sessions) {
			hi = len(sessions)
		}
		for si := lo; si < hi; si++ {
			s := sessions[si]
			row := pass[si*L : (si+1)*L]
			for mi, m := range cfg.Modules {
				if !m.MatchesSession(s) {
					continue
				}
				if !coordinated || probe.analyzes(mi, s) {
					row[mi] = true
				}
			}
		}
	})
	return pass
}

// analyzes resolves the Figure 3 manifest decision for one module, after
// the governor's shed veto.
func (e *engine) analyzes(mi int, s traffic.Session) bool {
	if e.cfg.Shed != nil && e.cfg.Shed.Sheds(mi, s) {
		return false
	}
	if e.cfg.Decider != nil {
		return e.cfg.Decider.ShouldAnalyze(mi, s)
	}
	if e.cfg.Plan == nil {
		return true // standalone: manifest covers everything
	}
	return e.cfg.Plan.ShouldAnalyze(e.cfg.Node, mi, s, e.cfg.Hasher)
}

// hasManifest reports whether the instance enforces a real (partial)
// manifest — via the planner's Plan, a wire Decider, or a governor shed
// filter — as opposed to the standalone all-traffic default.
func (e *engine) hasManifest() bool {
	return e.cfg.Plan != nil || e.cfg.Decider != nil || e.cfg.Shed != nil
}

// checkStage returns where module mi's coordination check executes under
// the configured mode.
func (e *engine) checkStage(mi int) Stage {
	if e.cfg.Mode == ModeCoordPolicy {
		return StagePolicy
	}
	return e.cfg.Modules[mi].EarliestCheck
}

func (e *engine) processSession(si int, s traffic.Session) {
	pkts := float64(s.Packets)
	coordinated := e.cfg.Mode != ModePlain

	if e.sessionOwner {
		e.rep.Observed++
		// Every observed packet pays capture cost regardless of analysis: a
		// node on the path cannot avoid seeing the traffic (Section 2.5's
		// duplicated baseline tracking).
		e.rep.CPUUnits += pkts * pktCaptureCost
		if coordinated {
			// The prototype computes the hash combinations once per
			// connection and carries them in the connection record.
			e.rep.CPUUnits += hashPerConnCost
		}
	}

	// Which modules would analyze this session here (manifest decision)?
	var passes []bool
	anyPass := false
	if e.pass != nil {
		passes = e.pass[si*len(e.cfg.Modules) : (si+1)*len(e.cfg.Modules)]
		for _, ok := range passes {
			if ok {
				anyPass = true
				break
			}
		}
	} else {
		passes = make([]bool, len(e.cfg.Modules))
		for mi, m := range e.cfg.Modules {
			if !m.MatchesSession(s) {
				continue
			}
			if !coordinated || e.analyzes(mi, s) {
				passes[mi] = true
				anyPass = true
			}
		}
	}

	// The prototype's basic-processing optimization: skip creating session
	// state for traffic entirely outside this instance's manifests ("we
	// add a check in the basic connection processing step to avoid
	// creating session state for traffic that falls outside the sampling
	// manifest for this Bro instance"). Unmodified Bro has no such check
	// and always creates connection state.
	// Unmodified Bro has no such check and always creates connection
	// state; a standalone coordinated instance's manifest covers all
	// traffic, so nothing is droppable there either.
	if coordinated && e.hasManifest() && !anyPass {
		return
	}

	// Fine-grained coordination (Section 2.5): when every module this node
	// analyzes the session for needs only its first packet, serve them
	// from a first-packet event and skip connection tracking entirely.
	if e.cfg.FineGrained && coordinated && e.hasManifest() && e.fineGrainedOnly(passes) {
		if e.sessionOwner {
			e.rep.CPUUnits += connPktCost // classify the first packet once
		}
		for mi, m := range e.cfg.Modules {
			if !passes[mi] || !m.FirstPacketOnly || !e.owns(mi) {
				continue
			}
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			if e.modPkts != nil {
				e.modPkts[mi]++ // first-packet event: one packet served
				e.modBytes[mi] += float64(s.Bytes)
			}
			before := e.rep.CPUUnits
			// The manifest check runs once, on the first-packet event.
			ctx := e.contextFor(mi, s, true)
			e.vm.run(checkScript, ctx, e.tables[mi])
			if len(m.PolicyScript) > 0 {
				e.vm.run(m.PolicyScript, ctx, e.tables[mi])
			}
			e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
		}
		return
	}

	// Connection-record creation and per-packet connection processing.
	if e.sessionOwner {
		e.rep.CPUUnits += connSetupCost + pkts*connPktCost
		e.rep.MemBytes += connRecordBytes
		if coordinated {
			e.rep.MemBytes += hashFieldBytes
		}
		e.rep.Conns++
	}

	for mi, m := range e.cfg.Modules {
		if !e.owns(mi) || !m.SubscribedTo(s) {
			continue
		}
		before := e.rep.CPUUnits

		analyzed := passes[mi] && m.MatchesSession(s)
		// A module with no analysis work (the baseline pseudo-module)
		// has nothing to gate, so it carries no coordination check.
		hasWork := m.EventOpsPerPkt > 0 || len(m.PolicyScript) > 0
		if coordinated && hasWork {
			switch e.checkStage(mi) {
			case StageEvent:
				// One compiled check at module initialization.
				e.rep.CPUUnits += eventCheckCost
			case StagePolicy:
				// The interpreted check runs in every policy event handler
				// invocation the module receives for this connection.
				ctx := e.contextFor(mi, s, passes[mi])
				n := m.PolicyEventsPerConn
				if n < 1 {
					n = 1
				}
				for k := 0.0; k < n; k++ {
					e.vm.run(checkScript, ctx, e.tables[mi])
				}
			}
		}

		if analyzed {
			if e.onAnalyze != nil {
				e.onAnalyze(mi, s)
			}
			if e.modPkts != nil {
				e.modPkts[mi] += pkts
				e.modBytes[mi] += float64(s.Bytes)
			}
			// Event-engine protocol work per packet.
			e.rep.CPUUnits += m.EventOpsPerPkt * pkts
			// Policy handlers.
			if len(m.PolicyScript) > 0 {
				ctx := e.contextFor(mi, s, true)
				for k := 0.0; k < m.PolicyEventsPerConn; k++ {
					e.vm.run(m.PolicyScript, ctx, e.tables[mi])
				}
			}
			// Per-item analysis state: session/flow-scoped modules allocate
			// per connection; source/destination-scoped state lives in the
			// policy tables (accounted via memBytes) plus a fixed record.
			switch m.Agg {
			case core.BySource, core.ByDestination:
				// counted through moduleTables
			default:
				e.rep.MemBytes += m.StateBytes
			}
		}
		e.rep.PerModuleCPU[m.Name] += e.rep.CPUUnits - before
	}
}

// fineGrainedOnly reports whether every passing module for this session is
// first-packet-only (given at least one passes).
func (e *engine) fineGrainedOnly(passes []bool) bool {
	for mi, ok := range passes {
		if ok && !e.cfg.Modules[mi].FirstPacketOnly {
			return false
		}
	}
	return true
}

// contextFor builds the VM context for one module invocation.
func (e *engine) contextFor(mi int, s traffic.Session, inRange bool) *vmContext {
	m := e.cfg.Modules[mi]
	h := e.cfg.Hasher
	var hv float64
	switch m.Agg {
	case core.ByFlow:
		hv = h.Flow(s.Tuple)
	case core.BySource:
		hv = h.Source(s.Tuple)
	case core.ByDestination:
		hv = h.Destination(s.Tuple)
	default:
		hv = h.Session(s.Tuple)
	}
	return &vmContext{
		srcKey:  float64(s.Tuple.SrcIP),
		dstKey:  float64(s.Tuple.DstIP),
		port:    float64(s.Tuple.DstPort),
		pkts:    float64(s.Packets),
		hash:    hv,
		inRange: inRange,
	}
}

// Overhead compares a coordinated run against a plain run on the same
// trace: the Figure 5 metrics.
type Overhead struct {
	Module    string
	CPUPlain  float64
	CPUCoord  float64
	MemPlain  float64
	MemCoord  float64
	CPURatio  float64 // (coord - plain) / plain
	MemRatio  float64
	CheckMode Mode
}

// MeasureOverhead runs one module in isolation (plus baseline connection
// processing) on the trace in plain and coordinated form and reports the
// overhead ratios — the paper's standalone microbenchmark. The baseline
// "module" measures pure connection processing.
func MeasureOverhead(spec ModuleSpec, mode Mode, sessions []traffic.Session) Overhead {
	mods := []ModuleSpec{spec}
	plain := Run(Config{Mode: ModePlain, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	coord := Run(Config{Mode: mode, Modules: mods, Hasher: hashing.Hasher{Key: 1}}, sessions)
	o := Overhead{
		Module:    spec.Name,
		CPUPlain:  plain.CPUUnits,
		CPUCoord:  coord.CPUUnits,
		MemPlain:  plain.MemBytes,
		MemCoord:  coord.MemBytes,
		CheckMode: mode,
	}
	if plain.CPUUnits > 0 {
		o.CPURatio = (coord.CPUUnits - plain.CPUUnits) / plain.CPUUnits
	}
	if plain.MemBytes > 0 {
		o.MemRatio = (coord.MemBytes - plain.MemBytes) / plain.MemBytes
	}
	return o
}
