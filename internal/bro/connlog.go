package bro

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nwdeploy/internal/traffic"
)

// ConnLog mirrors Bro's conn.log: one record per connection per analysis
// module that handled it. The paper verified that its network-wide
// deployment "is logically equivalent to running a single NIDS on the
// entire traffic" by inspecting Bro logs; LogEquivalent makes that check
// mechanical — a standalone instance's log must equal the merged logs of
// all coordinated nodes, record for record.
type ConnLog struct {
	Records []ConnRecord
}

// ConnRecord is one analyzed (connection, module) pair.
type ConnRecord struct {
	Node    int
	Module  string
	Tuple   string // canonical textual 5-tuple
	Packets int
	Bytes   int
}

// logKey is the identity of a record independent of where it was analyzed.
func (r ConnRecord) logKey() string {
	var b []byte
	b = append(b, r.Module...)
	b = append(b, '|')
	b = append(b, r.Tuple...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(r.Packets), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(r.Bytes), 10)
	return string(b)
}

// canonicalTupleString renders both directions of a session identically,
// via strconv append (fmt's reflection path costs ~4x as much, and the log
// callback runs once per analyzed (session, module) pair).
func canonicalTupleString(s traffic.Session) string {
	t := s.Tuple
	if t.SrcIP > t.DstIP || (t.SrcIP == t.DstIP && t.SrcPort > t.DstPort) {
		t = t.Reverse()
	}
	b := make([]byte, 0, 48)
	b = appendIPv4(b, t.SrcIP)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(t.SrcPort), 10)
	b = append(b, " -> "...)
	b = appendIPv4(b, t.DstIP)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(t.DstPort), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(t.Proto), 10)
	return string(b)
}

func appendIPv4(b []byte, v uint32) []byte {
	b = strconv.AppendInt(b, int64(v>>24), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(v>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(v>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(v&0xff), 10)
	return b
}

// RunWithLog is Run plus a conn.log of every (session, module) analysis the
// instance performed.
func RunWithLog(cfg Config, sessions []traffic.Session) (Report, *ConnLog) {
	// Most coordinated nodes analyze a fraction of their trace; a modest
	// preallocation still saves the first several append growth copies.
	logger := &ConnLog{Records: make([]ConnRecord, 0, len(sessions)/2+16)}
	rep := runInternal(cfg, sessions, func(mi int, s traffic.Session) {
		logger.Records = append(logger.Records, ConnRecord{
			Node:    cfg.Node,
			Module:  cfg.Modules[mi].Name,
			Tuple:   canonicalTupleString(s),
			Packets: s.Packets,
			Bytes:   s.Bytes,
		})
	})
	return rep, logger
}

// Merge combines logs from multiple nodes into one.
func Merge(logs ...*ConnLog) *ConnLog {
	out := &ConnLog{}
	for _, l := range logs {
		out.Records = append(out.Records, l.Records...)
	}
	return out
}

// Sorted returns the record keys in canonical order (for diffing).
func (l *ConnLog) Sorted() []string {
	keys := make([]string, len(l.Records))
	for i, r := range l.Records {
		keys[i] = r.logKey()
	}
	sort.Strings(keys)
	return keys
}

// LogEquivalent reports whether two logs contain exactly the same analysis
// records (ignoring which node performed each), returning the first
// divergence for diagnostics.
func LogEquivalent(a, b *ConnLog) (bool, string) {
	ka, kb := a.Sorted(), b.Sorted()
	if len(ka) != len(kb) {
		return false, fmt.Sprintf("record counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false, fmt.Sprintf("record %d differs:\n  %s\n  %s", i, ka[i], kb[i])
		}
	}
	return true, ""
}

// WriteTSV emits the log in Bro's tab-separated style with a header line.
func (l *ConnLog) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#fields\tnode\tmodule\tconn\tpackets\tbytes"); err != nil {
		return err
	}
	for _, r := range l.Records {
		line := strings.Join([]string{
			fmt.Sprint(r.Node), r.Module, r.Tuple, fmt.Sprint(r.Packets), fmt.Sprint(r.Bytes),
		}, "\t")
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
