package bro

import (
	"math"
	"math/rand"
	"testing"

	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/traffic"
)

// wireDeciderScenario builds a solved deployment and hands back the wire
// manifest's Decider for one node — the full data-plane decision stack.
func wireDeciderScenario(t *testing.T) ([]ModuleSpec, []traffic.Session, *control.Decider, int) {
	t.Helper()
	topo, modules, sessions, plan := solvedScenario(t)
	node := 10
	m, err := control.ManifestFromPlan(plan, node, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return modules, nodeTraceFor(topo, sessions, node), control.NewDecider(m), node
}

// The engine's published cpu_units/mem_bytes counters must equal the
// report they were derived from — rounded once at the top level — and must
// be identical for the serial and sharded paths. The previous per-lane
// int64() truncation could lose up to one unit per lane, so sharded totals
// drifted from serial ones and neither matched the report.
func TestRunMetricsMatchReport(t *testing.T) {
	modules, sessions, dec, node := wireDeciderScenario(t)
	for _, workers := range []int{1, 4} {
		reg := obs.New()
		cfg := Config{
			Mode: ModeCoordEvent, Modules: modules, Decider: dec, Node: node,
			Hasher: hashing.Hasher{Key: 1}, Workers: workers, Metrics: reg,
		}
		rep := Run(cfg, sessions)
		if got, want := reg.Counter("bro.cpu_units").Value(), int64(math.Round(rep.CPUUnits)); got != want {
			t.Errorf("workers=%d: bro.cpu_units = %d, round(report.CPUUnits) = %d", workers, got, want)
		}
		if got, want := reg.Counter("bro.mem_bytes").Value(), int64(math.Round(rep.MemBytes)); got != want {
			t.Errorf("workers=%d: bro.mem_bytes = %d, round(report.MemBytes) = %d", workers, got, want)
		}
	}
}

// The per-session decision path — batch manifest check, shed filter, pass
// bookkeeping, cost accounting — must not allocate once the engine is
// warm. This is the tentpole contract: session ingestion at line rate
// cannot afford per-session garbage.
func TestEngineDecisionPathAllocFree(t *testing.T) {
	modules, sessions, dec, node := wireDeciderScenario(t)
	if len(sessions) < 64 {
		t.Fatal("scenario trace too small")
	}
	// Strip policy scripts: the policy VM's table writes are per-connection
	// analysis state, not the decision path under test here.
	lean := make([]ModuleSpec, len(modules))
	for i, m := range modules {
		lean[i] = m
		lean[i].PolicyScript = nil
		lean[i].EarliestCheck = StageEvent
	}
	cfg := Config{
		Mode: ModeCoordEvent, Modules: lean, Decider: dec, Node: node,
		Hasher: hashing.Hasher{Key: 1},
	}
	e := newEngine(cfg, nil)
	for si, s := range sessions { // warm up maps and the VM
		e.processSession(si, s)
	}
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		e.processSession(i, sessions[i])
		i = (i + 1) % len(sessions)
	}); n != 0 {
		t.Fatalf("decision path allocates %v per session, want 0", n)
	}
}

// The batch decision fast path must be invisible: a Decider driven through
// DecideAll and the same Decider driven per class must produce identical
// reports, serial and sharded alike. perClassOnly hides the BatchDecider
// interface to force the slow path.
type perClassOnly struct{ d *control.Decider }

func (p perClassOnly) ShouldAnalyze(class int, s traffic.Session) bool {
	return p.d.ShouldAnalyze(class, s)
}

func TestBatchDecisionPathEquivalence(t *testing.T) {
	modules, sessions, dec, node := wireDeciderScenario(t)
	for _, workers := range []int{1, 4} {
		base := Config{
			Mode: ModeCoordEvent, Modules: modules, Node: node,
			Hasher: hashing.Hasher{Key: 1}, Workers: workers,
		}
		batched := base
		batched.Decider = dec
		perClass := base
		perClass.Decider = perClassOnly{dec}
		a, b := Run(batched, sessions), Run(perClass, sessions)
		if a.CPUUnits != b.CPUUnits || a.MemBytes != b.MemBytes ||
			a.Conns != b.Conns || a.Alerts != b.Alerts {
			t.Fatalf("workers=%d: batch and per-class decisions disagree:\n batch: %+v\n class: %+v",
				workers, a, b)
		}
	}
}

var _ core.Scope // keep core imported if scenarios change

// The strconv-based tuple rendering must be byte-identical to the fmt-based
// FiveTuple.String it replaced: conn-log equivalence checks compare these
// strings across deployments.
func TestCanonicalTupleStringMatchesFiveTupleString(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		ft := hashing.FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
		canon := ft
		if canon.SrcIP > canon.DstIP || (canon.SrcIP == canon.DstIP && canon.SrcPort > canon.DstPort) {
			canon = canon.Reverse()
		}
		got := canonicalTupleString(traffic.Session{Tuple: ft})
		if want := canon.String(); got != want {
			t.Fatalf("canonicalTupleString(%v) = %q, want %q", ft, got, want)
		}
	}
}
