package bro

import (
	"fmt"

	"nwdeploy/internal/core"
	"nwdeploy/internal/traffic"
)

// Stage is where a module's coordination check executes.
type Stage int

const (
	// StageEvent places the check in the compiled event engine, at module
	// initialization ("we initialize the HTTP module for a session only if
	// the session hash falls in the range assigned to this node").
	StageEvent Stage = iota
	// StagePolicy places the check in the interpreted policy script. For
	// some modules (scan, TFTP) this is the only option because "the only
	// processing that occurs is in the policy stage".
	StagePolicy
)

// ModuleSpec describes one NIDS analysis module: its traffic specification,
// aggregation semantics, resource footprint, and where its coordination
// check can run at the earliest.
type ModuleSpec struct {
	Name string
	// Ports filters the module's traffic T_i; empty means all traffic.
	Ports []uint16
	// Transport restricts to a transport protocol (6 TCP, 17 UDP); 0 = any.
	Transport uint8
	// SubscribesAll marks modules whose policy scripts receive events for
	// every connection regardless of Ports (scan and TFTP-style modules
	// watch the raw connection stream to find their traffic).
	SubscribesAll bool

	Scope core.Scope
	Agg   core.Aggregation

	// EventOpsPerPkt is compiled event-engine work per packet (protocol
	// parsing, signature byte scanning).
	EventOpsPerPkt float64
	// PolicyEventsPerConn is how many policy-engine event-handler
	// invocations one connection generates for this module. Modules with
	// many per-connection events (HTTP requests, IRC messages, login lines)
	// pay the interpreter — and the interpreted coordination check — that
	// many times per connection.
	PolicyEventsPerConn float64
	// PolicyScript is the interpreted handler body, executed
	// PolicyEventsPerConn times per analyzed connection.
	PolicyScript Script
	// StateBytes is per-item analysis state beyond the connection record.
	StateBytes float64

	// EarliestCheck is the earliest stage the coordination check can be
	// implemented for this module.
	EarliestCheck Stage

	// FirstPacketOnly marks modules that need to observe only the first
	// packet of each connection (the paper's Section 2.5 example: "Scan
	// needs to observe only the first packet in a connection to track the
	// number of distinct destination IPs that a source contacts"). Under
	// the fine-grained coordination extension these modules subscribe to a
	// first-packet event instead of full connection records, so a node
	// running only such modules skips connection tracking entirely.
	FirstPacketOnly bool
}

// MatchesSession reports whether the module analyzes the session.
func (m ModuleSpec) MatchesSession(s traffic.Session) bool {
	if m.Transport != 0 && s.Tuple.Proto != m.Transport {
		return false
	}
	if len(m.Ports) == 0 {
		return true
	}
	for _, p := range m.Ports {
		if s.Tuple.DstPort == p {
			return true
		}
	}
	return false
}

// SubscribedTo reports whether the module's policy handlers are invoked for
// the session at all (a superset of MatchesSession for SubscribesAll
// modules, whose scripts run on every connection to find their traffic).
func (m ModuleSpec) SubscribedTo(s traffic.Session) bool {
	if m.SubscribesAll {
		return m.Transport == 0 || s.Tuple.Proto == m.Transport
	}
	return m.MatchesSession(s)
}

// The scan-detection threshold: alert when a source contacts more distinct
// destinations than this.
const scanThreshold = 20

// The SYN-flood threshold: alert when a destination accumulates more
// connections than this.
const synFloodThreshold = 500

// StandardModules returns the nine modules of the paper's Figure 5:
// Baseline, Scan, IRC, Login, TFTP, HTTP, Blaster, Signature, SYNFlood.
// Cost parameters are calibrated so the standalone microbenchmarks
// reproduce the paper's relative overheads (see DESIGN.md).
func StandardModules() []ModuleSpec {
	return []ModuleSpec{
		{
			// Baseline is plain connection processing with no analysis
			// module enabled: it isolates the cost of the coordination
			// extensions themselves.
			Name:  "baseline",
			Scope: core.PerPath, Agg: core.BySession,
			EarliestCheck: StageEvent,
		},
		{
			// Scan detection tracks distinct destinations per source. It
			// receives raw connection events for all traffic and lives
			// entirely in the policy engine; ingress nodes are the only
			// locations that see everything a host initiates.
			Name:          "scan",
			SubscribesAll: true,
			Scope:         core.PerIngress, Agg: core.BySource,
			PolicyEventsPerConn: 3,
			PolicyScript: Script{
				{Code: OpLoadDst},
				{Code: OpLoadSrc},
				{Code: OpAddSet},
				{Code: OpPush, Arg: scanThreshold},
				{Code: OpGT},
				{Code: OpAlertIf},
			},
			StateBytes:      120,
			EarliestCheck:   StagePolicy,
			FirstPacketOnly: true,
		},
		{
			// IRC analysis parses messages in the event engine and runs
			// per-message policy handlers.
			Name:  "irc",
			Ports: []uint16{6667}, Transport: 6,
			Scope: core.PerPath, Agg: core.BySession,
			EventOpsPerPkt:      12,
			PolicyEventsPerConn: 20,
			PolicyScript: Script{
				{Code: OpLoadPort},
				{Code: OpPush, Arg: 6667},
				{Code: OpEQ},
				{Code: OpDrop},
			},
			StateBytes:    180,
			EarliestCheck: StageEvent,
		},
		{
			// Login (telnet/rlogin) watches interactive sessions
			// line-by-line.
			Name:  "login",
			Ports: []uint16{23, 513}, Transport: 6,
			Scope: core.PerPath, Agg: core.BySession,
			EventOpsPerPkt:      10,
			PolicyEventsPerConn: 18,
			PolicyScript: Script{
				{Code: OpLoadPkts},
				{Code: OpPush, Arg: 4000},
				{Code: OpGT},
				{Code: OpAlertIf},
			},
			StateBytes:    160,
			EarliestCheck: StageEvent,
		},
		{
			// TFTP processing receives raw per-packet udp_request/udp_reply
			// events (it must find TFTP transfers on any port) and is
			// policy-only, which is why its coordination check is costly.
			Name:          "tftp",
			SubscribesAll: true, Transport: 17,
			Scope: core.PerPath, Agg: core.BySession,
			PolicyEventsPerConn: 10,
			PolicyScript: Script{
				{Code: OpLoadPort},
				{Code: OpPush, Arg: 69},
				{Code: OpEQ},
				{Code: OpDrop},
			},
			StateBytes:    100,
			EarliestCheck: StagePolicy,
		},
		{
			// HTTP analysis is the heaviest protocol module: event-engine
			// parsing per packet plus a policy handler per request.
			Name:  "http",
			Ports: []uint16{80}, Transport: 6,
			Scope: core.PerPath, Agg: core.BySession,
			EventOpsPerPkt:      25,
			PolicyEventsPerConn: 9,
			PolicyScript: Script{
				{Code: OpLoadPkts},
				{Code: OpPush, Arg: 1},
				{Code: OpGT},
				{Code: OpDrop},
			},
			StateBytes:    200,
			EarliestCheck: StageEvent,
		},
		{
			// Blaster worm detection watches MSRPC (port 135) connections
			// in a small policy script; it tracks per-source behaviour, so
			// like scan detection it belongs at the source's ingress.
			Name:  "blaster",
			Ports: []uint16{135}, Transport: 6,
			Scope: core.PerIngress, Agg: core.BySource,
			PolicyEventsPerConn: 1,
			PolicyScript: Script{
				{Code: OpLoadSrc},
				{Code: OpIncr},
				{Code: OpPush, Arg: 100},
				{Code: OpGT},
				{Code: OpAlertIf},
			},
			StateBytes:      60,
			EarliestCheck:   StagePolicy,
			FirstPacketOnly: true,
		},
		{
			// Signature matching byte-scans every packet in the event
			// engine; no policy-stage work.
			Name:  "signature",
			Scope: core.PerPath, Agg: core.BySession,
			EventOpsPerPkt: 40,
			StateBytes:     80,
			EarliestCheck:  StageEvent,
		},
		{
			// SYN-flood detection counts connections per destination with a
			// single cheap policy handler on TCP connections; inbound
			// floods are best detected at the victim's egress gateway.
			Name:      "synflood",
			Transport: 6, SubscribesAll: true,
			Scope: core.PerEgress, Agg: core.ByDestination,
			PolicyEventsPerConn: 1,
			PolicyScript: Script{
				{Code: OpLoadDst},
				{Code: OpIncr},
				{Code: OpPush, Arg: synFloodThreshold},
				{Code: OpGT},
				{Code: OpAlertIf},
			},
			StateBytes:      60,
			EarliestCheck:   StagePolicy,
			FirstPacketOnly: true,
		},
	}
}

// WithDuplicates grows the standard module set to n modules by cloning
// HTTP, IRC, Login, and TFTP instances, exactly as the paper does to
// emulate adding NIDS functionality ("we start with the set of modules
// shown in Figure 5 and create duplicate instances of HTTP, IRC, Login, and
// TFTP modules"). It panics if n is below the standard set's size.
func WithDuplicates(n int) []ModuleSpec {
	base := StandardModules()
	if n < len(base) {
		panic(fmt.Sprintf("bro: cannot shrink standard module set to %d", n))
	}
	byName := map[string]ModuleSpec{}
	for _, m := range base {
		byName[m.Name] = m
	}
	cycle := []string{"http", "irc", "login", "tftp"}
	out := base
	for i := 0; len(out) < n; i++ {
		src := byName[cycle[i%len(cycle)]]
		src.Name = fmt.Sprintf("%s-dup%d", src.Name, i/len(cycle)+2)
		out = append(out, src)
	}
	return out
}

// ModuleSubset returns the first n modules of the standard order, for the
// Figure 6 sweep from 8 toward 21 modules. n below 9 drops from the end of
// the standard list.
func ModuleSubset(n int) []ModuleSpec {
	if n <= len(StandardModules()) {
		return StandardModules()[:n]
	}
	return WithDuplicates(n)
}

// perConnCPU returns the module's total simulated CPU per analyzed
// connection with the given packet count — the basis for the LP's
// CpuReq_i, expressed per packet below.
func (m ModuleSpec) perConnCPU(pkts float64) float64 {
	return m.EventOpsPerPkt*pkts + m.PolicyEventsPerConn*float64(len(m.PolicyScript))*policyOpCost
}

// Classes converts module specs into the planner's class descriptions. The
// CPU requirement is normalized per packet using the expected packet count
// of the module's traffic under the mixed profile, matching how the paper
// derives CpuReq_i from offline profiles.
func Classes(specs []ModuleSpec) []core.Class {
	const meanPkts = 25 // mixed-profile mean packets per session
	classes := make([]core.Class, len(specs))
	for i, m := range specs {
		classes[i] = core.Class{
			Name:       m.Name,
			Scope:      m.Scope,
			Agg:        m.Agg,
			Ports:      m.Ports,
			Transport:  m.Transport,
			CPUPerPkt:  m.perConnCPU(meanPkts)/meanPkts + connPktCost,
			MemPerItem: m.StateBytes + connRecordBytes,
		}
	}
	return classes
}
