// Package bro implements a faithful simulation of the Bro NIDS pipeline the
// paper prototypes on (Section 2.3): an event engine that performs
// per-packet protocol work and maintains connection records, and a policy
// engine that runs site-specific scripts in an interpreter. The two
// coordination-check placements the paper compares — "delay the sampling
// checks until the policy engine stage" versus "implement the sampling
// checks in the event engine as early as possible" — are both implemented,
// and their cost difference arises the same way it does in Bro: policy
// scripts execute in an interpreter whose per-operation cost is an order of
// magnitude above compiled event-engine code ("the policy scripts are
// executed by an interpreter and doing hash lookups/checks is quite
// expensive").
//
// The simulator is driven by synthetic session workloads (internal/traffic)
// and accounts CPU in abstract cost units and memory in bytes; DESIGN.md
// documents the calibration against the paper's Figure 5 and the Dreger et
// al. resource profiles.
package bro

import "fmt"

// OpCode enumerates the policy-interpreter instructions. The set is small
// but operational: scripts really execute, maintain real per-module tables,
// and raise real alerts, so functional equivalence between deployments is
// testable, while every executed instruction is charged interpreter cost.
type OpCode int

const (
	// OpLoadSrc pushes the connection's source address key.
	OpLoadSrc OpCode = iota
	// OpLoadDst pushes the connection's destination address key.
	OpLoadDst
	// OpLoadPort pushes the connection's server port.
	OpLoadPort
	// OpLoadPkts pushes the connection's packet count.
	OpLoadPkts
	// OpLoadHash pushes the connection-record hash selected by the module's
	// aggregation (the hashes the prototype adds to the connection record
	// precisely so scripts need not recompute them).
	OpLoadHash
	// OpPush pushes the immediate argument.
	OpPush
	// OpAddSet pops key then member, inserts member into the per-key set of
	// the module table, and pushes the set's new cardinality. This is the
	// distinct-destination counting at the heart of scan detection.
	OpAddSet
	// OpIncr pops a key, increments its counter, pushes the new value.
	OpIncr
	// OpGT pops b then a, pushes 1 if a > b else 0.
	OpGT
	// OpEQ pops b then a, pushes 1 if a == b else 0.
	OpEQ
	// OpAlertIf pops a value and raises an alert if nonzero.
	OpAlertIf
	// OpRangeCheck pops a hash point and pushes 1 if it lies inside the
	// module's manifest ranges for this connection's coordination unit.
	OpRangeCheck
	// OpDrop pops and discards.
	OpDrop
	// OpRet stops execution; the value on top of the stack (or 1 if empty)
	// is the script result.
	OpRet
)

// Op is one interpreter instruction.
type Op struct {
	Code OpCode
	Arg  float64
}

// Script is a policy-engine program.
type Script []Op

// vmContext is the per-invocation environment a script sees.
type vmContext struct {
	srcKey, dstKey float64
	port           float64
	pkts           float64
	hash           float64 // aggregation hash from the connection record
	inRange        bool    // precomputed manifest membership for OpRangeCheck
}

// moduleTables is the persistent per-module policy state: keyed sets (scan
// detection) and counters (SYN-flood victim counts).
type moduleTables struct {
	sets     map[float64]map[float64]struct{}
	counters map[float64]float64
}

func newModuleTables() *moduleTables {
	return &moduleTables{
		sets:     make(map[float64]map[float64]struct{}),
		counters: make(map[float64]float64),
	}
}

// memBytes estimates the resident size of the tables: one set entry or
// counter is charged at tableEntryBytes.
func (mt *moduleTables) memBytes() float64 {
	n := len(mt.counters)
	for _, s := range mt.sets {
		n += len(s) + 1
	}
	return float64(n) * tableEntryBytes
}

// vm executes policy scripts, charging policyOpCost per executed
// instruction to the bound cost counter.
type vm struct {
	stack  []float64
	cost   *float64
	alerts *int
}

func (m *vm) push(v float64) { m.stack = append(m.stack, v) }

func (m *vm) pop() float64 {
	if len(m.stack) == 0 {
		panic("bro: policy script popped an empty stack")
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

// run executes the script and returns its result value (top of stack, or 1
// when the stack is empty at return — "handler ran to completion").
func (m *vm) run(s Script, ctx *vmContext, tbl *moduleTables) float64 {
	m.stack = m.stack[:0]
	for _, op := range s {
		*m.cost += policyOpCost
		switch op.Code {
		case OpLoadSrc:
			m.push(ctx.srcKey)
		case OpLoadDst:
			m.push(ctx.dstKey)
		case OpLoadPort:
			m.push(ctx.port)
		case OpLoadPkts:
			m.push(ctx.pkts)
		case OpLoadHash:
			m.push(ctx.hash)
		case OpPush:
			m.push(op.Arg)
		case OpAddSet:
			key := m.pop()
			member := m.pop()
			set := tbl.sets[key]
			if set == nil {
				set = make(map[float64]struct{})
				tbl.sets[key] = set
			}
			set[member] = struct{}{}
			m.push(float64(len(set)))
		case OpIncr:
			key := m.pop()
			tbl.counters[key]++
			m.push(tbl.counters[key])
		case OpGT:
			b, a := m.pop(), m.pop()
			m.push(b2f(a > b))
		case OpEQ:
			b, a := m.pop(), m.pop()
			m.push(b2f(a == b))
		case OpAlertIf:
			if m.pop() != 0 {
				*m.alerts++
			}
		case OpRangeCheck:
			m.pop() // the hash operand; membership was resolved against it
			m.push(b2f(ctx.inRange))
		case OpDrop:
			m.pop()
		case OpRet:
			if len(m.stack) == 0 {
				return 1
			}
			return m.stack[len(m.stack)-1]
		default:
			panic(fmt.Sprintf("bro: unknown opcode %d", op.Code))
		}
	}
	if len(m.stack) == 0 {
		return 1
	}
	return m.stack[len(m.stack)-1]
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// checkScript is the interpreted form of the Figure 3 sampling check used
// when a module's coordination check must run in the policy engine: load
// the precomputed hash from the connection record, test it against the
// node's manifest ranges, and return the verdict.
var checkScript = Script{
	{Code: OpLoadHash},
	{Code: OpRangeCheck},
	{Code: OpRet},
}
