package bro

import "math/bits"

// passSet holds the precomputed Figure 3 manifest decisions for every
// (session, module) pair of a run, bit-packed module-major: row mi covers
// all sessions for module mi, one bit per session, plus one extra "any"
// row that ORs the module rows. Versus the previous []bool (one byte per
// pair) this is 8x smaller — at a million sessions and a dozen modules the
// whole set sits in a couple of megabytes of cache-resident words — and
// the any row lets shard lanes skip 64 non-matching sessions per
// TrailingZeros64 instead of testing them one by one.
//
// Writers fill the set in session blocks of passBlock (a multiple of 64,
// so parallel block writers touch disjoint words and need no atomics);
// readers are lock-free after the fill barrier.
type passSet struct {
	words  []uint64
	nMods  int
	nWords int // words per row
}

// passBlock is the session-block granularity of parallel fills. It must
// stay a multiple of 64: block boundaries then fall on word boundaries,
// which is what makes unsynchronized parallel fills race-free.
const passBlock = 1024

func newPassSet(nSessions, nMods int) *passSet {
	nWords := (nSessions + 63) / 64
	return &passSet{
		words:  make([]uint64, (nMods+1)*nWords),
		nMods:  nMods,
		nWords: nWords,
	}
}

// set marks session si as passing for module mi (and in the any row). Not
// atomic: concurrent writers must own disjoint passBlock session blocks.
func (p *passSet) set(si, mi int) {
	w, b := si>>6, uint(si&63)
	p.words[mi*p.nWords+w] |= 1 << b
	p.words[p.nMods*p.nWords+w] |= 1 << b
}

// get reports whether session si passes for module mi.
func (p *passSet) get(si, mi int) bool {
	return p.words[mi*p.nWords+si>>6]>>(uint(si&63))&1 != 0
}

// any reports whether session si passes for any module.
func (p *passSet) any(si int) bool {
	return p.words[p.nMods*p.nWords+si>>6]>>(uint(si&63))&1 != 0
}

// anyWord returns word w of the any row: 64 sessions' any-pass bits.
func (p *passSet) anyWord(w int) uint64 {
	return p.words[p.nMods*p.nWords+w]
}

// forEachAny calls fn(si) for every session in [0, nSessions) whose any
// bit is set, in ascending order, skipping whole zero words.
func (p *passSet) forEachAny(nSessions int, fn func(si int)) {
	row := p.words[p.nMods*p.nWords:]
	for w := 0; w < p.nWords; w++ {
		word := row[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if si := w<<6 + b; si < nSessions {
				fn(si)
			}
		}
	}
}
