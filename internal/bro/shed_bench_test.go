package bro

import (
	"testing"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// neverShed is a live filter that sheds nothing — the steady-state cost of
// wiring a governor into the per-packet decider path.
type neverShed struct{}

func (neverShed) Sheds(int, traffic.Session) bool { return false }

func benchTrace(b *testing.B, n int) []traffic.Session {
	b.Helper()
	topo := topology.Internet2()
	return traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: n, Seed: 17})
}

// BenchmarkShedFilter measures the data-plane cost of the governor hook:
// the baseline engine, the same engine with a filter that never sheds
// (pure per-decision overhead), and one actively shedding half of one
// class's hash space (overhead minus the analysis it skips).
func BenchmarkShedFilter(b *testing.B) {
	trace := benchTrace(b, 3000)
	h := hashing.Hasher{Key: 3}
	mods := StandardModules()
	run := func(b *testing.B, shed ShedFilter) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Run(Config{Mode: ModeCoordEvent, Modules: mods, Hasher: h, Shed: shed}, trace)
		}
	}
	b.Run("none", func(b *testing.B) { run(b, nil) })
	b.Run("idle", func(b *testing.B) { run(b, neverShed{}) })
	b.Run("active", func(b *testing.B) { run(b, rangeShed{class: 7, lo: 0, hi: 0.5, h: h}) })
}
