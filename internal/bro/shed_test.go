package bro

import (
	"testing"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// rangeShed sheds sessions of one class whose session hash falls in a
// range — the shape of the governor's per-epoch shed state.
type rangeShed struct {
	class  int
	lo, hi float64
	h      hashing.Hasher
}

func (f rangeShed) Sheds(class int, s traffic.Session) bool {
	if class != f.class {
		return false
	}
	x := f.h.Session(s.Tuple)
	return x >= f.lo && x < f.hi
}

func TestShedFilterVetoesAnalysis(t *testing.T) {
	trace := mixedTrace(t, 4000)
	h := hashing.Hasher{Key: 3}
	mods := StandardModules()
	base := Run(Config{Mode: ModeCoordEvent, Modules: mods, Hasher: h}, trace)
	shed := Run(Config{
		Mode: ModeCoordEvent, Modules: mods, Hasher: h,
		Shed: rangeShed{class: 7, lo: 0, hi: 0.5, h: h}, // signature module
	}, trace)
	if shed.CPUUnits >= base.CPUUnits {
		t.Fatalf("shedding half of signature's hash space did not reduce CPU: %v >= %v",
			shed.CPUUnits, base.CPUUnits)
	}
	if shed.Observed != base.Observed {
		t.Fatalf("shedding changed observed sessions: %d vs %d", shed.Observed, base.Observed)
	}
}

func TestShedFilterFullShedDropsSessionState(t *testing.T) {
	trace := mixedTrace(t, 2000)
	h := hashing.Hasher{Key: 3}
	// One module, fully shed: with the filter making the node responsible
	// for nothing, the early-drop check must skip connection state too.
	mods := []ModuleSpec{moduleByName(t, "signature")}
	full := Run(Config{
		Mode: ModeCoordEvent, Modules: mods, Hasher: h,
		Shed: rangeShed{class: 0, lo: 0, hi: 1, h: h},
	}, trace)
	if full.Conns != 0 {
		t.Fatalf("fully shed node still created %d connection records", full.Conns)
	}
}

func TestShedFilterShardedMatchesSerial(t *testing.T) {
	trace := mixedTrace(t, 3000)
	h := hashing.Hasher{Key: 9}
	cfg := Config{
		Mode: ModeCoordEvent, Modules: StandardModules(), Hasher: h,
		Shed: rangeShed{class: 2, lo: 0.25, hi: 0.75, h: h},
	}
	cfg.Workers = 1
	serial := Run(cfg, trace)
	cfg.Workers = 4
	sharded := Run(cfg, trace)
	if serial.CPUUnits != sharded.CPUUnits || serial.MemBytes != sharded.MemBytes ||
		serial.Alerts != sharded.Alerts || serial.Conns != sharded.Conns {
		t.Fatalf("sharded shed run diverged from serial:\n%+v\n%+v", serial, sharded)
	}
}
