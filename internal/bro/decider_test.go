package bro

import (
	"reflect"
	"testing"

	"nwdeploy/internal/control"
	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// planDecider replays the planner's own Figure 3 decision through the
// ManifestDecider interface — the minimal stub proving the engine treats
// the two manifest sources identically.
type planDecider struct {
	plan   *core.Plan
	node   int
	hasher hashing.Hasher
}

func (d planDecider) ShouldAnalyze(class int, s traffic.Session) bool {
	return d.plan.ShouldAnalyze(d.node, class, s, d.hasher)
}

// solvedScenario builds a solved coordinated deployment over Internet2 for
// the decider tests.
func solvedScenario(t *testing.T) (*topology.Topology, []ModuleSpec, []traffic.Session, *core.Plan) {
	t.Helper()
	topo := topology.Internet2()
	modules := StandardModules()[1:]
	sessions := mixedTrace(t, 2500)
	inst, err := core.BuildInstance(topo, Classes(modules), sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	return topo, modules, sessions, plan
}

// nodeTraceFor filters the sessions node j observes in a coordinated
// deployment (origin, terminus, or transit), mirroring Emulation.nodeTrace.
func nodeTraceFor(topo *topology.Topology, sessions []traffic.Session, j int) []traffic.Session {
	paths := topo.PathMatrix()
	var out []traffic.Session
	for _, s := range sessions {
		for _, n := range paths[s.Src][s.Dst] {
			if n == j {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// An engine driven by a ManifestDecider must reproduce the plan-driven
// report exactly — including the early-drop and fine-grained paths, which
// gate on the presence of a manifest — since that equivalence is what lets
// a cluster node run from a fetched wire manifest alone.
func TestDeciderMatchesPlanReports(t *testing.T) {
	topo, modules, sessions, plan := solvedScenario(t)
	hasher := hashing.Hasher{Key: 7}
	for _, fineGrained := range []bool{false, true} {
		for j := 0; j < topo.N(); j++ {
			trace := nodeTraceFor(topo, sessions, j)
			base := Config{
				Mode: ModeCoordEvent, Modules: modules, Hasher: hasher,
				FineGrained: fineGrained, Workers: 1,
			}
			viaPlan := base
			viaPlan.Plan, viaPlan.Node = plan, j
			viaDecider := base
			viaDecider.Node = j
			viaDecider.Decider = planDecider{plan: plan, node: j, hasher: hasher}
			got, want := Run(viaDecider, trace), Run(viaPlan, trace)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fineGrained=%v node %d: decider report %+v != plan report %+v",
					fineGrained, j, got, want)
			}
		}
	}
}

// The same equivalence must hold when the decider is the real wire-manifest
// Decider from internal/control — the exact object a cluster agent fetches —
// and must survive module-lane sharding.
func TestWireDeciderMatchesPlanReports(t *testing.T) {
	topo, modules, sessions, plan := solvedScenario(t)
	const key = 7
	hasher := hashing.Hasher{Key: key}
	for j := 0; j < topo.N(); j++ {
		m, err := control.ManifestFromPlan(plan, j, 1, key)
		if err != nil {
			t.Fatal(err)
		}
		trace := nodeTraceFor(topo, sessions, j)
		for _, workers := range []int{1, 4} {
			viaPlan := Run(Config{
				Mode: ModeCoordEvent, Modules: modules, Hasher: hasher,
				Plan: plan, Node: j, Workers: workers,
			}, trace)
			viaWire := Run(Config{
				Mode: ModeCoordEvent, Modules: modules, Hasher: hasher,
				Decider: control.NewDecider(m), Node: j, Workers: workers,
			}, trace)
			if !reflect.DeepEqual(viaWire, viaPlan) {
				t.Fatalf("node %d workers %d: wire-decider report %+v != plan report %+v",
					j, workers, viaWire, viaPlan)
			}
		}
	}
}

// A decider on a standalone instance must still be treated as a manifest:
// sessions it rejects entirely are dropped before connection setup, unlike
// the nil-manifest default that analyzes everything.
func TestDeciderEnablesEarlyDrop(t *testing.T) {
	modules := []ModuleSpec{moduleByName(t, "signature")}
	sessions := mixedTrace(t, 500)
	none := rejectAll{}
	rep := Run(Config{Mode: ModeCoordEvent, Modules: modules, Hasher: hashing.Hasher{Key: 7},
		Decider: none, Workers: 1}, sessions)
	if rep.Conns != 0 {
		t.Fatalf("reject-all decider still created %d connections", rep.Conns)
	}
	if rep.Observed != len(sessions) {
		t.Fatalf("observed %d sessions, want %d (capture cost is unavoidable)", rep.Observed, len(sessions))
	}
	open := Run(Config{Mode: ModeCoordEvent, Modules: modules, Hasher: hashing.Hasher{Key: 7},
		Workers: 1}, sessions)
	if open.Conns == 0 {
		t.Fatal("standalone nil-manifest run should create connection state")
	}
}

type rejectAll struct{}

func (rejectAll) ShouldAnalyze(int, traffic.Session) bool { return false }
