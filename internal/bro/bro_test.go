package bro

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/packet"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func mixedTrace(t *testing.T, n int) []traffic.Session {
	t.Helper()
	topo := topology.Internet2()
	return traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: n, Seed: 17})
}

func moduleByName(t *testing.T, name string) ModuleSpec {
	t.Helper()
	for _, m := range StandardModules() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no module %q", name)
	return ModuleSpec{}
}

func TestStandardModulesShape(t *testing.T) {
	mods := StandardModules()
	if len(mods) != 9 {
		t.Fatalf("standard set has %d modules, want 9 (Figure 5)", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		if names[m.Name] {
			t.Fatalf("duplicate module name %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, want := range []string{"baseline", "scan", "irc", "login", "tftp", "http", "blaster", "signature", "synflood"} {
		if !names[want] {
			t.Fatalf("missing module %q", want)
		}
	}
	// Scan and TFTP are policy-only: their checks cannot move earlier.
	if moduleByName(t, "scan").EarliestCheck != StagePolicy {
		t.Fatal("scan check must be policy-stage")
	}
	if moduleByName(t, "tftp").EarliestCheck != StagePolicy {
		t.Fatal("tftp check must be policy-stage")
	}
	// HTTP/IRC/Login can check in the event engine.
	for _, n := range []string{"http", "irc", "login", "signature"} {
		if moduleByName(t, n).EarliestCheck != StageEvent {
			t.Fatalf("%s check should be event-stage", n)
		}
	}
}

func TestWithDuplicates(t *testing.T) {
	mods := WithDuplicates(21)
	if len(mods) != 21 {
		t.Fatalf("got %d modules, want 21", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		if names[m.Name] {
			t.Fatalf("duplicate name %q", m.Name)
		}
		names[m.Name] = true
	}
	if !names["http-dup2"] || !names["tftp-dup4"] {
		t.Fatalf("unexpected duplicate naming: %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when shrinking below the standard set")
		}
	}()
	WithDuplicates(3)
}

func TestRunDeterministic(t *testing.T) {
	trace := mixedTrace(t, 2000)
	cfg := Config{Mode: ModeCoordEvent, Modules: StandardModules(), Hasher: hashing.Hasher{Key: 3}}
	a := Run(cfg, trace)
	b := Run(cfg, trace)
	if a.CPUUnits != b.CPUUnits || a.MemBytes != b.MemBytes || a.Alerts != b.Alerts {
		t.Fatalf("engine runs are not deterministic: %+v vs %+v", a, b)
	}
	if a.CPUUnits <= 0 || a.MemBytes <= 0 || a.Conns != 2000 {
		t.Fatalf("implausible report: %+v", a)
	}
}

// TestFig5CPUOverheadShape verifies the standalone microbenchmark
// reproduces the relative ordering of Figure 5(a):
//   - Baseline, Signature, Blaster, SYNFlood: small overhead (~2%) in both
//     coordinated variants.
//   - Scan, TFTP: moderate (~10%) in both variants (their checks cannot
//     leave the policy engine).
//   - HTTP, IRC, Login: large overhead when the check is in the policy
//     engine, small when it is in the event engine.
func TestFig5CPUOverheadShape(t *testing.T) {
	trace := mixedTrace(t, 20000)
	overhead := func(name string, mode Mode) float64 {
		return MeasureOverhead(moduleByName(t, name), mode, trace).CPURatio
	}
	for _, name := range []string{"baseline", "signature", "blaster", "synflood"} {
		for _, mode := range []Mode{ModeCoordPolicy, ModeCoordEvent} {
			if o := overhead(name, mode); o <= 0 || o > 0.06 {
				t.Errorf("%s/%v overhead = %.3f, want (0, 0.06]", name, mode, o)
			}
		}
	}
	for _, name := range []string{"scan", "tftp"} {
		oPol := overhead(name, ModeCoordPolicy)
		oEvt := overhead(name, ModeCoordEvent)
		if oPol < 0.05 || oPol > 0.2 {
			t.Errorf("%s policy overhead = %.3f, want ~0.1", name, oPol)
		}
		// Both variants place the check in the same (policy) stage.
		if diff := oPol - oEvt; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: variants differ (%v vs %v) though check cannot move", name, oPol, oEvt)
		}
	}
	for _, name := range []string{"http", "irc", "login"} {
		oPol := overhead(name, ModeCoordPolicy)
		oEvt := overhead(name, ModeCoordEvent)
		if oEvt >= 0.06 {
			t.Errorf("%s event-engine overhead = %.3f, want < 0.06", name, oEvt)
		}
		if oPol < 2*oEvt {
			t.Errorf("%s policy overhead %.3f not clearly above event %.3f", name, oPol, oEvt)
		}
		if oPol < 0.05 || oPol > 0.3 {
			t.Errorf("%s policy overhead = %.3f, want in [0.05, 0.3]", name, oPol)
		}
	}
}

// TestFig5MemoryOverhead: the hash fields add at most ~6% memory.
func TestFig5MemoryOverhead(t *testing.T) {
	trace := mixedTrace(t, 8000)
	for _, m := range StandardModules() {
		for _, mode := range []Mode{ModeCoordPolicy, ModeCoordEvent} {
			o := MeasureOverhead(m, mode, trace)
			if o.MemRatio <= 0 || o.MemRatio > 0.065 {
				t.Errorf("%s/%v memory overhead = %.4f, want (0, 0.065]", m.Name, mode, o.MemRatio)
			}
		}
	}
}

func TestScanDetectionFires(t *testing.T) {
	// Craft a scanning workload: one source contacting many destinations.
	topo := topology.Internet2()
	var sessions []traffic.Session
	for i := 0; i < 2*scanThreshold; i++ {
		sessions = append(sessions, traffic.Session{
			ID: i, Src: 0, Dst: 10,
			Tuple: hashing.FiveTuple{
				SrcIP: 10 << 24, DstIP: 10<<24 | 10<<16 | uint32(i),
				SrcPort: 4000, DstPort: 80, Proto: 6,
			},
			Proto: traffic.HTTP, Packets: 3, Bytes: 200,
		})
	}
	_ = topo
	scan := moduleByName(t, "scan")
	rep := Run(Config{Mode: ModePlain, Modules: []ModuleSpec{scan}, Hasher: hashing.Hasher{Key: 2}}, sessions)
	if rep.Alerts == 0 {
		t.Fatal("scanning source raised no alerts")
	}
	// Exactly the connections beyond the threshold alert (3 policy events
	// per conn re-evaluate the same set, so alerts fire per event once the
	// set exceeds the threshold).
	if rep.Alerts < scanThreshold {
		t.Fatalf("alerts = %d, want >= %d", rep.Alerts, scanThreshold)
	}
}

func TestCoverageEquivalenceWithStandalone(t *testing.T) {
	// The paper: "a network-wide deployment should be logically equivalent
	// to running a single NIDS on the entire traffic" (verified there by
	// inspecting Bro logs). Here: total alerts across the coordinated
	// network equal a single standalone instance's alerts.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 6000, Seed: 5, HostsPerNode: 8})
	mods := StandardModules()[1:] // without the baseline pseudo-module
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	coord := em.Run(DeployCoordinated)

	standalone := Run(Config{Mode: ModePlain, Modules: mods, Hasher: em.Hasher}, sessions)
	if got, want := coord.TotalAlerts(), standalone.Alerts; got != want {
		t.Fatalf("coordinated alerts = %d, standalone = %d; deployments not equivalent", got, want)
	}
	if standalone.Alerts == 0 {
		t.Fatal("workload produced no alerts; equivalence check is vacuous")
	}
}

func TestCoordinatedReducesMaxLoadVsEdge(t *testing.T) {
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 8000, Seed: 23})
	mods := ModuleSubset(21)[1:] // 20 real modules
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	edge := em.Run(DeployEdge)
	coord := em.Run(DeployCoordinated)
	if coord.MaxCPU() >= edge.MaxCPU() {
		t.Fatalf("coordinated max CPU %v >= edge %v", coord.MaxCPU(), edge.MaxCPU())
	}
	if coord.MaxMem() >= edge.MaxMem() {
		t.Fatalf("coordinated max mem %v >= edge %v", coord.MaxMem(), edge.MaxMem())
	}
	// The hotspot in the edge deployment is New York (node 10), the
	// heaviest gravity endpoint — the paper's Figure 8 observation.
	ny, _ := topo.NodeByName("NYCM")
	for j, rep := range edge.Reports {
		if j != ny.ID && rep.CPUUnits > edge.Reports[ny.ID].CPUUnits {
			t.Fatalf("edge hotspot is node %d, want NYC (%d)", j, ny.ID)
		}
	}
}

func TestEmulationRejectsBaseline(t *testing.T) {
	topo := topology.Internet2()
	sessions := mixedTrace(t, 100)
	_, err := NewEmulation(topo, StandardModules(), sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err == nil {
		t.Fatal("expected rejection of baseline pseudo-module")
	}
}

func TestModeStrings(t *testing.T) {
	if ModePlain.String() != "plain" || ModeCoordPolicy.String() != "coord-policy" ||
		ModeCoordEvent.String() != "coord-event" || Mode(9).String() != "Mode(9)" {
		t.Fatal("mode names wrong")
	}
	if DeployEdge.String() != "edge" || DeployCoordinated.String() != "coordinated" {
		t.Fatal("deployment names wrong")
	}
}

func TestVMExecution(t *testing.T) {
	var cost float64
	alerts := 0
	m := vm{cost: &cost, alerts: &alerts}
	tbl := newModuleTables()
	ctx := &vmContext{srcKey: 1, dstKey: 2, port: 80, pkts: 10, hash: 0.4, inRange: true}

	// Distinct-count: adding 3 members under one key.
	script := Script{{Code: OpLoadDst}, {Code: OpLoadSrc}, {Code: OpAddSet}, {Code: OpRet}}
	if got := m.run(script, ctx, tbl); got != 1 {
		t.Fatalf("first AddSet count = %v, want 1", got)
	}
	ctx.dstKey = 3
	if got := m.run(script, ctx, tbl); got != 2 {
		t.Fatalf("second AddSet count = %v, want 2", got)
	}
	ctx.dstKey = 3 // duplicate member
	if got := m.run(script, ctx, tbl); got != 2 {
		t.Fatalf("duplicate AddSet count = %v, want 2", got)
	}
	if cost != float64(3*len(script))*policyOpCost {
		t.Fatalf("cost = %v, want %v", cost, float64(3*len(script))*policyOpCost)
	}

	// Counter + threshold alert.
	alertScript := Script{
		{Code: OpLoadDst}, {Code: OpIncr}, {Code: OpPush, Arg: 2}, {Code: OpGT}, {Code: OpAlertIf},
	}
	for i := 0; i < 4; i++ {
		m.run(alertScript, ctx, tbl)
	}
	if alerts != 2 { // counts 3 and 4 exceed threshold 2
		t.Fatalf("alerts = %d, want 2", alerts)
	}

	// Range check reflects manifest membership.
	ctx.inRange = false
	if got := m.run(checkScript, ctx, tbl); got != 0 {
		t.Fatalf("check returned %v for out-of-range, want 0", got)
	}
	ctx.inRange = true
	if got := m.run(checkScript, ctx, tbl); got != 1 {
		t.Fatalf("check returned %v for in-range, want 1", got)
	}

	// Table memory accounting.
	if tbl.memBytes() <= 0 {
		t.Fatal("table memory not accounted")
	}
}

func TestVMEmptyStackPanics(t *testing.T) {
	var cost float64
	alerts := 0
	m := vm{cost: &cost, alerts: &alerts}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty-stack pop")
		}
	}()
	m.run(Script{{Code: OpDrop}}, &vmContext{}, newModuleTables())
}

func TestEarlyDropSkipsState(t *testing.T) {
	// A coordinated node whose manifests exclude everything must not
	// create connection state, but still pays capture cost.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 1500, Seed: 31})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	res := em.Run(DeployCoordinated)
	anySkipped := false
	for _, rep := range res.Reports {
		if rep.Conns < rep.Observed {
			anySkipped = true
		}
		if rep.Conns > rep.Observed {
			t.Fatalf("node %d created %d conns from %d sessions", rep.Node, rep.Conns, rep.Observed)
		}
	}
	if !anySkipped {
		t.Fatal("no node ever skipped state creation; early-drop optimization inert")
	}
}

func TestFineGrainedReducesFootprint(t *testing.T) {
	// Section 2.5: with first-packet events, nodes whose only duty for a
	// session is scan/blaster/synflood skip connection tracking, cutting
	// both CPU and memory versus the record-granularity prototype while
	// preserving the detection results.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 6000, Seed: 5, HostsPerNode: 8})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	coarse := em.RunFineGrained(DeployCoordinated, false)
	fine := em.RunFineGrained(DeployCoordinated, true)

	var coarseMem, fineMem, coarseCPU, fineCPU float64
	for j := range coarse.Reports {
		coarseMem += coarse.Reports[j].MemBytes
		fineMem += fine.Reports[j].MemBytes
		coarseCPU += coarse.Reports[j].CPUUnits
		fineCPU += fine.Reports[j].CPUUnits
	}
	if fineMem >= coarseMem {
		t.Fatalf("fine-grained total memory %v >= coarse %v", fineMem, coarseMem)
	}
	if fineCPU >= coarseCPU {
		t.Fatalf("fine-grained total CPU %v >= coarse %v", fineCPU, coarseCPU)
	}
	// Scan detection results are preserved: the same scanning sources are
	// flagged (alert *counts* differ because the coarse pipeline re-runs
	// handlers per connection event; presence of alerts is the invariant).
	if coarse.TotalAlerts() == 0 || fine.TotalAlerts() == 0 {
		t.Fatalf("alerts lost: coarse=%d fine=%d", coarse.TotalAlerts(), fine.TotalAlerts())
	}
}

func TestFineGrainedOffByDefault(t *testing.T) {
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 1200, Seed: 6})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	a := em.Run(DeployCoordinated)
	b := em.RunFineGrained(DeployCoordinated, false)
	for j := range a.Reports {
		if a.Reports[j].CPUUnits != b.Reports[j].CPUUnits {
			t.Fatalf("Run and RunFineGrained(false) diverge at node %d", j)
		}
	}
}

func TestRunPcapMatchesSessionRun(t *testing.T) {
	// Driving the engine from a pcap trace must agree with driving it from
	// the generator's session list on conn counts and alerts (CPU/memory
	// differ slightly: packet counts are normalized by the TCP expansion's
	// handshake/teardown minimums).
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 250, Seed: 13, HostsPerNode: 8})
	var buf bytes.Buffer
	if _, err := packet.WriteSessionsPcap(packet.NewWriter(&buf), sessions, time.Unix(1_700_000_000, 0), 0, 3); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModePlain, Modules: StandardModules()[1:], Hasher: hashing.Hasher{Key: 4}}
	fromPcap, err := RunPcap(cfg, bytes.NewReader(buf.Bytes()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	direct := Run(cfg, sessions)
	if fromPcap.Conns != direct.Conns {
		t.Fatalf("pcap path tracked %d conns, session path %d", fromPcap.Conns, direct.Conns)
	}
	if fromPcap.Observed != direct.Observed {
		t.Fatalf("pcap path observed %d sessions, session path %d", fromPcap.Observed, direct.Observed)
	}
	if fromPcap.CPUUnits <= 0 || fromPcap.MemBytes <= 0 {
		t.Fatalf("implausible pcap-driven report: %+v", fromPcap)
	}
}

func TestConnLogEquivalence(t *testing.T) {
	// The paper's log-based equivalence check, made mechanical: the merged
	// conn logs of every coordinated node must equal a standalone
	// instance's log record-for-record.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 41})
	mods := StandardModules()[1:]
	em, err := NewEmulation(topo, mods, sessions, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	paths := topo.PathMatrix()
	var nodeLogs []*ConnLog
	for j := 0; j < topo.N(); j++ {
		var trace []traffic.Session
		for _, s := range sessions {
			for _, n := range paths[s.Src][s.Dst] {
				if n == j {
					trace = append(trace, s)
					break
				}
			}
		}
		_, l := RunWithLog(Config{
			Mode: ModeCoordEvent, Modules: mods, Plan: em.Plan, Node: j, Hasher: em.Hasher,
		}, trace)
		nodeLogs = append(nodeLogs, l)
	}
	merged := Merge(nodeLogs...)

	_, standalone := RunWithLog(Config{Mode: ModePlain, Modules: mods, Hasher: em.Hasher}, sessions)
	ok, diff := LogEquivalent(merged, standalone)
	if !ok {
		t.Fatalf("coordinated and standalone conn logs diverge: %s", diff)
	}
	if len(standalone.Records) == 0 {
		t.Fatal("empty logs make the check vacuous")
	}
}

func TestConnLogTSV(t *testing.T) {
	sessions := mixedTrace(t, 50)
	_, l := RunWithLog(Config{Mode: ModePlain, Modules: StandardModules()[1:], Hasher: hashing.Hasher{Key: 2}}, sessions)
	var buf bytes.Buffer
	if err := l.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "#fields\t") {
		t.Fatalf("missing header: %q", out[:40])
	}
	if strings.Count(out, "\n") != len(l.Records)+1 {
		t.Fatalf("line count %d, want %d", strings.Count(out, "\n"), len(l.Records)+1)
	}
}

func TestLogEquivalentDetectsDivergence(t *testing.T) {
	a := &ConnLog{Records: []ConnRecord{{Module: "http", Tuple: "x", Packets: 3}}}
	b := &ConnLog{Records: []ConnRecord{{Module: "http", Tuple: "x", Packets: 4}}}
	if ok, _ := LogEquivalent(a, b); ok {
		t.Fatal("divergent logs reported equivalent")
	}
	c := &ConnLog{}
	if ok, _ := LogEquivalent(a, c); ok {
		t.Fatal("different lengths reported equivalent")
	}
}
