package bro

import (
	"reflect"
	"testing"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func metricsTestTrace(t *testing.T, n int) []traffic.Session {
	t.Helper()
	topo := topology.Internet2()
	return traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: n, Seed: 19})
}

// TestRunMetricsNonInterference is the obs contract on the engine: a live
// registry must not change the report in any field, for the serial and the
// sharded path alike.
func TestRunMetricsNonInterference(t *testing.T) {
	trace := metricsTestTrace(t, 4000)
	for _, workers := range []int{1, 4} {
		cfg := Config{
			Mode:    ModePlain,
			Modules: StandardModules()[1:],
			Hasher:  hashing.Hasher{Key: 3},
			Workers: workers,
		}
		plain := Run(cfg, trace)

		cfg.Metrics = obs.New()
		instrumented := Run(cfg, trace)
		if !reflect.DeepEqual(plain, instrumented) {
			t.Fatalf("workers=%d: live registry changed the report:\n plain: %+v\n  live: %+v",
				workers, plain, instrumented)
		}
		if got := cfg.Metrics.Counter("bro.sessions_observed").Value(); got != int64(plain.Observed) {
			t.Fatalf("workers=%d: bro.sessions_observed = %d, report says %d", workers, got, plain.Observed)
		}
		if cfg.Metrics.Counter("bro.conns").Value() != int64(plain.Conns) {
			t.Fatalf("workers=%d: bro.conns mismatch", workers)
		}
	}
}

// TestRunMetricsShardingAgreement checks that the sharded engine records
// the same counter totals as the serial one: lanes own disjoint work, so
// the atomic sums must agree regardless of scheduling.
func TestRunMetricsShardingAgreement(t *testing.T) {
	trace := metricsTestTrace(t, 4000)
	base := Config{
		Mode:    ModePlain,
		Modules: StandardModules()[1:],
		Hasher:  hashing.Hasher{Key: 3},
	}

	serial := base
	serial.Workers = 1
	serial.Metrics = obs.New()
	Run(serial, trace)

	sharded := base
	sharded.Workers = 4
	sharded.Metrics = obs.New()
	Run(sharded, trace)

	ss, sh := serial.Metrics.Snapshot(), sharded.Metrics.Snapshot()
	for name, v := range ss.Counters {
		if sh.Counters[name] != v {
			t.Errorf("counter %s: serial %d, sharded %d", name, v, sh.Counters[name])
		}
	}
	for name := range sh.Counters {
		if _, ok := ss.Counters[name]; !ok {
			t.Errorf("counter %s recorded only by the sharded run", name)
		}
	}
}

// TestEmulationMetricsNonInterference runs the network-wide emulation with
// and without a registry and requires byte-identical results.
func TestEmulationMetricsNonInterference(t *testing.T) {
	topo := topology.Internet2()
	trace := metricsTestTrace(t, 2000)
	em, err := NewEmulation(topo, StandardModules()[1:], trace, core.UniformCaps(topo.N(), 1e9, 1e12))
	if err != nil {
		t.Fatal(err)
	}
	plain := em.Run(DeployCoordinated)

	em.Metrics = obs.New()
	instrumented := em.Run(DeployCoordinated)
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("live registry changed the emulation result")
	}
	if em.Metrics.Histogram("bro.emulation_ns").Count() == 0 {
		t.Fatal("bro.emulation_ns span never recorded")
	}
}
