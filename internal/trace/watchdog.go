package trace

import "fmt"

// SLO declares per-epoch service-level thresholds for the watchdog.
// Float minimums use 0 as "disabled" (coverage is in (0, 1]);
// integer/width maximums use negative values as "disabled" so 0 can
// express zero tolerance — which means the zero value of SLO is NOT
// all-off. Start from Disabled() and enable rules one by one.
type SLO struct {
	// MinWorstCoverage / MinAvgCoverage bound the wire-audited coverage
	// for the epoch; 0 disables.
	MinWorstCoverage float64
	MinAvgCoverage   float64
	// MaxShedWidth caps the total normalized hash-range width shed across
	// nodes in one epoch; negative disables.
	MaxShedWidth float64
	// MaxReplanIters caps solver iterations spent replanning in one epoch
	// (the deterministic replan-latency unit); negative disables.
	MaxReplanIters int
	// MaxFetchFailures / MaxDarkAgents cap failed manifest fetches and
	// agents left analyzing nothing; negative disables.
	MaxFetchFailures int
	MaxDarkAgents    int
	// DeadlineMissIsViolation treats a replan iteration-deadline miss as
	// an SLO violation.
	DeadlineMissIsViolation bool
}

// Enabled reports whether any rule is active.
func (s SLO) Enabled() bool {
	return s.MinWorstCoverage > 0 || s.MinAvgCoverage > 0 ||
		s.MaxShedWidth >= 0 || s.MaxReplanIters >= 0 ||
		s.MaxFetchFailures >= 0 || s.MaxDarkAgents >= 0 ||
		s.DeadlineMissIsViolation
}

// Disabled returns an SLO with every rule off — the starting point for
// building one rule-by-rule, since the zero value of the integer fields
// means zero tolerance, not disabled.
func Disabled() SLO {
	return SLO{
		MaxShedWidth:     -1,
		MaxReplanIters:   -1,
		MaxFetchFailures: -1,
		MaxDarkAgents:    -1,
	}
}

// EpochStats is the per-epoch observation the watchdog evaluates; the
// runtime fills it from the epoch report it already computes.
type EpochStats struct {
	WorstCoverage float64
	AvgCoverage   float64
	ShedWidth     float64
	ReplanIters   int
	FetchFailures int
	DarkAgents    int
	DeadlineMiss  bool
}

// Violation is one breached rule: the rule's name plus the observed value
// and the declared bound, both pre-rendered for uniform reporting.
type Violation struct {
	Rule  string
	Value string
	Bound string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s=%s (bound %s)", v.Rule, v.Value, v.Bound)
}

// Watchdog evaluates EpochStats against a declarative SLO and emits one
// slo_violation event per breached rule. Nil is the no-op watchdog.
type Watchdog struct {
	slo SLO
}

// NewWatchdog builds a watchdog for the given SLO. It returns nil — the
// no-op watchdog — when no rule is enabled.
func NewWatchdog(slo SLO) *Watchdog {
	if !slo.Enabled() {
		return nil
	}
	return &Watchdog{slo: slo}
}

// Check evaluates one epoch and returns the breached rules in fixed rule
// order, recording an slo_violation event per breach on span (which may
// be the zero Span: the verdicts still return, only the events drop).
// A nil watchdog returns nil.
func (w *Watchdog) Check(span Span, s EpochStats) []Violation {
	if w == nil {
		return nil
	}
	var out []Violation
	fail := func(rule, value, bound string) {
		out = append(out, Violation{Rule: rule, Value: value, Bound: bound})
		span.Event(EvSLOViolation, Str("rule", rule), Str("value", value), Str("bound", bound))
	}
	f := func(v float64) string { return F64("", v).V }
	if w.slo.MinWorstCoverage > 0 && s.WorstCoverage < w.slo.MinWorstCoverage {
		fail("min_worst_coverage", f(s.WorstCoverage), f(w.slo.MinWorstCoverage))
	}
	if w.slo.MinAvgCoverage > 0 && s.AvgCoverage < w.slo.MinAvgCoverage {
		fail("min_avg_coverage", f(s.AvgCoverage), f(w.slo.MinAvgCoverage))
	}
	if w.slo.MaxShedWidth >= 0 && s.ShedWidth > w.slo.MaxShedWidth {
		fail("max_shed_width", f(s.ShedWidth), f(w.slo.MaxShedWidth))
	}
	if w.slo.MaxReplanIters >= 0 && s.ReplanIters > w.slo.MaxReplanIters {
		fail("max_replan_iters", fmt.Sprint(s.ReplanIters), fmt.Sprint(w.slo.MaxReplanIters))
	}
	if w.slo.MaxFetchFailures >= 0 && s.FetchFailures > w.slo.MaxFetchFailures {
		fail("max_fetch_failures", fmt.Sprint(s.FetchFailures), fmt.Sprint(w.slo.MaxFetchFailures))
	}
	if w.slo.MaxDarkAgents >= 0 && s.DarkAgents > w.slo.MaxDarkAgents {
		fail("max_dark_agents", fmt.Sprint(s.DarkAgents), fmt.Sprint(w.slo.MaxDarkAgents))
	}
	if w.slo.DeadlineMissIsViolation && s.DeadlineMiss {
		fail("deadline_miss", "true", "false")
	}
	return out
}
