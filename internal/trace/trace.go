// Package trace is the control plane's causal observability layer: a
// deterministic, allocation-light event log that follows one epoch across
// the controller, every node agent, the per-node load governors, and the
// replanning machinery. Where internal/obs answers "how much" (counters,
// gauges, histograms), trace answers "why": which node shed which hash
// range, which fetch attempt timed out, which replan missed its deadline
// — the per-sensor audit trail distributed-IDS operation turns on.
//
// # Zero-value contract
//
// A nil *Tracer is the no-op tracer and is the default everywhere,
// mirroring obs.Registry: every method on *Tracer, *Component, the zero
// Span, and *Watchdog is nil-safe and does nothing. Instrumented code
// pays no allocation and no lock when no tracer is attached.
//
// # Determinism contract
//
// Traces are byte-identical across worker counts. Three rules make that
// hold, and every emitter in the repo obeys them:
//
//   - IDs are seeded, never random or clock-derived: the trace ID for
//     epoch e is SplitMix64(seed, e), and every span ID derives from its
//     parent's ID plus a stable (kind, id) stream — see parallel.SplitSeed.
//   - Events carry only logical fields (epoch, sequence numbers, counts,
//     range widths), never wall-clock readings.
//   - Each component (one agent, one governor, the controller, the epoch
//     runtime) is written by at most one goroutine at a time, under the
//     same happens-before edges the cluster's reports already rely on, so
//     each component's event sequence is schedule-independent. Dumps walk
//     components in sorted (kind, id) order, which makes the whole JSONL
//     file reproducible bit for bit.
//
// # Flight recorder
//
// Events land in fixed-size per-component rings (the flight recorder):
// steady-state tracing is O(1) memory, and when a guarantee is violated —
// a coverage audit failure, a governor floor breach, a replan deadline
// miss, an SLO violation — the runtime dumps the rings once as a JSONL
// post-mortem (DumpOnce) holding the most recent events per component:
// the causal chain that led to the violation.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"nwdeploy/internal/parallel"
)

// Event types — the taxonomy every emitter draws from and cmd/tracecheck
// validates against. Adding a type here is adding it to the wire schema.
const (
	// Control-plane lifecycle.
	EvEpochStart   = "epoch_start"   // runtime: one epoch begins (attrs: ctrl_down, down)
	EvPublish      = "publish"       // controller: a plan generation was published
	EvShedPublish  = "shed_publish"  // controller: a node's shed state was published
	EvCrashRestart = "crash_restart" // agent: process crashed, manifest lost

	// Agent fetch loop.
	EvFetchOK    = "fetch_ok"    // manifest confirmed/installed (attrs: attempt, ctrl_epoch, pub_span)
	EvFetchRetry = "fetch_retry" // attempt failed, backing off (attrs: attempt, err)
	EvFetchFail  = "fetch_fail"  // final attempt failed, epoch lost (attrs: attempts, err)
	EvStaleGrace = "stale_grace" // enforcing an unconfirmed manifest within grace (attrs: stale)
	EvWentDark   = "went_dark"   // no manifest or stale beyond grace: analyzing nothing

	// Data plane.
	EvEngineRun = "engine_run" // agent: one engine run over the node's trace (attrs: alerts, conns, cpu)

	// Overload machinery.
	EvDrift        = "drift"         // runtime: drift detector observation (attrs: rel_err, drifted)
	EvOverrun      = "overrun"       // governor: projected load over tolerated budget
	EvShedPlanned  = "shed_planned"  // governor: ranges shed this epoch (attrs: width, slices)
	EvShedRestore  = "shed_restore"  // governor: load fits again, shed state cleared
	EvFloorLimited = "floor_limited" // governor: only floor copies remain, node runs hot
	EvReplanWarm   = "replan_warm"   // runtime: warm-started re-solve landed (attrs: iters)
	EvReplanCold   = "replan_cold"   // runtime: cold re-solve landed (attrs: iters)
	EvDeadlineMiss = "deadline_miss" // runtime: re-solve hit the iteration deadline

	// Scenario machinery.
	EvDrain  = "drain"  // agent: planned maintenance drain, manifest retained
	EvInject = "inject" // runtime: scenario injected extra sessions this epoch (attrs: count)

	// Audit & watchdog.
	EvCoverage          = "coverage_audit"     // runtime: achieved vs predicted coverage
	EvCoverageViolation = "coverage_violation" // runtime: achieved fell below predicted
	EvSLOViolation      = "slo_violation"      // watchdog: a declarative threshold was breached
	EvDump              = "dump"               // recorder: synthetic first line of a post-mortem
)

// KnownTypes returns the full event taxonomy in stable order —
// cmd/tracecheck validates dumped files against it.
func KnownTypes() []string {
	return []string{
		EvEpochStart, EvPublish, EvShedPublish, EvCrashRestart,
		EvFetchOK, EvFetchRetry, EvFetchFail, EvStaleGrace, EvWentDark,
		EvEngineRun,
		EvDrift, EvOverrun, EvShedPlanned, EvShedRestore, EvFloorLimited,
		EvReplanWarm, EvReplanCold, EvDeadlineMiss,
		EvDrain, EvInject,
		EvCoverage, EvCoverageViolation, EvSLOViolation, EvDump,
	}
}

// Attr is one typed event attribute. Values are pre-rendered strings so
// the wire schema stays uniform and float formatting is deterministic.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{K: k, V: strconv.Itoa(v)} }

// Uint64 builds an unsigned attribute (epoch generations).
func Uint64(k string, v uint64) Attr { return Attr{K: k, V: strconv.FormatUint(v, 10)} }

// F64 builds a float attribute with shortest-round-trip formatting, which
// is deterministic for a deterministic value.
func F64(k string, v float64) Attr { return Attr{K: k, V: strconv.FormatFloat(v, 'g', -1, 64)} }

// Event is one flight-recorder entry: a typed occurrence on a span. All
// fields are logical, so same-seed runs produce DeepEqual events.
type Event struct {
	// Trace and Span identify the causal context (16 hex digits each);
	// Parent is the span this span derived from ("" for an epoch root).
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Epoch is the runtime epoch the event belongs to (0 = setup).
	Epoch int `json:"epoch"`
	// Comp and Node name the emitting component; Node is -1 for
	// singletons (runtime, controller, watchdog, recorder).
	Comp string `json:"comp"`
	Node int    `json:"node"`
	// Seq is the component's emission counter. It survives ring eviction,
	// so gaps in a dump reveal exactly how many events were dropped.
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// Attrs are the typed payload, in emission order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// Seed drives every trace and span ID via SplitMix64 splitting. Use
	// the run seed so traces line up with the chaos/burst decisions.
	Seed int64
	// RingSize is the per-component flight-recorder capacity in events
	// (0 selects 512). Older events are evicted FIFO.
	RingSize int
}

// Tracer owns the component rings and the ID derivation for one run. The
// nil *Tracer is the no-op tracer (see the package docs). All methods are
// safe for concurrent use.
type Tracer struct {
	seed     int64
	ringSize int

	mu    sync.Mutex
	comps map[compKey]*Component

	sinkMu sync.Mutex
	sink   io.Writer
	dumped bool

	headMu    sync.Mutex
	chainHead func() string
}

type compKey struct {
	kind string
	id   int
}

// New returns a live tracer.
func New(o Options) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = 512
	}
	return &Tracer{seed: o.Seed, ringSize: o.RingSize, comps: make(map[compKey]*Component)}
}

// Component returns the named component's ring, creating it on first use.
// Use id -1 for singleton components. On a nil tracer it returns nil,
// itself a valid no-op component.
func (t *Tracer) Component(kind string, id int) *Component {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := compKey{kind, id}
	c, ok := t.comps[key]
	if !ok {
		c = &Component{tracer: t, kind: kind, id: id, ring: make([]Event, 0, t.ringSize)}
		t.comps[key] = c
	}
	return c
}

// Component is one emitter's flight-recorder ring. Writers must respect
// the package's one-writer-at-a-time contract for determinism; the mutex
// only keeps racing writers memory-safe, not order-deterministic.
type Component struct {
	tracer *Tracer
	kind   string
	id     int

	mu      sync.Mutex
	seq     int
	dropped int
	ring    []Event // FIFO once full: head marks the oldest entry
	head    int
}

// emit appends one event, evicting the oldest when the ring is full.
func (c *Component) emit(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	ev.Comp, ev.Node = c.kind, c.id
	ev.Seq = c.seq
	c.seq++
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, ev)
	} else {
		c.ring[c.head] = ev
		c.head = (c.head + 1) % len(c.ring)
		c.dropped++
	}
	c.mu.Unlock()
}

// events returns the ring's entries oldest-first, plus the drop count.
func (c *Component) events() ([]Event, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.ring))
	for i := 0; i < len(c.ring); i++ {
		out = append(out, c.ring[(c.head+i)%len(c.ring)])
	}
	return out, c.dropped
}

// Span is a causal context: a (trace, span, parent) triple bound to the
// component that records its events. The zero Span is inert — Event is a
// no-op and Child returns another zero Span — which is what lets call
// sites thread spans unconditionally.
type Span struct {
	comp    *Component
	traceID uint64
	id      uint64
	parent  uint64
	epoch   int
}

// Epoch starts (or re-derives) the root span of one epoch's trace,
// recorded under the singleton "runtime" component. The trace ID is a
// pure function of (tracer seed, epoch), so re-deriving it — as the
// controller-publish path does before the epoch loop formally begins —
// always lands in the same trace.
func (t *Tracer) Epoch(epoch int) Span {
	if t == nil {
		return Span{}
	}
	tid := uint64(parallel.SplitSeed(t.seed, int64(epoch)))
	return Span{
		comp:    t.Component("runtime", -1),
		traceID: tid,
		id:      uint64(parallel.SplitSeed(int64(tid), 0)),
		epoch:   epoch,
	}
}

// streamOf folds a component identity into a SplitMix64 stream. FNV-1a
// over the kind keeps distinct kinds on distinct streams; the odd
// multiplier spreads ids within a kind.
func streamOf(kind string, id int) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 1099511628211
	}
	return int64(h ^ uint64(id)*0x9e3779b97f4a7c15)
}

// Child derives the span for component (kind, id) under s. The child's ID
// is a pure function of the parent ID and the component identity, so the
// derivation chain is reproducible from the run seed alone, from any
// goroutine, with no shared counter.
func (s Span) Child(kind string, id int) Span {
	if s.comp == nil {
		return Span{}
	}
	return Span{
		comp:    s.comp.tracer.Component(kind, id),
		traceID: s.traceID,
		id:      uint64(parallel.SplitSeed(int64(s.id), streamOf(kind, id))),
		parent:  s.id,
		epoch:   s.epoch,
	}
}

// Live reports whether events on this span are recorded.
func (s Span) Live() bool { return s.comp != nil }

// Epoch returns the span's epoch (0 on the zero span).
func (s Span) Epoch() int { return s.epoch }

// TraceHex and SpanHex render the IDs as fixed-width hex — the wire form
// carried in manifest headers ("" on the zero span).
func (s Span) TraceHex() string {
	if s.comp == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.traceID)
}

// SpanHex renders the span ID ("" on the zero span).
func (s Span) SpanHex() string {
	if s.comp == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.id)
}

// Event records one typed event on the span. No-op on the zero span.
func (s Span) Event(typ string, attrs ...Attr) {
	if s.comp == nil {
		return
	}
	ev := Event{
		Trace: fmt.Sprintf("%016x", s.traceID),
		Span:  fmt.Sprintf("%016x", s.id),
		Epoch: s.epoch,
		Type:  typ,
		Attrs: attrs,
	}
	if s.parent != 0 {
		ev.Parent = fmt.Sprintf("%016x", s.parent)
	}
	s.comp.emit(ev)
}

// sortedComponents snapshots the component set in (kind, id) order — the
// canonical dump order that makes output worker-count-independent.
func (t *Tracer) sortedComponents() []*Component {
	t.mu.Lock()
	comps := make([]*Component, 0, len(t.comps))
	for _, c := range t.comps {
		comps = append(comps, c)
	}
	t.mu.Unlock()
	sort.Slice(comps, func(a, b int) bool {
		if comps[a].kind != comps[b].kind {
			return comps[a].kind < comps[b].kind
		}
		return comps[a].id < comps[b].id
	})
	return comps
}

// Events returns every retained event, components in (kind, id) order and
// each component's events oldest-first — the canonical order tests
// DeepEqual across worker counts. Nil tracer returns nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, c := range t.sortedComponents() {
		evs, _ := c.events()
		out = append(out, evs...)
	}
	return out
}

// Stats reports the total events emitted (including evicted ones) and the
// number evicted from the rings. Zero on a nil tracer.
func (t *Tracer) Stats() (emitted, dropped int) {
	if t == nil {
		return 0, 0
	}
	for _, c := range t.sortedComponents() {
		c.mu.Lock()
		emitted += c.seq
		dropped += c.dropped
		c.mu.Unlock()
	}
	return emitted, dropped
}

// Dump writes the flight recorder as JSONL: one synthetic "dump" event
// naming the reason, then every retained event in canonical order. The
// bytes are a pure function of the recorded events and the reason, so
// same-seed runs dump identical files regardless of worker count.
func (t *Tracer) Dump(w io.Writer, reason string) error {
	if t == nil {
		return nil
	}
	comps := t.sortedComponents()
	type snap struct {
		events  []Event
		dropped int
	}
	var (
		snaps    = make([]snap, len(comps))
		nonEmpty int
		total    int
		dropped  int
	)
	for i, c := range comps {
		evs, d := c.events()
		snaps[i] = snap{evs, d}
		if len(evs) > 0 {
			nonEmpty++
		}
		total += len(evs)
		dropped += d
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := Event{
		Trace: fmt.Sprintf("%016x", uint64(parallel.SplitSeed(t.seed, -1))),
		Span:  fmt.Sprintf("%016x", uint64(parallel.SplitSeed(t.seed, -2))),
		Comp:  "recorder",
		Node:  -1,
		Type:  EvDump,
		Attrs: []Attr{
			Str("reason", reason),
			// Components counts only rings holding events: spans can create
			// a component without ever emitting to it, and such rings leave
			// no lines for a validator to account for.
			Int("components", nonEmpty),
			Int("events", total),
			Int("dropped", dropped),
		},
	}
	if h := t.chainHeadHex(); h != "" {
		// Cross-reference into the audit ledger: the chain head digest at
		// dump time pins which ledger prefix this flight recording belongs
		// to. Absent (golden-stable) when no ledger is attached.
		header.Attrs = append(header.Attrs, Str("chain_head", h))
	}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, s := range snaps {
		for _, ev := range s.events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SetChainHead installs a provider of the audit ledger's current chain
// head digest (hex). When set and returning non-empty, every Dump header
// carries a "chain_head" attribute binding the flight recording to the
// ledger prefix it was recorded against. A func (not a fixed string) so
// the header always reflects the head at dump time, not attach time.
func (t *Tracer) SetChainHead(head func() string) {
	if t == nil {
		return
	}
	t.headMu.Lock()
	t.chainHead = head
	t.headMu.Unlock()
}

// chainHeadHex resolves the chain head attribute ("" = omit).
func (t *Tracer) chainHeadHex() string {
	if t == nil {
		return ""
	}
	t.headMu.Lock()
	head := t.chainHead
	t.headMu.Unlock()
	if head == nil {
		return ""
	}
	return head()
}

// SetSink installs the post-mortem destination DumpOnce writes to.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
}

// DumpOnce writes one post-mortem to the configured sink the first time a
// violation fires; later calls are no-ops, so the file always holds the
// ring state at the *first* violation (or the run's end, when the runtime
// finishes clean and flushes with a "run_end" reason). It reports whether
// this call performed the dump.
func (t *Tracer) DumpOnce(reason string) bool {
	if t == nil {
		return false
	}
	t.sinkMu.Lock()
	defer t.sinkMu.Unlock()
	if t.dumped || t.sink == nil {
		return false
	}
	t.dumped = true
	_ = t.Dump(t.sink, reason)
	return true
}
