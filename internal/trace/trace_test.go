package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Epoch(3)
	if sp.Live() {
		t.Fatal("nil tracer produced a live span")
	}
	sp.Event(EvEpochStart, Int("x", 1))
	child := sp.Child("agent", 0)
	if child.Live() {
		t.Fatal("zero span produced a live child")
	}
	child.Event(EvFetchOK)
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events() = %v, want nil", got)
	}
	if e, d := tr.Stats(); e != 0 || d != 0 {
		t.Fatalf("nil tracer Stats() = %d,%d", e, d)
	}
	if err := tr.Dump(&bytes.Buffer{}, "x"); err != nil {
		t.Fatalf("nil tracer Dump: %v", err)
	}
	tr.SetSink(&bytes.Buffer{})
	if tr.DumpOnce("x") {
		t.Fatal("nil tracer DumpOnce reported a dump")
	}
	if sp.TraceHex() != "" || sp.SpanHex() != "" {
		t.Fatal("zero span rendered non-empty hex IDs")
	}
}

func TestIDsAreSeedDeterministic(t *testing.T) {
	a, b := New(Options{Seed: 42}), New(Options{Seed: 42})
	sa, sb := a.Epoch(5).Child("agent", 2), b.Epoch(5).Child("agent", 2)
	if sa.TraceHex() != sb.TraceHex() || sa.SpanHex() != sb.SpanHex() {
		t.Fatalf("same-seed IDs differ: %s/%s vs %s/%s",
			sa.TraceHex(), sa.SpanHex(), sb.TraceHex(), sb.SpanHex())
	}
	c := New(Options{Seed: 43})
	if sc := c.Epoch(5).Child("agent", 2); sc.SpanHex() == sa.SpanHex() {
		t.Fatal("different seeds produced identical span IDs")
	}
	if sib := a.Epoch(5).Child("agent", 3); sib.SpanHex() == sa.SpanHex() {
		t.Fatal("sibling components produced identical span IDs")
	}
	if len(sa.TraceHex()) != 16 || len(sa.SpanHex()) != 16 {
		t.Fatalf("IDs not fixed-width hex: %q %q", sa.TraceHex(), sa.SpanHex())
	}
}

func TestEventRecordingAndOrder(t *testing.T) {
	tr := New(Options{Seed: 7})
	root := tr.Epoch(1)
	root.Event(EvEpochStart, Int("down", 0))
	ag := root.Child("agent", 0)
	ag.Event(EvFetchRetry, Int("attempt", 1), Str("err", "dial: refused"))
	ag.Event(EvFetchOK, Int("attempt", 2))

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Canonical order: components sorted by (kind, id) → agent before runtime.
	if evs[0].Comp != "agent" || evs[0].Type != EvFetchRetry || evs[0].Seq != 0 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Comp != "agent" || evs[1].Type != EvFetchOK || evs[1].Seq != 1 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Comp != "runtime" || evs[2].Node != -1 || evs[2].Type != EvEpochStart {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[0].Parent != root.SpanHex() {
		t.Fatalf("agent event parent = %q, want root span %q", evs[0].Parent, root.SpanHex())
	}
	if evs[0].Trace != root.TraceHex() || evs[0].Epoch != 1 {
		t.Fatalf("agent event trace/epoch = %q/%d", evs[0].Trace, evs[0].Epoch)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{Seed: 1, RingSize: 4})
	sp := tr.Epoch(1).Child("agent", 0)
	for i := 0; i < 10; i++ {
		sp.Event(EvFetchRetry, Int("attempt", i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	// Oldest-first with seq surviving eviction: 6,7,8,9.
	for i, ev := range evs {
		if ev.Seq != 6+i {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 6+i)
		}
	}
	if e, d := tr.Stats(); e != 10 || d != 6 {
		t.Fatalf("Stats() = %d emitted, %d dropped; want 10, 6", e, d)
	}
}

func TestDumpJSONLSchemaAndDeterminism(t *testing.T) {
	build := func() *Tracer {
		tr := New(Options{Seed: 99})
		root := tr.Epoch(1)
		root.Event(EvEpochStart)
		root.Child("governor", 1).Event(EvShedPlanned, F64("width", 0.25), Int("slices", 2))
		root.Child("agent", 0).Event(EvFetchOK, Int("attempt", 1))
		return tr
	}
	var a, b bytes.Buffer
	if err := build().Dump(&a, "test"); err != nil {
		t.Fatal(err)
	}
	if err := build().Dump(&b, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed dumps are not byte-identical")
	}

	known := make(map[string]bool)
	for _, k := range KnownTypes() {
		known[k] = true
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4 (header + 3 events)", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if !known[ev.Type] {
			t.Fatalf("line %d has unknown type %q", i, ev.Type)
		}
		if len(ev.Trace) != 16 || len(ev.Span) != 16 {
			t.Fatalf("line %d IDs not 16-hex: %q %q", i, ev.Trace, ev.Span)
		}
	}
	var header Event
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Type != EvDump || header.Comp != "recorder" {
		t.Fatalf("header = %+v", header)
	}
}

func TestDumpOnceFirstTriggerWins(t *testing.T) {
	tr := New(Options{Seed: 5})
	tr.Epoch(1).Event(EvEpochStart)
	var sink bytes.Buffer
	tr.SetSink(&sink)
	if !tr.DumpOnce("coverage_violation") {
		t.Fatal("first DumpOnce did not dump")
	}
	first := sink.String()
	if tr.DumpOnce("run_end") {
		t.Fatal("second DumpOnce dumped again")
	}
	if sink.String() != first {
		t.Fatal("second DumpOnce appended to the sink")
	}
	if !strings.Contains(first, `"v":"coverage_violation"`) {
		t.Fatalf("dump header lost the first reason: %s", first)
	}

	// Without a sink, DumpOnce stays armed rather than burning the trigger.
	tr2 := New(Options{Seed: 5})
	if tr2.DumpOnce("early") {
		t.Fatal("sinkless DumpOnce reported a dump")
	}
	var sink2 bytes.Buffer
	tr2.SetSink(&sink2)
	if !tr2.DumpOnce("late") {
		t.Fatal("DumpOnce after SetSink did not dump")
	}
}

func TestConcurrentComponentsAreSafe(t *testing.T) {
	tr := New(Options{Seed: 11, RingSize: 64})
	root := tr.Epoch(1)
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sp := root.Child("agent", j)
			for i := 0; i < 100; i++ {
				sp.Event(EvFetchOK, Int("attempt", i))
			}
		}(j)
	}
	wg.Wait()
	if e, d := tr.Stats(); e != 800 || d != 8*(100-64) {
		t.Fatalf("Stats() = %d emitted, %d dropped", e, d)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Comp == b.Comp && a.Node == b.Node && a.Seq >= b.Seq {
			t.Fatalf("component %s/%d out of order: seq %d then %d", a.Comp, a.Node, a.Seq, b.Seq)
		}
	}
}

func TestWatchdog(t *testing.T) {
	if NewWatchdog(Disabled()) != nil {
		t.Fatal("Disabled SLO built a live watchdog")
	}
	var nilW *Watchdog
	if v := nilW.Check(Span{}, EpochStats{}); v != nil {
		t.Fatalf("nil watchdog returned violations: %v", v)
	}

	slo := Disabled()
	slo.MinWorstCoverage = 0.9
	slo.MaxShedWidth = 0.2
	slo.MaxDarkAgents = 0
	slo.DeadlineMissIsViolation = true
	w := NewWatchdog(slo)
	if w == nil {
		t.Fatal("enabled SLO built nil watchdog")
	}

	tr := New(Options{Seed: 3})
	span := tr.Epoch(1)
	got := w.Check(span, EpochStats{
		WorstCoverage: 0.5, AvgCoverage: 0.95,
		ShedWidth: 0.3, DarkAgents: 1, DeadlineMiss: true,
	})
	rules := make([]string, len(got))
	for i, v := range got {
		rules[i] = v.Rule
	}
	want := []string{"min_worst_coverage", "max_shed_width", "max_dark_agents", "deadline_miss"}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("violated rules = %v, want %v", rules, want)
	}
	var sloEvents int
	for _, ev := range tr.Events() {
		if ev.Type == EvSLOViolation {
			sloEvents++
		}
	}
	if sloEvents != len(want) {
		t.Fatalf("recorded %d slo_violation events, want %d", sloEvents, len(want))
	}

	// Clean epoch → no violations; zero Span still returns verdicts.
	if v := w.Check(Span{}, EpochStats{WorstCoverage: 0.99, AvgCoverage: 0.99}); v != nil {
		t.Fatalf("clean epoch violated: %v", v)
	}
	if v := w.Check(Span{}, EpochStats{WorstCoverage: 0.5}); len(v) == 0 {
		t.Fatal("zero-span Check lost the verdicts")
	}
}

func TestDisabledSLOIsDisabled(t *testing.T) {
	if Disabled().Enabled() {
		t.Fatal("Disabled() SLO reports Enabled")
	}
	s := Disabled()
	s.MaxFetchFailures = 0 // zero tolerance is an active rule
	if !s.Enabled() {
		t.Fatal("zero-tolerance rule not detected as enabled")
	}
}

// The dump header must carry the ledger chain head when a provider is
// attached and returning non-empty — and stay byte-identical to the
// ledger-off dump otherwise, so existing golden files never move.
func TestDumpChainHeadAttr(t *testing.T) {
	build := func() *Tracer {
		tr := New(Options{Seed: 11})
		tr.Epoch(1).Event(EvEpochStart)
		return tr
	}
	var off, empty, on bytes.Buffer
	if err := build().Dump(&off, "test"); err != nil {
		t.Fatal(err)
	}

	tr := build()
	tr.SetChainHead(func() string { return "" })
	if err := tr.Dump(&empty, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), empty.Bytes()) {
		t.Fatal("empty chain head changed the dump bytes")
	}

	tr = build()
	const head = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	tr.SetChainHead(func() string { return head })
	if err := tr.Dump(&on, "test"); err != nil {
		t.Fatal(err)
	}
	var header Event
	if err := json.Unmarshal([]byte(strings.SplitN(on.String(), "\n", 2)[0]), &header); err != nil {
		t.Fatal(err)
	}
	var got string
	for _, a := range header.Attrs {
		if a.K == "chain_head" {
			got = a.V
		}
	}
	if got != head {
		t.Fatalf("chain_head attr = %q, want %q", got, head)
	}
	if strings.Contains(off.String(), "chain_head") {
		t.Fatal("ledger-off dump mentions chain_head")
	}

	var nilTr *Tracer
	nilTr.SetChainHead(func() string { return head }) // must not panic
}
