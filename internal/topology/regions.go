package topology

import (
	"container/heap"
	"math"
	"sort"
)

// Regions partitions the topology's nodes into k contiguous regions by
// graph distance — the sharding key of the hierarchical control plane,
// where each region gets its own manifest controller and the planner's
// output is split along region boundaries.
//
// The partition is deterministic for a given topology: seeds are chosen
// by farthest-point traversal (the first seed is node 0; each subsequent
// seed is the node maximizing its shortest-path distance to the chosen
// set, ties toward lower IDs), and every node then joins the region of
// its nearest seed (ties again toward the lower-ID seed). Unreachable
// nodes fall into the first region. Regions are returned as ascending
// node-ID slices, ordered by their seed's ID; len(result) == min(k, N).
func (t *Topology) Regions(k int) [][]int {
	n := len(t.Nodes)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// All-pairs shortest-path distances from each prospective seed; k is
	// small (a handful of regions), so this is k Dijkstra runs, not n.
	distFromSeed := make([][]float64, 0, k)
	seeds := make([]int, 0, k)
	dijkstra := func(src int) []float64 {
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		q := &pq{{src, 0}}
		for q.Len() > 0 {
			it := heap.Pop(q).(pqItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, nb := range t.adj[it.node] {
				if nd := it.dist + nb.dist; nd < dist[nb.to] {
					dist[nb.to] = nd
					heap.Push(q, pqItem{nb.to, nd})
				}
			}
		}
		return dist
	}
	// minDist[v] is v's distance to the nearest chosen seed.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(seeds) < k {
		next := 0
		if len(seeds) > 0 {
			best := math.Inf(-1)
			next = -1
			for v := 0; v < n; v++ {
				if minDist[v] == 0 {
					continue // already a seed
				}
				d := minDist[v]
				if math.IsInf(d, 1) {
					d = math.MaxFloat64 // disconnected: farthest of all
				}
				if d > best {
					best, next = d, v
				}
			}
			if next < 0 {
				break // fewer distinct nodes than k
			}
		}
		seeds = append(seeds, next)
		df := dijkstra(next)
		distFromSeed = append(distFromSeed, df)
		for v := 0; v < n; v++ {
			if df[v] < minDist[v] {
				minDist[v] = df[v]
			}
		}
	}
	sort.Ints(seeds) // region order follows seed ID, not discovery order
	// Re-fetch each sorted seed's distance row.
	rows := make([][]float64, len(seeds))
	for i, s := range seeds {
		for _, orig := range distFromSeed {
			if orig[s] == 0 { // only s's own row: inter-seed distances are positive

				rows[i] = orig
				break
			}
		}
		if rows[i] == nil {
			rows[i] = dijkstra(s)
		}
	}
	out := make([][]int, len(seeds))
	for v := 0; v < n; v++ {
		best, bi := math.Inf(1), 0
		for i := range seeds {
			if d := rows[i][v]; d < best {
				best, bi = d, i
			}
		}
		out[bi] = append(out[bi], v)
	}
	// Drop empty regions (possible only when every node of a seed got
	// claimed by a closer duplicate-distance seed; keeps the contract that
	// each returned region is non-empty).
	final := out[:0]
	for _, r := range out {
		if len(r) > 0 {
			final = append(final, r)
		}
	}
	return final
}
