package topology

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestInternet2Shape(t *testing.T) {
	i2 := Internet2()
	if i2.N() != 11 {
		t.Fatalf("Internet2 has %d nodes, want 11", i2.N())
	}
	if len(i2.Links) != 14 {
		t.Fatalf("Internet2 has %d links, want 14", len(i2.Links))
	}
	if !i2.Connected() {
		t.Fatal("Internet2 must be connected")
	}
	ny, ok := i2.NodeByName("NYCM")
	if !ok || ny.City != "New York" {
		t.Fatalf("NYCM lookup failed: %+v ok=%v", ny, ok)
	}
	// New York must be the largest gravity endpoint (the paper's Figure 8
	// discussion hinges on it).
	if top := i2.SortedByPopulation()[0]; top != ny.ID {
		t.Fatalf("largest population node = %d, want NYCM (%d)", top, ny.ID)
	}
}

func TestGeantShape(t *testing.T) {
	g := Geant()
	if g.N() != 22 {
		t.Fatalf("Geant has %d nodes, want 22", g.N())
	}
	if !g.Connected() {
		t.Fatal("Geant must be connected")
	}
	for i := range g.Nodes {
		if g.Degree(i) == 0 {
			t.Fatalf("node %d (%s) has no links", i, g.Nodes[i].City)
		}
	}
}

func TestRocketfuelLikeDeterministic(t *testing.T) {
	for _, spec := range []RocketfuelSpec{AS1221, AS1239, AS3257} {
		a := RocketfuelLike(spec)
		b := RocketfuelLike(spec)
		if a.N() != spec.PoPs {
			t.Fatalf("%s: %d nodes, want %d", spec.Name, a.N(), spec.PoPs)
		}
		if len(a.Links) != len(b.Links) {
			t.Fatalf("%s: generator is not deterministic", spec.Name)
		}
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				t.Fatalf("%s: link %d differs between runs", spec.Name, i)
			}
		}
		if !a.Connected() {
			t.Fatalf("%s: disconnected", spec.Name)
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	i2 := Internet2()
	pm := i2.PathMatrix()
	for a := 0; a < i2.N(); a++ {
		for b := 0; b < i2.N(); b++ {
			path := pm[a][b]
			if len(path) == 0 {
				t.Fatalf("no path %d->%d", a, b)
			}
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("path %d->%d has wrong endpoints: %v", a, b, path)
			}
			// Consecutive hops must be actual links.
			for i := 0; i+1 < len(path); i++ {
				if !i2.hasLink(path[i], path[i+1]) {
					t.Fatalf("path %d->%d uses nonexistent link %d-%d", a, b, path[i], path[i+1])
				}
			}
			// No repeated nodes.
			seen := map[int]bool{}
			for _, v := range path {
				if seen[v] {
					t.Fatalf("path %d->%d revisits node %d: %v", a, b, v, path)
				}
				seen[v] = true
			}
		}
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// Triangle with a shortcut: direct A-C (10) vs A-B-C (3+3).
	nodes := []Node{{ID: 0}, {ID: 1}, {ID: 2}}
	tp := New("tri", nodes)
	tp.AddLink(0, 1, 3)
	tp.AddLink(1, 2, 3)
	tp.AddLink(0, 2, 10)
	p := tp.Path(0, 2)
	want := []int{0, 1, 2}
	if len(p) != 3 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] {
		t.Fatalf("path = %v, want %v", p, want)
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Two equal-cost 2-hop paths 0->3 via 1 or via 2; must always pick via
	// the lower-ID predecessor.
	nodes := []Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	tp := New("diamond", nodes)
	tp.AddLink(0, 1, 5)
	tp.AddLink(0, 2, 5)
	tp.AddLink(1, 3, 5)
	tp.AddLink(2, 3, 5)
	for i := 0; i < 10; i++ {
		p := tp.Path(0, 3)
		if len(p) != 3 || p[1] != 1 {
			t.Fatalf("run %d: path = %v, want [0 1 3]", i, p)
		}
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// New York to Los Angeles is about 3940 km.
	d := Haversine(40.71, -74.01, 34.05, -118.24)
	if d < 3800 || d > 4100 {
		t.Fatalf("NY-LA distance = %v km, want ~3940", d)
	}
	if Haversine(10, 10, 10, 10) != 0 {
		t.Fatal("identical points must have zero distance")
	}
}

func TestPathSymmetryQuick(t *testing.T) {
	// Shortest-path costs must be symmetric on undirected graphs; the paths
	// themselves may differ under ties but their hop distance matters for
	// Dist_ikj, which only depends on path length here.
	i2 := Internet2()
	dist := func(path []int) float64 {
		d := 0.0
		for i := 0; i+1 < len(path); i++ {
			for _, l := range i2.Links {
				if (l.A == path[i] && l.B == path[i+1]) || (l.B == path[i] && l.A == path[i+1]) {
					d += l.Dist
				}
			}
		}
		return d
	}
	f := func(a, b uint8) bool {
		x, y := int(a)%i2.N(), int(b)%i2.N()
		return math.Abs(dist(i2.Path(x, y))-dist(i2.Path(y, x))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedOnFragment(t *testing.T) {
	nodes := []Node{{ID: 0}, {ID: 1}, {ID: 2}}
	tp := New("frag", nodes)
	tp.AddLink(0, 1, 1)
	if tp.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	tp.AddLink(1, 2, 1)
	if !tp.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestAddLinkPanics(t *testing.T) {
	tp := New("p", []Node{{ID: 0}, {ID: 1}})
	for _, fn := range []func(){
		func() { tp.AddLink(0, 0, 1) },
		func() { tp.AddLink(0, 5, 1) },
		func() { tp.AddLink(0, 1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFiftyNode(t *testing.T) {
	t50 := FiftyNode()
	if t50.N() != 50 {
		t.Fatalf("FiftyNode has %d nodes", t50.N())
	}
	if !t50.Connected() {
		t.Fatal("FiftyNode disconnected")
	}
}

func TestTotalPopulationPositive(t *testing.T) {
	for _, tp := range []*Topology{Internet2(), Geant(), RocketfuelLike(AS1221)} {
		if tp.TotalPopulation() <= 0 {
			t.Fatalf("%s: nonpositive total population", tp.Name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var buf strings.Builder
	if err := Internet2().WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `graph "Internet2" {`) {
		t.Fatalf("bad DOT prologue: %q", out[:30])
	}
	if strings.Count(out, " -- ") != 14 {
		t.Fatalf("DOT has %d edges, want 14", strings.Count(out, " -- "))
	}
	if !strings.Contains(out, "New York") {
		t.Fatal("node labels missing")
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("unterminated graph")
	}
}
