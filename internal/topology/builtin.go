package topology

import (
	"fmt"
	"math/rand"
)

// Internet2 returns the 11-node Abilene/Internet2 backbone used by the
// paper's network-wide NIDS evaluation (Section 2.4): 11 PoPs distributed
// across the continental US, 14 links, shortest-path routing on fiber
// distance. Metro populations (circa 2010 census estimates) drive the
// gravity-model traffic matrix; the paper notes New York carries the
// largest gravity share, which these numbers reproduce.
func Internet2() *Topology {
	nodes := []Node{
		{ID: 0, Name: "SEAT", City: "Seattle", Population: 3.44e6, Lat: 47.61, Lon: -122.33},
		{ID: 1, Name: "SNVA", City: "Sunnyvale", Population: 4.34e6, Lat: 37.37, Lon: -122.04},
		{ID: 2, Name: "LOSA", City: "Los Angeles", Population: 12.83e6, Lat: 34.05, Lon: -118.24},
		{ID: 3, Name: "DNVR", City: "Denver", Population: 2.54e6, Lat: 39.74, Lon: -104.99},
		{ID: 4, Name: "KSCY", City: "Kansas City", Population: 2.04e6, Lat: 39.10, Lon: -94.58},
		{ID: 5, Name: "HSTN", City: "Houston", Population: 5.92e6, Lat: 29.76, Lon: -95.37},
		{ID: 6, Name: "CHIN", City: "Chicago", Population: 9.46e6, Lat: 41.88, Lon: -87.63},
		{ID: 7, Name: "IPLS", City: "Indianapolis", Population: 1.76e6, Lat: 39.77, Lon: -86.16},
		{ID: 8, Name: "ATLA", City: "Atlanta", Population: 5.29e6, Lat: 33.75, Lon: -84.39},
		{ID: 9, Name: "WASH", City: "Washington DC", Population: 5.58e6, Lat: 38.91, Lon: -77.04},
		{ID: 10, Name: "NYCM", City: "New York", Population: 18.90e6, Lat: 40.71, Lon: -74.01},
	}
	t := New("Internet2", nodes)
	links := [][2]string{
		{"SEAT", "SNVA"}, {"SEAT", "DNVR"},
		{"SNVA", "LOSA"}, {"SNVA", "DNVR"},
		{"LOSA", "HSTN"},
		{"DNVR", "KSCY"},
		{"KSCY", "HSTN"}, {"KSCY", "IPLS"},
		{"HSTN", "ATLA"},
		{"ATLA", "IPLS"}, {"ATLA", "WASH"},
		{"IPLS", "CHIN"},
		{"CHIN", "NYCM"},
		{"WASH", "NYCM"},
	}
	for _, l := range links {
		a, _ := t.NodeByName(l[0])
		b, _ := t.NodeByName(l[1])
		t.AddLinkAuto(a.ID, b.ID)
	}
	return t
}

// Geant returns a 22-node GEANT-like European research backbone. The paper
// uses the GEANT educational backbone for the NIPS evaluation (Section
// 3.4). The node set and mesh here follow the well-known GEANT PoP map of
// that era (city positions and populations are real; the link set is the
// standard published mesh, lightly simplified).
func Geant() *Topology {
	nodes := []Node{
		{ID: 0, Name: "UK", City: "London", Population: 8.17e6, Lat: 51.51, Lon: -0.13},
		{ID: 1, Name: "FR", City: "Paris", Population: 10.52e6, Lat: 48.86, Lon: 2.35},
		{ID: 2, Name: "ES", City: "Madrid", Population: 5.76e6, Lat: 40.42, Lon: -3.70},
		{ID: 3, Name: "PT", City: "Lisbon", Population: 2.81e6, Lat: 38.72, Lon: -9.14},
		{ID: 4, Name: "CH", City: "Geneva", Population: 1.24e6, Lat: 46.20, Lon: 6.14},
		{ID: 5, Name: "IT", City: "Milan", Population: 4.11e6, Lat: 45.46, Lon: 9.19},
		{ID: 6, Name: "AT", City: "Vienna", Population: 2.42e6, Lat: 48.21, Lon: 16.37},
		{ID: 7, Name: "CZ", City: "Prague", Population: 1.28e6, Lat: 50.08, Lon: 14.44},
		{ID: 8, Name: "DE", City: "Frankfurt", Population: 5.60e6, Lat: 50.11, Lon: 8.68},
		{ID: 9, Name: "NL", City: "Amsterdam", Population: 2.45e6, Lat: 52.37, Lon: 4.90},
		{ID: 10, Name: "BE", City: "Brussels", Population: 2.05e6, Lat: 50.85, Lon: 4.35},
		{ID: 11, Name: "DK", City: "Copenhagen", Population: 1.99e6, Lat: 55.68, Lon: 12.57},
		{ID: 12, Name: "SE", City: "Stockholm", Population: 2.05e6, Lat: 59.33, Lon: 18.06},
		{ID: 13, Name: "FI", City: "Helsinki", Population: 1.36e6, Lat: 60.17, Lon: 24.94},
		{ID: 14, Name: "PL", City: "Warsaw", Population: 3.10e6, Lat: 52.23, Lon: 21.01},
		{ID: 15, Name: "HU", City: "Budapest", Population: 2.97e6, Lat: 47.50, Lon: 19.04},
		{ID: 16, Name: "HR", City: "Zagreb", Population: 1.11e6, Lat: 45.81, Lon: 15.98},
		{ID: 17, Name: "GR", City: "Athens", Population: 3.75e6, Lat: 37.98, Lon: 23.73},
		{ID: 18, Name: "IE", City: "Dublin", Population: 1.80e6, Lat: 53.35, Lon: -6.26},
		{ID: 19, Name: "LU", City: "Luxembourg", Population: 0.54e6, Lat: 49.61, Lon: 6.13},
		{ID: 20, Name: "SI", City: "Ljubljana", Population: 0.54e6, Lat: 46.06, Lon: 14.51},
		{ID: 21, Name: "SK", City: "Bratislava", Population: 0.66e6, Lat: 48.15, Lon: 17.11},
	}
	t := New("Geant", nodes)
	links := [][2]string{
		{"UK", "FR"}, {"UK", "NL"}, {"UK", "IE"}, {"UK", "BE"},
		{"FR", "ES"}, {"FR", "CH"}, {"FR", "BE"}, {"FR", "LU"},
		{"ES", "PT"}, {"ES", "IT"},
		{"PT", "UK"},
		{"CH", "IT"}, {"CH", "DE"},
		{"IT", "AT"}, {"IT", "GR"},
		{"AT", "CZ"}, {"AT", "HU"}, {"AT", "SI"}, {"AT", "SK"}, {"AT", "DE"},
		{"CZ", "DE"}, {"CZ", "PL"}, {"CZ", "SK"},
		{"DE", "NL"}, {"DE", "DK"}, {"DE", "LU"},
		{"NL", "BE"},
		{"DK", "SE"},
		{"SE", "FI"},
		{"FI", "DE"},
		{"PL", "DE"},
		{"HU", "HR"}, {"HU", "SK"},
		{"HR", "SI"},
		{"GR", "AT"},
		{"IE", "NL"},
	}
	for _, l := range links {
		a, _ := t.NodeByName(l[0])
		b, _ := t.NodeByName(l[1])
		t.AddLinkAuto(a.ID, b.ID)
	}
	return t
}

// RocketfuelSpec names a tier-1 ISP whose Rocketfuel-inferred PoP map the
// paper evaluates on. The real maps are not redistributable, so
// RocketfuelLike synthesizes an ISP backbone with the same PoP count and a
// comparable two-level core/gateway structure; DESIGN.md documents the
// substitution.
type RocketfuelSpec struct {
	ASN   int
	Name  string
	PoPs  int
	Cores int
	Seed  int64
}

// Rocketfuel ASNs evaluated by the paper (Figure 10).
var (
	AS1221 = RocketfuelSpec{ASN: 1221, Name: "AS1221-Telstra", PoPs: 44, Cores: 9, Seed: 1221}
	AS1239 = RocketfuelSpec{ASN: 1239, Name: "AS1239-Sprint", PoPs: 52, Cores: 11, Seed: 1239}
	AS3257 = RocketfuelSpec{ASN: 3257, Name: "AS3257-Tiscali", PoPs: 41, Cores: 8, Seed: 3257}
)

// RocketfuelLike deterministically generates an ISP-like two-level backbone
// per the spec: a well-connected core (ring plus chords) and access PoPs
// homed to one or two cores. City coordinates are drawn on a continental
// grid and populations follow a Zipf-like distribution, matching the skew
// real gravity matrices show.
func RocketfuelLike(spec RocketfuelSpec) *Topology {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.PoPs < 4 || spec.Cores < 3 || spec.Cores > spec.PoPs {
		panic(fmt.Sprintf("topology: bad rocketfuel spec %+v", spec))
	}
	nodes := make([]Node, spec.PoPs)
	for i := range nodes {
		// Zipf-ish population: largest metro ~12M, decaying with rank.
		pop := 12.0e6 / float64(i+1)
		pop *= 0.8 + 0.4*rng.Float64()
		nodes[i] = Node{
			ID:         i,
			Name:       fmt.Sprintf("P%02d", i),
			City:       fmt.Sprintf("%s-pop%02d", spec.Name, i),
			Population: pop,
			Lat:        25 + rng.Float64()*24, // continental band
			Lon:        -120 + rng.Float64()*50,
		}
	}
	t := New(spec.Name, nodes)

	// Core ring.
	for c := 0; c < spec.Cores; c++ {
		t.AddLinkAuto(c, (c+1)%spec.Cores)
	}
	// Core chords: roughly cores/2 extra links for resilience.
	for i := 0; i < spec.Cores/2; i++ {
		a := rng.Intn(spec.Cores)
		b := rng.Intn(spec.Cores)
		if a == b || t.hasLink(a, b) {
			continue
		}
		t.AddLinkAuto(a, b)
	}
	// Access PoPs: home to the nearest core, dual-home with probability 0.4.
	for p := spec.Cores; p < spec.PoPs; p++ {
		best, bestD := -1, 0.0
		for c := 0; c < spec.Cores; c++ {
			d := Haversine(nodes[p].Lat, nodes[p].Lon, nodes[c].Lat, nodes[c].Lon)
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		t.AddLinkAuto(p, best)
		if rng.Float64() < 0.4 {
			second := rng.Intn(spec.Cores)
			if second != best && !t.hasLink(p, second) {
				t.AddLinkAuto(p, second)
			}
		}
	}
	if !t.Connected() {
		// The construction above always yields a connected graph (every
		// access PoP is homed to the core ring); this is a generator
		// invariant worth failing loudly on.
		panic("topology: generated rocketfuel-like graph is disconnected")
	}
	return t
}

func (t *Topology) hasLink(a, b int) bool {
	for _, nb := range t.adj[a] {
		if nb.to == b {
			return true
		}
	}
	return false
}

// FiftyNode returns a 50-node ISP-like topology used to reproduce the
// paper's optimization-time measurements ("It takes 0.42 seconds to compute
// the optimal solution for a 50-node topology", Section 2.4; "roughly 220
// seconds ... for a 50-node topology", Section 3.4).
func FiftyNode() *Topology {
	return RocketfuelLike(RocketfuelSpec{ASN: 0, Name: "ISP50", PoPs: 50, Cores: 10, Seed: 50})
}
