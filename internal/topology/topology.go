// Package topology models the network substrate the paper's optimizations
// run over: undirected weighted graphs of PoP-level routers, shortest-path
// routing on link distances (Section 2.4 and 3.4 of the paper use
// shortest-path routing inferred per Mahajan et al.), and the specific
// evaluation topologies — Internet2/Abilene and Geant embedded with real
// city coordinates and metro populations, plus seeded ISP-like stand-ins
// for the Rocketfuel tier-1 maps (AS 1221, 1239, 3257), which are not
// redistributable.
package topology

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"math"
	"sort"
)

// Node is a PoP-level router location.
type Node struct {
	ID         int
	Name       string  // short code, e.g. "NYCM"
	City       string  // human-readable location
	Population float64 // metro population used by the gravity traffic model
	Lat, Lon   float64 // degrees; used to derive link distances
}

// Link is an undirected edge between two nodes. Dist is the routing weight
// (kilometers for the embedded topologies).
type Link struct {
	A, B int
	Dist float64
}

// Topology is an undirected weighted graph with deterministic shortest-path
// routing. Construct with New and AddLink, or use one of the embedded
// builders (Internet2, Geant, RocketfuelLike).
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	adj map[int][]neighbor
}

type neighbor struct {
	to   int
	dist float64
}

// New returns a topology with n placeholder nodes. Callers typically set
// node metadata directly afterwards.
func New(name string, nodes []Node) *Topology {
	t := &Topology{Name: name, Nodes: nodes, adj: make(map[int][]neighbor)}
	for i := range t.Nodes {
		if t.Nodes[i].ID != i {
			panic(fmt.Sprintf("topology: node %d has ID %d; IDs must be dense and ordered", i, t.Nodes[i].ID))
		}
	}
	return t
}

// N reports the number of nodes.
func (t *Topology) N() int { return len(t.Nodes) }

// AddLink adds an undirected link with the given distance. Adding a link
// with a nonpositive distance or an unknown endpoint panics: topologies are
// static program data here, so these are construction bugs.
func (t *Topology) AddLink(a, b int, dist float64) {
	if a < 0 || b < 0 || a >= len(t.Nodes) || b >= len(t.Nodes) || a == b {
		panic(fmt.Sprintf("topology: bad link %d-%d", a, b))
	}
	if dist <= 0 || math.IsNaN(dist) || math.IsInf(dist, 0) {
		panic(fmt.Sprintf("topology: bad link distance %v", dist))
	}
	t.Links = append(t.Links, Link{A: a, B: b, Dist: dist})
	t.adj[a] = append(t.adj[a], neighbor{b, dist})
	t.adj[b] = append(t.adj[b], neighbor{a, dist})
}

// AddLinkAuto adds a link with distance derived from the endpoint
// coordinates (haversine great-circle distance in kilometers).
func (t *Topology) AddLinkAuto(a, b int) {
	d := Haversine(t.Nodes[a].Lat, t.Nodes[a].Lon, t.Nodes[b].Lat, t.Nodes[b].Lon)
	if d < 1 {
		d = 1
	}
	t.AddLink(a, b, d)
}

// Degree reports the number of links incident to node id.
func (t *Topology) Degree(id int) int { return len(t.adj[id]) }

// Connected reports whether every node can reach every other node.
func (t *Topology) Connected() bool {
	if len(t.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(t.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.adj[v] {
			if !seen[nb.to] {
				seen[nb.to] = true
				count++
				stack = append(stack, nb.to)
			}
		}
	}
	return count == len(t.Nodes)
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPaths runs Dijkstra from src and returns, for every destination,
// the node sequence src..dst along the unique tie-broken shortest path.
// Ties are broken deterministically toward lower predecessor IDs so routing
// is stable across runs.
func (t *Topology) ShortestPaths(src int) [][]int {
	n := len(t.Nodes)
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		// Deterministic neighbor order.
		nbs := t.adj[it.node]
		for _, nb := range nbs {
			nd := it.dist + nb.dist
			const tieEps = 1e-9
			if nd < dist[nb.to]-tieEps ||
				(math.Abs(nd-dist[nb.to]) <= tieEps && (prev[nb.to] == -1 || it.node < prev[nb.to])) {
				dist[nb.to] = math.Min(nd, dist[nb.to])
				prev[nb.to] = it.node
				heap.Push(q, pqItem{nb.to, nd})
			}
		}
	}
	paths := make([][]int, n)
	for dst := 0; dst < n; dst++ {
		if dst == src {
			paths[dst] = []int{src}
			continue
		}
		if prev[dst] < 0 {
			continue // unreachable
		}
		var rev []int
		for v := dst; v != -1; v = prev[v] {
			rev = append(rev, v)
			if v == src {
				break
			}
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		paths[dst] = rev
	}
	return paths
}

// Path returns the shortest path from a to b (inclusive of endpoints), or
// nil if unreachable.
func (t *Topology) Path(a, b int) []int {
	return t.ShortestPaths(a)[b]
}

// PathMatrix computes shortest paths between all ordered pairs. Entry
// [a][b] is nil when b is unreachable from a; [a][a] is the singleton {a}.
func (t *Topology) PathMatrix() [][][]int {
	out := make([][][]int, len(t.Nodes))
	for a := range t.Nodes {
		out[a] = t.ShortestPaths(a)
	}
	return out
}

// TotalPopulation sums node populations (gravity model normalizer).
func (t *Topology) TotalPopulation() float64 {
	var sum float64
	for _, n := range t.Nodes {
		sum += n.Population
	}
	return sum
}

// NodeByName returns the node with the given short code.
func (t *Topology) NodeByName(name string) (Node, bool) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// SortedByPopulation returns node IDs ordered by descending population,
// ties broken by ID. Used by evaluations that care about the heaviest
// gravity-model endpoints.
func (t *Topology) SortedByPopulation() []int {
	ids := make([]int, len(t.Nodes))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := t.Nodes[ids[i]], t.Nodes[ids[j]]
		if a.Population != b.Population {
			return a.Population > b.Population
		}
		return a.ID < b.ID
	})
	return ids
}

// Haversine returns the great-circle distance in kilometers between two
// coordinates given in degrees.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// WriteDOT renders the topology in Graphviz DOT form (node labels carry
// city and population; edge labels the link distance), for documentation
// and quick visual inspection of generated ISP stand-ins.
func (t *Topology) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n  layout=neato;\n  node [shape=ellipse, fontsize=10];\n", t.Name)
	for _, n := range t.Nodes {
		label := n.City
		if label == "" {
			label = n.Name
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\\n%.1fM\", pos=\"%.2f,%.2f!\"];\n",
			n.ID, label, n.Population/1e6, n.Lon/3, n.Lat/3)
	}
	for _, l := range t.Links {
		fmt.Fprintf(bw, "  n%d -- n%d [label=\"%.0f\", fontsize=8];\n", l.A, l.B, l.Dist)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
