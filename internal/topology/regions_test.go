package topology

import (
	"reflect"
	"testing"
)

func TestRegionsPartition(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo *Topology
		k    int
	}{
		{"internet2-2", Internet2(), 2},
		{"internet2-3", Internet2(), 3},
		{"geant-4", Geant(), 4},
		{"isp50-5", FiftyNode(), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			regions := tc.topo.Regions(tc.k)
			if len(regions) != tc.k {
				t.Fatalf("got %d regions, want %d", len(regions), tc.k)
			}
			seen := make(map[int]int)
			for r, members := range regions {
				if len(members) == 0 {
					t.Fatalf("region %d is empty", r)
				}
				for i := 1; i < len(members); i++ {
					if members[i-1] >= members[i] {
						t.Fatalf("region %d not ascending: %v", r, members)
					}
				}
				for _, j := range members {
					if prev, dup := seen[j]; dup {
						t.Fatalf("node %d in regions %d and %d", j, prev, r)
					}
					seen[j] = r
				}
			}
			if len(seen) != tc.topo.N() {
				t.Fatalf("partition covers %d of %d nodes", len(seen), tc.topo.N())
			}
		})
	}
}

func TestRegionsDeterministic(t *testing.T) {
	a := Internet2().Regions(3)
	b := Internet2().Regions(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic:\n%v\n%v", a, b)
	}
}

func TestRegionsEdgeCases(t *testing.T) {
	topo := Internet2()
	if got := topo.Regions(0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	one := topo.Regions(1)
	if len(one) != 1 || len(one[0]) != topo.N() {
		t.Fatalf("k=1 must be the whole topology, got %v", one)
	}
	// k > N clamps to one singleton region per node.
	all := topo.Regions(topo.N() + 5)
	if len(all) != topo.N() {
		t.Fatalf("k>N gave %d regions, want %d", len(all), topo.N())
	}
	for r, members := range all {
		if len(members) != 1 {
			t.Fatalf("region %d has %d members, want 1", r, len(members))
		}
	}
}
