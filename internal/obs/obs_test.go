package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp pins the zero-value contract: every operation on
// a nil registry (and on the nil metric handles it returns) must be safe
// and do nothing.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Add("c", 5)
	r.Set("g", 1.5)
	r.Observe("h", 9)
	if c := r.Counter("c"); c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	var c *Counter
	c.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(2)
	g.Max(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %g", g.Value())
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded observations")
	}
	sp := r.StartSpan("solve")
	sp.End() // must not panic, must not record
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	r.Publish("noop") // no-op, no panic
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Counter("pivots").Add(3)
	r.Counter("pivots").Add(4)
	if got := r.Counter("pivots").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	r.Gauge("epoch").Set(4)
	r.Gauge("epoch").Set(9)
	if got := r.Gauge("epoch").Value(); got != 9 {
		t.Fatalf("gauge = %g, want 9", got)
	}
	g := r.Gauge("best")
	g.Max(3)
	g.Max(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge max = %g, want 3", got)
	}
	h := r.Histogram("iters")
	for _, v := range []int64{0, 1, 2, 3, 4, 1024} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1034 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestBucketIndex pins the log-scale bucket layout: bucket 0 holds v<=1,
// bucket i holds [2^(i-1), 2^i).
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestSnapshotStable asserts two snapshots of the same registry state
// serialize to identical bytes in both the JSON and text forms.
func TestSnapshotStable(t *testing.T) {
	r := New()
	r.Add("b.count", 2)
	r.Add("a.count", 1)
	r.Set("gauge.z", 0.5)
	r.Observe("lat", 100)
	r.Observe("lat", 3000)

	var j1, j2, t1, t2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatalf("JSON snapshots differ:\n%s\n%s", j1.String(), j2.String())
	}
	if err := r.Snapshot().WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("text snapshots differ:\n%s\n%s", t1.String(), t2.String())
	}
	for _, want := range []string{"a.count 1", "b.count 2", "gauge.z 0.5", "lat.count 2", "lat.sum 3100"} {
		if !strings.Contains(t1.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, t1.String())
		}
	}
	// Sorted: "a.count" line precedes "b.count".
	if strings.Index(t1.String(), "a.count") > strings.Index(t1.String(), "b.count") {
		t.Errorf("text snapshot not sorted:\n%s", t1.String())
	}
}

// TestConcurrentUse exercises the registry from many goroutines; run
// under -race this pins the thread-safety of handle creation and updates.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Add(1)
				r.Gauge("g").Set(float64(j))
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := New()
	sp := r.StartSpan("solve_ns")
	sp.End()
	h := r.Histogram("solve_ns")
	if h.Count() != 1 {
		t.Fatalf("span did not record: count = %d", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatalf("span recorded negative duration: %d", h.Sum())
	}
}

func TestPublishIdempotent(t *testing.T) {
	r := New()
	r.Add("x", 1)
	r.Publish("obs_test_metrics")
	r.Publish("obs_test_metrics") // second publish must not panic
	r2 := New()
	r2.Publish("obs_test_metrics") // same name, different registry: first wins, no panic
}

// TestSnapshotOrderIndependentOfRegistration builds the same metric state
// through two interleaved registration orders and asserts both the text
// and JSON renderings are byte-identical: snapshot output must be a
// function of the metric state alone, never of the order handles were
// created in.
func TestSnapshotOrderIndependentOfRegistration(t *testing.T) {
	fill := func(order []int) *Registry {
		r := New()
		ops := []func(){
			func() { r.Add("solver.iters", 12) },
			func() { r.Set("cluster.coverage", 0.97) },
			func() { r.Observe("fetch_ns", 1500) },
			func() { r.Add("agent.fetches", 3) },
			func() { r.Set("governor.shed_width", 0.25) },
			func() { r.Observe("solve_ns", 900) },
		}
		for _, i := range order {
			ops[i]()
		}
		return r
	}
	a := fill([]int{0, 1, 2, 3, 4, 5})
	b := fill([]int{5, 3, 1, 4, 2, 0})

	var ta, tb, ja, jb bytes.Buffer
	if err := a.Snapshot().WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatalf("text snapshots differ across registration orders:\n%s\n---\n%s", ta.String(), tb.String())
	}
	if err := a.Snapshot().WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatalf("JSON snapshots differ across registration orders:\n%s\n---\n%s", ja.String(), jb.String())
	}

	// Output order is by section (counters, gauges, histograms), sorted by
	// name within each, with histogram sub-lines grouped.
	wantOrder := []string{
		"agent.fetches 3", "solver.iters 12",
		"cluster.coverage 0.97", "governor.shed_width 0.25",
		"fetch_ns.count 1", "fetch_ns.sum 1500", "fetch_ns.mean",
		"solve_ns.count 1",
	}
	text := ta.String()
	last := -1
	for _, want := range wantOrder {
		i := strings.Index(text, want)
		if i < 0 {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
		if i < last {
			t.Fatalf("text snapshot out of order at %q:\n%s", want, text)
		}
		last = i
	}
}
