package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestQuantileNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %d, want 0", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty HistSnapshot Quantile = %d, want 0", got)
	}
}

func TestQuantileBucketBounds(t *testing.T) {
	h := &Histogram{}
	// 100 observations of 100ns: every quantile lands in the [64,127]
	// bucket, whose inclusive upper bound is 127.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 127 {
			t.Fatalf("Quantile(%g) = %d, want bucket upper 127", q, got)
		}
	}
	if got := h.Quantile(0.5); got < 100 || got > 200 {
		t.Fatalf("estimate %d not within 2x of true value 100", got)
	}
}

func TestQuantileRankWalk(t *testing.T) {
	h := &Histogram{}
	// 90 small values (bucket upper 1) and 10 large (bucket upper 1023).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.9); got != 1 {
		t.Fatalf("p90 = %d, want 1 (rank 90 is the last small value)", got)
	}
	if got := h.Quantile(0.91); got != 1023 {
		t.Fatalf("p91 = %d, want 1023", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-1); got != 1 {
		t.Fatalf("q=-1 = %d, want first bucket", got)
	}
	if got := h.Quantile(2); got != 1023 {
		t.Fatalf("q=2 = %d, want last bucket", got)
	}
}

func TestQuantileMaxBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("max-bucket quantile = %d, want MaxInt64", got)
	}
}

func TestQuantileRank(t *testing.T) {
	cases := []struct {
		q     float64
		total int64
		want  int64
	}{
		{0, 100, 1},
		{-0.5, 100, 1},
		{1, 100, 100},
		{1.5, 100, 100},
		{0.5, 100, 50},
		{0.99, 100, 99},
		{0.999, 100, 100},
		{0.5, 1, 1},
	}
	for _, c := range cases {
		if got := quantileRank(c.q, c.total); got != c.want {
			t.Errorf("quantileRank(%g, %d) = %d, want %d", c.q, c.total, got, c.want)
		}
	}
}

func TestSnapshotQuantilesAndText(t *testing.T) {
	r := New()
	h := r.Histogram("fetch_ns")
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(100000)

	snap := r.Snapshot()
	hs := snap.Histograms["fetch_ns"]
	if hs.P50 != 127 {
		t.Fatalf("snapshot P50 = %d, want 127", hs.P50)
	}
	if hs.P99 != 127 {
		t.Fatalf("snapshot P99 = %d, want 127 (rank 99 is still a small value)", hs.P99)
	}
	if got := hs.Quantile(1); got != h.Quantile(1) {
		t.Fatalf("snapshot max quantile %d != live %d", got, h.Quantile(1))
	}

	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fetch_ns.p50 127", "fetch_ns.p99 127"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
	// The quantile lines stay inside the histogram's block, after .mean.
	if strings.Index(out, "fetch_ns.mean") > strings.Index(out, "fetch_ns.p50") {
		t.Fatalf("quantile lines out of order:\n%s", out)
	}
}
