// Package obs is the run-wide observability layer: a small,
// allocation-light registry of counters, gauges, log-bucket histograms,
// and span timers that the solver (internal/lp), the pipeline emulator
// (internal/bro), the NIPS rounding sweep (internal/nips), and the
// control plane thread through their hot paths.
//
// # Zero-value contract
//
// A nil *Registry is the no-op registry and is the default everywhere:
// every method on *Registry, *Counter, *Gauge, and *Histogram is nil-safe
// and does nothing (Span.End included, and a span started from a nil
// registry never reads the clock). Library users who do not opt in pay
// no allocation, no atomic, and no time.Now for the instrumentation.
//
// # Determinism non-interference
//
// The registry is write-only from the instrumented code's point of view:
// nothing in lp, bro, nips, core, or control ever reads a metric back to
// make a decision, so results are byte-identical whether a live registry,
// a nil registry, or no registry at all is attached. Wall-clock readings
// go only into the registry, never into returned Plan/Deployment/Result
// structs; the deterministic counts that do appear in those structs
// (pivot counts, rounding trials, repairs) are derived from the
// computation itself, not from the clock.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Create one with New; the nil *Registry is
// the no-op registry (see the package docs for the zero-value contract).
// All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty live registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. On a nil registry it returns nil, which is itself a valid no-op
// counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. On a nil registry it returns nil, a valid no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. On a nil registry it returns nil, a valid no-op histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Add is shorthand for r.Counter(name).Add(delta).
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Set is shorthand for r.Gauge(name).Set(v).
func (r *Registry) Set(name string, v float64) { r.Gauge(name).Set(v) }

// Observe is shorthand for r.Histogram(name).Observe(v).
func (r *Registry) Observe(name string, v int64) { r.Histogram(name).Observe(v) }

// Counter is a monotonically increasing atomic count. The nil *Counter
// is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set float64 — a last-write-wins sample such as
// a table size, an epoch number, or a best objective. The nil *Gauge is
// a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v if v is larger than the current value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed number of log-scale histogram buckets. Bucket
// i counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 1,
// including zero and negative observations); the last bucket is unbounded.
// 64 buckets cover every int64, so the layout never reallocates and two
// histograms are always mergeable.
const histBuckets = 64

// Histogram is a fixed-layout log-scale (power-of-two) histogram of int64
// observations — durations in nanoseconds, sizes in bytes, iteration
// counts. The nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex returns the log-scale bucket for v: the number of bits
// needed to represent v, so bucket i holds [2^(i-1), 2^i).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := bucketIndex(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on the nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) from the log-scale
// bucket counts, returning the inclusive upper bound of the bucket that
// contains the target rank. Because buckets are powers of two, the
// estimate is within 2x of the true value (exact for values <= 1).
// Returns 0 on the nil or empty histogram. Under concurrent Observe
// calls the result is a best-effort sample, like Count and Sum.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := quantileRank(q, total)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// quantileRank maps a quantile in [0,1] to a 1-based target rank among
// total observations, clamping out-of-range q.
func quantileRank(q float64, total int64) int64 {
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return total
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	return rank
}

// Span is a lightweight timer that records an elapsed wall-clock duration
// (in nanoseconds) into a histogram when ended. A span started from a nil
// registry holds a nil histogram and never touches the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing the named span. On a nil registry the returned
// span is inert: no clock read at start, none at End.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), start: time.Now()}
}

// End stops the span and records its duration. Safe to call on the zero
// Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Nanoseconds())
}
