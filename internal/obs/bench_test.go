package obs

import "testing"

// The registry sits on solver and emulation hot paths behind nil checks;
// these benchmarks pin the cost of both sides of that check. The nil
// variants must stay effectively free (a branch), the live variants one
// atomic op, so instrumentation can be left compiled-in everywhere.

func BenchmarkCounterAddNil(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddLive(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveLive(b *testing.B) {
	h := New().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkGaugeMaxLive(b *testing.B) {
	g := New().Gauge("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Max(float64(i))
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("x").End()
	}
}

func BenchmarkSpanLive(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("x").End()
	}
}
