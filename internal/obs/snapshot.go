package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot is a stable point-in-time copy of a registry. Map keys are
// metric names; the JSON form sorts them (encoding/json sorts map keys),
// and WriteText emits one sorted line per metric, so two snapshots of
// identical registries serialize identically.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is the serializable form of one histogram. Buckets lists
// only the non-empty log-scale buckets in ascending upper-bound order.
// P50 and P99 are bucket-quantile estimates (<=2x error, see Quantile)
// precomputed at snapshot time; they are derived from Buckets and carry
// no extra information, but make the JSON self-contained for dashboards.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	P50     int64    `json:"p50,omitempty"`
	P99     int64    `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile from the snapshot's bucket counts,
// with the same <=2x power-of-two bucket error as Histogram.Quantile.
// Returns 0 for an empty snapshot.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := quantileRank(q, h.Count)
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= rank {
			return b.Le
		}
	}
	return h.Buckets[len(h.Buckets)-1].Le
}

// Bucket is one non-empty histogram bucket: N observations v with
// v <= Le and v > the previous bucket's Le (Le is 2^i - 1 style
// power-of-two upper bound; the final bucket's Le is math.MaxInt64).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// bucketUpper returns the inclusive upper bound of log-scale bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 1
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: bucketUpper(i), N: n})
			}
		}
		hs.P50 = hs.Quantile(0.5)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// sortedKeys returns m's keys in ascending name order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText writes the snapshot as "name value" lines, one metric per
// line — a grep-friendly alternative to the JSON form. Output order is a
// function of the metric names alone: counters, then gauges, then
// histograms, each section in sorted name order, with each histogram's
// .count/.sum/.mean/.p50/.p99 lines kept together. (Sorting rendered
// lines instead
// would let values and cross-section prefix collisions decide ordering,
// so two registries with the same metric names could interleave
// differently.)
func (s Snapshot) WriteText(w io.Writer) error {
	var lines []string
	for _, name := range sortedKeys(s.Counters) {
		lines = append(lines, fmt.Sprintf("%s %d", name, s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		lines = append(lines, fmt.Sprintf("%s %g", name, s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		lines = append(lines, fmt.Sprintf("%s.count %d", name, h.Count))
		lines = append(lines, fmt.Sprintf("%s.sum %d", name, h.Sum))
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		lines = append(lines, fmt.Sprintf("%s.mean %.3f", name, mean))
		lines = append(lines, fmt.Sprintf("%s.p50 %d", name, h.Quantile(0.5)))
		lines = append(lines, fmt.Sprintf("%s.p99 %d", name, h.Quantile(0.99)))
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the registry's current snapshot as JSON to path,
// creating or truncating it. A nil registry writes an empty snapshot,
// so callers can wire the -metrics flag unconditionally.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Publish registers the registry under name in the process-global expvar
// namespace, so the standard /debug/vars endpoint (and the -pprof flag's
// HTTP server) exposes a live snapshot. Publishing the same name twice
// replaces nothing and does not panic; the first registry wins. A nil
// registry is a no-op.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
