// Package obshttp exposes a Registry and the Go runtime profiler over
// HTTP for the long-running commands. It lives in its own package so
// that instrumented libraries (internal/lp, internal/bro, ...) do not
// link net/http merely by importing internal/obs.
package obshttp

import (
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux

	"nwdeploy/internal/obs"
	"nwdeploy/internal/trace"
)

// Serve blocks serving debug endpoints on addr:
//
//	/metrics     the registry's text snapshot (one "name value" per line)
//	/metrics.json  the registry's JSON snapshot
//	/trace       the flight recorder's current rings as a JSONL dump
//	/debug/pprof/  the stdlib profiler
//	/debug/vars    expvar (includes the registry if Publish was called)
//
// Callers run it in a goroutine; r and t may be nil (empty snapshots, and
// an empty /trace body).
func Serve(addr string, r *obs.Registry, t *trace.Tracer) error {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
	http.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	http.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = t.Dump(w, "http")
	})
	return http.ListenAndServe(addr, nil)
}
