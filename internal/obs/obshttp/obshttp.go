// Package obshttp exposes a Registry, the fleet telemetry plane, and the
// Go runtime profiler over HTTP for the long-running commands. It lives
// in its own package so that instrumented libraries (internal/lp,
// internal/bro, ...) do not link net/http merely by importing
// internal/obs.
package obshttp

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"

	"nwdeploy/internal/obs"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/trace"
)

// Options selects what a mux serves. Every field may be nil: the routes
// still exist and render empty snapshots, so scrapers never see a 404
// for a merely-unconfigured source.
type Options struct {
	Registry *obs.Registry
	Tracer   *trace.Tracer
	// Fleet serves /fleet (latest snapshot) and /metrics.prom gains the
	// fleet_* families; History serves /fleet/history.
	Fleet   *telemetry.Fleet
	History *telemetry.History
}

// NewMux builds a fresh ServeMux with the debug endpoints:
//
//	/metrics       the registry's text snapshot (one "name value" per line)
//	/metrics.json  the registry's JSON snapshot
//	/metrics.prom  Prometheus text exposition (registry + fleet families)
//	/trace         the flight recorder's current rings as a JSONL dump
//	/fleet         the latest fleet snapshot as JSON
//	/fleet/history the retained per-epoch snapshots as a JSON array
//	/debug/pprof/  the stdlib profiler
//	/debug/vars    expvar (includes the registry if Publish was called)
//
// Each call returns an independent mux, so two servers in one process
// (or one per test) never collide — nothing is registered on
// http.DefaultServeMux.
func NewMux(o Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = o.Registry.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WriteProm(w, o.Registry.Snapshot())
		_ = telemetry.WriteFleetProm(w, o.Fleet.Latest())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = o.Tracer.Dump(w, "http")
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := o.Fleet.Latest()
		if snap == nil {
			_, _ = w.Write([]byte("null\n"))
			return
		}
		_ = writeJSONIndent(w, snap)
	})
	mux.HandleFunc("/fleet/history", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.History.WriteJSON(w)
	})
	// The stdlib profiler and expvar, wired explicitly: the blank pprof
	// import would touch only DefaultServeMux, which this package
	// deliberately leaves alone.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve blocks serving a NewMux on addr. Callers run it in a goroutine;
// r and t may be nil.
func Serve(addr string, r *obs.Registry, t *trace.Tracer) error {
	return ServeOpts(addr, Options{Registry: r, Tracer: t})
}

// ServeOpts is Serve with the full option surface (fleet + history).
func ServeOpts(addr string, o Options) error {
	return http.ListenAndServe(addr, NewMux(o))
}

func writeJSONIndent(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
