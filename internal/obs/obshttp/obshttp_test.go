package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nwdeploy/internal/obs"
	"nwdeploy/internal/telemetry"
	"nwdeploy/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// Every route answers 200 with its declared content type when fully
// configured, and the bodies carry the configured state.
func TestMuxEndpoints(t *testing.T) {
	reg := obs.New()
	reg.Counter("cluster.epochs").Add(3)
	reg.Histogram("fetch.ns").Observe(1500)
	tr := trace.New(trace.Options{})
	tr.Epoch(1).Event(trace.EvEpochStart)

	fleet := telemetry.NewFleet(2, telemetry.FleetOptions{})
	hist := telemetry.NewHistory(8)
	fleet.Report(telemetry.NodeStats{Node: 0, Epoch: 1})
	hist.Add(fleet.EndEpoch(1, 1))

	srv := httptest.NewServer(NewMux(Options{Registry: reg, Tracer: tr, Fleet: fleet, History: hist}))
	defer srv.Close()

	code, ct, body := get(t, srv, "/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: %d %s", code, ct)
	}
	for _, want := range []string{"cluster.epochs 3", "fetch.ns.p50", "fetch.ns.p99"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, ct, body = get(t, srv, "/metrics.json")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json: %d %s", code, ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not parseable: %v", err)
	}
	if snap.Counters["cluster.epochs"] != 3 {
		t.Fatalf("/metrics.json counters = %+v", snap.Counters)
	}

	code, ct, body = get(t, srv, "/metrics.prom")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics.prom: %d %s", code, ct)
	}
	for _, want := range []string{"cluster_epochs 3", `fleet_nodes{state="healthy"} 1`, `fleet_nodes{state="dark"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics.prom missing %q:\n%s", want, body)
		}
	}
	if err := telemetry.ValidateProm(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics.prom invalid exposition: %v", err)
	}

	code, ct, _ = get(t, srv, "/trace")
	if code != 200 || !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("/trace: %d %s", code, ct)
	}

	code, ct, body = get(t, srv, "/fleet")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/fleet: %d %s", code, ct)
	}
	var fs telemetry.FleetSnapshot
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatalf("/fleet not parseable: %v", err)
	}
	if fs.RunEpoch != 1 || fs.Healthy != 1 || fs.Dark != 1 {
		t.Fatalf("/fleet = %+v", fs)
	}

	code, _, body = get(t, srv, "/fleet/history")
	if code != 200 {
		t.Fatalf("/fleet/history: %d", code)
	}
	var hs []telemetry.FleetSnapshot
	if err := json.Unmarshal([]byte(body), &hs); err != nil || len(hs) != 1 {
		t.Fatalf("/fleet/history = %q (%v)", body, err)
	}

	code, _, _ = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	code, _, body = get(t, srv, "/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// All sources nil: every route still answers 200 with an empty-but-valid
// body — nil-is-no-op extends to the HTTP surface.
func TestMuxNilSources(t *testing.T) {
	srv := httptest.NewServer(NewMux(Options{}))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/metrics.json", "/metrics.prom", "/trace", "/fleet", "/fleet/history"} {
		code, _, _ := get(t, srv, path)
		if code != 200 {
			t.Fatalf("%s with nil sources: %d", path, code)
		}
	}
	_, _, body := get(t, srv, "/fleet")
	if strings.TrimSpace(body) != "null" {
		t.Fatalf("/fleet with no snapshot = %q, want null", body)
	}
	_, _, body = get(t, srv, "/fleet/history")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("/fleet/history with nil history = %q, want []", body)
	}
}

// The regression that motivated NewMux: two servers in one process. The
// old implementation registered handlers on http.DefaultServeMux, so the
// second Serve call panicked with "pattern already registered"; per-call
// muxes must isolate the two and serve each its own registry.
func TestTwoServersDoNotCollide(t *testing.T) {
	r1, r2 := obs.New(), obs.New()
	r1.Counter("which.server").Add(1)
	r2.Counter("which.server").Add(2)

	s1 := httptest.NewServer(NewMux(Options{Registry: r1}))
	defer s1.Close()
	s2 := httptest.NewServer(NewMux(Options{Registry: r2}))
	defer s2.Close()

	_, _, b1 := get(t, s1, "/metrics")
	_, _, b2 := get(t, s2, "/metrics")
	if !strings.Contains(b1, "which.server 1") {
		t.Fatalf("server 1 body: %s", b1)
	}
	if !strings.Contains(b2, "which.server 2") {
		t.Fatalf("server 2 body: %s", b2)
	}

	// And nothing leaked onto the global mux.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rw, req)
	if rw.Code == 200 {
		t.Fatal("/metrics leaked onto http.DefaultServeMux")
	}
}
