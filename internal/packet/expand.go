package packet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// Expand turns a synthetic session into its on-the-wire packet sequence:
// for TCP a three-way handshake, alternating data segments until the
// session's packet budget is spent, and a FIN/ACK teardown; for UDP a
// request/response exchange. Frame payload sizes follow the session's byte
// budget. Timestamps advance from start with small deterministic jitter.
func Expand(s traffic.Session, start time.Time, rng *rand.Rand) ([]Frame, error) {
	switch s.Tuple.Proto {
	case ProtoTCP:
		return expandTCP(s, start, rng)
	case ProtoUDP:
		return expandUDP(s, start, rng)
	default:
		return nil, fmt.Errorf("packet: cannot expand protocol %d", s.Tuple.Proto)
	}
}

// Frame is one serialized packet with its capture timestamp.
type Frame struct {
	TS   time.Time
	Data []byte
}

// macFor derives a stable synthetic MAC from an IPv4 address.
func macFor(ip uint32) [6]byte {
	return [6]byte{0x02, 0x00, byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// payloadSizes splits total payload bytes across n data packets.
func payloadSizes(total, n int, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	sizes := make([]int, n)
	base := total / n
	rem := total - base*n
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
		if sizes[i] > 1460 {
			sizes[i] = 1460 // one MSS
		}
	}
	_ = rng
	return sizes
}

func expandTCP(s traffic.Session, start time.Time, rng *rand.Rand) ([]Frame, error) {
	fwd := s.Tuple
	rev := fwd.Reverse()
	ethFwd := Ethernet{SrcMAC: macFor(fwd.SrcIP), DstMAC: macFor(fwd.DstIP)}
	ethRev := Ethernet{SrcMAC: macFor(rev.SrcIP), DstMAC: macFor(rev.DstIP)}

	seqC := uint32(1000 + rng.Intn(1<<20)) // client ISN
	seqS := uint32(2000 + rng.Intn(1<<20)) // server ISN

	dataPkts := s.Packets - 7 // handshake (3) + fin/ack/fin/ack (4)
	if dataPkts < 1 {
		dataPkts = 1
	}
	payload := s.Bytes - s.Packets*40 // rough header share
	if payload < dataPkts {
		payload = dataPkts
	}
	sizes := payloadSizes(payload, dataPkts, rng)

	ts := start
	step := func() time.Time {
		ts = ts.Add(time.Duration(200+rng.Intn(800)) * time.Microsecond)
		return ts
	}
	var frames []Frame
	emit := func(dir bool, t *TCP, pl []byte) error {
		var frame []byte
		var err error
		if dir {
			frame, err = Build(ethFwd, fwd.SrcIP, fwd.DstIP, ProtoTCP, t, nil, pl)
		} else {
			frame, err = Build(ethRev, rev.SrcIP, rev.DstIP, ProtoTCP, t, nil, pl)
		}
		if err != nil {
			return err
		}
		frames = append(frames, Frame{TS: step(), Data: frame})
		return nil
	}

	// Handshake.
	if err := emit(true, &TCP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort, Seq: seqC, Flags: FlagSYN, Window: 65535}, nil); err != nil {
		return nil, err
	}
	seqC++
	if err := emit(false, &TCP{SrcPort: rev.SrcPort, DstPort: rev.DstPort, Seq: seqS, Ack: seqC, Flags: FlagSYN | FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}
	seqS++
	if err := emit(true, &TCP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort, Seq: seqC, Ack: seqS, Flags: FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}

	// Data: client and server alternate, client first.
	buf := make([]byte, 1460)
	for i, sz := range sizes {
		for b := range buf[:sz] {
			buf[b] = byte(i + b)
		}
		fromClient := i%2 == 0
		if fromClient {
			if err := emit(true, &TCP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort, Seq: seqC, Ack: seqS, Flags: FlagACK | FlagPSH, Window: 65535}, buf[:sz]); err != nil {
				return nil, err
			}
			seqC += uint32(sz)
		} else {
			if err := emit(false, &TCP{SrcPort: rev.SrcPort, DstPort: rev.DstPort, Seq: seqS, Ack: seqC, Flags: FlagACK | FlagPSH, Window: 65535}, buf[:sz]); err != nil {
				return nil, err
			}
			seqS += uint32(sz)
		}
	}

	// Teardown: FIN from client, ACK, FIN from server, ACK.
	if err := emit(true, &TCP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort, Seq: seqC, Ack: seqS, Flags: FlagFIN | FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}
	seqC++
	if err := emit(false, &TCP{SrcPort: rev.SrcPort, DstPort: rev.DstPort, Seq: seqS, Ack: seqC, Flags: FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}
	if err := emit(false, &TCP{SrcPort: rev.SrcPort, DstPort: rev.DstPort, Seq: seqS, Ack: seqC, Flags: FlagFIN | FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}
	seqS++
	if err := emit(true, &TCP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort, Seq: seqC, Ack: seqS, Flags: FlagACK, Window: 65535}, nil); err != nil {
		return nil, err
	}
	return frames, nil
}

func expandUDP(s traffic.Session, start time.Time, rng *rand.Rand) ([]Frame, error) {
	fwd := s.Tuple
	rev := fwd.Reverse()
	ethFwd := Ethernet{SrcMAC: macFor(fwd.SrcIP), DstMAC: macFor(fwd.DstIP)}
	ethRev := Ethernet{SrcMAC: macFor(rev.SrcIP), DstMAC: macFor(rev.DstIP)}

	n := s.Packets
	if n < 2 {
		n = 2
	}
	payload := s.Bytes - n*28
	if payload < n {
		payload = n
	}
	sizes := payloadSizes(payload, n, rng)

	ts := start
	var frames []Frame
	buf := make([]byte, 1460)
	for i, sz := range sizes {
		for b := range buf[:sz] {
			buf[b] = byte(i ^ b)
		}
		ts = ts.Add(time.Duration(300+rng.Intn(1200)) * time.Microsecond)
		var frame []byte
		var err error
		if i%2 == 0 {
			frame, err = Build(ethFwd, fwd.SrcIP, fwd.DstIP, ProtoUDP,
				nil, &UDP{SrcPort: fwd.SrcPort, DstPort: fwd.DstPort}, buf[:sz])
		} else {
			frame, err = Build(ethRev, rev.SrcIP, rev.DstIP, ProtoUDP,
				nil, &UDP{SrcPort: rev.SrcPort, DstPort: rev.DstPort}, buf[:sz])
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, Frame{TS: ts, Data: frame})
	}
	return frames, nil
}

// WriteSessionsPcap expands every session and writes the interleaved
// packet stream (ordered by timestamp across sessions, with session starts
// spread over the given duration) as a pcap capture. It returns the number
// of packets written.
func WriteSessionsPcap(w *Writer, sessions []traffic.Session, start time.Time, spread time.Duration, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	var all []Frame
	for _, s := range sessions {
		off := time.Duration(0)
		if spread > 0 {
			off = time.Duration(rng.Int63n(int64(spread)))
		}
		frames, err := Expand(s, start.Add(off), rng)
		if err != nil {
			return 0, fmt.Errorf("packet: session %d: %w", s.ID, err)
		}
		all = append(all, frames...)
	}
	sortFrames(all)
	for _, f := range all {
		if err := w.WritePacket(f.TS, f.Data); err != nil {
			return 0, err
		}
	}
	return len(all), nil
}

// sortFrames orders frames by timestamp; the capture must be
// chronological for readers that assume monotonic time.
func sortFrames(fs []Frame) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].TS.Before(fs[j].TS) })
}

// FiveTupleOf is a convenience re-export for assembling code that wants
// the flow key without keeping a Decoder.
func FiveTupleOf(frame []byte) (hashing.FiveTuple, error) {
	var d Decoder
	if err := d.Decode(frame); err != nil {
		return hashing.FiveTuple{}, err
	}
	return d.FiveTuple(), nil
}
