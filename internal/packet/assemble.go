package packet

import (
	"io"
	"time"

	"nwdeploy/internal/conntrack"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// Assembler rebuilds session-level records from a packet stream — the
// inverse of Expand, and the front half of what a real NIDS node does
// before the engine sees connection events. It rides on the conntrack
// table for canonicalization, idle expiry, and peak accounting.
type Assembler struct {
	table   *conntrack.Table
	dec     Decoder
	nextID  int
	byTuple map[hashing.FiveTuple]*pending

	// Decoded counts successfully parsed frames; Malformed counts frames
	// the decoder rejected.
	Decoded, Malformed int
}

type pending struct {
	id        int
	tuple     hashing.FiveTuple // orientation of the first packet seen
	packets   int
	bytes     int
	lastSeen  time.Time
	sawFINACK int // FIN flags observed (2 = both directions closed)
	isTCP     bool
}

// NewAssembler builds an assembler with the given idle timeout.
func NewAssembler(idle time.Duration, hashKey uint32) *Assembler {
	return &Assembler{
		table: conntrack.New(conntrack.Config{
			IdleTimeout: idle,
			HashKey:     hashKey,
		}),
		byTuple: make(map[hashing.FiveTuple]*pending),
	}
}

// canonicalKey mirrors the conntrack canonical ordering.
func canonicalKey(ft hashing.FiveTuple) hashing.FiveTuple {
	if ft.SrcIP > ft.DstIP || (ft.SrcIP == ft.DstIP && ft.SrcPort > ft.DstPort) {
		return ft.Reverse()
	}
	return ft
}

// Feed consumes one frame. It returns a completed session when this frame
// finished one (TCP close observed in both directions), else ok=false.
func (a *Assembler) Feed(ts time.Time, frame []byte) (traffic.Session, bool) {
	if err := a.dec.Decode(frame); err != nil {
		a.Malformed++
		return traffic.Session{}, false
	}
	a.Decoded++
	ft := a.dec.FiveTuple()
	key := canonicalKey(ft)
	a.table.Update(ft, ts, 1, len(frame))

	p, seen := a.byTuple[key]
	if !seen {
		p = &pending{
			id:    a.nextID,
			tuple: ft,
			isTCP: ft.Proto == ProtoTCP,
		}
		a.nextID++
		a.byTuple[key] = p
	}
	p.packets++
	p.bytes += len(frame)
	p.lastSeen = ts
	if p.isTCP && a.dec.TCP.Flags&FlagFIN != 0 {
		p.sawFINACK++
	}
	if p.isTCP && p.sawFINACK >= 2 && a.dec.TCP.Flags&FlagACK != 0 && a.dec.TCP.Flags&FlagFIN == 0 {
		// Final ACK after both FINs: the session is complete.
		s := a.finalize(key, p)
		return s, true
	}
	return traffic.Session{}, false
}

// finalize converts a pending record into a Session and forgets it.
func (a *Assembler) finalize(key hashing.FiveTuple, p *pending) traffic.Session {
	delete(a.byTuple, key)
	return traffic.Session{
		ID:      p.id,
		Src:     traffic.NodeOfIP(p.tuple.SrcIP),
		Dst:     traffic.NodeOfIP(p.tuple.DstIP),
		Tuple:   p.tuple,
		Packets: p.packets,
		Bytes:   p.bytes,
	}
}

// Flush returns every still-pending session (UDP exchanges and TCP flows
// without observed teardown), as a trace-end or idle-timeout pass would.
func (a *Assembler) Flush() []traffic.Session {
	out := make([]traffic.Session, 0, len(a.byTuple))
	for key, p := range a.byTuple {
		out = append(out, a.finalize(key, p))
	}
	return out
}

// Pending reports sessions still being assembled.
func (a *Assembler) Pending() int { return len(a.byTuple) }

// TableStats exposes the underlying connection table's accounting (peak
// concurrent connections = the max-resident-memory analogue).
func (a *Assembler) TableStats() conntrack.Stats { return a.table.Stats() }

// ReadSessions drains a pcap stream into sessions: completed ones in
// stream order followed by the flushed remainder.
func ReadSessions(r *Reader, idle time.Duration, hashKey uint32) ([]traffic.Session, *Assembler, error) {
	a := NewAssembler(idle, hashKey)
	var out []traffic.Session
	for {
		ts, frame, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if s, done := a.Feed(ts, frame); done {
			out = append(out, s)
		}
	}
	out = append(out, a.Flush()...)
	return out, a, nil
}
