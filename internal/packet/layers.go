// Package packet provides the byte-level substrate under the traffic
// generator: Ethernet/IPv4/TCP/UDP encoding and decoding with real
// checksums, a libpcap-compatible trace writer/reader (traces open in
// tcpdump/wireshark), expansion of synthetic sessions into packet
// sequences (TCP handshake, data exchange, teardown), and a session
// assembler that rebuilds sessions from a packet stream. The decoder
// follows the preallocated DecodingLayerParser style: one Decoder value is
// reused across packets and no per-packet allocation occurs on the fast
// path.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nwdeploy/internal/hashing"
)

// EtherType values this package understands.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Header sizes on the wire.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // no options
	TCPHeaderLen      = 20 // no options
	UDPHeaderLen      = 8
)

// Ethernet is the link layer.
type Ethernet struct {
	DstMAC, SrcMAC [6]byte
	EtherType      uint16
}

func (e *Ethernet) encode(b []byte) {
	copy(b[0:6], e.DstMAC[:])
	copy(b[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

func (e *Ethernet) decode(b []byte) error {
	if len(b) < EthernetHeaderLen {
		return errTruncated("ethernet", EthernetHeaderLen, len(b))
	}
	copy(e.DstMAC[:], b[0:6])
	copy(e.SrcMAC[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return nil
}

// IPv4 is the network layer (no options supported).
type IPv4 struct {
	TOS            uint8
	TotalLength    uint16
	ID             uint16
	TTL            uint8
	Protocol       uint8
	Checksum       uint16
	SrcIP, DstIP   uint32
	checksumValid  bool
	headerLenBytes int
}

func (ip *IPv4) encode(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLength)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], 0x4000) // don't fragment
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0 // checksum placeholder
	binary.BigEndian.PutUint32(b[12:16], ip.SrcIP)
	binary.BigEndian.PutUint32(b[16:20], ip.DstIP)
	ip.Checksum = internetChecksum(b[:IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
}

func (ip *IPv4) decode(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return errTruncated("ipv4", IPv4HeaderLen, len(b))
	}
	if b[0]>>4 != 4 {
		return fmt.Errorf("packet: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("packet: bad IPv4 header length %d", ihl)
	}
	ip.headerLenBytes = ihl
	ip.TOS = b[1]
	ip.TotalLength = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.SrcIP = binary.BigEndian.Uint32(b[12:16])
	ip.DstIP = binary.BigEndian.Uint32(b[16:20])
	ip.checksumValid = internetChecksum(b[:ihl], 0) == 0
	return nil
}

// ChecksumValid reports whether the decoded header checksum verified.
func (ip *IPv4) ChecksumValid() bool { return ip.checksumValid }

// TCP is the TCP transport layer (no options supported).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	dataOffsetBytes  int
}

func (t *TCP) encode(b []byte, srcIP, dstIP uint32, payload []byte) {
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset 5 words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	b[16], b[17] = 0, 0 // checksum placeholder
	b[18], b[19] = 0, 0 // urgent pointer
	sum := pseudoHeaderSum(srcIP, dstIP, ProtoTCP, TCPHeaderLen+len(payload))
	sum = addToSum(sum, b[:TCPHeaderLen])
	sum = addToSum(sum, payload)
	t.Checksum = finishSum(sum)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
}

func (t *TCP) decode(b []byte) error {
	if len(b) < TCPHeaderLen {
		return errTruncated("tcp", TCPHeaderLen, len(b))
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.dataOffsetBytes = int(b[12]>>4) * 4
	if t.dataOffsetBytes < TCPHeaderLen || t.dataOffsetBytes > len(b) {
		return fmt.Errorf("packet: bad TCP data offset %d", t.dataOffsetBytes)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	return nil
}

// UDP is the UDP transport layer.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

func (u *UDP) encode(b []byte, srcIP, dstIP uint32, payload []byte) {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	u.Length = uint16(UDPHeaderLen + len(payload))
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	b[6], b[7] = 0, 0
	sum := pseudoHeaderSum(srcIP, dstIP, ProtoUDP, int(u.Length))
	sum = addToSum(sum, b[:UDPHeaderLen])
	sum = addToSum(sum, payload)
	u.Checksum = finishSum(sum)
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
}

func (u *UDP) decode(b []byte) error {
	if len(b) < UDPHeaderLen {
		return errTruncated("udp", UDPHeaderLen, len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return nil
}

// LayerType identifies a decoded layer.
type LayerType int

// Decoded layer kinds.
const (
	LayerEthernet LayerType = iota
	LayerIPv4
	LayerTCP
	LayerUDP
	LayerPayload
)

// Decoder decodes Ethernet/IPv4/TCP|UDP frames into preallocated layer
// values, gopacket DecodingLayerParser style: reuse one Decoder across
// packets; Decoded lists which layers the last call populated; Payload
// aliases the input buffer (no copies).
type Decoder struct {
	Eth     Ethernet
	IP      IPv4
	TCP     TCP
	UDP     UDP
	Payload []byte
	Decoded []LayerType
}

// Errors the decoder can return.
var (
	ErrNotIPv4      = errors.New("packet: frame is not IPv4")
	ErrUnknownProto = errors.New("packet: unsupported transport protocol")
)

func errTruncated(layer string, want, got int) error {
	return fmt.Errorf("packet: truncated %s header: need %d bytes, have %d", layer, want, got)
}

// Decode parses one frame. On success Decoded holds the layer sequence and
// Payload the transport payload (possibly empty).
func (d *Decoder) Decode(frame []byte) error {
	d.Decoded = d.Decoded[:0]
	d.Payload = nil
	if err := d.Eth.decode(frame); err != nil {
		return err
	}
	d.Decoded = append(d.Decoded, LayerEthernet)
	if d.Eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}
	rest := frame[EthernetHeaderLen:]
	if err := d.IP.decode(rest); err != nil {
		return err
	}
	d.Decoded = append(d.Decoded, LayerIPv4)
	// Trust TotalLength when plausible (frames may carry link padding).
	ipPayload := rest[d.IP.headerLenBytes:]
	if tl := int(d.IP.TotalLength); tl >= d.IP.headerLenBytes && tl <= len(rest) {
		ipPayload = rest[d.IP.headerLenBytes:tl]
	}
	switch d.IP.Protocol {
	case ProtoTCP:
		if err := d.TCP.decode(ipPayload); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerTCP)
		d.Payload = ipPayload[d.TCP.dataOffsetBytes:]
	case ProtoUDP:
		if err := d.UDP.decode(ipPayload); err != nil {
			return err
		}
		d.Decoded = append(d.Decoded, LayerUDP)
		d.Payload = ipPayload[UDPHeaderLen:]
	default:
		return ErrUnknownProto
	}
	if len(d.Payload) > 0 {
		d.Decoded = append(d.Decoded, LayerPayload)
	}
	return nil
}

// FiveTuple extracts the flow key of the last decoded packet.
func (d *Decoder) FiveTuple() hashing.FiveTuple {
	ft := hashing.FiveTuple{SrcIP: d.IP.SrcIP, DstIP: d.IP.DstIP, Proto: d.IP.Protocol}
	switch d.IP.Protocol {
	case ProtoTCP:
		ft.SrcPort, ft.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	case ProtoUDP:
		ft.SrcPort, ft.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	}
	return ft
}

// Build serializes a full frame: Ethernet + IPv4 + (TCP|UDP per proto) +
// payload. TCP fields seq/ack/flags come from tcp; for UDP pass nil tcp.
func Build(eth Ethernet, srcIP, dstIP uint32, proto uint8, tcp *TCP, udp *UDP, payload []byte) ([]byte, error) {
	var l4Len int
	switch proto {
	case ProtoTCP:
		if tcp == nil {
			return nil, errors.New("packet: TCP frame needs a TCP header")
		}
		l4Len = TCPHeaderLen
	case ProtoUDP:
		if udp == nil {
			return nil, errors.New("packet: UDP frame needs a UDP header")
		}
		l4Len = UDPHeaderLen
	default:
		return nil, ErrUnknownProto
	}
	total := EthernetHeaderLen + IPv4HeaderLen + l4Len + len(payload)
	frame := make([]byte, total)
	eth.EtherType = EtherTypeIPv4
	eth.encode(frame)

	ip := IPv4{
		TotalLength: uint16(IPv4HeaderLen + l4Len + len(payload)),
		TTL:         64,
		Protocol:    proto,
		SrcIP:       srcIP,
		DstIP:       dstIP,
	}
	ip.encode(frame[EthernetHeaderLen:])

	l4 := frame[EthernetHeaderLen+IPv4HeaderLen:]
	switch proto {
	case ProtoTCP:
		tcp.encode(l4, srcIP, dstIP, payload)
	case ProtoUDP:
		udp.encode(l4, srcIP, dstIP, payload)
	}
	copy(l4[l4Len:], payload)
	return frame, nil
}
