package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

var baseTS = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)

func buildTCPFrame(t *testing.T, payload []byte) []byte {
	t.Helper()
	frame, err := Build(
		Ethernet{SrcMAC: macFor(0x0a000001), DstMAC: macFor(0x0a000002)},
		0x0a000001, 0x0a000002, ProtoTCP,
		&TCP{SrcPort: 1234, DstPort: 80, Seq: 42, Ack: 7, Flags: FlagACK | FlagPSH, Window: 65535},
		nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n")
	frame := buildTCPFrame(t, payload)

	var d Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if len(d.Decoded) != 4 || d.Decoded[2] != LayerTCP || d.Decoded[3] != LayerPayload {
		t.Fatalf("decoded layers = %v", d.Decoded)
	}
	if d.IP.SrcIP != 0x0a000001 || d.IP.DstIP != 0x0a000002 || d.IP.Protocol != ProtoTCP {
		t.Fatalf("IP header wrong: %+v", d.IP)
	}
	if !d.IP.ChecksumValid() {
		t.Fatal("IPv4 checksum did not verify")
	}
	if d.TCP.SrcPort != 1234 || d.TCP.DstPort != 80 || d.TCP.Seq != 42 || d.TCP.Ack != 7 {
		t.Fatalf("TCP header wrong: %+v", d.TCP)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Fatalf("payload mismatch: %q", d.Payload)
	}
	// Transport checksum verifies over header+payload.
	l4 := frame[EthernetHeaderLen+IPv4HeaderLen:]
	if !VerifyTransportChecksum(d.IP.SrcIP, d.IP.DstIP, ProtoTCP, l4) {
		t.Fatal("TCP checksum did not verify")
	}
	// Corrupting a payload byte must break the transport checksum.
	l4[len(l4)-1] ^= 0xff
	if VerifyTransportChecksum(d.IP.SrcIP, d.IP.DstIP, ProtoTCP, l4) {
		t.Fatal("corrupted payload passed checksum")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	frame, err := Build(
		Ethernet{SrcMAC: macFor(1), DstMAC: macFor(2)},
		0xc0a80101, 0xc0a80102, ProtoUDP,
		nil, &UDP{SrcPort: 5353, DstPort: 53}, payload)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if d.UDP.SrcPort != 5353 || d.UDP.DstPort != 53 {
		t.Fatalf("UDP ports wrong: %+v", d.UDP)
	}
	if int(d.UDP.Length) != UDPHeaderLen+len(payload) {
		t.Fatalf("UDP length = %d", d.UDP.Length)
	}
	l4 := frame[EthernetHeaderLen+IPv4HeaderLen:]
	if !VerifyTransportChecksum(0xc0a80101, 0xc0a80102, ProtoUDP, l4) {
		t.Fatal("UDP checksum did not verify")
	}
	ft := d.FiveTuple()
	want := hashing.FiveTuple{SrcIP: 0xc0a80101, DstIP: 0xc0a80102, SrcPort: 5353, DstPort: 53, Proto: 17}
	if ft != want {
		t.Fatalf("five-tuple = %+v", ft)
	}
}

func TestDecodeErrors(t *testing.T) {
	var d Decoder
	if err := d.Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Non-IPv4 ethertype.
	frame := buildTCPFrame(t, nil)
	frame[12], frame[13] = 0x86, 0xdd // IPv6
	if err := d.Decode(frame); err != ErrNotIPv4 {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
	// Unknown transport.
	frame = buildTCPFrame(t, nil)
	frame[EthernetHeaderLen+9] = 47 // GRE
	if err := d.Decode(frame); err != ErrUnknownProto {
		t.Fatalf("err = %v, want ErrUnknownProto", err)
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: the checksum of {0x0001, 0xf203, 0xf4f5, 0xf6f7}
	// is the complement of 0xddf2 (with carry folding).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestExpandTCPSessionShape(t *testing.T) {
	s := traffic.Session{
		ID: 1, Src: 0, Dst: 3,
		Tuple:   hashing.FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a030001, SrcPort: 40000, DstPort: 80, Proto: 6},
		Packets: 15, Bytes: 9000,
	}
	frames, err := Expand(s, baseTS, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 15 {
		t.Fatalf("expanded to %d frames, want 15", len(frames))
	}
	var d Decoder
	// First three frames form the handshake.
	wantFlags := []uint8{FlagSYN, FlagSYN | FlagACK, FlagACK}
	for i, wf := range wantFlags {
		if err := d.Decode(frames[i].Data); err != nil {
			t.Fatal(err)
		}
		if d.TCP.Flags != wf {
			t.Fatalf("frame %d flags = %#x, want %#x", i, d.TCP.Flags, wf)
		}
	}
	// Last frame is the final ACK; both FINs occur before it.
	fins := 0
	for _, f := range frames {
		if err := d.Decode(f.Data); err != nil {
			t.Fatal(err)
		}
		if d.TCP.Flags&FlagFIN != 0 {
			fins++
		}
	}
	if fins != 2 {
		t.Fatalf("saw %d FINs, want 2", fins)
	}
	// Timestamps are strictly increasing.
	for i := 1; i < len(frames); i++ {
		if !frames[i].TS.After(frames[i-1].TS) {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

func TestPcapRoundTrip(t *testing.T) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 60, Seed: 3})
	var buf bytes.Buffer
	n, err := WriteSessionsPcap(NewWriter(&buf), sessions, baseTS, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("wrote no packets")
	}
	// File starts with the classic magic.
	if buf.Len() < pcapGlobalBytes || buf.Bytes()[0] != 0xd4 || buf.Bytes()[1] != 0xc3 {
		t.Fatalf("pcap header bytes wrong: % x", buf.Bytes()[:4])
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	count := 0
	var last time.Time
	var d Decoder
	for {
		ts, frame, err := r.ReadPacket()
		if err != nil {
			break
		}
		count++
		if ts.Before(last) {
			t.Fatal("pcap stream not chronological")
		}
		last = ts
		if err := d.Decode(frame); err != nil {
			t.Fatalf("packet %d undecodable: %v", count, err)
		}
	}
	if count != n {
		t.Fatalf("read %d packets, wrote %d", count, n)
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("this is not a pcap file at all....")))
	if _, _, err := r.ReadPacket(); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// TestAssemblerRecoversSessions: expand -> pcap -> assemble must recover
// every session with matching endpoints, packet and byte counts.
func TestAssemblerRecoversSessions(t *testing.T) {
	topo := topology.Internet2()
	sessions := traffic.Generate(topo, traffic.Gravity(topo), traffic.GenConfig{Sessions: 120, Seed: 11})
	var buf bytes.Buffer
	if _, err := WriteSessionsPcap(NewWriter(&buf), sessions, baseTS, 0, 5); err != nil {
		t.Fatal(err)
	}
	got, asm, err := ReadSessions(NewReader(bytes.NewReader(buf.Bytes())), time.Minute, 9)
	if err != nil {
		t.Fatal(err)
	}
	if asm.Malformed != 0 {
		t.Fatalf("%d malformed frames", asm.Malformed)
	}
	if len(got) != len(sessions) {
		t.Fatalf("assembled %d sessions, want %d", len(got), len(sessions))
	}
	// Index originals by canonical tuple.
	wantBy := map[hashing.FiveTuple]traffic.Session{}
	for _, s := range sessions {
		wantBy[canonicalKey(s.Tuple)] = s
	}
	for _, g := range got {
		w, ok := wantBy[canonicalKey(g.Tuple)]
		if !ok {
			t.Fatalf("assembled unknown session %v", g.Tuple)
		}
		if g.Src != w.Src || g.Dst != w.Dst {
			// Orientation: assembler sees the client's SYN (or first UDP
			// request) first, so endpoints must match exactly.
			t.Fatalf("session endpoints %d->%d, want %d->%d", g.Src, g.Dst, w.Src, w.Dst)
		}
		// The expansion may clamp the packet count upward for tiny
		// sessions (minimum handshake+teardown), never downward for TCP.
		if w.Tuple.Proto == 6 && g.Packets < 7 {
			t.Fatalf("TCP session with %d packets", g.Packets)
		}
	}
	if asm.TableStats().PeakEntries == 0 {
		t.Fatal("conn table saw nothing")
	}
}

// TestQuickDecoderNeverPanics: arbitrary bytes must produce errors, not
// panics.
func TestQuickDecoderNeverPanics(t *testing.T) {
	var d Decoder
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("decoder panicked on % x", data)
			}
		}()
		_ = d.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBuildDecodeIdentity: arbitrary tuples and payload sizes survive
// a build/decode round trip with verified checksums.
func TestQuickBuildDecodeIdentity(t *testing.T) {
	var d Decoder
	f := func(src, dst uint32, sp, dp uint16, n uint8, udp bool) bool {
		payload := make([]byte, int(n))
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		proto := uint8(ProtoTCP)
		var tcp *TCP
		var u *UDP
		if udp {
			proto = ProtoUDP
			u = &UDP{SrcPort: sp, DstPort: dp}
		} else {
			tcp = &TCP{SrcPort: sp, DstPort: dp, Seq: 1, Flags: FlagACK}
		}
		frame, err := Build(Ethernet{}, src, dst, proto, tcp, u, payload)
		if err != nil {
			return false
		}
		if err := d.Decode(frame); err != nil {
			return false
		}
		ft := d.FiveTuple()
		if ft.SrcIP != src || ft.DstIP != dst || ft.SrcPort != sp || ft.DstPort != dp {
			return false
		}
		l4 := frame[EthernetHeaderLen+IPv4HeaderLen:]
		return d.IP.ChecksumValid() && VerifyTransportChecksum(src, dst, proto, l4) &&
			bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	payload := make([]byte, 512)
	frame, err := Build(Ethernet{}, 1, 2, ProtoTCP, &TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}, nil, payload)
	if err != nil {
		b.Fatal(err)
	}
	var d Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
