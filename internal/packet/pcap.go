package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Libpcap classic file format (the one tcpdump -w writes): a 24-byte
// global header followed by 16-byte per-record headers. Traces written
// here open in tcpdump and wireshark.

const (
	pcapMagicLE     = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkEther   = 1
	pcapSnapLenMax  = 65535
	pcapGlobalBytes = 24
	pcapRecordBytes = 16
)

// Writer emits a libpcap capture file.
type Writer struct {
	w       io.Writer
	started bool
}

// NewWriter wraps w; the global header is written on the first packet.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WritePacket appends one frame with the given capture timestamp.
func (pw *Writer) WritePacket(ts time.Time, frame []byte) error {
	if !pw.started {
		var hdr [pcapGlobalBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicLE)
		binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
		binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
		// thiszone=0, sigfigs=0
		binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLenMax)
		binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkEther)
		if _, err := pw.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("packet: pcap global header: %w", err)
		}
		pw.started = true
	}
	if len(frame) > pcapSnapLenMax {
		return fmt.Errorf("packet: frame of %d bytes exceeds pcap snaplen", len(frame))
	}
	var rec [pcapRecordBytes]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("packet: pcap record header: %w", err)
	}
	if _, err := pw.w.Write(frame); err != nil {
		return fmt.Errorf("packet: pcap record body: %w", err)
	}
	return nil
}

// Reader consumes a libpcap capture file.
type Reader struct {
	r       io.Reader
	started bool
	swapped bool // big-endian file
}

// NewReader wraps r; the global header is validated on the first read.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ErrBadMagic marks a stream that is not a classic pcap file.
var ErrBadMagic = errors.New("packet: not a pcap file (bad magic)")

func (pr *Reader) readGlobal() error {
	var hdr [pcapGlobalBytes]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case pcapMagicLE:
		pr.swapped = false
	case 0xd4c3b2a1:
		pr.swapped = true
	default:
		return ErrBadMagic
	}
	link := pr.u32(hdr[20:24])
	if link != pcapLinkEther {
		return fmt.Errorf("packet: unsupported pcap link type %d", link)
	}
	pr.started = true
	return nil
}

func (pr *Reader) u32(b []byte) uint32 {
	if pr.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// ReadPacket returns the next frame and its timestamp; io.EOF at the end.
func (pr *Reader) ReadPacket() (time.Time, []byte, error) {
	if !pr.started {
		if err := pr.readGlobal(); err != nil {
			return time.Time{}, nil, err
		}
	}
	var rec [pcapRecordBytes]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return time.Time{}, nil, io.ErrUnexpectedEOF
		}
		return time.Time{}, nil, err
	}
	sec := pr.u32(rec[0:4])
	usec := pr.u32(rec[4:8])
	capLen := pr.u32(rec[8:12])
	if capLen > pcapSnapLenMax {
		return time.Time{}, nil, fmt.Errorf("packet: implausible capture length %d", capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return time.Time{}, nil, fmt.Errorf("packet: truncated record body: %w", err)
	}
	return time.Unix(int64(sec), int64(usec)*1000), frame, nil
}
