package packet

import "encoding/binary"

// internetChecksum computes the RFC 1071 one's-complement checksum over
// data, starting from an initial partial sum.
func internetChecksum(data []byte, initial uint32) uint16 {
	return finishSum(addToSum(initial, data))
}

// addToSum folds data into a running 32-bit partial sum.
func addToSum(sum uint32, data []byte) uint32 {
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if i < n {
		sum += uint32(data[i]) << 8 // odd trailing byte, padded with zero
	}
	return sum
}

// finishSum folds the carries and complements.
func finishSum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum starts a TCP/UDP checksum with the IPv4 pseudo header.
func pseudoHeaderSum(srcIP, dstIP uint32, proto uint8, l4Len int) uint32 {
	var sum uint32
	sum += srcIP >> 16
	sum += srcIP & 0xffff
	sum += dstIP >> 16
	sum += dstIP & 0xffff
	sum += uint32(proto)
	sum += uint32(l4Len)
	return sum
}

// VerifyTransportChecksum recomputes a decoded packet's TCP/UDP checksum
// over the given transport header+payload bytes and reports whether it
// verifies (sums to zero including the stored checksum).
func VerifyTransportChecksum(srcIP, dstIP uint32, proto uint8, l4 []byte) bool {
	sum := pseudoHeaderSum(srcIP, dstIP, proto, len(l4))
	sum = addToSum(sum, l4)
	return finishSum(sum) == 0
}
