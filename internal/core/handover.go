package core

import (
	"fmt"
	"sort"

	"nwdeploy/internal/hashing"
)

// The paper's Section 5 "Routing changes" discussion: when routes change
// and the optimization is re-run, a node that holds connection state for
// some hash range may no longer be responsible for — or even observe —
// that traffic. Correctness is preserved by (1) having nodes retain their
// old responsibilities until existing connections drain, while taking on
// new assignments immediately, and (2) transferring live analysis state to
// the newly responsible node for ranges whose old analyst left the path.
// PlanTransition computes exactly those artifacts.

// Retention is an old responsibility a node keeps during the drain window:
// it accepts no *new* connections in these ranges but continues analyzing
// established ones.
type Retention struct {
	Node   int
	Unit   [2]int // coordination-unit key
	Class  int
	Ranges hashing.RangeSet
}

// StateTransfer moves live per-connection analysis state for a hash range
// from a node that left the unit's path to the node now responsible for
// that range (the paper's [34], Sommer & Paxson's independent state).
type StateTransfer struct {
	Class    int
	Unit     [2]int
	From, To int
	Range    hashing.Range
}

// Transition describes the handover from an old plan to a new one.
type Transition struct {
	Old, New *Plan
	// Retentions lists old assignments every node keeps until its existing
	// connections expire.
	Retentions []Retention
	// Transfers lists the state migrations required because the old
	// analyst no longer observes the traffic under the new routing.
	Transfers []StateTransfer
}

// PlanTransition computes the drain-window retentions and the state
// transfers needed to move from oldPlan to newPlan. The two plans must be
// over the same class list (by name and order); units are matched by
// (class, key), so the instances may differ in topology, routing, and
// traffic.
func PlanTransition(oldPlan, newPlan *Plan) (*Transition, error) {
	oldInst, newInst := oldPlan.Inst, newPlan.Inst
	if len(oldInst.Classes) != len(newInst.Classes) {
		return nil, fmt.Errorf("core: class lists differ (%d vs %d)", len(oldInst.Classes), len(newInst.Classes))
	}
	for i := range oldInst.Classes {
		if oldInst.Classes[i].Name != newInst.Classes[i].Name {
			return nil, fmt.Errorf("core: class %d renamed %q -> %q", i, oldInst.Classes[i].Name, newInst.Classes[i].Name)
		}
	}

	tr := &Transition{Old: oldPlan, New: newPlan}

	// Index new units by (class, key).
	newUnit := make(map[unitRef]int, len(newInst.Units))
	for ui, u := range newInst.Units {
		newUnit[unitRef{u.Class, u.Key}] = ui
	}

	for oldUI, oldU := range oldInst.Units {
		// Every node's old assignment is retained during the drain window.
		for _, node := range oldU.Nodes {
			if rs, ok := oldPlan.Manifests[node].Ranges[oldUI]; ok && rs.Width() > 0 {
				tr.Retentions = append(tr.Retentions, Retention{
					Node: node, Unit: oldU.Key, Class: oldU.Class, Ranges: rs,
				})
			}
		}

		newUI, ok := newUnit[unitRef{oldU.Class, oldU.Key}]
		if !ok {
			continue // the traffic component disappeared; state just drains
		}
		newU := newInst.Units[newUI]

		// Nodes that left the path can no longer see packets for their
		// retained connections: their ranges must migrate to the new
		// owners of those hash points.
		onNewPath := make(map[int]bool, len(newU.Nodes))
		for _, n := range newU.Nodes {
			onNewPath[n] = true
		}
		for _, from := range oldU.Nodes {
			if onNewPath[from] {
				continue
			}
			fromRanges, ok := oldPlan.Manifests[from].Ranges[oldUI]
			if !ok {
				continue
			}
			for _, fr := range fromRanges {
				if fr.Width() == 0 {
					continue
				}
				for _, to := range newU.Nodes {
					toRanges, ok := newPlan.Manifests[to].Ranges[newUI]
					if !ok {
						continue
					}
					for _, nr := range toRanges {
						if ov, nonEmpty := intersect(fr, nr); nonEmpty {
							tr.Transfers = append(tr.Transfers, StateTransfer{
								Class: oldU.Class, Unit: oldU.Key,
								From: from, To: to, Range: ov,
							})
						}
					}
				}
			}
		}
	}

	sort.Slice(tr.Transfers, func(i, j int) bool {
		a, b := tr.Transfers[i], tr.Transfers[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Unit != b.Unit {
			return a.Unit[0] < b.Unit[0] || (a.Unit[0] == b.Unit[0] && a.Unit[1] < b.Unit[1])
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Range.Lo < b.Range.Lo
	})
	return tr, nil
}

// intersect returns the overlap of two half-open ranges.
func intersect(a, b hashing.Range) (hashing.Range, bool) {
	lo := a.Lo
	if b.Lo > lo {
		lo = b.Lo
	}
	hi := a.Hi
	if b.Hi < hi {
		hi = b.Hi
	}
	if hi <= lo {
		return hashing.Range{}, false
	}
	return hashing.Range{Lo: lo, Hi: hi}, true
}

// TransferredWidth sums, per (class, unit, from), the hash-space width
// being migrated — useful for estimating handover cost.
func (t *Transition) TransferredWidth() float64 {
	var w float64
	for _, x := range t.Transfers {
		w += x.Range.Width()
	}
	return w
}
