package core

import (
	"errors"
	"math"
	"testing"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// pathInstance builds an instance with only path-scoped classes, whose
// units have multi-node eligible sets — the domain where redundancy r > 1
// is feasible.
func pathInstance(t *testing.T, sessions int) *Instance {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	ss := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: sessions, Seed: 11})
	var classes []Class
	for _, c := range testClasses() {
		if c.Scope == PerPath {
			classes = append(classes, c)
		}
	}
	inst, err := BuildInstance(topo, classes, ss, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// slicesPlan solves a redundancy-2 plan over the path-scoped test instance.
func slicesPlan(t *testing.T, opts SolveOptions) *Plan {
	t.Helper()
	inst := pathInstance(t, 3000)
	if opts.Redundancy == 0 {
		opts.Redundancy = 2
	}
	plan, err := SolveOpts(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSlicesMatchManifestsExactly(t *testing.T) {
	plan := slicesPlan(t, SolveOptions{})
	slices := plan.Slices()
	if len(slices) != plan.Inst.Topo.N() {
		t.Fatalf("slices for %d nodes, want %d", len(slices), plan.Inst.Topo.N())
	}
	for node, ns := range slices {
		// Per (node, unit): slice widths must sum to the manifest width,
		// and containment must agree at probe points.
		perUnit := map[int]float64{}
		for _, s := range ns {
			if s.Node != node {
				t.Fatalf("slice %+v filed under node %d", s, node)
			}
			if s.Range.Lo < 0 || s.Range.Hi > 1 || s.Range.IsEmpty() {
				t.Fatalf("slice range %v escapes [0,1)", s.Range)
			}
			if s.Copy < 0 || s.Copy >= plan.Redundancy {
				t.Fatalf("slice copy %d outside [0,%d)", s.Copy, plan.Redundancy)
			}
			perUnit[s.Unit] += s.Range.Width()
		}
		for ui, rs := range plan.Manifests[node].Ranges {
			if w := rs.Width(); math.Abs(w-perUnit[ui]) > 1e-9 {
				t.Fatalf("node %d unit %d: manifest width %v, slices %v", node, ui, w, perUnit[ui])
			}
		}
		for _, s := range ns {
			mid := (s.Range.Lo + s.Range.Hi) / 2
			if !plan.Manifests[node].Ranges[s.Unit].Contains(mid) {
				t.Fatalf("node %d unit %d: slice midpoint %v not in manifest", node, s.Unit, mid)
			}
		}
	}
}

func TestSlicesCopyZeroTilesEveryUnit(t *testing.T) {
	plan := slicesPlan(t, SolveOptions{})
	// Per unit and copy, widths across all nodes must sum to 1: each copy
	// is a complete tiling of the unit's hash space.
	width := map[[2]int]float64{}
	for _, ns := range plan.Slices() {
		for _, s := range ns {
			width[[2]int{s.Unit, s.Copy}] += s.Range.Width()
		}
	}
	for ui := range plan.Inst.Units {
		for c := 0; c < plan.Redundancy; c++ {
			if w := width[[2]int{ui, c}]; math.Abs(w-1) > 1e-9 {
				t.Fatalf("unit %d copy %d tiles width %v, want 1", ui, c, w)
			}
		}
	}
}

func TestSlicesRedundancyOneHasOnlyCopyZero(t *testing.T) {
	plan := slicesPlan(t, SolveOptions{Redundancy: 1})
	for _, ns := range plan.Slices() {
		for _, s := range ns {
			if s.Copy != 0 {
				t.Fatalf("r=1 plan produced copy-%d slice %+v", s.Copy, s)
			}
		}
	}
}

func TestWithVolumesSharesShape(t *testing.T) {
	inst, _ := testInstance(t, 2000)
	pkts := make([]float64, len(inst.Units))
	items := make([]float64, len(inst.Units))
	for ui, u := range inst.Units {
		pkts[ui] = u.Pkts * 1.5
		items[ui] = u.Items * 1.5
	}
	scaled, err := inst.WithVolumes(pkts, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled.Units) != len(inst.Units) {
		t.Fatalf("unit count changed: %d -> %d", len(inst.Units), len(scaled.Units))
	}
	for ui, u := range scaled.Units {
		if u.Pkts != inst.Units[ui].Pkts*1.5 {
			t.Fatalf("unit %d pkts %v, want %v", ui, u.Pkts, inst.Units[ui].Pkts*1.5)
		}
		if u.Class != inst.Units[ui].Class || u.Key != inst.Units[ui].Key {
			t.Fatalf("unit %d identity changed", ui)
		}
	}
	// Shared unitIdx: lookups must resolve identically.
	if inst.Units[0].Pkts == scaled.Units[0].Pkts {
		t.Fatal("original instance mutated")
	}

	if _, err := inst.WithVolumes(pkts[:1], items); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSolveWarmStartFromPreviousPlan(t *testing.T) {
	inst := pathInstance(t, 3000)
	first, err := SolveOpts(inst, SolveOptions{Redundancy: 2, CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Basis == nil {
		t.Fatal("CaptureBasis produced no basis")
	}

	pkts := make([]float64, len(inst.Units))
	items := make([]float64, len(inst.Units))
	for ui, u := range inst.Units {
		f := 1 + 0.1*math.Sin(float64(ui))
		pkts[ui] = u.Pkts * f
		items[ui] = u.Items * f
	}
	drifted, err := inst.WithVolumes(pkts, items)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveOpts(drifted, SolveOptions{Redundancy: 2, CaptureBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveOpts(drifted, SolveOptions{Redundancy: 2, WarmBasis: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+cold.Objective) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.SolverIters >= cold.SolverIters {
		t.Fatalf("warm replan took %d iters, cold %d — no speedup", warm.SolverIters, cold.SolverIters)
	}
	if warm.Basis == nil {
		t.Fatal("warm solve did not re-export a basis for the next replan")
	}
}

func TestSolveMaxItersReturnsIterLimit(t *testing.T) {
	inst := pathInstance(t, 3000)
	_, err := SolveOpts(inst, SolveOptions{Redundancy: 2, CaptureBasis: true, MaxIters: 1})
	if !errors.Is(err, lp.ErrIterLimit) {
		t.Fatalf("MaxIters=1 returned %v, want ErrIterLimit", err)
	}
}

func TestInfeasibleRedundancyWrapsSentinel(t *testing.T) {
	inst, _ := testInstance(t, 1000)
	// Ingress units have exactly one eligible node, so r=2 trips the
	// eligibility precheck; strip to path classes and blow past path
	// lengths instead to reach the LP itself... simplest: tiny caps make
	// the cover rows unsatisfiable only if caps bound d, which they do not
	// (capacity rows bound lambda, not feasibility). The LP is always
	// feasible for valid r, so exercise the precheck error path here and
	// leave LP-level infeasibility to the aggregation budget test.
	_, err := SolveOpts(inst, SolveOptions{Redundancy: 2})
	if err == nil {
		t.Fatal("redundancy 2 with ingress-pinned units must fail")
	}
	// Aggregation with an impossible budget wraps ErrInfeasible.
	_, err = SolveOpts(inst, SolveOptions{
		Aggregation: &AggregationConfig{Collector: 0, BytesPerItem: 1, Budget: 1e-12},
	})
	if err != nil && !errors.Is(err, lp.ErrInfeasible) {
		t.Fatalf("tiny aggregation budget returned %v, want ErrInfeasible in the chain", err)
	}
}
