package core

import (
	"fmt"
	"math"
	"sort"
)

// Resource names a provisionable node resource.
type Resource int

const (
	// ResourceCPU is processing capacity.
	ResourceCPU Resource = iota
	// ResourceMem is memory capacity.
	ResourceMem
)

// String names the resource.
func (r Resource) String() string {
	if r == ResourceCPU {
		return "cpu"
	}
	return "mem"
}

// Upgrade is one what-if provisioning result: the effect of multiplying a
// single node's capacity for one resource by the given factor. This
// implements the paper's Section 5 "Provisioning and Upgrades" extension:
// "where should an administrator add more resources or augment existing
// deployments with more powerful hardware".
type Upgrade struct {
	Node     int
	Resource Resource
	Factor   float64
	// Objective is the re-optimized min-max load after the upgrade.
	Objective float64
	// Gain is the reduction relative to the baseline objective (>= 0).
	Gain float64
}

// WhatIfUpgrades evaluates upgrading each node's CPU and memory capacity
// by the given factor (> 1), re-solving the placement LP for every
// candidate, and returns the options sorted by decreasing gain.
//
// Candidates are screened first: upgrading a node whose load sits strictly
// below the bottleneck cannot reduce the max load, so only nodes within
// tolerance of the baseline objective are re-solved; the rest are reported
// with zero gain. The screening is exact because enlarging a non-binding
// capacity leaves the optimal basis feasible and the objective unchanged.
func WhatIfUpgrades(inst *Instance, r int, factor float64) ([]Upgrade, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("core: upgrade factor %v must exceed 1", factor)
	}
	base, err := Solve(inst, r)
	if err != nil {
		return nil, fmt.Errorf("core: baseline solve: %w", err)
	}
	cpu, mem := PerNodeLoads(inst, base)

	const tol = 1e-6
	var out []Upgrade
	for node := 0; node < inst.Topo.N(); node++ {
		for _, res := range []Resource{ResourceCPU, ResourceMem} {
			up := Upgrade{Node: node, Resource: res, Factor: factor, Objective: base.Objective}
			binding := false
			switch res {
			case ResourceCPU:
				binding = cpu[node] >= base.Objective-tol
			case ResourceMem:
				binding = mem[node] >= base.Objective-tol
			}
			if binding {
				caps := make([]NodeResources, len(inst.Caps))
				copy(caps, inst.Caps)
				switch res {
				case ResourceCPU:
					caps[node].CPU *= factor
				case ResourceMem:
					caps[node].Mem *= factor
				}
				upgraded := &Instance{
					Topo:    inst.Topo,
					Classes: inst.Classes,
					Units:   inst.Units,
					Caps:    caps,
					unitIdx: inst.unitIdx,
				}
				plan, err := Solve(upgraded, r)
				if err != nil {
					return nil, fmt.Errorf("core: what-if node %d %v: %w", node, res, err)
				}
				up.Objective = plan.Objective
				up.Gain = math.Max(0, base.Objective-plan.Objective)
			}
			out = append(out, up)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Resource < out[j].Resource
	})
	return out, nil
}

// BestUpgrade returns the single most valuable upgrade option, or ok=false
// when no single-node upgrade reduces the bottleneck (the max load is set
// by structure, e.g. an ingress-pinned class at its only eligible node
// whose capacity already dwarfs demand).
func BestUpgrade(inst *Instance, r int, factor float64) (Upgrade, bool, error) {
	ups, err := WhatIfUpgrades(inst, r, factor)
	if err != nil {
		return Upgrade{}, false, err
	}
	if len(ups) == 0 || ups[0].Gain <= 0 {
		return Upgrade{}, false, nil
	}
	return ups[0], true, nil
}
