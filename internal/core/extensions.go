package core

import (
	"fmt"
	"math"

	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
)

// GreedyPlan is the ablation baseline for the LP: it assigns each
// coordination unit wholly to whichever eligible node currently carries
// the least load (normalized max of CPU and memory), with no fractional
// splitting. It shows how much of the coordinated deployment's benefit
// comes from the optimization itself rather than from merely spreading
// work off the edge.
func GreedyPlan(inst *Instance) *Plan {
	n := inst.Topo.N()
	cpu := make([]float64, n)
	mem := make([]float64, n)

	p := &Plan{Inst: inst, Redundancy: 1}
	p.Assignments = make([]Assignment, len(inst.Units))
	for ui, u := range inst.Units {
		c := inst.Classes[u.Class]
		best, bestLoad := -1, math.Inf(1)
		for _, node := range u.Nodes {
			load := math.Max(
				cpu[node]+c.CPUPerPkt*u.Pkts/inst.Caps[node].CPU,
				mem[node]+c.MemPerItem*u.Items/inst.Caps[node].Mem,
			)
			if load < bestLoad {
				best, bestLoad = node, load
			}
		}
		frac := make([]float64, len(u.Nodes))
		for vi, node := range u.Nodes {
			if node == best {
				frac[vi] = 1
			}
		}
		cpu[best] += c.CPUPerPkt * u.Pkts / inst.Caps[best].CPU
		mem[best] += c.MemPerItem * u.Items / inst.Caps[best].Mem
		p.Assignments[ui] = Assignment{Unit: ui, Frac: frac}
	}
	p.buildManifests()
	p.MaxCPULoad, p.MaxMemLoad = Loads(inst, p)
	p.Objective = math.Max(p.MaxCPULoad, p.MaxMemLoad)
	return p
}

// Scaled returns a copy of the instance with every coordination unit's
// volumes multiplied by scale(unit) — the hook the Section 5 conservative
// provisioning uses to plan on 95th-percentile rather than mean volumes.
// Topology, classes, capacities, and unit identity are shared; plans
// solved on the scaled instance can therefore be evaluated against the
// original (or any other scaling) with PerNodeLoads.
func (inst *Instance) Scaled(scale func(CoordUnit) float64) *Instance {
	out := &Instance{
		Topo:    inst.Topo,
		Classes: inst.Classes,
		Caps:    inst.Caps,
		Units:   make([]CoordUnit, len(inst.Units)),
		unitIdx: inst.unitIdx,
	}
	for ui, u := range inst.Units {
		f := scale(u)
		scaled := u
		scaled.Pkts *= f
		scaled.Items *= f
		out.Units[ui] = scaled
	}
	return out
}

// AggregationConfig models the paper's Section 5 "Aggregated analysis"
// extension: classes whose results must be correlated network-wide (alert
// correlation, anomaly detection on traffic feature distributions) ship
// per-item digests from the analyzing node to a collector. The shipping
// consumes a communication budget proportional to hop distance, coupling
// the placement problem to the network cost of aggregation.
type AggregationConfig struct {
	// Collector is the node where aggregated views are assembled.
	Collector int
	// BytesPerItem is the digest size shipped per analyzed item.
	BytesPerItem float64
	// Budget caps the total digest byte-hops per optimization interval.
	Budget float64
}

// SolveWithAggregation solves the placement LP with an added network-wide
// communication constraint: the total (digest bytes x hop distance to the
// collector) across all assignments must fit the budget. A loose budget
// reproduces Solve exactly; tightening it pulls analysis toward the
// collector at the price of a higher max load.
func SolveWithAggregation(inst *Instance, r int, agg AggregationConfig) (*Plan, error) {
	return solveWithAggregation(inst, r, agg, nil)
}

// solveWithAggregation is SolveWithAggregation with an optional metrics
// registry threaded into the LP solve (nil is the no-op registry).
func solveWithAggregation(inst *Instance, r int, agg AggregationConfig, metrics *obs.Registry) (*Plan, error) {
	if agg.Collector < 0 || agg.Collector >= inst.Topo.N() {
		return nil, fmt.Errorf("core: collector node %d out of range", agg.Collector)
	}
	if agg.Budget <= 0 || agg.BytesPerItem <= 0 {
		return nil, fmt.Errorf("core: aggregation budget and digest size must be positive")
	}
	if r < 1 {
		return nil, fmt.Errorf("core: redundancy level %d < 1", r)
	}
	for _, u := range inst.Units {
		if len(u.Nodes) < r {
			return nil, fmt.Errorf("core: unit %v has %d eligible nodes < redundancy %d", u.Key, len(u.Nodes), r)
		}
	}

	// Hop distance from every node to the collector.
	hops := make([]float64, inst.Topo.N())
	paths := inst.Topo.ShortestPaths(agg.Collector)
	for j := range hops {
		if len(paths[j]) == 0 {
			return nil, fmt.Errorf("core: node %d cannot reach collector %d", j, agg.Collector)
		}
		hops[j] = float64(len(paths[j]) - 1)
	}

	p := lp.New(lp.Minimize)
	lambda := p.AddVar("lambda", 1, 0, lp.Inf())
	dVars := make([][]lp.Var, len(inst.Units))
	n := inst.Topo.N()
	cpuTerms := make([][]lp.Term, n)
	memTerms := make([][]lp.Term, n)
	var commTerms []lp.Term
	for ui, u := range inst.Units {
		c := inst.Classes[u.Class]
		dVars[ui] = make([]lp.Var, len(u.Nodes))
		cover := make([]lp.Term, 0, len(u.Nodes))
		for vi, node := range u.Nodes {
			v := p.AddVar(fmt.Sprintf("d[%d,%d]", ui, node), 0, 0, 1)
			dVars[ui][vi] = v
			cover = append(cover, lp.Term{Var: v, Coef: 1})
			if w := c.CPUPerPkt * u.Pkts / inst.Caps[node].CPU; w != 0 {
				cpuTerms[node] = append(cpuTerms[node], lp.Term{Var: v, Coef: w})
			}
			if w := c.MemPerItem * u.Items / inst.Caps[node].Mem; w != 0 {
				memTerms[node] = append(memTerms[node], lp.Term{Var: v, Coef: w})
			}
			if w := agg.BytesPerItem * u.Items * hops[node]; w != 0 {
				commTerms = append(commTerms, lp.Term{Var: v, Coef: w})
			}
		}
		p.AddConstraint(fmt.Sprintf("cover[%d]", ui), cover, lp.EQ, float64(r))
	}
	for j := 0; j < n; j++ {
		if len(cpuTerms[j]) > 0 {
			p.AddConstraint(fmt.Sprintf("cpu[%d]", j),
				append([]lp.Term{{Var: lambda, Coef: -1}}, cpuTerms[j]...), lp.LE, 0)
		}
		if len(memTerms[j]) > 0 {
			p.AddConstraint(fmt.Sprintf("mem[%d]", j),
				append([]lp.Term{{Var: lambda, Coef: -1}}, memTerms[j]...), lp.LE, 0)
		}
	}
	if len(commTerms) > 0 {
		p.AddConstraint("agg-budget", commTerms, lp.LE, agg.Budget)
	}

	sol, err := p.SolveOpts(lp.Options{Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("core: aggregation LP: %w", err)
	}
	switch sol.Status {
	case lp.StatusOptimal:
	case lp.StatusInfeasible:
		return nil, fmt.Errorf("core: aggregation budget %v for this workload: %w", agg.Budget, lp.ErrInfeasible)
	default:
		return nil, fmt.Errorf("core: aggregation LP: %w", sol.Status.Err())
	}

	plan := &Plan{Inst: inst, Redundancy: r, Objective: sol.Objective, SolverIters: sol.Iters, Stats: sol.Stats}
	plan.Assignments = make([]Assignment, len(inst.Units))
	for ui := range inst.Units {
		frac := make([]float64, len(dVars[ui]))
		for vi, v := range dVars[ui] {
			frac[vi] = clamp01(sol.Value(v))
		}
		plan.Assignments[ui] = Assignment{Unit: ui, Frac: frac}
	}
	plan.buildManifests()
	plan.MaxCPULoad, plan.MaxMemLoad = Loads(inst, plan)
	return plan, nil
}

// AggregationCost evaluates a plan's digest byte-hops toward a collector —
// the quantity SolveWithAggregation budgets.
func AggregationCost(inst *Instance, p *Plan, agg AggregationConfig) float64 {
	hops := make([]float64, inst.Topo.N())
	paths := inst.Topo.ShortestPaths(agg.Collector)
	for j := range hops {
		if len(paths[j]) > 0 {
			hops[j] = float64(len(paths[j]) - 1)
		}
	}
	var cost float64
	for ui, a := range p.Assignments {
		u := inst.Units[ui]
		for vi, node := range u.Nodes {
			cost += a.Frac[vi] * agg.BytesPerItem * u.Items * hops[node]
		}
	}
	return cost
}

// ProbeCoverage measures hash-space coverage for nUnits coordination units
// by probing each unit's [0,1) space at `probes` midpoints (0 or negative
// selects the default 10000) and asking the covers predicate whether any
// live analyzer handles point x of unit ui. It returns the worst per-unit
// covered fraction and the average across units. Both the static
// CoverageUnderFailure audit and the cluster runtime's achieved-coverage
// measurement are this probe with different predicates, which is what makes
// their results directly comparable: same points, same accumulation order.
func ProbeCoverage(nUnits, probes int, covers func(unit int, x float64) bool) (worst, avg float64) {
	if nUnits == 0 {
		return 1, 1
	}
	if probes <= 0 {
		probes = 10000
	}
	worst = 1
	for ui := 0; ui < nUnits; ui++ {
		coveredPts := 0
		for t := 0; t < probes; t++ {
			x := (float64(t) + 0.5) / float64(probes)
			if covers(ui, x) {
				coveredPts++
			}
		}
		frac := float64(coveredPts) / float64(probes)
		if frac < worst {
			worst = frac
		}
		avg += frac
	}
	avg /= float64(nUnits)
	return worst, avg
}

// CoverageUnderFailure evaluates a plan's residual analysis coverage when
// the given nodes have failed — the scenario the Section 2.5 redundancy
// extension provisions for ("robust to NIDS failures ... hardware or OS
// crashes"). It returns the worst-case fraction of any coordination unit's
// hash space still analyzed by at least one surviving node, and the
// average across units. A plan solved with redundancy r keeps full
// coverage under any r-1 failures of nodes that share units.
func CoverageUnderFailure(p *Plan, failed []int) (worst, avg float64) {
	down := make(map[int]bool, len(failed))
	for _, j := range failed {
		down[j] = true
	}
	inst := p.Inst
	// Probe the hash space finely; ranges are few per unit, so interval
	// arithmetic would also work, but probing keeps the dependency on the
	// exact RangeSet shape minimal and is plenty accurate at 1e4 points.
	return ProbeCoverage(len(inst.Units), 0, func(ui int, x float64) bool {
		for _, node := range inst.Units[ui].Nodes {
			if down[node] {
				continue
			}
			if p.Manifests[node].Ranges[ui].Contains(x) {
				return true
			}
		}
		return false
	})
}
