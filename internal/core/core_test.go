package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// testClasses returns a compact class set covering both scopes and several
// aggregations.
func testClasses() []Class {
	return []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1.0, MemPerItem: 400},
		{Name: "http", Scope: PerPath, Agg: BySession, Ports: []uint16{80}, CPUPerPkt: 2.0, MemPerItem: 600},
		{Name: "scan", Scope: PerIngress, Agg: BySource, CPUPerPkt: 0.3, MemPerItem: 120},
		{Name: "synflood", Scope: PerPath, Agg: ByDestination, CPUPerPkt: 0.2, MemPerItem: 80},
	}
}

func testInstance(t *testing.T, sessions int) (*Instance, []traffic.Session) {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	ss := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: sessions, Seed: 11})
	inst, err := BuildInstance(topo, testClasses(), ss, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	return inst, ss
}

func TestBuildInstanceUnits(t *testing.T) {
	inst, ss := testInstance(t, 4000)
	if len(inst.Units) == 0 {
		t.Fatal("no coordination units built")
	}
	paths := inst.Topo.PathMatrix()
	var sawIngress, sawPath bool
	for _, u := range inst.Units {
		c := inst.Classes[u.Class]
		switch c.Scope {
		case PerIngress:
			sawIngress = true
			if len(u.Nodes) != 1 || u.Nodes[0] != u.Key[0] || u.Key[1] != -1 {
				t.Fatalf("ingress unit malformed: %+v", u)
			}
		case PerPath:
			sawPath = true
			if u.Key[0] >= u.Key[1] {
				t.Fatalf("path unit key not canonical: %+v", u.Key)
			}
			want := paths[u.Key[0]][u.Key[1]]
			if len(u.Nodes) != len(want) {
				t.Fatalf("unit nodes %v != path %v", u.Nodes, want)
			}
		}
		if u.Pkts <= 0 {
			t.Fatalf("unit has no packets: %+v", u)
		}
		if u.Items <= 0 {
			t.Fatalf("unit has no items: %+v", u)
		}
	}
	if !sawIngress || !sawPath {
		t.Fatal("expected both unit scopes")
	}

	// Total packets across the signature class's units must equal the total
	// workload packets (signature watches all traffic).
	var sigPkts, allPkts float64
	for _, u := range inst.Units {
		if inst.Classes[u.Class].Name == "signature" {
			sigPkts += u.Pkts
		}
	}
	for _, s := range ss {
		allPkts += float64(s.Packets)
	}
	if math.Abs(sigPkts-allPkts) > 0.5 {
		t.Fatalf("signature packets %v != workload packets %v", sigPkts, allPkts)
	}
}

func TestSolveProducesBalancedCoverage(t *testing.T) {
	inst, _ := testInstance(t, 4000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage: every unit's fractions sum to 1.
	for ui, a := range plan.Assignments {
		sum := 0.0
		for _, f := range a.Frac {
			if f < -1e-9 || f > 1+1e-9 {
				t.Fatalf("unit %d fraction out of range: %v", ui, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("unit %d coverage = %v, want 1", ui, sum)
		}
	}
	// Recomputed loads agree with the LP objective.
	if plan.MaxCPULoad > plan.Objective+1e-6 || plan.MaxMemLoad > plan.Objective+1e-6 {
		t.Fatalf("loads (%v, %v) exceed objective %v", plan.MaxCPULoad, plan.MaxMemLoad, plan.Objective)
	}
	if math.Max(plan.MaxCPULoad, plan.MaxMemLoad) < plan.Objective-1e-6 {
		t.Fatalf("objective %v not attained by loads (%v, %v)", plan.Objective, plan.MaxCPULoad, plan.MaxMemLoad)
	}
}

func TestCoordinatedBeatsEdgeOnMaxLoad(t *testing.T) {
	inst, _ := testInstance(t, 6000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	edge := EdgePlan(inst)
	if plan.MaxCPULoad >= edge.MaxCPULoad {
		t.Fatalf("coordinated max CPU %v >= edge %v", plan.MaxCPULoad, edge.MaxCPULoad)
	}
	if plan.MaxMemLoad >= edge.MaxMemLoad {
		t.Fatalf("coordinated max mem %v >= edge %v", plan.MaxMemLoad, edge.MaxMemLoad)
	}
}

func TestManifestsTileUnitInterval(t *testing.T) {
	inst, _ := testInstance(t, 3000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For every unit, the union of node ranges must cover [0,1) exactly
	// once: probe many points and count covering nodes.
	probes := []float64{0, 0.1, 0.25, 0.333, 0.5, 0.6180339, 0.75, 0.9, 0.99999}
	for ui, u := range inst.Units {
		for _, x := range probes {
			hits := 0
			for _, node := range u.Nodes {
				if plan.Manifests[node].Covers(ui, x) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("unit %d point %v covered %d times, want 1", ui, x, hits)
			}
		}
	}
}

func TestRedundantCoverage(t *testing.T) {
	inst, _ := testInstance(t, 3000)
	// r=2 requires every unit to have >= 2 eligible nodes; ingress units
	// have exactly 1, so build a path-only instance.
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: PerPath, Agg: BySession, Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
	}
	topo := inst.Topo
	tm := traffic.Gravity(topo)
	ss := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 21})
	pinst, err := BuildInstance(topo, classes, ss, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	// Drop units too small for r=2 (adjacent node pairs give 2-node paths,
	// which are fine; only self pairs would fail and they cannot occur).
	plan, err := Solve(pinst, 2)
	if err != nil {
		t.Fatal(err)
	}
	probes := []float64{0.05, 0.3141, 0.5, 0.71828, 0.95}
	for ui, u := range pinst.Units {
		for _, x := range probes {
			hitNodes := map[int]int{}
			for _, node := range u.Nodes {
				for _, r := range plan.Manifests[node].Ranges[ui] {
					if r.Contains(x) {
						hitNodes[node]++
					}
				}
			}
			total := 0
			for node, c := range hitNodes {
				if c > 1 {
					t.Fatalf("unit %d point %v covered %d times by node %d (violates clause 2)", ui, x, c, node)
				}
				total += c
			}
			if total != 2 {
				t.Fatalf("unit %d point %v covered by %d distinct nodes, want 2", ui, x, total)
			}
		}
	}
	_ = plan
}

func TestRedundancyInfeasibleForIngressUnits(t *testing.T) {
	inst, _ := testInstance(t, 500)
	if _, err := Solve(inst, 2); err == nil {
		t.Fatal("expected error: ingress units have a single eligible node")
	}
	if _, err := Solve(inst, 0); err == nil {
		t.Fatal("expected error for r=0")
	}
}

func TestShouldAnalyzeExactlyOneNode(t *testing.T) {
	inst, ss := testInstance(t, 2500)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := hashing.Hasher{Key: 42}
	for _, s := range ss[:800] {
		for ci, c := range inst.Classes {
			if !c.Matches(s) {
				continue
			}
			nodes := plan.AnalyzingNodes(ci, s, h)
			if len(nodes) != 1 {
				t.Fatalf("session %d class %s analyzed by %v, want exactly one node", s.ID, c.Name, nodes)
			}
			// The analyst must be an eligible node of the unit.
			ui, _ := inst.UnitFor(ci, s)
			found := false
			for _, n := range inst.Units[ui].Nodes {
				if n == nodes[0] {
					found = true
				}
			}
			if !found {
				t.Fatalf("session %d class %s analyzed at ineligible node %d", s.ID, c.Name, nodes[0])
			}
		}
	}
}

func TestShouldAnalyzeRespectsClassFilter(t *testing.T) {
	inst, ss := testInstance(t, 1000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := hashing.Hasher{Key: 1}
	httpIdx := -1
	for i, c := range inst.Classes {
		if c.Name == "http" {
			httpIdx = i
		}
	}
	for _, s := range ss {
		if s.Tuple.DstPort == 80 {
			continue
		}
		for node := 0; node < inst.Topo.N(); node++ {
			if plan.ShouldAnalyze(node, httpIdx, s, h) {
				t.Fatalf("non-HTTP session %d analyzed by HTTP class", s.ID)
			}
		}
	}
}

func TestEdgePlanAnalyzesAtBothEndpoints(t *testing.T) {
	inst, ss := testInstance(t, 800)
	edge := EdgePlan(inst)
	h := hashing.Hasher{Key: 9}
	sigIdx := 0
	for _, s := range ss[:200] {
		nodes := edge.AnalyzingNodes(sigIdx, s, h)
		if len(nodes) != 2 {
			t.Fatalf("edge plan analyzes session at %v, want both endpoints", nodes)
		}
	}
}

func TestUniformCaps(t *testing.T) {
	caps := UniformCaps(5, 10, 20)
	if len(caps) != 5 {
		t.Fatalf("len = %d", len(caps))
	}
	for _, c := range caps {
		if c.CPU != 10 || c.Mem != 20 {
			t.Fatalf("caps = %+v", c)
		}
	}
}

func TestBuildInstanceCapMismatch(t *testing.T) {
	topo := topology.Internet2()
	_, err := BuildInstance(topo, testClasses(), nil, UniformCaps(3, 1, 1))
	if err == nil {
		t.Fatal("expected capacity-count mismatch error")
	}
}

func TestLoadsMatchManifestSimulation(t *testing.T) {
	// Empirically replaying the workload through the manifests must yield
	// per-node packet counts close to the LP's fractional assignment.
	inst, ss := testInstance(t, 8000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := hashing.Hasher{Key: 5}
	// Expected CPU cost per node from fractions.
	wantCPU := make([]float64, inst.Topo.N())
	for ui, a := range plan.Assignments {
		u := inst.Units[ui]
		c := inst.Classes[u.Class]
		for vi, node := range u.Nodes {
			wantCPU[node] += c.CPUPerPkt * u.Pkts * a.Frac[vi]
		}
	}
	gotCPU := make([]float64, inst.Topo.N())
	for _, s := range ss {
		for ci, c := range inst.Classes {
			if !c.Matches(s) {
				continue
			}
			for node := 0; node < inst.Topo.N(); node++ {
				if plan.ShouldAnalyze(node, ci, s, h) {
					gotCPU[node] += c.CPUPerPkt * float64(s.Packets)
				}
			}
		}
	}
	var wantTot, gotTot float64
	for j := range wantCPU {
		wantTot += wantCPU[j]
		gotTot += gotCPU[j]
	}
	if math.Abs(wantTot-gotTot) > 0.02*wantTot {
		t.Fatalf("total simulated CPU %v vs planned %v", gotTot, wantTot)
	}
	for j := range wantCPU {
		if math.Abs(wantCPU[j]-gotCPU[j]) > 0.02*wantTot {
			t.Fatalf("node %d simulated CPU %v vs planned %v (tot %v)", j, gotCPU[j], wantCPU[j], wantTot)
		}
	}
}

// TestQuickManifestTiling drives buildManifests directly with random
// fractional assignments (including degenerate near-zero and near-one
// fractions) and checks the tiling invariant: every probe point is covered
// exactly r times by distinct nodes.
func TestQuickManifestTiling(t *testing.T) {
	topo := topology.Internet2()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(2)
		nNodes := 3 + rng.Intn(4)
		classes := []Class{{Name: "c", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 1}}
		nodes := rng.Perm(topo.N())[:nNodes]
		inst := &Instance{Topo: topo, Classes: classes, Caps: UniformCaps(topo.N(), 1, 1)}
		inst.Units = []CoordUnit{{Class: 0, Key: [2]int{0, 1}, Nodes: nodes, Pkts: 1, Items: 1}}

		// Random fractions in [0,1] summing to r, with occasional extremes.
		frac := make([]float64, nNodes)
		remaining := float64(r)
		for i := range frac {
			var v float64
			switch rng.Intn(4) {
			case 0:
				v = 0
			case 1:
				v = 1e-15
			default:
				v = rng.Float64()
			}
			if v > remaining {
				v = remaining
			}
			if v > 1 {
				v = 1
			}
			frac[i] = v
			remaining -= v
		}
		// Dump any remainder into slots with headroom.
		for i := range frac {
			if remaining <= 0 {
				break
			}
			add := math.Min(1-frac[i], remaining)
			frac[i] += add
			remaining -= add
		}
		if remaining > 1e-9 {
			return true // cannot represent this r with these slots; skip
		}

		p := &Plan{Inst: inst, Redundancy: r}
		p.Assignments = []Assignment{{Unit: 0, Frac: frac}}
		p.buildManifests()

		for _, x := range []float64{0, 0.1, 0.37, 0.5, 0.73, 0.999} {
			covered := 0
			for _, node := range nodes {
				hits := 0
				for _, rg := range p.Manifests[node].Ranges[0] {
					if rg.Contains(x) {
						hits++
					}
				}
				if hits > 1 {
					return false // same node twice: clause 2 violated
				}
				covered += hits
			}
			if covered != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp01MapsNaNToZero(t *testing.T) {
	cases := map[float64]float64{
		-0.5: 0, 0: 0, 0.25: 0.25, 1: 1, 1.5: 1,
		math.Inf(-1): 0, math.Inf(1): 1,
	}
	for in, want := range cases {
		if got := clamp01(in); got != want {
			t.Errorf("clamp01(%v) = %v, want %v", in, got, want)
		}
	}
	// NaN compares false against both clamp bounds; it must still map to a
	// finite value, or buildManifests would tile NaN range boundaries.
	if got := clamp01(math.NaN()); got != 0 {
		t.Errorf("clamp01(NaN) = %v, want 0", got)
	}
}

func TestManifestBoundariesFinite(t *testing.T) {
	// Every hash-range boundary a solve hands to the data plane must be a
	// finite value in [0, 1]: a single NaN boundary silently un-covers the
	// unit for every probe.
	inst, _ := testInstance(t, 3000)
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range plan.Manifests {
		for ui, rs := range m.Ranges {
			for _, rg := range rs {
				if math.IsNaN(rg.Lo) || math.IsNaN(rg.Hi) || math.IsInf(rg.Lo, 0) || math.IsInf(rg.Hi, 0) {
					t.Fatalf("node %d unit %d: non-finite range %v", m.Node, ui, rg)
				}
				if rg.Lo < 0 || rg.Hi > 1+1e-9 || rg.Lo > rg.Hi {
					t.Fatalf("node %d unit %d: malformed range %v", m.Node, ui, rg)
				}
			}
		}
	}
}
