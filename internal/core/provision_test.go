package core

import (
	"math"
	"testing"

	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func TestWhatIfUpgradesFindsBottleneck(t *testing.T) {
	// The best upgrade must target a node whose load is at the optimum's
	// bottleneck: upgrading anything else cannot reduce the max load. Note
	// that *weakening* a node does not make it the bottleneck — the LP
	// simply routes analysis around it — so the binding node must be
	// discovered from the solved plan, not assumed.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 4000, Seed: 3})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	caps := UniformCaps(topo.N(), 1e7, 1e12)
	inst, err := BuildInstance(topo, classes, sessions, caps)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := PerNodeLoads(inst, base)

	ups, err := WhatIfUpgrades(inst, 1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2*topo.N() {
		t.Fatalf("got %d options, want %d", len(ups), 2*topo.N())
	}
	best := ups[0]
	if best.Gain > 0 {
		if cpu[best.Node] < base.Objective-1e-6 {
			t.Fatalf("best upgrade targets node %d with load %v below the bottleneck %v",
				best.Node, cpu[best.Node], base.Objective)
		}
		if best.Resource != ResourceCPU {
			t.Fatalf("CPU-bound instance, but best upgrade is %v", best.Resource)
		}
	}
	// Sorted by gain.
	for i := 1; i < len(ups); i++ {
		if ups[i].Gain > ups[i-1].Gain+1e-12 {
			t.Fatalf("upgrades not sorted by gain at %d", i)
		}
	}
	// Non-binding nodes report zero gain and the baseline objective.
	zeroGains := 0
	for _, u := range ups {
		if u.Gain == 0 {
			zeroGains++
		}
	}
	if zeroGains == 0 {
		t.Fatal("expected most non-bottleneck options to have zero gain")
	}
}

func TestBestUpgrade(t *testing.T) {
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 4})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	inst, err := BuildInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	up, ok, err := BestUpgrade(inst, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok && up.Gain <= 0 {
		t.Fatalf("ok=true with nonpositive gain: %+v", up)
	}
	if _, err := WhatIfUpgrades(inst, 1, 1.0); err == nil {
		t.Fatal("expected error for factor <= 1")
	}
}

func TestUpgradeGainIsRealizable(t *testing.T) {
	// The reported post-upgrade objective must equal a fresh solve on the
	// upgraded instance.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 5})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "scan", Scope: PerIngress, Agg: BySource, CPUPerPkt: 0.5, MemPerItem: 100},
	}
	inst, err := BuildInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	ups, err := WhatIfUpgrades(inst, 1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	best := ups[0]
	if best.Gain == 0 {
		t.Skip("no beneficial upgrade in this configuration")
	}
	caps := make([]NodeResources, len(inst.Caps))
	copy(caps, inst.Caps)
	if best.Resource == ResourceCPU {
		caps[best.Node].CPU *= best.Factor
	} else {
		caps[best.Node].Mem *= best.Factor
	}
	inst2, err := BuildInstance(topo, classes, sessions, caps)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Solve(inst2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Objective-best.Objective) > 1e-6*(1+plan.Objective) {
		t.Fatalf("reported objective %v, fresh solve %v", best.Objective, plan.Objective)
	}
}

func TestResourceString(t *testing.T) {
	if ResourceCPU.String() != "cpu" || ResourceMem.String() != "mem" {
		t.Fatal("resource names wrong")
	}
}
