// Package core implements the paper's primary NIDS contribution (Section
// 2): partitioning NIDS analysis responsibilities across a network so that
// coverage is complete — the deployment is logically equivalent to one NIDS
// seeing all traffic — while the maximum per-node CPU/memory load is
// minimized.
//
// The pipeline mirrors the paper exactly:
//
//  1. Model analysis classes C_i, their coordination units P_ik, and
//     per-unit traffic volumes T_ik (Section 2.1) — see Class, CoordUnit,
//     Instance, and BuildInstance.
//  2. Solve the linear program of Eqs. (1)–(6) (Section 2.2) — Solve.
//  3. Translate the optimal fractional assignment d*_ikj into hash-range
//     sampling manifests (Figure 2), including the Section 2.5 redundancy
//     extension where the coverage requirement r > 1 is handled by covering
//     the space [0, r] with wraparound — Plan.Manifests.
//  4. Run the per-packet check of Figure 3 on each node — Plan.ShouldAnalyze.
package core

import (
	"fmt"
	"math"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/lp"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// Scope determines how a class's traffic partitions into coordination units.
type Scope int

const (
	// PerPath units group traffic by its end-to-end route: every node on
	// the (bidirectional) path between the endpoints observes the traffic,
	// so all of them are eligible analysts. Signature matching, HTTP, IRC,
	// and other session analyses use this scope.
	PerPath Scope = iota
	// PerIngress units group traffic by the host that initiates it; only
	// the host's ingress node sees everything the host sends, so the
	// eligible set is that single node. Scan detection uses this scope
	// ("outbound scans ... are best detected close to network gateways").
	PerIngress
	// PerEgress units group traffic by where it exits; only the egress
	// node sees everything destined to the hosts behind it, making it the
	// right vantage for inbound-flood detection.
	PerEgress
)

// Aggregation is the unit of state a class keeps, which both selects the
// hash variant used in the Figure 3 check and determines what T_ik^items
// counts ("the number of flows in per-flow analysis and the number of
// distinct source addresses in per-source analysis").
type Aggregation int

const (
	// BySession aggregates per bidirectional connection.
	BySession Aggregation = iota
	// ByFlow aggregates per unidirectional 5-tuple.
	ByFlow
	// BySource aggregates per source address.
	BySource
	// ByDestination aggregates per destination address.
	ByDestination
)

// Class is one type of traffic analysis (a NIDS module) with its resource
// footprint per the offline profiles of Dreger et al. (the paper's [16]).
type Class struct {
	Name  string
	Scope Scope
	Agg   Aggregation
	// Ports restricts the class's traffic specification T_i to sessions
	// with one of these server ports; empty means all traffic.
	Ports []uint16
	// Transport restricts T_i to a transport protocol (6 TCP, 17 UDP);
	// zero means any transport.
	Transport uint8
	// CPUPerPkt is CpuReq_i: processing cost units per packet analyzed.
	CPUPerPkt float64
	// MemPerItem is MemReq_i: bytes of state per aggregation item.
	MemPerItem float64
}

// Matches reports whether the class analyzes the given session.
func (c Class) Matches(s traffic.Session) bool {
	if c.Transport != 0 && s.Tuple.Proto != c.Transport {
		return false
	}
	if len(c.Ports) == 0 {
		return true
	}
	for _, p := range c.Ports {
		if s.Tuple.DstPort == p {
			return true
		}
	}
	return false
}

// HashOf returns the Figure 3 hash for this class's aggregation: the
// "specific packet fields used for HASH depend on semantics of C_i".
func (c Class) HashOf(h hashing.Hasher, t hashing.FiveTuple) float64 {
	switch c.Agg {
	case ByFlow:
		return h.Flow(t)
	case BySource:
		return h.Source(t)
	case ByDestination:
		return h.Destination(t)
	default:
		return h.Session(t)
	}
}

// CoordUnit is one coordination unit P_ik: a set of nodes all of which
// observe every packet in the traffic component T_ik.
type CoordUnit struct {
	Class int // index into Instance.Classes
	// Key identifies the traffic component: for PerPath units it is the
	// unordered endpoint pair {A, B} with A < B; for PerIngress units A is
	// the ingress node and B is -1.
	Key [2]int
	// Nodes is P_ik, the eligible analysts, in path order for PerPath.
	Nodes []int
	// Pkts and Items are T_ik^pkts and T_ik^items.
	Pkts, Items float64
}

// NodeResources is one node's capacities (CpuCap_j, MemCap_j). The model is
// heterogeneous; the paper's evaluation sets all locations equal.
type NodeResources struct {
	CPU float64 // processing capacity in cost units per interval
	Mem float64 // memory capacity in bytes
}

// Instance is a fully specified NIDS placement problem.
type Instance struct {
	Topo    *topology.Topology
	Classes []Class
	Units   []CoordUnit
	Caps    []NodeResources

	unitIdx map[unitRef]int
}

type unitRef struct {
	class int
	key   [2]int
}

// UniformCaps builds equal capacities for every node, as in the paper's
// network-wide evaluation ("all locations ... the same processing/memory
// capabilities").
func UniformCaps(n int, cpu, mem float64) []NodeResources {
	caps := make([]NodeResources, n)
	for i := range caps {
		caps[i] = NodeResources{CPU: cpu, Mem: mem}
	}
	return caps
}

// BuildInstance derives the LP inputs from a topology, class list, and a
// session workload: the per-unit packet and item volumes the paper obtains
// from traffic reports (NetFlow/SNMP). Sessions determine both which
// coordination units exist (pairs with traffic) and their T_ik volumes.
func BuildInstance(topo *topology.Topology, classes []Class, sessions []traffic.Session, caps []NodeResources) (*Instance, error) {
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("core: %d capacities for %d nodes", len(caps), topo.N())
	}
	inst := &Instance{
		Topo:    topo,
		Classes: classes,
		Caps:    caps,
		unitIdx: make(map[unitRef]int),
	}
	paths := topo.PathMatrix()

	// Distinct-item sets per unit for BySource/ByDestination aggregation.
	type itemSets struct {
		srcs map[uint32]struct{}
		dsts map[uint32]struct{}
	}
	items := map[unitRef]*itemSets{}

	unit := func(ref unitRef, nodes []int) *CoordUnit {
		if idx, ok := inst.unitIdx[ref]; ok {
			return &inst.Units[idx]
		}
		inst.unitIdx[ref] = len(inst.Units)
		inst.Units = append(inst.Units, CoordUnit{Class: ref.class, Key: ref.key, Nodes: append([]int(nil), nodes...)})
		items[ref] = &itemSets{srcs: map[uint32]struct{}{}, dsts: map[uint32]struct{}{}}
		return &inst.Units[len(inst.Units)-1]
	}

	for _, s := range sessions {
		for ci, c := range classes {
			if !c.Matches(s) {
				continue
			}
			var ref unitRef
			var nodes []int
			switch c.Scope {
			case PerPath:
				a, b := s.Src, s.Dst
				if a > b {
					a, b = b, a
				}
				ref = unitRef{ci, [2]int{a, b}}
				nodes = paths[a][b]
			case PerIngress:
				ref = unitRef{ci, [2]int{s.Src, -1}}
				nodes = []int{s.Src}
			case PerEgress:
				ref = unitRef{ci, [2]int{s.Dst, -1}}
				nodes = []int{s.Dst}
			}
			u := unit(ref, nodes)
			u.Pkts += float64(s.Packets)
			set := items[ref]
			switch c.Agg {
			case BySource:
				set.srcs[s.Tuple.SrcIP] = struct{}{}
			case ByDestination:
				set.dsts[s.Tuple.DstIP] = struct{}{}
			case ByFlow:
				u.Items += 2 // one flow per direction
			default:
				u.Items++
			}
		}
	}
	for ref, set := range items {
		u := &inst.Units[inst.unitIdx[ref]]
		switch inst.Classes[ref.class].Agg {
		case BySource:
			u.Items = float64(len(set.srcs))
		case ByDestination:
			u.Items = float64(len(set.dsts))
		}
	}
	return inst, nil
}

// UnitFor resolves the coordination unit of a session for a class, i.e. the
// GETCOORDUNIT step of Figure 3. The boolean is false when the session's
// component never appeared in the instance workload.
func (inst *Instance) UnitFor(class int, s traffic.Session) (int, bool) {
	c := inst.Classes[class]
	var ref unitRef
	switch c.Scope {
	case PerPath:
		a, b := s.Src, s.Dst
		if a > b {
			a, b = b, a
		}
		ref = unitRef{class, [2]int{a, b}}
	case PerIngress:
		ref = unitRef{class, [2]int{s.Src, -1}}
	case PerEgress:
		ref = unitRef{class, [2]int{s.Dst, -1}}
	}
	idx, ok := inst.unitIdx[ref]
	return idx, ok
}

// Assignment is the solved fractional split for one coordination unit:
// Frac[i] is d_ikj for Nodes[i] of the unit.
type Assignment struct {
	Unit int
	Frac []float64
}

// NodeManifest is one node's sampling manifest (Figure 2's Manifest(R_j)):
// hash ranges per coordination unit, possibly wrapped around 1.0 under the
// Section 2.5 redundancy extension.
type NodeManifest struct {
	Node   int
	Ranges map[int]hashing.RangeSet // unit index -> ranges
}

// Covers reports whether this node analyzes hash point x for the unit.
func (m *NodeManifest) Covers(unit int, x float64) bool {
	return m.Ranges[unit].Contains(x)
}

// Plan is a solved network-wide NIDS deployment.
type Plan struct {
	Inst        *Instance
	Redundancy  int
	Assignments []Assignment
	Manifests   []NodeManifest // indexed by node ID

	// Objective is the LP optimum: the minimized max of the per-node
	// CPU and memory load fractions.
	Objective float64
	// MaxCPULoad and MaxMemLoad are the components recomputed from the
	// assignment (both <= Objective + tolerance).
	MaxCPULoad, MaxMemLoad float64
	// SolverIters counts simplex iterations, for the optimization-time
	// reproduction.
	SolverIters int
	// Basis is the LP's optimal basis, captured when the plan was solved
	// with SolveOptions.CaptureBasis (or warm-started). Feeding it to a
	// later solve's SolveOptions.WarmBasis re-solves a same-shaped
	// instance with perturbed volumes from this optimum — the cluster's
	// drift-triggered replan path.
	Basis *lp.Basis
	// Stats is the LP solver's work report (per-phase pivots, Bland
	// activations, presolve eliminations). Like SolverIters it is
	// deterministic: it never includes wall-clock quantities, so plans
	// solved with and without a metrics registry compare equal.
	Stats lp.SolveStats
}

// SolveOptions parameterizes SolveOpts, mirroring nips.SolveOptions.
type SolveOptions struct {
	// Redundancy is the Section 2.5 coverage level r (0 selects 1).
	Redundancy int
	// Aggregation, when non-nil, adds the Section 5 network-wide
	// communication budget to the formulation (see SolveWithAggregation).
	Aggregation *AggregationConfig
	// Workers is accepted for symmetry with the other options structs and
	// reserved for future use: the NIDS LP solve is single-threaded today.
	Workers int
	// Metrics, when non-nil, receives solve observability (the lp
	// package's counters plus solve wall time). The registry is
	// write-only, so the returned Plan is identical with or without it
	// (nil is the no-op default; see internal/obs).
	Metrics *obs.Registry
	// CaptureBasis exports the LP's optimal basis on the returned Plan.
	// It disables presolve (a presolved solution's columns do not map to
	// the full column space), trading some solve speed for replan speed.
	CaptureBasis bool
	// WarmBasis, when non-nil, warm-starts the LP from a previous plan's
	// Basis. Valid only across instances of identical shape — same units
	// in the same order with the same eligible-node sets — i.e. volume
	// perturbations of one instance (see WithVolumes and Scaled). An
	// unusable basis falls back to a cold start. Implies CaptureBasis.
	WarmBasis *lp.Basis
	// MaxIters bounds the LP's simplex iterations; zero selects the
	// solver's size-proportional default. The cluster replan loop uses
	// this as a deterministic deadline: a solve that exceeds it fails
	// with lp.ErrIterLimit instead of blocking the epoch protocol.
	MaxIters int
}

// SolveOpts formulates and solves the placement LP selected by opts: the
// Eqs. (1)–(6) base formulation, generalized to coverage r, plus the
// aggregation budget row when opts.Aggregation is set.
func SolveOpts(inst *Instance, opts SolveOptions) (*Plan, error) {
	r := opts.Redundancy
	if r == 0 {
		r = 1
	}
	sp := opts.Metrics.StartSpan("core.solve_ns")
	defer sp.End()
	var plan *Plan
	var err error
	if opts.Aggregation != nil {
		// The aggregation formulation has extra rows, so a base-shape
		// basis would not fit; warm options apply to the base LP only.
		plan, err = solveWithAggregation(inst, r, *opts.Aggregation, opts.Metrics)
	} else {
		plan, err = solveNIDS(inst, r, opts)
	}
	if err != nil {
		return nil, err
	}
	if m := opts.Metrics; m != nil {
		m.Add("core.solves", 1)
		m.Gauge("core.objective").Set(plan.Objective)
	}
	return plan, nil
}

// Solve formulates and solves the LP of Eqs. (1)–(6) with coverage level
// r >= 1 (r = 1 is the base formulation; r > 1 is the redundancy extension,
// which covers the hash space [0, r] while keeping every d_ikj <= 1).
func Solve(inst *Instance, r int) (*Plan, error) {
	return solveNIDS(inst, r, SolveOptions{})
}

// solveNIDS is Solve with the solver-facing options (metrics, basis
// capture/warm start, iteration cap) threaded into the LP solve.
func solveNIDS(inst *Instance, r int, opts SolveOptions) (*Plan, error) {
	if r < 1 {
		return nil, fmt.Errorf("core: redundancy level %d < 1", r)
	}
	for _, u := range inst.Units {
		if len(u.Nodes) < r {
			return nil, fmt.Errorf("core: unit %v of class %s has %d eligible nodes < redundancy %d",
				u.Key, inst.Classes[u.Class].Name, len(u.Nodes), r)
		}
	}

	p := lp.New(lp.Minimize)
	lambda := p.AddVar("lambda", 1, 0, lp.Inf())

	// d variables per (unit, node), with per-node load accumulation terms.
	dVars := make([][]lp.Var, len(inst.Units))
	n := inst.Topo.N()
	cpuTerms := make([][]lp.Term, n)
	memTerms := make([][]lp.Term, n)
	for ui, u := range inst.Units {
		c := inst.Classes[u.Class]
		dVars[ui] = make([]lp.Var, len(u.Nodes))
		cover := make([]lp.Term, 0, len(u.Nodes))
		for vi, node := range u.Nodes {
			v := p.AddVar(fmt.Sprintf("d[%d,%d]", ui, node), 0, 0, 1)
			dVars[ui][vi] = v
			cover = append(cover, lp.Term{Var: v, Coef: 1})
			if w := c.CPUPerPkt * u.Pkts / inst.Caps[node].CPU; w != 0 {
				cpuTerms[node] = append(cpuTerms[node], lp.Term{Var: v, Coef: w})
			}
			if w := c.MemPerItem * u.Items / inst.Caps[node].Mem; w != 0 {
				memTerms[node] = append(memTerms[node], lp.Term{Var: v, Coef: w})
			}
		}
		// Eq (1), generalized to coverage r per Section 2.5.
		p.AddConstraint(fmt.Sprintf("cover[%d]", ui), cover, lp.EQ, float64(r))
	}
	// Eqs (2)–(5): lambda >= CpuLoad_j and lambda >= MemLoad_j.
	for j := 0; j < n; j++ {
		if len(cpuTerms[j]) > 0 {
			terms := append([]lp.Term{{Var: lambda, Coef: -1}}, cpuTerms[j]...)
			p.AddConstraint(fmt.Sprintf("cpu[%d]", j), terms, lp.LE, 0)
		}
		if len(memTerms[j]) > 0 {
			terms := append([]lp.Term{{Var: lambda, Coef: -1}}, memTerms[j]...)
			p.AddConstraint(fmt.Sprintf("mem[%d]", j), terms, lp.LE, 0)
		}
	}

	// Presolve pays off here: every ingress/egress-pinned unit is a
	// singleton coverage equality the reductions eliminate outright. It is
	// incompatible with basis capture, though — a presolved solution's
	// columns live in the reduced model — so warm-start workflows trade it
	// away.
	capture := opts.CaptureBasis || opts.WarmBasis != nil
	sol, err := p.SolveOpts(lp.Options{
		Presolve:  !capture,
		WarmBasis: opts.WarmBasis,
		MaxIters:  opts.MaxIters,
		Metrics:   opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("core: solving NIDS LP: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("core: NIDS LP (is redundancy %d feasible?): %w", r, sol.Status.Err())
	}

	plan := &Plan{Inst: inst, Redundancy: r, Objective: sol.Objective, SolverIters: sol.Iters, Stats: sol.Stats, Basis: sol.Basis}
	plan.Assignments = make([]Assignment, len(inst.Units))
	for ui := range inst.Units {
		frac := make([]float64, len(dVars[ui]))
		for vi, v := range dVars[ui] {
			frac[vi] = clamp01(sol.Value(v))
		}
		plan.Assignments[ui] = Assignment{Unit: ui, Frac: frac}
	}
	plan.buildManifests()
	plan.MaxCPULoad, plan.MaxMemLoad = Loads(inst, plan)
	return plan, nil
}

// clamp01 confines a solver value to [0, 1]. NaN maps to 0: both x < 0 and
// x > 1 are false for NaN, so without the explicit check a degenerate solver
// tolerance would propagate NaN into the hash-range boundaries built by
// buildManifests.
func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// buildManifests implements GENERATENIDSMANIFEST (Figure 2), generalized to
// coverage r: the cumulative range walks [0, r] and wraps around every time
// it exceeds 1 (Section 2.5). Per-unit fractions are rescaled so boundaries
// tile [0, r] exactly despite solver tolerances.
func (p *Plan) buildManifests() {
	n := p.Inst.Topo.N()
	p.Manifests = make([]NodeManifest, n)
	for j := 0; j < n; j++ {
		p.Manifests[j] = NodeManifest{Node: j, Ranges: make(map[int]hashing.RangeSet)}
	}
	for ui := range p.Assignments {
		p.walkUnit(ui, func(node int, lo, hi float64) {
			var rs hashing.RangeSet
			loM, hiM := math.Mod(lo, 1), math.Mod(hi, 1)
			switch {
			case hi-lo >= 1:
				// d == 1 (possible only when it owns a full copy).
				rs = hashing.RangeSet{{Lo: 0, Hi: 1}}
			case loM < hiM:
				rs = hashing.RangeSet{{Lo: loM, Hi: hiM}}
			default:
				rs = hashing.RangeSet{{Lo: loM, Hi: 1}}
				if hiM > 0 {
					rs = append(rs, hashing.Range{Lo: 0, Hi: hiM})
				}
			}
			existing := p.Manifests[node].Ranges[ui]
			p.Manifests[node].Ranges[ui] = append(existing, rs...)
		})
	}
}

// walkUnit replays the Figure 2 cumulative cursor for one unit, emitting
// each node's contiguous piece [lo, hi) in the cursor's [0, r] coordinates
// (before the wraparound fold). buildManifests and Slices both consume
// this walk, which is what guarantees that copy-indexed slices and the
// published manifests describe the same geometry boundary-for-boundary.
func (p *Plan) walkUnit(ui int, emit func(node int, lo, hi float64)) {
	a := p.Assignments[ui]
	u := p.Inst.Units[ui]
	r := float64(p.Redundancy)
	total := 0.0
	for _, f := range a.Frac {
		total += f
	}
	if total <= 0 {
		return
	}
	scale := r / total
	// Identify the last node with a non-negligible share: it absorbs
	// the rounding remainder so boundaries tile [0, r] exactly.
	const negligible = 1e-9
	last := -1
	for vi := range u.Nodes {
		if a.Frac[vi]*scale > negligible {
			last = vi
		}
	}
	pos := 0.0
	for vi, node := range u.Nodes {
		w := a.Frac[vi] * scale
		if vi == last {
			w = r - pos // absorb rounding in the final slice
		}
		// A node's share can exceed 1 only by floating-point crumbs
		// (d <= 1 in the LP); clamp so the cursor stays on exact copy
		// boundaries and no hairline gap opens at the wraparound.
		if w > 1 {
			w = 1
		}
		if w <= negligible {
			continue
		}
		lo, hi := pos, pos+w
		pos = hi
		emit(node, lo, hi)
	}
}

// ShouldAnalyze runs the COORDINATEDNIDS check of Figure 3 for one class on
// one node: resolve the coordination unit, hash the per-class key fields,
// and test membership in the node's assigned ranges.
func (p *Plan) ShouldAnalyze(node, class int, s traffic.Session, h hashing.Hasher) bool {
	if !p.Inst.Classes[class].Matches(s) {
		return false
	}
	ui, ok := p.Inst.UnitFor(class, s)
	if !ok {
		return false
	}
	rs, ok := p.Manifests[node].Ranges[ui]
	if !ok {
		return false
	}
	return rs.Contains(p.Inst.Classes[class].HashOf(h, s.Tuple))
}

// AnalyzingNodes returns every node whose manifest covers the session for
// the class — with redundancy r this has exactly r members for covered
// traffic.
func (p *Plan) AnalyzingNodes(class int, s traffic.Session, h hashing.Hasher) []int {
	var out []int
	for node := range p.Manifests {
		if p.ShouldAnalyze(node, class, s, h) {
			out = append(out, node)
		}
	}
	return out
}

// Loads recomputes the per-node CPU and memory load fractions of Eqs. (2)
// and (3) from a plan's fractional assignment and returns the maxima.
func Loads(inst *Instance, p *Plan) (maxCPU, maxMem float64) {
	cpu, mem := PerNodeLoads(inst, p)
	for j := range cpu {
		maxCPU = math.Max(maxCPU, cpu[j])
		maxMem = math.Max(maxMem, mem[j])
	}
	return maxCPU, maxMem
}

// PerNodeLoads returns the per-node CPU and memory load fractions.
func PerNodeLoads(inst *Instance, p *Plan) (cpu, mem []float64) {
	n := inst.Topo.N()
	cpu = make([]float64, n)
	mem = make([]float64, n)
	for ui, a := range p.Assignments {
		u := inst.Units[ui]
		c := inst.Classes[u.Class]
		for vi, node := range u.Nodes {
			d := a.Frac[vi]
			cpu[node] += c.CPUPerPkt * u.Pkts * d / inst.Caps[node].CPU
			mem[node] += c.MemPerItem * u.Items * d / inst.Caps[node].Mem
		}
	}
	return cpu, mem
}

// EdgePlan builds the single-vantage-point baseline the paper compares
// against: every node independently analyzes all traffic it originates or
// terminates (full [0,1) ranges at both endpoints of every unit). The
// resulting "plan" intentionally double-covers path units, exactly like
// running an uncoordinated Bro at each edge.
func EdgePlan(inst *Instance) *Plan {
	p := &Plan{Inst: inst, Redundancy: 1}
	p.Assignments = make([]Assignment, len(inst.Units))
	n := inst.Topo.N()
	p.Manifests = make([]NodeManifest, n)
	for j := 0; j < n; j++ {
		p.Manifests[j] = NodeManifest{Node: j, Ranges: make(map[int]hashing.RangeSet)}
	}
	full := hashing.RangeSet{{Lo: 0, Hi: 1}}
	for ui, u := range inst.Units {
		frac := make([]float64, len(u.Nodes))
		var endpoints []int
		switch inst.Classes[u.Class].Scope {
		case PerIngress, PerEgress:
			endpoints = []int{u.Key[0]}
		default:
			endpoints = []int{u.Key[0], u.Key[1]}
		}
		for _, e := range endpoints {
			p.Manifests[e].Ranges[ui] = full
			for vi, node := range u.Nodes {
				if node == e {
					frac[vi] = 1
				}
			}
		}
		p.Assignments[ui] = Assignment{Unit: ui, Frac: frac}
	}
	p.MaxCPULoad, p.MaxMemLoad = Loads(inst, p)
	p.Objective = math.Max(p.MaxCPULoad, p.MaxMemLoad)
	return p
}
