package core

import (
	"fmt"
	"math"

	"nwdeploy/internal/hashing"
)

// ManifestSlice is one contiguous piece of a node's manifest for one
// coordination unit, annotated with the redundancy copy it belongs to.
//
// Under the Section 2.5 extension the cumulative cursor tiles [0, r]; each
// integer band [c, c+1) of that walk is the c-th complete copy of the
// unit's hash space. A slice is a node's piece restricted to one band and
// folded back into [0, 1) — so it never wraps, and its Range is exactly a
// sub-interval of the corresponding published manifest range.
//
// The copy index is what makes load shedding safe: every point of every
// unit is covered once by copy 0, so a governor that only ever sheds
// slices with Copy >= 1 can locally guarantee the network keeps the base
// r = 1 coverage, no matter which nodes shed.
type ManifestSlice struct {
	Node  int
	Unit  int
	Copy  int
	Range hashing.Range
}

// Slices decomposes every node's manifest into copy-annotated slices,
// indexed by node. Within a node the order is deterministic: unit index
// ascending, then copy ascending (the cursor walk visits bands in order).
// The union of a node's slices for a unit equals its published manifest
// ranges for that unit, boundary for boundary.
func (p *Plan) Slices() [][]ManifestSlice {
	n := p.Inst.Topo.N()
	out := make([][]ManifestSlice, n)
	const negligible = 1e-9
	for ui := range p.Assignments {
		p.walkUnit(ui, func(node int, lo, hi float64) {
			// Split [lo, hi) at integer copy boundaries. Each band piece
			// folds to [slo-c, shi-c) in [0, 1); the subtraction is exact
			// for the small copy counts in play, so the folded boundaries
			// coincide bitwise with buildManifests' math.Mod fold.
			for c := math.Floor(lo); c < hi; c++ {
				slo, shi := math.Max(lo, c), math.Min(hi, c+1)
				if shi-slo <= negligible {
					continue
				}
				out[node] = append(out[node], ManifestSlice{
					Node:  node,
					Unit:  ui,
					Copy:  int(c),
					Range: hashing.Range{Lo: slo - c, Hi: shi - c},
				})
			}
		})
	}
	return out
}

// WithVolumes returns a copy of the instance with per-unit packet and item
// volumes replaced wholesale (indexed like Units). Topology, classes,
// capacities, and unit identity are shared, so the result has the same LP
// shape as the original: a plan solved on it can warm-start from the
// original plan's Basis, and its manifests keep the same unit indices.
// This is the replan entry point — the drift detector feeds it the
// EWMA-smoothed observed volumes.
func (inst *Instance) WithVolumes(pkts, items []float64) (*Instance, error) {
	if len(pkts) != len(inst.Units) || len(items) != len(inst.Units) {
		return nil, fmt.Errorf("core: WithVolumes got %d/%d volumes for %d units",
			len(pkts), len(items), len(inst.Units))
	}
	out := &Instance{
		Topo:    inst.Topo,
		Classes: inst.Classes,
		Caps:    inst.Caps,
		Units:   make([]CoordUnit, len(inst.Units)),
		unitIdx: inst.unitIdx,
	}
	for ui, u := range inst.Units {
		u.Pkts = pkts[ui]
		u.Items = items[ui]
		out.Units[ui] = u
	}
	return out, nil
}
