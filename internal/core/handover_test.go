package core

import (
	"math"
	"testing"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// lineTopology builds a 4-node line A-B-C-D; withShortcut adds a direct
// A-D link that reroutes the A<->D path away from B and C.
func lineTopology(withShortcut bool) *topology.Topology {
	nodes := []topology.Node{
		{ID: 0, Name: "A", Population: 1e6, Lat: 30, Lon: -100},
		{ID: 1, Name: "B", Population: 1e5, Lat: 32, Lon: -95},
		{ID: 2, Name: "C", Population: 1e5, Lat: 34, Lon: -90},
		{ID: 3, Name: "D", Population: 1e6, Lat: 36, Lon: -85},
	}
	t := topology.New("line", nodes)
	t.AddLink(0, 1, 10)
	t.AddLink(1, 2, 10)
	t.AddLink(2, 3, 10)
	if withShortcut {
		t.AddLink(0, 3, 5)
	}
	return t
}

func transitionPlans(t *testing.T) (*Plan, *Plan) {
	t.Helper()
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	caps := UniformCaps(4, 1e6, 1e9)

	before := lineTopology(false)
	after := lineTopology(true)
	tm := traffic.Gravity(before)
	sessions := traffic.Generate(before, tm, traffic.GenConfig{Sessions: 2000, Seed: 9})

	oldInst, err := BuildInstance(before, classes, sessions, caps)
	if err != nil {
		t.Fatal(err)
	}
	oldPlan, err := Solve(oldInst, 1)
	if err != nil {
		t.Fatal(err)
	}
	newInst, err := BuildInstance(after, classes, sessions, caps)
	if err != nil {
		t.Fatal(err)
	}
	newPlan, err := Solve(newInst, 1)
	if err != nil {
		t.Fatal(err)
	}
	return oldPlan, newPlan
}

func TestPlanTransitionTransfersDepartedRanges(t *testing.T) {
	oldPlan, newPlan := transitionPlans(t)
	tr, err := PlanTransition(oldPlan, newPlan)
	if err != nil {
		t.Fatal(err)
	}

	// The A<->D path changed from A-B-C-D to A-D: any range B or C owned
	// for the (0,3) unit must transfer to A or D.
	var departedWidth, transferredWidth float64
	for oldUI, oldU := range oldPlan.Inst.Units {
		if oldU.Key != [2]int{0, 3} {
			continue
		}
		for _, node := range []int{1, 2} {
			departedWidth += oldPlan.Manifests[node].Ranges[oldUI].Width()
		}
	}
	for _, x := range tr.Transfers {
		if x.Unit == [2]int{0, 3} {
			if x.From != 1 && x.From != 2 {
				t.Fatalf("transfer from node %d, which is still on the path", x.From)
			}
			if x.To != 0 && x.To != 3 {
				t.Fatalf("transfer to node %d, which is not on the new path", x.To)
			}
			transferredWidth += x.Range.Width()
		}
	}
	if departedWidth == 0 {
		t.Skip("LP happened to assign the whole unit to the endpoints; nothing to test")
	}
	if math.Abs(departedWidth-transferredWidth) > 1e-9 {
		t.Fatalf("departed width %v != transferred width %v: state would be stranded",
			departedWidth, transferredWidth)
	}
}

func TestPlanTransitionRetainsOldAssignments(t *testing.T) {
	oldPlan, newPlan := transitionPlans(t)
	tr, err := PlanTransition(oldPlan, newPlan)
	if err != nil {
		t.Fatal(err)
	}
	// Every nonzero old manifest entry appears as a retention.
	want := 0
	for _, m := range oldPlan.Manifests {
		for _, rs := range m.Ranges {
			if rs.Width() > 0 {
				want++
			}
		}
	}
	if len(tr.Retentions) != want {
		t.Fatalf("got %d retentions, want %d", len(tr.Retentions), want)
	}
	if tr.TransferredWidth() < 0 {
		t.Fatal("negative transferred width")
	}
}

func TestPlanTransitionNoRoutingChangeNoTransfers(t *testing.T) {
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	topo := lineTopology(false)
	tm := traffic.Gravity(topo)
	caps := UniformCaps(4, 1e6, 1e9)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 1500, Seed: 2})
	inst, err := BuildInstance(topo, classes, sessions, caps)
	if err != nil {
		t.Fatal(err)
	}
	plan1, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same routing, different traffic volumes: assignments shift but no
	// node leaves any path, so no state transfers are needed.
	sessions2 := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 8})
	inst2, err := BuildInstance(topo, classes, sessions2, caps)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := Solve(inst2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := PlanTransition(plan1, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Transfers) != 0 {
		t.Fatalf("expected no transfers for unchanged routing, got %d", len(tr.Transfers))
	}
}

func TestPlanTransitionRejectsMismatchedClasses(t *testing.T) {
	oldPlan, newPlan := transitionPlans(t)
	// Tamper with a class name (on a private copy: the two instances share
	// the class slice they were built from).
	newPlan.Inst.Classes = append([]Class(nil), newPlan.Inst.Classes...)
	newPlan.Inst.Classes[0].Name = "renamed"
	if _, err := PlanTransition(oldPlan, newPlan); err == nil {
		t.Fatal("expected error for renamed class")
	}
	newPlan.Inst.Classes = newPlan.Inst.Classes[:0]
	if _, err := PlanTransition(oldPlan, newPlan); err == nil {
		t.Fatal("expected error for class-count mismatch")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b   [2]float64
		want   [2]float64
		hasAny bool
	}{
		{[2]float64{0, 0.5}, [2]float64{0.25, 0.75}, [2]float64{0.25, 0.5}, true},
		{[2]float64{0, 0.5}, [2]float64{0.5, 1}, [2]float64{}, false},
		{[2]float64{0.2, 0.3}, [2]float64{0, 1}, [2]float64{0.2, 0.3}, true},
	}
	for _, c := range cases {
		got, ok := intersect(rng(c.a), rng(c.b))
		if ok != c.hasAny {
			t.Fatalf("intersect(%v,%v) ok=%v", c.a, c.b, ok)
		}
		if ok && (got.Lo != c.want[0] || got.Hi != c.want[1]) {
			t.Fatalf("intersect(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

// rng builds a hashing.Range from a pair, keeping table-driven cases terse.
func rng(p [2]float64) hashing.Range { return hashing.Range{Lo: p[0], Hi: p[1]} }
