package core

import (
	"math"
	"testing"

	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

func extInstance(t *testing.T) *Instance {
	t.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 5000, Seed: 77})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: PerPath, Agg: BySession, Ports: []uint16{80}, CPUPerPkt: 2, MemPerItem: 600},
		{Name: "scan", Scope: PerIngress, Agg: BySource, CPUPerPkt: 0.3, MemPerItem: 120},
	}
	inst, err := BuildInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestGreedyPlanIsFeasibleButWorseThanLP(t *testing.T) {
	inst := extInstance(t)
	greedy := GreedyPlan(inst)
	lpPlan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage: every unit fully assigned to exactly one node.
	for ui, a := range greedy.Assignments {
		sum := 0.0
		whole := 0
		for _, f := range a.Frac {
			sum += f
			if f == 1 {
				whole++
			}
		}
		if math.Abs(sum-1) > 1e-9 || whole != 1 {
			t.Fatalf("unit %d: greedy fractions %v", ui, a.Frac)
		}
	}
	// The LP can only do better (or equal) on the minimized objective.
	if lpPlan.Objective > greedy.Objective+1e-9 {
		t.Fatalf("LP objective %v worse than greedy %v", lpPlan.Objective, greedy.Objective)
	}
	// On a realistic instance the fractional split should win strictly:
	// this is the ablation the LP's existence rests on.
	if lpPlan.Objective >= greedy.Objective*0.999 {
		t.Fatalf("LP (%v) no better than greedy (%v); ablation signal lost", lpPlan.Objective, greedy.Objective)
	}
	// And the greedy plan's manifests still cover each unit exactly once.
	for ui, u := range inst.Units {
		for _, x := range []float64{0.1, 0.5, 0.9} {
			hits := 0
			for _, node := range u.Nodes {
				if greedy.Manifests[node].Covers(ui, x) {
					hits++
				}
			}
			if hits != 1 {
				t.Fatalf("greedy manifest covers unit %d point %v %d times", ui, x, hits)
			}
		}
	}
}

func TestAggregationLooseBudgetMatchesPlainSolve(t *testing.T) {
	inst := extInstance(t)
	plain, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregationConfig{Collector: 6, BytesPerItem: 64, Budget: 1e18}
	with, err := SolveWithAggregation(inst, 1, agg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.Objective-plain.Objective) > 1e-6*(1+plain.Objective) {
		t.Fatalf("loose budget changed objective: %v vs %v", with.Objective, plain.Objective)
	}
}

func TestAggregationTightBudgetTradesLoad(t *testing.T) {
	inst := extInstance(t)
	agg := AggregationConfig{Collector: 6, BytesPerItem: 64, Budget: 1e18}
	loose, err := SolveWithAggregation(inst, 1, agg)
	if err != nil {
		t.Fatal(err)
	}
	looseCost := AggregationCost(inst, loose, agg)
	if looseCost <= 0 {
		t.Fatal("zero aggregation cost; instance degenerate")
	}
	// The structurally minimal cost assigns every unit to its
	// hop-closest eligible node (ingress-pinned units have no freedom at
	// all); a feasible tight budget must sit above that floor.
	hops := make([]float64, inst.Topo.N())
	for j, path := range inst.Topo.ShortestPaths(agg.Collector) {
		hops[j] = float64(len(path) - 1)
	}
	var minCost float64
	for _, u := range inst.Units {
		best := math.Inf(1)
		for _, node := range u.Nodes {
			best = math.Min(best, agg.BytesPerItem*u.Items*hops[node])
		}
		minCost += best
	}
	if minCost >= looseCost-1e-6 {
		t.Skip("no slack between the minimal and unconstrained communication cost")
	}
	agg.Budget = (minCost + looseCost) / 2
	tight, err := SolveWithAggregation(inst, 1, agg)
	if err != nil {
		t.Fatal(err)
	}
	if got := AggregationCost(inst, tight, agg); got > agg.Budget*(1+1e-6) {
		t.Fatalf("budget violated: cost %v > %v", got, agg.Budget)
	}
	if tight.Objective < loose.Objective-1e-9 {
		t.Fatalf("tight budget lowered the max load (%v < %v)?", tight.Objective, loose.Objective)
	}
	if tight.Objective <= loose.Objective*(1+1e-9) {
		t.Log("note: halving communication was free here; acceptable but unusual")
	}
	// Coverage still complete.
	for ui := range inst.Units {
		sum := 0.0
		for _, f := range tight.Assignments[ui].Frac {
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("unit %d coverage %v under tight budget", ui, sum)
		}
	}
}

func TestAggregationValidation(t *testing.T) {
	inst := extInstance(t)
	if _, err := SolveWithAggregation(inst, 1, AggregationConfig{Collector: -1, BytesPerItem: 1, Budget: 1}); err == nil {
		t.Fatal("expected collector validation error")
	}
	if _, err := SolveWithAggregation(inst, 1, AggregationConfig{Collector: 0, BytesPerItem: 0, Budget: 1}); err == nil {
		t.Fatal("expected digest-size validation error")
	}
	if _, err := SolveWithAggregation(inst, 0, AggregationConfig{Collector: 0, BytesPerItem: 1, Budget: 1}); err == nil {
		t.Fatal("expected redundancy validation error")
	}
	// An absurdly tight budget must report infeasibility cleanly.
	if _, err := SolveWithAggregation(inst, 1, AggregationConfig{Collector: 0, BytesPerItem: 64, Budget: 1e-9}); err == nil {
		t.Fatal("expected infeasibility for near-zero budget")
	}
}

func TestCoverageUnderFailureEdgeCases(t *testing.T) {
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 2000, Seed: 77})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	inst, err := BuildInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Empty failure sets — nil and zero-length — mean full coverage.
	for _, failed := range [][]int{nil, {}} {
		worst, avg := CoverageUnderFailure(plan, failed)
		if worst < 0.999 || avg < 0.999 {
			t.Fatalf("failed=%v: worst=%v avg=%v, want full coverage", failed, worst, avg)
		}
	}

	// All nodes failed: nothing is analyzed anywhere.
	all := make([]int, topo.N())
	for j := range all {
		all[j] = j
	}
	if worst, avg := CoverageUnderFailure(plan, all); worst != 0 || avg != 0 {
		t.Fatalf("all nodes failed: worst=%v avg=%v, want 0, 0", worst, avg)
	}

	// Duplicate node IDs behave exactly like the deduplicated set.
	var dupTarget int
	for j := 0; j < topo.N(); j++ {
		if w, _ := CoverageUnderFailure(plan, []int{j}); w < 0.999 {
			dupTarget = j
			break
		}
	}
	w1, a1 := CoverageUnderFailure(plan, []int{dupTarget})
	w2, a2 := CoverageUnderFailure(plan, []int{dupTarget, dupTarget, dupTarget})
	if w1 != w2 || a1 != a2 {
		t.Fatalf("duplicates changed the result: (%v, %v) vs (%v, %v)", w1, a1, w2, a2)
	}
}

func TestRedundancySurvivesSingleNodeFailure(t *testing.T) {
	// Path-scoped classes so r=2 is feasible.
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 3000, Seed: 61})
	classes := []Class{
		{Name: "signature", Scope: PerPath, Agg: BySession, CPUPerPkt: 1, MemPerItem: 400},
	}
	inst, err := BuildInstance(topo, classes, sessions, UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Solve(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(inst, 2)
	if err != nil {
		t.Fatal(err)
	}

	// No failures: both plans cover fully.
	if w, _ := CoverageUnderFailure(r2, nil); w < 0.999 {
		t.Fatalf("r=2 coverage without failures = %v", w)
	}

	// Any single node failure: the r=2 plan keeps complete coverage of
	// every unit; the r=1 plan loses some.
	r1Lost := false
	for j := 0; j < topo.N(); j++ {
		w2, _ := CoverageUnderFailure(r2, []int{j})
		if w2 < 0.999 {
			t.Fatalf("r=2 plan lost coverage (%.4f) when node %d failed", w2, j)
		}
		if w1, _ := CoverageUnderFailure(r1, []int{j}); w1 < 0.999 {
			r1Lost = true
		}
	}
	if !r1Lost {
		t.Fatal("r=1 plan never lost coverage under single failures; scenario vacuous")
	}

	// Two failures can defeat r=2 on two-node paths.
	worstTwo := 1.0
	for a := 0; a < topo.N(); a++ {
		for b := a + 1; b < topo.N(); b++ {
			w, _ := CoverageUnderFailure(r2, []int{a, b})
			if w < worstTwo {
				worstTwo = w
			}
		}
	}
	if worstTwo >= 0.999 {
		t.Fatal("r=2 plan survived all double failures; topology should not allow that")
	}
}
