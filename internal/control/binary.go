package control

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Compact binary wire encoding, negotiated per request alongside the
// golden JSON one (request field "enc":"bin", protocol v2). The layout is
// varint-based: small integers (node ids, epochs, counts) cost one byte,
// range bounds are exact 8-byte float bit patterns, and none of JSON's
// field-name or digit overhead is paid. A binary response is framed as a
// 4-byte big-endian length followed by the payload; payloads are far below
// 2^24 bytes, so the first frame byte is always 0x00 — which is how an
// agent that asked for binary recognizes a legacy JSON error line ('{')
// from a controller that predates the encoding.

// binVersion is the binary payload version, bumped only on layout breaks.
const binVersion = 2

// Binary response kinds.
const (
	binKindEpoch byte = iota // epoch only (up-to-date probe answer)
	binKindManifest
	binKindDelta
	binKindErr
)

// maxBinFrame bounds a binary response frame read on the agent side, the
// same defensive cap the controller applies to request lines.
const maxBinFrame = 16 << 20

var errBinTruncated = errors.New("control: truncated binary payload")

// bwriter accumulates a binary payload.
type bwriter struct{ b []byte }

func (w *bwriter) byte(c byte)      { w.b = append(w.b, c) }
func (w *bwriter) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *bwriter) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *bwriter) f64(f float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(f))
}
func (w *bwriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// breader consumes a binary payload, latching the first error.
type breader struct {
	b   []byte
	off int
	err error
}

func (r *breader) fail() {
	if r.err == nil {
		r.err = errBinTruncated
	}
}

func (r *breader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.err != nil || r.off+int(n) > len(r.b) || n > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count reads a length prefix and sanity-bounds it against the remaining
// payload so a corrupt prefix cannot drive a huge allocation.
func (r *breader) count() int {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)-r.off) {
		r.fail()
	}
	return int(n)
}

func appendAssignments(w *bwriter, as []WireAssignment) {
	w.uvarint(uint64(len(as)))
	for _, a := range as {
		w.varint(int64(a.Class))
		w.varint(int64(a.Unit[0]))
		w.varint(int64(a.Unit[1]))
		w.uvarint(uint64(len(a.Ranges)))
		for _, rg := range a.Ranges {
			w.f64(rg.Lo)
			w.f64(rg.Hi)
		}
	}
}

func readAssignments(r *breader) []WireAssignment {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	as := make([]WireAssignment, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		a := WireAssignment{Class: int(r.varint())}
		a.Unit[0] = int(r.varint())
		a.Unit[1] = int(r.varint())
		nr := r.count()
		for j := 0; j < nr && r.err == nil; j++ {
			a.Ranges = append(a.Ranges, WireRange{Lo: r.f64(), Hi: r.f64()})
		}
		as = append(as, a)
	}
	return as
}

func appendTrace(w *bwriter, wt *WireTrace) {
	if wt == nil {
		w.byte(0)
		return
	}
	w.byte(1)
	w.str(wt.Trace)
	w.str(wt.Span)
}

func readTrace(r *breader) *WireTrace {
	if r.byte() == 0 {
		return nil
	}
	return &WireTrace{Trace: r.str(), Span: r.str()}
}

// AppendManifestBinary appends the compact binary form of a manifest.
func AppendManifestBinary(dst []byte, m *Manifest) []byte {
	w := &bwriter{b: dst}
	w.varint(int64(m.Node))
	w.uvarint(m.Epoch)
	w.uvarint(uint64(m.HashKey))
	w.uvarint(uint64(len(m.Classes)))
	for _, c := range m.Classes {
		w.str(c.Name)
		w.varint(int64(c.Scope))
		w.varint(int64(c.Agg))
		w.uvarint(uint64(len(c.Ports)))
		for _, p := range c.Ports {
			w.uvarint(uint64(p))
		}
		w.byte(c.Transport)
	}
	appendAssignments(w, m.Assignments)
	appendAssignments(w, m.Shed)
	appendTrace(w, m.Trace)
	return w.b
}

// DecodeManifestBinary parses AppendManifestBinary's output.
func DecodeManifestBinary(b []byte) (*Manifest, error) {
	r := &breader{b: b}
	m := &Manifest{
		Node:    int(r.varint()),
		Epoch:   r.uvarint(),
		HashKey: uint32(r.uvarint()),
	}
	nc := r.count()
	for i := 0; i < nc && r.err == nil; i++ {
		c := WireClass{Name: r.str(), Scope: int(r.varint()), Agg: int(r.varint())}
		np := r.count()
		for j := 0; j < np && r.err == nil; j++ {
			c.Ports = append(c.Ports, uint16(r.uvarint()))
		}
		c.Transport = r.byte()
		m.Classes = append(m.Classes, c)
	}
	m.Assignments = readAssignments(r)
	m.Shed = readAssignments(r)
	m.Trace = readTrace(r)
	if r.err != nil {
		return nil, fmt.Errorf("control: decode binary manifest: %w", r.err)
	}
	return m, nil
}

// AppendDeltaBinary appends the compact binary form of a delta.
func AppendDeltaBinary(dst []byte, d *WireDelta) []byte {
	w := &bwriter{b: dst}
	w.varint(int64(d.Node))
	w.uvarint(d.BaseEpoch)
	w.uvarint(d.Epoch)
	appendAssignments(w, d.Added)
	appendAssignments(w, d.Removed)
	if d.ShedChanged {
		w.byte(1)
		appendAssignments(w, d.Shed)
	} else {
		w.byte(0)
	}
	appendTrace(w, d.Trace)
	return w.b
}

// DecodeDeltaBinary parses AppendDeltaBinary's output.
func DecodeDeltaBinary(b []byte) (*WireDelta, error) {
	r := &breader{b: b}
	d := &WireDelta{
		Node:      int(r.varint()),
		BaseEpoch: r.uvarint(),
		Epoch:     r.uvarint(),
	}
	d.Added = readAssignments(r)
	d.Removed = readAssignments(r)
	if r.byte() == 1 {
		d.ShedChanged = true
		d.Shed = readAssignments(r)
	}
	d.Trace = readTrace(r)
	if r.err != nil {
		return nil, fmt.Errorf("control: decode binary delta: %w", r.err)
	}
	return d, nil
}

// encodeBinaryResponse renders a response as a binary payload (without the
// length frame).
func encodeBinaryResponse(resp *response) []byte {
	w := &bwriter{}
	w.byte(binVersion)
	switch {
	case resp.Err != "":
		w.byte(binKindErr)
		w.uvarint(resp.Epoch)
		w.str(resp.Err)
	case resp.Manifest != nil:
		w.byte(binKindManifest)
		w.uvarint(resp.Epoch)
		w.b = AppendManifestBinary(w.b, resp.Manifest)
	case resp.Delta != nil:
		w.byte(binKindDelta)
		w.uvarint(resp.Epoch)
		w.b = AppendDeltaBinary(w.b, resp.Delta)
	default:
		w.byte(binKindEpoch)
		w.uvarint(resp.Epoch)
	}
	return w.b
}

// decodeBinaryResponse parses a binary payload into the response shape the
// JSON path produces, so everything above the codec is encoding-agnostic.
func decodeBinaryResponse(b []byte) (*response, error) {
	r := &breader{b: b}
	if v := r.byte(); r.err == nil && v != binVersion {
		return nil, fmt.Errorf("control: binary payload version %d, want %d", v, binVersion)
	}
	kind := r.byte()
	resp := &response{V: ProtocolV2, Epoch: r.uvarint()}
	if r.err != nil {
		return nil, fmt.Errorf("control: decode binary response: %w", r.err)
	}
	body := r.b[r.off:]
	switch kind {
	case binKindEpoch:
	case binKindErr:
		resp.Err = r.str()
		if r.err != nil {
			return nil, fmt.Errorf("control: decode binary response: %w", r.err)
		}
	case binKindManifest:
		m, err := DecodeManifestBinary(body)
		if err != nil {
			return nil, err
		}
		resp.Manifest = m
	case binKindDelta:
		d, err := DecodeDeltaBinary(body)
		if err != nil {
			return nil, err
		}
		resp.Delta = d
	default:
		return nil, fmt.Errorf("control: unknown binary response kind %d", kind)
	}
	return resp, nil
}

// frameBinary wraps a payload in the 4-byte big-endian length frame.
func frameBinary(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}
