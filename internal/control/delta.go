package control

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"nwdeploy/internal/hashing"
)

// WireDelta is one node's manifest change between two configuration
// epochs: only the (class, unit) ranges that were added or removed, plus a
// shed replacement when the governor state moved. Applying it to the
// manifest of BaseEpoch yields a manifest whose per-packet verdicts are
// identical to a full fetch of Epoch — the O(changed-ranges) wire form the
// hierarchical control plane ships instead of full manifests.
//
// A delta never carries the class table or the hash key: when either
// changes between the epochs, the controller refuses to diff and serves a
// full manifest instead (the fallback path agents also take on an epoch
// gap or protocol-version mismatch).
type WireDelta struct {
	Node      int    `json:"node"`
	BaseEpoch uint64 `json:"base_epoch"`
	Epoch     uint64 `json:"epoch"`
	// Added and Removed list range edits per (class, unit) in canonical
	// (class, unit-key) order. A point x moves into the assignment iff it
	// is in Added and out iff it is in Removed; the two are disjoint.
	Added   []WireAssignment `json:"added,omitempty"`
	Removed []WireAssignment `json:"removed,omitempty"`
	// ShedChanged marks a shed-state transition; Shed is then the complete
	// replacement (possibly empty: the governor restored everything).
	// Sheds are tiny and churn atomically with governor decisions, so a
	// replacement costs less than diffing them would save.
	ShedChanged bool             `json:"shed_changed,omitempty"`
	Shed        []WireAssignment `json:"shed,omitempty"`
	// Trace is the publish context of the target epoch, exactly as a full
	// manifest would carry it.
	Trace *WireTrace `json:"trace,omitempty"`
}

// ErrDeltaGap reports that a delta's base epoch does not match the
// manifest it was applied to — the agent must fall back to a full fetch.
var ErrDeltaGap = errors.New("control: delta base epoch does not match installed manifest")

// rangesByKey folds an assignment slice into per-key range sets. Duplicate
// keys concatenate (manifests built by ManifestFromPlan never produce
// them, but hand-built ones may).
func rangesByKey(as []WireAssignment) map[akey]hashing.RangeSet {
	m := make(map[akey]hashing.RangeSet, len(as))
	for _, a := range as {
		k := akey{a.Class, int32(a.Unit[0]), int32(a.Unit[1])}
		rs := m[k]
		for _, r := range a.Ranges {
			if r.Hi > r.Lo {
				rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
			}
		}
		m[k] = rs
	}
	return m
}

// sortedKeys returns the union of both maps' keys in canonical order, so
// diff output is deterministic however the manifests' slices were ordered.
func sortedKeys(a, b map[akey]hashing.RangeSet) []akey {
	keys := make([]akey, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// appendAssignment converts one key's range set to wire form and appends
// it, dropping empty entries. Ranges are emitted Lo-ascending.
func appendAssignment(out []WireAssignment, k akey, rs hashing.RangeSet) []WireAssignment {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	wa := WireAssignment{Class: k.class, Unit: [2]int{int(k.k0), int(k.k1)}}
	for _, r := range rs {
		if r.Width() > 0 {
			wa.Ranges = append(wa.Ranges, WireRange{Lo: r.Lo, Hi: r.Hi})
		}
	}
	if len(wa.Ranges) == 0 {
		return out
	}
	return append(out, wa)
}

// DiffManifests computes the delta that rewrites old into new. It returns
// (nil, false) when the pair cannot be expressed as a delta — different
// nodes, a hash-key rotation, or a changed class table — in which case the
// caller must ship a full manifest. All range boundaries in the result are
// copies of boundaries already present in old or new (set subtraction
// introduces no new float values), so delta application is exact.
func DiffManifests(old, new *Manifest) (*WireDelta, bool) {
	if old == nil || new == nil || old.Node != new.Node || old.HashKey != new.HashKey {
		return nil, false
	}
	if !reflect.DeepEqual(old.Classes, new.Classes) {
		return nil, false
	}
	d := &WireDelta{Node: new.Node, BaseEpoch: old.Epoch, Epoch: new.Epoch, Trace: new.Trace}
	oldR, newR := rangesByKey(old.Assignments), rangesByKey(new.Assignments)
	for _, k := range sortedKeys(oldR, newR) {
		o, n := oldR[k], newR[k]
		if added := n.Subtract(o); len(added) > 0 {
			d.Added = appendAssignment(d.Added, k, added)
		}
		if removed := o.Subtract(n); len(removed) > 0 {
			d.Removed = appendAssignment(d.Removed, k, removed)
		}
	}
	if !reflect.DeepEqual(old.Shed, new.Shed) {
		d.ShedChanged = true
		d.Shed = new.Shed
	}
	return d, true
}

// Empty reports whether applying the delta changes anything beyond the
// epoch stamp.
func (d *WireDelta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && !d.ShedChanged
}

// ApplyDelta rewrites base (the manifest of d.BaseEpoch) into the manifest
// of d.Epoch. base is not mutated. The result's assignments are in
// canonical (class, unit-key) order with Lo-ascending ranges; its verdict
// behavior under Decider equals a full fetch of the target epoch exactly,
// because every boundary value is copied, never recomputed.
func ApplyDelta(base *Manifest, d *WireDelta) (*Manifest, error) {
	if base == nil {
		return nil, errors.New("control: applying delta to nil manifest")
	}
	if base.Node != d.Node {
		return nil, fmt.Errorf("control: delta for node %d applied to node %d", d.Node, base.Node)
	}
	if base.Epoch != d.BaseEpoch {
		return nil, fmt.Errorf("%w (have %d, delta base %d)", ErrDeltaGap, base.Epoch, d.BaseEpoch)
	}
	out := &Manifest{
		Node:    base.Node,
		Epoch:   d.Epoch,
		HashKey: base.HashKey,
		Classes: base.Classes,
		Shed:    base.Shed,
		Trace:   d.Trace,
	}
	if d.ShedChanged {
		out.Shed = d.Shed
	}
	cur := rangesByKey(base.Assignments)
	removed := rangesByKey(d.Removed)
	added := rangesByKey(d.Added)
	for k, cut := range removed {
		cur[k] = cur[k].Subtract(cut)
	}
	for k, add := range added {
		cur[k] = append(append(hashing.RangeSet(nil), cur[k]...), add...)
	}
	keys := make([]akey, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		out.Assignments = appendAssignment(out.Assignments, k, cur[k])
	}
	return out, nil
}
