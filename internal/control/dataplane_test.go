package control

import (
	"math"
	"math/rand"
	"testing"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/topology"
	"nwdeploy/internal/traffic"
)

// shedManifest builds a manifest for the widest-assignment node of a
// solved plan and sheds the middle half of its widest range, giving the
// width and decision tests something non-trivial in both sections.
func shedManifest(t *testing.T) *Manifest {
	t.Helper()
	plan, _ := solvedPlan(t, 11)
	node, unit := -1, -1
	var cut hashing.Range
	for j := range plan.Manifests {
		for ui, rs := range plan.Manifests[j].Ranges {
			for _, r := range rs {
				if r.Width() > 0.2 {
					node, unit = j, ui
					q := r.Width() / 4
					cut = hashing.Range{Lo: r.Lo + q, Hi: r.Hi - q}
				}
			}
		}
	}
	if node < 0 {
		t.Fatal("no assignment wide enough to shed")
	}
	m, err := ManifestFromPlan(plan, node, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	m.Shed = ShedFromRanges(plan, map[int]hashing.RangeSet{unit: {cut}})
	return m
}

// Satellite regression for the order-dependent float summation bug:
// AssignedWidth and ShedWidth must be byte-equal however the manifest's
// assignment and shed slices are permuted. The old implementation summed
// in map-iteration order, so the last ULP could vary run to run.
func TestDeciderWidthsPermutationInvariant(t *testing.T) {
	m := shedManifest(t)
	base := NewDecider(m)
	wantAssigned := math.Float64bits(base.AssignedWidth())
	wantShed := math.Float64bits(base.ShedWidth())
	if wantAssigned == 0 {
		t.Fatal("degenerate manifest: assigned width 0")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		p := &Manifest{
			Node: m.Node, Epoch: m.Epoch, HashKey: m.HashKey, Classes: m.Classes,
			Assignments: append([]WireAssignment(nil), m.Assignments...),
			Shed:        append([]WireAssignment(nil), m.Shed...),
		}
		rng.Shuffle(len(p.Assignments), func(i, j int) {
			p.Assignments[i], p.Assignments[j] = p.Assignments[j], p.Assignments[i]
		})
		rng.Shuffle(len(p.Shed), func(i, j int) {
			p.Shed[i], p.Shed[j] = p.Shed[j], p.Shed[i]
		})
		d := NewDecider(p)
		if got := math.Float64bits(d.AssignedWidth()); got != wantAssigned {
			t.Fatalf("trial %d: AssignedWidth bits %x != %x under permutation", trial, got, wantAssigned)
		}
		if got := math.Float64bits(d.ShedWidth()); got != wantShed {
			t.Fatalf("trial %d: ShedWidth bits %x != %x under permutation", trial, got, wantShed)
		}
	}
}

// DecideAll is a pure batching of ShouldAnalyze: the verdicts must agree
// class for class, on manifests with and without a shed section.
func TestDecideAllMatchesShouldAnalyze(t *testing.T) {
	plan, sessions := solvedPlan(t, 12)
	for node := range plan.Manifests {
		m, err := ManifestFromPlan(plan, node, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecider(m)
		out := make([]bool, len(m.Classes))
		for _, s := range sessions[:800] {
			d.DecideAll(s, out)
			for ci := range m.Classes {
				if want := d.ShouldAnalyze(ci, s); out[ci] != want {
					t.Fatalf("node %d class %d session %v: DecideAll %v, ShouldAnalyze %v",
						node, ci, s.Tuple, out[ci], want)
				}
			}
		}
	}
	// With a shed section, and with an oversized out slice (the tail must
	// be cleared, not left stale).
	m := shedManifest(t)
	d := NewDecider(m)
	_, sessions2 := solvedPlan(t, 13)
	wide := make([]bool, len(m.Classes)+3)
	for i := range wide {
		wide[i] = true
	}
	for _, s := range sessions2[:400] {
		d.DecideAll(s, wide)
		for ci := range m.Classes {
			if want := d.ShouldAnalyze(ci, s); wide[ci] != want {
				t.Fatalf("shed manifest class %d: DecideAll %v, ShouldAnalyze %v", ci, wide[ci], want)
			}
		}
		for i := len(m.Classes); i < len(wide); i++ {
			if wide[i] {
				t.Fatalf("DecideAll left stale verdict beyond class count at %d", i)
			}
		}
		for i := range wide {
			wide[i] = true
		}
	}
}

// DecideMask is the bit-packed form of DecideAll: bit ci of the mask must
// equal DecideAll's out[ci] on every session, across all nodes' manifests
// and with a shed section present.
func TestDecideMaskMatchesDecideAll(t *testing.T) {
	check := func(t *testing.T, m *Manifest, sessions []traffic.Session) {
		t.Helper()
		d := NewDecider(m)
		out := make([]bool, len(m.Classes))
		for i := range sessions {
			mask, ok := d.DecideMask(&sessions[i])
			if !ok {
				t.Fatal("mask path unavailable on a <=64-class manifest")
			}
			d.DecideAll(sessions[i], out)
			for ci := range m.Classes {
				if got := mask&(uint64(1)<<uint(ci)) != 0; got != out[ci] {
					t.Fatalf("node %d class %d session %v: DecideMask %v, DecideAll %v",
						m.Node, ci, sessions[i].Tuple, got, out[ci])
				}
			}
			if extra := mask >> uint(len(m.Classes)); extra != 0 {
				t.Fatalf("DecideMask set bits beyond the class count: %#x", mask)
			}
		}
	}
	plan, sessions := solvedPlan(t, 16)
	for node := range plan.Manifests {
		m, err := ManifestFromPlan(plan, node, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		check(t, m, sessions[:600])
	}
	_, sessions2 := solvedPlan(t, 17)
	check(t, shedManifest(t), sessions2[:600])
}

// The flattened index must agree with the retained pre-index baseline on
// every (class, session) decision — same semantics, different layout.
func TestDeciderMatchesBaseline(t *testing.T) {
	m := shedManifest(t)
	d, b := NewDecider(m), NewBaselineDecider(m)
	_, sessions := solvedPlan(t, 14)
	for _, s := range sessions[:1000] {
		for ci := range m.Classes {
			if got, want := d.ShouldAnalyze(ci, s), b.ShouldAnalyze(ci, s); got != want {
				t.Fatalf("class %d session %v: index %v, baseline %v", ci, s.Tuple, got, want)
			}
		}
	}
}

// Satellite: NewDecider shed-subtraction edge cases, pinned against
// core.ProbeCoverage on a probe grid.
func TestDeciderShedSubtractionEdgeCases(t *testing.T) {
	classes := []WireClass{
		{Name: "a", Scope: int(core.PerIngress), Agg: int(core.BySource)},
		{Name: "b", Scope: int(core.PerIngress), Agg: int(core.BySource)},
		{Name: "c", Scope: int(core.PerIngress), Agg: int(core.BySource)},
	}
	m := &Manifest{
		Node: 0, Epoch: 1, HashKey: 5, Classes: classes,
		Assignments: []WireAssignment{
			// Unit 0: shed exactly equals the assignment — coverage vanishes.
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0.2, Hi: 0.6}}},
			// Unit 1: shed ends exactly at an interior boundary point;
			// [0.5, 0.6) survives and Hi-exclusivity decides 0.5 itself.
			{Class: 1, Unit: [2]int{1, -1}, Ranges: []WireRange{{Lo: 0.2, Hi: 0.6}}},
			// Unit 2: untouched assignment; the shed entry below names a
			// unit with no assignment at all.
			{Class: 2, Unit: [2]int{2, -1}, Ranges: []WireRange{{Lo: 0.1, Hi: 0.3}}},
		},
		Shed: []WireAssignment{
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0.2, Hi: 0.6}}},
			{Class: 1, Unit: [2]int{1, -1}, Ranges: []WireRange{{Lo: 0.2, Hi: 0.5}}},
			{Class: 2, Unit: [2]int{9, -1}, Ranges: []WireRange{{Lo: 0.0, Hi: 1.0}}},
		},
	}
	d := NewDecider(m)

	// Exact-equality shed: nothing left anywhere on the grid.
	for i := 0; i <= 1000; i++ {
		if x := float64(i) / 1000; d.CoversUnit(0, [2]int{0, -1}, x) {
			t.Fatalf("unit fully shed but x=%v still covered", x)
		}
	}

	// Boundary-point shed: 0.5 is outside the shed cut [0.2, 0.5) but
	// inside the surviving assignment [0.5, 0.6); 0.6 stays excluded by
	// the assignment's own Hi.
	key1 := [2]int{1, -1}
	if !d.CoversUnit(1, key1, 0.5) {
		t.Fatal("Hi-exclusive shed boundary 0.5 should stay covered")
	}
	if d.CoversUnit(1, key1, math.Nextafter(0.5, 0)) {
		t.Fatal("point just below 0.5 should be shed")
	}
	if d.CoversUnit(1, key1, 0.6) || d.CoversUnit(1, key1, math.Nextafter(0.6, 1)) {
		t.Fatal("assignment Hi must stay exclusive after shedding")
	}
	if !d.CoversUnit(1, key1, math.Nextafter(0.6, 0)) {
		t.Fatal("point just below the assignment Hi should stay covered")
	}

	// Shed for an unassigned unit: no crash, no effect on real
	// assignments, but counted in ShedWidth as before (the governor never
	// produces such an entry; the decider must still be total).
	if !d.CoversUnit(2, [2]int{2, -1}, 0.2) {
		t.Fatal("unrelated shed entry disturbed an assignment")
	}
	wantShed := (0.6 - 0.2) + (0.5 - 0.2) + 1.0
	if got := d.ShedWidth(); math.Abs(got-wantShed) > 1e-12 {
		t.Fatalf("ShedWidth %v, want %v", got, wantShed)
	}

	// The probe audit must see exactly the surviving widths: unit 0 -> 0,
	// unit 1 -> 0.1, unit 2 -> 0.2. Units map 1:1 onto classes here.
	keys := [][2]int{{0, -1}, {1, -1}, {2, -1}}
	const probes = 10000
	worst, avg := core.ProbeCoverage(3, probes, func(ui int, x float64) bool {
		return d.CoversUnit(ui, keys[ui], x)
	})
	if worst != 0 {
		t.Fatalf("worst coverage %v, want 0 (fully shed unit)", worst)
	}
	if want := (0.0 + 0.1 + 0.2) / 3; math.Abs(avg-want) > 2.0/probes {
		t.Fatalf("avg probe coverage %v, want %v", avg, want)
	}

	// ShouldAnalyze must agree with CoversUnit at the session's own hash
	// point: the two predicates are the data-plane and audit-side views of
	// the same index.
	hasher := hashing.Hasher{Key: m.HashKey}
	for i := 0; i < 500; i++ {
		s := traffic.Session{
			Src: i % 3, Dst: 9,
			Tuple: hashing.FiveTuple{SrcIP: uint32(1000 + i), DstIP: 42, SrcPort: uint16(i), DstPort: 80, Proto: 6},
		}
		for ci := range classes {
			want := d.CoversUnit(ci, [2]int{s.Src, -1}, hasher.Source(s.Tuple))
			if got := d.ShouldAnalyze(ci, s); got != want {
				t.Fatalf("class %d src %d: ShouldAnalyze %v, CoversUnit %v", ci, s.Src, got, want)
			}
		}
	}
}

// The decision path — ShouldAnalyze, DecideAll, CoversUnit — must not
// allocate: it runs per packet.
func TestDeciderDecisionPathAllocFree(t *testing.T) {
	m := shedManifest(t)
	d := NewDecider(m)
	_, sessions := solvedPlan(t, 15)
	sessions = sessions[:64]
	out := make([]bool, len(m.Classes))
	sink := 0
	if n := testing.AllocsPerRun(100, func() {
		for _, s := range sessions {
			for ci := range m.Classes {
				if d.ShouldAnalyze(ci, s) {
					sink++
				}
			}
			d.DecideAll(s, out)
			if m, _ := d.DecideMask(&s); m != 0 {
				sink++
			}
			if d.CoversUnit(0, [2]int{s.Src, -1}, 0.37) {
				sink++
			}
		}
	}); n != 0 {
		t.Fatalf("decision path allocates %v per run, want 0", n)
	}
	_ = sink
}

// BenchmarkDataplaneDecide is the decision-rate microbenchmark behind
// BENCH_dataplane.json: the pre-index baseline, the flattened index, and
// the batched form, in decisions (class verdicts) per benchmark op.
func BenchmarkDataplaneDecide(b *testing.B) {
	plan, sessions := benchPlan(b)
	m, err := ManifestFromPlan(plan, 4, 1, 7)
	if err != nil {
		b.Fatal(err)
	}
	L := len(m.Classes)
	sessions = sessions[:1024]
	b.Run("baseline-map", func(b *testing.B) {
		d := NewBaselineDecider(m)
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			s := sessions[i&1023]
			for ci := 0; ci < L; ci++ {
				if d.ShouldAnalyze(ci, s) {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("flat-index", func(b *testing.B) {
		d := NewDecider(m)
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			s := sessions[i&1023]
			for ci := 0; ci < L; ci++ {
				if d.ShouldAnalyze(ci, s) {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("flat-index-batch", func(b *testing.B) {
		d := NewDecider(m)
		out := make([]bool, L)
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			d.DecideAll(sessions[i&1023], out)
			for _, v := range out {
				if v {
					hits++
				}
			}
		}
		_ = hits
	})
	b.Run("mask", func(b *testing.B) {
		d := NewDecider(m)
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			em, _ := d.DecideMask(&sessions[i&1023])
			sink ^= em
		}
		_ = sink
	})
}

// benchPlan is solvedPlan without the testing.T (benchmarks share it).
func benchPlan(b *testing.B) (*core.Plan, []traffic.Session) {
	b.Helper()
	topo := topology.Internet2()
	tm := traffic.Gravity(topo)
	sessions := traffic.Generate(topo, tm, traffic.GenConfig{Sessions: 2500, Seed: 3})
	classes := []core.Class{
		{Name: "signature", Scope: core.PerPath, Agg: core.BySession, CPUPerPkt: 1, MemPerItem: 400},
		{Name: "http", Scope: core.PerPath, Agg: core.BySession, Ports: []uint16{80}, Transport: 6, CPUPerPkt: 2, MemPerItem: 600},
		{Name: "scan", Scope: core.PerIngress, Agg: core.BySource, CPUPerPkt: 0.3, MemPerItem: 120},
		{Name: "synflood", Scope: core.PerEgress, Agg: core.ByDestination, Transport: 6, CPUPerPkt: 0.2, MemPerItem: 60},
	}
	inst, err := core.BuildInstance(topo, classes, sessions, core.UniformCaps(topo.N(), 1e7, 1e9))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.Solve(inst, 1)
	if err != nil {
		b.Fatal(err)
	}
	return plan, sessions
}
