package control

import (
	"errors"
	"strings"
	"sync"
	"time"
)

// SubscribeMode selects how a subscription keeps the agent's manifest
// current.
type SubscribeMode int

const (
	// ModeOnce performs one unconditional refresh and completes — the
	// redesigned form of the deprecated Sync.
	ModeOnce SubscribeMode = iota
	// ModeIfStale refreshes only when the controller's epoch differs from
	// the installed one, then completes — the redesigned SyncIfStale. With
	// Deltas enabled the staleness probe and the fetch collapse into one
	// round trip: the delta request states the held epoch, and an
	// up-to-date agent gets a bodyless answer.
	ModeIfStale
	// ModeWatch runs a background poll loop at Interval until stopped —
	// the redesigned Watch. Each installed generation is delivered through
	// OnUpdate and the Updates channel; transient errors retry next tick.
	ModeWatch
)

// Encoding selects the wire encoding of v2 responses.
type Encoding int

const (
	// EncodingJSON is the golden JSON line encoding (the default, and the
	// only one v1 controllers speak).
	EncodingJSON Encoding = iota
	// EncodingBinary negotiates the compact binary response framing. If
	// the controller predates it, the agent transparently downgrades.
	EncodingBinary
)

// SubscribeOptions configures Subscribe. The zero value is a one-shot
// full-manifest JSON fetch, wire-compatible with any controller.
type SubscribeOptions struct {
	// Mode is the refresh discipline (default ModeOnce).
	Mode SubscribeMode
	// Interval is the ModeWatch poll cadence (0 selects 1s).
	Interval time.Duration
	// Stop, when non-nil, ends a ModeWatch subscription when closed, in
	// addition to Subscription.Close.
	Stop <-chan struct{}
	// OnUpdate, when non-nil, is called synchronously (from the caller in
	// one-shot modes, from the poll goroutine in ModeWatch) for every
	// installed generation.
	OnUpdate func(Update)
	// Deltas negotiates protocol v2: refreshes state the held epoch and
	// receive only changed ranges, with automatic full-fetch fallback on
	// epoch gaps and transparent downgrade against v1 controllers.
	Deltas bool
	// Encoding selects the v2 response encoding (ignored for v1
	// exchanges).
	Encoding Encoding
	// Buffer is the Updates channel capacity (0 selects 4).
	Buffer int
}

// Update describes one installed manifest generation.
type Update struct {
	// Epoch is the generation now enforced.
	Epoch uint64
	// Changed reports whether this sync installed a new generation (a
	// ModeIfStale probe that found the agent current reports false).
	Changed bool
	// Full distinguishes a full-manifest install from an applied delta.
	Full bool
	// WireBytes is the response payload size — the per-sync wire cost the
	// control-plane benchmark sums into bytes/epoch.
	WireBytes int
}

// Subscription is a handle on a Subscribe call. One-shot modes complete
// before Subscribe returns; ModeWatch runs until Close (or the options'
// Stop channel) and joins the poll goroutine, so a closed subscription
// never leaks it.
type Subscription struct {
	agent *Agent
	opts  SubscribeOptions

	updates chan Update
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once

	mu   sync.Mutex
	last Update
	err  error
}

// Updates delivers installed generations (only those that changed). The
// channel is closed when the subscription completes; slow consumers drop
// intermediate updates rather than stall the poll loop (the latest state
// is always observable via the agent's Decider).
func (s *Subscription) Updates() <-chan Update { return s.updates }

// Done is closed when the subscription has fully completed, poll
// goroutine included.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Last returns the most recent sync outcome.
func (s *Subscription) Last() Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Err returns the most recent sync error (nil after a clean sync).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops a ModeWatch subscription and blocks until its poll
// goroutine has exited; on one-shot subscriptions it is a no-op. Close is
// idempotent and safe to call concurrently.
func (s *Subscription) Close() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Subscription) record(u Update, err error) {
	s.mu.Lock()
	s.last, s.err = u, err
	s.mu.Unlock()
}

// Subscribe is the agent's unified refresh surface, replacing the
// deprecated Sync/SyncIfStale/Watch trio. One-shot modes (ModeOnce,
// ModeIfStale) perform their sync before returning, and the returned
// subscription is already complete; ModeWatch returns immediately and
// polls in the background. The returned error is the one-shot sync error;
// watch-mode errors surface per tick via Err and retry.
func (a *Agent) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 4
	}
	s := &Subscription{
		agent:   a,
		opts:    opts,
		updates: make(chan Update, opts.Buffer),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	switch opts.Mode {
	case ModeWatch:
		go s.watch()
		return s, nil
	default:
		defer close(s.done)
		defer close(s.updates)
		u, err := s.syncTick()
		if err != nil {
			return s, err
		}
		s.deliver(u)
		return s, nil
	}
}

// deliver publishes a changed update to the callback and channel.
func (s *Subscription) deliver(u Update) {
	if !u.Changed {
		return
	}
	if s.opts.OnUpdate != nil {
		s.opts.OnUpdate(u)
	}
	select {
	case s.updates <- u:
	default: // consumer lagging; state remains observable via Decider
	}
}

// watch is the ModeWatch poll loop. The ticker is always stopped and the
// channels always closed on exit, whichever stop signal fired — the
// goroutine-lifecycle contract TestWatchStopsPollGoroutine pins.
func (s *Subscription) watch() {
	defer close(s.done)
	defer close(s.updates)
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.opts.Stop:
			return
		case <-ticker.C:
			u, err := s.syncTick()
			s.record(u, err)
			if err == nil {
				s.deliver(u)
			}
		}
	}
}

// syncTick performs one refresh according to the subscription's options.
func (s *Subscription) syncTick() (Update, error) {
	u, err := s.agent.syncOnce(s.opts)
	s.record(u, err)
	return u, err
}

// syncOnce performs one refresh: a delta exchange when negotiated and
// possible, otherwise a full fetch. ModeIfStale without deltas probes the
// epoch first, preserving the deprecated SyncIfStale's exact wire
// behavior.
func (a *Agent) syncOnce(opts SubscribeOptions) (Update, error) {
	useDeltas := opts.Deltas && a.protoState() != protoLegacy
	if !useDeltas && opts.Mode == ModeIfStale {
		remote, err := a.RemoteEpoch()
		if err != nil {
			return Update{}, err
		}
		if d := a.Decider(); d != nil && d.Epoch() == remote {
			return Update{Epoch: remote}, nil
		}
	}
	if useDeltas {
		u, err := a.syncDelta(opts)
		if err == nil || !isVersionMismatch(err) {
			return u, err
		}
		// The controller predates v2: downgrade permanently and fall
		// through to the legacy full fetch.
		a.setProtoState(protoLegacy)
		a.downgradeC.Add(1)
	}
	return a.syncFull(opts)
}

// syncFull fetches and installs the node's complete manifest.
func (a *Agent) syncFull(opts SubscribeOptions) (Update, error) {
	req := request{Op: "manifest", Node: a.node}
	if opts.Deltas && a.protoState() != protoLegacy {
		req.V = ProtocolV2
		if opts.Encoding == EncodingBinary {
			req.Enc = EncBin
		}
	}
	resp, n, err := a.roundTrip(req)
	if err != nil {
		return Update{WireBytes: n}, err
	}
	if resp.Manifest == nil {
		return Update{Epoch: resp.Epoch, WireBytes: n}, errors.New("control: empty manifest in response")
	}
	if resp.V >= ProtocolV2 {
		a.setProtoState(protoV2)
	}
	a.install(resp.Manifest)
	a.fullC.Add(1)
	return Update{Epoch: resp.Manifest.Epoch, Changed: true, Full: true, WireBytes: n}, nil
}

// syncDelta runs one v2 delta exchange: state the held epoch, apply
// whatever comes back. A manifest answer is the controller's own fallback
// (epoch gap, class change); a bodyless answer means up to date. An apply
// failure (gap the controller missed) retries as a full fetch.
func (a *Agent) syncDelta(opts SubscribeOptions) (Update, error) {
	req := request{Op: "delta", Node: a.node, V: ProtocolV2}
	if opts.Encoding == EncodingBinary {
		req.Enc = EncBin
	}
	base := a.Manifest()
	if base != nil {
		req.Have = base.Epoch
	}
	resp, n, err := a.roundTrip(req)
	if err != nil {
		return Update{WireBytes: n}, err
	}
	a.setProtoState(protoV2)
	switch {
	case resp.Delta != nil:
		m, err := ApplyDelta(base, resp.Delta)
		if err != nil {
			// Base mismatch: resynchronize with a full fetch.
			u, ferr := a.syncFull(opts)
			u.WireBytes += n
			return u, ferr
		}
		a.install(m)
		a.deltaC.Add(1)
		return Update{Epoch: m.Epoch, Changed: true, WireBytes: n}, nil
	case resp.Manifest != nil:
		a.install(resp.Manifest)
		a.fullC.Add(1)
		return Update{Epoch: resp.Manifest.Epoch, Changed: true, Full: true, WireBytes: n}, nil
	default:
		// Up to date.
		return Update{Epoch: resp.Epoch, WireBytes: n}, nil
	}
}

func (a *Agent) protoState() int32 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.proto
}

func (a *Agent) setProtoState(p int32) {
	a.mu.Lock()
	if p > a.proto || a.proto == protoUnknown {
		a.proto = p
	}
	a.mu.Unlock()
}

// isVersionMismatch recognizes a v1 controller's rejection of a v2-only
// op — the signal to downgrade to full-manifest fetches.
func isVersionMismatch(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown op")
}

// Sync fetches the node's manifest unconditionally and installs a fresh
// decider, returning the manifest epoch.
//
// Deprecated: use Subscribe with ModeOnce, which also exposes delta and
// binary-encoding negotiation. Sync remains as a thin wrapper and keeps
// its exact historical wire behavior (one full-manifest JSON exchange).
func (a *Agent) Sync() (uint64, error) {
	sub, err := a.Subscribe(SubscribeOptions{Mode: ModeOnce})
	if err != nil {
		return 0, err
	}
	return sub.Last().Epoch, nil
}

// SyncIfStale fetches only when the controller's epoch differs from the
// locally installed one, reporting whether a fetch happened.
//
// Deprecated: use Subscribe with ModeIfStale. The wrapper preserves the
// historical two-round-trip probe-then-fetch wire exchange.
func (a *Agent) SyncIfStale() (bool, error) {
	sub, err := a.Subscribe(SubscribeOptions{Mode: ModeIfStale})
	if err != nil {
		return false, err
	}
	return sub.Last().Changed, nil
}

// Watch polls the controller every interval and resyncs whenever the
// configuration epoch changes. Each newly installed epoch is delivered on
// the returned channel; transient fetch errors are retried on the next
// tick. Watch returns when stop is closed, closing the channel. The
// underlying poll goroutine exits as soon as stop is closed — it is never
// leaked, and its ticker is always released (see
// TestWatchStopsPollGoroutine).
//
// Deprecated: use Subscribe with ModeWatch, whose Subscription.Close
// additionally joins the poll goroutine instead of just signaling it.
func (a *Agent) Watch(interval time.Duration, stop <-chan struct{}) <-chan uint64 {
	sub, _ := a.Subscribe(SubscribeOptions{Mode: ModeWatch, Interval: interval, Stop: stop})
	out := make(chan uint64, 4)
	go func() {
		defer close(out)
		for u := range sub.Updates() {
			select {
			case out <- u.Epoch:
			default: // consumer lagging; epoch is observable via Decider
			}
		}
	}()
	return out
}
