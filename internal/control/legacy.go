package control

import (
	"encoding/binary"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// BaselineDecider is the reference per-packet check the flattened-index
// Decider replaced: a map keyed by (class, unit) whose values are the
// heap-allocated RangeSets, scanned linearly per lookup. It is retained
// verbatim so the data-plane benchmark tier (cmd/dataplane,
// BENCH_dataplane.json) can report the decision-rate trajectory against a
// fixed pre-index baseline instead of against a moving target. Production
// paths must use Decider; this type exists only to be measured.
type BaselineDecider struct {
	manifest *Manifest
	hashKey  uint32
	ranges   map[baselineKey]hashing.RangeSet
}

// The baseline also freezes the pre-PR hash path — byte-encode into a
// stack buffer, run the generic Bob block loop — rather than calling the
// Hasher methods, which have since been specialized. Outputs are identical
// (TestHasherMatchesGenericBob); only the constant factor differs, and a
// fixed baseline must keep its own constant factor.

func legacyUnit(h uint32) float64 { return float64(h) / 4294967296.0 }

func legacyEncode(b *[13]byte, ft hashing.FiveTuple) {
	binary.BigEndian.PutUint32(b[0:4], ft.SrcIP)
	binary.BigEndian.PutUint32(b[4:8], ft.DstIP)
	binary.BigEndian.PutUint16(b[8:10], ft.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], ft.DstPort)
	b[12] = ft.Proto
}

func legacyFlow(key uint32, ft hashing.FiveTuple) float64 {
	var b [13]byte
	legacyEncode(&b, ft)
	return legacyUnit(hashing.Bob(b[:], key))
}

func legacySession(key uint32, ft hashing.FiveTuple) float64 {
	if ft.SrcIP > ft.DstIP || (ft.SrcIP == ft.DstIP && ft.SrcPort > ft.DstPort) {
		ft = ft.Reverse()
	}
	return legacyFlow(key, ft)
}

func legacyAddr(key uint32, ip uint32) float64 {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], ip)
	return legacyUnit(hashing.Bob(b[:], key))
}

type baselineKey struct {
	class int
	unit  [2]int
}

// NewBaselineDecider indexes a manifest exactly as the pre-index Decider
// did, shed subtraction included.
func NewBaselineDecider(m *Manifest) *BaselineDecider {
	d := &BaselineDecider{
		manifest: m,
		hashKey:  m.HashKey,
		ranges:   make(map[baselineKey]hashing.RangeSet, len(m.Assignments)),
	}
	shed := make(map[baselineKey]hashing.RangeSet, len(m.Shed))
	for _, a := range m.Shed {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		shed[baselineKey{a.Class, a.Unit}] = rs
	}
	for _, a := range m.Assignments {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		key := baselineKey{a.Class, a.Unit}
		if cut, ok := shed[key]; ok {
			rs = rs.Subtract(cut)
		}
		d.ranges[key] = rs
	}
	return d
}

// ShouldAnalyze is the pre-index form of Decider.ShouldAnalyze.
func (d *BaselineDecider) ShouldAnalyze(class int, s traffic.Session) bool {
	if class < 0 || class >= len(d.manifest.Classes) {
		return false
	}
	c := d.manifest.Classes[class]
	if c.Transport != 0 && s.Tuple.Proto != c.Transport {
		return false
	}
	if len(c.Ports) > 0 {
		ok := false
		for _, p := range c.Ports {
			if s.Tuple.DstPort == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	var key [2]int
	switch core.Scope(c.Scope) {
	case core.PerIngress:
		key = [2]int{s.Src, -1}
	case core.PerEgress:
		key = [2]int{s.Dst, -1}
	default:
		a, b := s.Src, s.Dst
		if a > b {
			a, b = b, a
		}
		key = [2]int{a, b}
	}
	rs, ok := d.ranges[baselineKey{class, key}]
	if !ok {
		return false
	}
	var h float64
	switch core.Aggregation(c.Agg) {
	case core.ByFlow:
		h = legacyFlow(d.hashKey, s.Tuple)
	case core.BySource:
		h = legacyAddr(d.hashKey, s.Tuple.SrcIP)
	case core.ByDestination:
		h = legacyAddr(d.hashKey, s.Tuple.DstIP)
	default:
		h = legacySession(d.hashKey, s.Tuple)
	}
	return rs.Contains(h)
}
