package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"nwdeploy/internal/core"
	"nwdeploy/internal/ledger"
	"nwdeploy/internal/obs"
	"nwdeploy/internal/telemetry"
)

// The protocol is one JSON request line per TCP connection and one
// response — deliberately simple: fetches are periodic (the paper's
// re-optimization cadence is minutes), and a connectionless-style exchange
// avoids any session state to mismanage. Version 1 answers with one JSON
// line carrying a full manifest. Version 2 (the hierarchical control
// plane's protocol) adds the "delta" op — the agent states the epoch it
// holds and receives only the changed ranges — and a negotiated compact
// binary response framing; every v2 request that an old controller cannot
// serve degrades to a v1 exchange, and every v1 request is served exactly
// as before, byte for byte.

// ProtocolV2 is the versioned wire protocol introduced with the delta
// control plane. Requests carry it in "v"; responses echo it so agents can
// confirm the handshake. Version 0/absent is the original full-manifest
// JSON protocol.
const ProtocolV2 = 2

// EncBin is the request "enc" value selecting the compact binary response
// framing (v2 only). The empty value selects golden JSON.
const EncBin = "bin"

// request is the agent->controller message.
type request struct {
	Op   string `json:"op"`   // "epoch" | "manifest" | "delta" (v2)
	Node int    `json:"node"` // for "manifest" and "delta"
	// V is the sender's protocol version (omitted = v1); Enc selects the
	// response encoding ("" = JSON, "bin" = binary frame); Have is the
	// manifest epoch the agent holds, the delta base. All omitempty, so
	// v1 requests keep their historical byte encoding.
	V    int    `json:"v,omitempty"`
	Enc  string `json:"enc,omitempty"`
	Have uint64 `json:"have,omitempty"`
	// Trace is the caller's trace context (nil when untraced); omitempty
	// keeps the base request encoding stable for pre-trace controllers.
	Trace *WireTrace `json:"trace,omitempty"`
	// Stats is the node's piggybacked telemetry self-report (nil when the
	// fleet plane is off). Omitempty keeps v1 golden request lines
	// byte-stable, and agents suppress it entirely after a sticky legacy
	// downgrade so v1 controllers never see an unknown field grow the
	// request. Controllers that do not know the field ignore it (requests
	// are decoded with plain json.Unmarshal).
	Stats *telemetry.NodeStats `json:"stats,omitempty"`
}

// response is the controller->agent message.
type response struct {
	Epoch    uint64    `json:"epoch"`
	Manifest *Manifest `json:"manifest,omitempty"`
	// V and Delta are the v2 additions: the echoed protocol version and
	// the delta body of a "delta" answer. Omitempty keeps v1 responses
	// byte-identical to the pre-delta wire format.
	V     int        `json:"v,omitempty"`
	Delta *WireDelta `json:"delta,omitempty"`
	Err   string     `json:"err,omitempty"`
}

// ControllerOptions configures a Controller beyond its listen address.
type ControllerOptions struct {
	// HashKey is distributed to agents with each manifest, so the whole
	// deployment samples consistently and adversaries cannot predict
	// range membership without it.
	HashKey uint32
	// Metrics, when non-nil, receives serving observability: per-op
	// request counters, manifest build errors, plan-update counts, and a
	// current-epoch gauge. The registry must be supplied at construction
	// (it is read by the accept loop); nil is the no-op default.
	Metrics *obs.Registry
	// Listener, when non-nil, is served instead of opening a new TCP
	// listener (the addr argument is ignored). The controller takes
	// ownership and closes it on Close. This is the seam fault-injecting
	// wrappers such as chaos.Gate interpose at.
	Listener net.Listener
	// DeltaHistory is how many past configuration generations the
	// controller retains for serving deltas (0 selects 8; negative
	// disables delta serving — every "delta" request falls back to a full
	// manifest). An agent whose held epoch has aged out of the window
	// receives a full manifest, the documented epoch-gap fallback.
	DeltaHistory int
	// ServeNodes, when non-nil, restricts manifest and delta serving to
	// the listed nodes — the region-controller configuration, where each
	// regional tier publishes only its members' manifests and any other
	// node is told to fetch from the global tier.
	ServeNodes []int
	// Ledger, when non-nil, receives a tamper-evident record of every
	// publish: UpdatePlan and PublishShed commit the full post-publish
	// canonical manifest set (off-chain, content-addressed) plus the live
	// shed state under a Merkle root chained to the run's ledger head.
	// Write-only like Metrics: serving behavior is identical with or
	// without it.
	Ledger *ledger.Ledger
	// Fleet, when non-nil, receives every piggybacked NodeStats report
	// carried on incoming requests. Write-only like Metrics and Ledger:
	// ingestion happens before the response is written (so a successful
	// exchange implies the report landed), but never changes what is
	// served.
	Fleet *telemetry.Fleet
}

// generation is one retained configuration snapshot: everything needed to
// rebuild the manifest any node was served at that epoch, so a delta from
// it to the present can be computed on demand. Entries are immutable once
// appended; serve goroutines read them without holding the lock.
type generation struct {
	epoch uint64
	plan  *core.Plan
	shed  map[int][]WireAssignment
	trace *WireTrace
}

// maxRequestLine bounds the one-line request read. Real requests are tens
// of bytes; without a cap, a peer streaming bytes that never include a
// newline would grow the controller's read buffer without bound.
const maxRequestLine = 64 << 10

// Controller serves the current deployment's manifests to node agents.
// Safe for concurrent use; UpdatePlan may be called while agents fetch.
type Controller struct {
	hashKey uint32
	histCap int
	serves  map[int]bool     // nil = serve every node
	ledger  *ledger.Ledger   // nil = no audit chain
	fleet   *telemetry.Fleet // nil = no fleet telemetry

	mu    sync.RWMutex
	plan  *core.Plan
	epoch uint64
	shed  map[int][]WireAssignment // per-node governor shed state
	trace *WireTrace               // context stamped on served manifests
	hist  []generation             // retained generations, oldest first

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// Metric handles resolved at construction; nil-safe no-ops when no
	// registry was configured.
	epochReqC, manifestReqC, badReqC, manifestErrC, planUpdateC, shedUpdateC, tracedReqC *obs.Counter
	deltaReqC, deltaServedC, deltaFullC, statsReqC                                       *obs.Counter
	epochG                                                                               *obs.Gauge
}

// NewController starts a controller listening on addr (e.g.
// "127.0.0.1:0") with the given sampling hash key and no metrics; see
// NewControllerOpts for the full configuration surface.
func NewController(addr string, hashKey uint32) (*Controller, error) {
	return NewControllerOpts(addr, ControllerOptions{HashKey: hashKey})
}

// NewControllerOpts starts a controller listening on addr (e.g.
// "127.0.0.1:0").
func NewControllerOpts(addr string, opts ControllerOptions) (*Controller, error) {
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("control: listen: %w", err)
		}
	}
	histCap := opts.DeltaHistory
	if histCap == 0 {
		histCap = 8
	}
	if histCap < 0 {
		histCap = 0
	}
	var serves map[int]bool
	if opts.ServeNodes != nil {
		serves = make(map[int]bool, len(opts.ServeNodes))
		for _, j := range opts.ServeNodes {
			serves[j] = true
		}
	}
	c := &Controller{
		hashKey: opts.HashKey, histCap: histCap, serves: serves,
		ledger: opts.Ledger, fleet: opts.Fleet,
		ln: ln, closed: make(chan struct{}),

		epochReqC:    opts.Metrics.Counter("control.requests_epoch"),
		manifestReqC: opts.Metrics.Counter("control.requests_manifest"),
		badReqC:      opts.Metrics.Counter("control.requests_bad"),
		manifestErrC: opts.Metrics.Counter("control.manifest_errors"),
		planUpdateC:  opts.Metrics.Counter("control.plan_updates"),
		shedUpdateC:  opts.Metrics.Counter("control.shed_updates"),
		tracedReqC:   opts.Metrics.Counter("control.requests_traced"),
		deltaReqC:    opts.Metrics.Counter("control.requests_delta"),
		statsReqC:    opts.Metrics.Counter("control.requests_stats"),
		deltaServedC: opts.Metrics.Counter("control.deltas_served"),
		deltaFullC:   opts.Metrics.Counter("control.delta_full_fallbacks"),
		epochG:       opts.Metrics.Gauge("control.epoch"),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address agents should dial.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current configuration generation (0 = no plan yet).
func (c *Controller) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// UpdatePlan installs a new deployment plan and bumps the epoch; agents
// polling the epoch will observe the change and re-fetch. Any published
// shed state is cleared: a fresh plan supersedes the emergency degradation
// it was covering for.
func (c *Controller) UpdatePlan(plan *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = plan
	c.shed = nil
	c.epoch++
	c.snapshotLocked()
	c.commitLocked(ledger.RecPublish)
	c.planUpdateC.Add(1)
	c.epochG.Set(float64(c.epoch))
}

// snapshotLocked retains the just-published generation for delta serving,
// aging out the oldest entry past the history cap. Must be called with
// c.mu held after the epoch bump.
func (c *Controller) snapshotLocked() {
	if c.histCap <= 0 {
		return
	}
	shed := make(map[int][]WireAssignment, len(c.shed))
	for j, s := range c.shed {
		shed[j] = s
	}
	c.hist = append(c.hist, generation{epoch: c.epoch, plan: c.plan, shed: shed, trace: c.trace})
	if len(c.hist) > c.histCap {
		c.hist = append([]generation(nil), c.hist[len(c.hist)-c.histCap:]...)
	}
}

// SetTrace installs the trace context stamped on every manifest served
// from now on — callers set it just before UpdatePlan or PublishShed so
// the served generation carries the span of the publish that created it.
// Nil clears it. Serving stays deterministic: the context changes only
// when the (serial) epoch loop publishes, never per-request.
func (c *Controller) SetTrace(wt *WireTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = wt
}

// PublishShed records a node's governor shed state and bumps the epoch so
// agents re-fetch manifests carrying it. An empty shed clears the node's
// entry (the governor restored full responsibility). This is the fallback
// path when a replan misses its deadline: the network learns exactly which
// ranges the overloaded node dropped without waiting for a new plan.
func (c *Controller) PublishShed(node int, shed []WireAssignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(shed) == 0 {
		if _, had := c.shed[node]; !had {
			return // nothing published, nothing to clear: no epoch churn
		}
		delete(c.shed, node)
	} else {
		if c.shed == nil {
			c.shed = make(map[int][]WireAssignment)
		}
		c.shed[node] = shed
	}
	c.epoch++
	c.snapshotLocked()
	c.commitLocked(ledger.RecShed)
	c.shedUpdateC.Add(1)
	c.epochG.Set(float64(c.epoch))
}

// Close stops the listener and waits for in-flight connections.
func (c *Controller) Close() error {
	close(c.closed)
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
			}
			// Transient accept errors: keep serving.
			continue
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

func (c *Controller) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Cap the request-line read: LimitReader makes an overlong line
	// surface as an EOF one byte past the cap instead of an unbounded
	// buffer. A peer that closes mid-line (partial bytes, no newline)
	// lands in the same error path with a short line.
	var req request
	r := bufio.NewReader(io.LimitReader(conn, maxRequestLine+1))
	line, err := r.ReadBytes('\n')
	enc := json.NewEncoder(conn)
	if err != nil {
		if len(line) > maxRequestLine {
			c.badReqC.Add(1)
			_ = enc.Encode(response{Err: "malformed request"})
		} else if len(line) > 0 {
			// Connection closed mid-request; the peer is gone, so no
			// response — but the abandoned bytes still count as bad.
			c.badReqC.Add(1)
		}
		return
	}
	if err := json.Unmarshal(line, &req); err != nil {
		c.badReqC.Add(1)
		_ = enc.Encode(response{Err: "malformed request"})
		return
	}

	// Fold in the piggybacked telemetry report before any response bytes
	// are written: if the agent sees the exchange succeed, its report
	// landed. Write-only — nothing below reads the fleet back.
	if req.Stats != nil {
		c.statsReqC.Add(1)
		c.fleet.Report(*req.Stats)
	}

	c.mu.RLock()
	plan, epoch := c.plan, c.epoch
	shed := c.shed[req.Node]
	wt := c.trace
	hist := c.hist
	c.mu.RUnlock()

	// reply completes the v2 handshake (echoing the protocol version) and
	// honors the negotiated encoding; v1 requests get the historical JSON
	// line byte for byte.
	reply := func(resp response) {
		if req.V >= ProtocolV2 {
			resp.V = ProtocolV2
			if req.Enc == EncBin {
				_, _ = conn.Write(frameBinary(encodeBinaryResponse(&resp)))
				return
			}
		}
		_ = enc.Encode(resp)
	}

	// fullManifest builds the node's current manifest, shared by the
	// "manifest" op and every delta fallback.
	fullManifest := func() (*Manifest, error) {
		m, err := ManifestFromPlan(plan, req.Node, epoch, c.hashKey)
		if err != nil {
			return nil, err
		}
		m.Shed = shed
		m.Trace = wt
		return m, nil
	}

	if req.Trace != nil {
		c.tracedReqC.Add(1)
	}
	if c.serves != nil && (req.Op == "manifest" || req.Op == "delta") && !c.serves[req.Node] {
		c.badReqC.Add(1)
		reply(response{Epoch: epoch, Err: fmt.Sprintf("node %d not served by this controller", req.Node)})
		return
	}
	switch req.Op {
	case "epoch":
		c.epochReqC.Add(1)
		reply(response{Epoch: epoch})
	case "manifest":
		c.manifestReqC.Add(1)
		if plan == nil {
			c.manifestErrC.Add(1)
			reply(response{Epoch: epoch, Err: "no plan installed"})
			return
		}
		m, err := fullManifest()
		if err != nil {
			c.manifestErrC.Add(1)
			reply(response{Epoch: epoch, Err: err.Error()})
			return
		}
		reply(response{Epoch: epoch, Manifest: m})
	case "delta":
		c.deltaReqC.Add(1)
		if req.V < ProtocolV2 {
			c.badReqC.Add(1)
			reply(response{Epoch: epoch, Err: "op delta requires protocol v2"})
			return
		}
		if plan == nil {
			c.manifestErrC.Add(1)
			reply(response{Epoch: epoch, Err: "no plan installed"})
			return
		}
		if req.Have == epoch {
			// Up to date: the delta exchange doubles as the epoch probe.
			reply(response{Epoch: epoch})
			return
		}
		if d := c.deltaFrom(hist, req.Have, req.Node, wt); d != nil {
			c.deltaServedC.Add(1)
			reply(response{Epoch: epoch, Delta: d})
			return
		}
		// Epoch gap (base aged out of history), hash-key or class-table
		// change, or delta serving disabled: full-manifest fallback.
		c.deltaFullC.Add(1)
		m, err := fullManifest()
		if err != nil {
			c.manifestErrC.Add(1)
			reply(response{Epoch: epoch, Err: err.Error()})
			return
		}
		reply(response{Epoch: epoch, Manifest: m})
	default:
		c.badReqC.Add(1)
		reply(response{Epoch: epoch, Err: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

// deltaFrom computes the delta rewriting the manifest the node held at
// epoch have into the current one, or nil when it cannot (base epoch aged
// out of the retained window, class table or hash key changed). hist is an
// immutable snapshot; the current generation is its last entry.
func (c *Controller) deltaFrom(hist []generation, have uint64, node int, wt *WireTrace) *WireDelta {
	if len(hist) == 0 {
		return nil
	}
	var base *generation
	for i := range hist {
		if hist[i].epoch == have {
			base = &hist[i]
			break
		}
	}
	if base == nil {
		return nil
	}
	oldM, err := c.manifestFor(*base, node)
	if err != nil {
		return nil
	}
	newM, err := c.manifestFor(hist[len(hist)-1], node)
	if err != nil {
		return nil
	}
	newM.Trace = wt
	d, ok := DiffManifests(oldM, newM)
	if !ok {
		return nil
	}
	return d
}

// manifestFor rebuilds the manifest a node was served at a retained
// generation.
func (c *Controller) manifestFor(g generation, node int) (*Manifest, error) {
	m, err := ManifestFromPlan(g.plan, node, g.epoch, c.hashKey)
	if err != nil {
		return nil, err
	}
	m.Shed = g.shed[node]
	m.Trace = g.trace
	return m, nil
}

// DialFunc matches net.DialTimeout's shape: the transport seam fault
// injectors (internal/chaos) interpose at.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// AgentOptions configures an Agent beyond its controller address and
// node identity. The zero value reproduces NewAgent's behavior.
type AgentOptions struct {
	// DialTimeout bounds connection establishment (0 selects 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds the whole request/response exchange once
	// connected (0 selects 10s).
	RPCTimeout time.Duration
	// Dial replaces the transport dial (nil selects net.DialTimeout).
	Dial DialFunc
	// Metrics, when non-nil, receives client observability: request,
	// error, and timeout counters. Nil is the no-op default.
	Metrics *obs.Registry
}

// Agent protocol states, latched by the first v2 exchange.
const (
	protoUnknown int32 = iota // no v2 exchange attempted yet
	protoLegacy               // controller rejected v2; full JSON fetches only
	protoV2                   // controller confirmed v2
)

// Agent is a node's client to the controller. It caches the last fetched
// manifest and exposes a Decider for the data path. Refreshing goes
// through Subscribe (or the deprecated Sync/SyncIfStale/Watch wrappers,
// which delegate to it).
type Agent struct {
	addr string
	node int
	opts AgentOptions

	mu       sync.RWMutex
	decider  *Decider
	manifest *Manifest            // the installed manifest: the delta base
	trace    *WireTrace           // context attached to outgoing requests
	stats    *telemetry.NodeStats // telemetry report attached to requests
	proto    int32                // protoUnknown | protoLegacy | protoV2

	reqC, errC, timeoutC      *obs.Counter
	deltaC, fullC, downgradeC *obs.Counter
	rxBytesC                  *obs.Counter
}

// NewAgent creates an agent for node with default timeouts; it holds no
// connection until used. See NewAgentOpts for the full configuration
// surface.
func NewAgent(addr string, node int) *Agent {
	return NewAgentOpts(addr, node, AgentOptions{})
}

// NewAgentOpts creates an agent for node with explicit timeouts, dialer,
// and metrics.
func NewAgentOpts(addr string, node int, opts AgentOptions) *Agent {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 10 * time.Second
	}
	if opts.Dial == nil {
		opts.Dial = net.DialTimeout
	}
	return &Agent{
		addr: addr, node: node, opts: opts,
		reqC:       opts.Metrics.Counter("control.agent_requests"),
		errC:       opts.Metrics.Counter("control.agent_errors"),
		timeoutC:   opts.Metrics.Counter("control.agent_timeouts"),
		deltaC:     opts.Metrics.Counter("control.agent_delta_syncs"),
		fullC:      opts.Metrics.Counter("control.agent_full_syncs"),
		downgradeC: opts.Metrics.Counter("control.agent_downgrades"),
		rxBytesC:   opts.Metrics.Counter("control.agent_rx_bytes"),
	}
}

// SetTrace installs the trace context attached to the agent's subsequent
// requests — the node's fetch span, set per epoch by the cluster runtime.
// Nil clears it; untraced agents send the pre-trace request encoding.
func (a *Agent) SetTrace(wt *WireTrace) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.trace = wt
}

// SetStats installs the telemetry self-report piggybacked on the agent's
// subsequent requests — set once per epoch by the cluster runtime, after
// it has collected the node's end-of-epoch state. Nil clears it. The
// report is suppressed after a sticky legacy downgrade, so v1 request
// lines stay byte-identical to the pre-telemetry encoding.
func (a *Agent) SetStats(s *telemetry.NodeStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = s
}

// roundTrip sends one request and decodes one response, reporting the
// response payload size in bytes (the wire-cost figure the control-plane
// benchmark aggregates).
func (a *Agent) roundTrip(req request) (*response, int, error) {
	a.mu.RLock()
	req.Trace = a.trace
	if a.proto != protoLegacy {
		req.Stats = a.stats
	}
	a.mu.RUnlock()
	a.reqC.Add(1)
	resp, n, err := a.exchange(req)
	a.rxBytesC.Add(int64(n))
	if err != nil {
		a.errC.Add(1)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			a.timeoutC.Add(1)
		}
	}
	return resp, n, err
}

func (a *Agent) exchange(req request) (*response, int, error) {
	conn, err := a.opts.Dial("tcp", a.addr, a.opts.DialTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("control: dial %s: %w", a.addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(a.opts.RPCTimeout))

	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		return nil, 0, fmt.Errorf("control: send: %w", err)
	}
	br := bufio.NewReader(conn)
	if req.V >= ProtocolV2 && req.Enc == EncBin {
		// A binary frame starts with the high length byte, always 0x00;
		// a legacy JSON response (a controller that ignored the enc
		// field) starts with '{'. Peek to disambiguate.
		head, err := br.Peek(1)
		if err != nil {
			return nil, 0, fmt.Errorf("control: decode: %w", err)
		}
		if head[0] == 0 {
			return a.readBinaryResponse(br)
		}
	}
	var resp response
	cr := &countingReader{r: br}
	if err := json.NewDecoder(cr).Decode(&resp); err != nil {
		return nil, cr.n, fmt.Errorf("control: decode: %w", err)
	}
	if resp.Err != "" {
		return &resp, cr.n, errors.New("control: " + resp.Err)
	}
	return &resp, cr.n, nil
}

// readBinaryResponse consumes one length-framed binary response.
func (a *Agent) readBinaryResponse(br *bufio.Reader) (*response, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("control: decode: %w", err)
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > maxBinFrame {
		return nil, 4, fmt.Errorf("control: binary frame of %d bytes exceeds cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 4, fmt.Errorf("control: decode: %w", err)
	}
	resp, err := decodeBinaryResponse(payload)
	if err != nil {
		return nil, 4 + n, err
	}
	if resp.Err != "" {
		return resp, 4 + n, errors.New("control: " + resp.Err)
	}
	return resp, 4 + n, nil
}

// countingReader counts bytes consumed by the JSON decoder.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// RemoteEpoch asks the controller for its current configuration epoch.
func (a *Agent) RemoteEpoch() (uint64, error) {
	resp, _, err := a.roundTrip(request{Op: "epoch"})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// install publishes a fetched manifest to the data path.
func (a *Agent) install(m *Manifest) {
	d := NewDecider(m)
	a.mu.Lock()
	a.decider = d
	a.manifest = m
	a.mu.Unlock()
}

// Decider returns the currently installed decider (nil before the first
// successful subscription sync).
func (a *Agent) Decider() *Decider {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.decider
}

// Manifest returns the currently installed wire manifest (nil before the
// first successful sync) — the base the next delta applies to.
func (a *Agent) Manifest() *Manifest {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.manifest
}
