package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"nwdeploy/internal/core"
	"nwdeploy/internal/obs"
)

// The protocol is one JSON request line and one JSON response line per TCP
// connection — deliberately simple: manifests are small, fetches are
// periodic (the paper's re-optimization cadence is minutes), and a
// connectionless-style exchange avoids any session state to mismanage.

// request is the agent->controller message.
type request struct {
	Op   string `json:"op"`   // "epoch" | "manifest"
	Node int    `json:"node"` // for "manifest"
	// Trace is the caller's trace context (nil when untraced); omitempty
	// keeps the base request encoding stable for pre-trace controllers.
	Trace *WireTrace `json:"trace,omitempty"`
}

// response is the controller->agent message.
type response struct {
	Epoch    uint64    `json:"epoch"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Err      string    `json:"err,omitempty"`
}

// ControllerOptions configures a Controller beyond its listen address.
type ControllerOptions struct {
	// HashKey is distributed to agents with each manifest, so the whole
	// deployment samples consistently and adversaries cannot predict
	// range membership without it.
	HashKey uint32
	// Metrics, when non-nil, receives serving observability: per-op
	// request counters, manifest build errors, plan-update counts, and a
	// current-epoch gauge. The registry must be supplied at construction
	// (it is read by the accept loop); nil is the no-op default.
	Metrics *obs.Registry
	// Listener, when non-nil, is served instead of opening a new TCP
	// listener (the addr argument is ignored). The controller takes
	// ownership and closes it on Close. This is the seam fault-injecting
	// wrappers such as chaos.Gate interpose at.
	Listener net.Listener
}

// maxRequestLine bounds the one-line request read. Real requests are tens
// of bytes; without a cap, a peer streaming bytes that never include a
// newline would grow the controller's read buffer without bound.
const maxRequestLine = 64 << 10

// Controller serves the current deployment's manifests to node agents.
// Safe for concurrent use; UpdatePlan may be called while agents fetch.
type Controller struct {
	hashKey uint32

	mu    sync.RWMutex
	plan  *core.Plan
	epoch uint64
	shed  map[int][]WireAssignment // per-node governor shed state
	trace *WireTrace               // context stamped on served manifests

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// Metric handles resolved at construction; nil-safe no-ops when no
	// registry was configured.
	epochReqC, manifestReqC, badReqC, manifestErrC, planUpdateC, shedUpdateC, tracedReqC *obs.Counter
	epochG                                                                               *obs.Gauge
}

// NewController starts a controller listening on addr (e.g.
// "127.0.0.1:0") with the given sampling hash key and no metrics; see
// NewControllerOpts for the full configuration surface.
func NewController(addr string, hashKey uint32) (*Controller, error) {
	return NewControllerOpts(addr, ControllerOptions{HashKey: hashKey})
}

// NewControllerOpts starts a controller listening on addr (e.g.
// "127.0.0.1:0").
func NewControllerOpts(addr string, opts ControllerOptions) (*Controller, error) {
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("control: listen: %w", err)
		}
	}
	c := &Controller{
		hashKey: opts.HashKey, ln: ln, closed: make(chan struct{}),

		epochReqC:    opts.Metrics.Counter("control.requests_epoch"),
		manifestReqC: opts.Metrics.Counter("control.requests_manifest"),
		badReqC:      opts.Metrics.Counter("control.requests_bad"),
		manifestErrC: opts.Metrics.Counter("control.manifest_errors"),
		planUpdateC:  opts.Metrics.Counter("control.plan_updates"),
		shedUpdateC:  opts.Metrics.Counter("control.shed_updates"),
		tracedReqC:   opts.Metrics.Counter("control.requests_traced"),
		epochG:       opts.Metrics.Gauge("control.epoch"),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address agents should dial.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Epoch returns the current configuration generation (0 = no plan yet).
func (c *Controller) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// UpdatePlan installs a new deployment plan and bumps the epoch; agents
// polling the epoch will observe the change and re-fetch. Any published
// shed state is cleared: a fresh plan supersedes the emergency degradation
// it was covering for.
func (c *Controller) UpdatePlan(plan *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = plan
	c.shed = nil
	c.epoch++
	c.planUpdateC.Add(1)
	c.epochG.Set(float64(c.epoch))
}

// SetTrace installs the trace context stamped on every manifest served
// from now on — callers set it just before UpdatePlan or PublishShed so
// the served generation carries the span of the publish that created it.
// Nil clears it. Serving stays deterministic: the context changes only
// when the (serial) epoch loop publishes, never per-request.
func (c *Controller) SetTrace(wt *WireTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = wt
}

// PublishShed records a node's governor shed state and bumps the epoch so
// agents re-fetch manifests carrying it. An empty shed clears the node's
// entry (the governor restored full responsibility). This is the fallback
// path when a replan misses its deadline: the network learns exactly which
// ranges the overloaded node dropped without waiting for a new plan.
func (c *Controller) PublishShed(node int, shed []WireAssignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(shed) == 0 {
		if _, had := c.shed[node]; !had {
			return // nothing published, nothing to clear: no epoch churn
		}
		delete(c.shed, node)
	} else {
		if c.shed == nil {
			c.shed = make(map[int][]WireAssignment)
		}
		c.shed[node] = shed
	}
	c.epoch++
	c.shedUpdateC.Add(1)
	c.epochG.Set(float64(c.epoch))
}

// Close stops the listener and waits for in-flight connections.
func (c *Controller) Close() error {
	close(c.closed)
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
			}
			// Transient accept errors: keep serving.
			continue
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

func (c *Controller) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Cap the request-line read: LimitReader makes an overlong line
	// surface as an EOF one byte past the cap instead of an unbounded
	// buffer. A peer that closes mid-line (partial bytes, no newline)
	// lands in the same error path with a short line.
	var req request
	r := bufio.NewReader(io.LimitReader(conn, maxRequestLine+1))
	line, err := r.ReadBytes('\n')
	enc := json.NewEncoder(conn)
	if err != nil {
		if len(line) > maxRequestLine {
			c.badReqC.Add(1)
			_ = enc.Encode(response{Err: "malformed request"})
		} else if len(line) > 0 {
			// Connection closed mid-request; the peer is gone, so no
			// response — but the abandoned bytes still count as bad.
			c.badReqC.Add(1)
		}
		return
	}
	if err := json.Unmarshal(line, &req); err != nil {
		c.badReqC.Add(1)
		_ = enc.Encode(response{Err: "malformed request"})
		return
	}

	c.mu.RLock()
	plan, epoch := c.plan, c.epoch
	shed := c.shed[req.Node]
	wt := c.trace
	c.mu.RUnlock()

	if req.Trace != nil {
		c.tracedReqC.Add(1)
	}
	switch req.Op {
	case "epoch":
		c.epochReqC.Add(1)
		_ = enc.Encode(response{Epoch: epoch})
	case "manifest":
		c.manifestReqC.Add(1)
		if plan == nil {
			c.manifestErrC.Add(1)
			_ = enc.Encode(response{Epoch: epoch, Err: "no plan installed"})
			return
		}
		m, err := ManifestFromPlan(plan, req.Node, epoch, c.hashKey)
		if err != nil {
			c.manifestErrC.Add(1)
			_ = enc.Encode(response{Epoch: epoch, Err: err.Error()})
			return
		}
		m.Shed = shed
		m.Trace = wt
		_ = enc.Encode(response{Epoch: epoch, Manifest: m})
	default:
		c.badReqC.Add(1)
		_ = enc.Encode(response{Epoch: epoch, Err: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

// DialFunc matches net.DialTimeout's shape: the transport seam fault
// injectors (internal/chaos) interpose at.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// AgentOptions configures an Agent beyond its controller address and
// node identity. The zero value reproduces NewAgent's behavior.
type AgentOptions struct {
	// DialTimeout bounds connection establishment (0 selects 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds the whole request/response exchange once
	// connected (0 selects 10s).
	RPCTimeout time.Duration
	// Dial replaces the transport dial (nil selects net.DialTimeout).
	Dial DialFunc
	// Metrics, when non-nil, receives client observability: request,
	// error, and timeout counters. Nil is the no-op default.
	Metrics *obs.Registry
}

// Agent is a node's client to the controller. It caches the last fetched
// manifest and exposes a Decider for the data path.
type Agent struct {
	addr string
	node int
	opts AgentOptions

	mu      sync.RWMutex
	decider *Decider
	trace   *WireTrace // context attached to outgoing requests

	reqC, errC, timeoutC *obs.Counter
}

// NewAgent creates an agent for node with default timeouts; it holds no
// connection until used. See NewAgentOpts for the full configuration
// surface.
func NewAgent(addr string, node int) *Agent {
	return NewAgentOpts(addr, node, AgentOptions{})
}

// NewAgentOpts creates an agent for node with explicit timeouts, dialer,
// and metrics.
func NewAgentOpts(addr string, node int, opts AgentOptions) *Agent {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 10 * time.Second
	}
	if opts.Dial == nil {
		opts.Dial = net.DialTimeout
	}
	return &Agent{
		addr: addr, node: node, opts: opts,
		reqC:     opts.Metrics.Counter("control.agent_requests"),
		errC:     opts.Metrics.Counter("control.agent_errors"),
		timeoutC: opts.Metrics.Counter("control.agent_timeouts"),
	}
}

// SetTrace installs the trace context attached to the agent's subsequent
// requests — the node's fetch span, set per epoch by the cluster runtime.
// Nil clears it; untraced agents send the pre-trace request encoding.
func (a *Agent) SetTrace(wt *WireTrace) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.trace = wt
}

// roundTrip sends one request and decodes one response.
func (a *Agent) roundTrip(req request) (*response, error) {
	a.mu.RLock()
	req.Trace = a.trace
	a.mu.RUnlock()
	a.reqC.Add(1)
	resp, err := a.exchange(req)
	if err != nil {
		a.errC.Add(1)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			a.timeoutC.Add(1)
		}
	}
	return resp, err
}

func (a *Agent) exchange(req request) (*response, error) {
	conn, err := a.opts.Dial("tcp", a.addr, a.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", a.addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(a.opts.RPCTimeout))

	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		return nil, fmt.Errorf("control: send: %w", err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("control: decode: %w", err)
	}
	if resp.Err != "" {
		return &resp, errors.New("control: " + resp.Err)
	}
	return &resp, nil
}

// RemoteEpoch asks the controller for its current configuration epoch.
func (a *Agent) RemoteEpoch() (uint64, error) {
	resp, err := a.roundTrip(request{Op: "epoch"})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Sync fetches the node's manifest and installs a fresh decider. It
// returns the manifest epoch.
func (a *Agent) Sync() (uint64, error) {
	resp, err := a.roundTrip(request{Op: "manifest", Node: a.node})
	if err != nil {
		return 0, err
	}
	if resp.Manifest == nil {
		return resp.Epoch, errors.New("control: empty manifest in response")
	}
	d := NewDecider(resp.Manifest)
	a.mu.Lock()
	a.decider = d
	a.mu.Unlock()
	return resp.Epoch, nil
}

// SyncIfStale fetches only when the controller's epoch differs from the
// locally installed one — the periodic poll a node runs between the
// paper's re-optimization rounds. It reports whether a fetch happened.
func (a *Agent) SyncIfStale() (bool, error) {
	remote, err := a.RemoteEpoch()
	if err != nil {
		return false, err
	}
	if d := a.Decider(); d != nil && d.Epoch() == remote {
		return false, nil
	}
	if _, err := a.Sync(); err != nil {
		return false, err
	}
	return true, nil
}

// Decider returns the currently installed decider (nil before first Sync).
func (a *Agent) Decider() *Decider {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.decider
}

// Watch polls the controller every interval and resyncs whenever the
// configuration epoch changes — the periodic refresh loop a node runs
// between the operations center's re-optimizations. Each newly installed
// epoch is delivered on the returned channel; transient fetch errors are
// retried on the next tick. Watch returns when stop is closed, closing the
// channel.
func (a *Agent) Watch(interval time.Duration, stop <-chan struct{}) <-chan uint64 {
	updates := make(chan uint64, 4)
	go func() {
		defer close(updates)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				fetched, err := a.SyncIfStale()
				if err != nil || !fetched {
					continue
				}
				select {
				case updates <- a.Decider().Epoch():
				default: // consumer lagging; epoch is observable via Decider
				}
			}
		}
	}()
	return updates
}
