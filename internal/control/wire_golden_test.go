package control

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestManifestWireFormatGolden pins the exact JSON wire format of a
// manifest. Agents in the field parse this encoding; any change to field
// names, omitempty behavior, or nesting is a protocol break and must fail
// here before it ships.
func TestManifestWireFormatGolden(t *testing.T) {
	m := &Manifest{
		Node:    3,
		Epoch:   17,
		HashKey: 0xbeef,
		Classes: []WireClass{
			{Name: "signature"},
			{Name: "http", Scope: 1, Agg: 2, Ports: []uint16{80, 8080}, Transport: 6},
		},
		Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0, Hi: 0.25}, {Lo: 0.75, Hi: 1}}},
			{Class: 1, Unit: [2]int{4, -1}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.5}}},
		},
	}

	const golden = `{"node":3,"epoch":17,"hash_key":48879,` +
		`"classes":[` +
		`{"name":"signature","scope":0,"agg":0},` +
		`{"name":"http","scope":1,"agg":2,"ports":[80,8080],"transport":6}],` +
		`"assignments":[` +
		`{"class":0,"unit":[2,5],"ranges":[{"lo":0,"hi":0.25},{"lo":0.75,"hi":1}]},` +
		`{"class":1,"unit":[4,-1],"ranges":[{"lo":0.25,"hi":0.5}]}]}`

	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}

	// The encoding must round-trip losslessly.
	var back Manifest
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, m) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", &back, m)
	}
}

// TestManifestWireFormatGoldenWithTrace pins the encoding of the optional
// trace-context header: present, it appends one "trace" object after
// "shed"; absent (the case above), the base encoding is untouched.
func TestManifestWireFormatGoldenWithTrace(t *testing.T) {
	m := &Manifest{
		Node:    1,
		Epoch:   4,
		HashKey: 7,
		Classes: []WireClass{{Name: "signature"}},
		Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0, Hi: 1}}},
		},
		Shed: []WireAssignment{
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0.5, Hi: 1}}},
		},
		Trace: &WireTrace{Trace: "00000000deadbeef", Span: "00000000cafef00d"},
	}

	const golden = `{"node":1,"epoch":4,"hash_key":7,` +
		`"classes":[{"name":"signature","scope":0,"agg":0}],` +
		`"assignments":[{"class":0,"unit":[0,-1],"ranges":[{"lo":0,"hi":1}]}],` +
		`"shed":[{"class":0,"unit":[0,-1],"ranges":[{"lo":0.5,"hi":1}]}],` +
		`"trace":{"trace":"00000000deadbeef","span":"00000000cafef00d"}}`

	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, m) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", &back, m)
	}
}

// TestManifestDecodesWithoutTraceField pins backward compatibility: wire
// bytes produced by pre-trace controllers (no "trace" key at all) decode
// into a manifest whose Trace is nil, and the decider built from it
// reports no trace context.
func TestManifestDecodesWithoutTraceField(t *testing.T) {
	const old = `{"node":2,"epoch":9,"hash_key":1,` +
		`"classes":[{"name":"signature","scope":0,"agg":0}],` +
		`"assignments":[{"class":0,"unit":[1,-1],"ranges":[{"lo":0,"hi":0.5}]}]}`
	var m Manifest
	if err := json.Unmarshal([]byte(old), &m); err != nil {
		t.Fatalf("pre-trace manifest failed to decode: %v", err)
	}
	if m.Trace != nil {
		t.Fatalf("pre-trace manifest decoded with trace context: %+v", m.Trace)
	}
	if d := NewDecider(&m); d.TraceContext() != nil {
		t.Fatal("decider invented a trace context")
	}
	if m.Node != 2 || m.Epoch != 9 || len(m.Assignments) != 1 {
		t.Fatalf("pre-trace manifest fields lost: %+v", m)
	}
}
