package control

import (
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"
)

// TestManifestWireFormatGolden pins the exact JSON wire format of a
// manifest. Agents in the field parse this encoding; any change to field
// names, omitempty behavior, or nesting is a protocol break and must fail
// here before it ships.
func TestManifestWireFormatGolden(t *testing.T) {
	m := &Manifest{
		Node:    3,
		Epoch:   17,
		HashKey: 0xbeef,
		Classes: []WireClass{
			{Name: "signature"},
			{Name: "http", Scope: 1, Agg: 2, Ports: []uint16{80, 8080}, Transport: 6},
		},
		Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0, Hi: 0.25}, {Lo: 0.75, Hi: 1}}},
			{Class: 1, Unit: [2]int{4, -1}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.5}}},
		},
	}

	const golden = `{"node":3,"epoch":17,"hash_key":48879,` +
		`"classes":[` +
		`{"name":"signature","scope":0,"agg":0},` +
		`{"name":"http","scope":1,"agg":2,"ports":[80,8080],"transport":6}],` +
		`"assignments":[` +
		`{"class":0,"unit":[2,5],"ranges":[{"lo":0,"hi":0.25},{"lo":0.75,"hi":1}]},` +
		`{"class":1,"unit":[4,-1],"ranges":[{"lo":0.25,"hi":0.5}]}]}`

	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}

	// The encoding must round-trip losslessly.
	var back Manifest
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, m) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", &back, m)
	}
}

// TestManifestWireFormatGoldenWithTrace pins the encoding of the optional
// trace-context header: present, it appends one "trace" object after
// "shed"; absent (the case above), the base encoding is untouched.
func TestManifestWireFormatGoldenWithTrace(t *testing.T) {
	m := &Manifest{
		Node:    1,
		Epoch:   4,
		HashKey: 7,
		Classes: []WireClass{{Name: "signature"}},
		Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0, Hi: 1}}},
		},
		Shed: []WireAssignment{
			{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0.5, Hi: 1}}},
		},
		Trace: &WireTrace{Trace: "00000000deadbeef", Span: "00000000cafef00d"},
	}

	const golden = `{"node":1,"epoch":4,"hash_key":7,` +
		`"classes":[{"name":"signature","scope":0,"agg":0}],` +
		`"assignments":[{"class":0,"unit":[0,-1],"ranges":[{"lo":0,"hi":1}]}],` +
		`"shed":[{"class":0,"unit":[0,-1],"ranges":[{"lo":0.5,"hi":1}]}],` +
		`"trace":{"trace":"00000000deadbeef","span":"00000000cafef00d"}}`

	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, m) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", &back, m)
	}
}

// TestManifestDecodesWithoutTraceField pins backward compatibility: wire
// bytes produced by pre-trace controllers (no "trace" key at all) decode
// into a manifest whose Trace is nil, and the decider built from it
// reports no trace context.
func TestManifestDecodesWithoutTraceField(t *testing.T) {
	const old = `{"node":2,"epoch":9,"hash_key":1,` +
		`"classes":[{"name":"signature","scope":0,"agg":0}],` +
		`"assignments":[{"class":0,"unit":[1,-1],"ranges":[{"lo":0,"hi":0.5}]}]}`
	var m Manifest
	if err := json.Unmarshal([]byte(old), &m); err != nil {
		t.Fatalf("pre-trace manifest failed to decode: %v", err)
	}
	if m.Trace != nil {
		t.Fatalf("pre-trace manifest decoded with trace context: %+v", m.Trace)
	}
	if d := NewDecider(&m); d.TraceContext() != nil {
		t.Fatal("decider invented a trace context")
	}
	if m.Node != 2 || m.Epoch != 9 || len(m.Assignments) != 1 {
		t.Fatalf("pre-trace manifest fields lost: %+v", m)
	}
}

// TestDeltaWireFormatGolden pins the JSON wire form of a WireDelta — the
// v2 protocol's incremental payload. Like the manifest golden above, any
// drift in field names or omitempty behavior is a protocol break.
func TestDeltaWireFormatGolden(t *testing.T) {
	d := &WireDelta{
		Node:      3,
		BaseEpoch: 17,
		Epoch:     18,
		Added:     []WireAssignment{{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.5}}}},
		Removed:   []WireAssignment{{Class: 1, Unit: [2]int{4, -1}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.375}}}},
	}

	const golden = `{"node":3,"base_epoch":17,"epoch":18,` +
		`"added":[{"class":0,"unit":[2,5],"ranges":[{"lo":0.25,"hi":0.5}]}],` +
		`"removed":[{"class":1,"unit":[4,-1],"ranges":[{"lo":0.25,"hi":0.375}]}]}`

	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Fatalf("delta wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
	var back WireDelta
	if err := json.Unmarshal([]byte(golden), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, d) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", &back, d)
	}
}

// TestRequestResponseV1Golden pins the v1 exchange byte-for-byte: the v2
// fields (v, enc, have, delta) are all omitempty, so a v1 agent's request
// and a controller's v1 answer must encode exactly as they did before the
// versioned protocol existed. This is the compatibility contract that
// lets old and new peers interoperate without negotiation.
func TestRequestResponseV1Golden(t *testing.T) {
	reqGot, err := json.Marshal(request{Op: "manifest", Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"op":"manifest","node":3}`; string(reqGot) != want {
		t.Fatalf("v1 request drifted:\n got: %s\nwant: %s", reqGot, want)
	}
	respGot, err := json.Marshal(response{Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"epoch":9}`; string(respGot) != want {
		t.Fatalf("v1 response drifted:\n got: %s\nwant: %s", respGot, want)
	}
	// And the v2 request shape, equally pinned so controllers can rely on
	// the field names.
	req2Got, err := json.Marshal(request{Op: "delta", Node: 3, V: 2, Enc: "bin", Have: 17})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"op":"delta","node":3,"v":2,"enc":"bin","have":17}`; string(req2Got) != want {
		t.Fatalf("v2 request drifted:\n got: %s\nwant: %s", req2Got, want)
	}
}

// TestManifestBinaryGolden pins the compact binary encoding of the same
// manifest the JSON golden uses. The byte layout is the v2 "enc":"bin"
// wire contract.
func TestManifestBinaryGolden(t *testing.T) {
	m := &Manifest{
		Node:    3,
		Epoch:   17,
		HashKey: 0xbeef,
		Classes: []WireClass{
			{Name: "signature"},
			{Name: "http", Scope: 1, Agg: 2, Ports: []uint16{80, 8080}, Transport: 6},
		},
		Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0, Hi: 0.25}, {Lo: 0.75, Hi: 1}}},
			{Class: 1, Unit: [2]int{4, -1}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.5}}},
		},
	}
	const golden = "0611effd0202097369676e617475726500000000046874747002040250903f0602000" +
		"40a020000000000000000000000000000d03f000000000000e83f000000000000f03f0208010" +
		"1000000000000d03f000000000000e03f0000"
	got := hex.EncodeToString(AppendManifestBinary(nil, m))
	if got != golden {
		t.Fatalf("binary manifest encoding drifted:\n got: %s\nwant: %s", got, golden)
	}
	raw, _ := hex.DecodeString(golden)
	back, err := DecodeManifestBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatalf("binary round trip mismatch:\n got: %+v\nwant: %+v", back, m)
	}
}

// TestDeltaBinaryGolden pins the compact binary encoding of a delta,
// including the shed-replacement flag and trace context.
func TestDeltaBinaryGolden(t *testing.T) {
	d := &WireDelta{
		Node: 3, BaseEpoch: 17, Epoch: 18,
		Added:       []WireAssignment{{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.5}}}},
		Removed:     []WireAssignment{{Class: 1, Unit: [2]int{4, -1}, Ranges: []WireRange{{Lo: 0.25, Hi: 0.375}}}},
		ShedChanged: true,
		Shed:        []WireAssignment{{Class: 0, Unit: [2]int{2, 5}, Ranges: []WireRange{{Lo: 0.9, Hi: 1}}}},
		Trace:       &WireTrace{Trace: "00000000deadbeef", Span: "00000000cafef00d"},
	}
	const golden = "0611120100040a01000000000000d03f000000000000e03f0102080101000000000000d03f0" +
		"00000000000d83f010100040a01cdccccccccccec3f000000000000f03f011030303030303030" +
		"3064656164626565661030303030303030306361666566303064"
	got := hex.EncodeToString(AppendDeltaBinary(nil, d))
	if got != golden {
		t.Fatalf("binary delta encoding drifted:\n got: %s\nwant: %s", got, golden)
	}
	raw, _ := hex.DecodeString(golden)
	back, err := DecodeDeltaBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Fatalf("binary round trip mismatch:\n got: %+v\nwant: %+v", back, d)
	}
}

// TestBinaryResponseTruncation: every truncation of a valid binary
// payload must fail cleanly, never panic or mis-decode.
func TestBinaryResponseTruncation(t *testing.T) {
	m := &Manifest{
		Node: 1, Epoch: 2, HashKey: 3,
		Classes:     []WireClass{{Name: "x", Ports: []uint16{80}}},
		Assignments: []WireAssignment{{Class: 0, Unit: [2]int{0, -1}, Ranges: []WireRange{{Lo: 0, Hi: 1}}}},
	}
	full := AppendManifestBinary(nil, m)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeManifestBinary(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
}
