package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"nwdeploy/internal/obs"
	"nwdeploy/internal/telemetry"
)

// TestRequestStatsGolden pins the stats-carrying request line byte for
// byte. The "stats" field is the telemetry piggyback: omitempty keeps the
// stats-free v1 request untouched (pinned by TestRequestResponseV1Golden),
// and v1 controllers ignore the unknown key, so this shape is safe to send
// to any peer that has not latched a downgrade.
func TestRequestStatsGolden(t *testing.T) {
	req := request{Op: "manifest", Node: 3, Stats: &telemetry.NodeStats{
		Node: 3, Epoch: 17, Lag: 2, ShedWidth: 0.25, Sessions: 100, Draining: true,
	}}
	got, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"op":"manifest","node":3,` +
		`"stats":{"node":3,"epoch":17,"lag":2,"shed_width":0.25,"sessions":100,"draining":true}}`
	if string(got) != golden {
		t.Fatalf("stats request drifted:\n got: %s\nwant: %s", got, golden)
	}

	// Without stats attached, the line is exactly the pre-telemetry v1
	// encoding — the byte-stability contract.
	plain, err := json.Marshal(request{Op: "manifest", Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"op":"manifest","node":3}`; string(plain) != want {
		t.Fatalf("stats-free request drifted:\n got: %s\nwant: %s", plain, want)
	}
}

// TestAgentDeliversStatsToFleet: a report installed with SetStats rides
// the next exchange into the controller's Fleet, and the controller counts
// the ingestion.
func TestAgentDeliversStatsToFleet(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	fleet := telemetry.NewFleet(4, telemetry.FleetOptions{})
	reg := obs.New()
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{
		HashKey: 7, Fleet: fleet, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	a := NewAgent(ctrl.Addr(), 3)
	a.SetStats(&telemetry.NodeStats{Node: 3, Epoch: 1, Sessions: 42})
	if _, err := a.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
		t.Fatal(err)
	}

	snap := fleet.EndEpoch(1, ctrl.Epoch())
	v := snap.Nodes[3]
	if v.Sessions != 42 || v.Silent != 0 {
		t.Fatalf("fleet heard %+v, want the installed report", v)
	}
	if v.Health != telemetry.Healthy {
		t.Fatalf("reporting synced node classified %v", v.Health)
	}
	if got := reg.Snapshot().Counters["control.requests_stats"]; got < 1 {
		t.Fatalf("requests_stats counter = %d, want >= 1", got)
	}

	// Clearing the stats stops the piggyback without erroring.
	a.SetStats(nil)
	if _, err := a.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
		t.Fatal(err)
	}
	snap = fleet.EndEpoch(2, ctrl.Epoch())
	if snap.Nodes[3].Silent != 1 {
		t.Fatalf("round 2 should have heard nothing from node 3: %+v", snap.Nodes[3])
	}
}

// recordingV1Controller is a pre-v2 controller that records every raw
// request line it receives, for asserting what the agent put on the wire.
type recordingV1Controller struct {
	ln       net.Listener
	manifest *Manifest

	mu    sync.Mutex
	lines []string
}

func (rc *recordingV1Controller) Lines() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]string(nil), rc.lines...)
}

func startRecordingV1(t *testing.T, m *Manifest) *recordingV1Controller {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := &recordingV1Controller{ln: ln, manifest: m}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				line, err := bufio.NewReader(conn).ReadBytes('\n')
				if err != nil {
					return
				}
				var req request
				if json.Unmarshal(line, &req) != nil {
					return
				}
				rc.mu.Lock()
				rc.lines = append(rc.lines, string(line))
				rc.mu.Unlock()
				enc := json.NewEncoder(conn)
				switch req.Op {
				case "epoch":
					_ = enc.Encode(response{Epoch: rc.manifest.Epoch})
				case "manifest":
					_ = enc.Encode(response{Epoch: rc.manifest.Epoch, Manifest: rc.manifest})
				default:
					_ = enc.Encode(response{Epoch: rc.manifest.Epoch, Err: fmt.Sprintf("unknown op %q", req.Op)})
				}
			}()
		}
	}()
	return rc
}

// TestStickyDowngradeSuppressesStats: once an agent has latched the v1
// downgrade, it must stop attaching the stats field — an old controller
// should never see new keys in steady state, even tolerated ones.
func TestStickyDowngradeSuppressesStats(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	m, err := ManifestFromPlan(plan, 3, 1, 777)
	if err != nil {
		t.Fatal(err)
	}
	rc := startRecordingV1(t, m)
	defer rc.ln.Close()

	a := NewAgent(rc.ln.Addr().String(), 3)
	a.SetStats(&telemetry.NodeStats{Node: 3, Sessions: 7})
	opts := SubscribeOptions{Mode: ModeIfStale, Deltas: true}
	for i := 0; i < 3; i++ {
		if _, err := a.Subscribe(opts); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}

	lines := rc.Lines()
	if len(lines) < 3 {
		t.Fatalf("controller saw %d request lines, want at least 3", len(lines))
	}
	// The first line is the delta attempt that triggers the downgrade; it
	// may carry stats (v1 ignores unknown keys). Every line after the
	// downgrade latched must be stats-free.
	for _, line := range lines[1:] {
		if strings.Contains(line, `"stats"`) {
			t.Fatalf("post-downgrade request still carries stats: %s", line)
		}
	}
	if !strings.Contains(lines[0], `"stats"`) {
		t.Fatalf("pre-downgrade request lost its stats field: %s", lines[0])
	}
}
