package control

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"nwdeploy/internal/hashing"
	"nwdeploy/internal/ledger"
)

// This file is the control plane's ledger surface: the canonical byte
// encoding of manifests committed to the tamper-evident epoch ledger,
// and the controller-side commits on UpdatePlan/PublishShed.
//
// Canonical means path-independent. A manifest reconstructed by
// ApplyDelta differs representationally from a full fetch of the same
// epoch — assignments land in canonical (class, unit-key) order rather
// than ascending unit-index order, and set subtraction can leave an
// assignment's width split across adjacent ranges ([0.2,0.3)+[0.3,0.5)
// where the full fetch has [0.2,0.5)) — while enforcing exactly the same
// responsibility. The canonical form erases exactly those degrees of
// freedom: assignments and shed entries are folded per (class, unit-key)
// in canonical key order with duplicate keys merged, ranges sorted
// Lo-ascending and coalesced where they touch or overlap, and the
// epoch stamp and trace context stripped (the chain record carries the
// epoch; trace context is telemetry, not responsibility — and both would
// defeat content-addressed deduplication of unchanged manifests across
// epochs). Two manifests canonicalize to the same bytes iff they assign
// the same ranges — the property the delta-path equivalence tests pin.

// canonManifest is the serialized canonical form. It is a subset of
// Manifest: no Epoch (the chain record binds it), no Trace.
type canonManifest struct {
	Node        int              `json:"node"`
	HashKey     uint32           `json:"hash_key"`
	Classes     []WireClass      `json:"classes"`
	Assignments []WireAssignment `json:"assignments,omitempty"`
	Shed        []WireAssignment `json:"shed,omitempty"`
}

// CanonicalAssignments normalizes an assignment slice into its canonical
// form: finite bounds enforced (a NaN or infinite range bound returns an
// error wrapping ledger.ErrNonFinite — NaN payload bits are
// platform-dependent, and rangesByKey's width filter would otherwise
// silently drop such ranges), duplicate (class, unit) entries merged,
// keys in canonical order, ranges Lo-ascending with touching or
// overlapping ranges coalesced, empty ranges dropped.
func CanonicalAssignments(as []WireAssignment) ([]WireAssignment, error) {
	for _, a := range as {
		for _, r := range a.Ranges {
			if !finite(r.Lo) || !finite(r.Hi) {
				return nil, fmt.Errorf("control: assignment class %d unit %v range [%v,%v): %w",
					a.Class, a.Unit, r.Lo, r.Hi, ledger.ErrNonFinite)
			}
		}
	}
	byKey := rangesByKey(as)
	var out []WireAssignment
	for _, k := range sortedKeys(byKey, nil) {
		out = appendAssignment(out, k, coalesceRanges(byKey[k]))
	}
	return out, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// coalesceRanges sorts a range set Lo-ascending and merges ranges that
// overlap or share a boundary, yielding the unique minimal disjoint
// representation of the set's union.
func coalesceRanges(rs hashing.RangeSet) hashing.RangeSet {
	if len(rs) == 0 {
		return nil
	}
	s := append(hashing.RangeSet(nil), rs...)
	sort.Slice(s, func(i, j int) bool { return s[i].Lo < s[j].Lo })
	out := s[:1]
	for _, r := range s[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CanonicalManifest returns the canonical ledger encoding of a manifest:
// deterministic JSON of the normalized assignment and shed sets, with
// the epoch stamp and trace context stripped. Delta-reconstructed and
// full-fetch manifests of the same epoch encode byte-identically.
func CanonicalManifest(m *Manifest) ([]byte, error) {
	as, err := CanonicalAssignments(m.Assignments)
	if err != nil {
		return nil, fmt.Errorf("manifest node %d: %w", m.Node, err)
	}
	shed, err := CanonicalAssignments(m.Shed)
	if err != nil {
		return nil, fmt.Errorf("manifest node %d shed: %w", m.Node, err)
	}
	return json.Marshal(canonManifest{
		Node: m.Node, HashKey: m.HashKey, Classes: m.Classes,
		Assignments: as, Shed: shed,
	})
}

// DecodeCanonicalManifest parses a canonical manifest blob back into a
// Manifest (Epoch 0, no trace) — the offline verifier's read path.
func DecodeCanonicalManifest(b []byte) (*Manifest, error) {
	var cm canonManifest
	if err := json.Unmarshal(b, &cm); err != nil {
		return nil, fmt.Errorf("control: canonical manifest: %w", err)
	}
	return &Manifest{
		Node: cm.Node, HashKey: cm.HashKey, Classes: cm.Classes,
		Assignments: cm.Assignments, Shed: cm.Shed,
	}, nil
}

// commitLocked seals the controller's post-publish state into the
// attached ledger: one off-chain canonical manifest blob per node (the
// content-addressed store dedups nodes whose manifests did not change),
// plus the live shed state inline per shedding node. Called with c.mu
// held immediately after an epoch bump; a nil ledger makes it free.
func (c *Controller) commitLocked(kind string) {
	if c.ledger == nil || c.plan == nil {
		return
	}
	b := c.ledger.Begin(kind, c.epoch)
	for j := range c.plan.Manifests {
		m, err := ManifestFromPlan(c.plan, j, c.epoch, c.hashKey)
		if err != nil {
			b.Item(ledger.ItemManifest, fmt.Sprintf("node/%d", j), nil, err)
			continue
		}
		m.Shed = c.shed[j]
		data, err := CanonicalManifest(m)
		b.Blob(ledger.ItemManifest, fmt.Sprintf("node/%d", j), data, err)
	}
	nodes := make([]int, 0, len(c.shed))
	for j := range c.shed {
		nodes = append(nodes, j)
	}
	sort.Ints(nodes)
	for _, j := range nodes {
		as, err := CanonicalAssignments(c.shed[j])
		var data []byte
		if err == nil {
			data, err = json.Marshal(as)
		}
		b.Item(ledger.ItemShed, fmt.Sprintf("node/%d", j), data, err)
	}
	b.Commit()
}
