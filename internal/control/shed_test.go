package control

import (
	"encoding/json"
	"math"
	"testing"

	"nwdeploy/internal/hashing"
)

func TestShedRoundTripAndDeciderSubtraction(t *testing.T) {
	plan, sessions := solvedPlan(t, 6)

	// Pick a node and unit with a wide assigned range; shed its middle half.
	node, unit := -1, -1
	var cut hashing.Range
	for j := range plan.Manifests {
		for ui, rs := range plan.Manifests[j].Ranges {
			for _, r := range rs {
				if r.Width() > 0.2 {
					node, unit = j, ui
					q := r.Width() / 4
					cut = hashing.Range{Lo: r.Lo + q, Hi: r.Hi - q}
				}
			}
		}
	}
	if node < 0 {
		t.Fatal("no assignment wide enough to shed")
	}
	u := plan.Inst.Units[unit]

	m, err := ManifestFromPlan(plan, node, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	base := NewDecider(m)

	m.Shed = ShedFromRanges(plan, map[int]hashing.RangeSet{unit: {cut}})
	if len(m.Shed) != 1 || m.Shed[0].Class != u.Class || m.Shed[0].Unit != u.Key {
		t.Fatalf("shed wire form mangled: %+v", m.Shed)
	}

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	d := NewDecider(&back)

	if got := d.ShedWidth(); math.Abs(got-cut.Width()) > 1e-12 {
		t.Fatalf("ShedWidth %v, want %v", got, cut.Width())
	}
	if math.Abs(base.AssignedWidth()-d.AssignedWidth()-cut.Width()) > 1e-12 {
		t.Fatalf("assigned width dropped by %v, want %v",
			base.AssignedWidth()-d.AssignedWidth(), cut.Width())
	}

	// Point audit: coverage vanishes exactly inside the cut.
	for i := 0; i <= 1000; i++ {
		x := float64(i) / 1000
		b, g := base.CoversUnit(u.Class, u.Key, x), d.CoversUnit(u.Class, u.Key, x)
		if cut.Contains(x) {
			if g {
				t.Fatalf("x=%v inside shed range still covered", x)
			}
		} else if b != g {
			t.Fatalf("x=%v outside shed range flipped: base %v shed %v", x, b, g)
		}
	}

	// Session audit: every decision the shed decider flips relative to the
	// base decider must hash into the cut on the shed unit.
	flipped := 0
	for _, s := range sessions[:1500] {
		for ci := range plan.Inst.Classes {
			b, g := base.ShouldAnalyze(ci, s), d.ShouldAnalyze(ci, s)
			if b == g {
				continue
			}
			flipped++
			if !b || g {
				t.Fatalf("shed added responsibility for session %d class %d", s.ID, ci)
			}
			if ci != u.Class {
				t.Fatalf("session %d flipped on class %d, shed only class %d", s.ID, ci, u.Class)
			}
		}
	}
	if flipped == 0 {
		t.Fatal("no session decision changed — shed subtraction untested")
	}
}

func TestPublishShedEpochSemantics(t *testing.T) {
	plan, _ := solvedPlan(t, 7)
	ctrl, err := NewController("127.0.0.1:0", 55)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	// Find a node and unit to shed, as above but any positive width.
	node, unit := -1, -1
	var cut hashing.Range
	for j := range plan.Manifests {
		for ui, rs := range plan.Manifests[j].Ranges {
			for _, r := range rs {
				if r.Width() > 0.01 {
					node, unit = j, ui
					cut = r
				}
			}
		}
	}
	shed := ShedFromRanges(plan, map[int]hashing.RangeSet{unit: {cut}})

	agent := NewAgent(ctrl.Addr(), node)
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	if w := agent.Decider().ShedWidth(); w != 0 {
		t.Fatalf("steady-state manifest carries shed width %v", w)
	}

	// Clearing a node that never shed must not churn the epoch: agents
	// would refetch identical manifests for nothing.
	ctrl.PublishShed(node, nil)
	if e := ctrl.Epoch(); e != 1 {
		t.Fatalf("no-op shed clear bumped epoch to %d", e)
	}

	// Publishing shed bumps the epoch and reaches only the shedding node.
	ctrl.PublishShed(node, shed)
	if e := ctrl.Epoch(); e != 2 {
		t.Fatalf("epoch %d after shed publish, want 2", e)
	}
	if fetched, err := agent.SyncIfStale(); err != nil || !fetched {
		t.Fatalf("SyncIfStale after shed publish: fetched=%v err=%v", fetched, err)
	}
	if w := agent.Decider().ShedWidth(); math.Abs(w-cut.Width()) > 1e-12 {
		t.Fatalf("wire shed width %v, want %v", w, cut.Width())
	}
	other := NewAgent(ctrl.Addr(), (node+1)%len(plan.Manifests))
	if _, err := other.Sync(); err != nil {
		t.Fatal(err)
	}
	if w := other.Decider().ShedWidth(); w != 0 {
		t.Fatalf("non-shedding node received shed width %v", w)
	}

	// An explicit clear restores the node and bumps the epoch once.
	ctrl.PublishShed(node, nil)
	if e := ctrl.Epoch(); e != 3 {
		t.Fatalf("epoch %d after shed clear, want 3", e)
	}
	if _, err := agent.SyncIfStale(); err != nil {
		t.Fatal(err)
	}
	if w := agent.Decider().ShedWidth(); w != 0 {
		t.Fatalf("shed width %v after clear", w)
	}

	// A fresh plan supersedes all emergency degradation.
	ctrl.PublishShed(node, shed)
	ctrl.UpdatePlan(plan)
	if e := ctrl.Epoch(); e != 5 {
		t.Fatalf("epoch %d after shed+replan, want 5", e)
	}
	if _, err := agent.SyncIfStale(); err != nil {
		t.Fatal(err)
	}
	if w := agent.Decider().ShedWidth(); w != 0 {
		t.Fatalf("replan left shed width %v in the manifest", w)
	}
}
