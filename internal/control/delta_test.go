package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nwdeploy/internal/traffic"
)

// decidersAgree asserts two deciders give identical DecideMask verdicts
// on every session — the verdict-for-verdict equality the delta protocol
// promises against a full fetch.
func decidersAgree(t *testing.T, a, b *Decider, sessions []traffic.Session, label string) {
	t.Helper()
	for i := range sessions {
		ma, oka := a.DecideMask(&sessions[i])
		mb, okb := b.DecideMask(&sessions[i])
		if oka != okb || ma != mb {
			t.Fatalf("%s: session %d verdicts diverge: %#x/%v vs %#x/%v",
				label, i, ma, oka, mb, okb)
		}
	}
	if a.AssignedWidth() != b.AssignedWidth() {
		t.Fatalf("%s: assigned widths diverge: %v vs %v", label, a.AssignedWidth(), b.AssignedWidth())
	}
}

// TestDeltaApplyEqualsFullManifest is the core property test: for every
// pair of manifests drawn from differently-seeded solved plans, applying
// DiffManifests' delta to the old manifest must produce a manifest whose
// decider agrees verdict-for-verdict with the new one.
func TestDeltaApplyEqualsFullManifest(t *testing.T) {
	const node = 4
	seeds := []int64{1, 2, 3, 5}
	type gen struct {
		m        *Manifest
		sessions []traffic.Session
	}
	var gens []gen
	for i, s := range seeds {
		plan, sessions := solvedPlan(t, s)
		m, err := ManifestFromPlan(plan, node, uint64(i+1), 99)
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, gen{m, sessions})
	}
	for i := range gens {
		for j := range gens {
			if i == j {
				continue
			}
			old, new := gens[i].m, gens[j].m
			d, ok := DiffManifests(old, new)
			if !ok {
				t.Fatalf("diff %d->%d refused: same node/classes/key must diff", i, j)
			}
			applied, err := ApplyDelta(old, d)
			if err != nil {
				t.Fatalf("apply %d->%d: %v", i, j, err)
			}
			if applied.Epoch != new.Epoch {
				t.Fatalf("apply %d->%d: epoch %d, want %d", i, j, applied.Epoch, new.Epoch)
			}
			label := fmt.Sprintf("delta %d->%d", i, j)
			decidersAgree(t, NewDecider(applied), NewDecider(new), gens[j].sessions[:500], label)
		}
	}
}

// TestDeltaSequenceEqualsFullManifest applies a chain of deltas —
// including shed transitions — and requires the accumulated manifest to
// match a direct fetch of the final generation.
func TestDeltaSequenceEqualsFullManifest(t *testing.T) {
	const node = 2
	plan1, sessions := solvedPlan(t, 7)
	plan2, _ := solvedPlan(t, 8)
	m1, _ := ManifestFromPlan(plan1, node, 1, 5)
	m2, _ := ManifestFromPlan(plan2, node, 2, 5)
	m3, _ := ManifestFromPlan(plan2, node, 3, 5)
	m3.Shed = []WireAssignment{{Class: 0, Unit: m3.Assignments[0].Unit,
		Ranges: []WireRange{m3.Assignments[0].Ranges[0]}}}
	m4, _ := ManifestFromPlan(plan1, node, 4, 5)

	cur := m1
	for _, next := range []*Manifest{m2, m3, m4} {
		d, ok := DiffManifests(cur, next)
		if !ok {
			t.Fatalf("diff to epoch %d refused", next.Epoch)
		}
		applied, err := ApplyDelta(cur, d)
		if err != nil {
			t.Fatal(err)
		}
		decidersAgree(t, NewDecider(applied), NewDecider(next), sessions[:500],
			fmt.Sprintf("chain epoch %d", next.Epoch))
		cur = applied
	}
}

// TestDiffManifestsRefusals: node, hash-key, and class-table changes must
// refuse to diff (the full-manifest fallback), and a base mismatch must
// surface ErrDeltaGap on apply.
func TestDiffManifestsRefusals(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	m1, _ := ManifestFromPlan(plan, 1, 1, 5)
	m2, _ := ManifestFromPlan(plan, 1, 2, 5)

	other, _ := ManifestFromPlan(plan, 2, 2, 5)
	if _, ok := DiffManifests(m1, other); ok {
		t.Fatal("diff across nodes must refuse")
	}
	rekeyed, _ := ManifestFromPlan(plan, 1, 2, 6)
	if _, ok := DiffManifests(m1, rekeyed); ok {
		t.Fatal("diff across hash keys must refuse")
	}
	reclassed, _ := ManifestFromPlan(plan, 1, 2, 5)
	reclassed.Classes = append([]WireClass(nil), reclassed.Classes...)
	reclassed.Classes[0].Name = "renamed"
	if _, ok := DiffManifests(m1, reclassed); ok {
		t.Fatal("diff across class tables must refuse")
	}

	d, ok := DiffManifests(m1, m2)
	if !ok {
		t.Fatal("plain epoch bump must diff")
	}
	stale, _ := ManifestFromPlan(plan, 1, 7, 5)
	if _, err := ApplyDelta(stale, d); !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("base mismatch returned %v, want ErrDeltaGap", err)
	}
}

// TestSubscribeDeltaEndToEnd drives the full v2 path over real TCP: a
// delta-subscribed agent and a plain full-fetch agent must agree verdict
// for verdict after every publish, in both encodings, and the delta agent
// must actually sync via deltas (not silent full fallbacks).
func TestSubscribeDeltaEndToEnd(t *testing.T) {
	for _, enc := range []Encoding{EncodingJSON, EncodingBinary} {
		name := map[Encoding]string{EncodingJSON: "json", EncodingBinary: "bin"}[enc]
		t.Run(name, func(t *testing.T) {
			plan1, sessions := solvedPlan(t, 4)
			plan2, _ := solvedPlan(t, 9)
			ctrl, err := NewController("127.0.0.1:0", 777)
			if err != nil {
				t.Fatal(err)
			}
			defer ctrl.Close()
			ctrl.UpdatePlan(plan1)

			const node = 3
			deltaAgent := NewAgent(ctrl.Addr(), node)
			fullAgent := NewAgent(ctrl.Addr(), node)
			opts := SubscribeOptions{Mode: ModeIfStale, Deltas: true, Encoding: enc}

			// First sync: no base manifest, so the delta exchange falls
			// back to a full manifest.
			sub, err := deltaAgent.Subscribe(opts)
			if err != nil {
				t.Fatal(err)
			}
			if u := sub.Last(); !u.Changed || !u.Full || u.Epoch != 1 {
				t.Fatalf("first sync: %+v, want full install of epoch 1", u)
			}

			if _, err := fullAgent.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
				t.Fatal(err)
			}
			decidersAgree(t, deltaAgent.Decider(), fullAgent.Decider(), sessions[:400], "epoch 1")

			// Steady state: the delta exchange doubles as the probe.
			sub, err = deltaAgent.Subscribe(opts)
			if err != nil {
				t.Fatal(err)
			}
			if u := sub.Last(); u.Changed || u.Epoch != 1 {
				t.Fatalf("steady-state sync: %+v, want unchanged epoch 1", u)
			}

			// Plan change: this sync must install via a delta.
			ctrl.UpdatePlan(plan2)
			sub, err = deltaAgent.Subscribe(opts)
			if err != nil {
				t.Fatal(err)
			}
			if u := sub.Last(); !u.Changed || u.Full || u.Epoch != 2 {
				t.Fatalf("post-publish sync: %+v, want delta install of epoch 2", u)
			}
			if _, err := fullAgent.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
				t.Fatal(err)
			}
			decidersAgree(t, deltaAgent.Decider(), fullAgent.Decider(), sessions[:400], "epoch 2")

			// Shed publish: delta carries the shed replacement.
			ctrl.PublishShed(node, []WireAssignment{{
				Class: 0, Unit: plan2.Inst.Units[0].Key,
				Ranges: []WireRange{{Lo: 0, Hi: 1}},
			}})
			sub, err = deltaAgent.Subscribe(opts)
			if err != nil {
				t.Fatal(err)
			}
			if u := sub.Last(); !u.Changed || u.Full {
				t.Fatalf("shed sync: %+v, want delta install", u)
			}
			if _, err := fullAgent.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
				t.Fatal(err)
			}
			decidersAgree(t, deltaAgent.Decider(), fullAgent.Decider(), sessions[:400], "shed epoch")
			if deltaAgent.Decider().ShedWidth() == 0 {
				t.Fatal("shed did not reach the delta agent")
			}
		})
	}
}

// TestSubscribeEpochGapFallsBackToFull ages the agent's held epoch out of
// the controller's delta history and requires a clean full-manifest
// resync.
func TestSubscribeEpochGapFallsBackToFull(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 7, DeltaHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	a := NewAgent(ctrl.Addr(), 1)
	opts := SubscribeOptions{Mode: ModeIfStale, Deltas: true}
	if _, err := a.Subscribe(opts); err != nil {
		t.Fatal(err)
	}

	// Push the history window (2) past the agent's held epoch 1.
	for i := 0; i < 4; i++ {
		ctrl.UpdatePlan(plan)
	}
	sub, err := a.Subscribe(opts)
	if err != nil {
		t.Fatal(err)
	}
	if u := sub.Last(); !u.Changed || !u.Full || u.Epoch != 5 {
		t.Fatalf("gap sync: %+v, want full install of epoch 5", u)
	}

	// Within the window again: back to deltas.
	ctrl.UpdatePlan(plan)
	sub, err = a.Subscribe(opts)
	if err != nil {
		t.Fatal(err)
	}
	if u := sub.Last(); !u.Changed || u.Full || u.Epoch != 6 {
		t.Fatalf("in-window sync: %+v, want delta install of epoch 6", u)
	}
}

// legacyV1Controller is a minimal pre-v2 controller: full-JSON manifests
// only, "unknown op" for anything else — exactly what an old binary in
// the field answers a v2 request with.
type legacyV1Controller struct {
	ln       net.Listener
	manifest *Manifest
	deltaOps atomic.Int64
}

func startLegacyV1(t *testing.T, m *Manifest) *legacyV1Controller {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lc := &legacyV1Controller{ln: ln, manifest: m}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req request
				line, err := bufio.NewReader(conn).ReadBytes('\n')
				if err != nil || json.Unmarshal(line, &req) != nil {
					return
				}
				enc := json.NewEncoder(conn)
				switch req.Op {
				case "epoch":
					_ = enc.Encode(response{Epoch: lc.manifest.Epoch})
				case "manifest":
					_ = enc.Encode(response{Epoch: lc.manifest.Epoch, Manifest: lc.manifest})
				default:
					if req.Op == "delta" {
						lc.deltaOps.Add(1)
					}
					_ = enc.Encode(response{Epoch: lc.manifest.Epoch, Err: fmt.Sprintf("unknown op %q", req.Op)})
				}
			}()
		}
	}()
	return lc
}

// TestSubscribeDowngradesAgainstV1Controller: a delta subscription
// against an old controller must transparently downgrade to full JSON
// fetches — once — and never retry the delta op on later syncs.
func TestSubscribeDowngradesAgainstV1Controller(t *testing.T) {
	plan, sessions := solvedPlan(t, 4)
	m, err := ManifestFromPlan(plan, 3, 1, 777)
	if err != nil {
		t.Fatal(err)
	}
	lc := startLegacyV1(t, m)
	defer lc.ln.Close()

	a := NewAgent(lc.ln.Addr().String(), 3)
	opts := SubscribeOptions{Mode: ModeIfStale, Deltas: true, Encoding: EncodingBinary}
	sub, err := a.Subscribe(opts)
	if err != nil {
		t.Fatalf("downgrade sync failed: %v", err)
	}
	if u := sub.Last(); !u.Changed || !u.Full || u.Epoch != 1 {
		t.Fatalf("downgrade sync: %+v, want full install of epoch 1", u)
	}
	if got := lc.deltaOps.Load(); got != 1 {
		t.Fatalf("v1 controller saw %d delta ops on first sync, want 1", got)
	}
	full := NewDecider(m)
	decidersAgree(t, a.Decider(), full, sessions[:300], "downgraded")

	// Later syncs go straight to the legacy exchange: no more delta ops.
	for i := 0; i < 3; i++ {
		if _, err := a.Subscribe(opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := lc.deltaOps.Load(); got != 1 {
		t.Fatalf("v1 controller saw %d delta ops after downgrade, want 1 (downgrade must latch)", got)
	}
}

// TestServeNodesRejectsForeignNode: a region-scoped controller must
// refuse manifest and delta service for nodes outside its region.
func TestServeNodesRejectsForeignNode(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 7, ServeNodes: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	member := NewAgent(ctrl.Addr(), 2)
	if _, err := member.Subscribe(SubscribeOptions{Mode: ModeOnce}); err != nil {
		t.Fatalf("member sync failed: %v", err)
	}
	foreign := NewAgent(ctrl.Addr(), 7)
	if _, err := foreign.Subscribe(SubscribeOptions{Mode: ModeOnce}); err == nil {
		t.Fatal("foreign full fetch must be refused")
	}
	if _, err := foreign.Subscribe(SubscribeOptions{Mode: ModeIfStale, Deltas: true}); err == nil {
		t.Fatal("foreign delta sync must be refused")
	}
	// Epoch probes stay open to everyone (they carry no manifest data).
	if e, err := foreign.RemoteEpoch(); err != nil || e != 1 {
		t.Fatalf("foreign epoch probe: %d, %v", e, err)
	}
}

// TestDeprecatedWrappersDelegate pins the compile-and-behavior contract
// of the deprecated trio: Sync, SyncIfStale, and Watch keep their exact
// signatures and semantics while delegating to Subscribe.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	// The wrappers must satisfy their historical signatures exactly.
	var (
		syncFn    func() (uint64, error)
		ifStaleFn func() (bool, error)
		watchFn   func(time.Duration, <-chan struct{}) <-chan uint64
	)
	a := NewAgent(ctrl.Addr(), 1)
	syncFn, ifStaleFn, watchFn = a.Sync, a.SyncIfStale, a.Watch

	epoch, err := syncFn()
	if err != nil || epoch != 1 {
		t.Fatalf("Sync: %d, %v", epoch, err)
	}
	fetched, err := ifStaleFn()
	if err != nil || fetched {
		t.Fatalf("SyncIfStale fresh: %v, %v (want no fetch)", fetched, err)
	}
	ctrl.UpdatePlan(plan)
	fetched, err = ifStaleFn()
	if err != nil || !fetched {
		t.Fatalf("SyncIfStale stale: %v, %v (want fetch)", fetched, err)
	}

	stop := make(chan struct{})
	ch := watchFn(2*time.Millisecond, stop)
	ctrl.UpdatePlan(plan)
	select {
	case e := <-ch:
		if e != 3 {
			t.Fatalf("Watch delivered epoch %d, want 3", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch delivered nothing")
	}
	close(stop)
	if _, ok := <-ch; ok {
		// Drain until close; one buffered epoch may still be in flight.
		for range ch {
		}
	}
}

// TestSubscribeModeOnceMatchesSync: the redesigned one-shot sync and the
// deprecated wrapper must install identical state from identical wire
// exchanges.
func TestSubscribeModeOnceMatchesSync(t *testing.T) {
	plan, sessions := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	viaWrapper := NewAgent(ctrl.Addr(), 2)
	viaSubscribe := NewAgent(ctrl.Addr(), 2)
	if _, err := viaWrapper.Sync(); err != nil {
		t.Fatal(err)
	}
	sub, err := viaSubscribe.Subscribe(SubscribeOptions{Mode: ModeOnce})
	if err != nil {
		t.Fatal(err)
	}
	if u := sub.Last(); u.Epoch != 1 || !u.Changed || !u.Full {
		t.Fatalf("ModeOnce update: %+v", u)
	}
	decidersAgree(t, viaWrapper.Decider(), viaSubscribe.Decider(), sessions[:300], "wrapper vs subscribe")
}

// TestWatchStopsPollGoroutine is the goleak-style lifecycle test: after a
// watch subscription is stopped, the poll goroutine (and the wrapper's
// forwarding goroutine) must exit and the ticker be released. Close joins
// the goroutine, so completion is deterministic, not best-effort.
func TestWatchStopsPollGoroutine(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	before := runtime.NumGoroutine()
	a := NewAgent(ctrl.Addr(), 1)

	// The redesigned API: Close blocks until the poll goroutine is gone.
	sub, err := a.Subscribe(SubscribeOptions{Mode: ModeWatch, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Updates():
	case <-time.After(5 * time.Second):
		t.Fatal("watch subscription never synced")
	}
	sub.Close()
	select {
	case <-sub.Done():
	default:
		t.Fatal("Done not closed after Close returned")
	}
	sub.Close() // idempotent

	// The deprecated wrapper: closing stop must end both goroutines.
	stop := make(chan struct{})
	ch := a.Watch(time.Millisecond, stop)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("watch wrapper never synced")
	}
	close(stop)
	for range ch { // channel closes once the goroutines wind down
	}

	// Goroutine count returns to the baseline (poll impl details like
	// runtime timer goroutines settle asynchronously, hence the retry).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubscribeWatchDeliversUpdates: ModeWatch delivers installed
// generations through both the callback and the channel.
func TestSubscribeWatchDeliversUpdates(t *testing.T) {
	plan, _ := solvedPlan(t, 4)
	ctrl, err := NewController("127.0.0.1:0", 777)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.UpdatePlan(plan)

	var cbEpochs atomic.Int64
	a := NewAgent(ctrl.Addr(), 1)
	sub, err := a.Subscribe(SubscribeOptions{
		Mode:     ModeWatch,
		Interval: time.Millisecond,
		Deltas:   true,
		OnUpdate: func(u Update) { cbEpochs.Store(int64(u.Epoch)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitEpoch := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			select {
			case u := <-sub.Updates():
				if u.Epoch == want {
					return
				}
			case <-time.After(time.Until(deadline)):
				t.Fatalf("watch never delivered epoch %d", want)
			}
		}
	}
	waitEpoch(1)
	ctrl.UpdatePlan(plan)
	waitEpoch(2)
	if got := cbEpochs.Load(); got != 2 {
		t.Fatalf("callback saw epoch %d, want 2", got)
	}
	if d := a.Decider(); d == nil || d.Epoch() != 2 {
		t.Fatal("watch did not install the new generation")
	}
}
