package control

import (
	"testing"

	"nwdeploy/internal/obs"
)

// TestTraceContextPropagatesOverWire exercises the stitch the tracing
// layer relies on: the controller stamps its publish context on served
// manifests, the agent's decider surfaces it, and traced agent requests
// are counted server-side — all over the real loopback protocol.
func TestTraceContextPropagatesOverWire(t *testing.T) {
	plan, _ := solvedPlan(t, 6)
	reg := obs.New()
	ctrl, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 9, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	agent := NewAgent(ctrl.Addr(), 0)

	// Untraced publish: manifests carry no context.
	ctrl.UpdatePlan(plan)
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	if wt := agent.Decider().TraceContext(); wt != nil {
		t.Fatalf("untraced publish produced trace context %+v", wt)
	}

	// Traced publish: the exact (trace, span) pair crosses the wire.
	pub := &WireTrace{Trace: "0000000000000001", Span: "0000000000000002"}
	ctrl.SetTrace(pub)
	ctrl.UpdatePlan(plan)
	agent.SetTrace(&WireTrace{Trace: "0000000000000001", Span: "0000000000000003"})
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	got := agent.Decider().TraceContext()
	if got == nil || *got != *pub {
		t.Fatalf("trace context = %+v, want %+v", got, pub)
	}

	snap := reg.Snapshot()
	if n := snap.Counters["control.requests_traced"]; n != 1 {
		t.Fatalf("control.requests_traced = %d, want 1 (one traced Sync)", n)
	}

	// Clearing both sides restores the pre-trace encoding behavior.
	ctrl.SetTrace(nil)
	ctrl.UpdatePlan(plan)
	agent.SetTrace(nil)
	if _, err := agent.Sync(); err != nil {
		t.Fatal(err)
	}
	if wt := agent.Decider().TraceContext(); wt != nil {
		t.Fatalf("cleared trace still served context %+v", wt)
	}
	if n := reg.Snapshot().Counters["control.requests_traced"]; n != 1 {
		t.Fatal("untraced request counted as traced")
	}
}
