// Package control implements the distribution side of the system: the
// paper envisions "a centralized operations center [that] periodically
// configures the NIDS responsibilities of the different nodes" from
// NetFlow-style reports, re-running the optimization every few minutes.
// This package provides the wire representation of sampling manifests, a
// TCP controller that serves them, an agent that fetches them, and a
// standalone Decider that executes the Figure 3 per-packet check from the
// wire form alone — a node needs no access to the planner, the LP, or the
// topology objects to enforce its assignment.
package control

import (
	"fmt"
	"sort"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// WireTrace is the optional trace-context header carried on manifests and
// requests: the (trace, span) IDs — 16 hex digits each, as rendered by
// trace.Span — of the control-plane action that produced the message. It
// is what stitches a controller publish to every agent's fetch of the
// resulting manifest. Pointer-valued with omitempty everywhere it
// appears, so untraced deployments keep the pre-trace wire encoding
// byte-for-byte and old peers that have never heard of it interoperate.
type WireTrace struct {
	Trace string `json:"trace"`
	Span  string `json:"span"`
}

// WireRange is one half-open hash range on the wire.
type WireRange struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// WireClass carries the class semantics a node needs to resolve GETCLASS,
// GETCOORDUNIT, and HASH for incoming packets.
type WireClass struct {
	Name      string   `json:"name"`
	Scope     int      `json:"scope"` // core.Scope
	Agg       int      `json:"agg"`   // core.Aggregation
	Ports     []uint16 `json:"ports,omitempty"`
	Transport uint8    `json:"transport,omitempty"`
}

// WireAssignment is one (class, coordination unit) range assignment.
type WireAssignment struct {
	Class  int         `json:"class"` // index into Manifest.Classes
	Unit   [2]int      `json:"unit"`  // coordination-unit key
	Ranges []WireRange `json:"ranges"`
}

// Manifest is one node's complete sampling manifest: the Figure 2 output
// in distributable form.
type Manifest struct {
	Node        int              `json:"node"`
	Epoch       uint64           `json:"epoch"`
	HashKey     uint32           `json:"hash_key"`
	Classes     []WireClass      `json:"classes"`
	Assignments []WireAssignment `json:"assignments"`
	// Shed lists ranges within Assignments that the node's load governor
	// has given up under overload: the decider subtracts them from the
	// assignment before answering ShouldAnalyze, so peers and audits see
	// exactly the responsibility that was dropped. Empty in steady state
	// (and omitted from the wire form, keeping the base encoding stable).
	Shed []WireAssignment `json:"shed,omitempty"`
	// Trace is the context of the publish that produced this manifest
	// generation; nil when the controller runs untraced.
	Trace *WireTrace `json:"trace,omitempty"`
}

// ShedFromRanges converts a governor's unit-indexed shed state into wire
// assignments keyed the way manifests are (class, unit key). Unit order is
// ascending index, so the wire form is deterministic for a given shed.
func ShedFromRanges(plan *core.Plan, shed map[int]hashing.RangeSet) []WireAssignment {
	if len(shed) == 0 {
		return nil
	}
	units := make([]int, 0, len(shed))
	for ui := range shed {
		units = append(units, ui)
	}
	sort.Ints(units)
	out := make([]WireAssignment, 0, len(units))
	for _, ui := range units {
		u := plan.Inst.Units[ui]
		wa := WireAssignment{Class: u.Class, Unit: u.Key}
		for _, r := range shed[ui] {
			if r.Width() > 0 {
				wa.Ranges = append(wa.Ranges, WireRange{Lo: r.Lo, Hi: r.Hi})
			}
		}
		if len(wa.Ranges) > 0 {
			out = append(out, wa)
		}
	}
	return out
}

// ManifestFromPlan extracts node j's manifest from a solved plan, stamped
// with the given epoch and hash key.
func ManifestFromPlan(plan *core.Plan, node int, epoch uint64, hashKey uint32) (*Manifest, error) {
	if node < 0 || node >= len(plan.Manifests) {
		return nil, fmt.Errorf("control: node %d out of range", node)
	}
	m := &Manifest{Node: node, Epoch: epoch, HashKey: hashKey}
	for _, c := range plan.Inst.Classes {
		m.Classes = append(m.Classes, WireClass{
			Name:      c.Name,
			Scope:     int(c.Scope),
			Agg:       int(c.Agg),
			Ports:     c.Ports,
			Transport: c.Transport,
		})
	}
	for ui, rs := range plan.Manifests[node].Ranges {
		u := plan.Inst.Units[ui]
		wa := WireAssignment{Class: u.Class, Unit: u.Key}
		for _, r := range rs {
			if r.Width() > 0 {
				wa.Ranges = append(wa.Ranges, WireRange{Lo: r.Lo, Hi: r.Hi})
			}
		}
		if len(wa.Ranges) > 0 {
			m.Assignments = append(m.Assignments, wa)
		}
	}
	return m, nil
}

// Decider executes the per-packet coordination check of Figure 3 from a
// wire manifest, with no dependency on the planner's data structures.
type Decider struct {
	manifest *Manifest
	hasher   hashing.Hasher
	ranges   map[assignKey]hashing.RangeSet
	shed     map[assignKey]hashing.RangeSet
}

type assignKey struct {
	class int
	unit  [2]int
}

// NewDecider indexes a manifest for per-packet use. Shed ranges are
// subtracted at index time: the effective assignment a decider enforces is
// Assignments minus Shed, exactly the responsibility the governor kept.
func NewDecider(m *Manifest) *Decider {
	d := &Decider{
		manifest: m,
		hasher:   hashing.Hasher{Key: m.HashKey},
		ranges:   make(map[assignKey]hashing.RangeSet, len(m.Assignments)),
		shed:     make(map[assignKey]hashing.RangeSet, len(m.Shed)),
	}
	for _, a := range m.Shed {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		d.shed[assignKey{a.Class, a.Unit}] = rs
	}
	for _, a := range m.Assignments {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		key := assignKey{a.Class, a.Unit}
		if cut, ok := d.shed[key]; ok {
			rs = rs.Subtract(cut)
		}
		d.ranges[key] = rs
	}
	return d
}

// TraceContext returns the trace context of the publish that produced the
// manifest this decider enforces, or nil when the controller ran
// untraced. Agents attach it to their fetch events, which is how one
// epoch's trace crosses the wire.
func (d *Decider) TraceContext() *WireTrace { return d.manifest.Trace }

// ShedWidth returns the total hash-space width the manifest's shed section
// removed from this node's assignment — the audit-side measure of how much
// responsibility the governor gave up.
func (d *Decider) ShedWidth() float64 {
	var w float64
	for _, rs := range d.shed {
		for _, r := range rs {
			w += r.Width()
		}
	}
	return w
}

// Epoch reports the manifest generation this decider enforces.
func (d *Decider) Epoch() uint64 { return d.manifest.Epoch }

// CoversUnit reports whether this manifest assigns hash point x of the
// (class, unit-key) coordination component to the node — the audit-side
// complement of ShouldAnalyze, used by the cluster runtime to measure a
// deployment's achieved coverage without synthesizing sessions.
func (d *Decider) CoversUnit(class int, key [2]int, x float64) bool {
	return d.ranges[assignKey{class, key}].Contains(x)
}

// AssignedWidth returns the total hash-space width the manifest assigns
// to the node, summed across its (class, unit) assignments — the node's
// share of the network-wide analysis work, and the quantity the cluster
// runtime exports as a per-agent coverage gauge.
func (d *Decider) AssignedWidth() float64 {
	var w float64
	for _, rs := range d.ranges {
		for _, r := range rs {
			w += r.Width()
		}
	}
	return w
}

// ShouldAnalyze resolves whether this node analyzes the session for the
// class. Unit resolution follows the class scope exactly as the planner's
// Instance.UnitFor does, but using only the session's addressing (the
// node-prefix convention stands in for the paper's prefix-to-ingress
// configuration files).
func (d *Decider) ShouldAnalyze(class int, s traffic.Session) bool {
	if class < 0 || class >= len(d.manifest.Classes) {
		return false
	}
	c := d.manifest.Classes[class]
	if c.Transport != 0 && s.Tuple.Proto != c.Transport {
		return false
	}
	if len(c.Ports) > 0 {
		ok := false
		for _, p := range c.Ports {
			if s.Tuple.DstPort == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	var key [2]int
	switch core.Scope(c.Scope) {
	case core.PerIngress:
		key = [2]int{s.Src, -1}
	case core.PerEgress:
		key = [2]int{s.Dst, -1}
	default:
		a, b := s.Src, s.Dst
		if a > b {
			a, b = b, a
		}
		key = [2]int{a, b}
	}
	rs, ok := d.ranges[assignKey{class, key}]
	if !ok {
		return false
	}
	var h float64
	switch core.Aggregation(c.Agg) {
	case core.ByFlow:
		h = d.hasher.Flow(s.Tuple)
	case core.BySource:
		h = d.hasher.Source(s.Tuple)
	case core.ByDestination:
		h = d.hasher.Destination(s.Tuple)
	default:
		h = d.hasher.Session(s.Tuple)
	}
	return rs.Contains(h)
}
