// Package control implements the distribution side of the system: the
// paper envisions "a centralized operations center [that] periodically
// configures the NIDS responsibilities of the different nodes" from
// NetFlow-style reports, re-running the optimization every few minutes.
// This package provides the wire representation of sampling manifests, a
// TCP controller that serves them, an agent that fetches them, and a
// standalone Decider that executes the Figure 3 per-packet check from the
// wire form alone — a node needs no access to the planner, the LP, or the
// topology objects to enforce its assignment.
package control

import (
	"fmt"
	"sort"

	"nwdeploy/internal/core"
	"nwdeploy/internal/hashing"
	"nwdeploy/internal/traffic"
)

// WireTrace is the optional trace-context header carried on manifests and
// requests: the (trace, span) IDs — 16 hex digits each, as rendered by
// trace.Span — of the control-plane action that produced the message. It
// is what stitches a controller publish to every agent's fetch of the
// resulting manifest. Pointer-valued with omitempty everywhere it
// appears, so untraced deployments keep the pre-trace wire encoding
// byte-for-byte and old peers that have never heard of it interoperate.
type WireTrace struct {
	Trace string `json:"trace"`
	Span  string `json:"span"`
}

// WireRange is one half-open hash range on the wire.
type WireRange struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// WireClass carries the class semantics a node needs to resolve GETCLASS,
// GETCOORDUNIT, and HASH for incoming packets.
type WireClass struct {
	Name      string   `json:"name"`
	Scope     int      `json:"scope"` // core.Scope
	Agg       int      `json:"agg"`   // core.Aggregation
	Ports     []uint16 `json:"ports,omitempty"`
	Transport uint8    `json:"transport,omitempty"`
}

// WireAssignment is one (class, coordination unit) range assignment.
type WireAssignment struct {
	Class  int         `json:"class"` // index into Manifest.Classes
	Unit   [2]int      `json:"unit"`  // coordination-unit key
	Ranges []WireRange `json:"ranges"`
}

// Manifest is one node's complete sampling manifest: the Figure 2 output
// in distributable form.
type Manifest struct {
	Node        int              `json:"node"`
	Epoch       uint64           `json:"epoch"`
	HashKey     uint32           `json:"hash_key"`
	Classes     []WireClass      `json:"classes"`
	Assignments []WireAssignment `json:"assignments"`
	// Shed lists ranges within Assignments that the node's load governor
	// has given up under overload: the decider subtracts them from the
	// assignment before answering ShouldAnalyze, so peers and audits see
	// exactly the responsibility that was dropped. Empty in steady state
	// (and omitted from the wire form, keeping the base encoding stable).
	Shed []WireAssignment `json:"shed,omitempty"`
	// Trace is the context of the publish that produced this manifest
	// generation; nil when the controller runs untraced.
	Trace *WireTrace `json:"trace,omitempty"`
}

// ShedFromRanges converts a governor's unit-indexed shed state into wire
// assignments keyed the way manifests are (class, unit key). Unit order is
// ascending index, so the wire form is deterministic for a given shed.
func ShedFromRanges(plan *core.Plan, shed map[int]hashing.RangeSet) []WireAssignment {
	if len(shed) == 0 {
		return nil
	}
	units := make([]int, 0, len(shed))
	for ui := range shed {
		units = append(units, ui)
	}
	sort.Ints(units)
	out := make([]WireAssignment, 0, len(units))
	for _, ui := range units {
		u := plan.Inst.Units[ui]
		wa := WireAssignment{Class: u.Class, Unit: u.Key}
		for _, r := range shed[ui] {
			if r.Width() > 0 {
				wa.Ranges = append(wa.Ranges, WireRange{Lo: r.Lo, Hi: r.Hi})
			}
		}
		if len(wa.Ranges) > 0 {
			out = append(out, wa)
		}
	}
	return out
}

// ManifestFromPlan extracts node j's manifest from a solved plan, stamped
// with the given epoch and hash key. Assignments are emitted in ascending
// unit-index order, so the wire encoding of a given plan is deterministic
// — the property the delta protocol's byte-level fixtures and the
// same-seed determinism tests rely on (the manifest's Ranges field is a
// map, whose iteration order would otherwise leak into the wire bytes).
func ManifestFromPlan(plan *core.Plan, node int, epoch uint64, hashKey uint32) (*Manifest, error) {
	if node < 0 || node >= len(plan.Manifests) {
		return nil, fmt.Errorf("control: node %d out of range", node)
	}
	m := &Manifest{Node: node, Epoch: epoch, HashKey: hashKey}
	for _, c := range plan.Inst.Classes {
		m.Classes = append(m.Classes, WireClass{
			Name:      c.Name,
			Scope:     int(c.Scope),
			Agg:       int(c.Agg),
			Ports:     c.Ports,
			Transport: c.Transport,
		})
	}
	ranges := plan.Manifests[node].Ranges
	units := make([]int, 0, len(ranges))
	for ui := range ranges {
		units = append(units, ui)
	}
	sort.Ints(units)
	for _, ui := range units {
		u := plan.Inst.Units[ui]
		wa := WireAssignment{Class: u.Class, Unit: u.Key}
		for _, r := range ranges[ui] {
			if r.Width() > 0 {
				wa.Ranges = append(wa.Ranges, WireRange{Lo: r.Lo, Hi: r.Hi})
			}
		}
		if len(wa.Ranges) > 0 {
			m.Assignments = append(m.Assignments, wa)
		}
	}
	return m, nil
}

// Decider executes the per-packet coordination check of Figure 3 from a
// wire manifest, with no dependency on the planner's data structures.
//
// Internally the manifest is flattened at construction into a two-level
// bucket index: per class, a dense bucket array keyed by the unit key's
// first element addresses a contiguous group of (second element, span)
// entries, whose spans point into contiguous sorted range groups in one
// shared hashing.Arena. A per-packet lookup is then two array loads, a
// scan of a near-always-tiny bucket, and a cache-resident range probe —
// no map hashing, no slice-of-slices pointer chase, and no allocation.
// The widths are precomputed at build time in canonical (class,
// sorted-unit-key, ascending-Lo) order, so AssignedWidth and ShedWidth
// are bit-identical however the manifest's assignment slices were
// permuted (map-iteration summation used to make the last ULP vary run
// to run).
type Decider struct {
	manifest *Manifest
	hasher   hashing.Hasher
	arena    hashing.Arena
	classes  []classIndex // indexed by class; at least len(manifest.Classes)
	meta     []classMeta  // indexed by class; len(manifest.Classes)

	// units and entries are the batch path's scope-grouped view of the same
	// assignments: per scope slot, one unit directory over (k0, k1) whose
	// hits address a contiguous group of (class bit, agg slot, span)
	// entries. DecideMask then performs at most three unit lookups per
	// session — every class sharing a scope shares the lookup — where the
	// per-class view needs one lookup per eligible class (the paper's
	// 21-module sweep has a dozen duplicate-scope modules). scopeMask[s]
	// marks the classes of scope s, letting the batch loop skip scopes no
	// eligible class uses.
	units     [3]unitIndex
	entries   []uentry
	scopeMask [3]uint64
	// scopeAggs[s] is the set of agg slots (bit a = slot a) used by the
	// entries of scope s. After the unit lookups resolve, DecideMask
	// computes exactly the hashes the hit scopes need, back to back: the
	// hash chains are serially dependent internally but independent of
	// each other, so issued together they overlap in flight instead of
	// serializing behind lazy checks inside the entry scan.
	scopeAggs [3]uint8

	assignedWidth float64
	shedWidth     float64

	// Eligibility masks (manifests with at most 64 classes, i.e. all of
	// them in practice): bit ci of a mask marks class ci. DecideAll
	// resolves the session filter of every class at once — one transport
	// mask fetch, one port-list scan — and then visits only the surviving
	// classes, instead of running each class's transport/port checks in
	// turn. maskable gates the path.
	maskable     bool
	nonEmptyMask uint64   // classes with at least one assignment
	anyTransport uint64   // classes with no transport restriction
	transports   []uint8  // distinct restricted transports
	transMasks   []uint64 // classes restricted to transports[i]
	portlessMask uint64   // classes with no port restriction
	portList     []uint16 // distinct restricted ports
	portMasks    []uint64 // classes listing portList[i]
	// portTab direct-maps port → class mask on the low 6 bits when the
	// distinct restricted ports happen to collide nowhere (the common case:
	// a manifest restricts a handful of well-known ports). One probe then
	// replaces the portList scan; portTabOK gates it.
	portTabOK   bool
	portTabKey  [64]uint16
	portTabMask [64]uint64
}

// classIndex is one class's unit-key directory. Unit keys [2]int are
// bucketed densely by their first element (a node ID, so the value range
// is the topology size); each bucket holds the second elements and spans
// of its units, k1-ascending, almost always one or a handful of entries
// (per-ingress/egress units have exactly one, k1 = -1; per-path units
// group the paths through one endpoint).
type classIndex struct {
	minK0    int32
	firstIdx []int32 // len = range(k0)+1; bucket v spans entries [firstIdx[v], firstIdx[v+1])
	second   []int32
	spans    []hashing.Span
}

// lookup finds the range group for unit key (k0, k1).
func (ci *classIndex) lookup(k0, k1 int32) (hashing.Span, bool) {
	v := k0 - ci.minK0
	if v < 0 || int(v)+1 >= len(ci.firstIdx) {
		return hashing.Span{}, false
	}
	for i := ci.firstIdx[v]; i < ci.firstIdx[v+1]; i++ {
		if ci.second[i] == k1 {
			return ci.spans[i], true
		}
	}
	return hashing.Span{}, false
}

// empty reports whether the class has no assignments at all.
func (ci *classIndex) empty() bool { return len(ci.spans) == 0 }

// unitIndex is one scope slot's unit-key directory for the batch path:
// the same dense two-level bucket shape as classIndex, but a hit addresses
// the unit's contiguous entry group [entLo[i], entLo[i+1]) in
// Decider.entries instead of a single span.
type unitIndex struct {
	minK0    int32
	firstIdx []int32 // len = range(k0)+1; bucket v spans units [firstIdx[v], firstIdx[v+1])
	second   []int32
	entLo    []int32 // len = len(second)+1
	// flat is set when every unit key in the scope is (k0, -1) — always
	// true for per-ingress and per-egress scopes, whose unit is a single
	// node. flat[v] is then the unit at bucket v (-1 when absent) and
	// lookup is two dependent loads with no bucket scan.
	flat []int32
}

// lookup finds the entry group for unit key (k0, k1).
func (ui *unitIndex) lookup(k0, k1 int32) (int32, int32, bool) {
	v := k0 - ui.minK0
	if ui.flat != nil {
		if v < 0 || int(v) >= len(ui.flat) || k1 != -1 {
			return 0, 0, false
		}
		i := ui.flat[v]
		if i < 0 {
			return 0, 0, false
		}
		return ui.entLo[i], ui.entLo[i+1], true
	}
	if v < 0 || int(v)+1 >= len(ui.firstIdx) {
		return 0, 0, false
	}
	for i := ui.firstIdx[v]; i < ui.firstIdx[v+1]; i++ {
		if ui.second[i] == k1 {
			return ui.entLo[i], ui.entLo[i+1], true
		}
	}
	return 0, 0, false
}

// uentry is one (class, unit) assignment in the scope-grouped view: the
// class's mask bit and agg slot precomputed next to its range bounds, so
// the batch loop touches one compact record per co-located class. Almost
// every assignment is a single contiguous range (the LP splits hash space,
// it rarely fragments it), so the bounds live inline and the arena is only
// consulted for the rare multi-range entry (multi set, span valid).
type uentry struct {
	lo, hi float64 // inline bounds; [0,0) when multi
	bit    uint64
	span   hashing.Span
	agg    uint8
	multi  bool
}

// classMeta is the per-class session filter, copied out of the wire form
// at build time so the per-packet path reads one compact struct instead
// of chasing the manifest's WireClass slices.
type classMeta struct {
	transport uint8
	scopeSlot uint8
	aggSlot   uint8
	nPorts    uint8
	ports     [4]uint16 // inline fast path; portsExt when nPorts > 4
	portsExt  []uint16
}

func (cm *classMeta) matches(t hashing.FiveTuple) bool {
	if cm.transport != 0 && t.Proto != cm.transport {
		return false
	}
	if cm.nPorts == 0 {
		return true
	}
	n := int(cm.nPorts)
	if n <= len(cm.ports) {
		for i := 0; i < n; i++ {
			if cm.ports[i] == t.DstPort {
				return true
			}
		}
		return false
	}
	for _, p := range cm.portsExt {
		if p == t.DstPort {
			return true
		}
	}
	return false
}

// akey is the canonical build-time identity of one (class, unit)
// assignment, with the unit key unpacked into bucket coordinates.
type akey struct {
	class  int
	k0, k1 int32
}

func (k akey) less(o akey) bool {
	if k.class != o.class {
		return k.class < o.class
	}
	if k.k0 != o.k0 {
		return k.k0 < o.k0
	}
	return k.k1 < o.k1
}

// NewDecider indexes a manifest for per-packet use. Shed ranges are
// subtracted at index time: the effective assignment a decider enforces is
// Assignments minus Shed, exactly the responsibility the governor kept.
func NewDecider(m *Manifest) *Decider {
	d := &Decider{
		manifest: m,
		hasher:   hashing.Hasher{Key: m.HashKey},
	}
	// Group by (class, unit); a duplicate key overwrites, preserving the
	// last-entry-wins behavior of the previous map-backed index.
	shed := make(map[akey]hashing.RangeSet, len(m.Shed))
	shedOrder := make([]akey, 0, len(m.Shed))
	for _, a := range m.Shed {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		k := akey{a.Class, int32(a.Unit[0]), int32(a.Unit[1])}
		if _, dup := shed[k]; !dup {
			shedOrder = append(shedOrder, k)
		}
		shed[k] = rs
	}
	assigned := make(map[akey]hashing.RangeSet, len(m.Assignments))
	assignOrder := make([]akey, 0, len(m.Assignments))
	nClasses := len(m.Classes)
	for _, a := range m.Assignments {
		var rs hashing.RangeSet
		for _, r := range a.Ranges {
			rs = append(rs, hashing.Range{Lo: r.Lo, Hi: r.Hi})
		}
		k := akey{a.Class, int32(a.Unit[0]), int32(a.Unit[1])}
		if cut, ok := shed[k]; ok {
			rs = rs.Subtract(cut)
		}
		if _, dup := assigned[k]; !dup {
			assignOrder = append(assignOrder, k)
		}
		assigned[k] = rs
		if a.Class >= nClasses {
			nClasses = a.Class + 1
		}
	}
	// Canonical build order: class ascending, then unit key ascending. The
	// sort makes each class's entries contiguous, so every class's second
	// and span columns are subslices of two shared backing arrays — one
	// allocation each, and all classes' directories cache-adjacent for the
	// batch path, which walks several per session.
	sort.Slice(assignOrder, func(i, j int) bool { return assignOrder[i].less(assignOrder[j]) })
	d.classes = make([]classIndex, nClasses)
	allSecond := make([]int32, 0, len(assignOrder))
	allSpans := make([]hashing.Span, 0, len(assignOrder))
	allK0 := make([]int32, 0, len(assignOrder))
	classStart := make([]int, nClasses+1)
	for _, k := range assignOrder {
		if k.class < 0 {
			continue
		}
		rs := assigned[k]
		// Width is summed over the raw (sorted-by-Lo) effective set before
		// the arena coalesces anything, preserving the historical sum for
		// manifests with overlapping ranges.
		sorted := append(hashing.RangeSet(nil), rs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
		for _, r := range sorted {
			d.assignedWidth += r.Width()
		}
		allSecond = append(allSecond, k.k1)
		allSpans = append(allSpans, d.arena.Append(sorted))
		allK0 = append(allK0, k.k0)
		classStart[k.class+1] = len(allSecond)
	}
	for c := 1; c <= nClasses; c++ { // empty classes inherit the prior end
		if classStart[c] < classStart[c-1] {
			classStart[c] = classStart[c-1]
		}
	}
	// Build each class's dense bucket array from its (ascending) k0 column;
	// the bucket arrays likewise share one backing allocation.
	nBuckets := 0
	for c := 0; c < nClasses; c++ {
		k0s := allK0[classStart[c]:classStart[c+1]]
		if len(k0s) > 0 {
			nBuckets += int(k0s[len(k0s)-1]-k0s[0]) + 2
		}
	}
	allBuckets := make([]int32, 0, nBuckets)
	for c := 0; c < nClasses; c++ {
		lo, hi := classStart[c], classStart[c+1]
		ci := &d.classes[c]
		ci.second = allSecond[lo:hi:hi]
		ci.spans = allSpans[lo:hi:hi]
		k0s := allK0[lo:hi]
		if len(k0s) == 0 {
			continue
		}
		minK0, maxK0 := k0s[0], k0s[len(k0s)-1]
		ci.minK0 = minK0
		start := len(allBuckets)
		pos := 0
		for b := int32(0); b <= maxK0-minK0; b++ {
			allBuckets = append(allBuckets, int32(pos))
			for pos < len(k0s) && k0s[pos]-minK0 == b {
				pos++
			}
		}
		allBuckets = append(allBuckets, int32(len(k0s)))
		end := len(allBuckets)
		ci.firstIdx = allBuckets[start:end:end]
	}
	// Per-class session filters, copied into compact form for the
	// per-packet path.
	d.meta = make([]classMeta, len(m.Classes))
	for i, c := range m.Classes {
		cm := &d.meta[i]
		cm.transport = c.Transport
		cm.scopeSlot = uint8(scopeSlot(core.Scope(c.Scope)))
		cm.aggSlot = uint8(aggSlot(core.Aggregation(c.Agg)))
		if len(c.Ports) <= len(cm.ports) {
			cm.nPorts = uint8(len(c.Ports))
			copy(cm.ports[:], c.Ports)
		} else {
			cm.nPorts = 0xFF
			cm.portsExt = c.Ports
		}
	}
	d.buildMasks(m)
	d.buildUnitIndex(allK0, allSecond, allSpans, classStart)
	// ShedWidth in the same canonical order, over the raw shed ranges
	// (including entries that matched no assignment, as before).
	sort.Slice(shedOrder, func(i, j int) bool { return shedOrder[i].less(shedOrder[j]) })
	for _, k := range shedOrder {
		sorted := append(hashing.RangeSet(nil), shed[k]...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
		for _, r := range sorted {
			d.shedWidth += r.Width()
		}
	}
	return d
}

// TraceContext returns the trace context of the publish that produced the
// manifest this decider enforces, or nil when the controller ran
// untraced. Agents attach it to their fetch events, which is how one
// epoch's trace crosses the wire.
func (d *Decider) TraceContext() *WireTrace { return d.manifest.Trace }

// ShedWidth returns the total hash-space width the manifest's shed section
// removed from this node's assignment — the audit-side measure of how much
// responsibility the governor gave up. The sum is computed once at build
// time in canonical key order, so it is reproducible for any permutation
// of the manifest's shed slice.
func (d *Decider) ShedWidth() float64 { return d.shedWidth }

// Epoch reports the manifest generation this decider enforces.
func (d *Decider) Epoch() uint64 { return d.manifest.Epoch }

// CoversUnit reports whether this manifest assigns hash point x of the
// (class, unit-key) coordination component to the node — the audit-side
// complement of ShouldAnalyze, used by the cluster runtime to measure a
// deployment's achieved coverage without synthesizing sessions.
func (d *Decider) CoversUnit(class int, key [2]int, x float64) bool {
	if class < 0 || class >= len(d.classes) {
		return false
	}
	sp, ok := d.classes[class].lookup(int32(key[0]), int32(key[1]))
	return ok && d.arena.Contains(sp, x)
}

// AssignedWidth returns the total hash-space width the manifest assigns
// to the node, summed across its (class, unit) assignments — the node's
// share of the network-wide analysis work, and the quantity the cluster
// runtime exports as a per-agent coverage gauge. The sum is computed once
// at build time in canonical (class, unit-key, ascending-Lo) order, so it
// is bit-identical for any permutation of the manifest's assignment slice
// (the previous map-backed implementation summed in iteration order and
// could drift by an ULP between runs).
func (d *Decider) AssignedWidth() float64 { return d.assignedWidth }

// ShouldAnalyze resolves whether this node analyzes the session for the
// class. Unit resolution follows the class scope exactly as the planner's
// Instance.UnitFor does, but using only the session's addressing (the
// node-prefix convention stands in for the paper's prefix-to-ingress
// configuration files).
func (d *Decider) ShouldAnalyze(class int, s traffic.Session) bool {
	if class < 0 || class >= len(d.meta) {
		return false
	}
	cm := &d.meta[class]
	if !cm.matches(s.Tuple) {
		return false
	}
	k0, k1 := sessionKey(cm.scopeSlot, s)
	sp, ok := d.classes[class].lookup(k0, k1)
	if !ok {
		return false
	}
	return d.arena.Contains(sp, d.hashFor(cm.aggSlot, s.Tuple))
}

// buildMasks precomputes the per-class eligibility bitmasks DecideAll's
// fast path uses. Manifests with more than 64 classes (none exist in
// practice; the paper tops out at 21 modules) fall back to the per-class
// filter loop.
func (d *Decider) buildMasks(m *Manifest) {
	if len(d.meta) > 64 {
		return
	}
	d.maskable = true
	for ci := range d.meta {
		bit := uint64(1) << uint(ci)
		if !d.classes[ci].empty() {
			d.nonEmptyMask |= bit
		}
		c := &m.Classes[ci]
		if c.Transport == 0 {
			d.anyTransport |= bit
		} else {
			found := false
			for i, tr := range d.transports {
				if tr == c.Transport {
					d.transMasks[i] |= bit
					found = true
					break
				}
			}
			if !found {
				d.transports = append(d.transports, c.Transport)
				d.transMasks = append(d.transMasks, bit)
			}
		}
		if len(c.Ports) == 0 {
			d.portlessMask |= bit
		}
		for _, p := range c.Ports {
			found := false
			for i, q := range d.portList {
				if q == p {
					d.portMasks[i] |= bit
					found = true
					break
				}
			}
			if !found {
				d.portList = append(d.portList, p)
				d.portMasks = append(d.portMasks, bit)
			}
		}
	}
	d.portTabOK = len(d.portList) > 0
	for i, p := range d.portList {
		slot := p & 63
		if d.portTabMask[slot] != 0 && d.portTabKey[slot] != p {
			d.portTabOK = false // collision; keep the list scan
			break
		}
		d.portTabKey[slot] = p
		d.portTabMask[slot] |= d.portMasks[i]
	}
}

// buildUnitIndex regroups the flattened assignments by scope slot for the
// batch path: the canonical per-class columns (k0, k1, span, classStart)
// are re-sorted into (scope, k0, k1, class) order, each scope getting its
// own unit directory over the shared entry array. Classes beyond the
// manifest's class list (assignments naming unknown classes) are excluded,
// matching ShouldAnalyze's bounds check and the eligibility masks.
func (d *Decider) buildUnitIndex(allK0, allSecond []int32, allSpans []hashing.Span, classStart []int) {
	if !d.maskable {
		return
	}
	type ukey struct{ s, k0, k1, ci int32 }
	nc := len(d.meta)
	if nc > len(classStart)-1 {
		nc = len(classStart) - 1
	}
	keys := make([]ukey, 0, len(allK0))
	spanOf := make(map[ukey]hashing.Span, len(allK0))
	for c := 0; c < nc; c++ {
		sc := int32(d.meta[c].scopeSlot)
		d.scopeMask[sc] |= uint64(1) << uint(c)
		for i := classStart[c]; i < classStart[c+1]; i++ {
			k := ukey{sc, allK0[i], allSecond[i], int32(c)}
			keys = append(keys, k)
			spanOf[k] = allSpans[i]
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.s != b.s {
			return a.s < b.s
		}
		if a.k0 != b.k0 {
			return a.k0 < b.k0
		}
		if a.k1 != b.k1 {
			return a.k1 < b.k1
		}
		return a.ci < b.ci
	})
	d.entries = make([]uentry, len(keys))
	for i, k := range keys {
		e := uentry{
			span: spanOf[k],
			bit:  uint64(1) << uint(k.ci),
			agg:  d.meta[k.ci].aggSlot,
		}
		d.scopeAggs[k.s] |= 1 << e.agg
		switch e.span.Len() {
		case 0:
			// Fully shed assignment: inline bounds stay empty, never match.
		case 1:
			rs := d.arena.Ranges(e.span)
			e.lo, e.hi = rs[0].Lo, rs[0].Hi
		default:
			e.multi = true
		}
		d.entries[i] = e
	}
	lo := 0
	for sc := int32(0); sc < 3; sc++ {
		hi := lo
		for hi < len(keys) && keys[hi].s == sc {
			hi++
		}
		ui := &d.units[sc]
		var k0s []int32
		for a := lo; a < hi; {
			b := a
			for b < hi && keys[b].k0 == keys[a].k0 && keys[b].k1 == keys[a].k1 {
				b++
			}
			k0s = append(k0s, keys[a].k0)
			ui.second = append(ui.second, keys[a].k1)
			ui.entLo = append(ui.entLo, int32(a))
			a = b
		}
		if len(k0s) == 0 {
			lo = hi
			continue
		}
		ui.entLo = append(ui.entLo, int32(hi))
		minK0, maxK0 := k0s[0], k0s[len(k0s)-1]
		ui.minK0 = minK0
		pos := 0
		for b := int32(0); b <= maxK0-minK0; b++ {
			ui.firstIdx = append(ui.firstIdx, int32(pos))
			for pos < len(k0s) && k0s[pos]-minK0 == b {
				pos++
			}
		}
		ui.firstIdx = append(ui.firstIdx, int32(len(k0s)))
		allSingle := true
		for _, k1 := range ui.second {
			if k1 != -1 {
				allSingle = false
				break
			}
		}
		if allSingle {
			ui.flat = make([]int32, maxK0-minK0+1)
			for i := range ui.flat {
				ui.flat[i] = -1
			}
			for u, k0 := range k0s {
				ui.flat[k0-minK0] = int32(u)
			}
		}
		lo = hi
	}
}

// eligibleMask resolves every class's transport and port filter for one
// session in a handful of word operations.
func (d *Decider) eligibleMask(t hashing.FiveTuple) uint64 {
	em := d.anyTransport
	for i, tr := range d.transports {
		if tr == t.Proto {
			em |= d.transMasks[i]
		}
	}
	ports := d.portlessMask
	if d.portTabOK {
		if slot := t.DstPort & 63; d.portTabKey[slot] == t.DstPort {
			ports |= d.portTabMask[slot]
		}
	} else {
		for i, p := range d.portList {
			if p == t.DstPort {
				ports |= d.portMasks[i]
			}
		}
	}
	return em & ports & d.nonEmptyMask
}

// sessionKey resolves the session's coordination-unit key for a scope slot
// (the GETCOORDUNIT step of Figure 3).
func sessionKey(slot uint8, s traffic.Session) (int32, int32) {
	switch slot {
	case 1: // PerIngress
		return int32(s.Src), -1
	case 2: // PerEgress
		return int32(s.Dst), -1
	default: // PerPath
		a, b := s.Src, s.Dst
		if a > b {
			a, b = b, a
		}
		return int32(a), int32(b)
	}
}

// allSessionKeys resolves the unit keys of all three scopes at once,
// branch-predictably, for the batch path (computing an unneeded key is two
// register moves; a mispredicted memoization branch costs more).
func allSessionKeys(src, dst int) [3][2]int32 {
	a, b := src, dst
	if a > b {
		a, b = b, a
	}
	return [3][2]int32{
		{int32(a), int32(b)}, // PerPath
		{int32(src), -1},     // PerIngress
		{int32(dst), -1},     // PerEgress
	}
}

// hashFor computes the selection hash for an aggregation slot.
func (d *Decider) hashFor(slot uint8, t hashing.FiveTuple) float64 {
	switch slot {
	case 1:
		return d.hasher.Flow(t)
	case 2:
		return d.hasher.Source(t)
	case 3:
		return d.hasher.Destination(t)
	default:
		return d.hasher.Session(t)
	}
}

// scopeSlot and aggSlot map the class enums onto small dense memo slots,
// with unknown values collapsing onto the same defaults ShouldAnalyze
// uses (PerPath, BySession).
func scopeSlot(sc core.Scope) int {
	switch sc {
	case core.PerIngress:
		return 1
	case core.PerEgress:
		return 2
	default:
		return 0
	}
}

func aggSlot(agg core.Aggregation) int {
	switch agg {
	case core.ByFlow:
		return 1
	case core.BySource:
		return 2
	case core.ByDestination:
		return 3
	default:
		return 0
	}
}

// DecideAll resolves ShouldAnalyze for every class of the manifest in one
// pass, writing the verdicts into out (out[c] for class c; classes beyond
// len(out) are skipped, out entries beyond the class count are zeroed).
// It is the batch form of the Figure 3 check the data plane runs per
// session: the session's unit keys (one per scope) and selection hashes
// (one per aggregation) are computed at most once each and shared across
// classes, where per-class ShouldAnalyze calls recompute the hash for
// every class. The result is identical to calling ShouldAnalyze per
// class. Allocation-free.
func (d *Decider) DecideAll(s traffic.Session, out []bool) {
	n := len(d.meta)
	if n > len(out) {
		n = len(out)
	}
	for i := n; i < len(out); i++ {
		out[i] = false
	}
	if d.maskable {
		m, _ := d.DecideMask(&s)
		for ci := 0; ci < n; ci++ {
			out[ci] = m&(uint64(1)<<uint(ci)) != 0
		}
		return
	}
	var keys [3][2]int32
	var haveKey [3]bool
	var hashes [4]float64
	var haveHash [4]bool
	for ci := 0; ci < n; ci++ {
		out[ci] = false
		idx := &d.classes[ci]
		if idx.empty() {
			continue // the manifest assigns this node nothing for the class
		}
		cm := &d.meta[ci]
		if !cm.matches(s.Tuple) {
			continue
		}
		ks := cm.scopeSlot
		if !haveKey[ks] {
			keys[ks][0], keys[ks][1] = sessionKey(ks, s)
			haveKey[ks] = true
		}
		sp, ok := idx.lookup(keys[ks][0], keys[ks][1])
		if !ok {
			continue
		}
		hs := cm.aggSlot
		if !haveHash[hs] {
			hashes[hs] = d.hashFor(hs, s.Tuple)
			haveHash[hs] = true
		}
		out[ci] = d.arena.Contains(sp, hashes[hs])
	}
}

// DecideMask is DecideAll with the verdict row packed into one word: bit c
// set means class c analyzes the session. It is the data plane's preferred
// form — the engine scatters the word straight into its bit-packed pass
// set with no []bool row in between, and the pointer argument spares the
// per-call 64-byte Session copy the value-receiver interfaces pay. The
// session is only read. ok is false when the manifest exceeds 64 classes
// (then callers must fall back to DecideAll; no real deployment does — the
// paper's scaling sweep tops out at 21 modules). Allocation-free.
func (d *Decider) DecideMask(s *traffic.Session) (mask uint64, ok bool) {
	if !d.maskable {
		return 0, false
	}
	em := d.eligibleMask(s.Tuple)
	if em == 0 {
		return 0, true
	}
	// Phase 1: resolve all unit lookups, remembering each hit scope's
	// entry group and which agg slots its entries use.
	ak := allSessionKeys(s.Src, s.Dst)
	var glo, ghi [3]int32
	var need uint8
	for sc := 0; sc < 3; sc++ {
		if em&d.scopeMask[sc] == 0 {
			continue // no eligible class uses this scope
		}
		if lo, hi, ok := d.units[sc].lookup(ak[sc][0], ak[sc][1]); ok {
			glo[sc], ghi[sc] = lo, hi
			need |= d.scopeAggs[sc]
		}
	}
	// Phase 2: compute exactly the hashes the hit scopes need, back to
	// back. Each hash is a serial mix chain, but the chains are mutually
	// independent, so issued together they overlap in flight; resolved
	// lazily inside the entry scan below they would serialize.
	var hashes [4]float64
	if need&1 != 0 {
		hashes[0] = d.hasher.Session(s.Tuple)
	}
	if need&2 != 0 {
		hashes[1] = d.hasher.Flow(s.Tuple)
	}
	if need&4 != 0 {
		hashes[2] = d.hasher.Source(s.Tuple)
	}
	if need&8 != 0 {
		hashes[3] = d.hasher.Destination(s.Tuple)
	}
	// Phase 3: scan the hit entry groups (missed scopes have glo == ghi).
	// The eligibility skip is kept as a branch on purpose: most entries in
	// a group fail it (port-restricted duplicates), so skipping saves the
	// hash load and bounds compare for the majority of entries.
	var res uint64
	for sc := 0; sc < 3; sc++ {
		for i := glo[sc]; i < ghi[sc]; i++ {
			e := &d.entries[i]
			if em&e.bit == 0 {
				continue
			}
			h := hashes[e.agg]
			if h >= e.lo && h < e.hi {
				res |= e.bit
			} else if e.multi && d.arena.Contains(e.span, h) {
				res |= e.bit
			}
		}
	}
	return res, true
}
