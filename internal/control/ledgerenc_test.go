package control

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"nwdeploy/internal/ledger"
)

// The canonical form must erase representation: permuted assignment
// order, duplicate (class, unit) entries, and width split across
// touching ranges all encode to the same bytes as the tidy original.
func TestCanonicalAssignmentsNormalize(t *testing.T) {
	tidy := []WireAssignment{
		{Class: 0, Unit: [2]int{1, 2}, Ranges: []WireRange{{Lo: 0.2, Hi: 0.5}}},
		{Class: 1, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: 0, Hi: 0.25}, {Lo: 0.5, Hi: 0.75}}},
	}
	messy := []WireAssignment{
		{Class: 1, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: 0.5, Hi: 0.6}}},
		{Class: 0, Unit: [2]int{1, 2}, Ranges: []WireRange{{Lo: 0.3, Hi: 0.5}, {Lo: 0.2, Hi: 0.3}}},
		{Class: 1, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: 0.6, Hi: 0.75}, {Lo: 0, Hi: 0.25}, {Lo: 0.55, Hi: 0.7}}},
		{Class: 2, Unit: [2]int{3, 3}, Ranges: nil}, // empty entry vanishes
	}
	ca, err := CanonicalAssignments(tidy)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalAssignments(messy)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(ca)
	jb, _ := json.Marshal(cb)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ja, jb)
	}
}

func TestCanonicalManifestRejectsNonFinite(t *testing.T) {
	bad := []struct {
		name string
		m    *Manifest
	}{
		{"nan lo", &Manifest{Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: math.NaN(), Hi: 0.5}}}}}},
		{"inf hi", &Manifest{Assignments: []WireAssignment{
			{Class: 0, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: 0, Hi: math.Inf(1)}}}}}},
		{"nan in shed", &Manifest{Shed: []WireAssignment{
			{Class: 0, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: 0, Hi: math.NaN()}}}}}},
	}
	for _, tc := range bad {
		if _, err := CanonicalManifest(tc.m); !errors.Is(err, ledger.ErrNonFinite) {
			t.Fatalf("%s: err = %v, want ErrNonFinite", tc.name, err)
		}
	}
	// The rangesByKey width filter must not have swallowed the NaN before
	// the finiteness check ran: a NaN-bounded range has r.Hi > r.Lo false.
	if _, err := CanonicalAssignments([]WireAssignment{
		{Class: 0, Unit: [2]int{0, 0}, Ranges: []WireRange{{Lo: math.NaN(), Hi: math.NaN()}}},
	}); !errors.Is(err, ledger.ErrNonFinite) {
		t.Fatalf("NaN-empty range slipped past the finiteness check: %v", err)
	}
}

// A manifest reconstructed through the delta path must canonicalize to
// the exact bytes of the full fetch it replaces — the unit-level half of
// the delta-path equivalence contract (the cluster tests cover the
// live-wire half).
func TestCanonicalManifestDeltaPathEquivalence(t *testing.T) {
	plan1, _ := solvedPlan(t, 1)
	plan2, _ := solvedPlan(t, 2) // same classes/topology, different workload
	const hashKey = 99
	for node := 0; node < plan1.Inst.Topo.N(); node++ {
		old, err := ManifestFromPlan(plan1, node, 1, hashKey)
		if err != nil {
			t.Fatal(err)
		}
		full, err := ManifestFromPlan(plan2, node, 2, hashKey)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := DiffManifests(old, full)
		if !ok {
			t.Fatalf("node %d: manifests not diffable", node)
		}
		rebuilt, err := ApplyDelta(old, d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CanonicalManifest(full)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CanonicalManifest(rebuilt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node %d: delta-reconstructed canonical bytes differ from full fetch", node)
		}
	}
}

func TestDecodeCanonicalManifestRoundTrip(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	m, err := ManifestFromPlan(plan, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := CanonicalManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCanonicalManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := CanonicalManifest(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("decode/re-encode is not a fixed point")
	}
	if back.Node != 2 || back.HashKey != 7 || back.Epoch != 0 {
		t.Fatalf("decoded header = %+v", back)
	}
}

// The controller must seal a publish record on every UpdatePlan and a
// shed record on every PublishShed, with blobs that decode to exactly
// the manifests it would serve.
func TestControllerCommitsToLedger(t *testing.T) {
	plan, _ := solvedPlan(t, 1)
	store := ledger.NewMemStore()
	led := ledger.New(ledger.Options{Seed: 21, Store: store})
	c, err := NewControllerOpts("127.0.0.1:0", ControllerOptions{HashKey: 7, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.UpdatePlan(plan)
	shed := []WireAssignment{{Class: 0, Unit: [2]int{0, 3}, Ranges: []WireRange{{Lo: 0.1, Hi: 0.2}}}}
	c.PublishShed(4, shed)
	c.PublishShed(4, nil) // clear
	c.PublishShed(4, nil) // no-op: must not commit
	if err := led.Err(); err != nil {
		t.Fatal(err)
	}

	recs := led.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (publish, shed, shed-clear)", len(recs))
	}
	wantKinds := []string{ledger.RecPublish, ledger.RecShed, ledger.RecShed}
	for i, k := range wantKinds {
		if recs[i].Kind != k || recs[i].Epoch != uint64(i+1) {
			t.Fatalf("record %d = kind %s epoch %d, want %s epoch %d", i, recs[i].Kind, recs[i].Epoch, k, i+1)
		}
	}
	if _, err := ledger.VerifyChain(led.Chain(), ledger.VerifyOptions{
		Head: led.HeadHex(), GenesisPrev: ledger.GenesisHex(21), Store: store,
	}); err != nil {
		t.Fatal(err)
	}

	// The shed record carries one manifest blob per node plus the inline
	// shed item, and node 4's blob must decode to the served manifest
	// (assignments + shed) in canonical form.
	shedRec := recs[1]
	n := len(plan.Manifests)
	if len(shedRec.Items) != n+1 {
		t.Fatalf("shed record has %d items, want %d manifests + 1 shed", len(shedRec.Items), n)
	}
	var blobRef string
	for _, it := range shedRec.Items {
		if it.Kind == ledger.ItemManifest && it.Key == "node/4" {
			blobRef = it.Ref
		}
		if it.Kind == ledger.ItemShed && it.Key != "node/4" {
			t.Fatalf("unexpected shed item key %s", it.Key)
		}
	}
	if blobRef == "" {
		t.Fatal("node/4 manifest blob missing from shed record")
	}
	blob, err := store.Get(blobRef)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ManifestFromPlan(plan, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	want.Shed = shed
	wantBytes, err := CanonicalManifest(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantBytes) {
		t.Fatal("committed manifest blob differs from the served manifest's canonical form")
	}

	// Unchanged manifests dedup: across the three records, nodes other
	// than 4 contribute one blob each, node 4 at most three distinct.
	if got := store.Len(); got > n+2 {
		t.Fatalf("store holds %d blobs; dedup across epochs broken (want <= %d)", got, n+2)
	}

	// Every manifest item in the publish record proves into its root.
	for i := range recs[0].Items {
		p, err := ledger.RecordProof(recs[0], i)
		if err != nil {
			t.Fatal(err)
		}
		if !ledger.VerifyItem(recs[0], i, p) {
			t.Fatalf("publish item %d proof does not verify", i)
		}
	}
}
